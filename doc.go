// Package raftlib is a Go reproduction of "RaftLib: A C++ Template Library
// for High Performance Stream Parallel Processing" (Beard, Li &
// Chamberlain, PMAM '15).
//
// The public API lives in the raft package (runtime, kernels, topology
// building) and the kernels package (standard kernel library); see README.md
// for a tour, DESIGN.md for the system inventory, and EXPERIMENTS.md for
// the paper-versus-measured record. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation.
package raftlib
