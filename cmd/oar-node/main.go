// Command oar-node runs a standalone member of the oar mesh (§4.1): it
// listens for gossip, stream and service connections, periodically
// re-gossips with every known peer, and serves a built-in "search" service
// so remote peers can run text matching on this node's corpus — the
// paper's "compile and forget" remote execution experience.
//
//	oar-node -id worker1 -listen 127.0.0.1:7700 [-join host:port] [-corpus FILE]
//
// Run two or more on one machine (or several machines) and watch the mesh
// converge; invoke the search service from another node with the oar.Call
// API or the examples/distributed program.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"raftlib/internal/apps/textsearch"
	"raftlib/internal/oar"
)

func main() {
	var (
		id       = flag.String("id", "", "node identifier (default: host:port)")
		listen   = flag.String("listen", "127.0.0.1:0", "listen address")
		join     = flag.String("join", "", "existing mesh member to join")
		corpus   = flag.String("corpus", "", "file served by the search service")
		interval = flag.Duration("gossip", 500*time.Millisecond, "gossip interval")
	)
	flag.Parse()

	node, err := oar.NewNode(*id, *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oar-node: %v\n", err)
		os.Exit(1)
	}
	defer node.Close()
	if *id == "" {
		*id = node.Addr()
	}
	fmt.Printf("oar-node %s listening on %s\n", *id, node.Addr())

	var corpusData []byte
	if *corpus != "" {
		corpusData, err = os.ReadFile(*corpus)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oar-node: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serving search over %d bytes of %s\n", len(corpusData), *corpus)
	}

	// The remote-execution service: peers submit a pattern + algorithm,
	// this node runs the raft text-search pipeline locally and returns the
	// hit count.
	node.RegisterService("search", func(req map[string]string) (map[string]string, error) {
		if corpusData == nil {
			return nil, fmt.Errorf("node has no corpus loaded")
		}
		algo := req["algo"]
		if algo == "" {
			algo = "horspool"
		}
		cores, _ := strconv.Atoi(req["cores"])
		res, err := textsearch.Run(corpusData, textsearch.Config{
			Algo:    algo,
			Pattern: []byte(req["pattern"]),
			Cores:   cores,
		})
		if err != nil {
			return nil, err
		}
		return map[string]string{
			"hits":    strconv.FormatInt(res.Hits, 10),
			"elapsed": res.Elapsed.String(),
		}, nil
	})

	if *join != "" {
		if err := node.Join(*join); err != nil {
			fmt.Fprintf(os.Stderr, "oar-node: join: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("joined mesh via %s\n", *join)
	}
	node.StartGossip(*interval)

	// Periodically report the mesh view until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("oar-node: shutting down")
			return
		case <-tick.C:
			peers := node.Peers()
			fmt.Printf("mesh view: %d peer(s)\n", len(peers))
			for _, p := range peers {
				fmt.Printf("  %-12s %-21s cores=%d load=%.2f age=%s\n",
					p.ID, p.Addr, p.Cores, p.Load, time.Since(p.Stamp).Round(time.Millisecond))
			}
		}
	}
}
