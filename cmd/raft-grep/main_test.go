package main

import (
	"bytes"
	"os"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestPrintMatchingLines(t *testing.T) {
	data := []byte("first needle line\nno match here\nsecond needle needle line\ntail needle")
	// Positions of "needle": 6, 39, 46, 63.
	positions := []int64{39, 6, 63, 46} // deliberately unsorted
	out := captureStdout(t, func() { printMatchingLines(data, positions) })
	want := "first needle line\nsecond needle needle line\ntail needle\n"
	if out != want {
		t.Fatalf("printed %q, want %q", out, want)
	}
}

func TestPrintMatchingLinesDeduplicatesWithinLine(t *testing.T) {
	data := []byte("aaa aaa aaa")
	out := captureStdout(t, func() { printMatchingLines(data, []int64{0, 4, 8}) })
	if out != "aaa aaa aaa\n" {
		t.Fatalf("printed %q", out)
	}
}

func TestPrintMatchingLinesEmpty(t *testing.T) {
	out := captureStdout(t, func() { printMatchingLines([]byte("abc"), nil) })
	if out != "" {
		t.Fatalf("printed %q for no matches", out)
	}
}
