// Command raft-grep is a grep-like exact string matcher built on the raft
// streaming runtime — the application of the paper's §5 benchmark as a
// usable tool:
//
//	raft-grep [-algo horspool|ahocorasick|boyermoore] [-cores N]
//	          [-count] [-offsets] PATTERN FILE
//
// It prints matching lines by default, mirrors grep -c with -count, and
// prints byte offsets with -offsets. The match kernels are replicated
// across cores by the runtime. -stats prints the full execution report
// (kernels, streams, monitor decisions) to stderr; -rate switches the
// monitor to the online service-rate controller and adds λ̂/µ̂/ρ̂
// columns to the report; -trace FILE writes a Chrome trace-event JSON
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"raftlib/internal/apps/textsearch"
	"raftlib/raft"
)

func main() {
	var (
		algo    = flag.String("algo", "horspool", "match algorithm: horspool|ahocorasick|boyermoore|naive")
		cores   = flag.Int("cores", runtime.GOMAXPROCS(0), "match kernel replicas")
		count   = flag.Bool("count", false, "print only the match count (grep -c)")
		offsets = flag.Bool("offsets", false, "print byte offsets instead of lines")
		stats   = flag.Bool("stats", false, "print the full execution report to stderr")
		rate    = flag.Bool("rate", false, "drive batching/replication from online λ̂/µ̂ estimates (adds λ̂/µ̂/ρ̂ to -stats and -metrics)")
		tracef  = flag.String("trace", "", "write a Chrome trace-event JSON to FILE (load in Perfetto)")
		metrics = flag.String("metrics", "", "serve Prometheus metrics on host:port while running")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: raft-grep [flags] PATTERN FILE")
		flag.Usage()
		os.Exit(2)
	}
	pattern := []byte(flag.Arg(0))
	path := flag.Arg(1)

	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "raft-grep: %v\n", err)
		os.Exit(1)
	}

	var exeOpts []raft.Option
	if *tracef != "" {
		exeOpts = append(exeOpts, raft.WithTrace(1<<16))
	}
	if *metrics != "" {
		exeOpts = append(exeOpts, raft.WithMetricsAddr(*metrics))
	}
	if *rate {
		exeOpts = append(exeOpts, raft.WithServiceRateControl())
	}

	res, err := textsearch.Run(data, textsearch.Config{
		Algo:             *algo,
		Pattern:          pattern,
		Cores:            *cores,
		CollectPositions: !*count,
		ExtraExeOpts:     exeOpts,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "raft-grep: %v\n", err)
		os.Exit(1)
	}

	switch {
	case *count:
		fmt.Println(res.Hits)
	case *offsets:
		sort.Slice(res.Positions, func(i, j int) bool { return res.Positions[i] < res.Positions[j] })
		w := bufio.NewWriter(os.Stdout)
		for _, p := range res.Positions {
			fmt.Fprintln(w, p)
		}
		w.Flush()
	default:
		printMatchingLines(data, res.Positions)
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "raft-grep: %d hits in %v (%.3f GB/s)\n",
			res.Hits, res.Elapsed, res.Throughput(len(data))/1e9)
		fmt.Fprint(os.Stderr, res.Report.String())
	}
	if *tracef != "" {
		f, err := os.Create(*tracef)
		if err != nil {
			fmt.Fprintf(os.Stderr, "raft-grep: %v\n", err)
			os.Exit(1)
		}
		if err := res.Report.WriteChromeTrace(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "raft-grep: trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "raft-grep: %v\n", err)
			os.Exit(1)
		}
	}
}

// printMatchingLines prints each line containing at least one match, in
// file order, once.
func printMatchingLines(data []byte, positions []int64) {
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	lastLineEnd := int64(-1)
	for _, p := range positions {
		if p <= lastLineEnd {
			continue // same line as the previous match
		}
		start := int64(bytes.LastIndexByte(data[:p], '\n') + 1)
		endRel := bytes.IndexByte(data[p:], '\n')
		end := int64(len(data))
		if endRel >= 0 {
			end = p + int64(endRel)
		}
		w.Write(data[start:end])
		w.WriteByte('\n')
		lastLineEnd = end
	}
}
