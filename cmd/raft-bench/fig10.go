package main

import (
	"fmt"

	"raftlib/internal/apps/textsearch"
	"raftlib/internal/baselines/pargrep"
	"raftlib/internal/baselines/sparklet"
	"raftlib/internal/corpus"
)

// runFig10 reproduces Figure 10: exact-string-match throughput (GB/s) by
// utilized cores for the four systems the paper compares —
//
//	pargrep      GNU Parallel + GNU grep execution model
//	sparklet-bm  mini-Spark running Boyer-Moore over line records
//	raft-ac      RaftLib pipeline, Aho-Corasick match kernels
//	raft-bmh     RaftLib pipeline, Boyer-Moore-Horspool match kernels
func runFig10(corpusMB int, coreCounts []int) {
	header("Figure 10: Text search throughput (GB/s) by utilized cores")
	pattern := []byte(corpus.DefaultPattern)
	fmt.Printf("generating %d MiB corpus (pattern %q)...\n", corpusMB, pattern)
	data := corpus.Generate(corpus.Spec{Bytes: corpusMB << 20, Seed: 2015 + benchSeed})

	serial := pargrep.GrepSerial(data, pattern)
	fmt.Printf("plain single-process grep: %s GB/s (%d hits) — the paper's\n",
		gbps(serial.Throughput(len(data))), serial.Hits)
	fmt.Printf("impressive single-threaded GNU grep datapoint\n\n")

	fmt.Printf("%-7s %-12s %-12s %-12s %-12s\n", "cores", "pargrep", "sparklet-bm", "raft-ac", "raft-bmh")
	wantHits := serial.Hits
	var rows [][]string
	for _, cores := range coreCounts {
		row := fmt.Sprintf("%-7d", cores)
		csvRow := []string{fmt.Sprint(cores)}

		pg := pargrep.Run(data, pattern, pargrep.Config{Jobs: cores})
		row += fmt.Sprintf(" %-12s", gbps(pg.Throughput(len(data))))
		csvRow = append(csvRow, gbps(pg.Throughput(len(data))))
		checkHits("pargrep", cores, int64(pg.Hits), int64(wantHits))

		sp, err := sparklet.TextSearchBM(sparklet.NewContext(cores), data, pattern)
		if err != nil {
			fmt.Printf("sparklet error: %v\n", err)
			return
		}
		row += fmt.Sprintf(" %-12s", gbps(sp.Throughput(len(data))))
		csvRow = append(csvRow, gbps(sp.Throughput(len(data))))
		checkHits("sparklet", cores, sp.Hits, int64(wantHits))

		for _, algo := range []string{"ahocorasick", "horspool"} {
			res, err := textsearch.Run(data, textsearch.Config{Algo: algo, Cores: cores})
			if err != nil {
				fmt.Printf("raft %s error: %v\n", algo, err)
				return
			}
			row += fmt.Sprintf(" %-12s", gbps(res.Throughput(len(data))))
			csvRow = append(csvRow, gbps(res.Throughput(len(data))))
			checkHits("raft-"+algo, cores, res.Hits, int64(wantHits))
		}
		fmt.Println(row)
		rows = append(rows, csvRow)
	}
	writeCSV("fig10", []string{"cores", "pargrep_gbps", "sparklet_gbps", "raft_ac_gbps", "raft_bmh_gbps"}, rows)
	fmt.Println("\npaper shape: pargrep scales worst; sparklet near-linear to a")
	fmt.Println("mid ceiling; raft-ac comparable to sparklet (algorithm-bound);")
	fmt.Println("raft-bmh fastest, ~linear until the memory system saturates.")
}

func checkHits(sys string, cores int, got, want int64) {
	if got != want {
		fmt.Printf("!! %s @%d cores found %d hits, want %d\n", sys, cores, got, want)
	}
}
