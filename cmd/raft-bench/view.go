package main

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"raftlib/internal/corpus"
	"raftlib/internal/oar"
	"raftlib/kernels"
	"raftlib/raft"
)

// elem4k is the large-element payload for the A15 bridge comparison: a
// 4 KiB inline array of int64 (gob has a bulk fast path for int64 arrays,
// so the encoder cost is comparable between arms and the measured
// difference is the staging copy the view path removes).
type elem4k struct{ P [512]int64 }

// ablateView evaluates the zero-copy batch-view plumbing (A15): what do
// borrowed ring segments buy over the staged-copy fallback on the two
// serialization hot paths?
//
//  1. bridge throughput — the same loopback stream with the sender
//     encoding straight out of ring storage (default) vs WithCopyEncode
//     (pop into kernel-owned scratch first). Small elements bound the
//     framing overhead; 4 KiB elements expose the staging memcpy. The
//     nightly bar: >= 1.5x on the large-element stream.
//  2. allocation profile — heap allocations per element for both arms of
//     the large-element run (the strict zero-allocs-per-frame assertion
//     lives in the oar test suite; here the two arms are compared
//     end-to-end, GC pressure included).
//  3. chaos exactness — the view arm replays encoded bytes, not borrowed
//     storage, so a killed kernel plus a twice-severed bridge must still
//     deliver the exact chunk multiset: needle count and content checksum
//     equal to the unfaulted run's.
//  4. gateway ingest — BindSourceAppend (pooled decode buffer committed
//     through a write view) vs BindSource with SetCopyDelivery (fresh
//     batch slice, staged PushN). Every admitted batch on the pooled arm
//     must count one saved copy; throughput is reported for shape.
func ablateView() {
	header("A15: Zero-copy batch views — borrow/encode vs staged copies")

	// --- Part 1+2: bridge throughput and allocs, view vs copy. ---
	type bridgeOut struct {
		elapsed     time.Duration
		allocsPerEl float64
	}
	runBridge := func(stream string, items int, mk func(i int64) elem4k, copyArm bool) (bridgeOut, error) {
		var out bridgeOut
		node, err := oar.NewNode("a15", "127.0.0.1:0")
		if err != nil {
			return out, err
		}
		defer node.Close()
		// The generous peer timeout keeps a saturated single-core host from
		// tripping the receiver's read deadline mid-decode; healing is
		// exercised by part 3, not here.
		opts := []oar.BridgeOption{
			oar.WithReconnectBackoff(time.Millisecond, 50*time.Millisecond),
			oar.WithPeerTimeout(5 * time.Second),
		}
		if copyArm {
			opts = append(opts, oar.WithCopyEncode())
		}
		send, recv, err := oar.Bridge[elem4k](node, stream, opts...)
		if err != nil {
			return out, err
		}
		producer := raft.NewMap()
		producer.MustLink(kernels.NewGenerate(int64(items), mk), send, raft.Cap(256))
		var got int64
		sink := raft.NewLambdaIO[elem4k, int](1, 0, func(k *raft.LambdaKernel) raft.Status {
			if _, err := raft.Pop[elem4k](k.In("0")); err != nil {
				return raft.Stop
			}
			got++
			return raft.Proceed
		})
		sink.SetName("drain")
		consumer := raft.NewMap()
		consumer.MustLink(recv, sink, raft.Cap(256))

		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		var wg sync.WaitGroup
		var errA, errB error
		wg.Add(2)
		go func() { defer wg.Done(); _, errA = producer.Exe() }()
		go func() { defer wg.Done(); _, errB = consumer.Exe() }()
		wg.Wait()
		out.elapsed = time.Since(start)
		runtime.ReadMemStats(&ms1)
		out.allocsPerEl = float64(ms1.Mallocs-ms0.Mallocs) / float64(items)
		if errA != nil || errB != nil {
			return out, fmt.Errorf("bridge run: %v / %v", errA, errB)
		}
		if got != int64(items) {
			return out, fmt.Errorf("bridge run: delivered %d of %d elements", got, items)
		}
		return out, nil
	}

	const (
		largeItems = 8192 // x 4 KiB = 32 MiB over the wire
		reps       = 3    // best-of, to shed scheduler noise
	)
	best := func(stream string, items int, copyArm bool) (bridgeOut, error) {
		var b bridgeOut
		for r := 0; r < reps; r++ {
			out, err := runBridge(fmt.Sprintf("%s-%d", stream, r), items, func(i int64) elem4k {
				var e elem4k
				e.P[0] = i
				return e
			}, copyArm)
			if err != nil {
				return b, err
			}
			if b.elapsed == 0 || out.elapsed < b.elapsed {
				b = out
			}
		}
		return b, nil
	}
	if _, err := best("a15-warm", 512, false); err != nil { // connection + GC warmup
		fmt.Println("error:", err)
		return
	}
	view, err := best("a15-view", largeItems, false)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cp, err := best("a15-copy", largeItems, true)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	mb := float64(largeItems) * 4096 / (1 << 20)
	fmt.Printf("bridge, 4 KiB elements (%d items, %.0f MiB, best of %d):\n", largeItems, mb, reps)
	fmt.Printf("  %-14s %-12s %-10s %-12s\n", "sender path", "elapsed(ms)", "GB/s", "allocs/elem")
	for _, row := range []struct {
		name string
		out  bridgeOut
	}{{"view", view}, {"copy", cp}} {
		fmt.Printf("  %-14s %-12.1f %-10s %-12.2f\n", row.name,
			float64(row.out.elapsed)/float64(time.Millisecond),
			gbps(float64(largeItems)*4096/row.out.elapsed.Seconds()), row.out.allocsPerEl)
	}
	ratio := cp.elapsed.Seconds() / view.elapsed.Seconds()
	fmt.Printf("  large-element speedup: %.2fx (acceptance: >= 1.5x)\n", ratio)
	if ratio < 1.5 {
		failf("A15: view path %.2fx over the copy path on 4 KiB elements, want >= 1.5x", ratio)
	}

	// --- Part 3: chaos exactness on the view path. ---
	pattern := []byte(corpus.DefaultPattern)
	data := corpus.Generate(corpus.Spec{Bytes: 4 << 20, Seed: 23 + benchSeed})
	const chunkSz = 4096
	var chunks [][]byte
	for off := 0; off < len(data); off += chunkSz {
		end := off + chunkSz
		if end > len(data) {
			end = len(data)
		}
		chunks = append(chunks, data[off:end])
	}
	type grepOut struct {
		Hits int64
		Sum  uint64
	}
	runChaos := func(stream string, chaos bool) (grepOut, *raft.BridgeReport, error) {
		var out grepOut
		node, err := oar.NewNode("a15c", "127.0.0.1:0")
		if err != nil {
			return out, nil, err
		}
		defer node.Close()
		opts := []oar.BridgeOption{
			oar.WithReconnectBackoff(time.Millisecond, 50*time.Millisecond),
			oar.WithPeerTimeout(5 * time.Second),
		}
		if chaos {
			binj := raft.NewFaultInjector()
			binj.SeverBridge(stream, 5)
			binj.SeverBridge(stream, 11)
			opts = append(opts, oar.WithBridgeFault(binj))
		}
		send, recv, err := oar.Bridge[[]byte](node, stream, opts...)
		if err != nil {
			return out, nil, err
		}
		producer := raft.NewMap()
		producer.MustLink(kernels.NewGenerate(int64(len(chunks)), func(i int64) []byte {
			return chunks[i]
		}), send, raft.Cap(64))

		// grep is stateless (count and checksum ride downstream), so the
		// supervised restart cannot lose accumulated state.
		grep := raft.NewLambdaIO[[]byte, grepOut](1, 1, func(k *raft.LambdaKernel) raft.Status {
			chunk, err := raft.Pop[[]byte](k.In("0"))
			if err != nil {
				return raft.Stop
			}
			h := fnv.New64a()
			h.Write(chunk)
			var hits int64
			for i := 0; i+len(pattern) <= len(chunk); i++ {
				if string(chunk[i:i+len(pattern)]) == string(pattern) {
					hits++
				}
			}
			if err := raft.Push(k.Out("0"), grepOut{Hits: hits, Sum: h.Sum64()}); err != nil {
				return raft.Stop
			}
			return raft.Proceed
		})
		grep.SetName("grep")
		fold := raft.NewLambdaIO[grepOut, int](1, 0, func(k *raft.LambdaKernel) raft.Status {
			g, err := raft.Pop[grepOut](k.In("0"))
			if err != nil {
				return raft.Stop
			}
			out.Hits += g.Hits
			out.Sum += g.Sum // wrapping, order-independent
			return raft.Proceed
		})
		fold.SetName("fold")
		consumer := raft.NewMap()
		consumer.MustLink(recv, grep, raft.Cap(64))
		consumer.MustLink(grep, fold)
		exeOpts := []raft.Option{}
		if chaos {
			kinj := raft.NewFaultInjector()
			kinj.KillKernel("grep", 100)
			exeOpts = append(exeOpts,
				raft.WithSupervision(raft.SupervisionPolicy{}),
				raft.WithFaultInjection(kinj))
		}
		var wg sync.WaitGroup
		var errA, errB error
		wg.Add(2)
		go func() { defer wg.Done(); _, errA = producer.Exe() }()
		go func() { defer wg.Done(); _, errB = consumer.Exe() }()
		wg.Wait()
		if errA != nil || errB != nil {
			return out, nil, fmt.Errorf("chaos run: %v / %v", errA, errB)
		}
		br, _ := send.BridgeStats()
		return out, &br, nil
	}
	clean, _, err := runChaos("a15-grep-clean", false)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	faulted, br, err := runChaos("a15-grep-chaos", true)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("\nchaos exactness (4 MiB corpus, %d chunks over the view-path bridge):\n", len(chunks))
	fmt.Printf("  %-14s %-10s %-18s %-12s %-10s\n", "run", "hits", "checksum", "reconnects", "replayed")
	fmt.Printf("  %-14s %-10d %-18x %-12s %-10s\n", "unfaulted", clean.Hits, clean.Sum, "-", "-")
	fmt.Printf("  %-14s %-10d %-18x %-12d %-10d\n", "kill+sever-x2", faulted.Hits, faulted.Sum, br.Reconnects, br.Replayed)
	if clean.Hits != faulted.Hits || clean.Sum != faulted.Sum {
		failf("A15: chaos run diverged (hits %d vs %d, checksum %x vs %x) — replay leaked or lost borrowed storage",
			clean.Hits, faulted.Hits, clean.Sum, faulted.Sum)
	} else if br.Reconnects == 0 {
		failf("A15: fault plan injected no bridge severs — chaos arm did not exercise replay")
	} else {
		fmt.Printf("  identical output under faults (bar: checksum and count equal)\n")
	}

	// --- Part 4: gateway ingest, pooled write-view arm vs copy arm. ---
	httpc := &http.Client{Timeout: 10 * time.Second}
	post := func(addr, body string) int {
		resp, err := httpc.Post("http://"+addr+"/v1/ingest/lines", "text/plain", strings.NewReader(body))
		if err != nil {
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	const (
		gwBatches = 400
		gwLines   = 64
	)
	body := strings.TrimSuffix(strings.Repeat("one line of ingest payload\n", gwLines), "\n")
	runGateway := func(pooled bool) (elapsed time.Duration, admitted, saved uint64, err error) {
		gw, err := raft.NewGateway(raft.GatewayConfig{})
		if err != nil {
			return 0, 0, 0, err
		}
		src := raft.NewSource[[]byte]("lines")
		if pooled {
			err = raft.BindSourceAppend(gw, src, func(p []byte, buf [][]byte) ([][]byte, error) {
				for len(p) > 0 {
					nl := len(p)
					for i, c := range p {
						if c == '\n' {
							nl = i
							break
						}
					}
					buf = append(buf, p[:nl])
					if nl == len(p) {
						break
					}
					p = p[nl+1:]
				}
				return buf, nil
			})
		} else {
			src.SetCopyDelivery(true)
			err = raft.BindSource(gw, src, func(p []byte) ([][]byte, error) {
				var batch [][]byte
				for len(p) > 0 {
					nl := len(p)
					for i, c := range p {
						if c == '\n' {
							nl = i
							break
						}
					}
					batch = append(batch, p[:nl])
					if nl == len(p) {
						break
					}
					p = p[nl+1:]
				}
				return batch, nil
			})
		}
		if err != nil {
			return 0, 0, 0, err
		}
		var got uint64
		sink := raft.NewLambdaIO[[]byte, int](1, 0, func(k *raft.LambdaKernel) raft.Status {
			if _, err := raft.Pop[[]byte](k.In("0")); err != nil {
				return raft.Stop
			}
			got++
			return raft.Proceed
		})
		sink.SetName("drain")
		m := raft.NewMap()
		m.MustLink(src, sink, raft.Cap(256))
		done := make(chan error, 1)
		var rep *raft.Report
		go func() {
			var err error
			rep, err = m.Exe(raft.WithGateway(gw), raft.WithDynamicResize(false))
			done <- err
		}()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if post(gw.Addr(), "warmup line") == http.StatusAccepted {
				break
			}
			if time.Now().After(deadline) {
				src.CloseIntake()
				<-done
				return 0, 0, 0, fmt.Errorf("source never wired")
			}
			time.Sleep(2 * time.Millisecond)
		}
		start := time.Now()
		for i := 0; i < gwBatches; i++ {
			if st := post(gw.Addr(), body); st != http.StatusAccepted {
				src.CloseIntake()
				<-done
				return 0, 0, 0, fmt.Errorf("batch %d: status %d", i, st)
			}
		}
		elapsed = time.Since(start)
		src.CloseIntake()
		if err := <-done; err != nil {
			return 0, 0, 0, err
		}
		if rep.Gateway != nil && len(rep.Gateway.Sources) == 1 {
			admitted = rep.Gateway.Sources[0].AdmittedElems
			saved = rep.Gateway.Sources[0].CopiesSaved
		}
		return elapsed, admitted, saved, nil
	}
	copyEl, copyAdm, copySaved, err := runGateway(false)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	poolEl, poolAdm, poolSaved, err := runGateway(true)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("\ngateway ingest (%d HTTP batches x %d lines):\n", gwBatches, gwLines)
	fmt.Printf("  %-14s %-12s %-12s %-10s %-12s\n", "intake path", "elapsed(ms)", "batches/s", "admitted", "copies saved")
	fmt.Printf("  %-14s %-12.1f %-12.0f %-10d %-12d\n", "pooled-view",
		float64(poolEl)/float64(time.Millisecond), gwBatches/poolEl.Seconds(), poolAdm, poolSaved)
	fmt.Printf("  %-14s %-12.1f %-12.0f %-10d %-12d\n", "copy",
		float64(copyEl)/float64(time.Millisecond), gwBatches/copyEl.Seconds(), copyAdm, copySaved)
	wantSaved := uint64(gwBatches + 1) // + the warmup batch
	switch {
	case poolSaved != wantSaved:
		failf("A15: pooled arm saved %d copies over %d admitted batches, want %d", poolSaved, gwBatches+1, wantSaved)
	case copySaved != 0:
		failf("A15: copy arm reported %d saved copies, want 0", copySaved)
	default:
		fmt.Printf("  every pooled admission skipped its staging copy (%d/%d)\n", poolSaved, wantSaved)
	}

	fmt.Println("\nexpected: on 4 KiB elements the staged copy (pop into scratch,")
	fmt.Println("then encode) costs memory bandwidth the borrow path never spends,")
	fmt.Println("so the view sender clears 1.5x; replaying encoded bytes instead of")
	fmt.Println("borrowed storage keeps chaos output byte-identical; and the gateway's")
	fmt.Println("pooled decode buffers commit through write views, one saved copy per")
	fmt.Println("admitted batch, visible in /v1/stats and the execution report.")
}
