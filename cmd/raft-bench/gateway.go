package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"raftlib/raft"
)

// ablateGateway evaluates the multi-tenant ingestion gateway (A14): does
// model-driven admission control actually protect a shared pipeline?
//
//  1. shed-before-saturation — one tenant offers ~2x the pipeline's
//     service rate; the gateway must answer 429 (with a positive
//     Retry-After) while the intake queue is still below 80% occupancy,
//     i.e. shed from the model's forecast, not from blocking evidence.
//  2. co-tenant isolation — a paced tenant shares the pipeline with the
//     flood; its request p99 must stay within 1.5x of its solo baseline
//     (plus a small absolute floor for loopback-HTTP noise). Mid-run the
//     gateway's /metrics endpoint is scraped and must already expose
//     per-tenant admission counters.
//  3. best-effort trade — the same flood against an AsBestEffort intake
//     link: the gateway stops shedding (the ring drops instead), losses
//     are counted in the drop telemetry, and the flood's request p99
//     stays bounded — elements are lost, latency is not.
func ablateGateway() {
	header("A14: Ingestion gateway — model-driven admission under multi-tenant overload")

	// The pipeline is deliberately slow (µ = 2k elems/s) so the designed
	// rate relationships — flood at 2x µ, steady at 0.25x µ — hold even on
	// a single-core host where the spinning consumer and the HTTP clients
	// share the CPU; all bars are rate-based, not core-count-based.
	const (
		linkCap     = 1024    // intake stream capacity (fixed; resize off)
		consumeNs   = 500_000 // per-element service time -> µ = 2k elems/s
		occShed     = 0.6     // gateway sheds at 60% intake occupancy
		floodBatch  = 64      // elements per flood request
		floodConns  = 2       // concurrent flood connections
		floodDur    = 700 * time.Millisecond
		steadyN     = 175                  // paced-tenant requests
		steadyElems = 2                    // elements per steady request
		steadyEvery = 4 * time.Millisecond // -> 500 elems/s, ρ = 0.25 solo
	)
	mu := 1e9 / float64(consumeNs)
	// Two paced connections targeting mu elems/s each => ~2x overload.
	floodInterval := time.Duration(float64(floodBatch) / mu * float64(time.Second))

	spin := func(d time.Duration) {
		for t0 := time.Now(); time.Since(t0) < d; {
			runtime.Gosched()
		}
	}
	httpc := &http.Client{Timeout: 10 * time.Second}
	post := func(addr, tenant string, elems int) (status, retrySec int, lat time.Duration) {
		payload := strings.TrimSuffix(strings.Repeat("one needle per line\n", elems), "\n")
		req, err := http.NewRequest("POST", "http://"+addr+"/v1/ingest/logs", strings.NewReader(payload))
		if err != nil {
			return 0, 0, 0
		}
		req.Header.Set("X-Raft-Tenant", tenant)
		begin := time.Now()
		resp, err := httpc.Do(req)
		if err != nil {
			return 0, 0, 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		lat = time.Since(begin)
		retrySec, _ = strconv.Atoi(resp.Header.Get("Retry-After"))
		return resp.StatusCode, retrySec, lat
	}

	// run builds the shared pipeline (gateway source -> 500µs/elem worker ->
	// counting sink), executes it with a 1ms occupancy observer on the
	// intake link, and drives client against the gateway while it runs.
	type occSample struct {
		at       time.Time
		len, cap int
	}
	type runOut struct {
		rep      *raft.Report
		samples  []occSample
		start    time.Time
		consumed int64
	}
	run := func(bestEffort bool, client func(addr string)) (runOut, error) {
		var out runOut
		gw, err := raft.NewGateway(raft.GatewayConfig{OccShed: occShed})
		if err != nil {
			return out, err
		}
		src := raft.NewSource[[]byte]("logs")
		if err := BindLines(gw, src); err != nil {
			return out, err
		}
		worker := raft.NewLambdaIO[[]byte, int](1, 1, func(k *raft.LambdaKernel) raft.Status {
			if _, err := raft.Pop[[]byte](k.In("0")); err != nil {
				return raft.Stop
			}
			spin(consumeNs * time.Nanosecond)
			if err := raft.Push(k.Out("0"), 1); err != nil {
				return raft.Stop
			}
			return raft.Proceed
		})
		worker.SetName("worker")
		var consumed int64
		sink := raft.NewLambdaIO[int, int](1, 0, func(k *raft.LambdaKernel) raft.Status {
			if _, err := raft.Pop[int](k.In("0")); err != nil {
				return raft.Stop
			}
			consumed++
			return raft.Proceed
		})
		sink.SetName("count")

		linkOpts := []raft.LinkOption{raft.Cap(linkCap), raft.MaxCap(linkCap)}
		if bestEffort {
			linkOpts = append(linkOpts, raft.AsBestEffort())
		}
		m := raft.NewMap()
		m.MustLink(src, worker, linkOpts...)
		m.MustLink(worker, sink)

		var smu sync.Mutex
		obs := func(ls raft.LiveStats) {
			smu.Lock()
			defer smu.Unlock()
			for _, l := range ls.Links {
				if strings.Contains(l.Name, "logs") {
					out.samples = append(out.samples, occSample{ls.At, l.Len, l.Cap})
				}
			}
		}

		done := make(chan error, 1)
		var rep *raft.Report
		go func() {
			var err error
			rep, err = m.Exe(raft.WithGateway(gw), raft.WithDynamicResize(false),
				raft.WithObserver(time.Millisecond, obs))
			done <- err
		}()
		// Wait for Exe to wire the source (503 until then).
		deadline := time.Now().Add(10 * time.Second)
		for {
			if status, _, _ := post(gw.Addr(), "warmup", 1); status == http.StatusAccepted {
				break
			}
			if time.Now().After(deadline) {
				src.CloseIntake()
				<-done
				return out, fmt.Errorf("source never wired")
			}
			time.Sleep(2 * time.Millisecond)
		}
		out.start = time.Now()
		client(gw.Addr())
		src.CloseIntake()
		select {
		case err := <-done:
			if err != nil {
				return out, err
			}
		case <-time.After(30 * time.Second):
			return out, fmt.Errorf("run did not drain after intake close")
		}
		out.rep, out.consumed = rep, consumed
		return out, nil
	}

	// flood paces floodConns connections at ~mu elems/s each for floodDur,
	// counting sheds and checking every 429 carries a positive Retry-After.
	type floodStats struct {
		attempted, admitted, sheds, retryOK atomic.Int64
		mu                                  sync.Mutex
		firstShed                           time.Time
		lats                                []time.Duration
	}
	flood := func(addr string, fs *floodStats) {
		var wg sync.WaitGroup
		for c := 0; c < floodConns; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				next := time.Now()
				stop := time.Now().Add(floodDur)
				for time.Now().Before(stop) {
					status, retry, lat := post(addr, "flood", floodBatch)
					fs.attempted.Add(floodBatch)
					fs.mu.Lock()
					fs.lats = append(fs.lats, lat)
					fs.mu.Unlock()
					switch status {
					case http.StatusAccepted:
						fs.admitted.Add(floodBatch)
					case http.StatusTooManyRequests:
						fs.sheds.Add(1)
						if retry > 0 {
							fs.retryOK.Add(1)
						}
						fs.mu.Lock()
						if fs.firstShed.IsZero() {
							fs.firstShed = time.Now()
						}
						fs.mu.Unlock()
					}
					next = next.Add(floodInterval)
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
				}
			}()
		}
		wg.Wait()
	}
	p99 := func(lats []time.Duration) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)*99/100]
	}

	// --- Part 1: shed before saturation under ~2x overload. ---
	var fs1 floodStats
	out1, err := run(false, func(addr string) { flood(addr, &fs1) })
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	offered := float64(fs1.attempted.Load()) / floodDur.Seconds()
	maxOcc, satAt := 0.0, time.Duration(0)
	for _, s := range out1.samples {
		if s.cap == 0 || s.at.Before(out1.start) {
			continue
		}
		f := float64(s.len) / float64(s.cap)
		if f > maxOcc {
			maxOcc = f
		}
		if satAt == 0 && f > 0.8 {
			satAt = s.at.Sub(out1.start)
		}
	}
	fmt.Printf("overload: flood offers %.0fk elems/s against µ=%.0fk (%.1fx), intake cap %d, shed line %.0f%%\n",
		offered/1e3, mu/1e3, offered/mu, linkCap, 100*occShed)
	fmt.Printf("%-22s %-12s %-12s %-14s %-12s\n", "", "admitted", "sheds", "retry-after>0", "max occ")
	fmt.Printf("%-22s %-12d %-12d %-14d %-11.0f%%\n", "flood tenant",
		fs1.admitted.Load(), fs1.sheds.Load(), fs1.retryOK.Load(), 100*maxOcc)
	var admittedTotal int64
	if out1.rep.Gateway != nil {
		for _, t := range out1.rep.Gateway.Tenants {
			admittedTotal += int64(t.AdmittedElems)
		}
	}
	switch {
	case fs1.sheds.Load() == 0:
		failf("A14: flood tenant was never shed at %.1fx overload", offered/mu)
	case fs1.retryOK.Load() != fs1.sheds.Load():
		failf("A14: %d/%d sheds missing a positive Retry-After", fs1.sheds.Load()-fs1.retryOK.Load(), fs1.sheds.Load())
	case satAt != 0:
		failf("A14: intake link exceeded 80%% occupancy at %v — shed too late", satAt.Round(time.Millisecond))
	default:
		fmt.Printf("gateway shed early: intake peaked at %.0f%% occupancy (bar: < 80%%)\n", 100*maxOcc)
	}
	if out1.consumed != admittedTotal {
		failf("A14: pipeline consumed %d elements, gateway admitted %d (exactly-once broken)", out1.consumed, admittedTotal)
	}

	// --- Part 2: co-tenant isolation + mid-run metrics scrape. ---
	var scraped string
	steady := func(addr string, scrape bool) []time.Duration {
		lats := make([]time.Duration, 0, steadyN)
		for i := 0; i < steadyN; i++ {
			_, _, lat := post(addr, "steady", steadyElems)
			lats = append(lats, lat)
			if scrape && i == steadyN/2 {
				if resp, err := httpc.Get("http://" + addr + "/metrics"); err == nil {
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					scraped = string(b)
				}
			}
			time.Sleep(steadyEvery)
		}
		return lats
	}
	var soloLats []time.Duration
	if _, err := run(false, func(addr string) { soloLats = steady(addr, false) }); err != nil {
		fmt.Println("error:", err)
		return
	}
	var contLats []time.Duration
	var fs2 floodStats
	if _, err := run(false, func(addr string) {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); flood(addr, &fs2) }()
		contLats = steady(addr, true)
		wg.Wait()
	}); err != nil {
		fmt.Println("error:", err)
		return
	}
	solo, cont := p99(soloLats), p99(contLats)
	fmt.Printf("\nco-tenant isolation: steady tenant (%d elems / %v), %d requests\n", steadyElems, steadyEvery, steadyN)
	fmt.Printf("%-22s %-14s\n", "", "request p99")
	fmt.Printf("%-22s %-14v\n", "solo", solo.Round(10*time.Microsecond))
	fmt.Printf("%-22s %-14v\n", "beside 2x flood", cont.Round(10*time.Microsecond))
	// The 1.5x bar plus a small absolute floor: solo p99 on loopback HTTP
	// is a few hundred µs, where scheduler jitter alone can exceed 50%.
	limit := solo + solo/2
	if floor := 10 * time.Millisecond; limit < floor {
		limit = floor
	}
	if cont > limit {
		failf("A14: co-tenant p99 %v beside the flood, limit %v (1.5x solo %v)", cont, limit, solo)
	} else {
		fmt.Printf("isolation held: %v <= %v (1.5x solo, 10ms floor)\n", cont.Round(10*time.Microsecond), limit.Round(10*time.Microsecond))
	}
	wantMetrics := []string{
		`raft_gateway_admitted_elements_total{tenant="steady"}`,
		`raft_gateway_shed_total{tenant="flood",reason="model"}`,
		`raft_gateway_source_admitted_elements_total{source="logs"}`,
	}
	missing := []string{}
	for _, w := range wantMetrics {
		if !strings.Contains(scraped, w) {
			missing = append(missing, w)
		}
	}
	if len(missing) > 0 {
		failf("A14: mid-run /metrics scrape missing %v", missing)
	} else {
		fmt.Printf("mid-run /metrics scrape exposed per-tenant and per-source counters\n")
	}

	// --- Part 3: AsBestEffort — lose elements (counted), not latency. ---
	var fs3 floodStats
	out3, err := run(true, func(addr string) { flood(addr, &fs3) })
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var dropped uint64
	var floodShedModel uint64
	if out3.rep.Gateway != nil {
		for _, s := range out3.rep.Gateway.Sources {
			dropped += s.Dropped
		}
		for _, t := range out3.rep.Gateway.Tenants {
			if t.Name == "flood" {
				floodShedModel = t.ShedModel
			}
		}
	}
	fp99 := p99(fs3.lats)
	fmt.Printf("\nbest-effort intake: same flood, link AsBestEffort\n")
	fmt.Printf("%-22s %-12s %-12s %-12s %-14s\n", "", "admitted", "sheds", "dropped", "request p99")
	fmt.Printf("%-22s %-12d %-12d %-12d %-14v\n", "flood tenant",
		fs3.admitted.Load(), fs3.sheds.Load(), dropped, fp99.Round(10*time.Microsecond))
	switch {
	case dropped == 0:
		failf("A14: best-effort link dropped nothing under %.1fx overload", offered/mu)
	case floodShedModel != 0:
		failf("A14: gateway model-shed %d batches on a best-effort link (should defer to the ring)", floodShedModel)
	case fp99 > 50*time.Millisecond:
		failf("A14: best-effort request p99 %v — latency was supposed to be the protected side", fp99)
	default:
		fmt.Printf("trade held: %d elements dropped (counted), zero model sheds, p99 %v\n",
			dropped, fp99.Round(10*time.Microsecond))
	}

	fmt.Println("\nexpected: at ~2x overload the admission model turns requests away")
	fmt.Println("with a computed Retry-After while the intake queue still has a")
	fmt.Println(">=20% headroom margin; the paced co-tenant's p99 stays within")
	fmt.Println("1.5x of its solo baseline because sheds answer in microseconds")
	fmt.Println("instead of parking connections behind the flood's backlog; and a")
	fmt.Println("best-effort intake flips the trade — every element admitted fast,")
	fmt.Println("overflow counted in the drop telemetry instead of in latency.")
}

// BindLines registers src on gw with a newline-splitting decoder — the
// shared payload convention for the A14 workloads.
func BindLines(gw *raft.Gateway, src *raft.Source[[]byte]) error {
	return raft.BindSource(gw, src, func(p []byte) ([][]byte, error) {
		if len(p) == 0 {
			return nil, fmt.Errorf("empty payload")
		}
		return bytes.Split(p, []byte("\n")), nil
	})
}
