// Command raft-bench regenerates every table and figure of the RaftLib
// paper's evaluation (PMAM '15, §5) plus the ablation studies listed in
// DESIGN.md:
//
//	raft-bench -table1            hardware summary (paper Table 1)
//	raft-bench -fig4              queue-size sweep, matmul (paper Figure 4)
//	raft-bench -fig10             text search GB/s vs cores (paper Figure 10)
//	raft-bench -ablate <names>    comma-separated list drawn from:
//	                              split | resize | clone | sched | monitor |
//	                              map | tcp | model | swap | fault | batch |
//	                              obs | rate | gateway | view | latency | graph
//	raft-bench -all               everything above
//
// Absolute numbers depend on the host; EXPERIMENTS.md records the shape
// comparisons against the paper.
//
// Acceptance assertions (A5 monitoring overhead, A11 batching speedup,
// A12 telemetry overhead, A13 controller parity and overhead, A14
// gateway admission bars, A16 latency-marker overhead and flight
// recorder) set a
// non-zero exit status on failure, so CI can gate on the bench smoke. On
// small runners (GOMAXPROCS < 2, or -small-runner) the assertions
// downgrade to warnings: single-core hosts cannot overlap producer and
// consumer, so perf ratios there measure scheduler luck, not the runtime
// (variance documented in EXPERIMENTS A11). The nightly CI job on the
// pinned multi-core runner passes -enforce-bars, which refuses the
// downgrade — there a missed bar always fails. -seed perturbs every
// workload's deterministic seed, letting CI check that conclusions are
// not an artifact of one particular corpus.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "print the hardware summary (Table 1)")
		fig4     = flag.Bool("fig4", false, "run the queue-size sweep (Figure 4)")
		fig10    = flag.Bool("fig10", false, "run the text-search scaling study (Figure 10)")
		ablate   = flag.String("ablate", "", "comma-separated ablations: split|resize|clone|sched|monitor|map|tcp|model|swap|fault|batch|obs|rate|gateway|view|latency|graph")
		all      = flag.Bool("all", false, "run every experiment")
		corpusMB = flag.Int("corpus", 64, "text-search corpus size in MiB (Figure 10)")
		items    = flag.Int("items", 2_000_000, "synthetic pipeline length in elements (batch ablation)")
		reps     = flag.Int("reps", 10, "repetitions per configuration (Figure 4)")
		coresArg = flag.String("cores", "", "comma-separated core counts for Figure 10 (default 1,2,4,...,NumCPU)")
		csvOut   = flag.String("csv", "", "directory to also write figure data as CSV")
		seed     = flag.Uint64("seed", 0, "offset added to every workload seed (CI runs vary it to de-correlate flakes)")
		schedKs  = flag.String("sched-kernels", "", "comma-separated kernel counts for the A17 scheduler scale sweep (default 1000,10000,100000)")
		small    = flag.Bool("small-runner", false, "downgrade perf assertions to warnings (auto-set when GOMAXPROCS < 2)")
		enforce  = flag.Bool("enforce-bars", false, "perf-bar misses always fail, refusing the small-runner downgrade (nightly pinned-runner mode)")
	)
	flag.Parse()
	csvDir = *csvOut
	benchItems = *items
	benchSeed = *seed
	if *schedKs != "" {
		var ks []int
		for _, f := range strings.Split(*schedKs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 2 {
				fmt.Fprintf(os.Stderr, "raft-bench: bad -sched-kernels entry %q\n", f)
				os.Exit(2)
			}
			ks = append(ks, n)
		}
		benchSchedKernels = ks
	}
	smallRunner = *small || runtime.GOMAXPROCS(0) < 2
	if *enforce {
		// The dedicated-runner gate: a host too small to measure on must
		// fail loudly rather than silently warn its way to green.
		if runtime.GOMAXPROCS(0) < 2 {
			fmt.Fprintf(os.Stderr, "raft-bench: -enforce-bars on a GOMAXPROCS=%d host — perf bars need a multi-core runner\n",
				runtime.GOMAXPROCS(0))
			os.Exit(2)
		}
		smallRunner = false
		fmt.Println("enforce-bars mode: perf-bar misses are failures")
	} else if smallRunner {
		fmt.Printf("small-runner mode: GOMAXPROCS=%d — perf assertions are warnings, not failures\n",
			runtime.GOMAXPROCS(0))
	}

	cores := parseCores(*coresArg)

	ran := false
	if *table1 || *all {
		runTable1()
		ran = true
	}
	if *fig4 || *all {
		runFig4(*reps)
		ran = true
	}
	if *fig10 || *all {
		runFig10(*corpusMB, cores)
		ran = true
	}
	if *ablate != "" {
		for _, name := range strings.Split(*ablate, ",") {
			runAblation(strings.TrimSpace(name), *corpusMB, cores)
		}
		ran = true
	} else if *all {
		for _, name := range []string{"split", "resize", "clone", "sched", "monitor", "map", "tcp", "model", "swap", "fault", "batch", "obs", "rate", "gateway", "view", "latency", "graph"} {
			runAblation(name, *corpusMB, cores)
		}
	}
	if !ran && !*all {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(exitCode)
}

// benchSeed offsets every deterministic workload seed (the -seed flag).
var benchSeed uint64

// smallRunner relaxes hard perf assertions into warnings on hosts that
// cannot overlap pipeline stages (GOMAXPROCS < 2) — or when CI says so.
var smallRunner bool

// exitCode is the process exit status; failf sets it to 1.
var exitCode int

// failf reports an acceptance-assertion failure: fatal for the exit
// status on full-size runners, a warning in small-runner mode.
func failf(format string, args ...any) {
	if smallRunner {
		fmt.Printf("WARN (small-runner): "+format+"\n", args...)
		return
	}
	fmt.Printf("FAIL: "+format+"\n", args...)
	exitCode = 1
}

// parseCores parses "1,2,4" or defaults to powers of two up to NumCPU.
func parseCores(arg string) []int {
	if arg != "" {
		var out []int
		for _, f := range strings.Split(arg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "raft-bench: bad -cores entry %q\n", f)
				os.Exit(2)
			}
			out = append(out, n)
		}
		return out
	}
	maxCores := runtime.GOMAXPROCS(0)
	var out []int
	for c := 1; c < maxCores; c *= 2 {
		out = append(out, c)
	}
	return append(out, maxCores)
}

// header prints a section banner.
func header(title string) {
	fmt.Printf("\n==== %s ====\n\n", title)
}

// gbps formats bytes/second as GB/s (decimal GB, as the paper plots).
func gbps(bytesPerSec float64) string {
	return fmt.Sprintf("%.3f", bytesPerSec/1e9)
}
