package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
)

// csvDir, when non-empty, makes the figure experiments also write their
// data series as CSV files (one per artifact) for external plotting.
var csvDir string

// writeCSV writes one artifact's rows to <csvDir>/<name>.csv; it is a
// no-op when -csv was not given.
func writeCSV(name string, header []string, rows [][]string) {
	if csvDir == "" {
		return
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "raft-bench: csv: %v\n", err)
		return
	}
	path := filepath.Join(csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "raft-bench: csv: %v\n", err)
		return
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		fmt.Fprintf(os.Stderr, "raft-bench: csv: %v\n", err)
		return
	}
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			fmt.Fprintf(os.Stderr, "raft-bench: csv: %v\n", err)
			return
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fmt.Fprintf(os.Stderr, "raft-bench: csv: %v\n", err)
		return
	}
	fmt.Printf("(wrote %s)\n", path)
}
