package main

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// runTable1 prints the benchmarking-hardware summary in the format of the
// paper's Table 1 ("Processor / Cores / RAM / OS Version"), alongside the
// paper's own row for reference.
func runTable1() {
	header("Table 1: Summary of Benchmarking Hardware")
	fmt.Printf("%-12s %-34s %-6s %-8s %s\n", "", "Processor", "Cores", "RAM", "OS Version")
	fmt.Printf("%-12s %-34s %-6s %-8s %s\n", "paper", "Intel Xeon E5-2650", "16", "62 GB", "Linux 2.6.32")
	fmt.Printf("%-12s %-34s %-6d %-8s %s\n", "this host",
		cpuModel(), runtime.GOMAXPROCS(0), totalRAM(), osVersion())
}

// cpuModel reads the processor name from /proc/cpuinfo (best effort).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if i := strings.IndexByte(line, ':'); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return runtime.GOARCH
}

// totalRAM reads MemTotal from /proc/meminfo (best effort).
func totalRAM() string {
	data, err := os.ReadFile("/proc/meminfo")
	if err != nil {
		return "?"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "MemTotal:") {
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				kb, err := strconv.ParseInt(fields[1], 10, 64)
				if err == nil {
					return fmt.Sprintf("%d GB", kb>>20)
				}
			}
		}
	}
	return "?"
}

// osVersion reads the kernel release (best effort).
func osVersion() string {
	data, err := os.ReadFile("/proc/sys/kernel/osrelease")
	if err != nil {
		return runtime.GOOS
	}
	return runtime.GOOS + " " + strings.TrimSpace(string(data))
}
