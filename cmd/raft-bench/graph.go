package main

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"raftlib/kernels"
	"raftlib/raft"
)

// ablateGraph measures runtime graph rewriting (A18): two independent
// pipelines share one execution — a hot "untouched" pipeline whose
// completion time is the throughput probe, and a playground pipeline
// that rewrite transactions repeatedly splice a relay kernel into and
// out of. Three properties are priced:
//
//   - splice pause: the wall-clock cost of one rewrite commit (build,
//     gate-pause, rebind, drain, retire), reported as p50/p99/max;
//   - isolation: the untouched pipeline's throughput with rewrites
//     hammering the graph must stay within 3% of a rewrite-free run —
//     the no-global-stop-the-world claim;
//   - exactness: both pipelines' sums must be exact on every run — a
//     splice may never lose, duplicate or reorder elements.
func ablateGraph() {
	header("A18: Runtime graph rewriting — splice pause, untouched throughput, exactness")
	items := int64(benchItems)
	wantHot := items * (items - 1) / 2
	const cycles = 20 // splice-in + splice-out transactions per rewrite run

	// run executes the two-pipeline map with the given number of
	// splice-in/splice-out cycles against the playground, returning the
	// hot pipeline's elapsed time and the individual commit durations.
	run := func(cycles int) (hot time.Duration, pauses []time.Duration) {
		m := raft.NewMap()

		// Hot pipeline: generate -> reduce, element-wise small elements —
		// the shape most sensitive to any runtime-wide stall.
		var hotSum int64
		var hotSeen int64
		var hotDoneAt atomic.Int64
		hotSink := raft.NewLambda[int64](1, 0, func(k *raft.LambdaKernel) raft.Status {
			v, err := raft.Pop[int64](k.In("0"))
			if err != nil {
				return raft.Stop
			}
			hotSum += v
			if hotSeen++; hotSeen == items {
				hotDoneAt.Store(time.Now().UnixNano())
			}
			return raft.Proceed
		})
		m.MustLink(kernels.NewGenerate(items, func(i int64) int64 { return i }), hotSink)

		// Playground: an open-ended source the splice site lives behind,
		// paced so it stays busy (hence gate-pausable) without competing
		// with the hot pipeline for a whole core.
		var stop atomic.Bool
		var emitted int64
		pgGen := raft.NewLambda[int64](0, 1, func(k *raft.LambdaKernel) raft.Status {
			if stop.Load() {
				return raft.Stop
			}
			if err := raft.Push(k.Out("0"), emitted); err != nil {
				return raft.Stop
			}
			if emitted++; emitted%256 == 0 {
				time.Sleep(100 * time.Microsecond)
			}
			return raft.Proceed
		})
		var pgSum int64
		pgSink := raft.NewLambda[int64](1, 0, func(k *raft.LambdaKernel) raft.Status {
			v, err := raft.Pop[int64](k.In("0"))
			if err != nil {
				return raft.Stop
			}
			pgSum += v
			return raft.Proceed
		})
		spliceAt := m.MustLink(pgGen, pgSink)

		start := time.Now()
		ex, err := m.ExeAsync()
		if err != nil {
			fmt.Println("error:", err)
			return 0, nil
		}
		rw := ex.Rewriter()
		for c := 0; c < cycles; c++ {
			relay := raft.NewLambda[int64](1, 1, func(k *raft.LambdaKernel) raft.Status {
				v, err := raft.Pop[int64](k.In("0"))
				if err != nil {
					return raft.Stop
				}
				if err := raft.Push(k.Out("0"), v); err != nil {
					return raft.Stop
				}
				return raft.Proceed
			})
			relay.SetName(fmt.Sprintf("relay-%d", c))

			tx := rw.Begin()
			commit := func() bool {
				t0 := time.Now()
				if err := tx.Commit(); err != nil {
					failf("A18: rewrite commit failed: %v", err)
					return false
				}
				pauses = append(pauses, time.Since(t0))
				return true
			}
			tx.RemoveLink(spliceAt)
			in1, _ := tx.Link(pgGen, relay)
			in2, _ := tx.Link(relay, pgSink)
			if in1 == nil || in2 == nil || !commit() {
				break
			}
			tx = rw.Begin()
			tx.RemoveLink(in1)
			tx.RemoveLink(in2)
			tx.RemoveKernel(relay)
			out, _ := tx.Link(pgGen, pgSink)
			if out == nil || !commit() {
				break
			}
			spliceAt = out
		}
		stop.Store(true)
		if _, err := ex.Wait(); err != nil {
			fmt.Println("error:", err)
			return 0, nil
		}
		if hotSum != wantHot {
			failf("A18: untouched pipeline sum = %d, want %d (rewrites disturbed a foreign stream)", hotSum, wantHot)
		}
		if wantPg := emitted * (emitted - 1) / 2; pgSum != wantPg {
			failf("A18: spliced pipeline sum = %d, want %d over %d elements (a splice lost or duplicated)", pgSum, wantPg, emitted)
		}
		at := hotDoneAt.Load()
		if at == 0 {
			failf("A18: untouched pipeline never completed")
			return 0, pauses
		}
		return time.Unix(0, at).Sub(start), pauses
	}

	fmt.Printf("hot: generate -> reduce, %d int64 elements; playground: %d splice-in/out cycles, best of 3\n\n", items, cycles)

	// Interleave repetitions so host drift hits both configurations
	// equally; keep the best (least-disturbed) time per configuration.
	var base, disturbed time.Duration
	var pauses []time.Duration
	for rep := 0; rep < 3; rep++ {
		if b, _ := run(0); b > 0 && (base == 0 || b < base) {
			base = b
		}
		d, p := run(cycles)
		if d > 0 && (disturbed == 0 || d < disturbed) {
			disturbed = d
		}
		if len(p) > len(pauses) {
			pauses = p
		}
	}
	if base == 0 || disturbed == 0 || len(pauses) == 0 {
		return
	}

	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	pct := func(p float64) time.Duration { return pauses[int(p*float64(len(pauses)-1))] }
	fmt.Printf("%-26s %-12s %-12s %-12s\n", "commit pause", "p50", "p99", "max")
	fmt.Printf("%-26s %-12v %-12v %-12v\n", fmt.Sprintf("over %d commits", len(pauses)),
		pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
		pauses[len(pauses)-1].Round(time.Microsecond))

	dip := 100 * (float64(disturbed)/float64(base) - 1)
	fmt.Printf("\n%-26s %-12s %-12s %-10s\n", "untouched pipeline", "base(ms)", "rewrite(ms)", "dip")
	fmt.Printf("%-26s %-12.1f %-12.1f %-+.1f%%\n", "generate->reduce",
		float64(base)/float64(time.Millisecond), float64(disturbed)/float64(time.Millisecond), dip)
	if dip > 3 {
		failf("A18: untouched-subgraph throughput dipped %.1f%% under rewrites, bar is 3%%", dip)
	}
	if p99 := pct(0.99); p99 > 100*time.Millisecond {
		failf("A18: rewrite pause p99 %v, bar is 100ms", p99.Round(time.Microsecond))
	}
	fmt.Println("\nexpected: commit pauses are the gate-pause window plus drain of")
	fmt.Println("the sealed stream — milliseconds; the untouched pipeline never")
	fmt.Println("pauses (only sealed links' producers gate), so its dip is noise.")
}
