package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"raftlib/internal/oar"
	"raftlib/kernels"
	"raftlib/raft"
)

// ablateLatency evaluates the latency-provenance layer (A16): sampled
// markers stamped at ingest, carried through queues, adapters and bridges,
// retired at sinks into per-flow e2e histograms with per-stage residence.
//
//  1. marker overhead — the worst-case element-wise pipeline at the
//     default stride must run within 3% of a markers-off run (same
//     rep-major best-of-N discipline as A12).
//  2. attribution — a pipeline with one deliberately slow stage; the
//     per-stage residence table must name that stage as the top
//     kernel-residence consumer, and the injected stall must breach the
//     SLO and produce a flight dump whose trace.json parses as a Chrome
//     trace with cross-kernel latency flow events.
//  3. per-tenant e2e — two tenants share a gateway-fed pipeline; the
//     final report (and the /v1/stats JSON) must expose a per-tenant
//     e2e p99 for each.
//  4. bridge transit — markers must cross a loopback TCP bridge inside
//     the frame sidecar without perturbing the payload: the distributed
//     sum stays exact and the consumer-side report attributes a
//     "bridge:" transit stage.
func ablateLatency() {
	header("A16: Latency provenance — marker overhead, attribution, flight recorder")

	// --- Part 1: marker overhead on the element-wise pipeline. ---
	items := int64(benchItems)
	want := items * (items - 1) / 2
	type cfg struct {
		name string
		opts []raft.Option
	}
	cases := []cfg{
		{"markers-off", []raft.Option{raft.WithoutLatencyMarkers()}},
		{fmt.Sprintf("stride=%d (default)", raft.DefaultMarkerStride), nil},
		{"stride=64", []raft.Option{raft.WithLatencyMarkers(64)}},
	}
	var retired uint64
	runSum := func(opts []raft.Option) float64 {
		var sum int64
		m := raft.NewMap()
		m.MustLink(kernels.NewGenerate(items, func(i int64) int64 { return i }),
			kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &sum))
		start := time.Now()
		rep, err := m.Exe(opts...)
		if err != nil {
			fmt.Println("error:", err)
			return 0
		}
		elapsed := time.Since(start)
		if sum != want {
			fmt.Printf("!! sum = %d, want %d (markers changed the stream)\n", sum, want)
		}
		if rep.Latency != nil && rep.Latency.Retired > retired {
			retired = rep.Latency.Retired
		}
		return float64(items) / elapsed.Seconds()
	}
	const reps = 7
	best := make([]float64, len(cases))
	for rep := 0; rep < reps; rep++ { // rep-major: host drift hits every config equally
		for ci, c := range cases {
			if r := runSum(c.opts); r > best[ci] {
				best[ci] = r
			}
		}
	}
	fmt.Printf("small-element synthetic: generate -> reduce, %d int64 elements, element-wise, best of %d\n\n", items, reps)
	fmt.Printf("%-22s %-12s %-10s\n", "config", "Mitems/s", "overhead")
	for ci, c := range cases {
		if ci == 0 {
			fmt.Printf("%-22s %-12.2f %-10s\n", c.name, best[0]/1e6, "-")
		} else {
			fmt.Printf("%-22s %-12.2f %-+.1f%%\n", c.name, best[ci]/1e6, 100*(best[0]/best[ci]-1))
		}
	}
	fmt.Printf("\nmarkers retired at default stride: %d\n", retired)
	if over := 100 * (best[0]/best[1] - 1); over > 3 {
		failf("A16: default-stride marker overhead %.1f%% > 3%% on the element-wise pipeline", over)
	}
	if retired == 0 {
		failf("A16: no markers retired at the default stride")
	}

	// --- Part 2: attribution + SLO breach -> flight dump. ---
	fmt.Printf("\nattribution: generate -> slow (every 512th item stalls 2ms) -> sink, stride 128\n")
	flightBase := filepath.Join(os.TempDir(), fmt.Sprintf("raft-a16-%d", os.Getpid()))
	defer os.RemoveAll(flightBase + ".flightdump")
	const stallItems = 20_000
	slow := raft.NewLambdaIO[int64, int64](1, 1, func(k *raft.LambdaKernel) raft.Status {
		v, err := raft.Pop[int64](k.In("0"))
		if err != nil {
			return raft.Stop
		}
		// The injected stall, phase-aligned with the stride-128 marker
		// elements (push k carries value k-1) so every 4th marker measures
		// its own stall as kernel residence, not just queue time behind it.
		if v%512 == 127 {
			time.Sleep(2 * time.Millisecond)
		}
		if err := raft.Push(k.Out("0"), v); err != nil {
			return raft.Stop
		}
		return raft.Proceed
	})
	slow.SetName("slow")
	var got int64
	m := raft.NewMap()
	m.MustLink(kernels.NewGenerate(stallItems, func(i int64) int64 { return i }), slow)
	m.MustLink(slow, kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &got))
	rep, err := m.Exe(
		raft.WithLatencyMarkers(128),
		raft.WithLatencySLO(500*time.Microsecond),
		raft.WithFlightRecorder(flightBase),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if rep.Latency == nil || rep.Latency.Retired == 0 {
		failf("A16: stall pipeline retired no markers")
		return
	}
	fmt.Printf("  retired %d markers across %d stage(s)\n", rep.Latency.Retired, len(rep.Latency.Stages))
	// Residence (queue + kernel) must concentrate on the hop into the slow
	// kernel: markers either measure the stall directly or queue behind it.
	top := ""
	var topMean int64
	for _, s := range rep.Latency.Stages {
		if s.Count == 0 {
			continue
		}
		if mean := (s.QueueNs + s.KernelNs) / int64(s.Count); mean > topMean {
			topMean, top = mean, s.Stage
		}
	}
	fmt.Printf("  top residence: %-34s mean %v\n", top, time.Duration(topMean).Round(time.Microsecond))
	if !strings.Contains(top, "->slow") {
		failf("A16: per-stage attribution blamed %q, want the hop into the slow kernel", top)
	}
	if rep.Latency.FlightDumps == 0 {
		failf("A16: SLO breaches (bar 500µs under a 2ms stall) produced no flight dump")
	} else {
		tracePath := filepath.Join(rep.Latency.FlightDir, "trace.json")
		raw, err := os.ReadFile(tracePath)
		if err != nil {
			failf("A16: flight dump missing trace.json: %v", err)
		} else {
			var doc struct {
				TraceEvents []struct {
					Ph  string `json:"ph"`
					Cat string `json:"cat"`
				} `json:"traceEvents"`
			}
			if err := json.Unmarshal(raw, &doc); err != nil {
				failf("A16: flight trace.json is not valid Chrome-trace JSON: %v", err)
			} else {
				var starts, ends int
				for _, e := range doc.TraceEvents {
					if e.Cat == "latency" {
						switch e.Ph {
						case "s":
							starts++
						case "f":
							ends++
						}
					}
				}
				fmt.Printf("  flight dump: %d dump(s) in %s (%d events, %d/%d flow start/end)\n",
					rep.Latency.FlightDumps, rep.Latency.FlightDir, len(doc.TraceEvents), starts, ends)
				if starts == 0 || ends == 0 {
					failf("A16: flight trace.json carries no cross-kernel latency flow events")
				}
				if _, err := os.Stat(filepath.Join(rep.Latency.FlightDir, "postmortem.txt")); err != nil {
					failf("A16: flight dump missing postmortem.txt: %v", err)
				}
			}
		}
	}

	// --- Part 3: per-tenant e2e p99 through the gateway. ---
	fmt.Printf("\nper-tenant e2e: two tenants -> gateway -> worker -> sink, stride 8\n")
	gw, err := raft.NewGateway(raft.GatewayConfig{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	src := raft.NewSource[[]byte]("logs")
	if err := BindLines(gw, src); err != nil {
		fmt.Println("error:", err)
		return
	}
	worker := raft.NewLambdaIO[[]byte, int](1, 1, func(k *raft.LambdaKernel) raft.Status {
		if _, err := raft.Pop[[]byte](k.In("0")); err != nil {
			return raft.Stop
		}
		time.Sleep(50 * time.Microsecond)
		if err := raft.Push(k.Out("0"), 1); err != nil {
			return raft.Stop
		}
		return raft.Proceed
	})
	worker.SetName("worker")
	sink := raft.NewLambdaIO[int, int](1, 0, func(k *raft.LambdaKernel) raft.Status {
		if _, err := raft.Pop[int](k.In("0")); err != nil {
			return raft.Stop
		}
		return raft.Proceed
	})
	sink.SetName("drain")
	gm := raft.NewMap()
	gm.MustLink(src, worker)
	gm.MustLink(worker, sink)
	done := make(chan error, 1)
	var gwRep *raft.Report
	go func() {
		var err error
		gwRep, err = gm.Exe(raft.WithGateway(gw), raft.WithLatencyMarkers(8))
		done <- err
	}()
	httpc := &http.Client{Timeout: 10 * time.Second}
	post := func(tenant string, elems int) int {
		payload := strings.TrimSuffix(strings.Repeat("needle\n", elems), "\n")
		req, err := http.NewRequest("POST", "http://"+gw.Addr()+"/v1/ingest/logs", strings.NewReader(payload))
		if err != nil {
			return 0
		}
		req.Header.Set("X-Raft-Tenant", tenant)
		resp, err := httpc.Do(req)
		if err != nil {
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	deadline := time.Now().Add(10 * time.Second)
	for post("warmup", 1) != http.StatusAccepted {
		if time.Now().After(deadline) {
			src.CloseIntake()
			<-done
			fmt.Println("error: source never wired")
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	var wg sync.WaitGroup
	for _, tenant := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func(t string) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				post(t, 4)
				time.Sleep(time.Millisecond)
			}
		}(tenant)
	}
	wg.Wait()
	var statsBody string
	if resp, err := httpc.Get("http://" + gw.Addr() + "/v1/stats"); err == nil {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		statsBody = string(b)
	}
	src.CloseIntake()
	if err := <-done; err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("  %-10s %-12s %-12s\n", "tenant", "admitted", "e2e p99")
	missing := []string{}
	if gwRep.Gateway != nil {
		for _, t := range gwRep.Gateway.Tenants {
			if t.Name == "warmup" {
				continue
			}
			fmt.Printf("  %-10s %-12d %-12v\n", t.Name, t.AdmittedElems, t.E2EP99.Round(10*time.Microsecond))
			if t.E2EP99 == 0 {
				missing = append(missing, t.Name)
			}
		}
	}
	if len(missing) > 0 {
		failf("A16: no per-tenant e2e p99 for %v in the gateway report", missing)
	}
	if !strings.Contains(statsBody, "E2EP99Ns") {
		failf("A16: /v1/stats JSON does not expose E2EP99Ns")
	} else {
		fmt.Printf("  /v1/stats exposes per-tenant E2EP99Ns\n")
	}

	// --- Part 4: markers across a loopback TCP bridge. ---
	fmt.Printf("\nbridge transit: generate -> tcp-send ~~> tcp-recv -> reduce, 200k items, stride 256\n")
	const bitems = 200_000
	node, err := oar.NewNode("a16", "127.0.0.1:0")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer node.Close()
	send, recv, err := oar.Bridge[int64](node, "a16-sum")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	producer := raft.NewMap()
	producer.MustLink(kernels.NewGenerate(bitems, func(i int64) int64 { return i }), send)
	var total int64
	consumer := raft.NewMap()
	consumer.MustLink(recv, kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total))
	var errA, errB error
	var crep *raft.Report
	wg.Add(2)
	go func() { defer wg.Done(); _, errA = producer.Exe(raft.WithLatencyMarkers(256)) }()
	go func() { defer wg.Done(); crep, errB = consumer.Exe(raft.WithLatencyMarkers(256)) }()
	wg.Wait()
	if errA != nil || errB != nil {
		fmt.Println("error:", errA, errB)
		return
	}
	if wantB := int64(bitems) * (bitems - 1) / 2; total != wantB {
		failf("A16: bridged sum = %d, want %d (marker sidecar perturbed the payload)", total, wantB)
	}
	bridgeStage, bridgeRetired := "", uint64(0)
	if crep.Latency != nil {
		bridgeRetired = crep.Latency.Retired
		for _, s := range crep.Latency.Stages {
			if strings.HasPrefix(s.Stage, "bridge:") {
				bridgeStage = s.Stage
			}
		}
	}
	fmt.Printf("  sum exact; consumer retired %d markers, transit stage %q\n", bridgeRetired, bridgeStage)
	if bridgeRetired == 0 {
		failf("A16: no markers survived the bridge crossing")
	}
	if bridgeStage == "" {
		failf("A16: consumer report lacks a bridge: transit stage")
	}

	fmt.Println("\nexpected: the sampled marker path costs one stride countdown per")
	fmt.Println("push — within the 3% bar element-wise; residence attribution names")
	fmt.Println("the stalled kernel; a 2ms stall against a 500µs SLO arms the flight")
	fmt.Println("recorder whose trace.json carries Perfetto flow arrows; tenants get")
	fmt.Println("separate e2e distributions; and the bridge sidecar moves markers")
	fmt.Println("without touching payload bytes, so distributed sums stay exact.")
}
