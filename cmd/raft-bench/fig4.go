package main

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"raftlib/internal/apps/matmul"
)

// fig4Sizes is the queue-size sweep (bytes per stream), spanning the
// paper's x-axis from KiB-class up past the 8 MB knee.
var fig4Sizes = []int{
	2 << 10, 8 << 10, 32 << 10, 128 << 10,
	512 << 10, 2 << 20, 8 << 20, 32 << 20,
}

// runFig4 reproduces Figure 4: execution time of the streaming matrix
// multiply as a function of the (fixed) queue allocation, reported as mean
// with 5th/95th percentiles across repetitions.
func runFig4(reps int) {
	header("Figure 4: Execution time vs queue size (streaming matmul)")
	fmt.Printf("matrix %dx%d float64, workers=%d, %d repetitions per point\n\n",
		matmul.Dim, matmul.Dim, fig4Workers(), reps)
	fmt.Printf("%-12s %-12s %-12s %-12s\n", "queueBytes", "mean(ms)", "p5(ms)", "p95(ms)")

	a, b := matmul.NewRandom(1), matmul.NewRandom(2)
	var rows [][]string
	for _, size := range fig4Sizes {
		times := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			res, err := matmul.Run(a, b, matmul.Config{
				QueueCapBytes: size,
				Workers:       fig4Workers(),
			})
			if err != nil {
				fmt.Printf("%-12d ERROR: %v\n", size, err)
				return
			}
			times = append(times, float64(res.Elapsed)/float64(time.Millisecond))
		}
		mean, p5, p95 := summarize(times)
		fmt.Printf("%-12d %-12.2f %-12.2f %-12.2f\n", size, mean, p5, p95)
		rows = append(rows, []string{
			fmt.Sprint(size), fmt.Sprintf("%.3f", mean),
			fmt.Sprintf("%.3f", p5), fmt.Sprintf("%.3f", p95),
		})
	}
	writeCSV("fig4", []string{"queue_bytes", "mean_ms", "p5_ms", "p95_ms"}, rows)
	fmt.Println("\npaper shape: slow at tiny queues; flat optimum; time and p95")
	fmt.Println("spread increase again for allocations in the >=8 MB class.")
}

func fig4Workers() int {
	w := runtime.GOMAXPROCS(0) / 2
	if w < 2 {
		w = 2
	}
	if w > 4 {
		w = 4
	}
	return w
}

// summarize returns mean, p5 and p95 of xs.
func summarize(xs []float64) (mean, p5, p95 float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean = sum / float64(len(sorted))
	p5 = sorted[int(0.05*float64(len(sorted)-1))]
	p95 = sorted[int(0.95*float64(len(sorted)-1))]
	return mean, p5, p95
}
