package main

import (
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"raftlib/internal/apps/textsearch"
	"raftlib/internal/corpus"
	"raftlib/internal/graph"
	"raftlib/internal/mapper"
	"raftlib/internal/oar"
	"raftlib/kernels"
	"raftlib/raft"
)

// runAblation dispatches one DESIGN.md ablation study.
func runAblation(name string, corpusMB int, cores []int) {
	switch name {
	case "split":
		ablateSplit()
	case "resize":
		ablateResize()
	case "clone":
		ablateClone(corpusMB)
	case "sched":
		ablateSched(corpusMB)
		ablateSchedScale()
	case "monitor":
		ablateMonitor(corpusMB)
	case "map":
		ablateMap()
	case "tcp":
		ablateTCP()
	case "model":
		ablateModel(corpusMB)
	case "swap":
		ablateSwap(corpusMB)
	case "fault":
		ablateFault(corpusMB)
	case "batch":
		ablateBatch(corpusMB)
	case "obs":
		ablateObs(corpusMB)
	case "rate":
		ablateRate()
	case "gateway":
		ablateGateway()
	case "view":
		ablateView()
	case "latency":
		ablateLatency()
	case "graph":
		ablateGraph()
	default:
		fmt.Fprintf(os.Stderr, "raft-bench: unknown ablation %q\n", name)
		os.Exit(2)
	}
}

// newSkewedWorker returns a cloneable worker whose per-item service time
// is heavy tailed: most items are quick, every 8th holds the replica for
// ~40x longer (modeled as latency — an I/O wait or a cache-miss storm —
// so replica overlap is observable even on a single-CPU host). Skew is
// what separates the split policies (§4.1).
func newSkewedWorker() raft.Kernel {
	return raft.NewLambdaCloneable(func() *raft.LambdaKernel {
		return raft.NewLambda[int64](1, 1, func(k *raft.LambdaKernel) raft.Status {
			v, err := raft.Pop[int64](k.In("0"))
			if err != nil {
				return raft.Stop
			}
			d := time.Millisecond
			if v%8 == 0 {
				d = 10 * time.Millisecond
			}
			time.Sleep(d)
			if err := raft.Push(k.Out("0"), v); err != nil {
				return raft.Stop
			}
			return raft.Proceed
		})
	})
}

// ablateSplit compares the round-robin and least-utilized distribution
// strategies under a skewed workload (A1).
func ablateSplit() {
	header("A1: Split strategy — round-robin vs least-utilized (skewed work)")
	const items = 800
	const replicas = 4
	fmt.Printf("%d items, %d replicas, every 8th item ~10x slower\n", items, replicas)
	fmt.Printf("(the heavy period resonates with round-robin: heavies pile on one replica)\n\n")
	fmt.Printf("%-16s %-12s\n", "policy", "elapsed(ms)")
	for _, policy := range []raft.SplitPolicy{raft.RoundRobin, raft.LeastUtilized} {
		m := raft.NewMap()
		var out []int64
		w := newSkewedWorker()
		m.MustLink(kernels.NewGenerate(items, func(i int64) int64 { return i }), w,
			raft.AsOutOfOrder(), raft.Cap(4), raft.MaxCap(4))
		m.MustLink(w, kernels.NewWriteEach(&out))
		start := time.Now()
		if _, err := m.Exe(raft.WithAutoReplicate(replicas), raft.WithSplitPolicy(policy)); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%-16s %-12.1f\n", policy, float64(time.Since(start))/float64(time.Millisecond))
		if len(out) != items {
			fmt.Printf("!! received %d items, want %d\n", len(out), items)
		}
	}
	fmt.Println("\nexpected: least-utilized wins under skew (it routes around")
	fmt.Println("replicas stuck on heavy items; round-robin queues behind them).")
}

// ablateResize compares fixed-small, fixed-large and dynamically resized
// queues on a bursty producer (A2). The producer emits a burst of B items
// (instant), then pays a long per-burst latency (an I/O fetch); the
// consumer drains steadily. A queue that can hold a whole burst lets the
// consumer work through the producer's idle period; an undersized queue
// forces the consumer to idle during every fetch. This effect is
// buffering, not parallelism, so it reproduces on any core count.
func ablateResize() {
	header("A2: Queue sizing — fixed small / fixed large / dynamic resize")
	const (
		burst    = 64
		bursts   = 10
		fetchLat = 200 * time.Millisecond
		drainLat = 3 * time.Millisecond
	)
	type cfg struct {
		name string
		opts []raft.Option
		link []raft.LinkOption
	}
	cases := []cfg{
		{name: "fixed-4",
			opts: []raft.Option{raft.WithDynamicResize(false)},
			link: []raft.LinkOption{raft.Cap(4), raft.MaxCap(4)}},
		{name: "fixed-256",
			opts: []raft.Option{raft.WithDynamicResize(false)},
			link: []raft.LinkOption{raft.Cap(256), raft.MaxCap(256)}},
		{name: "dynamic(4->)",
			opts: []raft.Option{raft.WithDynamicResize(true)},
			link: []raft.LinkOption{raft.Cap(4)}},
		// The same three shapes on the lock-free SPSC ring: since the
		// epoch swap the monitor's §4.1 rules apply to it too, so the
		// dynamic case must converge like the mutex ring does.
		{name: "spsc-fixed-4",
			opts: []raft.Option{raft.WithLockFreeQueues(), raft.WithDynamicResize(false)},
			link: []raft.LinkOption{raft.Cap(4), raft.MaxCap(4)}},
		{name: "spsc-fixed-256",
			opts: []raft.Option{raft.WithLockFreeQueues(), raft.WithDynamicResize(false)},
			link: []raft.LinkOption{raft.Cap(256), raft.MaxCap(256)}},
		{name: "spsc-dyn(4->)",
			opts: []raft.Option{raft.WithLockFreeQueues(), raft.WithDynamicResize(true)},
			link: []raft.LinkOption{raft.Cap(4)}},
	}
	fmt.Printf("burst=%d items, %d bursts, %v fetch latency per burst, %v drain per item\n\n",
		burst, bursts, fetchLat, drainLat)
	fmt.Printf("%-16s %-6s %-12s %-10s %-10s\n", "config", "ring", "elapsed(ms)", "grows", "finalCap")
	for _, c := range cases {
		m := raft.NewMap()
		var produced int64
		src := raft.NewLambda[int64](0, 1, func(k *raft.LambdaKernel) raft.Status {
			if produced >= burst*bursts {
				return raft.Stop
			}
			if produced%burst == 0 {
				time.Sleep(fetchLat) // fetch the next burst
			}
			if err := raft.Push(k.Out("0"), produced); err != nil {
				return raft.Stop
			}
			produced++
			return raft.Proceed
		})
		sink := raft.NewLambda[int64](1, 0, func(k *raft.LambdaKernel) raft.Status {
			if _, err := raft.Pop[int64](k.In("0")); err != nil {
				return raft.Stop
			}
			time.Sleep(drainLat)
			return raft.Proceed
		})
		m.MustLink(src, sink, c.link...)
		start := time.Now()
		rep, err := m.Exe(c.opts...)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		var grows uint64
		finalCap := 0
		ring := ""
		for _, l := range rep.Links {
			grows += l.Grows
			finalCap = l.FinalCap
			ring = l.Ring
		}
		fmt.Printf("%-16s %-6s %-12.1f %-10d %-10d\n", c.name, ring,
			float64(time.Since(start))/float64(time.Millisecond), grows, finalCap)
		if strings.HasPrefix(c.name, "spsc-dyn") && grows == 0 {
			failf("A2: the monitor never grew the dynamic lock-free link (epoch swap broken?)")
		}
	}
	fmt.Println("\nexpected: fixed-4 is ~2x slower (consumer idles through every")
	fmt.Println("fetch); dynamic grows to burst size and matches fixed-256")
	fmt.Println("without pre-committing the memory — on both ring kinds: the")
	fmt.Println("epoch swap gives the lock-free ring the same adaptivity.")
}

// ablateClone compares no replication, static full-width replication, and
// monitor-driven auto-scaling on the text search app (A3).
func ablateClone(corpusMB int) {
	header("A3: Kernel replication — off / static / monitor-driven auto-scale")
	data := corpus.Generate(corpus.Spec{Bytes: corpusMB << 20, Seed: 7 + benchSeed})
	// Use at least 4 replicas so the group machinery is exercised even on
	// few-core hosts (speedup, of course, requires the cores).
	replicas := runtime.GOMAXPROCS(0)
	if replicas < 4 {
		replicas = 4
	}
	fmt.Printf("%d MiB corpus, replica ceiling %d\n\n", corpusMB, replicas)
	fmt.Printf("%-18s %-10s %-14s %-s\n", "config", "GB/s", "activeAtEnd", "scale events")
	type cfg struct {
		name  string
		cores int
		extra []raft.Option
	}
	for _, c := range []cfg{
		{"no-replication", 1, nil},
		{"static-width", replicas, nil},
		{"auto-scale", replicas, []raft.Option{raft.WithAutoScale(true)}},
	} {
		res, err := textsearch.Run(data, textsearch.Config{
			Algo: "ahocorasick", Cores: c.cores, ExtraExeOpts: c.extra,
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		active, events := "-", 0
		if len(res.Report.Groups) > 0 {
			active = fmt.Sprint(res.Report.Groups[0].ActiveAtEnd)
		}
		for _, e := range res.Report.MonitorEvents {
			if e.Kind == "scale-up" || e.Kind == "scale-down" {
				events++
			}
		}
		fmt.Printf("%-18s %-10s %-14s %d\n", c.name, gbps(res.Throughput(len(data))), active, events)
	}
	fmt.Println("\nexpected: static and auto-scale both beat no-replication; auto-")
	fmt.Println("scale reaches similar throughput while the monitor widens the")
	fmt.Println("group only as back-pressure appears.")
}

// ablateSched compares the goroutine-per-kernel scheduler with the worker
// pool (A4).
func ablateSched(corpusMB int) {
	header("A4: Scheduler — goroutine-per-kernel vs worker pool")
	data := corpus.Generate(corpus.Spec{Bytes: corpusMB << 20, Seed: 9 + benchSeed})
	cores := runtime.GOMAXPROCS(0)
	fmt.Printf("%-22s %-10s\n", "scheduler", "GB/s")
	type cfg struct {
		name string
		opts []raft.Option
	}
	for _, c := range []cfg{
		{"goroutine-per-kernel", nil},
		{fmt.Sprintf("pool-%d", 2*cores), []raft.Option{raft.WithPoolScheduler(2 * cores)}},
		{fmt.Sprintf("worksteal-%d", cores), []raft.Option{raft.WithWorkStealing(cores)}},
	} {
		res, err := textsearch.Run(data, textsearch.Config{
			Algo: "horspool", Cores: min(4, cores), ExtraExeOpts: c.opts,
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%-22s %-10s\n", c.name, gbps(res.Throughput(len(data))))
	}
	fmt.Println("\nexpected: comparable throughput here (Go's runtime multiplexes")
	fmt.Println("goroutines well); the pool matters when kernel count >> cores.")
}

// benchSchedKernels is the A17 sweep's kernel-count ladder, settable with
// the -sched-kernels flag.
var benchSchedKernels = []int{1000, 10000, 100000}

// ablateSchedScale is the A17 scale sweep: the goroutine-per-kernel
// scheduler against the work-stealing scheduler on graphs of 1k, 10k and
// 100k kernels. The workload is kernel-count stress, not bandwidth: k/2
// independent producer->consumer pairs over tiny fixed queues, so almost
// every scheduling decision is a stall/park/wake transition and the
// scheduler's bookkeeping cost dominates. Two bars gate the configuration:
// work-stealing must stay within 5% of the goroutine scheduler at the
// smallest scale (no fixed overhead regression) and must sustain that at
// the largest (parked kernels must cost nothing while they wait).
func ablateSchedScale() {
	header("A17: Work-stealing scheduler — 1k/10k/100k-kernel scale sweep")
	const itemsPer = 64
	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("k/2 gen->sink pairs, %d items each, Cap(4) queues, %d steal workers\n\n", itemsPer, workers)
	fmt.Printf("%-8s %-14s %-12s %-8s %-10s %-10s %-10s %-10s\n",
		"kernels", "scheduler", "elapsed(ms)", "ratio", "steals", "parks", "wakes", "rescues")

	build := func(k int) (*raft.Map, *int64) {
		m := raft.NewMap()
		got := new(int64)
		for p := 0; p < k/2; p++ {
			sent := 0
			gen := raft.NewLambda[int64](0, 1, func(lk *raft.LambdaKernel) raft.Status {
				if sent == itemsPer {
					return raft.Stop
				}
				if err := raft.Push(lk.Out("0"), int64(sent)); err != nil {
					return raft.Stop
				}
				sent++
				return raft.Proceed
			})
			sink := raft.NewLambda[int64](1, 0, func(lk *raft.LambdaKernel) raft.Status {
				if _, err := raft.Pop[int64](lk.In("0")); err != nil {
					return raft.Stop
				}
				*got++
				return raft.Proceed
			})
			m.MustLink(gen, sink, raft.Cap(4), raft.MaxCap(4))
		}
		return m, got
	}

	for si, k := range benchSchedKernels {
		var base time.Duration
		for _, ws := range []bool{false, true} {
			m, got := build(k)
			opts := []raft.Option{raft.WithDynamicResize(false), raft.WithoutMonitor()}
			name := "goroutine"
			if ws {
				opts = append(opts, raft.WithWorkStealing(workers))
				name = fmt.Sprintf("worksteal-%d", workers)
			}
			start := time.Now()
			rep, err := m.Exe(opts...)
			elapsed := time.Since(start)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			if want := int64(k/2) * itemsPer; *got != want {
				failf("A17: %s at %d kernels moved %d elements, want %d", name, k, *got, want)
			}
			if !ws {
				base = elapsed
				fmt.Printf("%-8d %-14s %-12.1f %-8s %-10s %-10s %-10s %-10s\n",
					k, name, float64(elapsed)/float64(time.Millisecond), "1.00", "-", "-", "-", "-")
				continue
			}
			ratio := float64(elapsed) / float64(base)
			if rep.Sched == nil {
				failf("A17: work-stealing report carries no Sched section")
				return
			}
			s := rep.Sched
			fmt.Printf("%-8d %-14s %-12.1f %-8.2f %-10d %-10d %-10d %-10d\n",
				k, name, float64(elapsed)/float64(time.Millisecond), ratio,
				s.Steals, s.Parks, s.Wakes, s.Rescues)
			if s.Parks == 0 || s.Wakes == 0 {
				failf("A17: no park/wake activity at %d kernels on Cap(4) queues — hooks dead?", k)
			}
			// The smallest scale prices fixed overhead; the largest prices
			// idle-kernel cost. Both bars are the same 5% envelope: within
			// it at 1k means no regression, within it at 100k means parked
			// kernels scale for free.
			if si == 0 && ratio > 1.05 {
				failf("A17: work-stealing %.2fx the goroutine scheduler at %d kernels, bar is 1.05x", ratio, k)
			}
			if si == len(benchSchedKernels)-1 && ratio > 1.05 {
				failf("A17: work-stealing did not sustain at %d kernels (%.2fx goroutine, bar is 1.05x)", k, ratio)
			}
		}
	}
	fmt.Println("\nexpected: the goroutine scheduler pays the Go runtime's price per")
	fmt.Println("blocked goroutine; work-stealing parks stalled kernels for the cost")
	fmt.Println("of one state word and a wake hook, so its ratio holds flat (<=1.05)")
	fmt.Println("as the kernel count grows two orders of magnitude.")
}

// ablateMonitor measures the paper's low-overhead monitoring claim (A5):
// the same pipeline with monitoring off, at the default δ, and at an
// aggressively small δ.
func ablateMonitor(corpusMB int) {
	header("A5: Monitoring overhead (TimeTrial-style low-impact claim)")
	data := corpus.Generate(corpus.Spec{Bytes: corpusMB << 20, Seed: 11 + benchSeed})
	type cfg struct {
		name string
		opts []raft.Option
	}
	cases := []cfg{
		{"off", []raft.Option{raft.WithoutMonitor()}},
		{"delta=10us (paper)", nil},
		{"delta=1us", []raft.Option{raft.WithMonitorDelta(time.Microsecond)}},
	}
	// Interleave repetitions (rep-major) so host drift hits every config
	// equally, and keep the best rate per config — same discipline as A12.
	const reps = 3
	best := make([]float64, len(cases))
	ticks := make([]uint64, len(cases))
	for rep := 0; rep < reps; rep++ {
		for ci, c := range cases {
			res, err := textsearch.Run(data, textsearch.Config{
				Algo: "horspool", Cores: min(4, runtime.GOMAXPROCS(0)), ExtraExeOpts: c.opts,
			})
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			if r := res.Throughput(len(data)); r > best[ci] {
				best[ci] = r
				ticks[ci] = res.Report.MonitorTicks
			}
		}
	}
	fmt.Printf("%-22s %-10s %-12s\n", "monitor", "GB/s", "ticks")
	for ci, c := range cases {
		fmt.Printf("%-22s %-10s %-12d\n", c.name, gbps(best[ci]), ticks[ci])
	}
	// The A5 bar: at the paper's default δ the monitored pipeline must be
	// within 10% of unmonitored throughput (measured within noise of it;
	// the margin absorbs runner jitter, not instrumentation cost).
	if best[1] < 0.90*best[0] {
		failf("A5: monitored throughput %.3f GB/s is %.1f%% below off (%.3f GB/s), bar is 10%%",
			best[1]/1e9, 100*(1-best[1]/best[0]), best[0]/1e9)
	}
	fmt.Println("\nexpected: monitored throughput within a few percent of off —")
	fmt.Println("the instrumentation hot path is a handful of atomic ops.")
}

// ablateMap compares the latency-priority partitioner against even-spread
// and random placement on a multi-socket, multi-node topology (A6).
func ablateMap() {
	header("A6: Mapping — latency-priority partitioner vs even-spread vs random")
	// A 16-kernel pipeline with a side chain, over 2 local sockets plus
	// two remote (TCP) nodes.
	g := &graph.Graph{}
	for i := 0; i < 16; i++ {
		g.AddNode(fmt.Sprintf("k%d", i), 1)
	}
	for i := 0; i+1 < 12; i++ {
		g.AddEdge(i, i+1, "out", "in", "t", 1)
	}
	g.AddEdge(3, 12, "tap", "in", "t", 1) // side chain
	for i := 12; i+1 < 16; i++ {
		g.AddEdge(i, i+1, "out", "in", "t", 1)
	}
	top := mapper.NewLocal(4, 2)
	top.AddRemoteNode(4)
	top.AddRemoteNode(4)

	smart, err := mapper.Assign(g, top)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%-18s %-14s\n", "strategy", "cut cost")
	fmt.Printf("%-18s %-14v\n", "partitioner", mapper.CutCost(g, top, smart))
	fmt.Printf("%-18s %-14v\n", "even-spread", mapper.CutCost(g, top, mapper.EvenSpread(g, top)))
	var worst, sum time.Duration
	const seeds = 20
	for s := int64(0); s < seeds; s++ {
		c := mapper.CutCost(g, top, mapper.Random(g, top, s))
		sum += c
		if c > worst {
			worst = c
		}
	}
	fmt.Printf("%-18s %-14v (worst %v over %d seeds)\n", "random(avg)", sum/seeds, worst, seeds)
	fmt.Println("\nexpected: the partitioner places the fewest streams across the")
	fmt.Println("TCP and cross-socket boundaries, so its cut cost is smallest.")
}

// ablateTCP compares a stream inside one process against the same stream
// tunneled over a loopback TCP bridge (A7).
func ablateTCP() {
	header("A7: Stream transport — in-process FIFO vs loopback TCP (oar)")
	const items = 500_000
	mkSum := func() (*raft.Map, *int64, raft.Kernel) {
		m := raft.NewMap()
		var total int64
		red := kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total)
		return m, &total, red
	}

	// In-process.
	m, total, red := mkSum()
	m.MustLink(kernels.NewGenerate(items, func(i int64) int64 { return i }), red)
	start := time.Now()
	if _, err := m.Exe(); err != nil {
		fmt.Println("error:", err)
		return
	}
	local := time.Since(start)

	// Over TCP.
	node, err := oar.NewNode("bench", "127.0.0.1:0")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer node.Close()
	send, recv, err := oar.Bridge[int64](node, "bench-sum")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	producer := raft.NewMap()
	producer.MustLink(kernels.NewGenerate(items, func(i int64) int64 { return i }), send)
	consumer, totalTCP, redTCP := mkSum()
	consumer.MustLink(recv, redTCP)

	start = time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	var errA, errB error
	go func() { defer wg.Done(); _, errA = producer.Exe() }()
	go func() { defer wg.Done(); _, errB = consumer.Exe() }()
	wg.Wait()
	tcp := time.Since(start)
	if errA != nil || errB != nil {
		fmt.Println("error:", errA, errB)
		return
	}

	want := int64(items) * (items - 1) / 2
	fmt.Printf("%-14s %-12s %-14s\n", "transport", "elapsed(ms)", "Mitems/s")
	fmt.Printf("%-14s %-12.1f %-14.2f\n", "in-process",
		float64(local)/float64(time.Millisecond), items/local.Seconds()/1e6)
	fmt.Printf("%-14s %-12.1f %-14.2f\n", "loopback-tcp",
		float64(tcp)/float64(time.Millisecond), items/tcp.Seconds()/1e6)
	if *total != want || *totalTCP != want {
		fmt.Printf("!! sums differ: local=%d tcp=%d want=%d\n", *total, *totalTCP, want)
	}
	fmt.Println("\nexpected: identical results; TCP pays serialization + syscalls,")
	fmt.Println("quantifying what the mapper avoids by minimizing cut streams.")
}

// ablateModel validates the flow model (A8): run the text search
// sequentially, let raft.Analyze extract pure service rates (blocked time
// excluded) and predict the sequential bottleneck rate, then compare the
// prediction with the measured throughput.
func ablateModel(corpusMB int) {
	header("A8: Flow model — predicted vs measured text-search throughput")
	data := corpus.Generate(corpus.Spec{Bytes: corpusMB << 20, Seed: 13 + benchSeed})
	seq, err := textsearch.Run(data, textsearch.Config{Algo: "ahocorasick", Cores: 1, Analyze: true})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	adv := seq.Advice
	// The source emits one chunk per invocation: bytes/s = rate × chunk.
	predicted := adv.MaxSourceRate * float64(kernels.DefaultChunkSize)
	measured := seq.Throughput(len(data))
	fmt.Printf("measured sequential: %s GB/s\n", gbps(measured))
	fmt.Printf("model prediction:    %s GB/s (bottleneck: %s, util %.2f)\n",
		gbps(predicted), adv.Bottleneck, adv.Utilization[adv.Bottleneck])
	fmt.Printf("measured/predicted:  %.2f\n", measured/predicted)
	fmt.Println("\nadvice for the whole pipeline:")
	fmt.Print(adv)
	fmt.Println("\nexpected: prediction within ~2x of measurement, with the match")
	fmt.Println("kernel named as bottleneck (paper §3/§4.1 flow models); the")
	fmt.Println("replica suggestion is the paper's automatic-parallelization cue.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ablateSwap demonstrates the paper's dynamic algorithm swapping (§4.2 and
// §5: "RaftLib has the ability to quickly swap out algorithms during
// execution, this was disabled for this benchmark ... Manually changing
// the algorithm RaftLib used to Boyer-Moore-Horspool, the performance
// improved drastically"). A search kernel group starts on the naive
// matcher and is measured against pinned single-algorithm runs.
func ablateSwap(corpusMB int) {
	header("A9: Dynamic algorithm swap — kernel group vs pinned algorithms")
	data := corpus.Generate(corpus.Spec{Bytes: corpusMB << 20, Seed: 15 + benchSeed})
	pattern := []byte(corpus.DefaultPattern)
	chunk := 16 << 10 // small chunks: plenty of invocations to measure with

	run := func(label string, pin string) {
		grp, err := kernels.NewSearchGroup(
			[]string{"naive", "kmp", "rabinkarp", "ahocorasick", "boyermoore", "horspool"}, pattern)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if pin != "" {
			if err := grp.SetFixed(pin); err != nil {
				fmt.Println("error:", err)
				return
			}
		}
		var total int64
		m := raft.NewMap()
		m.MustLink(kernels.NewBytesReader(data, chunk, len(pattern)-1), grp)
		m.MustLink(grp, kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total))
		start := time.Now()
		if _, err := m.Exe(); err != nil {
			fmt.Println("error:", err)
			return
		}
		elapsed := time.Since(start)
		fmt.Printf("%-22s %-10s settled=%-12s swaps=%d hits=%d\n",
			label, gbps(float64(len(data))/elapsed.Seconds()), grp.Active(), grp.Swaps(), total)
	}

	fmt.Printf("%-22s %-10s\n", "config", "GB/s")
	run("pinned naive", "naive")
	run("pinned ahocorasick", "ahocorasick")
	run("pinned horspool", "horspool")
	run("dynamic swap", "")
	fmt.Println("\nexpected: the dynamic group converges on the Boyer-Moore family")
	fmt.Println("and lands near the pinned-horspool throughput, far above naive —")
	fmt.Println("the paper's §5 algorithm-swap observation, automated.")
}

// benchItems is the synthetic pipeline length for the batch ablation,
// set from the -items flag.
var benchItems = 2_000_000

// ablateBatch measures the batched stream path (A11): a small-element
// synthetic pipeline (where per-element synchronization dominates, so bulk
// transfer shows its full effect) compared element-wise vs statically
// batched vs adaptively batched, a replicated pass-through stage whose
// split/merge adapters move framed batches, and the Figure 10 text search
// with and without the adaptive batcher. Every configuration's result is
// checked against the element-wise baseline — batching must never change
// what flows, only how many elements move per synchronization.
func ablateBatch(corpusMB int) {
	header("A11: Batched stream path — element-wise vs bulk vs adaptive")
	items := int64(benchItems)
	want := items * (items - 1) / 2
	fmt.Printf("synthetic: generate -> reduce, %d small (int64) elements\n\n", items)
	fmt.Printf("%-18s %-12s %-12s %-10s\n", "config", "elapsed(ms)", "Mitems/s", "linkBatch")

	runSum := func(label string, batch int, opts ...raft.Option) float64 {
		var sum int64
		m := raft.NewMap()
		gen := kernels.NewGenerate(items, func(i int64) int64 { return i })
		red := kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &sum)
		if batch > 0 {
			gen.SetBatch(batch)
			red.SetBatch(batch)
		}
		m.MustLink(gen, red)
		start := time.Now()
		rep, err := m.Exe(opts...)
		if err != nil {
			fmt.Println("error:", err)
			return 0
		}
		elapsed := time.Since(start)
		linkBatch := 0
		for _, l := range rep.Links {
			linkBatch = l.Batch
		}
		fmt.Printf("%-18s %-12.1f %-12.2f %-10d\n", label,
			float64(elapsed)/float64(time.Millisecond),
			float64(items)/elapsed.Seconds()/1e6, linkBatch)
		if sum != want {
			fmt.Printf("!! sum = %d, want %d (batching changed the stream)\n", sum, want)
		}
		return float64(items) / elapsed.Seconds()
	}

	base := runSum("element-wise", 0)
	bulk := runSum("batched-64", 64)
	adaptive := runSum("adaptive", 0, raft.WithAdaptiveBatching(true))
	if base > 0 {
		fmt.Printf("\nspeedup over element-wise: batched %.2fx, adaptive %.2fx (acceptance: batched >= 2x)\n",
			bulk/base, adaptive/base)
		if bulk/base < 2 {
			failf("A11: batched speedup %.2fx < 2x over element-wise", bulk/base)
		}
	}

	// Replicated pass-through: the split/merge adapters do all the moving,
	// so this isolates the batched mover path (one PopN + one PushN per
	// hop vs element-wise TryPop/Push ping-pong).
	fmt.Printf("\nsplit/merge adapters: generate -> split -> 4x pass -> merge -> reduce, %d elements\n", items)
	fmt.Printf("%-18s %-12s %-12s\n", "config", "elapsed(ms)", "Mitems/s")
	runSplit := func(label string, opts ...raft.Option) {
		var sum int64
		m := raft.NewMap()
		pass := raft.NewLambdaCloneable(func() *raft.LambdaKernel {
			return raft.NewLambda[int64](1, 1, func(k *raft.LambdaKernel) raft.Status {
				v, err := raft.Pop[int64](k.In("0"))
				if err != nil {
					return raft.Stop
				}
				if err := raft.Push(k.Out("0"), v); err != nil {
					return raft.Stop
				}
				return raft.Proceed
			})
		})
		m.MustLink(kernels.NewGenerate(items, func(i int64) int64 { return i }).SetBatch(64), pass,
			raft.AsOutOfOrder())
		m.MustLink(pass, kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &sum).SetBatch(64))
		start := time.Now()
		if _, err := m.Exe(append([]raft.Option{raft.WithAutoReplicate(4)}, opts...)...); err != nil {
			fmt.Println("error:", err)
			return
		}
		elapsed := time.Since(start)
		fmt.Printf("%-18s %-12.1f %-12.2f\n", label,
			float64(elapsed)/float64(time.Millisecond), float64(items)/elapsed.Seconds()/1e6)
		if sum != want {
			fmt.Printf("!! sum = %d, want %d\n", sum, want)
		}
	}
	runSplit("static-batch")
	runSplit("adaptive", raft.WithAdaptiveBatching(true))

	// Figure 10 text search: large elements (chunks), so batching should be
	// roughly neutral — the check is that results stay byte-identical.
	data := corpus.Generate(corpus.Spec{Bytes: corpusMB << 20, Seed: 21 + benchSeed})
	cores := min(4, runtime.GOMAXPROCS(0))
	fmt.Printf("\ntext search (Fig. 10 pipeline, %d MiB, %d cores):\n", corpusMB, cores)
	fmt.Printf("%-18s %-10s %-10s\n", "config", "GB/s", "hits")
	var hitsOff, hitsOn int64 = -1, -1
	for _, c := range []struct {
		name  string
		extra []raft.Option
	}{
		{"element-wise", nil},
		{"adaptive", []raft.Option{raft.WithAdaptiveBatching(true)}},
	} {
		res, err := textsearch.Run(data, textsearch.Config{
			Algo: "horspool", Cores: cores, ExtraExeOpts: c.extra,
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%-18s %-10s %-10d\n", c.name, gbps(res.Throughput(len(data))), res.Hits)
		if c.extra == nil {
			hitsOff = res.Hits
		} else {
			hitsOn = res.Hits
		}
	}
	if hitsOff != hitsOn {
		fmt.Printf("!! hit counts differ: %d vs %d\n", hitsOff, hitsOn)
	} else {
		fmt.Println("results identical with batching enabled.")
	}
	fmt.Println("\nexpected: bulk transfer wins big on small elements (one lock or")
	fmt.Println("atomic publish amortized over the batch). adaptive approaches the")
	fmt.Println("static batch without hand-tuning once the monitor observes a few")
	fmt.Println("windows of contention; on single-core or heavily loaded hosts the")
	fmt.Println("ramp can lag the run, so its speedup is noisier than static.")
	fmt.Println("text search is neutral (large elements) and byte-identical.")
}

// ablateObs measures full-telemetry overhead (A12): the same pipelines run
// bare, with the event bus recording at the default sampling stride, with
// the bus plus an idle Prometheus endpoint listening (the deployment
// shape: always instrumented, scraped occasionally), and with exhaustive
// stride-1 span capture (every invocation). Occupancy histograms and
// service timers are unconditionally on — they are part of every
// configuration — so the ablation isolates the cost of the structured
// event bus and of the exporter machinery.
func ablateObs(corpusMB int) {
	header("A12: Telemetry overhead — off vs event bus vs idle exporter vs stride-1")
	items := int64(benchItems)
	want := items * (items - 1) / 2

	type cfg struct {
		name string
		opts func() []raft.Option
	}
	cases := []cfg{
		{"off", func() []raft.Option { return nil }},
		{"trace", func() []raft.Option {
			return []raft.Option{raft.WithTrace(1 << 16)}
		}},
		{"trace+metrics", func() []raft.Option {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Println("error:", err)
				return []raft.Option{raft.WithTrace(1 << 16)}
			}
			return []raft.Option{raft.WithTrace(1 << 16), raft.WithMetricsListener(ln)}
		}},
		{"trace stride=1", func() []raft.Option {
			return []raft.Option{raft.WithTrace(1 << 16), raft.WithTraceStride(1)}
		}},
	}

	// report prints one section's per-config best rates with overhead
	// relative to the first ("off") config.
	report := func(format func(rate float64) string, best []float64) {
		for ci, c := range cases {
			if ci == 0 {
				fmt.Printf("%-16s %-12s %-10s\n", c.name, format(best[0]), "-")
			} else {
				fmt.Printf("%-16s %-12s %-+.1f%%\n", c.name, format(best[ci]), 100*(best[0]/best[ci]-1))
			}
		}
	}
	// measure interleaves repetitions across configs (rep-major, so host
	// drift — GC waves, neighbor load on shared cores — hits every config
	// equally) and keeps the best rate per config.
	measure := func(reps int, run func(opts []raft.Option) float64) []float64 {
		best := make([]float64, len(cases))
		for rep := 0; rep < reps; rep++ {
			for ci, c := range cases {
				if r := run(c.opts()); r > best[ci] {
					best[ci] = r
				}
			}
		}
		return best
	}

	// Primary: the small-element pipeline — per-element synchronization
	// dominates, so any per-invocation telemetry cost is maximally visible.
	// The 3% bar applies to the shipped defaults (trace, trace+metrics);
	// stride=1 shows the price of exhaustive capture.
	fmt.Printf("small-element synthetic: generate -> reduce, %d int64 elements, element-wise, best of 7\n\n", items)
	fmt.Printf("%-16s %-12s %-10s\n", "config", "Mitems/s", "overhead")
	runSum := func(batch int) func(opts []raft.Option) float64 {
		return func(opts []raft.Option) float64 {
			var sum int64
			m := raft.NewMap()
			gen := kernels.NewGenerate(items, func(i int64) int64 { return i })
			red := kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &sum)
			if batch > 0 {
				gen.SetBatch(batch)
				red.SetBatch(batch)
			}
			m.MustLink(gen, red)
			start := time.Now()
			if _, err := m.Exe(opts...); err != nil {
				fmt.Println("error:", err)
				return 0
			}
			elapsed := time.Since(start)
			if sum != want {
				fmt.Printf("!! sum = %d, want %d (telemetry changed the stream)\n", sum, want)
			}
			return float64(items) / elapsed.Seconds()
		}
	}
	mitems := func(r float64) string { return fmt.Sprintf("%.2f", r/1e6) }
	ewise := measure(7, runSum(0))
	report(mitems, ewise)
	fmt.Printf("\nacceptance: trace and trace+metrics (idle exporter) <= 3%% here\n")
	// The A12 bar: the shipped defaults (sampled trace, idle exporter) on
	// the worst-case element-wise pipeline.
	for ci := 1; ci <= 2; ci++ {
		if over := 100 * (ewise[0]/ewise[ci] - 1); over > 3 {
			failf("A12: %s overhead %.1f%% > 3%% on the element-wise pipeline", cases[ci].name, over)
		}
	}

	// Secondary: same pipeline with batch 64 — the throughput configuration
	// (A11); sampling plus batching makes telemetry disappear entirely.
	fmt.Printf("\nbatched synthetic (batch 64), %d elements, best of 5\n\n", items)
	fmt.Printf("%-16s %-12s %-10s\n", "config", "Mitems/s", "overhead")
	report(mitems, measure(5, runSum(64)))

	// Secondary: Figure 10 text search (coarse-grained kernels — chunk-sized
	// invocations bury the per-invocation cost entirely).
	data := corpus.Generate(corpus.Spec{Bytes: corpusMB << 20, Seed: 23 + benchSeed})
	cores := min(4, runtime.GOMAXPROCS(0))
	fmt.Printf("\ntext search (Fig. 10 pipeline, %d MiB, %d cores, best of 5):\n\n", corpusMB, cores)
	fmt.Printf("%-16s %-12s %-10s\n", "config", "GB/s", "overhead")
	report(gbps, measure(5, func(opts []raft.Option) float64 {
		res, err := textsearch.Run(data, textsearch.Config{
			Algo: "horspool", Cores: cores, ExtraExeOpts: opts,
		})
		if err != nil {
			fmt.Println("error:", err)
			return 0
		}
		return res.Throughput(len(data))
	}))
	fmt.Println("\nexpected: at the default stride the bus costs a counter increment")
	fmt.Println("on most invocations (one span pair per 64), so trace and the idle")
	fmt.Println("exporter sit within the 3% bar even element-wise; stride=1 pays")
	fmt.Println("two event publishes per invocation and is priced here honestly.")
	fmt.Println("batched and chunk-based pipelines bury even stride-1 in the batch.")
}

// ablateFault measures the resilience subsystem (A10): the overhead of
// supervision on an unfaulted run, the recovery latency of a supervised
// kernel kill, and the throughput degradation of a severed self-healing
// bridge — all with exactness checks, since recovery that loses or
// duplicates elements would be worse than no recovery.
func ablateFault(corpusMB int) {
	header("A10: Fault injection — supervision overhead, recovery latency, bridge healing")
	data := corpus.Generate(corpus.Spec{Bytes: corpusMB << 20, Seed: 17 + benchSeed})
	pattern := []byte(corpus.DefaultPattern)
	cores := min(4, runtime.GOMAXPROCS(0))

	// 1. Supervision overhead on an unfaulted Figure 10 run.
	fmt.Printf("supervision overhead (unfaulted, %d MiB, %d cores):\n", corpusMB, cores)
	fmt.Printf("  %-22s %-10s\n", "config", "GB/s")
	var base, supervised float64
	for _, c := range []struct {
		name  string
		extra []raft.Option
	}{
		{"unsupervised", nil},
		{"supervised", []raft.Option{raft.WithSupervision(raft.SupervisionPolicy{})}},
	} {
		best := 0.0
		for rep := 0; rep < 3; rep++ { // best-of-3: isolate overhead from noise
			res, err := textsearch.Run(data, textsearch.Config{
				Algo: "horspool", Cores: cores, ExtraExeOpts: c.extra,
			})
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			if t := res.Throughput(len(data)); t > best {
				best = t
			}
		}
		fmt.Printf("  %-22s %-10s\n", c.name, gbps(best))
		if c.extra == nil {
			base = best
		} else {
			supervised = best
		}
	}
	fmt.Printf("  overhead: %.1f%% (acceptance: <= 3%%)\n\n", 100*(1-supervised/base))

	// 2. Recovery latency of a supervised kernel kill.
	want := int64(0)
	for i := 0; i+len(pattern) <= len(data); i++ {
		if string(data[i:i+len(pattern)]) == string(pattern) {
			want++
		}
	}
	inj := raft.NewFaultInjector()
	inj.KillKernel("search[", 40)
	res, err := textsearch.Run(data, textsearch.Config{
		Algo: "horspool", Cores: cores,
		ExtraExeOpts: []raft.Option{
			raft.WithSupervision(raft.SupervisionPolicy{}),
			raft.WithFaultInjection(inj),
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("kernel kill (one match kernel at its 40th invocation):\n")
	for _, e := range res.Report.Recoveries {
		fmt.Printf("  %-28s attempt %d, backoff %v, recovered in %v\n",
			e.Kernel, e.Attempt, e.Backoff, e.Recovery.Round(time.Microsecond))
	}
	fmt.Printf("  hits %d, want %d", res.Hits, want)
	if res.Hits != want {
		fmt.Printf("  !! recovery lost or duplicated work")
	}
	fmt.Println()

	// 3. Bridge healing: distributed sum, undisturbed vs severed twice.
	fmt.Printf("\nbridge healing (loopback TCP sum, 500k items):\n")
	fmt.Printf("  %-14s %-12s %-12s %-10s %-10s\n", "run", "elapsed(ms)", "Mitems/s", "reconnects", "replayed")
	const items = 500_000
	var healthy time.Duration
	for _, chaos := range []bool{false, true} {
		node, err := oar.NewNode("a10", "127.0.0.1:0")
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		var opts []oar.BridgeOption
		var binj *raft.FaultInjector
		if chaos {
			binj = raft.NewFaultInjector()
			binj.SeverBridge("a10-sum", 3)
			binj.SeverBridge("a10-sum", 9)
			opts = append(opts, oar.WithBridgeFault(binj),
				oar.WithReconnectBackoff(time.Millisecond, 50*time.Millisecond))
		}
		send, recv, err := oar.Bridge[int64](node, "a10-sum", opts...)
		if err != nil {
			fmt.Println("error:", err)
			node.Close()
			return
		}
		producer := raft.NewMap()
		producer.MustLink(kernels.NewGenerate(items, func(i int64) int64 { return i }), send)
		var total int64
		consumer := raft.NewMap()
		consumer.MustLink(recv, kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total))

		start := time.Now()
		var wg sync.WaitGroup
		var errA, errB error
		wg.Add(2)
		go func() { defer wg.Done(); _, errA = producer.Exe() }()
		go func() { defer wg.Done(); _, errB = consumer.Exe() }()
		wg.Wait()
		elapsed := time.Since(start)
		node.Close()
		if errA != nil || errB != nil {
			fmt.Println("error:", errA, errB)
			return
		}
		name := "healthy"
		if chaos {
			name = "severed-x2"
		} else {
			healthy = elapsed
		}
		sr, _ := send.BridgeStats()
		fmt.Printf("  %-14s %-12.1f %-12.2f %-10d %-10d\n", name,
			float64(elapsed)/float64(time.Millisecond), items/elapsed.Seconds()/1e6,
			sr.Reconnects, sr.Replayed)
		if total != int64(items)*(items-1)/2 {
			fmt.Printf("  !! severed sum = %d, want %d\n", total, int64(items)*(items-1)/2)
		}
		if chaos {
			fmt.Printf("  degradation: %.1f%% (downtime %v across %d reconnects)\n",
				100*(float64(elapsed)/float64(healthy)-1), sr.Downtime.Round(time.Millisecond), sr.Reconnects)
		}
	}
	fmt.Println("\nexpected: supervision overhead within noise (the per-invocation")
	fmt.Println("cost is one deferred recover); recovery latency ~ the configured")
	fmt.Println("backoff; severed-bridge runs stay exact, paying only reconnect time.")
}
