package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"raftlib/kernels"
	"raftlib/raft"
)

// ablateRate evaluates the estimator-driven controller (A13) against the
// contended-window heuristic it replaces:
//
//  1. parity — the A11 element-wise adaptive pipeline under each
//     controller; the model-driven one must match or beat the heuristic
//     (interleaved best-of-N, like A12).
//  2. reaction — a three-phase ramp workload where arrival rate climbs
//     toward, then past, the consumer's service rate; the rate controller
//     must make its first batch-up decision before the queue saturates
//     (the heuristic, by construction, can only react after).
//  3. overhead — a statically batched pipeline with the controller's full
//     machinery armed (span tracing, estimator folds, monitor decisions)
//     but nothing to decide; the cost must stay under the 3% telemetry
//     bar established in A12.
func ablateRate() {
	header("A13: Service-rate controller — heuristic vs online λ̂/µ̂ estimates")

	// --- Part 1: parity on the element-wise adaptive pipeline. ---
	// Short runs measure *when* the first batch-up landed, not the
	// controller: the rate controller spends a fixed ~10ms observation
	// lead-in (estimator priming) before its first decision, and on a
	// batched pipeline pushing ~80 Mitems/s a 2M-element run is over in
	// 25ms — the lead-in would be half the run. Clamp the length so the
	// comparison measures steady-state throughput, not warmup share.
	items := int64(benchItems)
	if items < 10_000_000 {
		items = 10_000_000
	}
	want := items * (items - 1) / 2
	runSum := func(opts ...raft.Option) float64 {
		var sum int64
		m := raft.NewMap()
		m.MustLink(kernels.NewGenerate(items, func(i int64) int64 { return i }),
			kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &sum))
		start := time.Now()
		if _, err := m.Exe(opts...); err != nil {
			fmt.Println("error:", err)
			return 0
		}
		elapsed := time.Since(start)
		if sum != want {
			fmt.Printf("!! sum = %d, want %d (controller changed the stream)\n", sum, want)
		}
		return float64(items) / elapsed.Seconds()
	}
	type cfg struct {
		name string
		opts []raft.Option
	}
	cases := []cfg{
		{"heuristic", []raft.Option{raft.WithAdaptiveBatching(true)}},
		{"rate-control", []raft.Option{raft.WithAdaptiveBatching(true), raft.WithServiceRateControl()}},
	}
	// Interleaved best-of-7 (rep-major, so host drift hits both equally).
	best := make([]float64, len(cases))
	for rep := 0; rep < 7; rep++ {
		for ci, c := range cases {
			if r := runSum(c.opts...); r > best[ci] {
				best[ci] = r
			}
		}
	}
	fmt.Printf("element-wise adaptive pipeline: generate -> reduce, %d int64 elements, best of 7\n\n", items)
	fmt.Printf("%-14s %-12s\n", "controller", "Mitems/s")
	for ci, c := range cases {
		fmt.Printf("%-14s %-12.2f\n", c.name, best[ci]/1e6)
	}
	if best[0] > 0 {
		ratio := best[1] / best[0]
		fmt.Printf("\nrate-control/heuristic: %.2fx (acceptance: >= 0.95x — match or beat)\n", ratio)
		if ratio < 0.95 {
			failf("A13: rate-controlled throughput %.2fx of heuristic (< 0.95x)", ratio)
		}
	}

	// --- Part 2: reaction time on a ramp workload. ---
	// Arrival rate climbs in three phases against a consumer that needs
	// ~consumeNs per element: cruise (ρ≈0.25), ramp (ρ≈0.8 — past the
	// controller's RhoGrow threshold but still below saturation, so the
	// queue stays near-empty and the contended-window heuristic sees
	// nothing), flood (ρ>1, the queue fills and blocks). A controller
	// reading λ̂/µ̂ fires during the ramp; one reading blocking evidence
	// can only fire during the flood.
	const (
		phaseItems = 20_000
		cruiseNs   = 12_000
		rampNs     = 4_000
		consumeNs  = 3_000
		rampCap    = 1024
	)
	// Busy-wait with a yield each lap: on a single-P runtime a pure spin
	// starves the peer kernel and the queue saturates instantly, erasing
	// the ρ≈0.25 / ρ≈0.8 phases the experiment is built around. Yielding
	// keeps producer and consumer interleaved so arrival and service rates
	// track the designed pacing on any core count.
	spin := func(d time.Duration) {
		for t0 := time.Now(); time.Since(t0) < d; {
			runtime.Gosched()
		}
	}
	runRamp := func(opts ...raft.Option) (firstUp time.Duration, lenAtUp, capAtUp int, satAt, rampAt time.Duration) {
		var produced int64
		var start, rampStart time.Time
		src := raft.NewLambda[int64](0, 1, func(k *raft.LambdaKernel) raft.Status {
			switch {
			case produced >= 3*phaseItems:
				return raft.Stop
			case produced < phaseItems:
				spin(cruiseNs * time.Nanosecond)
			case produced < 2*phaseItems:
				if rampStart.IsZero() {
					rampStart = time.Now()
				}
				spin(rampNs * time.Nanosecond)
			}
			if err := raft.Push(k.Out("0"), produced); err != nil {
				return raft.Stop
			}
			produced++
			return raft.Proceed
		})
		sink := raft.NewLambda[int64](1, 0, func(k *raft.LambdaKernel) raft.Status {
			if _, err := raft.Pop[int64](k.In("0")); err != nil {
				return raft.Stop
			}
			spin(consumeNs * time.Nanosecond)
			return raft.Proceed
		})

		// Observer samples queue length so a monitor decision can be dated
		// against how full the queue was when it fired.
		type occSample struct {
			at  time.Time
			len int
			cap int
		}
		var mu sync.Mutex
		var samples []occSample
		obs := func(ls raft.LiveStats) {
			mu.Lock()
			defer mu.Unlock()
			for _, l := range ls.Links {
				samples = append(samples, occSample{ls.At, l.Len, l.Cap})
			}
		}

		m := raft.NewMap()
		m.MustLink(src, sink, raft.Cap(rampCap), raft.MaxCap(rampCap))
		start = time.Now()
		rep, err := m.Exe(append([]raft.Option{
			raft.WithAdaptiveBatching(true),
			raft.WithObserver(time.Millisecond, obs),
		}, opts...)...)
		if err != nil {
			fmt.Println("error:", err)
			return 0, 0, 0, 0, 0
		}
		var upAt time.Time
		for _, e := range rep.MonitorEvents {
			if e.Kind == "batch-up" {
				upAt = e.At
				break
			}
		}
		mu.Lock()
		defer mu.Unlock()
		for _, s := range samples {
			if satAt == 0 && s.len >= s.cap/2 {
				satAt = s.at.Sub(start)
			}
			if !upAt.IsZero() && !s.at.After(upAt) {
				lenAtUp, capAtUp = s.len, s.cap
			}
		}
		if !upAt.IsZero() {
			firstUp = upAt.Sub(start)
		}
		if !rampStart.IsZero() {
			rampAt = rampStart.Sub(start)
		}
		return firstUp, lenAtUp, capAtUp, satAt, rampAt
	}

	fmt.Printf("\nramp workload: %d+%d+%d items at ~%.0f%%/~%.0f%%/>100%% of consumer rate, cap %d\n",
		phaseItems, phaseItems, phaseItems,
		100*float64(consumeNs)/float64(cruiseNs), 100*float64(consumeNs)/float64(rampNs), rampCap)
	fmt.Printf("%-14s %-16s %-16s %-18s %-16s\n", "controller", "ramp begins", "first batch-up", "queue at decision", "half-full at")
	show := func(name string, opts ...raft.Option) (up time.Duration, frac float64, sat time.Duration) {
		up, l, c, sat, ramp := runRamp(opts...)
		upS, satS, rampS, occS := "never", "never", "-", "-"
		if up > 0 {
			upS = fmt.Sprintf("%v", up.Round(time.Millisecond))
		}
		if sat > 0 {
			satS = fmt.Sprintf("%v", sat.Round(time.Millisecond))
		}
		if ramp > 0 {
			rampS = fmt.Sprintf("%v", ramp.Round(time.Millisecond))
		}
		frac = -1
		if c > 0 {
			frac = float64(l) / float64(c)
			occS = fmt.Sprintf("%d/%d (%.0f%%)", l, c, 100*frac)
		} else if up > 0 {
			frac, occS = 0, "0 (pre-sample)"
		}
		fmt.Printf("%-14s %-16s %-16s %-18s %-16s\n", name, rampS, upS, occS, satS)
		return up, frac, sat
	}
	show("heuristic", raft.WithAdaptiveBatching(true))
	rUp, rFrac, rSat := show("rate-control", raft.WithServiceRateControl())
	switch {
	case rUp == 0:
		failf("A13: rate controller never grew the batch on the ramp")
	case rSat > 0 && rUp >= rSat:
		failf("A13: rate controller reacted at %v, after the queue was half-full at %v", rUp, rSat)
	case rFrac >= 0.5:
		failf("A13: rate controller decided at %.0f%% occupancy (not pre-saturation)", 100*rFrac)
	default:
		fmt.Printf("\nrate controller reacted before saturation (queue at %.0f%% when it fired)\n", 100*max(rFrac, 0))
	}

	// --- Part 3: control overhead with nothing to decide. ---
	// Static batch-64 pipeline: the batcher has no reason to move, so the
	// only difference is the armed machinery — span tracing, estimator
	// folds on monitor ticks, λ̂/µ̂ lookups per batch window.
	runBatched := func(opts ...raft.Option) float64 {
		var sum int64
		m := raft.NewMap()
		gen := kernels.NewGenerate(items, func(i int64) int64 { return i }).SetBatch(64)
		red := kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &sum).SetBatch(64)
		m.MustLink(gen, red)
		start := time.Now()
		if _, err := m.Exe(opts...); err != nil {
			fmt.Println("error:", err)
			return 0
		}
		elapsed := time.Since(start)
		if sum != want {
			fmt.Printf("!! sum = %d, want %d\n", sum, want)
		}
		return float64(items) / elapsed.Seconds()
	}
	oCases := []cfg{
		{"monitor", nil},
		{"monitor+rate", []raft.Option{raft.WithServiceRateControl()}},
	}
	oBest := make([]float64, len(oCases))
	for rep := 0; rep < 7; rep++ {
		for ci, c := range oCases {
			if r := runBatched(c.opts...); r > oBest[ci] {
				oBest[ci] = r
			}
		}
	}
	fmt.Printf("\ncontrol overhead: batched-64 pipeline, %d elements, best of 7\n\n", items)
	fmt.Printf("%-14s %-12s %-10s\n", "config", "Mitems/s", "overhead")
	fmt.Printf("%-14s %-12.2f %-10s\n", oCases[0].name, oBest[0]/1e6, "-")
	if oBest[1] > 0 {
		over := 100 * (oBest[0]/oBest[1] - 1)
		fmt.Printf("%-14s %-12.2f %-+.1f%%\n", oCases[1].name, oBest[1]/1e6, over)
		fmt.Printf("\nacceptance: overhead <= 3%%\n")
		if over > 3 {
			failf("A13: control overhead %.1f%% > 3%%", over)
		}
	}

	fmt.Println("\nexpected: parity or better on the adaptive pipeline (the rate")
	fmt.Println("signal reaches the same ceiling sooner); on the ramp the first")
	fmt.Println("batch-up lands during the ρ̂≈0.8 phase while the queue is still")
	fmt.Println("nearly empty; and the armed-but-idle controller prices at the")
	fmt.Println("sampled-trace cost measured in A12, inside the 3% bar.")
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
