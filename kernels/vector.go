package kernels

import (
	"raftlib/raft"
)

// Vectorized adapters: map and filter over borrowed batches. Where Filter
// and Transform move one element per Run (a pop, a closure call, a push),
// these kernels borrow a whole contiguous region of the input queue's
// storage with raft.PopView, run the user function over the slice in
// place, and forward the result with one bulk push per segment — the
// per-element stream overhead is paid once per batch. Both are cloneable,
// so the runtime's auto-replication (split/merge rewrite) applies to them
// exactly as to their scalar counterparts.

// vectorBatch is the default borrow size when the adaptive batcher has
// made no decision for the link.
const vectorBatch = 64

// MapBatch applies a slice-at-a-time function to every element in place —
// the vectorized Transform for T→T mappings.
type MapBatch[T any] struct {
	raft.KernelBase
	fn    func(vals []T)
	batch int
	vals  []T
	sigs  []raft.Signal
}

// NewMapBatch returns a kernel applying fn to each borrowed segment of
// port "in" in place and forwarding it to port "out" with signals
// preserved. fn must be pure (elementwise, no cross-call state): MapBatch
// is cloneable.
func NewMapBatch[T any](fn func(vals []T)) *MapBatch[T] {
	k := &MapBatch[T]{fn: fn, batch: vectorBatch}
	k.SetName("map_batch")
	raft.AddInput[T](k, "in")
	raft.AddOutput[T](k, "out")
	return k
}

// SetBatch bounds the borrow size (the adaptive batcher's per-link hint,
// when present, overrides n). Returns the kernel for chaining.
func (m *MapBatch[T]) SetBatch(n int) *MapBatch[T] {
	if n < 1 {
		n = 1
	}
	m.batch = n
	return m
}

// Run implements raft.Kernel.
func (m *MapBatch[T]) Run() raft.Status {
	in, out := m.In("in"), m.Out("out")
	b := in.BatchHint(m.batch)
	if b < 1 {
		b = 1
	}
	if raft.HasViews[T](in) {
		v, err := raft.PopView[T](in, b)
		if v.Len() == 0 {
			_ = err // blocking PopView yields elements or ErrClosed
			return raft.Stop
		}
		ok := m.emit(out, v.Vals, v.Sigs) && m.emit(out, v.Vals2, v.Sigs2)
		raft.ReleaseView[T](in, v.Len())
		if !ok {
			return raft.Stop
		}
		return raft.Proceed
	}
	if cap(m.vals) < b {
		m.vals = make([]T, b)
		m.sigs = make([]raft.Signal, b)
	}
	n, err := raft.PopNSig[T](in, m.vals[:b], m.sigs[:b])
	if n == 0 {
		_ = err
		return raft.Stop
	}
	if !m.emit(out, m.vals[:n], m.sigs[:n]) {
		return raft.Stop
	}
	return raft.Proceed
}

// emit transforms one segment in place and forwards it.
func (m *MapBatch[T]) emit(out *raft.Port, vals []T, sigs []raft.Signal) bool {
	if len(vals) == 0 {
		return true
	}
	m.fn(vals)
	return raft.PushNSig(out, vals, sigs) == nil
}

// Clone implements raft.Cloner.
func (m *MapBatch[T]) Clone() raft.Kernel { return NewMapBatch(m.fn).SetBatch(m.batch) }

// FilterBatch passes through only the elements satisfying a predicate,
// compacting each borrowed segment in place — the vectorized Filter.
type FilterBatch[T any] struct {
	raft.KernelBase
	pred  func(T) bool
	batch int
	// pending holds the synchronized signal of a dropped element until the
	// next kept element with a free (SigNone) slot carries it downstream —
	// unlike the scalar Filter, a filtered-out EOF is not silently lost as
	// long as any element follows. A later dropped signal overwrites an
	// undelivered earlier one.
	pending raft.Signal
	vals    []T
	sigs    []raft.Signal
}

// NewFilterBatch returns a kernel forwarding elements of port "in" to port
// "out" when pred returns true, processing borrowed batches in place. pred
// must be pure: FilterBatch is cloneable (each replica gets its own
// pending-signal state).
func NewFilterBatch[T any](pred func(T) bool) *FilterBatch[T] {
	k := &FilterBatch[T]{pred: pred, batch: vectorBatch}
	k.SetName("filter_batch")
	raft.AddInput[T](k, "in")
	raft.AddOutput[T](k, "out")
	return k
}

// SetBatch bounds the borrow size (the adaptive batcher's per-link hint,
// when present, overrides n). Returns the kernel for chaining.
func (f *FilterBatch[T]) SetBatch(n int) *FilterBatch[T] {
	if n < 1 {
		n = 1
	}
	f.batch = n
	return f
}

// Run implements raft.Kernel.
func (f *FilterBatch[T]) Run() raft.Status {
	in, out := f.In("in"), f.Out("out")
	b := in.BatchHint(f.batch)
	if b < 1 {
		b = 1
	}
	if raft.HasViews[T](in) {
		v, err := raft.PopView[T](in, b)
		if v.Len() == 0 {
			_ = err
			return raft.Stop
		}
		ok := f.emit(out, v.Vals, v.Sigs) && f.emit(out, v.Vals2, v.Sigs2)
		raft.ReleaseView[T](in, v.Len())
		if !ok {
			return raft.Stop
		}
		return raft.Proceed
	}
	if cap(f.vals) < b {
		f.vals = make([]T, b)
		f.sigs = make([]raft.Signal, b)
	}
	n, err := raft.PopNSig[T](in, f.vals[:b], f.sigs[:b])
	if n == 0 {
		_ = err
		return raft.Stop
	}
	if !f.emit(out, f.vals[:n], f.sigs[:n]) {
		return raft.Stop
	}
	return raft.Proceed
}

// emit compacts one segment in place (values and signals) and forwards the
// kept prefix.
func (f *FilterBatch[T]) emit(out *raft.Port, vals []T, sigs []raft.Signal) bool {
	if len(vals) == 0 {
		return true
	}
	// A borrowed segment may come with no signal array (all SigNone); the
	// compaction needs one only if a pending signal must be attached.
	if sigs == nil {
		if cap(f.sigs) < len(vals) {
			f.sigs = make([]raft.Signal, len(vals))
		}
		sigs = f.sigs[:len(vals)]
		for i := range sigs {
			sigs[i] = raft.SigNone
		}
	}
	k := 0
	for i, v := range vals {
		sig := sigs[i]
		if f.pred(v) {
			if sig == raft.SigNone && f.pending != raft.SigNone {
				sig = f.pending
				f.pending = raft.SigNone
			}
			vals[k], sigs[k] = v, sig
			k++
		} else if sig != raft.SigNone {
			f.pending = sig
		}
	}
	if k == 0 {
		return true
	}
	return raft.PushNSig(out, vals[:k], sigs[:k]) == nil
}

// Clone implements raft.Cloner.
func (f *FilterBatch[T]) Clone() raft.Kernel { return NewFilterBatch(f.pred).SetBatch(f.batch) }
