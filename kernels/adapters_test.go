package kernels

import (
	"reflect"
	"testing"
	"time"

	"raftlib/raft"
)

// runPipe builds src -> mid -> sink and returns the collected output.
func runPipe[T any](t *testing.T, src raft.Kernel, mid raft.Kernel, opts ...raft.Option) []T {
	t.Helper()
	var out []T
	m := raft.NewMap()
	if _, err := m.Link(src, mid); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(mid, NewWriteEach(&out)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(opts...); err != nil {
		t.Fatal(err)
	}
	return out
}

func ints(n int64) *Generate[int64] {
	return NewGenerate(n, func(i int64) int64 { return i })
}

func TestFilter(t *testing.T) {
	got := runPipe[int64](t, ints(100), NewFilter(func(v int64) bool { return v%3 == 0 }))
	if len(got) != 34 {
		t.Fatalf("filtered %d elements, want 34", len(got))
	}
	for i, v := range got {
		if v != int64(3*i) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestFilterReplicated(t *testing.T) {
	m := raft.NewMap()
	var out []int64
	f := NewFilter(func(v int64) bool { return v%2 == 0 })
	if _, err := m.Link(ints(10_000), f, raft.AsOutOfOrder()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(f, NewWriteEach(&out)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(raft.WithAutoReplicate(3)); err != nil {
		t.Fatal(err)
	}
	if len(out) != 5000 {
		t.Fatalf("parallel filter passed %d, want 5000", len(out))
	}
}

func TestTransform(t *testing.T) {
	mid := NewTransform(func(v int64) float64 { return float64(v) / 2 })
	var out []float64
	m := raft.NewMap()
	if _, err := m.Link(ints(5), mid); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(mid, NewWriteEach(&out)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 1, 1.5, 2}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %v", out)
	}
}

func TestTransformReorderablePreservesOrder(t *testing.T) {
	mid := NewTransform(func(v int64) int64 { return v * 10 })
	var out []int64
	m := raft.NewMap()
	if _, err := m.Link(ints(5000), mid, raft.AsReorderable()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(mid, NewWriteEach(&out)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(raft.WithAutoReplicate(4)); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != int64(10*i) {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
}

func TestTeeBroadcasts(t *testing.T) {
	m := raft.NewMap()
	tee := NewTee[int64](3)
	if _, err := m.Link(ints(100), tee); err != nil {
		t.Fatal(err)
	}
	outs := make([][]int64, 3)
	for i := 0; i < 3; i++ {
		if _, err := m.Link(tee, NewWriteEach(&outs[i]), raft.From(itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	for i, got := range outs {
		if len(got) != 100 {
			t.Fatalf("branch %d received %d elements", i, len(got))
		}
		for j, v := range got {
			if v != int64(j) {
				t.Fatalf("branch %d[%d] = %d", i, j, v)
			}
		}
	}
}

func TestTeeWidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTee(0) must panic")
		}
	}()
	NewTee[int](0)
}

func TestZipPairsStreams(t *testing.T) {
	m := raft.NewMap()
	z := NewZip[int64, int64]()
	if _, err := m.Link(ints(10), z, raft.To("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(NewGenerate(10, func(i int64) int64 { return i * i }), z, raft.To("b")); err != nil {
		t.Fatal(err)
	}
	var out []Pair[int64, int64]
	if _, err := m.Link(z, NewWriteEach(&out)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("zipped %d pairs", len(out))
	}
	for i, p := range out {
		if p.A != int64(i) || p.B != int64(i*i) {
			t.Fatalf("pair[%d] = %+v", i, p)
		}
	}
}

func TestZipUnequalLengthsStopAtShorter(t *testing.T) {
	m := raft.NewMap()
	z := NewZip[int64, int64]()
	if _, err := m.Link(ints(3), z, raft.To("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(ints(100), z, raft.To("b")); err != nil {
		t.Fatal(err)
	}
	var out []Pair[int64, int64]
	if _, err := m.Link(z, NewWriteEach(&out)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("zipped %d pairs, want 3", len(out))
	}
}

func TestBatchUnbatchRoundTrip(t *testing.T) {
	m := raft.NewMap()
	b := NewBatch[int64](7) // 100 elements -> 14 batches of 7 + one of 2
	u := NewUnbatch[int64]()
	var batches [][]int64
	tee := NewTee[[]int64](2)
	if _, err := m.Link(ints(100), b); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(b, tee); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(tee, NewWriteEach(&batches), raft.From("0")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(tee, u, raft.From("1")); err != nil {
		t.Fatal(err)
	}
	var flat []int64
	if _, err := m.Link(u, NewWriteEach(&flat)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if len(batches) != 15 {
		t.Fatalf("batches = %d, want 15", len(batches))
	}
	if len(batches[14]) != 2 {
		t.Fatalf("tail batch = %d elements, want 2", len(batches[14]))
	}
	if len(flat) != 100 {
		t.Fatalf("flattened %d elements", len(flat))
	}
	for i, v := range flat {
		if v != int64(i) {
			t.Fatalf("flat[%d] = %d", i, v)
		}
	}
}

func TestTakeCutsStream(t *testing.T) {
	got := runPipe[int64](t, ints(1_000_000), NewTake[int64](5))
	want := []int64{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestTakeMoreThanAvailable(t *testing.T) {
	got := runPipe[int64](t, ints(3), NewTake[int64](10))
	if len(got) != 3 {
		t.Fatalf("got %d", len(got))
	}
}

func TestDrop(t *testing.T) {
	got := runPipe[int64](t, ints(10), NewDrop[int64](7))
	want := []int64{7, 8, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestDropAll(t *testing.T) {
	got := runPipe[int64](t, ints(5), NewDrop[int64](100))
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestThrottlePacesStream(t *testing.T) {
	const interval = 5 * time.Millisecond
	start := time.Now()
	got := runPipe[int64](t, ints(5), NewThrottle[int64](interval))
	elapsed := time.Since(start)
	if len(got) != 5 {
		t.Fatalf("got %d elements", len(got))
	}
	// Four inter-element gaps minimum.
	if elapsed < 4*interval {
		t.Fatalf("elapsed %v, want >= %v", elapsed, 4*interval)
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 5: "5", 10: "10", 123: "123"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Fatalf("itoa(%d) = %q", in, got)
		}
	}
}

func TestSlidingWindowTumbling(t *testing.T) {
	// size == slide: non-overlapping (tumbling) windows.
	sums := NewSlidingWindow(4, 4, func(w []int64) int64 {
		var s int64
		for _, v := range w {
			s += v
		}
		return s
	})
	got := runPipe[int64](t, ints(12), sums)
	want := []int64{0 + 1 + 2 + 3, 4 + 5 + 6 + 7, 8 + 9 + 10 + 11}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSlidingWindowOverlapping(t *testing.T) {
	maxes := NewSlidingWindow(3, 1, func(w []int64) int64 {
		m := w[0]
		for _, v := range w[1:] {
			if v > m {
				m = v
			}
		}
		return m
	})
	got := runPipe[int64](t, ints(6), maxes)
	want := []int64{2, 3, 4, 5} // max of each [i, i+2]
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSlidingWindowPartialTailDiscarded(t *testing.T) {
	counts := NewSlidingWindow(5, 5, func(w []int64) int64 { return int64(len(w)) })
	got := runPipe[int64](t, ints(13), counts) // 13 = 2 full windows + 3 leftover
	if !reflect.DeepEqual(got, []int64{5, 5}) {
		t.Fatalf("got %v", got)
	}
}

func TestSlidingWindowValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSlidingWindow(0, 1, func(w []int64) int64 { return 0 }) },
		func() { NewSlidingWindow(4, 0, func(w []int64) int64 { return 0 }) },
		func() { NewSlidingWindow(4, 5, func(w []int64) int64 { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid window params must panic")
				}
			}()
			fn()
		}()
	}
}
