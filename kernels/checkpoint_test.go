package kernels

import (
	"testing"
	"time"

	"raftlib/raft"
)

// The library's stateful kernels must satisfy raft.Checkpointable.
var (
	_ raft.Checkpointable = (*Generate[int])(nil)
	_ raft.Checkpointable = (*ReadEach[int])(nil)
	_ raft.Checkpointable = (*Reduce[int])(nil)
	_ raft.Checkpointable = (*Take[int])(nil)
	_ raft.Checkpointable = (*Drop[int])(nil)
)

func TestKernelSnapshotRoundtrips(t *testing.T) {
	g := NewGenerate(100, func(i int64) int64 { return i })
	g.next = 42
	snap, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	g2 := NewGenerate(100, func(i int64) int64 { return i })
	if err := g2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if g2.next != 42 {
		t.Fatalf("Generate.next = %d, want 42", g2.next)
	}

	re := NewReadEach([]string{"a", "b", "c"})
	re.i = 2
	snap, err = re.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	re2 := NewReadEach([]string{"a", "b", "c"})
	if err := re2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if re2.i != 2 {
		t.Fatalf("ReadEach.i = %d, want 2", re2.i)
	}

	type pair struct{ A, B int }
	var out pair
	rd := NewReduce(func(acc, v pair) pair { return pair{acc.A + v.A, acc.B + v.B} }, pair{}, &out)
	rd.acc = pair{A: 7, B: 9}
	snap, err = rd.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rd2 := NewReduce(func(acc, v pair) pair { return acc }, pair{}, nil)
	if err := rd2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if rd2.acc != (pair{7, 9}) {
		t.Fatalf("Reduce.acc = %+v, want {7 9}", rd2.acc)
	}

	tk := NewTake[int](10)
	tk.remaining = 4
	snap, _ = tk.Snapshot()
	tk2 := NewTake[int](10)
	if err := tk2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if tk2.remaining != 4 {
		t.Fatalf("Take.remaining = %d, want 4", tk2.remaining)
	}

	dp := NewDrop[int](10)
	dp.remaining = 3
	snap, _ = dp.Snapshot()
	dp2 := NewDrop[int](10)
	if err := dp2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if dp2.remaining != 3 {
		t.Fatalf("Drop.remaining = %d, want 3", dp2.remaining)
	}
}

func TestSupervisedReduceSurvivesInjectedKill(t *testing.T) {
	const n = 200
	var sum int64
	m := raft.NewMap()
	gen := NewGenerate(n, func(i int64) int64 { return i + 1 })
	red := NewReduce(func(acc, v int64) int64 { return acc + v }, 0, &sum)
	if _, err := m.Link(gen, red); err != nil {
		t.Fatal(err)
	}

	inj := raft.NewFaultInjector()
	inj.KillKernel("reduce", 50)
	inj.KillKernel("generate", 120)

	if _, err := m.Exe(
		raft.WithSupervision(raft.SupervisionPolicy{InitialBackoff: time.Microsecond}),
		raft.WithCheckpointStore(raft.NewMemCheckpointStore()),
		raft.WithFaultInjection(inj),
	); err != nil {
		t.Fatal(err)
	}
	if want := int64(n * (n + 1) / 2); sum != want {
		t.Fatalf("sum = %d, want %d (kills must be lossless)", sum, want)
	}
	if inj.Fired("kill") != 2 {
		t.Fatalf("kills fired = %d, want 2", inj.Fired("kill"))
	}
}
