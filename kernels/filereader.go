package kernels

import (
	"fmt"
	"os"

	"raftlib/raft"
)

// Chunk is one window of a byte stream: Data aliases the underlying corpus
// buffer (no payload copy), Off is its absolute offset, and Valid is the
// number of leading bytes whose match starts belong to this chunk — the
// remaining bytes are overlap shared with the next chunk so patterns that
// straddle a boundary are still found. Prev is the byte immediately before
// Data in the stream (0 for the first chunk), letting boundary-sensitive
// consumers (tokenizers) distinguish a word continuing across the boundary
// from a word starting exactly on it.
type Chunk struct {
	Data  []byte
	Off   int64
	Valid int
	Prev  byte
}

// DefaultChunkSize is the filereader window size when none is given.
const DefaultChunkSize = 256 << 10

// BytesReader streams an in-memory corpus as overlapping zero-copy chunks —
// the in-memory equivalent of the paper's filereader kernel (§5, Fig. 8:
// "the file read exists as an independent kernel only momentarily as a
// notional data source since the run-time utilizes zero copy").
type BytesReader struct {
	raft.KernelBase
	data    []byte
	chunk   int
	overlap int
	off     int
}

// NewBytesReader streams data in windows of chunk bytes with the given
// overlap (usually pattern length - 1) on port "out".
func NewBytesReader(data []byte, chunk, overlap int) *BytesReader {
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	if overlap < 0 {
		overlap = 0
	}
	k := &BytesReader{data: data, chunk: chunk, overlap: overlap}
	k.SetName("filereader")
	raft.AddOutput[Chunk](k, "out")
	return k
}

// Run implements raft.Kernel.
func (b *BytesReader) Run() raft.Status {
	if b.off >= len(b.data) {
		return raft.Stop
	}
	end := b.off + b.chunk + b.overlap
	if end > len(b.data) {
		end = len(b.data)
	}
	valid := b.chunk
	if b.off+valid > len(b.data) {
		valid = len(b.data) - b.off
	}
	c := Chunk{Data: b.data[b.off:end], Off: int64(b.off), Valid: valid}
	if b.off > 0 {
		c.Prev = b.data[b.off-1]
	}
	sig := raft.SigNone
	last := b.off+b.chunk >= len(b.data)
	if last {
		sig = raft.SigEOF
	}
	if err := raft.PushSig(b.Out("out"), c, sig); err != nil {
		return raft.Stop
	}
	if last {
		return raft.Stop
	}
	b.off += b.chunk
	return raft.Proceed
}

// FileReader reads a file fully into memory once and then streams it as
// overlapping zero-copy chunks, mirroring the paper's RAM-disk setup where
// disk I/O is excluded from the measurement.
type FileReader struct {
	*BytesReader
	path string
}

// NewFileReader returns a source kernel streaming the file's contents in
// windows of chunk bytes with the given overlap on port "out". The file is
// loaded in Init, so construction never fails on I/O.
func NewFileReader(path string, chunk, overlap int) *FileReader {
	k := &FileReader{BytesReader: NewBytesReader(nil, chunk, overlap), path: path}
	k.SetName("filereader")
	return k
}

// Init implements raft.Initializer by loading the file.
func (f *FileReader) Init() error {
	data, err := os.ReadFile(f.path)
	if err != nil {
		return fmt.Errorf("filereader: %w", err)
	}
	f.data = data
	return nil
}
