package kernels

import (
	"time"

	"raftlib/raft"
)

// This file provides the generic stream adapters that round out the
// standard kernel library: the small composable pieces (filter, transform,
// duplicate, join, batch, rate-limit, prefix/suffix selection) a stream
// programmer reaches for between the domain kernels. Each is a plain
// kernel over typed ports; the stateless ones are cloneable so the runtime
// may replicate them.

// Filter passes through only the elements satisfying a predicate.
type Filter[T any] struct {
	raft.KernelBase
	pred func(T) bool
}

// NewFilter returns a kernel forwarding elements of port "in" to port
// "out" when pred returns true. pred must be pure: Filter is cloneable.
func NewFilter[T any](pred func(T) bool) *Filter[T] {
	k := &Filter[T]{pred: pred}
	k.SetName("filter")
	raft.AddInput[T](k, "in")
	raft.AddOutput[T](k, "out")
	return k
}

// Run implements raft.Kernel.
func (f *Filter[T]) Run() raft.Status {
	v, sig, err := raft.PopSig[T](f.In("in"))
	if err != nil {
		return raft.Stop
	}
	if !f.pred(v) {
		return raft.Proceed
	}
	if err := raft.PushSig(f.Out("out"), v, sig); err != nil {
		return raft.Stop
	}
	return raft.Proceed
}

// Clone implements raft.Cloner.
func (f *Filter[T]) Clone() raft.Kernel { return NewFilter(f.pred) }

// Transform applies a function to every element (the streaming map).
type Transform[T, U any] struct {
	raft.KernelBase
	fn func(T) U
}

// NewTransform returns a kernel applying fn to each element of port "in"
// and emitting the result on port "out". fn must be pure: Transform is
// cloneable.
func NewTransform[T, U any](fn func(T) U) *Transform[T, U] {
	k := &Transform[T, U]{fn: fn}
	k.SetName("transform")
	raft.AddInput[T](k, "in")
	raft.AddOutput[U](k, "out")
	return k
}

// Run implements raft.Kernel.
func (t *Transform[T, U]) Run() raft.Status {
	v, sig, err := raft.PopSig[T](t.In("in"))
	if err != nil {
		return raft.Stop
	}
	if err := raft.PushSig(t.Out("out"), t.fn(v), sig); err != nil {
		return raft.Stop
	}
	return raft.Proceed
}

// Clone implements raft.Cloner.
func (t *Transform[T, U]) Clone() raft.Kernel { return NewTransform(t.fn) }

// Tee duplicates every element to all of its outputs — explicit fan-out
// (a stream port connects exactly one producer to one consumer, so
// broadcast requires a copy kernel).
type Tee[T any] struct {
	raft.KernelBase
}

// NewTee returns a kernel copying each element of port "in" to output
// ports "0".."width-1".
func NewTee[T any](width int) *Tee[T] {
	if width < 1 {
		panic("kernels: NewTee width must be >= 1")
	}
	k := &Tee[T]{}
	k.SetName("tee")
	raft.AddInput[T](k, "in")
	for i := 0; i < width; i++ {
		raft.AddOutput[T](k, itoa(i))
	}
	return k
}

// Run implements raft.Kernel.
func (t *Tee[T]) Run() raft.Status {
	v, sig, err := raft.PopSig[T](t.In("in"))
	if err != nil {
		return raft.Stop
	}
	for _, out := range t.OutPorts() {
		if err := raft.PushSig(out, v, sig); err != nil {
			return raft.Stop
		}
	}
	return raft.Proceed
}

// Pair is the element type produced by Zip.
type Pair[A, B any] struct {
	A A
	B B
}

// Zip joins two streams element-wise: one element from each input forms a
// Pair. The kernel stops when either input is exhausted (trailing
// unmatched elements on the longer stream are discarded, like the sum
// kernel of the paper's Fig. 2 when one operand stream ends first).
type Zip[A, B any] struct {
	raft.KernelBase
}

// NewZip returns a kernel pairing port "a" with port "b" onto port "out".
func NewZip[A, B any]() *Zip[A, B] {
	k := &Zip[A, B]{}
	k.SetName("zip")
	raft.AddInput[A](k, "a")
	raft.AddInput[B](k, "b")
	raft.AddOutput[Pair[A, B]](k, "out")
	return k
}

// Run implements raft.Kernel.
func (z *Zip[A, B]) Run() raft.Status {
	a, err := raft.Pop[A](z.In("a"))
	if err != nil {
		return raft.Stop
	}
	b, err := raft.Pop[B](z.In("b"))
	if err != nil {
		return raft.Stop
	}
	if err := raft.Push(z.Out("out"), Pair[A, B]{A: a, B: b}); err != nil {
		return raft.Stop
	}
	return raft.Proceed
}

// Batch groups consecutive elements into fixed-size slices, emitting a
// final short batch at end of stream. Batching amortizes per-element
// stream costs for fine-grained element types.
type Batch[T any] struct {
	raft.KernelBase
	size int
	cur  []T
}

// NewBatch returns a kernel grouping port "in" into []T batches of the
// given size on port "out".
func NewBatch[T any](size int) *Batch[T] {
	if size < 1 {
		size = 1
	}
	k := &Batch[T]{size: size}
	k.SetName("batch")
	raft.AddInput[T](k, "in")
	raft.AddOutput[[]T](k, "out")
	return k
}

// Run implements raft.Kernel.
func (b *Batch[T]) Run() raft.Status {
	v, err := raft.Pop[T](b.In("in"))
	if err != nil {
		if len(b.cur) > 0 {
			_ = raft.Push(b.Out("out"), b.cur)
			b.cur = nil
		}
		return raft.Stop
	}
	b.cur = append(b.cur, v)
	if len(b.cur) == b.size {
		if err := raft.Push(b.Out("out"), b.cur); err != nil {
			return raft.Stop
		}
		b.cur = make([]T, 0, b.size)
	}
	return raft.Proceed
}

// Unbatch flattens slices back into their elements.
type Unbatch[T any] struct {
	raft.KernelBase
}

// NewUnbatch returns a kernel expanding []T batches from port "in" into
// single elements on port "out".
func NewUnbatch[T any]() *Unbatch[T] {
	k := &Unbatch[T]{}
	k.SetName("unbatch")
	raft.AddInput[[]T](k, "in")
	raft.AddOutput[T](k, "out")
	return k
}

// Run implements raft.Kernel.
func (u *Unbatch[T]) Run() raft.Status {
	vs, err := raft.Pop[[]T](u.In("in"))
	if err != nil {
		return raft.Stop
	}
	out := u.Out("out")
	for _, v := range vs {
		if err := raft.Push(out, v); err != nil {
			return raft.Stop
		}
	}
	return raft.Proceed
}

// Take forwards the first n elements, then terminates the stream — the
// downstream-driven cut-off for unbounded sources.
type Take[T any] struct {
	raft.KernelBase
	remaining int64
}

// NewTake returns a kernel passing through the first n elements of port
// "in" to port "out".
func NewTake[T any](n int64) *Take[T] {
	k := &Take[T]{remaining: n}
	k.SetName("take")
	raft.AddInput[T](k, "in")
	raft.AddOutput[T](k, "out")
	return k
}

// Run implements raft.Kernel.
func (t *Take[T]) Run() raft.Status {
	if t.remaining <= 0 {
		return raft.Stop
	}
	v, sig, err := raft.PopSig[T](t.In("in"))
	if err != nil {
		return raft.Stop
	}
	t.remaining--
	if t.remaining == 0 && sig == raft.SigNone {
		sig = raft.SigEOF
	}
	if err := raft.PushSig(t.Out("out"), v, sig); err != nil {
		return raft.Stop
	}
	return raft.Proceed
}

// Drop discards the first n elements and forwards the rest.
type Drop[T any] struct {
	raft.KernelBase
	remaining int64
}

// NewDrop returns a kernel discarding the first n elements of port "in".
func NewDrop[T any](n int64) *Drop[T] {
	k := &Drop[T]{remaining: n}
	k.SetName("drop")
	raft.AddInput[T](k, "in")
	raft.AddOutput[T](k, "out")
	return k
}

// Run implements raft.Kernel.
func (d *Drop[T]) Run() raft.Status {
	v, sig, err := raft.PopSig[T](d.In("in"))
	if err != nil {
		return raft.Stop
	}
	if d.remaining > 0 {
		d.remaining--
		return raft.Proceed
	}
	if err := raft.PushSig(d.Out("out"), v, sig); err != nil {
		return raft.Stop
	}
	return raft.Proceed
}

// Throttle rate-limits a stream to at most one element per interval —
// pacing for downstream systems with ingest limits.
type Throttle[T any] struct {
	raft.KernelBase
	interval time.Duration
	last     time.Time
}

// NewThrottle returns a kernel forwarding at most one element per
// interval.
func NewThrottle[T any](interval time.Duration) *Throttle[T] {
	k := &Throttle[T]{interval: interval}
	k.SetName("throttle")
	raft.AddInput[T](k, "in")
	raft.AddOutput[T](k, "out")
	return k
}

// Run implements raft.Kernel.
func (t *Throttle[T]) Run() raft.Status {
	v, sig, err := raft.PopSig[T](t.In("in"))
	if err != nil {
		return raft.Stop
	}
	if !t.last.IsZero() {
		if wait := t.interval - time.Since(t.last); wait > 0 {
			time.Sleep(wait)
		}
	}
	t.last = time.Now()
	if err := raft.PushSig(t.Out("out"), v, sig); err != nil {
		return raft.Stop
	}
	return raft.Proceed
}

// itoa converts small non-negative ints without strconv.
func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}
