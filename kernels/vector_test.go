package kernels

import (
	"testing"

	"raftlib/raft"
)

func TestMapBatch(t *testing.T) {
	got := runPipe[int64](t, ints(1000), NewMapBatch(func(vals []int64) {
		for i := range vals {
			vals[i] *= 2
		}
	}))
	if len(got) != 1000 {
		t.Fatalf("mapped %d elements, want 1000", len(got))
	}
	for i, v := range got {
		if v != int64(2*i) {
			t.Fatalf("got[%d] = %d, want %d", i, v, 2*i)
		}
	}
}

func TestFilterBatch(t *testing.T) {
	got := runPipe[int64](t, ints(100), NewFilterBatch(func(v int64) bool { return v%3 == 0 }))
	if len(got) != 34 {
		t.Fatalf("filtered %d elements, want 34", len(got))
	}
	for i, v := range got {
		if v != int64(3*i) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

// TestFilterBatchDropsEverything: a predicate that never passes still
// terminates cleanly (each Run borrows, compacts to zero, releases).
func TestFilterBatchDropsEverything(t *testing.T) {
	got := runPipe[int64](t, ints(500), NewFilterBatch(func(int64) bool { return false }))
	if len(got) != 0 {
		t.Fatalf("passed %d elements, want 0", len(got))
	}
}

func TestMapBatchReplicated(t *testing.T) {
	m := raft.NewMap()
	var out []int64
	k := NewMapBatch(func(vals []int64) {
		for i := range vals {
			vals[i]++
		}
	})
	if _, err := m.Link(ints(10_000), k, raft.AsOutOfOrder()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(k, NewWriteEach(&out)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(raft.WithAutoReplicate(3)); err != nil {
		t.Fatal(err)
	}
	if len(out) != 10_000 {
		t.Fatalf("parallel map emitted %d, want 10000", len(out))
	}
	var sum int64
	for _, v := range out {
		sum += v
	}
	const want = int64(10_000) * 9_999 / 2 // sum(0..9999) + 10000*1
	if sum != want+10_000 {
		t.Fatalf("sum = %d, want %d", sum, want+10_000)
	}
}

func TestFilterBatchReplicated(t *testing.T) {
	m := raft.NewMap()
	var out []int64
	f := NewFilterBatch(func(v int64) bool { return v%2 == 0 })
	if _, err := m.Link(ints(10_000), f, raft.AsOutOfOrder()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(f, NewWriteEach(&out)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(raft.WithAutoReplicate(3)); err != nil {
		t.Fatal(err)
	}
	if len(out) != 5000 {
		t.Fatalf("parallel filter passed %d, want 5000", len(out))
	}
}

// TestBatchLambda exercises the raw raft.NewBatchLambda surface: an
// in-place transform that also compacts (keep evens, negate them).
func TestBatchLambda(t *testing.T) {
	mid := raft.NewBatchLambda(32, func(vals []int64, sigs []raft.Signal) int {
		k := 0
		for i, v := range vals {
			if v%2 != 0 {
				continue
			}
			vals[k], sigs[k] = -v, sigs[i]
			k++
		}
		return k
	})
	got := runPipe[int64](t, ints(1000), mid)
	if len(got) != 500 {
		t.Fatalf("emitted %d elements, want 500", len(got))
	}
	for i, v := range got {
		if v != int64(-2*i) {
			t.Fatalf("got[%d] = %d, want %d", i, v, -2*i)
		}
	}
}

// TestVectorKernelsLockFree runs the vectorized kernels over lock-free
// SPSC links, where PopView borrows sealed-epoch storage.
func TestVectorKernelsLockFree(t *testing.T) {
	got := runPipe[int64](t, ints(2000), NewMapBatch(func(vals []int64) {
		for i := range vals {
			vals[i] += 5
		}
	}), raft.WithLockFreeQueues())
	if len(got) != 2000 {
		t.Fatalf("mapped %d elements, want 2000", len(got))
	}
	for i, v := range got {
		if v != int64(i+5) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}
