package kernels

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"raftlib/internal/corpus"
	"raftlib/raft"
)

func TestGeneratePrint(t *testing.T) {
	var buf bytes.Buffer
	m := raft.NewMap()
	gen := NewGenerate(5, func(i int64) int64 { return i * i })
	pr := NewPrint[int64](&buf, '\n')
	if _, err := m.Link(gen, pr); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	want := "0\n1\n4\n9\n16\n"
	if buf.String() != want {
		t.Fatalf("printed %q, want %q", buf.String(), want)
	}
}

func TestReadEachWriteEach(t *testing.T) {
	// The paper's Fig. 5: container -> read_each -> write_each -> container.
	src := make([]uint32, 1000)
	for i := range src {
		src[i] = uint32(i)
	}
	var dst []uint32
	m := raft.NewMap()
	if _, err := m.Link(NewReadEach(src), NewWriteEach(&dst)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(src, dst) {
		t.Fatalf("copied %d elements, mismatch (got %v...)", len(dst), dst[:min(5, len(dst))])
	}
}

func TestReadEachEmptySlice(t *testing.T) {
	var dst []int
	m := raft.NewMap()
	if _, err := m.Link(NewReadEach[int](nil), NewWriteEach(&dst)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if len(dst) != 0 {
		t.Fatalf("dst = %v, want empty", dst)
	}
}

func TestForEachReduce(t *testing.T) {
	// The paper's Fig. 6: for_each(arr) -> kernel -> reduce(val).
	const n = 10_000
	arr := make([]int, n)
	for i := range arr {
		arr[i] = i
	}
	square := raft.NewLambdaIO[int, int](1, 1, func(k *raft.LambdaKernel) raft.Status {
		v, err := raft.Pop[int](k.In("0"))
		if err != nil {
			return raft.Stop
		}
		if err := raft.Push(k.Out("0"), v*2); err != nil {
			return raft.Stop
		}
		return raft.Proceed
	})
	var val int
	m := raft.NewMap()
	if _, err := m.Link(NewForEach(arr), square); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(square, NewReduce(func(a, v int) int { return a + v }, 0, &val)); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe()
	if err != nil {
		t.Fatal(err)
	}
	want := n * (n - 1) // 2 * sum(0..n-1)
	if val != want {
		t.Fatalf("reduced %d, want %d", val, want)
	}
	// The for_each source must be virtual: zero scheduled runs.
	for _, k := range rep.Kernels {
		if strings.HasPrefix(k.Name, "for_each") && k.Runs != 0 {
			t.Fatalf("for_each ran %d times; must be momentary", k.Runs)
		}
	}
}

func TestForEachZeroCopyWindow(t *testing.T) {
	// A window consumer must observe the original array's memory.
	arr := []byte("hello zero copy world")
	var observedAlias bool
	consumer := raft.NewLambdaIO[byte, int](1, 0, func(k *raft.LambdaKernel) raft.Status {
		w, err := raft.PeekRange[byte](k.In("0"), len(arr))
		if err != nil && len(w) == 0 {
			return raft.Stop
		}
		if len(w) == len(arr) && &w[0] == &arr[0] {
			observedAlias = true
		}
		raft.Recycle[byte](k.In("0"), len(w))
		return raft.Proceed
	})
	m := raft.NewMap()
	if _, err := m.Link(NewForEach(arr), consumer); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if !observedAlias {
		t.Fatal("PeekRange window did not alias the for_each source array")
	}
}

func TestBytesReaderChunksCoverCorpus(t *testing.T) {
	data := corpus.Generate(corpus.Spec{Bytes: 100_000, Seed: 3})
	var got []byte
	sink := raft.NewLambdaIO[Chunk, int](1, 0, func(k *raft.LambdaKernel) raft.Status {
		c, err := raft.Pop[Chunk](k.In("0"))
		if err != nil {
			return raft.Stop
		}
		got = append(got, c.Data[:c.Valid]...)
		return raft.Proceed
	})
	m := raft.NewMap()
	if _, err := m.Link(NewBytesReader(data, 7_777, 4), sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("valid regions reassemble %d bytes, want %d identical", len(got), len(data))
	}
}

func TestBytesReaderZeroCopy(t *testing.T) {
	data := []byte("0123456789abcdef")
	var firstChunk Chunk
	seen := false
	sink := raft.NewLambdaIO[Chunk, int](1, 0, func(k *raft.LambdaKernel) raft.Status {
		c, err := raft.Pop[Chunk](k.In("0"))
		if err != nil {
			return raft.Stop
		}
		if !seen {
			firstChunk, seen = c, true
		}
		return raft.Proceed
	})
	m := raft.NewMap()
	if _, err := m.Link(NewBytesReader(data, 8, 2), sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if !seen || &firstChunk.Data[0] != &data[0] {
		t.Fatal("chunk data must alias the source buffer")
	}
	if firstChunk.Valid != 8 || len(firstChunk.Data) != 10 {
		t.Fatalf("chunk = valid %d, len %d; want 8, 10", firstChunk.Valid, len(firstChunk.Data))
	}
}

func TestFileReader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.txt")
	data := corpus.Generate(corpus.Spec{Bytes: 50_000, Seed: 8})
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var total int64
	sink := raft.NewLambdaIO[Chunk, int](1, 0, func(k *raft.LambdaKernel) raft.Status {
		c, err := raft.Pop[Chunk](k.In("0"))
		if err != nil {
			return raft.Stop
		}
		total += int64(c.Valid)
		return raft.Proceed
	})
	m := raft.NewMap()
	if _, err := m.Link(NewFileReader(path, 9_999, 7), sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if total != int64(len(data)) {
		t.Fatalf("streamed %d valid bytes, want %d", total, len(data))
	}
}

func TestFileReaderMissingFile(t *testing.T) {
	m := raft.NewMap()
	sink := raft.NewLambdaIO[Chunk, int](1, 0, func(k *raft.LambdaKernel) raft.Status {
		_, err := raft.Pop[Chunk](k.In("0"))
		if err != nil {
			return raft.Stop
		}
		return raft.Proceed
	})
	if _, err := m.Link(NewFileReader("/nonexistent/corpus", 0, 0), sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err == nil {
		t.Fatal("Exe must report the Init failure")
	}
}

func TestSearchKernelFindsAllHits(t *testing.T) {
	data := corpus.Generate(corpus.Spec{Bytes: 1 << 20, Seed: 21})
	pattern := []byte(corpus.DefaultPattern)
	wantPositions := naivePositions(data, pattern)

	for _, algo := range []string{"ahocorasick", "horspool", "boyermoore"} {
		var hits []int64
		m := raft.NewMap()
		if _, err := m.Link(NewBytesReader(data, 64<<10, len(pattern)-1), MustSearch(algo, pattern)); err != nil {
			t.Fatal(err)
		}
		srch := m.Kernels()[1]
		if _, err := m.Link(srch, NewWriteEach(&hits)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Exe(); err != nil {
			t.Fatal(err)
		}
		if len(hits) != len(wantPositions) {
			t.Fatalf("%s: %d hits, want %d", algo, len(hits), len(wantPositions))
		}
		for i := range hits {
			if hits[i] != wantPositions[i] {
				t.Fatalf("%s: hit[%d] = %d, want %d", algo, i, hits[i], wantPositions[i])
			}
		}
	}
}

func TestSearchKernelParallelMatchesSequential(t *testing.T) {
	data := corpus.Generate(corpus.Spec{Bytes: 2 << 20, Seed: 33})
	pattern := []byte(corpus.DefaultPattern)
	want := naivePositions(data, pattern)

	var hits []int64
	m := raft.NewMap()
	if _, err := m.Link(NewBytesReader(data, 64<<10, len(pattern)-1),
		MustSearch("horspool", pattern), raft.AsOutOfOrder()); err != nil {
		t.Fatal(err)
	}
	srch := m.Kernels()[1]
	if _, err := m.Link(srch, NewWriteEach(&hits)); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(raft.WithAutoReplicate(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 1 {
		t.Fatalf("expected one replicated group, got %+v", rep.Groups)
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i] < hits[j] })
	if len(hits) != len(want) {
		t.Fatalf("parallel found %d hits, want %d", len(hits), len(want))
	}
	for i := range hits {
		if hits[i] != want[i] {
			t.Fatalf("hit[%d] = %d, want %d", i, hits[i], want[i])
		}
	}
}

func TestCountSearchTotalsMatch(t *testing.T) {
	data := corpus.Generate(corpus.Spec{Bytes: 1 << 20, Seed: 55})
	pattern := []byte(corpus.DefaultPattern)
	want := int64(len(naivePositions(data, pattern)))

	cs, err := NewCountSearch("ahocorasick", pattern)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	m := raft.NewMap()
	if _, err := m.Link(NewBytesReader(data, 32<<10, len(pattern)-1), cs); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(cs, NewReduce(func(a, v int64) int64 { return a + v }, 0, &total)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("counted %d, want %d", total, want)
	}
}

func TestNewSearchRejectsBadAlgo(t *testing.T) {
	if _, err := NewSearch("quantum", []byte("x")); err == nil {
		t.Fatal("unknown algorithm must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustSearch must panic on bad algorithm")
		}
	}()
	MustSearch("quantum", []byte("x"))
}

// naivePositions is the test oracle: every match start of pattern in data.
func naivePositions(data, pattern []byte) []int64 {
	var out []int64
	for i := 0; i+len(pattern) <= len(data); i++ {
		if bytes.Equal(data[i:i+len(pattern)], pattern) {
			out = append(out, int64(i))
		}
	}
	return out
}

func TestSearchGroupSwapsToFastest(t *testing.T) {
	data := corpus.Generate(corpus.Spec{Bytes: 8 << 20, Seed: 77})
	pattern := []byte(corpus.DefaultPattern)
	want := int64(len(naivePositions(data, pattern)))

	grp, err := NewSearchGroup([]string{"naive", "kmp", "ahocorasick", "horspool"}, pattern)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	m := raft.NewMap()
	// Small chunks give the group many invocations to measure with.
	if _, err := m.Link(NewBytesReader(data, 16<<10, len(pattern)-1), grp); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(grp, NewReduce(func(a, v int64) int64 { return a + v }, 0, &total)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("group counted %d, want %d", total, want)
	}
	// On prose with a single pattern the skip-loop matcher should win.
	if got := grp.Active(); got != "horspool" && got != "boyermoore" {
		t.Fatalf("group settled on %q, want a Boyer-Moore-family matcher", got)
	}
}

func TestSearchGroupFixedMember(t *testing.T) {
	data := corpus.Generate(corpus.Spec{Bytes: 1 << 20, Seed: 78})
	pattern := []byte(corpus.DefaultPattern)
	grp, err := NewSearchGroup([]string{"kmp", "horspool"}, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if err := grp.SetFixed("kmp"); err != nil {
		t.Fatal(err)
	}
	var total int64
	m := raft.NewMap()
	if _, err := m.Link(NewBytesReader(data, 64<<10, len(pattern)-1), grp); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(grp, NewReduce(func(a, v int64) int64 { return a + v }, 0, &total)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if grp.Active() != "kmp" || grp.Swaps() != 0 {
		t.Fatalf("fixed group moved: %q, %d swaps", grp.Active(), grp.Swaps())
	}
}

func TestSearchGroupBadAlgo(t *testing.T) {
	if _, err := NewSearchGroup([]string{"horspool", "alien"}, []byte("x")); err == nil {
		t.Fatal("bad member algorithm must error")
	}
}

func TestBytesReaderPrevByte(t *testing.T) {
	data := []byte("abcdefghij")
	var chunks []Chunk
	sink := raft.NewLambdaIO[Chunk, int](1, 0, func(k *raft.LambdaKernel) raft.Status {
		c, err := raft.Pop[Chunk](k.In("0"))
		if err != nil {
			return raft.Stop
		}
		chunks = append(chunks, c)
		return raft.Proceed
	})
	m := raft.NewMap()
	if _, err := m.Link(NewBytesReader(data, 4, 1), sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
	if chunks[0].Prev != 0 {
		t.Fatalf("first chunk Prev = %q, want 0", chunks[0].Prev)
	}
	if chunks[1].Prev != 'd' || chunks[2].Prev != 'h' {
		t.Fatalf("Prev bytes = %q, %q; want d, h", chunks[1].Prev, chunks[2].Prev)
	}
}
