package kernels

import (
	"raftlib/raft"
)

// NewSearchGroup builds the paper's §4.2 grep example — "a version of the
// UNIX utility grep could be implemented with multiple search algorithms
// ... they can all be expressed as a 'search' kernel" — as a KernelGroup
// of counting match kernels. The runtime measures each algorithm's service
// rate and swaps the group to the fastest, adapting to the input; pin one
// with (*raft.KernelGroup).SetFixed, as the paper's benchmark did.
func NewSearchGroup(algos []string, pattern []byte) (*raft.KernelGroup, error) {
	members := make([]raft.Kernel, 0, len(algos))
	for _, algo := range algos {
		k, err := NewCountSearch(algo, pattern)
		if err != nil {
			return nil, err
		}
		k.SetName(algo)
		members = append(members, k)
	}
	g, err := raft.NewKernelGroup(members...)
	if err != nil {
		return nil, err
	}
	g.SetName("search-group")
	return g, nil
}
