package kernels

import (
	"bytes"
	"encoding/gob"
)

// This file makes the library's stateful kernels Checkpointable: under
// raft.WithSupervision / raft.WithCheckpoints their progress state is
// snapshotted after successful invocations and restored on restart, so a
// recovered kernel resumes exactly where it left off (and, with a
// file-backed store, a re-executed application resumes across processes).
// Stateless kernels (Print, WriteEach, SlidingWindow — whose only state is
// the stream itself) need no checkpoint.

// gobEncode serializes one value with encoding/gob.
func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// gobDecode deserializes one value with encoding/gob.
func gobDecode(snap []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(snap)).Decode(v)
}

// Snapshot implements raft.Checkpointable (the next index to generate).
func (g *Generate[T]) Snapshot() ([]byte, error) { return gobEncode(g.next) }

// Restore implements raft.Checkpointable.
func (g *Generate[T]) Restore(snap []byte) error { return gobDecode(snap, &g.next) }

// Snapshot implements raft.Checkpointable (the next source index).
func (r *ReadEach[T]) Snapshot() ([]byte, error) { return gobEncode(int64(r.i)) }

// Restore implements raft.Checkpointable.
func (r *ReadEach[T]) Restore(snap []byte) error {
	var i int64
	if err := gobDecode(snap, &i); err != nil {
		return err
	}
	r.i = int(i)
	return nil
}

// Snapshot implements raft.Checkpointable (the running accumulator; T must
// be gob-encodable).
func (r *Reduce[T]) Snapshot() ([]byte, error) { return gobEncode(&r.acc) }

// Restore implements raft.Checkpointable.
func (r *Reduce[T]) Restore(snap []byte) error { return gobDecode(snap, &r.acc) }

// Snapshot implements raft.Checkpointable (elements still to forward).
func (t *Take[T]) Snapshot() ([]byte, error) { return gobEncode(t.remaining) }

// Restore implements raft.Checkpointable.
func (t *Take[T]) Restore(snap []byte) error { return gobDecode(snap, &t.remaining) }

// Snapshot implements raft.Checkpointable (elements still to discard).
func (d *Drop[T]) Snapshot() ([]byte, error) { return gobEncode(d.remaining) }

// Restore implements raft.Checkpointable.
func (d *Drop[T]) Restore(snap []byte) error { return gobDecode(snap, &d.remaining) }
