package kernels

import (
	"reflect"
	"testing"

	"raftlib/raft"
)

// TestGenerateBatchedEquivalence checks SetBatch produces the identical
// stream (values and final sum) as the element-wise path.
func TestGenerateBatchedEquivalence(t *testing.T) {
	run := func(batch int) int64 {
		var sum int64
		m := raft.NewMap()
		gen := NewGenerate(1000, func(i int64) int64 { return i * 3 })
		if batch > 1 {
			gen.SetBatch(batch)
		}
		red := NewReduce(func(a, v int64) int64 { return a + v }, 0, &sum)
		if batch > 1 {
			red.SetBatch(batch)
		}
		m.MustLink(gen, red)
		if _, err := m.Exe(); err != nil {
			t.Fatal(err)
		}
		return sum
	}
	want := run(0)
	for _, b := range []int{2, 16, 64, 1024} {
		if got := run(b); got != want {
			t.Fatalf("batch %d sum = %d, want %d", b, got, want)
		}
	}
}

// TestReadWriteEachBatchedEquivalence round-trips a slice through batched
// source and sink, requiring an exact copy.
func TestReadWriteEachBatchedEquivalence(t *testing.T) {
	src := make([]uint32, 777) // deliberately not a multiple of the batch
	for i := range src {
		src[i] = uint32(i * 7)
	}
	for _, b := range []int{0, 2, 32, 256} {
		var dst []uint32
		m := raft.NewMap()
		m.MustLink(NewReadEach(src).SetBatch(b), NewWriteEach(&dst).SetBatch(b))
		if _, err := m.Exe(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(src, dst) {
			t.Fatalf("batch %d: copy mismatch (%d elements, want %d)", b, len(dst), len(src))
		}
	}
}

// TestBatchedKernelsUnderAdaptiveExe runs batched kernels with the adaptive
// batcher steering the link and checks the result is unchanged.
func TestBatchedKernelsUnderAdaptiveExe(t *testing.T) {
	var sum int64
	m := raft.NewMap()
	gen := NewGenerate(20000, func(i int64) int64 { return i }).SetBatch(8)
	red := NewReduce(func(a, v int64) int64 { return a + v }, 0, &sum).SetBatch(8)
	m.MustLink(gen, red)
	if _, err := m.Exe(raft.WithAdaptiveBatching(true)); err != nil {
		t.Fatal(err)
	}
	const n = 20000
	if want := int64(n * (n - 1) / 2); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

// TestGenerateBatchedEOFSignal: the batched source must still deliver the
// EOF signal on the final element.
func TestGenerateBatchedEOFSignal(t *testing.T) {
	m := raft.NewMap()
	gen := NewGenerate(10, func(i int64) int64 { return i }).SetBatch(4)
	sink := &sigProbe{}
	sink.SetName("sig-probe")
	raft.AddInput[int64](sink, "in")
	m.MustLink(gen, sink)
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if sink.lastSig != raft.SigEOF || sink.count != 10 {
		t.Fatalf("count=%d lastSig=%v, want 10 elements ending in SigEOF", sink.count, sink.lastSig)
	}
}

type sigProbe struct {
	raft.KernelBase
	count   int
	lastSig raft.Signal
}

func (s *sigProbe) Run() raft.Status {
	v, sig, err := raft.PopSig[int64](s.In("in"))
	if err != nil {
		return raft.Stop
	}
	_ = v
	s.count++
	s.lastSig = sig
	return raft.Proceed
}
