// Package kernels is the standard kernel library accompanying the raft
// runtime: the sources, sinks and adapters the paper introduces in §4.2
// (generate, print, read_each, write_each, the zero-copy for_each, reduce)
// plus the text-search building blocks of §5 (filereader and the search
// kernel with selectable matching algorithm).
package kernels

import (
	"bufio"
	"fmt"
	"io"

	"raftlib/raft"
)

// Generate streams values produced by a function — the paper's generate
// source from Fig. 3 (there, a random-number generator).
type Generate[T any] struct {
	raft.KernelBase
	n     int64
	next  int64
	fn    func(i int64) T
	batch int
	vals  []T
	sigs  []raft.Signal
}

// NewGenerate returns a source kernel pushing fn(0), fn(1), ..., fn(n-1)
// out of port "out". Generate is deliberately NOT cloneable: replicating a
// source would duplicate its sequence; create distinct sources (or shard
// the index range across several Generates) for parallel generation.
func NewGenerate[T any](n int64, fn func(i int64) T) *Generate[T] {
	k := &Generate[T]{n: n, fn: fn}
	k.SetName("generate")
	raft.AddOutput[T](k, "out")
	return k
}

// SetBatch makes each Run produce up to n elements delivered with one bulk
// push (one lock acquisition) instead of n element-wise pushes. The
// adaptive batcher's per-link hint, when present, overrides n. Returns the
// kernel for chaining.
func (g *Generate[T]) SetBatch(n int) *Generate[T] {
	g.batch = n
	return g
}

// Run implements raft.Kernel.
func (g *Generate[T]) Run() raft.Status {
	if g.next >= g.n {
		return raft.Stop
	}
	out := g.Out("out")
	b := out.BatchHint(g.batch)
	if b <= 1 {
		sig := raft.SigNone
		if g.next == g.n-1 {
			sig = raft.SigEOF
		}
		if err := raft.PushSig(out, g.fn(g.next), sig); err != nil {
			return raft.Stop
		}
		g.next++
		return raft.Proceed
	}
	if rem := g.n - g.next; int64(b) > rem {
		b = int(rem)
	}
	if cap(g.vals) < b {
		g.vals = make([]T, b)
		g.sigs = make([]raft.Signal, b)
	}
	vals, sigs := g.vals[:b], g.sigs[:b]
	for i := range vals {
		vals[i] = g.fn(g.next + int64(i))
		sigs[i] = raft.SigNone
	}
	if g.next+int64(b) == g.n {
		sigs[b-1] = raft.SigEOF
	}
	if err := raft.PushNSig(out, vals, sigs); err != nil {
		return raft.Stop
	}
	g.next += int64(b)
	return raft.Proceed
}

// Print writes each received element to an io.Writer followed by a
// delimiter — the paper's print kernel (Figs. 1, 3).
type Print[T any] struct {
	raft.KernelBase
	w     *bufio.Writer
	delim byte
}

// NewPrint returns a sink kernel printing every element of port "in" to w,
// separated by delim.
func NewPrint[T any](w io.Writer, delim byte) *Print[T] {
	k := &Print[T]{w: bufio.NewWriter(w), delim: delim}
	k.SetName("print")
	raft.AddInput[T](k, "in")
	return k
}

// Run implements raft.Kernel.
func (p *Print[T]) Run() raft.Status {
	v, err := raft.Pop[T](p.In("in"))
	if err != nil {
		return raft.Stop
	}
	fmt.Fprint(p.w, v)
	p.w.WriteByte(p.delim)
	return raft.Proceed
}

// Finalize flushes buffered output.
func (p *Print[T]) Finalize() { p.w.Flush() }

// ReadEach streams the contents of a slice, one element at a time — the
// paper's read_each bridge from C++ containers (§4.2, Fig. 5).
type ReadEach[T any] struct {
	raft.KernelBase
	src   []T
	i     int
	batch int
	sigs  []raft.Signal
}

// NewReadEach returns a source kernel pushing each element of src (copied
// element-wise; see NewForEach for the zero-copy variant) out of port
// "out".
func NewReadEach[T any](src []T) *ReadEach[T] {
	k := &ReadEach[T]{src: src}
	k.SetName("read_each")
	raft.AddOutput[T](k, "out")
	return k
}

// SetBatch makes each Run push up to n consecutive source elements with one
// bulk operation — the source slice feeds PushN directly, no staging copy.
// The adaptive batcher's per-link hint, when present, overrides n. Returns
// the kernel for chaining.
func (r *ReadEach[T]) SetBatch(n int) *ReadEach[T] {
	r.batch = n
	return r
}

// Run implements raft.Kernel.
func (r *ReadEach[T]) Run() raft.Status {
	if r.i >= len(r.src) {
		return raft.Stop
	}
	out := r.Out("out")
	b := out.BatchHint(r.batch)
	if b <= 1 {
		sig := raft.SigNone
		if r.i == len(r.src)-1 {
			sig = raft.SigEOF
		}
		if err := raft.PushSig(out, r.src[r.i], sig); err != nil {
			return raft.Stop
		}
		r.i++
		return raft.Proceed
	}
	if rem := len(r.src) - r.i; b > rem {
		b = rem
	}
	if cap(r.sigs) < b {
		r.sigs = make([]raft.Signal, b)
	}
	sigs := r.sigs[:b]
	for i := range sigs {
		sigs[i] = raft.SigNone
	}
	if r.i+b == len(r.src) {
		sigs[b-1] = raft.SigEOF
	}
	if err := raft.PushNSig(out, r.src[r.i:r.i+b], sigs); err != nil {
		return raft.Stop
	}
	r.i += b
	return raft.Proceed
}

// WriteEach appends every received element to a destination slice — the
// paper's write_each back-inserter bridge (§4.2, Fig. 5). The destination
// is owned by the kernel while the application runs; read it after Exe
// returns.
type WriteEach[T any] struct {
	raft.KernelBase
	dst   *[]T
	batch int
	vals  []T
}

// NewWriteEach returns a sink kernel appending each element of port "in"
// to *dst.
func NewWriteEach[T any](dst *[]T) *WriteEach[T] {
	k := &WriteEach[T]{dst: dst}
	k.SetName("write_each")
	raft.AddInput[T](k, "in")
	return k
}

// SetBatch makes each Run drain up to n elements with one bulk pop before
// appending them. The adaptive batcher's per-link hint, when present,
// overrides n. Returns the kernel for chaining.
func (w *WriteEach[T]) SetBatch(n int) *WriteEach[T] {
	w.batch = n
	return w
}

// Run implements raft.Kernel.
func (w *WriteEach[T]) Run() raft.Status {
	in := w.In("in")
	b := in.BatchHint(w.batch)
	if b <= 1 {
		v, err := raft.Pop[T](in)
		if err != nil {
			return raft.Stop
		}
		*w.dst = append(*w.dst, v)
		return raft.Proceed
	}
	if cap(w.vals) < b {
		w.vals = make([]T, b)
	}
	n, err := raft.PopN[T](in, w.vals[:b])
	if n > 0 {
		*w.dst = append(*w.dst, w.vals[:n]...)
	}
	if err != nil && n == 0 {
		return raft.Stop
	}
	return raft.Proceed
}

// Reduce folds every received element into an accumulator and delivers the
// result when the stream ends — the reduction endpoint of the paper's
// Fig. 6 pipeline.
type Reduce[T any] struct {
	raft.KernelBase
	fn     func(acc, v T) T
	acc    T
	result *T
	batch  int
	vals   []T
}

// NewReduce returns a sink kernel folding port "in" with fn starting from
// init; the final accumulator is stored to *result when the stream closes.
func NewReduce[T any](fn func(acc, v T) T, init T, result *T) *Reduce[T] {
	k := &Reduce[T]{fn: fn, acc: init, result: result}
	k.SetName("reduce")
	raft.AddInput[T](k, "in")
	return k
}

// SetBatch makes each Run pop up to n elements in one bulk operation and
// fold them locally. The adaptive batcher's per-link hint, when present,
// overrides n. Returns the kernel for chaining.
func (r *Reduce[T]) SetBatch(n int) *Reduce[T] {
	r.batch = n
	return r
}

// Run implements raft.Kernel.
func (r *Reduce[T]) Run() raft.Status {
	in := r.In("in")
	b := in.BatchHint(r.batch)
	if b <= 1 {
		v, err := raft.Pop[T](in)
		if err != nil {
			return raft.Stop
		}
		r.acc = r.fn(r.acc, v)
		return raft.Proceed
	}
	if cap(r.vals) < b {
		r.vals = make([]T, b)
	}
	n, err := raft.PopN[T](in, r.vals[:b])
	for _, v := range r.vals[:n] {
		r.acc = r.fn(r.acc, v)
	}
	if err != nil && n == 0 {
		return raft.Stop
	}
	return raft.Proceed
}

// Finalize implements raft.Finalizer, publishing the result.
func (r *Reduce[T]) Finalize() {
	if r.result != nil {
		*r.result = r.acc
	}
}
