// Package kernels is the standard kernel library accompanying the raft
// runtime: the sources, sinks and adapters the paper introduces in §4.2
// (generate, print, read_each, write_each, the zero-copy for_each, reduce)
// plus the text-search building blocks of §5 (filereader and the search
// kernel with selectable matching algorithm).
package kernels

import (
	"bufio"
	"fmt"
	"io"

	"raftlib/raft"
)

// Generate streams values produced by a function — the paper's generate
// source from Fig. 3 (there, a random-number generator).
type Generate[T any] struct {
	raft.KernelBase
	n    int64
	next int64
	fn   func(i int64) T
}

// NewGenerate returns a source kernel pushing fn(0), fn(1), ..., fn(n-1)
// out of port "out". Generate is deliberately NOT cloneable: replicating a
// source would duplicate its sequence; create distinct sources (or shard
// the index range across several Generates) for parallel generation.
func NewGenerate[T any](n int64, fn func(i int64) T) *Generate[T] {
	k := &Generate[T]{n: n, fn: fn}
	k.SetName("generate")
	raft.AddOutput[T](k, "out")
	return k
}

// Run implements raft.Kernel.
func (g *Generate[T]) Run() raft.Status {
	if g.next >= g.n {
		return raft.Stop
	}
	sig := raft.SigNone
	if g.next == g.n-1 {
		sig = raft.SigEOF
	}
	if err := raft.PushSig(g.Out("out"), g.fn(g.next), sig); err != nil {
		return raft.Stop
	}
	g.next++
	return raft.Proceed
}

// Print writes each received element to an io.Writer followed by a
// delimiter — the paper's print kernel (Figs. 1, 3).
type Print[T any] struct {
	raft.KernelBase
	w     *bufio.Writer
	delim byte
}

// NewPrint returns a sink kernel printing every element of port "in" to w,
// separated by delim.
func NewPrint[T any](w io.Writer, delim byte) *Print[T] {
	k := &Print[T]{w: bufio.NewWriter(w), delim: delim}
	k.SetName("print")
	raft.AddInput[T](k, "in")
	return k
}

// Run implements raft.Kernel.
func (p *Print[T]) Run() raft.Status {
	v, err := raft.Pop[T](p.In("in"))
	if err != nil {
		return raft.Stop
	}
	fmt.Fprint(p.w, v)
	p.w.WriteByte(p.delim)
	return raft.Proceed
}

// Finalize flushes buffered output.
func (p *Print[T]) Finalize() { p.w.Flush() }

// ReadEach streams the contents of a slice, one element at a time — the
// paper's read_each bridge from C++ containers (§4.2, Fig. 5).
type ReadEach[T any] struct {
	raft.KernelBase
	src []T
	i   int
}

// NewReadEach returns a source kernel pushing each element of src (copied
// element-wise; see NewForEach for the zero-copy variant) out of port
// "out".
func NewReadEach[T any](src []T) *ReadEach[T] {
	k := &ReadEach[T]{src: src}
	k.SetName("read_each")
	raft.AddOutput[T](k, "out")
	return k
}

// Run implements raft.Kernel.
func (r *ReadEach[T]) Run() raft.Status {
	if r.i >= len(r.src) {
		return raft.Stop
	}
	sig := raft.SigNone
	if r.i == len(r.src)-1 {
		sig = raft.SigEOF
	}
	if err := raft.PushSig(r.Out("out"), r.src[r.i], sig); err != nil {
		return raft.Stop
	}
	r.i++
	return raft.Proceed
}

// WriteEach appends every received element to a destination slice — the
// paper's write_each back-inserter bridge (§4.2, Fig. 5). The destination
// is owned by the kernel while the application runs; read it after Exe
// returns.
type WriteEach[T any] struct {
	raft.KernelBase
	dst *[]T
}

// NewWriteEach returns a sink kernel appending each element of port "in"
// to *dst.
func NewWriteEach[T any](dst *[]T) *WriteEach[T] {
	k := &WriteEach[T]{dst: dst}
	k.SetName("write_each")
	raft.AddInput[T](k, "in")
	return k
}

// Run implements raft.Kernel.
func (w *WriteEach[T]) Run() raft.Status {
	v, err := raft.Pop[T](w.In("in"))
	if err != nil {
		return raft.Stop
	}
	*w.dst = append(*w.dst, v)
	return raft.Proceed
}

// Reduce folds every received element into an accumulator and delivers the
// result when the stream ends — the reduction endpoint of the paper's
// Fig. 6 pipeline.
type Reduce[T any] struct {
	raft.KernelBase
	fn     func(acc, v T) T
	acc    T
	result *T
}

// NewReduce returns a sink kernel folding port "in" with fn starting from
// init; the final accumulator is stored to *result when the stream closes.
func NewReduce[T any](fn func(acc, v T) T, init T, result *T) *Reduce[T] {
	k := &Reduce[T]{fn: fn, acc: init, result: result}
	k.SetName("reduce")
	raft.AddInput[T](k, "in")
	return k
}

// Run implements raft.Kernel.
func (r *Reduce[T]) Run() raft.Status {
	v, err := raft.Pop[T](r.In("in"))
	if err != nil {
		return raft.Stop
	}
	r.acc = r.fn(r.acc, v)
	return raft.Proceed
}

// Finalize implements raft.Finalizer, publishing the result.
func (r *Reduce[T]) Finalize() {
	if r.result != nil {
		*r.result = r.acc
	}
}
