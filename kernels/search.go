package kernels

import (
	"fmt"

	"raftlib/internal/search"
	"raftlib/raft"
)

// Search is the paper's match kernel (§5, Figs. 8–9): it consumes Chunks
// and emits the absolute byte offset of every pattern occurrence. The
// matching algorithm is selected by name, mirroring the paper's
// search<ahocorasick> / search<boyermoore> template specialization, and
// the kernel is cloneable so the runtime can replicate it across cores
// when its inbound link is marked AsOutOfOrder.
type Search struct {
	raft.KernelBase
	algo    string
	pattern []byte
	m       search.Matcher
	scratch []int
}

// NewSearch returns a match kernel using the named algorithm
// ("ahocorasick", "horspool", "boyermoore", "naive") for the given
// pattern. Input port "in" carries Chunk; output port "out" carries the
// int64 offsets of matches.
func NewSearch(algo string, pattern []byte) (*Search, error) {
	m, err := search.New(algo, pattern)
	if err != nil {
		return nil, err
	}
	k := &Search{algo: algo, pattern: append([]byte(nil), pattern...), m: m}
	k.SetName("search[" + algo + "]")
	raft.AddInput[Chunk](k, "in")
	raft.AddOutput[int64](k, "out")
	return k, nil
}

// MustSearch is NewSearch for known-good algorithm names.
func MustSearch(algo string, pattern []byte) *Search {
	k, err := NewSearch(algo, pattern)
	if err != nil {
		panic(err)
	}
	return k
}

// Run implements raft.Kernel.
func (s *Search) Run() raft.Status {
	c, err := raft.Pop[Chunk](s.In("in"))
	if err != nil {
		return raft.Stop
	}
	s.scratch = s.m.Find(s.scratch[:0], c.Data)
	out := s.Out("out")
	for _, pos := range s.scratch {
		if pos >= c.Valid {
			continue // starts in the overlap: owned by the next chunk
		}
		if err := raft.Push(out, c.Off+int64(pos)); err != nil {
			return raft.Stop
		}
	}
	return raft.Proceed
}

// Clone implements raft.Cloner.
func (s *Search) Clone() raft.Kernel {
	dup, err := NewSearch(s.algo, s.pattern)
	if err != nil {
		panic(fmt.Sprintf("kernels: cloning search kernel: %v", err))
	}
	return dup
}

// CountSearch is a match kernel that emits one count per chunk instead of
// per-hit offsets, minimizing stream traffic for throughput benchmarking
// (the paper's Fig. 10 measures GB/s, not per-match latency).
type CountSearch struct {
	raft.KernelBase
	algo    string
	pattern []byte
	m       search.Matcher
	scratch []int
}

// NewCountSearch returns a counting match kernel: port "in" carries Chunk,
// port "out" carries one int64 match count per chunk.
func NewCountSearch(algo string, pattern []byte) (*CountSearch, error) {
	m, err := search.New(algo, pattern)
	if err != nil {
		return nil, err
	}
	k := &CountSearch{algo: algo, pattern: append([]byte(nil), pattern...), m: m}
	k.SetName("search[" + algo + "]")
	raft.AddInput[Chunk](k, "in")
	raft.AddOutput[int64](k, "out")
	return k, nil
}

// Run implements raft.Kernel.
func (s *CountSearch) Run() raft.Status {
	c, err := raft.Pop[Chunk](s.In("in"))
	if err != nil {
		return raft.Stop
	}
	s.scratch = s.m.Find(s.scratch[:0], c.Data)
	n := int64(0)
	for _, pos := range s.scratch {
		if pos < c.Valid {
			n++
		}
	}
	if err := raft.Push(s.Out("out"), n); err != nil {
		return raft.Stop
	}
	return raft.Proceed
}

// Clone implements raft.Cloner.
func (s *CountSearch) Clone() raft.Kernel {
	dup, err := NewCountSearch(s.algo, s.pattern)
	if err != nil {
		panic(fmt.Sprintf("kernels: cloning search kernel: %v", err))
	}
	return dup
}

// CountBytes counts every match in a raw buffer with the kernel's matcher,
// for callers that manage chunking themselves (e.g. remote stages shipping
// whole buffers).
func (s *CountSearch) CountBytes(b []byte) int { return s.m.Count(b) }
