package kernels

import (
	"raftlib/internal/ringbuffer"
	"raftlib/raft"
)

// ForEach is the paper's zero-copy array source (§4.2, Fig. 6): "The
// for_each takes a pointer value and uses its memory space directly as a
// queue for downstream compute kernels ... When this kernel is executed,
// it appears as a kernel only momentarily."
//
// The Go realization: the kernel implements raft.QueueProvider, handing
// the runtime a read-only ring whose storage aliases the caller's slice —
// downstream kernels that use PeekRange read the caller's array with no
// copy at all. The kernel itself is virtual (never scheduled).
type ForEach[T any] struct {
	raft.KernelBase
	data []T
}

// NewForEach returns the zero-copy source for data, exposed on port "out".
func NewForEach[T any](data []T) *ForEach[T] {
	k := &ForEach[T]{data: data}
	k.SetName("for_each")
	k.SetVirtual(true)
	raft.AddOutput[T](k, "out")
	return k
}

// ProvideQueue implements raft.QueueProvider with a slice-backed ring.
func (f *ForEach[T]) ProvideQueue(port string) (ringbuffer.Queue, any, bool) {
	if port != "out" {
		return nil, nil, false
	}
	r := ringbuffer.NewRingFromSlice(f.data)
	return r, r, true
}

// Run implements raft.Kernel; it never executes (the kernel is virtual)
// and exists to satisfy the interface.
func (f *ForEach[T]) Run() raft.Status { return raft.Stop }
