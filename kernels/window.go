package kernels

import (
	"raftlib/raft"
)

// SlidingWindow applies a function over a sliding window of the stream —
// the kernel-library face of the paper's peek_range accessor (§3: "The
// stream access pattern is often that of a sliding window, which should be
// accommodated efficiently"). The window is observed in place: when the
// buffered region of the queue is contiguous, fn receives a zero-copy view
// of queue storage.
type SlidingWindow[T, U any] struct {
	raft.KernelBase
	size  int
	slide int
	fn    func(window []T) U
}

// NewSlidingWindow returns a kernel that calls fn on each window of size
// consecutive elements, advancing by slide elements between windows, and
// emits each result on port "out". slide must be in [1, size]. A final
// partial window (fewer than size elements at end of stream) is discarded,
// matching the usual streaming-window semantics.
func NewSlidingWindow[T, U any](size, slide int, fn func(window []T) U) *SlidingWindow[T, U] {
	if size < 1 {
		panic("kernels: window size must be >= 1")
	}
	if slide < 1 || slide > size {
		panic("kernels: slide must be in [1, size]")
	}
	k := &SlidingWindow[T, U]{size: size, slide: slide, fn: fn}
	k.SetName("window")
	raft.AddInput[T](k, "in")
	raft.AddOutput[U](k, "out")
	return k
}

// Run implements raft.Kernel.
func (w *SlidingWindow[T, U]) Run() raft.Status {
	in := w.In("in")
	win, err := raft.PeekRange[T](in, w.size)
	if err != nil {
		// End of stream: drop the partial window and drain.
		if len(win) > 0 {
			raft.Recycle[T](in, len(win))
		}
		return raft.Stop
	}
	if err := raft.Push(w.Out("out"), w.fn(win)); err != nil {
		return raft.Stop
	}
	raft.Recycle[T](in, w.slide)
	return raft.Proceed
}
