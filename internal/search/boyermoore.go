package search

import "fmt"

// BoyerMoore implements the full Boyer-Moore algorithm with both the
// bad-character and good-suffix rules — the algorithm behind the paper's
// Apache Spark baseline ("a text matching application implemented using
// the Boyer-Moore algorithm implemented in Scala", §5).
type BoyerMoore struct {
	pattern []byte
	badChar [256]int
	goodSfx []int
}

// NewBoyerMoore compiles the shift tables for a non-empty pattern.
func NewBoyerMoore(pattern []byte) (*BoyerMoore, error) {
	if len(pattern) == 0 {
		return nil, fmt.Errorf("search: empty pattern")
	}
	bm := &BoyerMoore{pattern: append([]byte(nil), pattern...)}
	m := len(pattern)

	// Bad character rule: rightmost occurrence of each byte.
	for i := range bm.badChar {
		bm.badChar[i] = -1
	}
	for i, b := range pattern {
		bm.badChar[b] = i
	}

	// Good suffix rule, classic two-case preprocessing.
	bm.goodSfx = make([]int, m+1)
	border := make([]int, m+1)
	i, j := m, m+1
	border[i] = j
	for i > 0 {
		for j <= m && pattern[i-1] != pattern[j-1] {
			if bm.goodSfx[j] == 0 {
				bm.goodSfx[j] = j - i
			}
			j = border[j]
		}
		i--
		j--
		border[i] = j
	}
	j = border[0]
	for i = 0; i <= m; i++ {
		if bm.goodSfx[i] == 0 {
			bm.goodSfx[i] = j
		}
		if i == j {
			j = border[j]
		}
	}
	return bm, nil
}

// Name implements Matcher.
func (bm *BoyerMoore) Name() string { return "boyermoore" }

// PatternLen implements Matcher.
func (bm *BoyerMoore) PatternLen() int { return len(bm.pattern) }

// Find implements Matcher.
func (bm *BoyerMoore) Find(dst []int, text []byte) []int {
	p := bm.pattern
	m := len(p)
	s := 0
	for s+m <= len(text) {
		j := m - 1
		for j >= 0 && p[j] == text[s+j] {
			j--
		}
		if j < 0 {
			dst = append(dst, s)
			s += bm.goodSfx[0]
		} else {
			bcShift := j - bm.badChar[text[s+j]]
			gsShift := bm.goodSfx[j+1]
			if bcShift > gsShift {
				s += bcShift
			} else {
				s += gsShift
			}
		}
	}
	return dst
}

// Count implements Matcher.
func (bm *BoyerMoore) Count(text []byte) int { return len(bm.Find(nil, text)) }
