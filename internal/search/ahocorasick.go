package search

import "fmt"

// AhoCorasick is the classic multi-pattern automaton [Aho & Corasick 1975],
// "quite good for multiple string patterns" (paper §5). The automaton is a
// goto/fail trie compiled into a dense double-array-style transition table
// over the 256-byte alphabet for branch-free scanning.
type AhoCorasick struct {
	patterns [][]byte
	// next[state*256+b] is the DFA transition (fail links pre-resolved).
	next []int32
	// outputs[state] lists pattern indices ending at state.
	outputs [][]int32
	// maxLen is the longest pattern length.
	maxLen int
}

// Match is one multi-pattern hit: the start offset and which pattern.
type Match struct {
	Pos     int
	Pattern int
}

// NewAhoCorasick compiles the automaton for the given patterns; every
// pattern must be non-empty.
func NewAhoCorasick(patterns [][]byte) (*AhoCorasick, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("search: no patterns")
	}
	for i, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("search: pattern %d is empty", i)
		}
	}

	// Build the trie.
	type node struct {
		children map[byte]int32
		fail     int32
		out      []int32
		depth    int
	}
	trie := []node{{children: map[byte]int32{}}}
	maxLen := 0
	for pi, p := range patterns {
		if len(p) > maxLen {
			maxLen = len(p)
		}
		cur := int32(0)
		for _, b := range p {
			nxt, ok := trie[cur].children[b]
			if !ok {
				nxt = int32(len(trie))
				trie = append(trie, node{children: map[byte]int32{}, depth: trie[cur].depth + 1})
				trie[cur].children[b] = nxt
			}
			cur = nxt
		}
		trie[cur].out = append(trie[cur].out, int32(pi))
	}

	// BFS to set fail links and merge outputs.
	queue := make([]int32, 0, len(trie))
	for _, c := range trie[0].children {
		trie[c].fail = 0
		queue = append(queue, c)
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for b, v := range trie[u].children {
			queue = append(queue, v)
			f := trie[u].fail
			for {
				if w, ok := trie[f].children[b]; ok && w != v {
					trie[v].fail = w
					break
				}
				if f == 0 {
					if w, ok := trie[0].children[b]; ok && w != v {
						trie[v].fail = w
					} else {
						trie[v].fail = 0
					}
					break
				}
				f = trie[f].fail
			}
			trie[v].out = append(trie[v].out, trie[trie[v].fail].out...)
		}
	}

	// Flatten to a dense DFA.
	ac := &AhoCorasick{
		patterns: patterns,
		next:     make([]int32, len(trie)*256),
		outputs:  make([][]int32, len(trie)),
		maxLen:   maxLen,
	}
	for qi := -1; qi < len(queue); qi++ {
		var s int32
		if qi >= 0 {
			s = queue[qi]
		}
		ac.outputs[s] = trie[s].out
		base := int(s) * 256
		for b := 0; b < 256; b++ {
			if c, ok := trie[s].children[byte(b)]; ok {
				ac.next[base+b] = c
			} else if s == 0 {
				ac.next[base+b] = 0
			} else {
				ac.next[base+b] = ac.next[int(trie[s].fail)*256+b]
			}
		}
	}
	return ac, nil
}

// Name implements Matcher.
func (ac *AhoCorasick) Name() string { return "ahocorasick" }

// PatternLen implements Matcher (the longest pattern).
func (ac *AhoCorasick) PatternLen() int { return ac.maxLen }

// Find implements Matcher for the single-pattern case and reports start
// offsets; for multi-pattern automata use FindAll.
func (ac *AhoCorasick) Find(dst []int, text []byte) []int {
	state := int32(0)
	for i := 0; i < len(text); i++ {
		state = ac.next[int(state)*256+int(text[i])]
		for _, pi := range ac.outputs[state] {
			dst = append(dst, i+1-len(ac.patterns[pi]))
		}
	}
	return dst
}

// FindAll reports every hit with its pattern index.
func (ac *AhoCorasick) FindAll(dst []Match, text []byte) []Match {
	state := int32(0)
	for i := 0; i < len(text); i++ {
		state = ac.next[int(state)*256+int(text[i])]
		for _, pi := range ac.outputs[state] {
			dst = append(dst, Match{Pos: i + 1 - len(ac.patterns[pi]), Pattern: int(pi)})
		}
	}
	return dst
}

// Count implements Matcher.
func (ac *AhoCorasick) Count(text []byte) int {
	state := int32(0)
	n := 0
	next := ac.next
	for i := 0; i < len(text); i++ {
		state = next[int(state)*256+int(text[i])]
		if outs := ac.outputs[state]; len(outs) > 0 {
			n += len(outs)
		}
	}
	return n
}

// StreamState carries the automaton state across chunk boundaries for true
// streaming (stateful) scanning, as an alternative to overlapped chunks.
type StreamState struct {
	state  int32
	offset int // absolute offset of the next byte
}

// FindStream scans one chunk, carrying automaton state in st so matches
// straddling chunk boundaries are still found; reported positions are
// absolute (match start within the whole stream).
func (ac *AhoCorasick) FindStream(st *StreamState, dst []int, chunk []byte) []int {
	state := st.state
	base := st.offset
	for i := 0; i < len(chunk); i++ {
		state = ac.next[int(state)*256+int(chunk[i])]
		for _, pi := range ac.outputs[state] {
			dst = append(dst, base+i+1-len(ac.patterns[pi]))
		}
	}
	st.state = state
	st.offset += len(chunk)
	return dst
}
