package search

import "fmt"

// RabinKarp implements Rabin-Karp matching with a rolling polynomial hash
// and explicit verification on hash hits. Its per-byte cost is constant
// (one multiply-add per position), placing it between KMP and the
// skip-loop matchers in the kernel-group algorithm spectrum.
type RabinKarp struct {
	pattern []byte
	hash    uint32
	pow     uint32 // base^(m-1)
}

// rkBase is the polynomial hash base (same prime the Go stdlib uses).
const rkBase = 16777619

// NewRabinKarp precomputes the pattern hash for a non-empty pattern.
func NewRabinKarp(pattern []byte) (*RabinKarp, error) {
	if len(pattern) == 0 {
		return nil, fmt.Errorf("search: empty pattern")
	}
	rk := &RabinKarp{pattern: append([]byte(nil), pattern...), pow: 1}
	for _, b := range pattern {
		rk.hash = rk.hash*rkBase + uint32(b)
	}
	for i := 0; i < len(pattern)-1; i++ {
		rk.pow *= rkBase
	}
	return rk, nil
}

// Name implements Matcher.
func (rk *RabinKarp) Name() string { return "rabinkarp" }

// PatternLen implements Matcher.
func (rk *RabinKarp) PatternLen() int { return len(rk.pattern) }

// Find implements Matcher.
func (rk *RabinKarp) Find(dst []int, text []byte) []int {
	m := len(rk.pattern)
	if len(text) < m {
		return dst
	}
	var h uint32
	for i := 0; i < m; i++ {
		h = h*rkBase + uint32(text[i])
	}
	for i := 0; ; i++ {
		if h == rk.hash && matchAt(text, i, rk.pattern) {
			dst = append(dst, i)
		}
		if i+m >= len(text) {
			return dst
		}
		h = (h-uint32(text[i])*rk.pow)*rkBase + uint32(text[i+m])
	}
}

// Count implements Matcher.
func (rk *RabinKarp) Count(text []byte) int { return len(rk.Find(nil, text)) }
