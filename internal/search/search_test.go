package search

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"raftlib/internal/corpus"
)

func allMatchers(t *testing.T, pattern []byte) []Matcher {
	t.Helper()
	var ms []Matcher
	for _, algo := range []string{"naive", "horspool", "boyermoore", "ahocorasick", "kmp", "rabinkarp"} {
		m, err := New(algo, pattern)
		if err != nil {
			t.Fatalf("New(%s): %v", algo, err)
		}
		ms = append(ms, m)
	}
	return ms
}

func TestNewUnknownAlgorithm(t *testing.T) {
	if _, err := New("quantum", []byte("x")); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}

func TestEmptyPatternRejected(t *testing.T) {
	for _, algo := range []string{"naive", "horspool", "boyermoore", "ahocorasick", "kmp", "rabinkarp"} {
		if _, err := New(algo, nil); err == nil {
			t.Errorf("%s accepted empty pattern", algo)
		}
	}
}

func TestKnownPositions(t *testing.T) {
	text := []byte("abracadabra abra abracadabra")
	want := map[string][]int{
		"abra":        {0, 7, 12, 17, 24},
		"cad":         {4, 21},
		"a":           {0, 3, 5, 7, 10, 12, 15, 17, 20, 22, 24, 27},
		"abracadabra": {0, 17},
		"zzz":         nil,
	}
	for pat, positions := range want {
		for _, m := range allMatchers(t, []byte(pat)) {
			got := m.Find(nil, text)
			if !reflect.DeepEqual(got, positions) {
				t.Errorf("%s.Find(%q) = %v, want %v", m.Name(), pat, got, positions)
			}
			if c := m.Count(text); c != len(positions) {
				t.Errorf("%s.Count(%q) = %d, want %d", m.Name(), pat, c, len(positions))
			}
		}
	}
}

func TestOverlappingMatches(t *testing.T) {
	text := []byte("aaaaa")
	for _, m := range allMatchers(t, []byte("aa")) {
		got := m.Find(nil, text)
		want := []int{0, 1, 2, 3}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s overlapping = %v, want %v", m.Name(), got, want)
		}
	}
}

func TestPatternLongerThanText(t *testing.T) {
	for _, m := range allMatchers(t, []byte("longpattern")) {
		if got := m.Find(nil, []byte("short")); len(got) != 0 {
			t.Errorf("%s found %v in shorter text", m.Name(), got)
		}
	}
}

func TestEmptyText(t *testing.T) {
	for _, m := range allMatchers(t, []byte("x")) {
		if got := m.Count(nil); got != 0 {
			t.Errorf("%s.Count(nil) = %d", m.Name(), got)
		}
	}
}

func TestPatternEqualsText(t *testing.T) {
	for _, m := range allMatchers(t, []byte("exact")) {
		got := m.Find(nil, []byte("exact"))
		if !reflect.DeepEqual(got, []int{0}) {
			t.Errorf("%s = %v, want [0]", m.Name(), got)
		}
	}
}

// Property: every optimized matcher agrees with the naive scanner on
// random binary inputs over a small alphabet (maximizing accidental
// matches and shift-table stress).
func TestPropertyAgreesWithNaive(t *testing.T) {
	f := func(patSeed []byte, textSeed []byte) bool {
		// Map onto a 4-letter alphabet; bound pattern length to [1, 8].
		alphabet := []byte("abab") // heavy overlap on purpose
		mk := func(src []byte, maxLen int) []byte {
			if len(src) > maxLen {
				src = src[:maxLen]
			}
			out := make([]byte, len(src))
			for i, b := range src {
				out[i] = alphabet[int(b)%len(alphabet)]
			}
			return out
		}
		pat := mk(patSeed, 8)
		if len(pat) == 0 {
			pat = []byte("a")
		}
		text := mk(textSeed, 4096)

		naive, _ := NewNaive(pat)
		want := naive.Find(nil, text)
		for _, algo := range []string{"horspool", "boyermoore", "ahocorasick", "kmp", "rabinkarp"} {
			m, err := New(algo, pat)
			if err != nil {
				return false
			}
			got := m.Find(nil, text)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkedEqualsWhole(t *testing.T) {
	text := corpus.Generate(corpus.Spec{Bytes: 1 << 20, Seed: 7})
	pat := []byte(corpus.DefaultPattern)
	for _, m := range allMatchers(t, pat) {
		whole := m.Count(text)
		if whole == 0 {
			t.Fatalf("%s found no hits in generated corpus", m.Name())
		}
		for _, chunk := range []int{333, 4 << 10, 64 << 10} {
			if got := CountChunked(m, text, chunk); got != whole {
				t.Errorf("%s chunk=%d: count %d, want %d", m.Name(), chunk, got, whole)
			}
		}
	}
}

func TestCountChunkedDefaultSize(t *testing.T) {
	m, _ := NewHorspool([]byte("ab"))
	if got := CountChunked(m, []byte("abxab"), 0); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestAhoCorasickMultiPattern(t *testing.T) {
	ac, err := NewAhoCorasick([][]byte{[]byte("he"), []byte("she"), []byte("his"), []byte("hers")})
	if err != nil {
		t.Fatal(err)
	}
	text := []byte("ushers")
	got := ac.FindAll(nil, text)
	// "she" at 1, "he" at 2, "hers" at 2.
	want := []Match{{Pos: 1, Pattern: 1}, {Pos: 2, Pattern: 0}, {Pos: 2, Pattern: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FindAll = %v, want %v", got, want)
	}
	if ac.Count(text) != 3 {
		t.Fatalf("Count = %d, want 3", ac.Count(text))
	}
	if ac.PatternLen() != 4 {
		t.Fatalf("PatternLen = %d, want 4", ac.PatternLen())
	}
}

func TestAhoCorasickRejectsEmptyInputs(t *testing.T) {
	if _, err := NewAhoCorasick(nil); err == nil {
		t.Fatal("no patterns must error")
	}
	if _, err := NewAhoCorasick([][]byte{[]byte("ok"), nil}); err == nil {
		t.Fatal("empty pattern must error")
	}
}

func TestAhoCorasickStreaming(t *testing.T) {
	ac, err := NewAhoCorasick([][]byte{[]byte("needle")})
	if err != nil {
		t.Fatal(err)
	}
	text := bytes.Repeat([]byte("hayneedlehay"), 100)
	want := ac.Find(nil, text)

	// Feed in awkward chunk sizes that split the needle.
	for _, chunk := range []int{1, 3, 5, 7, 64} {
		var st StreamState
		var got []int
		for off := 0; off < len(text); off += chunk {
			end := off + chunk
			if end > len(text) {
				end = len(text)
			}
			got = ac.FindStream(&st, got, text[off:end])
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk=%d: stream found %d, whole found %d", chunk, len(got), len(want))
		}
	}
}

func TestPropertyStreamingEqualsWhole(t *testing.T) {
	f := func(textSeed []byte, chunkSeed uint8) bool {
		alphabet := []byte("ab")
		text := make([]byte, len(textSeed))
		for i, b := range textSeed {
			text[i] = alphabet[int(b)%2]
		}
		ac, err := NewAhoCorasick([][]byte{[]byte("abba"), []byte("aa")})
		if err != nil {
			return false
		}
		want := ac.FindAll(nil, text)
		chunk := int(chunkSeed%16) + 1
		var st StreamState
		var got []int
		for off := 0; off < len(text); off += chunk {
			end := off + chunk
			if end > len(text) {
				end = len(text)
			}
			got = ac.FindStream(&st, got, text[off:end])
		}
		return len(got) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHorspoolVsBoyerMooreOnCorpus(t *testing.T) {
	text := corpus.Generate(corpus.Spec{Bytes: 256 << 10, Seed: 42})
	pat := []byte(corpus.DefaultPattern)
	h, _ := NewHorspool(pat)
	b, _ := NewBoyerMoore(pat)
	a, _ := NewAhoCorasick([][]byte{pat})
	n, _ := NewNaive(pat)
	hc, bc, acnt, nc := h.Count(text), b.Count(text), a.Count(text), n.Count(text)
	if hc != nc || bc != nc || acnt != nc {
		t.Fatalf("counts differ: horspool=%d boyermoore=%d ac=%d naive=%d", hc, bc, acnt, nc)
	}
}

func BenchmarkMatchers(b *testing.B) {
	text := corpus.Generate(corpus.Spec{Bytes: 4 << 20, Seed: 11})
	pat := []byte(corpus.DefaultPattern)
	for _, algo := range Algorithms() {
		m, err := New(algo, pat)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(algo, func(b *testing.B) {
			b.SetBytes(int64(len(text)))
			for i := 0; i < b.N; i++ {
				m.Count(text)
			}
		})
	}
}
