package search

import (
	"bytes"
	"testing"
)

// FuzzMatchersAgree cross-validates every optimized matcher against the
// naive scanner on fuzzer-chosen inputs. Run the seeds with go test, or
// explore with: go test -fuzz FuzzMatchersAgree ./internal/search
func FuzzMatchersAgree(f *testing.F) {
	f.Add([]byte("ab"), []byte("abcabcab"))
	f.Add([]byte("aa"), []byte("aaaaaa"))
	f.Add([]byte("needle"), []byte("haystack with a needle inside"))
	f.Add([]byte{0, 1}, []byte{0, 1, 0, 1, 0})
	f.Add([]byte("x"), []byte(""))
	f.Fuzz(func(t *testing.T, pattern, text []byte) {
		if len(pattern) == 0 || len(pattern) > 64 || len(text) > 1<<16 {
			t.Skip()
		}
		naive, err := NewNaive(pattern)
		if err != nil {
			t.Skip()
		}
		want := naive.Find(nil, text)
		for _, algo := range []string{"horspool", "boyermoore", "kmp", "rabinkarp", "ahocorasick"} {
			m, err := New(algo, pattern)
			if err != nil {
				t.Fatalf("%s: %v", algo, err)
			}
			got := m.Find(nil, text)
			if len(got) != len(want) {
				t.Fatalf("%s found %d matches, naive found %d (pattern %q)",
					algo, len(got), len(want), pattern)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s match[%d] = %d, want %d", algo, i, got[i], want[i])
				}
			}
			if c := m.Count(text); c != len(want) {
				t.Fatalf("%s Count = %d, want %d", algo, c, len(want))
			}
		}
	})
}

// FuzzStreamingEqualsWhole verifies the stateful Aho-Corasick scanner over
// arbitrary chunkings.
func FuzzStreamingEqualsWhole(f *testing.F) {
	f.Add([]byte("abba"), []byte("abbaabba"), uint8(3))
	f.Add([]byte("zz"), []byte("zzzz"), uint8(1))
	f.Fuzz(func(t *testing.T, pattern, text []byte, chunkSeed uint8) {
		if len(pattern) == 0 || len(pattern) > 32 || len(text) > 1<<14 {
			t.Skip()
		}
		ac, err := NewAhoCorasick([][]byte{pattern})
		if err != nil {
			t.Skip()
		}
		want := ac.Find(nil, text)
		chunk := int(chunkSeed%32) + 1
		var st StreamState
		var got []int
		for off := 0; off < len(text); off += chunk {
			end := off + chunk
			if end > len(text) {
				end = len(text)
			}
			got = ac.FindStream(&st, got, text[off:end])
		}
		if len(got) != len(want) {
			t.Fatalf("stream found %d, whole found %d (pattern %q, chunk %d)",
				len(got), len(want), pattern, chunk)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("stream[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	})
}

// FuzzCountChunked verifies overlapped-chunk counting (the streaming
// kernels' access pattern) for every matcher.
func FuzzCountChunked(f *testing.F) {
	f.Add([]byte("abc"), []byte("xxabcxxabc"), uint16(4))
	f.Fuzz(func(t *testing.T, pattern, text []byte, chunkSeed uint16) {
		if len(pattern) == 0 || len(pattern) > 32 || len(text) > 1<<14 {
			t.Skip()
		}
		if bytes.IndexByte(pattern, 0) >= 0 {
			// fine, but keep the corpus printable-ish for failure dumps
		}
		chunk := int(chunkSeed%512) + 1
		for _, algo := range []string{"horspool", "ahocorasick", "kmp"} {
			m, err := New(algo, pattern)
			if err != nil {
				t.Skip()
			}
			whole := m.Count(text)
			if got := CountChunked(m, text, chunk); got != whole {
				t.Fatalf("%s chunk=%d: %d != whole %d", algo, chunk, got, whole)
			}
		}
	})
}
