package search

import "fmt"

// Horspool implements Boyer-Moore-Horspool [Horspool 1980], "often much
// faster for single pattern matching" (paper §5): the simplified
// Boyer-Moore using only the bad-character shift of the last window byte.
type Horspool struct {
	pattern []byte
	shift   [256]int
}

// NewHorspool compiles the shift table for a non-empty pattern.
func NewHorspool(pattern []byte) (*Horspool, error) {
	if len(pattern) == 0 {
		return nil, fmt.Errorf("search: empty pattern")
	}
	h := &Horspool{pattern: append([]byte(nil), pattern...)}
	m := len(pattern)
	for i := range h.shift {
		h.shift[i] = m
	}
	for i := 0; i < m-1; i++ {
		h.shift[pattern[i]] = m - 1 - i
	}
	return h, nil
}

// Name implements Matcher.
func (h *Horspool) Name() string { return "horspool" }

// PatternLen implements Matcher.
func (h *Horspool) PatternLen() int { return len(h.pattern) }

// Find implements Matcher.
func (h *Horspool) Find(dst []int, text []byte) []int {
	p := h.pattern
	m := len(p)
	last := p[m-1]
	for i := 0; i+m <= len(text); {
		c := text[i+m-1]
		if c == last && matchAt(text, i, p) {
			dst = append(dst, i)
		}
		i += h.shift[c]
	}
	return dst
}

// Count implements Matcher.
func (h *Horspool) Count(text []byte) int {
	p := h.pattern
	m := len(p)
	last := p[m-1]
	n := 0
	shift := &h.shift
	for i := 0; i+m <= len(text); {
		c := text[i+m-1]
		if c == last && matchAt(text, i, p) {
			n++
		}
		i += shift[c]
	}
	return n
}
