package search

import "fmt"

// KMP implements Knuth-Morris-Pratt matching. The paper's §4.2 grep
// example wants a "search" kernel expressible with multiple interchangeable
// algorithms; KMP rounds out the set with a worst-case-linear matcher
// whose throughput is input-independent (no skip heuristics), making it
// the conservative member of a kernel group.
type KMP struct {
	pattern []byte
	fail    []int
}

// NewKMP compiles the failure function for a non-empty pattern.
func NewKMP(pattern []byte) (*KMP, error) {
	if len(pattern) == 0 {
		return nil, fmt.Errorf("search: empty pattern")
	}
	k := &KMP{pattern: append([]byte(nil), pattern...)}
	m := len(pattern)
	k.fail = make([]int, m)
	j := 0
	for i := 1; i < m; i++ {
		for j > 0 && pattern[i] != pattern[j] {
			j = k.fail[j-1]
		}
		if pattern[i] == pattern[j] {
			j++
		}
		k.fail[i] = j
	}
	return k, nil
}

// Name implements Matcher.
func (k *KMP) Name() string { return "kmp" }

// PatternLen implements Matcher.
func (k *KMP) PatternLen() int { return len(k.pattern) }

// Find implements Matcher.
func (k *KMP) Find(dst []int, text []byte) []int {
	p, fail := k.pattern, k.fail
	m := len(p)
	j := 0
	for i := 0; i < len(text); i++ {
		for j > 0 && text[i] != p[j] {
			j = fail[j-1]
		}
		if text[i] == p[j] {
			j++
		}
		if j == m {
			dst = append(dst, i-m+1)
			j = fail[j-1]
		}
	}
	return dst
}

// Count implements Matcher.
func (k *KMP) Count(text []byte) int {
	p, fail := k.pattern, k.fail
	m := len(p)
	j, n := 0, 0
	for i := 0; i < len(text); i++ {
		for j > 0 && text[i] != p[j] {
			j = fail[j-1]
		}
		if text[i] == p[j] {
			j++
		}
		if j == m {
			n++
			j = fail[j-1]
		}
	}
	return n
}
