// Package search implements the exact string-matching algorithms the paper
// benchmarks in §5: Aho-Corasick (multi-pattern, used by the RaftLib-AC
// configuration), Boyer-Moore-Horspool (the fast single-pattern
// configuration), full Boyer-Moore (the algorithm of the Spark baseline),
// and a naive scanner used for cross-validation in tests.
//
// All matchers report the byte offsets of match starts and support
// chunk-at-a-time scanning with a caller-managed overlap so streaming
// kernels can hand them zero-copy windows of a larger corpus.
package search

import "fmt"

// Matcher finds every occurrence of its pattern(s) in a byte slice.
type Matcher interface {
	// Name identifies the algorithm.
	Name() string
	// Find appends the start offsets of all matches in text to dst and
	// returns it. Overlapping occurrences are all reported.
	Find(dst []int, text []byte) []int
	// Count returns the number of matches in text.
	Count(text []byte) int
	// PatternLen returns the length of the (longest) pattern; chunked
	// callers overlap chunks by PatternLen-1 bytes.
	PatternLen() int
}

// New returns a matcher by algorithm name: "ahocorasick", "horspool"
// (Boyer-Moore-Horspool), "boyermoore", "kmp", "rabinkarp" or "naive".
func New(algo string, pattern []byte) (Matcher, error) {
	switch algo {
	case "ahocorasick", "ac":
		return NewAhoCorasick([][]byte{pattern})
	case "horspool", "bmh":
		return NewHorspool(pattern)
	case "boyermoore", "bm":
		return NewBoyerMoore(pattern)
	case "kmp":
		return NewKMP(pattern)
	case "rabinkarp", "rk":
		return NewRabinKarp(pattern)
	case "naive":
		return NewNaive(pattern)
	default:
		return nil, fmt.Errorf("search: unknown algorithm %q", algo)
	}
}

// Algorithms lists every matcher selectable through New.
func Algorithms() []string {
	return []string{"ahocorasick", "horspool", "boyermoore", "kmp", "rabinkarp", "naive"}
}

// Naive is the quadratic reference scanner used to validate the optimized
// matchers in tests.
type Naive struct {
	pattern []byte
}

// NewNaive returns a naive scanner; the pattern must be non-empty.
func NewNaive(pattern []byte) (*Naive, error) {
	if len(pattern) == 0 {
		return nil, fmt.Errorf("search: empty pattern")
	}
	return &Naive{pattern: append([]byte(nil), pattern...)}, nil
}

// Name implements Matcher.
func (n *Naive) Name() string { return "naive" }

// PatternLen implements Matcher.
func (n *Naive) PatternLen() int { return len(n.pattern) }

// Find implements Matcher.
func (n *Naive) Find(dst []int, text []byte) []int {
	p := n.pattern
	for i := 0; i+len(p) <= len(text); i++ {
		if matchAt(text, i, p) {
			dst = append(dst, i)
		}
	}
	return dst
}

// Count implements Matcher.
func (n *Naive) Count(text []byte) int { return len(n.Find(nil, text)) }

func matchAt(text []byte, i int, p []byte) bool {
	for j := range p {
		if text[i+j] != p[j] {
			return false
		}
	}
	return true
}

// CountChunked scans text in chunks of the given size with a
// PatternLen()-1 overlap — the access pattern of the streaming kernels —
// and returns the total match count. It exists to test that chunked
// scanning is equivalent to whole-buffer scanning.
func CountChunked(m Matcher, text []byte, chunk int) int {
	if chunk <= 0 {
		chunk = 64 << 10
	}
	overlap := m.PatternLen() - 1
	total := 0
	var buf []int
	for start := 0; start < len(text); start += chunk {
		end := start + chunk + overlap
		if end > len(text) {
			end = len(text)
		}
		buf = m.Find(buf[:0], text[start:end])
		for _, pos := range buf {
			if pos < chunk { // matches beginning in the overlap belong to the next chunk
				total++
			}
		}
		if start+chunk >= len(text) {
			break
		}
	}
	return total
}
