// Package textsearch builds the paper's §5 benchmark application on top of
// the raft runtime: the Figure 8 topology
//
//	filereader --> match (×n, replicated) --> reduce
//
// with the match algorithm selected per Figure 9's template parameter
// (search<ahocorasick> or search<boyermoore(-horspool)>). The file read is
// zero copy: chunks alias the in-memory corpus, so the match kernels read
// the corpus bytes directly from their inbound streams.
package textsearch

import (
	"fmt"
	"time"

	"raftlib/internal/corpus"
	"raftlib/kernels"
	"raftlib/raft"
)

// Config parameterizes one run.
type Config struct {
	// Algo is the match algorithm: "ahocorasick", "horspool", "boyermoore"
	// or "naive".
	Algo string
	// Pattern is the needle (corpus.DefaultPattern if empty).
	Pattern []byte
	// Cores is the match-kernel replica budget (1 = sequential pipeline).
	Cores int
	// ChunkSize is the filereader window (default kernels.DefaultChunkSize).
	ChunkSize int
	// CollectPositions returns every match offset instead of just a count
	// (slower: one stream element per hit instead of one per chunk).
	CollectPositions bool
	// QueueCap overrides the default stream capacity.
	QueueCap int
	// Policy selects the split strategy when Cores > 1.
	Policy raft.SplitPolicy
	// ExtraExeOpts are appended to the Exe options (scheduler, monitor,
	// autoscale overrides).
	ExtraExeOpts []raft.Option
	// Analyze attaches flow-model advice (bottleneck, predicted max rate)
	// to the result.
	Analyze bool
}

// Result summarizes one run.
type Result struct {
	Hits      int64
	Positions []int64 // only when CollectPositions
	Elapsed   time.Duration
	Report    *raft.Report
	Advice    *raft.Advice // only when Config.Analyze
}

// Throughput returns corpus bytes per second.
func (r Result) Throughput(corpusBytes int) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(corpusBytes) / r.Elapsed.Seconds()
}

// Run executes the text search over an in-memory corpus.
func Run(corpusData []byte, cfg Config) (Result, error) {
	if len(cfg.Pattern) == 0 {
		cfg.Pattern = []byte(corpus.DefaultPattern)
	}
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = kernels.DefaultChunkSize
	}

	m := raft.NewMap()
	reader := kernels.NewBytesReader(corpusData, cfg.ChunkSize, len(cfg.Pattern)-1)

	linkOpts := []raft.LinkOption{raft.AsOutOfOrder()}
	if cfg.QueueCap > 0 {
		linkOpts = append(linkOpts, raft.Cap(cfg.QueueCap))
	}

	var res Result
	var matchKernel raft.Kernel
	if cfg.CollectPositions {
		k, err := kernels.NewSearch(cfg.Algo, cfg.Pattern)
		if err != nil {
			return res, err
		}
		matchKernel = k
	} else {
		k, err := kernels.NewCountSearch(cfg.Algo, cfg.Pattern)
		if err != nil {
			return res, err
		}
		matchKernel = k
	}

	if _, err := m.Link(reader, matchKernel, linkOpts...); err != nil {
		return res, err
	}

	var total int64
	var positions []int64
	if cfg.CollectPositions {
		if _, err := m.Link(matchKernel, kernels.NewWriteEach(&positions)); err != nil {
			return res, err
		}
	} else {
		red := kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total)
		if _, err := m.Link(matchKernel, red); err != nil {
			return res, err
		}
	}

	exeOpts := append([]raft.Option(nil), cfg.ExtraExeOpts...)
	if cfg.Cores > 1 {
		exeOpts = append(exeOpts,
			raft.WithAutoReplicate(cfg.Cores),
			raft.WithSplitPolicy(cfg.Policy))
	}

	start := time.Now()
	rep, err := m.Exe(exeOpts...)
	elapsed := time.Since(start)
	if err != nil {
		return res, fmt.Errorf("textsearch: %w", err)
	}

	if cfg.CollectPositions {
		res.Positions = positions
		res.Hits = int64(len(positions))
	} else {
		res.Hits = total
	}
	res.Elapsed = elapsed
	res.Report = rep
	if cfg.Analyze {
		adv, err := raft.Analyze(m, rep)
		if err != nil {
			return res, fmt.Errorf("textsearch: analyze: %w", err)
		}
		res.Advice = adv
	}
	return res, nil
}
