package textsearch

import (
	"bytes"
	"sort"
	"testing"

	"raftlib/internal/corpus"
)

func testCorpus(t *testing.T, size int) ([]byte, int64) {
	t.Helper()
	data := corpus.Generate(corpus.Spec{Bytes: size, Seed: 4})
	want := int64(bytes.Count(data, []byte(corpus.DefaultPattern)))
	if want == 0 {
		t.Fatal("no hits in corpus")
	}
	return data, want
}

func TestSequentialAllAlgorithms(t *testing.T) {
	data, want := testCorpus(t, 1<<20)
	for _, algo := range []string{"ahocorasick", "horspool", "boyermoore"} {
		res, err := Run(data, Config{Algo: algo, Cores: 1})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Hits != want {
			t.Fatalf("%s: hits = %d, want %d", algo, res.Hits, want)
		}
		if res.Throughput(len(data)) <= 0 {
			t.Fatalf("%s: no throughput", algo)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	data, want := testCorpus(t, 4<<20)
	for _, cores := range []int{2, 4} {
		res, err := Run(data, Config{Algo: "horspool", Cores: cores})
		if err != nil {
			t.Fatal(err)
		}
		if res.Hits != want {
			t.Fatalf("cores=%d: hits = %d, want %d", cores, res.Hits, want)
		}
		if len(res.Report.Groups) != 1 {
			t.Fatalf("cores=%d: expected replicated group", cores)
		}
	}
}

func TestCollectPositions(t *testing.T) {
	data, want := testCorpus(t, 1<<20)
	res, err := Run(data, Config{Algo: "ahocorasick", Cores: 2, CollectPositions: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != want {
		t.Fatalf("hits = %d, want %d", res.Hits, want)
	}
	sort.Slice(res.Positions, func(i, j int) bool { return res.Positions[i] < res.Positions[j] })
	pat := []byte(corpus.DefaultPattern)
	for _, p := range res.Positions {
		if !bytes.Equal(data[p:p+int64(len(pat))], pat) {
			t.Fatalf("position %d is not a match", p)
		}
	}
}

func TestLeastUtilizedPolicy(t *testing.T) {
	data, want := testCorpus(t, 2<<20)
	res, err := Run(data, Config{Algo: "horspool", Cores: 3, Policy: 1 /* LeastUtilized */})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != want {
		t.Fatalf("hits = %d, want %d", res.Hits, want)
	}
}

func TestBadAlgorithm(t *testing.T) {
	if _, err := Run([]byte("x"), Config{Algo: "nope"}); err == nil {
		t.Fatal("bad algorithm must error")
	}
}

func TestSmallChunks(t *testing.T) {
	data, want := testCorpus(t, 256<<10)
	res, err := Run(data, Config{Algo: "boyermoore", ChunkSize: 1000, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != want {
		t.Fatalf("hits = %d, want %d", res.Hits, want)
	}
}

func TestCustomPattern(t *testing.T) {
	data := corpus.Generate(corpus.Spec{Bytes: 1 << 20, Seed: 66, Pattern: "xylophone", HitsPerMiB: 25})
	want := int64(bytes.Count(data, []byte("xylophone")))
	res, err := Run(data, Config{Algo: "horspool", Pattern: []byte("xylophone"), Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != want {
		t.Fatalf("hits = %d, want %d", res.Hits, want)
	}
}
