package matmul

import (
	"math"
	"testing"
)

func matricesEqual(a, b *Matrix, tol float64) bool {
	for i := 0; i < Dim; i++ {
		for j := 0; j < Dim; j++ {
			if math.Abs(a[i][j]-b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

func TestNewRandomDeterministic(t *testing.T) {
	a := NewRandom(5)
	b := NewRandom(5)
	if !matricesEqual(a, b, 0) {
		t.Fatal("same seed produced different matrices")
	}
	c := NewRandom(6)
	if matricesEqual(a, c, 0) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestStreamingMatchesReference(t *testing.T) {
	a, b := NewRandom(1), NewRandom(2)
	want := Reference(a, b)
	res, err := Run(a, b, Config{QueueCapBytes: 16 * RowBytes})
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(res.C, want, 1e-9) {
		t.Fatal("streaming result differs from reference")
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestStreamingParallelMatchesReference(t *testing.T) {
	a, b := NewRandom(3), NewRandom(4)
	want := Reference(a, b)
	res, err := Run(a, b, Config{QueueCapBytes: 64 * RowBytes, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(res.C, want, 1e-9) {
		t.Fatal("parallel streaming result differs from reference")
	}
	if len(res.Report.Groups) != 1 {
		t.Fatalf("expected replicated multiply group, got %+v", res.Report.Groups)
	}
}

func TestTinyQueueStillCorrect(t *testing.T) {
	a, b := NewRandom(7), NewRandom(8)
	want := Reference(a, b)
	res, err := Run(a, b, Config{QueueCapBytes: 1}) // clamps to one element
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(res.C, want, 1e-9) {
		t.Fatal("tiny-queue result differs from reference")
	}
	// Capacity must have stayed pinned (MaxCap == Cap, no dynamic resize).
	for _, l := range res.Report.Links {
		if l.FinalCap != 1 {
			t.Fatalf("link %s final cap = %d, want pinned 1", l.Name, l.FinalCap)
		}
	}
}

func TestDynamicResizeGrowsTinyQueue(t *testing.T) {
	a, b := NewRandom(9), NewRandom(10)
	res, err := Run(a, b, Config{QueueCapBytes: 1, DynamicResize: true})
	if err != nil {
		t.Fatal(err)
	}
	grew := false
	for _, l := range res.Report.Links {
		if l.Grows > 0 {
			grew = true
		}
	}
	if !grew {
		t.Skip("monitor did not fire on this machine's timing; non-deterministic")
	}
}

func TestQueueCapacityConversion(t *testing.T) {
	a, b := NewRandom(11), NewRandom(12)
	res, err := Run(a, b, Config{QueueCapBytes: 8 * RowBytes})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Report.Links {
		if l.FinalCap != 8 {
			t.Fatalf("link %s cap = %d elements, want 8", l.Name, l.FinalCap)
		}
	}
}

func randSized(rows, cols int, seed uint64) [][]float64 {
	s := seed | 1
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			m[i][j] = float64(s%1000)/1000 - 0.5
		}
	}
	return m
}

func sizedEqual(a, b [][]float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Abs(a[i][j]-b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

func TestRunSizedRectangular(t *testing.T) {
	a := randSized(37, 53, 1)
	b := randSized(53, 19, 2)
	want := ReferenceSized(a, b)
	res, err := RunSized(a, b, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sizedEqual(res.C, want, 1e-9) {
		t.Fatal("sized streaming result differs from reference")
	}
}

func TestRunSizedParallel(t *testing.T) {
	a := randSized(64, 64, 3)
	b := randSized(64, 64, 4)
	want := ReferenceSized(a, b)
	res, err := RunSized(a, b, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sizedEqual(res.C, want, 1e-9) {
		t.Fatal("parallel sized result differs from reference")
	}
	if len(res.Report.Groups) != 1 {
		t.Fatalf("expected replicated multiply group, got %+v", res.Report.Groups)
	}
}

func TestRunSizedShapeValidation(t *testing.T) {
	good := randSized(4, 4, 5)
	if _, err := RunSized(nil, good, Config{}); err == nil {
		t.Fatal("empty A must error")
	}
	if _, err := RunSized(good, nil, Config{}); err == nil {
		t.Fatal("empty B must error")
	}
	if _, err := RunSized(randSized(4, 5, 6), randSized(4, 4, 7), Config{}); err == nil {
		t.Fatal("inner dimension mismatch must error")
	}
	ragged := randSized(4, 4, 8)
	ragged[2] = ragged[2][:3]
	if _, err := RunSized(ragged, good, Config{}); err == nil {
		t.Fatal("ragged A must error")
	}
	raggedB := randSized(4, 4, 9)
	raggedB[1] = raggedB[1][:2]
	if _, err := RunSized(good, raggedB, Config{}); err == nil {
		t.Fatal("ragged B must error")
	}
}

func TestRunSizedSingleRow(t *testing.T) {
	a := [][]float64{{1, 2, 3}}
	b := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	res, err := RunSized(a, b, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{4, 5}}
	if !sizedEqual(res.C, want, 1e-12) {
		t.Fatalf("got %v", res.C)
	}
}
