// Package matmul is the streaming matrix-multiply application behind the
// paper's Figure 4 queue-sizing experiment ("Queue sizes for a matrix
// multiply application, shown for an individual queue (all queues sized
// equally)").
//
// The topology streams the rows of A as *values* through the runtime's
// FIFOs — exactly as the C++ original stores elements by value in its ring
// buffers — so a queue of capacity k genuinely holds k × 2 KiB of payload
// and "queue size in bytes" is a physical quantity: too-small queues stall
// the pipeline, while very large queues drag in allocation, page-fault and
// cache costs, reproducing Figure 4's shape.
//
//	rowSource --> multiply (×workers) --> rowSink
package matmul

import (
	"fmt"
	"time"

	"raftlib/raft"
)

// Dim is the fixed matrix dimension: Dim×Dim float64 (a 512 KiB matrix).
const Dim = 256

// Row is one matrix row, passed by value through the stream (2 KiB).
type Row [Dim]float64

// Matrix is a Dim×Dim float64 matrix.
type Matrix [Dim]Row

// RowBytes is the in-queue payload size of one stream element.
const RowBytes = Dim * 8

// IndexedRow tags a row with its index so out-of-order multiplication can
// scatter results into place.
type IndexedRow struct {
	Idx int32
	Row Row
}

// NewRandom builds a deterministic pseudo-random matrix.
func NewRandom(seed uint64) *Matrix {
	if seed == 0 {
		seed = 1
	}
	m := new(Matrix)
	s := seed
	for i := 0; i < Dim; i++ {
		for j := 0; j < Dim; j++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			m[i][j] = float64(s%1000)/1000 - 0.5
		}
	}
	return m
}

// Reference computes A×B with the straightforward triple loop (test
// oracle).
func Reference(a, b *Matrix) *Matrix {
	c := new(Matrix)
	for i := 0; i < Dim; i++ {
		for k := 0; k < Dim; k++ {
			aik := a[i][k]
			for j := 0; j < Dim; j++ {
				c[i][j] += aik * b[k][j]
			}
		}
	}
	return c
}

// rowSource streams A's rows by value.
type rowSource struct {
	raft.KernelBase
	a *Matrix
	i int
}

func newRowSource(a *Matrix) *rowSource {
	k := &rowSource{a: a}
	k.SetName("rowSource")
	raft.AddOutput[IndexedRow](k, "out")
	return k
}

func (s *rowSource) Run() raft.Status {
	if s.i >= Dim {
		return raft.Stop
	}
	el := IndexedRow{Idx: int32(s.i), Row: s.a[s.i]} // value copy into the queue
	if err := raft.Push(s.Out("out"), el); err != nil {
		return raft.Stop
	}
	s.i++
	return raft.Proceed
}

// multiply computes one output row per input row: out = in · B.
type multiply struct {
	raft.KernelBase
	b *Matrix
}

func newMultiply(b *Matrix) *multiply {
	k := &multiply{b: b}
	k.SetName("multiply")
	raft.AddInput[IndexedRow](k, "in")
	raft.AddOutput[IndexedRow](k, "out")
	return k
}

func (m *multiply) Run() raft.Status {
	in, err := raft.Pop[IndexedRow](m.In("in"))
	if err != nil {
		return raft.Stop
	}
	var out IndexedRow
	out.Idx = in.Idx
	b := m.b
	for k := 0; k < Dim; k++ {
		aik := in.Row[k]
		if aik == 0 {
			continue
		}
		row := &b[k]
		for j := 0; j < Dim; j++ {
			out.Row[j] += aik * row[j]
		}
	}
	if err := raft.Push(m.Out("out"), out); err != nil {
		return raft.Stop
	}
	return raft.Proceed
}

// Clone implements raft.Cloner: replicas share the read-only B.
func (m *multiply) Clone() raft.Kernel { return newMultiply(m.b) }

// rowSink scatters result rows into C.
type rowSink struct {
	raft.KernelBase
	c *Matrix
}

func newRowSink(c *Matrix) *rowSink {
	k := &rowSink{c: c}
	k.SetName("rowSink")
	raft.AddInput[IndexedRow](k, "in")
	return k
}

func (s *rowSink) Run() raft.Status {
	v, err := raft.Pop[IndexedRow](s.In("in"))
	if err != nil {
		return raft.Stop
	}
	s.c[v.Idx] = v.Row
	return raft.Proceed
}

// Config parameterizes one streaming multiply.
type Config struct {
	// QueueCapBytes is the allocated size of each stream (Figure 4's
	// x-axis); it is converted to elements of RowBytes each (min 1).
	QueueCapBytes int
	// Workers is the multiply-kernel replica count (1 = pure pipeline).
	Workers int
	// DynamicResize lets the monitor resize the queues during the run;
	// Figure 4 fixes sizes, so it defaults to off here.
	DynamicResize bool
	// ExtraExeOpts are appended to the Exe options.
	ExtraExeOpts []raft.Option
}

// Result is one streaming multiply outcome.
type Result struct {
	C       *Matrix
	Elapsed time.Duration
	Report  *raft.Report
}

// Run multiplies a×b through the streaming topology.
func Run(a, b *Matrix, cfg Config) (Result, error) {
	capElems := cfg.QueueCapBytes / RowBytes
	if capElems < 1 {
		capElems = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}

	m := raft.NewMap()
	src := newRowSource(a)
	mul := newMultiply(b)
	c := new(Matrix)
	sink := newRowSink(c)

	inOpts := []raft.LinkOption{raft.Cap(capElems), raft.AsOutOfOrder()}
	outOpts := []raft.LinkOption{raft.Cap(capElems)}
	if !cfg.DynamicResize {
		inOpts = append(inOpts, raft.MaxCap(capElems))
		outOpts = append(outOpts, raft.MaxCap(capElems))
	}
	if _, err := m.Link(src, mul, inOpts...); err != nil {
		return Result{}, err
	}
	if _, err := m.Link(mul, sink, outOpts...); err != nil {
		return Result{}, err
	}

	opts := []raft.Option{raft.WithDynamicResize(cfg.DynamicResize)}
	if cfg.Workers > 1 {
		opts = append(opts, raft.WithAutoReplicate(cfg.Workers))
	}
	opts = append(opts, cfg.ExtraExeOpts...)

	start := time.Now()
	rep, err := m.Exe(opts...)
	if err != nil {
		return Result{}, fmt.Errorf("matmul: %w", err)
	}
	return Result{C: c, Elapsed: time.Since(start), Report: rep}, nil
}
