package matmul

import (
	"fmt"
	"time"

	"raftlib/raft"
)

// The sized variant multiplies arbitrary rectangular matrices through the
// same streaming topology as the fixed-dimension Figure 4 app. Rows travel
// as slice headers (the payload is shared, not copied), so this variant
// measures pipeline behaviour rather than queue-byte physicality — use Run
// for the Figure 4 experiment and RunSized as the general-purpose library
// entry point.

// SizedRow tags a result row with its index for out-of-order scatter.
type SizedRow struct {
	Idx int32
	Row []float64
}

// sizedSource streams A's rows.
type sizedSource struct {
	raft.KernelBase
	a [][]float64
	i int
}

func newSizedSource(a [][]float64) *sizedSource {
	k := &sizedSource{a: a}
	k.SetName("rowSource")
	raft.AddOutput[SizedRow](k, "out")
	return k
}

func (s *sizedSource) Run() raft.Status {
	if s.i >= len(s.a) {
		return raft.Stop
	}
	if err := raft.Push(s.Out("out"), SizedRow{Idx: int32(s.i), Row: s.a[s.i]}); err != nil {
		return raft.Stop
	}
	s.i++
	return raft.Proceed
}

// sizedMultiply computes one result row per input row against shared B.
type sizedMultiply struct {
	raft.KernelBase
	b [][]float64
	n int // result width
}

func newSizedMultiply(b [][]float64, n int) *sizedMultiply {
	k := &sizedMultiply{b: b, n: n}
	k.SetName("multiply")
	raft.AddInput[SizedRow](k, "in")
	raft.AddOutput[SizedRow](k, "out")
	return k
}

func (m *sizedMultiply) Run() raft.Status {
	in, err := raft.Pop[SizedRow](m.In("in"))
	if err != nil {
		return raft.Stop
	}
	out := make([]float64, m.n)
	for kk, aik := range in.Row {
		if aik == 0 {
			continue
		}
		brow := m.b[kk]
		for j := range brow {
			out[j] += aik * brow[j]
		}
	}
	if err := raft.Push(m.Out("out"), SizedRow{Idx: in.Idx, Row: out}); err != nil {
		return raft.Stop
	}
	return raft.Proceed
}

// Clone implements raft.Cloner: replicas share the read-only B.
func (m *sizedMultiply) Clone() raft.Kernel { return newSizedMultiply(m.b, m.n) }

// sizedSink scatters result rows into C.
type sizedSink struct {
	raft.KernelBase
	c [][]float64
}

func newSizedSink(c [][]float64) *sizedSink {
	k := &sizedSink{c: c}
	k.SetName("rowSink")
	raft.AddInput[SizedRow](k, "in")
	return k
}

func (s *sizedSink) Run() raft.Status {
	v, err := raft.Pop[SizedRow](s.In("in"))
	if err != nil {
		return raft.Stop
	}
	s.c[v.Idx] = v.Row
	return raft.Proceed
}

// SizedResult is a RunSized outcome.
type SizedResult struct {
	C       [][]float64
	Elapsed time.Duration
	Report  *raft.Report
}

// RunSized multiplies an m×k matrix A by a k×n matrix B through the
// streaming topology, replicating the multiply kernel across cfg.Workers.
// It validates shapes and returns the m×n product.
func RunSized(a, b [][]float64, cfg Config) (SizedResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return SizedResult{}, fmt.Errorf("matmul: empty operand")
	}
	k := len(a[0])
	for i, row := range a {
		if len(row) != k {
			return SizedResult{}, fmt.Errorf("matmul: A row %d has %d columns, want %d", i, len(row), k)
		}
	}
	if len(b) != k {
		return SizedResult{}, fmt.Errorf("matmul: inner dimensions disagree: A is ?x%d, B has %d rows", k, len(b))
	}
	n := len(b[0])
	for i, row := range b {
		if len(row) != n {
			return SizedResult{}, fmt.Errorf("matmul: B row %d has %d columns, want %d", i, len(row), n)
		}
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	capElems := cfg.QueueCapBytes / RowBytes
	if capElems < 1 {
		capElems = 16
	}

	m := raft.NewMap()
	src := newSizedSource(a)
	mul := newSizedMultiply(b, n)
	c := make([][]float64, len(a))
	sink := newSizedSink(c)
	if _, err := m.Link(src, mul, raft.Cap(capElems), raft.AsOutOfOrder()); err != nil {
		return SizedResult{}, err
	}
	if _, err := m.Link(mul, sink, raft.Cap(capElems)); err != nil {
		return SizedResult{}, err
	}
	opts := append([]raft.Option(nil), cfg.ExtraExeOpts...)
	if cfg.Workers > 1 {
		opts = append(opts, raft.WithAutoReplicate(cfg.Workers))
	}
	start := time.Now()
	rep, err := m.Exe(opts...)
	if err != nil {
		return SizedResult{}, fmt.Errorf("matmul: %w", err)
	}
	return SizedResult{C: c, Elapsed: time.Since(start), Report: rep}, nil
}

// ReferenceSized is the triple-loop oracle for RunSized.
func ReferenceSized(a, b [][]float64) [][]float64 {
	k := len(a[0])
	n := len(b[0])
	c := make([][]float64, len(a))
	for i := range c {
		c[i] = make([]float64, n)
		for kk := 0; kk < k; kk++ {
			aik := a[i][kk]
			for j := 0; j < n; j++ {
				c[i][j] += aik * b[kk][j]
			}
		}
	}
	return c
}
