// Package scheduler provides the kernel-execution strategies for the
// RaftLib runtime.
//
// The paper's initial scheduling algorithm "is simply the default
// thread-level scheduler provided by the underlying operating system"
// (§4.1) — in Go terms, one goroutine per kernel multiplexed by the Go
// runtime. That is the Goroutine scheduler here and the default. The paper
// also stresses that RaftLib "allows the substitution of any scheduler
// desired"; the Scheduler interface plus the Pool implementation (a fixed
// worker pool with cooperative re-queuing) realize that substitution point
// and power the A4 scheduler ablation.
package scheduler

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"raftlib/internal/core"
)

// Scheduler drives a set of actors to completion.
type Scheduler interface {
	// Run executes every actor until it stops, then returns the combined
	// error (nil on clean completion). Run handles actor Init/Finish.
	Run(actors []*core.Actor) error
	// Name identifies the scheduler in reports.
	Name() string
}

// runActorLifecycle executes one actor: Init, the Step loop, then Finish.
// yield is invoked on Stall. Panics inside kernel code are recovered and
// converted into errors so one faulty kernel cannot crash the process.
func runActorLifecycle(a *core.Actor, yield func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			// Typed: errors.Is(err, core.ErrKernelPanicked) holds, and an
			// error-valued panic (typed port misuse, injected fault) stays
			// reachable through Unwrap for classification.
			err = fmt.Errorf("kernel %q %w", a.Name, core.PanicError(r))
		}
		if a.Finish != nil {
			a.Finish()
		}
		a.Finished.Store(true)
	}()
	if a.Init != nil {
		if err := a.Init(); err != nil {
			return fmt.Errorf("kernel %q init: %w", a.Name, err)
		}
	}
	if a.Virtual {
		return nil
	}
	for {
		switch a.StepTimed() {
		case core.Proceed:
		case core.Stop:
			return nil
		case core.Stall:
			yield()
		}
	}
}

// Goroutine runs one goroutine per actor — the Go analogue of the paper's
// "default OS thread scheduler" choice. It is the runtime's default.
type Goroutine struct{}

// Name implements Scheduler.
func (Goroutine) Name() string { return "goroutine-per-kernel" }

// Run implements Scheduler.
func (Goroutine) Run(actors []*core.Actor) error {
	var wg sync.WaitGroup
	errs := make([]error, len(actors))
	for i, a := range actors {
		wg.Add(1)
		go func(i int, a *core.Actor) {
			defer wg.Done()
			errs[i] = runActorLifecycle(a, runtime.Gosched)
		}(i, a)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Pool multiplexes all actors over a fixed number of worker goroutines.
//
// Because kernel port operations may block inside Step (waiting for input
// or output space), a pooled worker can be held by a blocked kernel. The
// pool therefore guarantees progress only when Workers is at least the
// maximum number of simultaneously blocked kernels; for arbitrary graphs
// the safe configuration is Workers >= number of actors, which still wins
// when kernels are cooperative (return Stall instead of blocking). This
// caveat is inherent to pooling blocking kernels and is documented in
// DESIGN.md (ablation A4).
type Pool struct {
	// Workers is the number of worker goroutines (defaults to GOMAXPROCS).
	Workers int
	// StallSleep is how long a fully stalled pass sleeps before retrying
	// (defaults to 50µs).
	StallSleep time.Duration
}

// Name implements Scheduler.
func (p Pool) Name() string { return fmt.Sprintf("pool-%d", p.workers()) }

func (p Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run implements Scheduler.
func (p Pool) Run(actors []*core.Actor) error {
	type job struct {
		a   *core.Actor
		idx int
	}
	stallSleep := p.StallSleep
	if stallSleep <= 0 {
		stallSleep = 50 * time.Microsecond
	}

	queue := make(chan job, len(actors))
	errs := make([]error, len(actors))
	var errMu sync.Mutex
	var pending sync.WaitGroup // counts unfinished actors

	// Initialize all actors up front; failures mark the actor finished.
	live := make([]job, 0, len(actors))
	for i, a := range actors {
		if a.Init != nil {
			if err := a.Init(); err != nil {
				errs[i] = fmt.Errorf("kernel %q init: %w", a.Name, err)
				if a.Finish != nil {
					a.Finish()
				}
				a.Finished.Store(true)
				continue
			}
		}
		if a.Virtual {
			if a.Finish != nil {
				a.Finish()
			}
			a.Finished.Store(true)
			continue
		}
		live = append(live, job{a: a, idx: i})
	}
	pending.Add(len(live))
	for _, j := range live {
		queue <- j
	}

	var wg sync.WaitGroup
	for w := 0; w < p.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range queue {
				p.stepQuantum(j.a, j.idx, errs, &errMu, func(done bool) {
					if done {
						pending.Done()
					} else {
						queue <- j // cooperative requeue
					}
				}, stallSleep)
			}
		}()
	}

	pending.Wait()
	close(queue)
	wg.Wait()
	return errors.Join(errs...)
}

// stepQuantum runs a bounded burst of Steps for one actor, then either
// finishes it or hands it back via done(false).
func (p Pool) stepQuantum(a *core.Actor, idx int, errs []error, errMu *sync.Mutex, done func(bool), stallSleep time.Duration) {
	finished := false
	defer func() {
		if r := recover(); r != nil {
			errMu.Lock()
			errs[idx] = fmt.Errorf("kernel %q %w", a.Name, core.PanicError(r))
			errMu.Unlock()
			finished = true
		}
		if finished {
			if a.Finish != nil {
				a.Finish()
			}
			a.Finished.Store(true)
			done(true)
		} else {
			done(false)
		}
	}()
	const quantum = 64
	for i := 0; i < quantum; i++ {
		// Readiness gate: never let a kernel that would block on a port
		// capture this worker — requeue it and serve someone who can run.
		if a.Ready != nil && !a.Ready() {
			if i == 0 {
				time.Sleep(stallSleep)
			}
			return
		}
		switch a.StepTimed() {
		case core.Proceed:
		case core.Stop:
			finished = true
			return
		case core.Stall:
			time.Sleep(stallSleep)
			return
		}
	}
}
