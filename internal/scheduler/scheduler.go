// Package scheduler provides the kernel-execution strategies for the
// RaftLib runtime.
//
// The paper's initial scheduling algorithm "is simply the default
// thread-level scheduler provided by the underlying operating system"
// (§4.1) — in Go terms, one goroutine per kernel multiplexed by the Go
// runtime. That is the Goroutine scheduler here and the default. The paper
// also stresses that RaftLib "allows the substitution of any scheduler
// desired"; the Scheduler interface plus the Pool implementation (a fixed
// worker pool with cooperative re-queuing) realize that substitution point
// and power the A4 scheduler ablation.
package scheduler

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"raftlib/internal/core"
)

// Scheduler drives a set of actors to completion.
type Scheduler interface {
	// Run executes every actor until it stops, then returns the combined
	// error (nil on clean completion). Run handles actor Init/Finish.
	Run(actors []*core.Actor) error
	// Name identifies the scheduler in reports.
	Name() string
}

// Spawner is implemented by schedulers that can absorb actors into a
// running execution — the scheduling half of the graph-rewrite protocol.
// Spawn runs the actor's full lifecycle (Init, Step loop, Finish) and
// folds its error into Run's combined result; it fails once Run has
// completed, since a finished execution cannot adopt new kernels.
type Spawner interface {
	Spawn(a *core.Actor) error
}

// dynSet tracks dynamically-runnable actors for the simpler schedulers:
// a goroutine per actor, a shared error list, and a completion latch so
// Run can wait for spawns that arrive while it is already waiting.
type dynSet struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	errs   []error
	closed bool
}

func (d *dynSet) launch(a *core.Actor) error {
	d.mu.Lock()
	if d.cond == nil {
		d.cond = sync.NewCond(&d.mu)
	}
	if d.closed {
		d.mu.Unlock()
		return errors.New("scheduler: execution already completed")
	}
	d.n++
	d.mu.Unlock()
	go func() {
		err := runActorLifecycle(a, runtime.Gosched)
		d.mu.Lock()
		if err != nil {
			d.errs = append(d.errs, err)
		}
		d.n--
		if d.n == 0 {
			d.cond.Broadcast()
		}
		d.mu.Unlock()
	}()
	return nil
}

// wait blocks until every launched actor (including ones spawned during
// the wait) has finished, then closes the set against further spawns.
func (d *dynSet) wait() error {
	d.mu.Lock()
	if d.cond == nil {
		d.cond = sync.NewCond(&d.mu)
	}
	for d.n > 0 {
		d.cond.Wait()
	}
	d.closed = true
	err := errors.Join(d.errs...)
	d.mu.Unlock()
	return err
}

// runActorLifecycle executes one actor: Init, the Step loop, then Finish.
// yield is invoked on Stall. Panics inside kernel code are recovered and
// converted into errors so one faulty kernel cannot crash the process.
func runActorLifecycle(a *core.Actor, yield func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			// Typed: errors.Is(err, core.ErrKernelPanicked) holds, and an
			// error-valued panic (typed port misuse, injected fault) stays
			// reachable through Unwrap for classification.
			err = fmt.Errorf("kernel %q %w", a.Name, core.PanicError(r))
		}
		if a.Finish != nil {
			a.Finish()
		}
		a.Finished.Store(true)
	}()
	if a.Init != nil {
		if err := a.Init(); err != nil {
			return fmt.Errorf("kernel %q init: %w", a.Name, err)
		}
	}
	if a.Virtual {
		return nil
	}
	for {
		if a.Gate != nil && a.Gate.Poll() == core.GateStop {
			return nil
		}
		switch a.StepTimed() {
		case core.Proceed:
		case core.Stop:
			return nil
		case core.Stall:
			yield()
		}
	}
}

// Goroutine runs one goroutine per actor — the Go analogue of the paper's
// "default OS thread scheduler" choice. It is the runtime's default. The
// zero value works; NewGoroutine returns one that additionally supports
// Spawn (actors added mid-run by a graph rewrite).
type Goroutine struct {
	dyn *dynSet
}

// NewGoroutine returns a Goroutine scheduler that implements Spawner.
func NewGoroutine() Goroutine { return Goroutine{dyn: &dynSet{}} }

// Name implements Scheduler.
func (Goroutine) Name() string { return "goroutine-per-kernel" }

// Run implements Scheduler.
func (g Goroutine) Run(actors []*core.Actor) error {
	if g.dyn != nil {
		for _, a := range actors {
			g.dyn.launch(a)
		}
		return g.dyn.wait()
	}
	var wg sync.WaitGroup
	errs := make([]error, len(actors))
	for i, a := range actors {
		wg.Add(1)
		go func(i int, a *core.Actor) {
			defer wg.Done()
			errs[i] = runActorLifecycle(a, runtime.Gosched)
		}(i, a)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Spawn implements Spawner on schedulers built with NewGoroutine.
func (g Goroutine) Spawn(a *core.Actor) error {
	if g.dyn == nil {
		return errors.New("scheduler: Goroutine zero value cannot spawn (use NewGoroutine)")
	}
	return g.dyn.launch(a)
}

// Pool multiplexes all actors over a fixed number of worker goroutines.
//
// Because kernel port operations may block inside Step (waiting for input
// or output space), a pooled worker can be held by a blocked kernel. The
// pool therefore guarantees progress only when Workers is at least the
// maximum number of simultaneously blocked kernels; for arbitrary graphs
// the safe configuration is Workers >= number of actors, which still wins
// when kernels are cooperative (return Stall instead of blocking). This
// caveat is inherent to pooling blocking kernels and is documented in
// DESIGN.md (ablation A4).
type Pool struct {
	// Workers is the number of worker goroutines (defaults to GOMAXPROCS).
	Workers int
	// StallSleep caps the exponential backoff a stalled kernel's requeue
	// sleeps before retrying (defaults to 50µs). The backoff starts at 1µs
	// on a kernel's first stalled pass and doubles per consecutive stall,
	// so a briefly-blocked kernel retries almost immediately while a
	// long-blocked one converges to the old fixed-sleep behaviour.
	StallSleep time.Duration
	// Counters, when non-nil, receives activity counts (stalled passes).
	// A pointer so the Pool value type keeps its copy semantics while Run
	// and SchedStats observe the same cells; Run leaves a nil field nil
	// and counts nothing.
	Counters *counters
	// dyn, when non-nil, adopts actors spawned mid-run by a graph rewrite.
	// The pool's job queue is sized at Run, so spawned actors run on
	// dedicated goroutines instead — correct, if unpooled; set by NewPool.
	dyn *dynSet
}

// NewPool returns a counting Pool: Workers set to workers (0 means
// GOMAXPROCS), Counters wired so SchedStats reports stalled passes, and
// Spawn supported for mid-run graph rewrites.
func NewPool(workers int) Pool {
	return Pool{Workers: workers, Counters: &counters{}, dyn: &dynSet{}}
}

// Spawn implements Spawner on pools built with NewPool. The spawned actor
// runs on its own goroutine (the pool's job queue is capacity-fixed at
// Run); Run waits for it like any pooled actor.
func (p Pool) Spawn(a *core.Actor) error {
	if p.dyn == nil {
		return errors.New("scheduler: Pool zero value cannot spawn (use NewPool)")
	}
	return p.dyn.launch(a)
}

// Name implements Scheduler.
func (p Pool) Name() string { return fmt.Sprintf("pool-%d", p.workers()) }

func (p Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SchedStats implements StatsReporter.
func (p Pool) SchedStats() Stats {
	s := Stats{Scheduler: p.Name(), Workers: p.workers()}
	p.Counters.snapshot(&s)
	return s
}

// poolJob is one actor's scheduling handle; streak counts consecutive
// stalled passes and drives the per-kernel backoff.
type poolJob struct {
	a      *core.Actor
	idx    int
	streak int
}

// Run implements Scheduler.
func (p Pool) Run(actors []*core.Actor) error {
	stallCap := p.StallSleep
	if stallCap <= 0 {
		stallCap = 50 * time.Microsecond
	}

	queue := make(chan *poolJob, len(actors))
	errs := make([]error, len(actors))
	var errMu sync.Mutex
	var pending sync.WaitGroup // counts unfinished actors

	// Initialize all actors up front; failures mark the actor finished.
	live := make([]*poolJob, 0, len(actors))
	for i, a := range actors {
		if a.Init != nil {
			if err := a.Init(); err != nil {
				errs[i] = fmt.Errorf("kernel %q init: %w", a.Name, err)
				if a.Finish != nil {
					a.Finish()
				}
				a.Finished.Store(true)
				continue
			}
		}
		if a.Virtual {
			if a.Finish != nil {
				a.Finish()
			}
			a.Finished.Store(true)
			continue
		}
		live = append(live, &poolJob{a: a, idx: i})
	}
	pending.Add(len(live))
	for _, j := range live {
		queue <- j
	}

	var wg sync.WaitGroup
	for w := 0; w < p.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range queue {
				p.stepQuantum(j, errs, &errMu, func(done bool) {
					if done {
						pending.Done()
					} else {
						queue <- j // cooperative requeue
					}
				}, stallCap)
			}
		}()
	}

	pending.Wait()
	close(queue)
	wg.Wait()
	err := errors.Join(errs...)
	if p.dyn != nil {
		if derr := p.dyn.wait(); derr != nil {
			err = errors.Join(err, derr)
		}
	}
	return err
}

// stepQuantum runs a bounded burst of Steps for one actor, then either
// finishes it or hands it back via done(false). A pass that makes no
// progress sleeps the kernel's current backoff (1µs doubled per
// consecutive stalled pass, capped at stallCap) before the requeue; any
// progress resets the streak.
func (p Pool) stepQuantum(j *poolJob, errs []error, errMu *sync.Mutex, done func(bool), stallCap time.Duration) {
	a := j.a
	finished := false
	defer func() {
		if r := recover(); r != nil {
			errMu.Lock()
			errs[j.idx] = fmt.Errorf("kernel %q %w", a.Name, core.PanicError(r))
			errMu.Unlock()
			finished = true
		}
		if finished {
			if a.Finish != nil {
				a.Finish()
			}
			a.Finished.Store(true)
			done(true)
		} else {
			done(false)
		}
	}()
	const quantum = 64
	for i := 0; i < quantum; i++ {
		if a.Gate != nil && a.Gate.Poll() == core.GateStop {
			finished = true
			return
		}
		// Readiness gate: never let a kernel that would block on a port
		// capture this worker — requeue it and serve someone who can run.
		if a.Ready != nil && !a.Ready() {
			if i == 0 {
				p.stalled(j, stallCap)
			}
			return
		}
		switch a.StepTimed() {
		case core.Proceed:
			j.streak = 0
		case core.Stop:
			finished = true
			return
		case core.Stall:
			p.stalled(j, stallCap)
			return
		}
	}
	j.streak = 0
}

// stalled records one no-progress pass and sleeps the kernel's backoff.
func (p Pool) stalled(j *poolJob, stallCap time.Duration) {
	if p.Counters != nil {
		p.Counters.stalled.Add(1)
	}
	d := time.Microsecond << min(j.streak, 20)
	if d > stallCap {
		d = stallCap
	}
	j.streak++
	time.Sleep(d)
}
