package scheduler

import "sync"

// stealDeque is one worker's ready queue: a mutex-guarded growable ring
// indexed by monotone head/tail sequences. The owning worker pushes and
// pops at the bottom (LIFO — the task it just made runnable is the one
// whose link buffers are hottest in cache) and requeues quantum-exhausted
// tasks at the top so they drain in FIFO order; thieves take batches from
// the top, the coldest work the owner would reach last.
//
// A mutex (rather than the Chase–Lev lock-free deque) is deliberate: every
// deque operation here amortizes over a full step quantum of kernel work
// (64 Steps), so the lock is nowhere near the hot path, and the mutex
// gives pushTop and batched stealInto for free — both awkward on Chase–Lev.
// The locking discipline is that no caller ever holds two deque locks:
// stealInto moves tasks through a caller-owned scratch slice in two
// critical sections.
type stealDeque struct {
	mu   sync.Mutex
	buf  []*wsTask
	mask uint64
	head uint64 // sequence of the top (oldest) element
	tail uint64 // sequence one past the bottom (newest) element
}

func newStealDeque(capHint int) *stealDeque {
	p := 8
	for p < capHint {
		p <<= 1
	}
	return &stealDeque{buf: make([]*wsTask, p), mask: uint64(p - 1)}
}

// size returns the current length. Callers must hold d.mu.
func (d *stealDeque) size() int { return int(d.tail - d.head) }

// grow doubles the ring. Callers must hold d.mu.
func (d *stealDeque) grow() {
	nb := make([]*wsTask, len(d.buf)*2)
	nm := uint64(len(nb) - 1)
	for s := d.head; s != d.tail; s++ {
		nb[s&nm] = d.buf[s&d.mask]
	}
	d.buf, d.mask = nb, nm
}

// pushBottom appends t at the bottom (newest end).
func (d *stealDeque) pushBottom(t *wsTask) {
	d.mu.Lock()
	if d.size() == len(d.buf) {
		d.grow()
	}
	d.buf[d.tail&d.mask] = t
	d.tail++
	d.mu.Unlock()
}

// pushTop inserts t at the top (oldest end) — the fairness requeue for a
// task that exhausted its quantum: it runs again only after everything
// already waiting.
func (d *stealDeque) pushTop(t *wsTask) {
	d.mu.Lock()
	if d.size() == len(d.buf) {
		d.grow()
	}
	d.head--
	d.buf[d.head&d.mask] = t
	d.mu.Unlock()
}

// popBottom removes and returns the newest task, or nil when empty.
func (d *stealDeque) popBottom() *wsTask {
	d.mu.Lock()
	if d.head == d.tail {
		d.mu.Unlock()
		return nil
	}
	d.tail--
	t := d.buf[d.tail&d.mask]
	d.buf[d.tail&d.mask] = nil
	d.mu.Unlock()
	return t
}

// stealInto moves up to max tasks — at most half the victim's queue,
// rounded up — from d's top into dst, returning how many moved. scratch
// must have capacity >= max; it only buffers the tasks between the two
// critical sections so neither lock is held while the other is taken.
func (d *stealDeque) stealInto(dst *stealDeque, max int, scratch []*wsTask) int {
	if max <= 0 {
		return 0
	}
	d.mu.Lock()
	n := (d.size() + 1) / 2
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		scratch[i] = d.buf[d.head&d.mask]
		d.buf[d.head&d.mask] = nil
		d.head++
	}
	d.mu.Unlock()
	if n == 0 {
		return 0
	}
	dst.mu.Lock()
	for dst.size()+n > len(dst.buf) {
		dst.grow()
	}
	for i := 0; i < n; i++ {
		dst.buf[dst.tail&dst.mask] = scratch[i]
		dst.tail++
		scratch[i] = nil
	}
	dst.mu.Unlock()
	return n
}
