package scheduler

import "sync/atomic"

// Stats is a point-in-time snapshot of a scheduler's internal activity,
// surfaced in Report/LiveStats and as Prometheus counters. All counters are
// cumulative since Run started.
type Stats struct {
	// Scheduler is the implementation's Name().
	Scheduler string
	// Workers is the number of worker goroutines multiplexing kernels
	// (0 for goroutine-per-kernel, which has no worker pool).
	Workers int
	// Steals counts successful steal operations (one per victim raid);
	// StolenTasks counts the kernels moved by them (batched steals move
	// several per raid).
	Steals, StolenTasks uint64
	// Parks counts kernels parked after a Stall to await a link wake;
	// Wakes counts link-transition re-queues of parked kernels; Rescues
	// counts watchdog re-queues (kernels whose stall had no hooked link
	// transition to wake them, or the rare missed SPSC edge).
	Parks, Wakes, Rescues uint64
	// StalledPasses counts scheduling passes that found the kernel unable
	// to progress (the pool's backoff events; 0 for schedulers that park
	// instead of polling).
	StalledPasses uint64
	// CrossShardLinks is the number of links whose producer and consumer
	// were placed on different shards (work-stealing only).
	CrossShardLinks int
}

// StatsReporter is implemented by schedulers that expose activity counters.
// SchedStats must be safe to call concurrently with Run (the live-stats
// streamer and the metrics endpoint poll it mid-flight).
type StatsReporter interface {
	SchedStats() Stats
}

// counters is the shared mutable counter block behind Stats. It sits behind
// a pointer so value-typed schedulers (Pool) keep their copy semantics
// while Run and SchedStats still observe the same cells.
type counters struct {
	steals, stolen, parks, wakes, rescues, stalled atomic.Uint64
}

func (c *counters) snapshot(into *Stats) {
	if c == nil {
		return
	}
	into.Steals = c.steals.Load()
	into.StolenTasks = c.stolen.Load()
	into.Parks = c.parks.Load()
	into.Wakes = c.wakes.Load()
	into.Rescues = c.rescues.Load()
	into.StalledPasses = c.stalled.Load()
}
