package scheduler

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"raftlib/internal/core"
	"raftlib/internal/mapper"
	"raftlib/internal/ringbuffer"
	"raftlib/internal/trace"
)

// Task states for the park/wake protocol. A task is in exactly one deque
// iff its state is wsQueued; the transitions are CAS-only so a wake racing
// a park can never lose the kernel:
//
//	Parked --wake/rescue--> Queued --worker pop--> Running
//	Running --stall, CAS ok--> Parked
//	Running --hook fires mid-step--> RunningWake --park attempt--> Queued
//	Running --Stop/panic--> Done
//
// The RunningWake detour closes the check-then-park race: the ring hooks
// fire after the queue transition is published, so a transition that lands
// between a kernel's readiness check and its park CAS must observe state
// Running, flip it to RunningWake, and thereby turn the park into an
// immediate requeue.
const (
	wsParked int32 = iota
	wsQueued
	wsRunning
	wsRunningWake
	wsDone
)

// wsTask is one kernel's scheduling handle.
type wsTask struct {
	a    *core.Actor
	idx  int // index into Run's actors slice (error slot)
	home int // shard whose deque wakes re-enqueue to
	// hooked records whether at least one of the kernel's links carries a
	// wake hook; hook-less stallers rely on the watchdog alone and get the
	// short rescue grace. Atomic: dynamic link wiring flips it while the
	// watchdog reads.
	hooked   atomic.Bool
	state    atomic.Int32
	parkedAt atomic.Int64 // UnixNano of the park (watchdog grace base)
}

// Work-stealing tuning. The quantum matches Pool's so A17 compares
// scheduling policy, not burst size.
const (
	wsQuantum = 64
	// wsIdleRecheck bounds how long an idle worker sleeps between deque
	// sweeps when no wake token arrives (pure backstop; tokens are the
	// fast path).
	wsIdleRecheck = 2 * time.Millisecond
	// wsWatchdogTick is the rescue scan period; wsGraceBare is the parked
	// grace for kernels with no hooked links (their stalls have no wake
	// source, so the watchdog IS their scheduler), wsGraceHooked the much
	// longer grace for kernels whose links carry hooks (rescue only covers
	// the rare conservatively-missed SPSC edge and non-queue stall
	// reasons).
	wsWatchdogTick = 5 * time.Millisecond
	wsGraceBare    = time.Millisecond
	wsGraceHooked  = 10 * time.Millisecond
	// wsTraceSample emits every Nth park/wake to the trace bus (steals are
	// always emitted; parks and wakes are the hot path).
	wsTraceSample = 64
)

// WorkSteal is the sharded work-stealing scheduler: per-worker ready
// deques (LIFO local pop, batched FIFO steal), a park/wake protocol driven
// by ring-transition hooks instead of stall-sleep polling, and
// locality-aware shard assignment that keeps mapper-colocated
// producer/consumer pairs on one shard and widens the transfer batches of
// links that still cross shards. See DESIGN.md §Schedulers for the
// correctness argument.
type WorkSteal struct {
	// Workers is the number of worker goroutines / deque shards (defaults
	// to GOMAXPROCS).
	Workers int
	// StealBatch caps how many tasks one steal moves (defaults to 8; the
	// steal still takes at most half the victim's queue).
	StealBatch int

	// Counters is the shared stats block (created by NewWorkSteal; Run
	// creates it lazily for zero-value literals).
	Counters *counters

	// Engine attachments (optional; plain Run works without them, it just
	// schedules with round-robin placement and watchdog-only wakes).
	links    []*core.LinkInfo
	topo     mapper.Topology
	haveTopo bool
	tr       *trace.Recorder

	deques     []*stealDeque
	tokens     chan struct{}
	crossShard atomic.Int32
	nw         int

	// ready is closed once Run has built the deques, letting Spawn and
	// TakeLink from a rewrite transaction wait out the startup race.
	// Created by NewWorkSteal; the zero-value literal cannot spawn.
	ready chan struct{}

	// dynMu guards the dynamic run state: the live task list (watchdog
	// scan set, extended by Spawn), the unfinished-task count standing in
	// for a WaitGroup (Add racing Wait-at-zero is illegal on WaitGroup),
	// and the hooked-queue list Run detaches on the way out.
	dynMu    sync.Mutex
	pendCond *sync.Cond
	pendingN int
	stopped  bool
	tasks    []*wsTask
	hooked   []ringbuffer.WakeHooker

	errMu sync.Mutex
	errs  []error
}

// NewWorkSteal returns a work-stealing scheduler with the given worker
// count (0 = GOMAXPROCS).
func NewWorkSteal(workers int) *WorkSteal {
	return &WorkSteal{Workers: workers, Counters: &counters{}, ready: make(chan struct{})}
}

// AttachLinks hands the scheduler the engine's link table so it can install
// wake hooks and score cross-shard edges. Call before Run.
func (ws *WorkSteal) AttachLinks(links []*core.LinkInfo) { ws.links = links }

// AttachTopology hands the scheduler the mapper's topology so shard
// assignment can follow place locality. Call before Run.
func (ws *WorkSteal) AttachTopology(t mapper.Topology) { ws.topo, ws.haveTopo = t, true }

// AttachTrace points the scheduler at the engine's trace bus for Steal /
// Park / Wake events. Call before Run.
func (ws *WorkSteal) AttachTrace(r *trace.Recorder) { ws.tr = r }

// Name implements Scheduler.
func (ws *WorkSteal) Name() string { return fmt.Sprintf("worksteal-%d", ws.workers()) }

func (ws *WorkSteal) workers() int {
	if ws.Workers > 0 {
		return ws.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (ws *WorkSteal) stealBatch() int {
	if ws.StealBatch > 0 {
		return ws.StealBatch
	}
	return 8
}

// SchedStats implements StatsReporter. Safe concurrently with Run.
func (ws *WorkSteal) SchedStats() Stats {
	s := Stats{
		Scheduler:       ws.Name(),
		Workers:         ws.workers(),
		CrossShardLinks: int(ws.crossShard.Load()),
	}
	ws.Counters.snapshot(&s)
	return s
}

// Run implements Scheduler.
func (ws *WorkSteal) Run(actors []*core.Actor) error {
	if ws.Counters == nil {
		ws.Counters = &counters{}
	}
	nw := ws.workers()
	ws.nw = nw
	ws.pendCond = sync.NewCond(&ws.dynMu)
	ws.errs = make([]error, len(actors))

	// Initialize all actors up front (same discipline as Pool): failures
	// and virtual kernels finish immediately and never enter a deque.
	live := make([]*wsTask, 0, len(actors))
	for i, a := range actors {
		if a.Init != nil {
			if err := a.Init(); err != nil {
				ws.errs[i] = fmt.Errorf("kernel %q init: %w", a.Name, err)
				if a.Finish != nil {
					a.Finish()
				}
				a.Finished.Store(true)
				continue
			}
		}
		if a.Virtual {
			if a.Finish != nil {
				a.Finish()
			}
			a.Finished.Store(true)
			continue
		}
		live = append(live, &wsTask{a: a, idx: i})
	}
	if len(live) == 0 {
		ws.dynMu.Lock()
		ws.stopped = true
		ws.dynMu.Unlock()
		if ws.ready != nil {
			close(ws.ready)
		}
		return errors.Join(ws.errs...)
	}

	ws.placement(live, nw)
	for _, h := range ws.installHooks(live) {
		ws.hooked = append(ws.hooked, h)
	}
	defer func() {
		ws.dynMu.Lock()
		hooked := ws.hooked
		ws.dynMu.Unlock()
		for _, h := range hooked {
			h.SetWakeHook(nil)
		}
	}()

	ws.deques = make([]*stealDeque, nw)
	for i := range ws.deques {
		ws.deques[i] = newStealDeque(2 * len(live) / nw)
	}
	ws.tokens = make(chan struct{}, nw)
	done := make(chan struct{})

	ws.tasks = live
	ws.pendingN = len(live)
	for _, t := range live {
		t.state.Store(wsQueued)
		ws.deques[t.home].pushBottom(t)
	}
	for i := 0; i < nw; i++ {
		ws.token()
	}
	if ws.ready != nil {
		close(ws.ready) // Spawn/TakeLink may proceed from here
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ws.watchdog(done)
	}()
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws.worker(w, nw, done)
		}(w)
	}

	ws.dynMu.Lock()
	for ws.pendingN > 0 {
		ws.pendCond.Wait()
	}
	ws.stopped = true
	ws.dynMu.Unlock()
	close(done)
	wg.Wait()
	ws.errMu.Lock()
	defer ws.errMu.Unlock()
	return errors.Join(ws.errs...)
}

// taskDone retires one task from the pending count; the last one out
// wakes Run.
func (ws *WorkSteal) taskDone() {
	ws.dynMu.Lock()
	ws.pendingN--
	if ws.pendingN == 0 {
		ws.pendCond.Broadcast()
	}
	ws.dynMu.Unlock()
}

// recordErr files one task's terminal error: initial actors keep their
// positional slot, spawned actors append.
func (ws *WorkSteal) recordErr(t *wsTask, err error) {
	ws.errMu.Lock()
	if t.idx >= 0 && t.idx < len(ws.errs) {
		ws.errs[t.idx] = err
	} else {
		ws.errs = append(ws.errs, err)
	}
	ws.errMu.Unlock()
}

// Spawn implements Spawner: a rewrite transaction hands the running
// scheduler a freshly-built actor. The task joins a shard deque chosen
// round-robin (locality for dynamic kernels comes from the wake hooks,
// not placement) and is woken like any queued task. Blocks until Run has
// built the deques; fails once the execution has completed.
func (ws *WorkSteal) Spawn(a *core.Actor) error {
	if ws.ready == nil {
		return errors.New("scheduler: WorkSteal zero value cannot spawn (use NewWorkSteal)")
	}
	<-ws.ready
	t := &wsTask{a: a, idx: -1}
	ws.dynMu.Lock()
	if ws.stopped {
		ws.dynMu.Unlock()
		return errors.New("scheduler: execution already completed")
	}
	ws.pendingN++
	t.home = len(ws.tasks) % ws.nw
	ws.tasks = append(ws.tasks, t)
	ws.dynMu.Unlock()

	if a.Init != nil {
		if err := a.Init(); err != nil {
			err = fmt.Errorf("kernel %q init: %w", a.Name, err)
			ws.recordErr(t, err)
			t.state.Store(wsDone)
			if a.Finish != nil {
				a.Finish()
			}
			a.Finished.Store(true)
			ws.taskDone()
			return err
		}
	}
	if a.Virtual {
		t.state.Store(wsDone)
		if a.Finish != nil {
			a.Finish()
		}
		a.Finished.Store(true)
		ws.taskDone()
		return nil
	}
	t.state.Store(wsQueued)
	ws.deques[t.home].pushBottom(t)
	ws.token()
	return nil
}

// TakeLink wires a dynamically-added link's queue into the park/wake
// protocol, exactly as installHooks does for the initial link table. The
// hook is detached with the others when Run returns.
func (ws *WorkSteal) TakeLink(l *core.LinkInfo) {
	if ws.ready == nil {
		return
	}
	<-ws.ready
	h, ok := l.Queue.(ringbuffer.WakeHooker)
	if !ok {
		return
	}
	src, dst := ws.findTask(l.SrcActor), ws.findTask(l.DstActor)
	if src == nil && dst == nil {
		return
	}
	if src != nil {
		src.hooked.Store(true)
	}
	if dst != nil {
		dst.hooked.Store(true)
	}
	h.SetWakeHook(func(w ringbuffer.Wake) {
		switch w {
		case ringbuffer.WakeNotEmpty:
			if dst != nil {
				ws.wake(dst, false)
			}
		case ringbuffer.WakeNotFull:
			if src != nil {
				ws.wake(src, false)
			}
		default:
			if src != nil {
				ws.wake(src, false)
			}
			if dst != nil {
				ws.wake(dst, false)
			}
		}
	})
	ws.dynMu.Lock()
	ws.hooked = append(ws.hooked, h)
	ws.dynMu.Unlock()
}

// findTask locates a live task by engine actor ID (dynamic-link wiring
// only — not a hot path).
func (ws *WorkSteal) findTask(id int) *wsTask {
	if id < 0 {
		return nil
	}
	ws.dynMu.Lock()
	defer ws.dynMu.Unlock()
	for _, t := range ws.tasks {
		if t.a.ID == id {
			return t
		}
	}
	return nil
}

// placement assigns each task's home shard. With a topology attached the
// tasks are ordered by their mapper place's (node, socket, core) key and
// split into contiguous equal-count shards, so kernels the mapper
// co-located (it already minimizes latency-weighted cut cost, with
// cross-socket edges the expensive ones) land on the same shard and their
// links never cross deques; unmapped kernels keep construction order at
// the tail. Without a topology the same contiguous split over construction
// order degrades to blocked round-robin, which still keeps pipeline
// neighbours together. Cross-shard links are then counted and, because
// every element crossing them pays a handoff between workers, given an
// initial transfer-batch hint so they amortize the crossing.
func (ws *WorkSteal) placement(tasks []*wsTask, nw int) {
	ord := make([]*wsTask, len(tasks))
	copy(ord, tasks)
	if ws.haveTopo {
		places := ws.topo.Places
		key := func(t *wsTask) int {
			p := t.a.Place
			if p < 0 || p >= len(places) {
				return 1 << 30 // unmapped: after every real place
			}
			pl := places[p]
			return pl.Node<<20 | pl.Socket<<10 | pl.Core
		}
		sort.SliceStable(ord, func(i, j int) bool { return key(ord[i]) < key(ord[j]) })
	}
	for i, t := range ord {
		t.home = i * nw / len(ord)
	}

	byID := ws.tasksByID(tasks)
	cross := 0
	for _, l := range ws.links {
		src, dst := taskFor(byID, l.SrcActor), taskFor(byID, l.DstActor)
		if src == nil || dst == nil || src.home == dst.home {
			continue
		}
		cross++
		hint := 32
		if c := l.Queue.Cap() / 2; c < hint {
			hint = c
		}
		l.Batch.Hint(hint)
	}
	ws.crossShard.Store(int32(cross))
}

// tasksByID indexes live tasks by actor ID for link-endpoint lookup (the
// engine assigns dense IDs; hand-built test actors without links never
// reach the lookups).
func (ws *WorkSteal) tasksByID(tasks []*wsTask) []*wsTask {
	maxID := -1
	for _, t := range tasks {
		if t.a.ID > maxID {
			maxID = t.a.ID
		}
	}
	byID := make([]*wsTask, maxID+1)
	for _, t := range tasks {
		byID[t.a.ID] = t
	}
	return byID
}

func taskFor(byID []*wsTask, id int) *wsTask {
	if id < 0 || id >= len(byID) {
		return nil
	}
	return byID[id]
}

// installHooks wires every hook-capable link queue to the park/wake
// protocol: a push that makes a queue non-empty wakes the consumer, a pop
// that makes it non-full wakes the producer, close wakes both. Returns the
// hooked queues so Run can detach them on the way out.
func (ws *WorkSteal) installHooks(tasks []*wsTask) []ringbuffer.WakeHooker {
	byID := ws.tasksByID(tasks)
	var hooked []ringbuffer.WakeHooker
	for _, l := range ws.links {
		h, ok := l.Queue.(ringbuffer.WakeHooker)
		if !ok {
			continue
		}
		src, dst := taskFor(byID, l.SrcActor), taskFor(byID, l.DstActor)
		if src == nil && dst == nil {
			continue
		}
		if src != nil {
			src.hooked.Store(true)
		}
		if dst != nil {
			dst.hooked.Store(true)
		}
		h.SetWakeHook(func(w ringbuffer.Wake) {
			// Hook contract: no blocking, no queue re-entry. wake does
			// CAS + deque mutex + non-blocking token send only.
			switch w {
			case ringbuffer.WakeNotEmpty:
				if dst != nil {
					ws.wake(dst, false)
				}
			case ringbuffer.WakeNotFull:
				if src != nil {
					ws.wake(src, false)
				}
			default: // WakeClosed: both ends must observe ErrClosed
				if src != nil {
					ws.wake(src, false)
				}
				if dst != nil {
					ws.wake(dst, false)
				}
			}
		})
		hooked = append(hooked, h)
	}
	return hooked
}

// token nudges one idle worker awake. The channel holds Workers tokens, so
// a failed (full-channel) send proves every worker already has a wake
// pending — no enqueue can be lost while all workers park.
func (ws *WorkSteal) token() {
	select {
	case ws.tokens <- struct{}{}:
	default:
	}
}

// wake transitions a task toward Queued in response to a link transition
// (rescue=false) or a watchdog rescue (rescue=true). Safe from any
// goroutine, including under a ring's internal lock.
func (ws *WorkSteal) wake(t *wsTask, rescue bool) {
	for {
		switch t.state.Load() {
		case wsParked:
			if !t.state.CompareAndSwap(wsParked, wsQueued) {
				continue // raced another waker; re-inspect
			}
			var n uint64
			if rescue {
				n = ws.Counters.rescues.Add(1)
			} else {
				n = ws.Counters.wakes.Add(1)
			}
			ws.deques[t.home].pushBottom(t)
			ws.token()
			if ws.tr != nil && n%wsTraceSample == 1 {
				arg := int64(0)
				if rescue {
					arg = 1
				}
				ws.tr.Emit(trace.Event{Actor: int32(t.a.ID), Kind: trace.Wake, At: time.Now().UnixNano(), Arg: arg})
			}
			return
		case wsRunning:
			// Mid-step: leave a wake mark so the park attempt requeues.
			if t.state.CompareAndSwap(wsRunning, wsRunningWake) {
				return
			}
		default: // Queued, RunningWake, Done: nothing to add
			return
		}
	}
}

// park is the worker-side half of the protocol, called after a Stall or a
// failed readiness gate. parkedAt is stamped before the CAS so the
// watchdog never sees a fresh park with a stale timestamp.
func (ws *WorkSteal) park(t *wsTask, shard int) {
	t.parkedAt.Store(time.Now().UnixNano())
	if t.state.CompareAndSwap(wsRunning, wsParked) {
		n := ws.Counters.parks.Add(1)
		if ws.tr != nil && n%wsTraceSample == 1 {
			ws.tr.Emit(trace.Event{Actor: int32(t.a.ID), Kind: trace.Park, At: time.Now().UnixNano(), Prev: int64(shard)})
		}
		return
	}
	// A wake fired mid-step (state is RunningWake): the stall is already
	// stale, requeue immediately.
	t.state.Store(wsQueued)
	ws.deques[shard].pushBottom(t)
	ws.token()
}

// watchdog periodically rescues overdue parked tasks. It is the liveness
// backstop for kernels that stall without any hooked link (their stalls
// have no wake source) and for the SPSC detector's conservatively missed
// edges; with hooks installed it should almost never fire — Rescues
// spiking in a report means wakes are being lost.
func (ws *WorkSteal) watchdog(done chan struct{}) {
	tick := time.NewTicker(wsWatchdogTick)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
		}
		// Snapshot the task list: Spawn appends under dynMu, and an append
		// that reallocates leaves this snapshot intact.
		ws.dynMu.Lock()
		tasks := ws.tasks
		ws.dynMu.Unlock()
		now := time.Now().UnixNano()
		for _, t := range tasks {
			if t.state.Load() != wsParked {
				continue
			}
			grace := wsGraceBare
			if t.hooked.Load() {
				grace = wsGraceHooked
			}
			if now-t.parkedAt.Load() > int64(grace) {
				ws.wake(t, true)
			}
		}
	}
}

// worker is one shard's scheduling loop: drain the local deque bottom-up,
// steal when dry, park on the token channel when the whole system looks
// idle.
func (ws *WorkSteal) worker(id, nw int, done chan struct{}) {
	d := ws.deques[id]
	scratch := make([]*wsTask, ws.stealBatch())
	label := fmt.Sprintf("w%d", id)
	idle := time.NewTimer(wsIdleRecheck)
	defer idle.Stop()
	for {
		t := d.popBottom()
		if t == nil {
			t = ws.steal(id, nw, scratch, label)
		}
		if t == nil {
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(wsIdleRecheck)
			select {
			case <-done:
				return
			case <-ws.tokens:
			case <-idle.C:
			}
			continue
		}
		ws.runTask(t, id)
	}
}

// steal sweeps the other shards from a worker-specific offset and raids
// the first non-empty deque, moving up to StealBatch tasks (at most half
// the victim's queue) into the local deque.
func (ws *WorkSteal) steal(id, nw int, scratch []*wsTask, label string) *wsTask {
	d := ws.deques[id]
	for off := 1; off < nw; off++ {
		victim := (id + off) % nw
		n := ws.deques[victim].stealInto(d, len(scratch), scratch)
		if n == 0 {
			continue
		}
		ws.Counters.steals.Add(1)
		ws.Counters.stolen.Add(uint64(n))
		t := d.popBottom()
		if ws.tr != nil && t != nil {
			ws.tr.Emit(trace.Event{
				Actor: int32(t.a.ID), Kind: trace.Steal, At: time.Now().UnixNano(),
				Prev: int64(victim), Arg: int64(n), Label: label,
			})
		}
		return t
	}
	return nil
}

// runTask runs one quantum of a claimed task, then finishes, parks or
// requeues it.
func (ws *WorkSteal) runTask(t *wsTask, shard int) {
	if !t.state.CompareAndSwap(wsQueued, wsRunning) {
		return // defensive: a Done task can't re-enter a deque, but never double-run
	}
	finished := false
	defer func() {
		if r := recover(); r != nil {
			ws.recordErr(t, fmt.Errorf("kernel %q %w", t.a.Name, core.PanicError(r)))
			finished = true
		}
		if finished {
			t.state.Store(wsDone)
			if t.a.Finish != nil {
				t.a.Finish()
			}
			t.a.Finished.Store(true)
			ws.taskDone()
		}
	}()
	for i := 0; i < wsQuantum; i++ {
		// Rewrite gate: a held kernel blocks this worker only for the
		// port-rebind instant; a retired one finishes like a Stop.
		if t.a.Gate != nil && t.a.Gate.Poll() == core.GateStop {
			finished = true
			return
		}
		// Readiness gate, same as Pool's: a kernel that would block on a
		// port must not capture this worker — park it and let the link
		// transition bring it back.
		if t.a.Ready != nil && !t.a.Ready() {
			ws.park(t, shard)
			return
		}
		switch t.a.StepTimed() {
		case core.Proceed:
		case core.Stop:
			finished = true
			return
		case core.Stall:
			ws.park(t, shard)
			return
		}
	}
	// Quantum exhausted: requeue at the top of the shard that ran it (work
	// follows the thief) so peers already waiting go first.
	t.state.Store(wsQueued)
	ws.deques[shard].pushTop(t)
	ws.token()
}

var (
	_ Scheduler     = (*WorkSteal)(nil)
	_ StatsReporter = (*WorkSteal)(nil)
	_ Spawner       = (*WorkSteal)(nil)
	_ Spawner       = Goroutine{}
	_ Spawner       = Pool{}
)
