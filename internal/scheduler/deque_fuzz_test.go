package scheduler

import (
	"testing"
)

// modelDeque is the reference implementation FuzzStealDeque checks
// stealDeque against: a plain slice whose front is the top (oldest end)
// and whose back is the bottom (newest end).
type modelDeque []int

func (m *modelDeque) pushBottom(v int) { *m = append(*m, v) }
func (m *modelDeque) pushTop(v int)    { *m = append([]int{v}, *m...) }
func (m *modelDeque) popBottom() (int, bool) {
	if len(*m) == 0 {
		return 0, false
	}
	v := (*m)[len(*m)-1]
	*m = (*m)[:len(*m)-1]
	return v, true
}
func (m *modelDeque) stealInto(dst *modelDeque, max int) int {
	n := (len(*m) + 1) / 2
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		*dst = append(*dst, (*m)[i])
	}
	*m = (*m)[n:]
	return n
}

// FuzzStealDeque drives two stealDeques through a randomized interleaving
// of push/pop/steal operations, mirrored on model deques, and fails on any
// divergence in returned values, steal counts or final contents. Task
// identity is encoded in wsTask.idx.
func FuzzStealDeque(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 0, 3, 2, 1})
	f.Add([]byte{3, 3, 3, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 2, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		real := [2]*stealDeque{newStealDeque(4), newStealDeque(4)}
		model := [2]modelDeque{}
		scratch := make([]*wsTask, 4)
		next := 0
		for _, op := range ops {
			d := int(op>>2) & 1 // acting deque
			o := (d + 1) % 2    // the other one
			switch op & 3 {
			case 0: // pushBottom
				real[d].pushBottom(&wsTask{idx: next})
				model[d].pushBottom(next)
				next++
			case 1: // pushTop
				real[d].pushTop(&wsTask{idx: next})
				(&model[d]).pushTop(next)
				next++
			case 2: // popBottom
				rt := real[d].popBottom()
				mv, ok := (&model[d]).popBottom()
				if (rt != nil) != ok {
					t.Fatalf("popBottom presence mismatch: real=%v model ok=%v", rt, ok)
				}
				if rt != nil && rt.idx != mv {
					t.Fatalf("popBottom value: real=%d model=%d", rt.idx, mv)
				}
			case 3: // steal d -> other
				max := 1 + int(op>>3)&3
				rn := real[d].stealInto(real[o], max, scratch[:max])
				mn := (&model[d]).stealInto(&model[o], max)
				if rn != mn {
					t.Fatalf("steal moved %d, model moved %d", rn, mn)
				}
			}
		}
		// Drain both and compare full remaining contents in pop order.
		for d := 0; d < 2; d++ {
			for {
				rt := real[d].popBottom()
				mv, ok := (&model[d]).popBottom()
				if (rt != nil) != ok {
					t.Fatalf("drain presence mismatch on deque %d", d)
				}
				if rt == nil {
					break
				}
				if rt.idx != mv {
					t.Fatalf("drain value on deque %d: real=%d model=%d", d, rt.idx, mv)
				}
			}
		}
	})
}
