package scheduler

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"raftlib/internal/core"
)

// counterActor runs n steps then stops, tracking lifecycle calls.
func counterActor(name string, n int) (*core.Actor, *atomic.Int64, *atomic.Int64) {
	var steps, finished atomic.Int64
	remaining := int64(n)
	a := &core.Actor{
		Name: name,
		Step: func() core.Status {
			if remaining <= 0 {
				return core.Stop
			}
			remaining--
			steps.Add(1)
			return core.Proceed
		},
		Finish: func() { finished.Add(1) },
	}
	return a, &steps, &finished
}

func testSchedulerRunsAll(t *testing.T, s Scheduler) {
	t.Helper()
	var actors []*core.Actor
	var stepCounts []*atomic.Int64
	var finCounts []*atomic.Int64
	for i := 0; i < 5; i++ {
		a, st, fin := counterActor("k", 100)
		actors = append(actors, a)
		stepCounts = append(stepCounts, st)
		finCounts = append(finCounts, fin)
	}
	if err := s.Run(actors); err != nil {
		t.Fatal(err)
	}
	for i := range actors {
		if got := stepCounts[i].Load(); got != 100 {
			t.Fatalf("actor %d ran %d steps, want 100", i, got)
		}
		if finCounts[i].Load() != 1 {
			t.Fatalf("actor %d finished %d times", i, finCounts[i].Load())
		}
	}
}

func TestGoroutineRunsAll(t *testing.T) { testSchedulerRunsAll(t, Goroutine{}) }

func TestPoolRunsAll(t *testing.T) { testSchedulerRunsAll(t, Pool{Workers: 2}) }

func TestPoolFewerWorkersThanActors(t *testing.T) {
	testSchedulerRunsAll(t, Pool{Workers: 1})
}

func TestSchedulerNames(t *testing.T) {
	if (Goroutine{}).Name() != "goroutine-per-kernel" {
		t.Fatal((Goroutine{}).Name())
	}
	if !strings.HasPrefix((Pool{Workers: 3}).Name(), "pool-3") {
		t.Fatal((Pool{Workers: 3}).Name())
	}
	if (Pool{}).workers() < 1 {
		t.Fatal("default workers must be >= 1")
	}
}

func testPanicRecovered(t *testing.T, s Scheduler) {
	t.Helper()
	bad := &core.Actor{
		Name: "bomb",
		Step: func() core.Status { panic("boom") },
	}
	good, steps, _ := counterActor("good", 50)
	err := s.Run([]*core.Actor{bad, good})
	if err == nil || !strings.Contains(err.Error(), "bomb") {
		t.Fatalf("err = %v, want panic surfaced", err)
	}
	if steps.Load() != 50 {
		t.Fatalf("healthy actor ran %d steps", steps.Load())
	}
}

func TestGoroutinePanicRecovered(t *testing.T) { testPanicRecovered(t, Goroutine{}) }

func TestPoolPanicRecovered(t *testing.T) { testPanicRecovered(t, Pool{Workers: 2}) }

func testInitError(t *testing.T, s Scheduler) {
	t.Helper()
	var ran atomic.Bool
	var finished atomic.Bool
	a := &core.Actor{
		Name:   "noinit",
		Init:   func() error { return errors.New("init failed") },
		Step:   func() core.Status { ran.Store(true); return core.Stop },
		Finish: func() { finished.Store(true) },
	}
	err := s.Run([]*core.Actor{a})
	if err == nil || !strings.Contains(err.Error(), "init failed") {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() {
		t.Fatal("Step ran after failed Init")
	}
	if !finished.Load() {
		t.Fatal("Finish must still run for cleanup after failed Init")
	}
}

func TestGoroutineInitError(t *testing.T) { testInitError(t, Goroutine{}) }

func TestPoolInitError(t *testing.T) { testInitError(t, Pool{Workers: 2}) }

func testVirtualActorSkipped(t *testing.T, s Scheduler) {
	t.Helper()
	var stepped, finished atomic.Bool
	a := &core.Actor{
		Name:    "virtual",
		Virtual: true,
		Step:    func() core.Status { stepped.Store(true); return core.Stop },
		Finish:  func() { finished.Store(true) },
	}
	if err := s.Run([]*core.Actor{a}); err != nil {
		t.Fatal(err)
	}
	if stepped.Load() {
		t.Fatal("virtual actor must never step")
	}
	if !finished.Load() {
		t.Fatal("virtual actor must still finish (close outputs)")
	}
}

func TestGoroutineVirtualActor(t *testing.T) { testVirtualActorSkipped(t, Goroutine{}) }

func TestPoolVirtualActor(t *testing.T) { testVirtualActorSkipped(t, Pool{Workers: 1}) }

func testStallThenFinish(t *testing.T, s Scheduler) {
	t.Helper()
	stalls := 3
	a := &core.Actor{
		Name: "staller",
		Step: func() core.Status {
			if stalls > 0 {
				stalls--
				return core.Stall
			}
			return core.Stop
		},
	}
	if err := s.Run([]*core.Actor{a}); err != nil {
		t.Fatal(err)
	}
	if stalls != 0 {
		t.Fatalf("stalls remaining = %d", stalls)
	}
}

func TestGoroutineStall(t *testing.T) { testStallThenFinish(t, Goroutine{}) }

func TestPoolStall(t *testing.T) { testStallThenFinish(t, Pool{Workers: 1}) }

func TestServiceTimeRecorded(t *testing.T) {
	a, _, _ := counterActor("timed", 10)
	if err := (Goroutine{}).Run([]*core.Actor{a}); err != nil {
		t.Fatal(err)
	}
	if a.Service.Count() != 11 { // 10 Proceeds + final Stop
		t.Fatalf("service count = %d, want 11", a.Service.Count())
	}
	if a.Service.MeanNanos() < 0 {
		t.Fatal("negative mean service time")
	}
}

func TestEmptyActorList(t *testing.T) {
	if err := (Goroutine{}).Run(nil); err != nil {
		t.Fatal(err)
	}
	if err := (Pool{Workers: 2}).Run(nil); err != nil {
		t.Fatal(err)
	}
}
