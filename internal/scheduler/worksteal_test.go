package scheduler

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"raftlib/internal/core"
	"raftlib/internal/mapper"
	"raftlib/internal/ringbuffer"
	"raftlib/internal/trace"
)

func TestWorkStealRunsAll(t *testing.T)      { testSchedulerRunsAll(t, NewWorkSteal(2)) }
func TestWorkStealSingleWorker(t *testing.T) { testSchedulerRunsAll(t, NewWorkSteal(1)) }
func TestWorkStealPanicRecovered(t *testing.T) {
	testPanicRecovered(t, NewWorkSteal(2))
}
func TestWorkStealInitError(t *testing.T)    { testInitError(t, NewWorkSteal(2)) }
func TestWorkStealVirtualActor(t *testing.T) { testVirtualActorSkipped(t, NewWorkSteal(1)) }

// TestWorkStealStall exercises the watchdog path: the staller has no links,
// so nothing ever fires a wake hook and only rescues can finish it.
func TestWorkStealStall(t *testing.T) { testStallThenFinish(t, NewWorkSteal(1)) }

func TestWorkStealEmptyAndName(t *testing.T) {
	ws := NewWorkSteal(3)
	if err := ws.Run(nil); err != nil {
		t.Fatal(err)
	}
	if got := ws.Name(); got != "worksteal-3" {
		t.Fatal(got)
	}
	if NewWorkSteal(0).workers() < 1 {
		t.Fatal("default workers must be >= 1")
	}
}

func TestWorkStealStallCountsRescues(t *testing.T) {
	ws := NewWorkSteal(1)
	testStallThenFinish(t, ws)
	s := ws.SchedStats()
	if s.Parks == 0 {
		t.Fatalf("stats = %+v, want parks > 0", s)
	}
	if s.Rescues == 0 {
		t.Fatalf("stats = %+v, want watchdog rescues for a hook-less staller", s)
	}
	if s.Scheduler != "worksteal-1" || s.Workers != 1 {
		t.Fatalf("stats identity = %+v", s)
	}
}

// tryQueue is the typed surface the pipeline harness needs on top of the
// untyped Queue interface (both Ring[int] and SPSC[int] satisfy it).
type tryQueue interface {
	ringbuffer.Queue
	TryPush(v int, sig ringbuffer.Signal) (bool, error)
	TryPop() (int, ringbuffer.Signal, bool, error)
}

// pipelineActors builds a producer->consumer pair over one hooked queue:
// the producer pushes n elements (stalling when full) and the consumer pops
// them (stalling when empty), so completion requires park/wake to work in
// both directions.
func pipelineActors(t *testing.T, q tryQueue, n int) ([]*core.Actor, *atomic.Int64) {
	t.Helper()
	var got atomic.Int64
	sent := 0
	prod := &core.Actor{
		ID: 0, Name: "prod",
		Step: func() core.Status {
			if sent == n {
				return core.Stop
			}
			ok, err := q.TryPush(sent, ringbuffer.SigNone)
			if err != nil {
				t.Error(err)
				return core.Stop
			}
			if !ok {
				return core.Stall
			}
			sent++
			return core.Proceed
		},
		Finish: func() { q.Close() },
	}
	cons := &core.Actor{
		ID: 1, Name: "cons",
		Step: func() core.Status {
			_, _, ok, err := q.TryPop()
			if err != nil {
				return core.Stop // closed and drained
			}
			if !ok {
				return core.Stall
			}
			got.Add(1)
			return core.Proceed
		},
	}
	return []*core.Actor{prod, cons}, &got
}

func testWorkStealParkWake(t *testing.T, q tryQueue) {
	t.Helper()
	const n = 5000
	actors, got := pipelineActors(t, q, n)
	ws := NewWorkSteal(2)
	ws.AttachLinks([]*core.LinkInfo{{ID: 0, Name: "prod->cons", Queue: q, SrcActor: 0, DstActor: 1}})
	if err := ws.Run(actors); err != nil {
		t.Fatal(err)
	}
	if got.Load() != n {
		t.Fatalf("consumed %d, want %d", got.Load(), n)
	}
	s := ws.SchedStats()
	if s.Parks == 0 || s.Wakes == 0 {
		t.Fatalf("stats = %+v, want parks and link wakes on a tiny queue", s)
	}
}

func TestWorkStealParkWakeRing(t *testing.T) {
	testWorkStealParkWake(t, ringbuffer.NewRing[int](4))
}

func TestWorkStealParkWakeSPSC(t *testing.T) {
	testWorkStealParkWake(t, ringbuffer.NewSPSC[int](4))
}

func TestWorkStealPlacementLocality(t *testing.T) {
	// Two chains mapped to different sockets must land on different shards
	// with zero cross-shard links; scrambled construction order must not
	// matter because placement sorts by place key.
	topo := mapper.NewLocal(4, 2)
	qa, qb := ringbuffer.NewRing[int](8), ringbuffer.NewRing[int](8)
	mk := func(id, place int, name string) *core.Actor {
		return &core.Actor{ID: id, Name: name, Place: place,
			Step: func() core.Status { return core.Stop }}
	}
	// Socket of place p in NewLocal(4, 2): places 0,1 socket 0; 2,3 socket 1.
	actors := []*core.Actor{
		mk(0, 0, "a-src"), mk(1, 3, "b-src"), mk(2, 1, "a-dst"), mk(3, 2, "b-dst"),
	}
	links := []*core.LinkInfo{
		{ID: 0, Queue: qa, SrcActor: 0, DstActor: 2, Batch: &core.BatchControl{}},
		{ID: 1, Queue: qb, SrcActor: 1, DstActor: 3, Batch: &core.BatchControl{}},
	}
	ws := NewWorkSteal(2)
	ws.AttachLinks(links)
	ws.AttachTopology(topo)
	if err := ws.Run(actors); err != nil {
		t.Fatal(err)
	}
	if got := ws.SchedStats().CrossShardLinks; got != 0 {
		t.Fatalf("cross-shard links = %d, want 0 (socket-split chains)", got)
	}
	if links[0].Batch.Get() != 0 {
		t.Fatal("co-scheduled link must not receive a cross-shard batch hint")
	}
}

func TestWorkStealCrossShardBatchHint(t *testing.T) {
	// One chain forced across both shards: the link should be scored
	// cross-shard and given an initial batch hint, but never override a pin.
	topo := mapper.NewLocal(2, 2)
	qa, qb := ringbuffer.NewRing[int](64), ringbuffer.NewRing[int](64)
	mk := func(id, place int) *core.Actor {
		return &core.Actor{ID: id, Place: place, Name: "k",
			Step: func() core.Status { return core.Stop }}
	}
	pinned := &core.BatchControl{}
	pinned.Pin(1)
	links := []*core.LinkInfo{
		{ID: 0, Queue: qa, SrcActor: 0, DstActor: 1, Batch: &core.BatchControl{}},
		{ID: 1, Queue: qb, SrcActor: 0, DstActor: 1, Batch: pinned},
	}
	ws := NewWorkSteal(2)
	ws.AttachLinks(links)
	ws.AttachTopology(topo)
	if err := ws.Run([]*core.Actor{mk(0, 0), mk(1, 1)}); err != nil {
		t.Fatal(err)
	}
	if got := ws.SchedStats().CrossShardLinks; got != 2 {
		t.Fatalf("cross-shard links = %d, want 2", got)
	}
	if got := links[0].Batch.Get(); got != 32 {
		t.Fatalf("cross-shard batch hint = %d, want 32 (cap 64 / 2 floor 32)", got)
	}
	if got := links[1].Batch.Get(); got != 1 {
		t.Fatalf("pinned batch = %d, want untouched 1", got)
	}
}

func TestWorkStealStealsUnderImbalance(t *testing.T) {
	// All work born on shard 0 (every place the same): with 4 workers the
	// other shards can only run by stealing.
	topo := mapper.NewLocal(1, 1)
	var actors []*core.Actor
	for i := 0; i < 64; i++ {
		a, _, _ := counterActor("k", 2000)
		a.ID = i
		a.Place = 0
		actors = append(actors, a)
	}
	ws := NewWorkSteal(4)
	ws.StealBatch = 4
	ws.AttachTopology(topo)
	rec := trace.NewRecorder(1024)
	ws.AttachTrace(rec)
	if err := ws.Run(actors); err != nil {
		t.Fatal(err)
	}
	s := ws.SchedStats()
	if s.Steals == 0 || s.StolenTasks == 0 {
		t.Fatalf("stats = %+v, want steals under single-shard load", s)
	}
	found := false
	for _, e := range rec.Events() {
		if e.Kind == trace.Steal {
			found = true
			if !strings.HasPrefix(e.Label, "w") || e.Arg < 1 {
				t.Fatalf("malformed steal event %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("no Steal trace events emitted")
	}
}

func TestWorkStealWakeClosedUnblocksConsumer(t *testing.T) {
	// A consumer parked on an empty queue must be woken by Close alone.
	q := ringbuffer.NewRing[int](4)
	var done atomic.Bool
	cons := &core.Actor{ID: 0, Name: "cons",
		Step: func() core.Status {
			_, _, ok, err := q.TryPop()
			if err != nil {
				done.Store(true)
				return core.Stop
			}
			if !ok {
				return core.Stall
			}
			return core.Proceed
		}}
	ws := NewWorkSteal(1)
	ws.AttachLinks([]*core.LinkInfo{{ID: 0, Queue: q, SrcActor: -1, DstActor: 0}})
	errc := make(chan error, 1)
	go func() { errc <- ws.Run([]*core.Actor{cons}) }()
	time.Sleep(20 * time.Millisecond) // let the consumer park
	q.Close()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never woke after Close")
	}
	if !done.Load() {
		t.Fatal("consumer did not observe ErrClosed")
	}
}

func TestPoolStalledPassesCounted(t *testing.T) {
	p := Pool{Workers: 1, Counters: &counters{}}
	testStallThenFinish(t, p)
	if s := p.SchedStats(); s.StalledPasses == 0 {
		t.Fatalf("stats = %+v, want stalled passes counted", s)
	}
}
