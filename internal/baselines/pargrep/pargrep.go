// Package pargrep models the paper's GNU Parallel + GNU grep baseline
// (§5): the corpus is cut into blocks by a single-threaded dispatcher and
// each block is handed to a freshly spawned grep process.
//
// Substitution note (DESIGN.md §2): we cannot ship GNU grep 2.20 and GNU
// Parallel 2014.10.22, so the baseline reproduces their *execution model*
// in-process, keeping the two properties that shape the paper's Figure 10
// curve:
//
//   - a serial dispatcher that — exactly like GNU Parallel's --pipe mode —
//     reads the input itself, searches each block for a record (newline)
//     boundary, and stages a private copy of the block for the child
//     process's stdin;
//   - a per-job process-spawn cost (fork/exec/pipe setup) paid for every
//     block, overlapped across workers but never amortized.
//
// The scan itself uses a memchr-accelerated skip loop (bytes.IndexByte is
// assembly-optimized in Go) so the single-core number is excellent — just
// as the paper found for plain GNU grep — while the wrapper overheads keep
// parallel scaling poor.
package pargrep

import (
	"bytes"
	"time"
)

// Config tunes the execution model.
type Config struct {
	// Jobs is the worker (concurrent grep process) count.
	Jobs int
	// BlockSize is the dispatcher's block size (GNU Parallel's --block,
	// default 1 MiB).
	BlockSize int
	// SpawnOverhead is the per-job process start cost (default 4ms —
	// fork+exec+dynamic linking of grep on the paper-era machine).
	SpawnOverhead time.Duration
	// DisableSpawnCost turns the spawn sleep off (for unit tests).
	DisableSpawnCost bool
}

func (c *Config) fill() {
	if c.Jobs < 1 {
		c.Jobs = 1
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 1 << 20
	}
	if c.SpawnOverhead <= 0 {
		c.SpawnOverhead = 4 * time.Millisecond
	}
}

// Result summarizes one run.
type Result struct {
	Hits    int
	Elapsed time.Duration
	Jobs    int
	Blocks  int
}

// Throughput returns corpus bytes per second.
func (r Result) Throughput(corpusBytes int) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(corpusBytes) / r.Elapsed.Seconds()
}

// GrepSerial is plain single-process grep -c: one pass over the whole
// corpus with the skip-loop scanner. This is the paper's impressive
// single-threaded GNU grep number (~1.2 GB/s on their machine).
func GrepSerial(corpusData, pattern []byte) Result {
	start := time.Now()
	hits := scan(corpusData, pattern)
	return Result{Hits: hits, Elapsed: time.Since(start), Jobs: 1, Blocks: 1}
}

// Run executes the GNU Parallel model: serial dispatcher, per-block spawn
// cost, cfg.Jobs concurrent scanners.
func Run(corpusData, pattern []byte, cfg Config) Result {
	cfg.fill()
	start := time.Now()

	type block struct {
		data  []byte // staged private copy, as --pipe writes to child stdin
		valid int    // matches starting at [0, valid) belong to this block
	}
	jobs := make(chan block, cfg.Jobs)
	results := make(chan int, cfg.Jobs)

	for w := 0; w < cfg.Jobs; w++ {
		go func() {
			total := 0
			for b := range jobs {
				if !cfg.DisableSpawnCost {
					time.Sleep(cfg.SpawnOverhead) // fork+exec of a grep process
				}
				total += scanBounded(b.data, pattern, b.valid)
			}
			results <- total
		}()
	}

	// The dispatcher: GNU Parallel's single perl process. It must look at
	// the data to find record boundaries and it writes each block into the
	// child's pipe — a serial read + copy of the entire corpus.
	overlap := len(pattern) - 1
	blocks := 0
	for off := 0; off < len(corpusData); {
		end := off + cfg.BlockSize
		if end >= len(corpusData) {
			end = len(corpusData)
		} else {
			// Cut at a record (line) boundary like --pipe does.
			if nl := bytes.LastIndexByte(corpusData[off:end], '\n'); nl > 0 {
				end = off + nl + 1
			}
		}
		scanEnd := end + overlap
		if scanEnd > len(corpusData) {
			scanEnd = len(corpusData)
		}
		// Stage a private copy for the child's stdin (the pipe write). The
		// overlap suffix lets boundary-straddling matches complete; matches
		// that *start* in the overlap are owned by the next block.
		staged := make([]byte, scanEnd-off)
		copy(staged, corpusData[off:scanEnd])
		jobs <- block{data: staged, valid: end - off}
		blocks++
		off = end
	}
	close(jobs)

	hits := 0
	for w := 0; w < cfg.Jobs; w++ {
		hits += <-results
	}
	return Result{Hits: hits, Elapsed: time.Since(start), Jobs: cfg.Jobs, Blocks: blocks}
}

// scan counts all pattern occurrences using the stdlib's
// assembly-accelerated substring search — the closest Go analogue to GNU
// grep's memchr-driven Boyer-Moore loop.
func scan(data, pattern []byte) int {
	return scanBounded(data, pattern, len(data))
}

// scanBounded counts occurrences whose start offset is below valid.
func scanBounded(data, pattern []byte, valid int) int {
	n := 0
	for off := 0; off < valid; {
		i := bytes.Index(data[off:], pattern)
		if i < 0 || off+i >= valid {
			return n
		}
		n++
		off += i + 1
	}
	return n
}
