package pargrep

import (
	"bytes"
	"testing"
	"time"

	"raftlib/internal/corpus"
)

func testCorpus(t *testing.T, size int) ([]byte, int) {
	t.Helper()
	data := corpus.Generate(corpus.Spec{Bytes: size, Seed: 17})
	want := bytes.Count(data, []byte(corpus.DefaultPattern))
	if want == 0 {
		t.Fatal("corpus contains no hits")
	}
	return data, want
}

func TestGrepSerialCounts(t *testing.T) {
	data, want := testCorpus(t, 1<<20)
	res := GrepSerial(data, []byte(corpus.DefaultPattern))
	if res.Hits != want {
		t.Fatalf("serial grep found %d, want %d", res.Hits, want)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time recorded")
	}
}

func TestRunMatchesSerialAcrossJobCounts(t *testing.T) {
	data, want := testCorpus(t, 2<<20)
	for _, jobs := range []int{1, 2, 4, 8} {
		res := Run(data, []byte(corpus.DefaultPattern), Config{
			Jobs: jobs, BlockSize: 128 << 10, DisableSpawnCost: true,
		})
		if res.Hits != want {
			t.Fatalf("jobs=%d: found %d, want %d", jobs, res.Hits, want)
		}
		if res.Jobs != jobs {
			t.Fatalf("jobs=%d: result reports %d", jobs, res.Jobs)
		}
		if res.Blocks < 2 {
			t.Fatalf("jobs=%d: only %d blocks", jobs, res.Blocks)
		}
	}
}

func TestRunBoundaryStraddlingMatches(t *testing.T) {
	// Construct a corpus where the pattern straddles every block boundary.
	pattern := []byte("needle")
	var data []byte
	for i := 0; i < 100; i++ {
		data = append(data, bytes.Repeat([]byte("x"), 1021)...)
		data = append(data, pattern...)
	}
	want := bytes.Count(data, pattern)
	res := Run(data, pattern, Config{Jobs: 3, BlockSize: 1024, DisableSpawnCost: true})
	if res.Hits != want {
		t.Fatalf("found %d, want %d (boundary matches lost or double-counted)", res.Hits, want)
	}
}

func TestRunTinyCorpus(t *testing.T) {
	res := Run([]byte("needle"), []byte("needle"), Config{Jobs: 4, DisableSpawnCost: true})
	if res.Hits != 1 {
		t.Fatalf("hits = %d, want 1", res.Hits)
	}
}

func TestRunNoMatches(t *testing.T) {
	res := Run(bytes.Repeat([]byte("a"), 1<<16), []byte("zz"), Config{Jobs: 2, DisableSpawnCost: true})
	if res.Hits != 0 {
		t.Fatalf("hits = %d, want 0", res.Hits)
	}
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	cfg.fill()
	if cfg.Jobs != 1 || cfg.BlockSize != 1<<20 || cfg.SpawnOverhead <= 0 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestThroughput(t *testing.T) {
	r := Result{Elapsed: 0}
	if r.Throughput(100) != 0 {
		t.Fatal("zero elapsed must yield zero throughput")
	}
	data, _ := testCorpus(t, 1<<20)
	res := GrepSerial(data, []byte(corpus.DefaultPattern))
	if res.Throughput(len(data)) <= 0 {
		t.Fatal("expected positive throughput")
	}
}

func TestSpawnOverheadSlowsSmallJobs(t *testing.T) {
	// With spawn cost enabled and 1 job, wall time must be at least
	// blocks × overhead; this pins the cost model the Fig. 10 curve
	// depends on.
	data, _ := testCorpus(t, 1<<20)
	cfg := Config{Jobs: 1, BlockSize: 256 << 10, SpawnOverhead: 2 * time.Millisecond}
	res := Run(data, []byte(corpus.DefaultPattern), cfg)
	minElapsed := time.Duration(res.Blocks) * cfg.SpawnOverhead
	if res.Elapsed < minElapsed {
		t.Fatalf("elapsed %v < blocks×overhead %v", res.Elapsed, minElapsed)
	}
}
