package sparklet

import (
	"bytes"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"raftlib/internal/corpus"
)

func TestParallelizeCollect(t *testing.T) {
	ctx := NewContext(4)
	data := make([]int64, 1000)
	for i := range data {
		data[i] = int64(i)
	}
	rdd := Parallelize(ctx, data, 7)
	if rdd.Partitions() != 7 {
		t.Fatalf("partitions = %d, want 7", rdd.Partitions())
	}
	got, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, data) {
		t.Fatalf("collect mismatch: %d records", len(got))
	}
	m := ctx.Metrics()
	if m.TasksRun != 7 || m.StagesRun != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.BytesMoved == 0 {
		t.Fatal("no serialized bytes recorded")
	}
}

func TestParallelizeEdgeCases(t *testing.T) {
	ctx := NewContext(2)
	// More partitions than records.
	rdd := Parallelize(ctx, []int{1, 2}, 10)
	got, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("got %v", got)
	}
	// Empty data.
	empty, err := Parallelize(ctx, []int(nil), 3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("empty collect = %v", empty)
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := NewContext(3)
	rdd := Parallelize(ctx, []int{1, 2, 3, 4, 5, 6}, 3)
	doubled := Map(rdd, func(v int) int { return v * 2 })
	evens := Filter(doubled, func(v int) bool { return v%4 == 0 })
	expanded := FlatMap(evens, func(v int) []int { return []int{v, v + 1} })
	got, err := expanded.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 5, 8, 9, 12, 13}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestCountAndReduce(t *testing.T) {
	ctx := NewContext(4)
	data := make([]int64, 101)
	for i := range data {
		data[i] = int64(i)
	}
	rdd := Parallelize(ctx, data, 8)
	n, err := rdd.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 101 {
		t.Fatalf("count = %d", n)
	}
	sum, err := Reduce(rdd, func(a, b int64) int64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 5050 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestReduceEmptyErrors(t *testing.T) {
	ctx := NewContext(2)
	if _, err := Reduce(Parallelize(ctx, []int(nil), 2), func(a, b int) int { return a + b }); err == nil {
		t.Fatal("reduce of empty RDD must error")
	}
}

func TestTextFileLinesRoundTrip(t *testing.T) {
	ctx := NewContext(4)
	data := []byte("alpha\nbeta\ngamma\ndelta\nepsilon")
	lines, err := TextFile(ctx, data, 3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	if !reflect.DeepEqual(lines, want) {
		t.Fatalf("lines = %v", lines)
	}
}

func TestTextFilePartitionBoundariesLoseNothing(t *testing.T) {
	f := func(seed uint32, parts uint8) bool {
		ctx := NewContext(4)
		ctx.DisableSerialization = true
		data := corpus.Generate(corpus.Spec{Bytes: 10_000, Seed: uint64(seed) + 1})
		p := int(parts%8) + 1
		lines, err := TextFile(ctx, data, p).Collect()
		if err != nil {
			return false
		}
		joined := []byte{}
		for i, l := range lines {
			joined = append(joined, l...)
			if i < len(lines)-1 {
				joined = append(joined, '\n')
			}
		}
		// Allow for trailing newline normalization.
		return bytes.Equal(bytes.TrimRight(joined, "\n"), bytes.TrimRight(data, "\n"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMapPartitions(t *testing.T) {
	ctx := NewContext(2)
	rdd := Parallelize(ctx, []int{1, 2, 3, 4}, 2)
	sums := MapPartitions(rdd, func(_ int, in []int) []int {
		s := 0
		for _, v := range in {
			s += v
		}
		return []int{s}
	})
	got, err := sums.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("partition sums = %v", got)
	}
}

func TestReduceByKey(t *testing.T) {
	ctx := NewContext(4)
	var pairs []Pair[string, int64]
	for i := 0; i < 100; i++ {
		pairs = append(pairs, Pair[string, int64]{Key: []string{"a", "b", "c"}[i%3], Val: 1})
	}
	rdd := Parallelize(ctx, pairs, 8)
	got, err := ReduceByKey(rdd, func(a, b int64) int64 { return a + b }, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"a": 34, "b": 33, "c": 33}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if ctx.Metrics().StagesRun < 2 {
		t.Fatalf("shuffle should run >= 2 stages, ran %d", ctx.Metrics().StagesRun)
	}
}

func TestTextSearchBMCounts(t *testing.T) {
	data := corpus.Generate(corpus.Spec{Bytes: 1 << 20, Seed: 99})
	want := int64(bytes.Count(data, []byte(corpus.DefaultPattern)))
	for _, par := range []int{1, 2, 4} {
		ctx := NewContext(par)
		res, err := TextSearchBM(ctx, data, []byte(corpus.DefaultPattern))
		if err != nil {
			t.Fatal(err)
		}
		if res.Hits != want {
			t.Fatalf("parallelism %d: hits = %d, want %d", par, res.Hits, want)
		}
		if res.Throughput(len(data)) <= 0 {
			t.Fatal("no throughput")
		}
	}
}

func TestTextSearchBMBadPattern(t *testing.T) {
	if _, err := TextSearchBM(NewContext(1), []byte("x"), nil); err == nil {
		t.Fatal("empty pattern must error")
	}
}

func TestNewContextClamp(t *testing.T) {
	if NewContext(0).Parallelism != 1 {
		t.Fatal("parallelism must clamp to 1")
	}
}

func TestCacheComputesOnce(t *testing.T) {
	ctx := NewContext(2)
	ctx.DisableSerialization = true
	var computes atomic.Int64
	base := &RDD[int]{
		ctx:   ctx,
		parts: 2,
		compute: func(p int) []int {
			computes.Add(1)
			return []int{p}
		},
	}
	cached := base.Cache()
	if _, err := cached.Collect(); err != nil {
		t.Fatal(err)
	}
	if _, err := cached.Count(); err != nil {
		t.Fatal(err)
	}
	if _, err := Map(cached, func(v int) int { return v * 2 }).Collect(); err != nil {
		t.Fatal(err)
	}
	if got := computes.Load(); got != 2 {
		t.Fatalf("base computed %d times, want 2 (once per partition)", got)
	}
}

func TestSerializationFailureSurfaces(t *testing.T) {
	ctx := NewContext(1)
	rdd := Parallelize(ctx, []func(){func() {}}, 1) // gob cannot encode funcs
	if _, err := rdd.Collect(); err == nil {
		t.Fatal("unencodable task result must error")
	}
	// With serialization off, the same job succeeds.
	ctx2 := NewContext(1)
	ctx2.DisableSerialization = true
	got, err := Parallelize(ctx2, []func(){func() {}}, 1).Collect()
	if err != nil || len(got) != 1 {
		t.Fatalf("unserialized collect = (%d, %v)", len(got), err)
	}
}
