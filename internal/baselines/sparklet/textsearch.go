package sparklet

import (
	"time"

	"raftlib/internal/search"
)

// SearchResult summarizes one TextSearchBM run.
type SearchResult struct {
	Hits    int64
	Elapsed time.Duration
}

// Throughput returns corpus bytes per second.
func (r SearchResult) Throughput(corpusBytes int) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(corpusBytes) / r.Elapsed.Seconds()
}

// TextSearchBM is the paper's Spark benchmark job: read the corpus as an
// RDD of lines, run Boyer-Moore over each record, and reduce the match
// counts. Patterns containing a newline cannot match a line-records job,
// exactly as in the original.
func TextSearchBM(ctx *Context, corpusData, pattern []byte) (SearchResult, error) {
	bm, err := search.NewBoyerMoore(pattern)
	if err != nil {
		return SearchResult{}, err
	}
	start := time.Now()
	lines := TextFile(ctx, corpusData, 4*ctx.Parallelism)
	counts := Map(lines, func(line string) int64 {
		// Record-at-a-time processing: the string→bytes view is free in
		// Go, but the per-record closure dispatch and the earlier string
		// materialization are the JVM-ish costs this baseline models.
		return int64(bm.Count([]byte(line)))
	})
	total, err := Reduce(counts, func(a, b int64) int64 { return a + b })
	if err != nil {
		return SearchResult{}, err
	}
	return SearchResult{Hits: total, Elapsed: time.Since(start)}, nil
}
