// Package sparklet is a from-scratch miniature of the Apache Spark
// execution model, built as the paper's §5 comparison baseline ("a text
// matching application implemented using the Boyer-Moore algorithm
// implemented in Scala running on the popular Apache Spark framework").
//
// It reproduces the pieces of Spark that shape the paper's Figure 10
// curve:
//
//   - RDDs: immutable, partitioned, lazily evaluated datasets with a
//     lineage of narrow transformations (map / filter / flatMap /
//     mapPartitions);
//   - a driver that turns an action (collect / count / reduce) into a
//     stage of one task per partition;
//   - an executor pool of Parallelism workers running tasks concurrently —
//     this is what gives Spark its near-linear scaling;
//   - per-task result serialization (encoding/gob) between executor and
//     driver, and record-at-a-time iterator processing inside map — the
//     honest stand-ins for the JVM/serialization overheads that cap
//     Spark's per-core throughput below a native pipeline's.
//
// Wide (shuffle) dependencies are implemented for reduceByKey-style
// workloads via GroupByKey, enough to exercise a two-stage DAG.
package sparklet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
)

// Context owns the executor pool; it is the analogue of SparkContext.
type Context struct {
	// Parallelism is the executor (worker) count.
	Parallelism int
	// DisableSerialization skips the gob encode/decode of task results
	// (for unit tests isolating logic from cost model).
	DisableSerialization bool

	tasksRun   atomic.Int64
	bytesMoved atomic.Int64
	stagesRun  atomic.Int64
}

// NewContext returns a context with the given executor count (min 1).
func NewContext(parallelism int) *Context {
	if parallelism < 1 {
		parallelism = 1
	}
	return &Context{Parallelism: parallelism}
}

// Metrics reports scheduler counters for tests and reports.
type Metrics struct {
	TasksRun   int64
	StagesRun  int64
	BytesMoved int64
}

// Metrics returns a snapshot of the context's counters.
func (c *Context) Metrics() Metrics {
	return Metrics{
		TasksRun:   c.tasksRun.Load(),
		StagesRun:  c.stagesRun.Load(),
		BytesMoved: c.bytesMoved.Load(),
	}
}

// RDD is an immutable, partitioned dataset defined by its lineage: compute
// materializes one partition on demand.
type RDD[T any] struct {
	ctx     *Context
	parts   int
	compute func(p int) []T
}

// Ctx returns the owning context.
func (r *RDD[T]) Ctx() *Context { return r.ctx }

// Partitions returns the partition count.
func (r *RDD[T]) Partitions() int { return r.parts }

// Parallelize distributes a slice across numParts partitions.
func Parallelize[T any](ctx *Context, data []T, numParts int) *RDD[T] {
	if numParts < 1 {
		numParts = ctx.Parallelism
	}
	if numParts > len(data) && len(data) > 0 {
		numParts = len(data)
	}
	if numParts < 1 {
		numParts = 1
	}
	return &RDD[T]{
		ctx:   ctx,
		parts: numParts,
		compute: func(p int) []T {
			lo := p * len(data) / numParts
			hi := (p + 1) * len(data) / numParts
			return data[lo:hi]
		},
	}
}

// TextFile exposes an in-memory corpus as an RDD of lines, the analogue of
// sc.textFile on the paper's RAM-disk corpus. Partition boundaries are
// chosen on the raw bytes at the driver (cheap); the expensive
// line-splitting — which allocates one string per record, Spark's
// fundamental record-at-a-time representation — happens inside each task,
// in parallel.
func TextFile(ctx *Context, data []byte, numParts int) *RDD[string] {
	if numParts < 1 {
		numParts = ctx.Parallelism
	}
	// Precompute partition byte ranges aligned to line boundaries.
	bounds := make([]int, numParts+1)
	for i := 1; i < numParts; i++ {
		guess := i * len(data) / numParts
		if nl := bytes.IndexByte(data[guess:], '\n'); nl >= 0 {
			bounds[i] = guess + nl + 1
		} else {
			bounds[i] = len(data)
		}
	}
	bounds[numParts] = len(data)
	for i := 1; i <= numParts; i++ { // monotone after newline snapping
		if bounds[i] < bounds[i-1] {
			bounds[i] = bounds[i-1]
		}
	}
	return &RDD[string]{
		ctx:   ctx,
		parts: numParts,
		compute: func(p int) []string {
			chunk := data[bounds[p]:bounds[p+1]]
			// Record materialization: one string per line.
			lines := make([]string, 0, 1+len(chunk)/32)
			for len(chunk) > 0 {
				nl := bytes.IndexByte(chunk, '\n')
				if nl < 0 {
					lines = append(lines, string(chunk))
					break
				}
				lines = append(lines, string(chunk[:nl]))
				chunk = chunk[nl+1:]
			}
			return lines
		},
	}
}

// Map applies f to every record (narrow dependency, fused into the parent's
// stage).
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	return &RDD[U]{
		ctx:   r.ctx,
		parts: r.parts,
		compute: func(p int) []U {
			in := r.compute(p)
			out := make([]U, len(in))
			for i, v := range in {
				out[i] = f(v)
			}
			return out
		},
	}
}

// Filter keeps records satisfying pred (narrow).
func Filter[T any](r *RDD[T], pred func(T) bool) *RDD[T] {
	return &RDD[T]{
		ctx:   r.ctx,
		parts: r.parts,
		compute: func(p int) []T {
			in := r.compute(p)
			out := in[:0:0]
			for _, v := range in {
				if pred(v) {
					out = append(out, v)
				}
			}
			return out
		},
	}
}

// FlatMap applies f and concatenates the results (narrow).
func FlatMap[T, U any](r *RDD[T], f func(T) []U) *RDD[U] {
	return &RDD[U]{
		ctx:   r.ctx,
		parts: r.parts,
		compute: func(p int) []U {
			var out []U
			for _, v := range r.compute(p) {
				out = append(out, f(v)...)
			}
			return out
		},
	}
}

// MapPartitions applies f to whole partitions (narrow; the Spark idiom for
// amortizing per-record costs).
func MapPartitions[T, U any](r *RDD[T], f func(part int, in []T) []U) *RDD[U] {
	return &RDD[U]{
		ctx:     r.ctx,
		parts:   r.parts,
		compute: func(p int) []U { return f(p, r.compute(p)) },
	}
}

// Cache returns an RDD that materializes each partition at most once and
// serves subsequent computations from memory — Spark's persist(). Lineage
// above the cache is re-evaluated only on the first action touching each
// partition.
func (r *RDD[T]) Cache() *RDD[T] {
	type slot struct {
		once sync.Once
		data []T
	}
	slots := make([]slot, r.parts)
	return &RDD[T]{
		ctx:   r.ctx,
		parts: r.parts,
		compute: func(p int) []T {
			s := &slots[p]
			s.once.Do(func() { s.data = r.compute(p) })
			return s.data
		},
	}
}

// runStage executes one task per partition on the executor pool and
// returns the per-partition results, modeling executor→driver result
// serialization with a gob round trip.
func runStage[T any](r *RDD[T]) ([][]T, error) {
	ctx := r.ctx
	ctx.stagesRun.Add(1)
	results := make([][]T, r.parts)
	errs := make([]error, r.parts)
	sem := make(chan struct{}, ctx.Parallelism)
	var wg sync.WaitGroup
	for p := 0; p < r.parts; p++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			ctx.tasksRun.Add(1)
			out := r.compute(p)
			if !ctx.DisableSerialization {
				roundTripped, n, err := gobRoundTrip(out)
				if err != nil {
					errs[p] = fmt.Errorf("sparklet: task %d result serialization: %w", p, err)
					return
				}
				ctx.bytesMoved.Add(int64(n))
				out = roundTripped
			}
			results[p] = out
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// gobRoundTrip encodes and decodes a task result, returning the decoded
// copy and the serialized size.
func gobRoundTrip[T any](in []T) ([]T, int, error) {
	if len(in) == 0 {
		return in, 0, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		return nil, 0, err
	}
	n := buf.Len()
	var out []T
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		return nil, 0, err
	}
	return out, n, nil
}

// Collect materializes the whole RDD at the driver.
func (r *RDD[T]) Collect() ([]T, error) {
	parts, err := runStage(r)
	if err != nil {
		return nil, err
	}
	var out []T
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Count returns the number of records.
func (r *RDD[T]) Count() (int64, error) {
	counts := Map(MapPartitions(r, func(_ int, in []T) []int64 {
		return []int64{int64(len(in))}
	}), func(v int64) int64 { return v })
	parts, err := runStage(counts)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, p := range parts {
		for _, v := range p {
			total += v
		}
	}
	return total, nil
}

// Reduce folds all records with f (associative); per-partition folds run
// as tasks, the driver merges the partials.
func Reduce[T any](r *RDD[T], f func(a, b T) T) (T, error) {
	partials := MapPartitions(r, func(_ int, in []T) []T {
		if len(in) == 0 {
			return nil
		}
		acc := in[0]
		for _, v := range in[1:] {
			acc = f(acc, v)
		}
		return []T{acc}
	})
	parts, err := runStage(partials)
	var zero T
	if err != nil {
		return zero, err
	}
	var acc T
	have := false
	for _, p := range parts {
		for _, v := range p {
			if !have {
				acc, have = v, true
			} else {
				acc = f(acc, v)
			}
		}
	}
	if !have {
		return zero, fmt.Errorf("sparklet: reduce of empty RDD")
	}
	return acc, nil
}

// Pair is a key/value record for shuffle operations.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// ReduceByKey performs the two-stage shuffle: map-side combine per
// partition, hash-partition the combined pairs across numOut reducers,
// then reduce-side merge — the minimal wide dependency, exercising a
// multi-stage DAG like real Spark.
func ReduceByKey[K comparable, V any](r *RDD[Pair[K, V]], f func(a, b V) V, numOut int) (map[K]V, error) {
	if numOut < 1 {
		numOut = r.ctx.Parallelism
	}
	// Stage 1: map-side combine.
	combined := MapPartitions(r, func(_ int, in []Pair[K, V]) []Pair[K, V] {
		m := make(map[K]V, len(in))
		for _, kv := range in {
			if old, ok := m[kv.Key]; ok {
				m[kv.Key] = f(old, kv.Val)
			} else {
				m[kv.Key] = kv.Val
			}
		}
		out := make([]Pair[K, V], 0, len(m))
		for k, v := range m {
			out = append(out, Pair[K, V]{k, v})
		}
		return out
	})
	parts, err := runStage(combined)
	if err != nil {
		return nil, err
	}
	// Shuffle: hash-partition the combined records (driver-side exchange).
	buckets := make([][]Pair[K, V], numOut)
	for _, p := range parts {
		for _, kv := range p {
			b := hashKey(kv.Key) % uint64(numOut)
			buckets[b] = append(buckets[b], kv)
		}
	}
	// Stage 2: reduce-side merge as a new RDD over the buckets.
	shuffled := &RDD[Pair[K, V]]{
		ctx:   r.ctx,
		parts: numOut,
		compute: func(p int) []Pair[K, V] {
			m := map[K]V{}
			for _, kv := range buckets[p] {
				if old, ok := m[kv.Key]; ok {
					m[kv.Key] = f(old, kv.Val)
				} else {
					m[kv.Key] = kv.Val
				}
			}
			out := make([]Pair[K, V], 0, len(m))
			for k, v := range m {
				out = append(out, Pair[K, V]{k, v})
			}
			return out
		},
	}
	final, err := shuffled.Collect()
	if err != nil {
		return nil, err
	}
	out := make(map[K]V, len(final))
	for _, kv := range final {
		out[kv.Key] = kv.Val
	}
	return out, nil
}

// hashKey hashes any comparable key via its formatted representation —
// slow but general; shuffle benchmarks use small combined maps.
func hashKey[K comparable](k K) uint64 {
	s := fmt.Sprint(k)
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
