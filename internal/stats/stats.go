// Package stats provides the low-overhead performance instrumentation used
// by the RaftLib runtime: atomic counters, exponentially weighted rate
// estimators, log-scale histograms and occupancy samplers.
//
// The paper (§4.1) stresses that "the data collection process itself is
// optimized to reduce overhead" (citing the TimeTrial profiler work). The
// implementations here follow the same discipline: the hot path is one or
// two uncontended atomic operations; aggregation work happens only when a
// monitor thread asks for a snapshot.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter safe for concurrent
// use. The zero value is ready to use.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.n.Load() }

// Gauge is an instantaneous value that can move in both directions.
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Rate estimates an event rate (events per second) using an exponentially
// weighted moving average over observation windows. Observe is cheap (one
// atomic add); the EWMA update is performed by the sampler that calls Tick.
type Rate struct {
	events atomic.Uint64

	mu       sync.Mutex
	lastN    uint64
	lastTick time.Time
	ewma     float64
	alpha    float64
	primed   bool
}

// NewRate returns a rate estimator with smoothing factor alpha in (0, 1].
// Larger alpha weights recent windows more heavily.
func NewRate(alpha float64) *Rate {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.25
	}
	return &Rate{alpha: alpha}
}

// Observe records n events. Safe for concurrent use.
func (r *Rate) Observe(n uint64) { r.events.Add(n) }

// Tick folds the events recorded since the previous Tick into the EWMA.
// It is intended to be called periodically by a single monitor goroutine.
func (r *Rate) Tick(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := r.events.Load()
	if r.lastTick.IsZero() {
		r.lastTick = now
		r.lastN = total
		return
	}
	dt := now.Sub(r.lastTick).Seconds()
	if dt <= 0 {
		return
	}
	inst := float64(total-r.lastN) / dt
	if !r.primed {
		r.ewma = inst
		r.primed = true
	} else {
		r.ewma = r.alpha*inst + (1-r.alpha)*r.ewma
	}
	r.lastN = total
	r.lastTick = now
}

// PerSecond returns the smoothed events-per-second estimate.
func (r *Rate) PerSecond() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ewma
}

// Total returns the total number of events observed.
func (r *Rate) Total() uint64 { return r.events.Load() }

// nBuckets is the number of power-of-two histogram buckets. Bucket i counts
// values v with 2^(i-1) <= v < 2^i (bucket 0 counts v == 0 and v == 1).
const nBuckets = 64

// Histogram is a log2-bucketed histogram of non-negative integer samples
// (durations in nanoseconds, queue occupancies, batch sizes...). Recording
// is a single atomic increment; percentile queries walk the 64 buckets.
// The zero value is ready to use.
type Histogram struct {
	buckets [nBuckets]atomic.Uint64
	sum     atomic.Uint64
	count   atomic.Uint64
	max     atomic.Uint64
}

func bucketIndex(v uint64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(v) - 1
}

// Record adds one sample with value v.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the arithmetic mean of recorded samples, or 0 if empty.
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Quantile returns an upper-bound estimate of the q-quantile (q in [0,1])
// using the bucket upper edges. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < nBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 1
			}
			if i == 63 {
				return math.MaxUint64
			}
			return (uint64(1) << uint(i+1)) - 1
		}
	}
	return h.max.Load()
}

// LogQuantile returns an upper-bound estimate of the q-quantile over raw
// log2 bucket counts laid out like Histogram's (bucket 0 holds {0,1},
// bucket i holds [2^i, 2^(i+1))). It is shared by every log2-bucketed
// counter set in the runtime — the per-ring occupancy buckets in
// internal/ringbuffer carry no methods of their own so the queue types
// stay dependency-free.
func LogQuantile(buckets []uint64, q float64) uint64 {
	var total uint64
	for _, n := range buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range buckets {
		cum += n
		if cum >= target {
			if i == 0 {
				return 1
			}
			if i >= 63 {
				return math.MaxUint64
			}
			return (uint64(1) << uint(i+1)) - 1
		}
	}
	return 0
}

// Snapshot returns a point-in-time copy of the bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	s.Max = h.max.Load()
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram's state.
type HistogramSnapshot struct {
	Buckets [nBuckets]uint64
	Sum     uint64
	Count   uint64
	Max     uint64
}

// Quantile returns the q-quantile upper bound from the snapshot's buckets.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	return LogQuantile(s.Buckets[:], q)
}

// String renders the non-empty buckets, one per line.
func (s HistogramSnapshot) String() string {
	var b strings.Builder
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		lo := uint64(0)
		if i > 0 {
			lo = uint64(1) << uint(i)
		}
		fmt.Fprintf(&b, "[%d..): %d\n", lo, n)
	}
	return b.String()
}

// Occupancy tracks queue occupancy over time. The monitor thread calls
// Sample with the instantaneous length; consumers read the running mean,
// a log-bucketed distribution, and the fraction of samples at/above a
// utilization threshold (used for bottleneck detection).
type Occupancy struct {
	hist      Histogram
	samples   atomic.Uint64
	fullCount atomic.Uint64 // samples where len >= hi-water fraction of cap
	zeroCount atomic.Uint64 // samples where len == 0 (starvation)
}

// Sample records one observation of a queue with length n and capacity c.
func (o *Occupancy) Sample(n, c int) {
	if n < 0 {
		n = 0
	}
	o.hist.Record(uint64(n))
	o.samples.Add(1)
	if c > 0 && n >= c-(c>>3) { // within 12.5% of full
		o.fullCount.Add(1)
	}
	if n == 0 {
		o.zeroCount.Add(1)
	}
}

// Mean returns the mean observed occupancy.
func (o *Occupancy) Mean() float64 { return o.hist.Mean() }

// Samples returns the number of observations.
func (o *Occupancy) Samples() uint64 { return o.samples.Load() }

// FullFraction returns the fraction of samples observed near capacity.
func (o *Occupancy) FullFraction() float64 {
	s := o.samples.Load()
	if s == 0 {
		return 0
	}
	return float64(o.fullCount.Load()) / float64(s)
}

// StarvedFraction returns the fraction of samples observed empty.
func (o *Occupancy) StarvedFraction() float64 {
	s := o.samples.Load()
	if s == 0 {
		return 0
	}
	return float64(o.zeroCount.Load()) / float64(s)
}

// Hist exposes the underlying occupancy histogram.
func (o *Occupancy) Hist() *Histogram { return &o.hist }

// ServiceTimer measures per-invocation service times of a kernel with a
// log-scale histogram. Use Start/Stop pairs or the Time helper.
type ServiceTimer struct {
	hist Histogram
	busy atomic.Uint64 // cumulative busy nanoseconds
}

// Time runs fn and records its wall-clock duration.
func (t *ServiceTimer) Time(fn func()) {
	start := time.Now()
	fn()
	t.Record(time.Since(start))
}

// Record adds one observed service duration.
func (t *ServiceTimer) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.hist.Record(uint64(d))
	t.busy.Add(uint64(d))
}

// Count returns the number of recorded invocations.
func (t *ServiceTimer) Count() uint64 { return t.hist.Count() }

// MeanNanos returns the mean service time in nanoseconds.
func (t *ServiceTimer) MeanNanos() float64 { return t.hist.Mean() }

// BusyNanos returns cumulative busy time in nanoseconds.
func (t *ServiceTimer) BusyNanos() uint64 { return t.busy.Load() }

// RatePerSecond converts the mean service time into a service rate
// (invocations per second). Returns 0 when no samples exist.
func (t *ServiceTimer) RatePerSecond() float64 {
	m := t.hist.Mean()
	if m <= 0 {
		return 0
	}
	return 1e9 / m
}

// Quantile returns the q-quantile of service time in nanoseconds.
func (t *ServiceTimer) Quantile(q float64) uint64 { return t.hist.Quantile(q) }

// Hist exposes the underlying service-time histogram (for exporters).
func (t *ServiceTimer) Hist() *Histogram { return &t.hist }
