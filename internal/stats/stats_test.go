package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero value count = %d, want 0", c.Load())
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("count = %d, want 42", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	if got := g.Add(-3); got != 7 {
		t.Fatalf("Add = %d, want 7", got)
	}
	if got := g.Load(); got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
}

func TestRateEstimation(t *testing.T) {
	r := NewRate(1.0) // no smoothing: rate == last window
	t0 := time.Unix(0, 0)
	r.Tick(t0)
	r.Observe(500)
	r.Tick(t0.Add(500 * time.Millisecond))
	got := r.PerSecond()
	if math.Abs(got-1000) > 1 {
		t.Fatalf("rate = %v, want ~1000", got)
	}
	if r.Total() != 500 {
		t.Fatalf("total = %d, want 500", r.Total())
	}
}

func TestRateSmoothing(t *testing.T) {
	r := NewRate(0.5)
	t0 := time.Unix(0, 0)
	r.Tick(t0)
	r.Observe(100)
	r.Tick(t0.Add(time.Second)) // inst 100/s, primed -> 100
	r.Tick(t0.Add(2 * time.Second))
	// second window saw 0 events: ewma = 0.5*0 + 0.5*100 = 50
	if got := r.PerSecond(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("smoothed rate = %v, want 50", got)
	}
}

func TestRateBadAlphaDefaults(t *testing.T) {
	r := NewRate(-1)
	if r.alpha != 0.25 {
		t.Fatalf("alpha = %v, want default 0.25", r.alpha)
	}
}

func TestRateZeroDtIgnored(t *testing.T) {
	r := NewRate(1.0)
	t0 := time.Unix(0, 0)
	r.Tick(t0)
	r.Observe(10)
	r.Tick(t0) // dt == 0 must not divide by zero or update
	if got := r.PerSecond(); got != 0 {
		t.Fatalf("rate after zero-dt tick = %v, want 0", got)
	}
}

func TestHistogramBucketIndex(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {math.MaxUint64, 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramMeanMaxCount(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 3, 4, 10} {
		h.Record(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Mean(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("mean = %v, want 4", got)
	}
	if h.Max() != 10 {
		t.Fatalf("max = %d, want 10", h.Max())
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("quantile of empty = %d, want 0", got)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Record(i)
	}
	// Bucket upper edges are powers of two; the estimate must bracket the
	// true quantile from above but within one bucket (2x).
	for _, q := range []float64{0.05, 0.5, 0.95, 1.0} {
		true0 := q * 1000
		got := float64(h.Quantile(q))
		if got < true0 || got > 2*true0+2 {
			t.Errorf("Quantile(%v) = %v, true %v: outside [true, 2*true]", q, got, true0)
		}
	}
	// Out-of-range q values are clamped, not panicking.
	_ = h.Quantile(-0.5)
	_ = h.Quantile(1.5)
}

func TestHistogramPropertyMeanAndCount(t *testing.T) {
	f := func(vs []uint16) bool {
		var h Histogram
		var sum uint64
		for _, v := range vs {
			h.Record(uint64(v))
			sum += uint64(v)
		}
		if h.Count() != uint64(len(vs)) {
			return false
		}
		if len(vs) == 0 {
			return h.Mean() == 0
		}
		want := float64(sum) / float64(len(vs))
		return math.Abs(h.Mean()-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPropertyQuantileMonotone(t *testing.T) {
	f := func(vs []uint32) bool {
		if len(vs) == 0 {
			return true
		}
		var h Histogram
		for _, v := range vs {
			h.Record(uint64(v))
		}
		prev := uint64(0)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSnapshotString(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(5)
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != 5 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("expected non-empty rendering")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := uint64(0); j < 1000; j++ {
				h.Record(j)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
	if h.Max() != 999 {
		t.Fatalf("max = %d, want 999", h.Max())
	}
}

func TestOccupancy(t *testing.T) {
	var o Occupancy
	o.Sample(0, 8)  // starved
	o.Sample(8, 8)  // full
	o.Sample(7, 8)  // near-full (within 12.5%)
	o.Sample(4, 8)  // mid
	o.Sample(-1, 8) // clamped to 0, starved
	if o.Samples() != 5 {
		t.Fatalf("samples = %d, want 5", o.Samples())
	}
	if got := o.StarvedFraction(); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("starved = %v, want 0.4", got)
	}
	if got := o.FullFraction(); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("full = %v, want 0.4", got)
	}
	if o.Mean() <= 0 {
		t.Fatalf("mean = %v, want > 0", o.Mean())
	}
	if o.Hist().Count() != 5 {
		t.Fatalf("hist count = %d, want 5", o.Hist().Count())
	}
}

func TestOccupancyEmpty(t *testing.T) {
	var o Occupancy
	if o.FullFraction() != 0 || o.StarvedFraction() != 0 {
		t.Fatal("fractions of empty sampler must be 0")
	}
}

func TestServiceTimer(t *testing.T) {
	var st ServiceTimer
	st.Record(100 * time.Nanosecond)
	st.Record(300 * time.Nanosecond)
	st.Record(-time.Second) // clamped to 0
	if st.Count() != 3 {
		t.Fatalf("count = %d, want 3", st.Count())
	}
	if st.BusyNanos() != 400 {
		t.Fatalf("busy = %d, want 400", st.BusyNanos())
	}
	wantMean := 400.0 / 3.0
	if math.Abs(st.MeanNanos()-wantMean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", st.MeanNanos(), wantMean)
	}
	if st.RatePerSecond() <= 0 {
		t.Fatalf("rate = %v, want > 0", st.RatePerSecond())
	}
	if st.Quantile(1.0) < 300 {
		t.Fatalf("p100 = %d, want >= 300", st.Quantile(1.0))
	}
}

func TestServiceTimerTime(t *testing.T) {
	var st ServiceTimer
	st.Time(func() { time.Sleep(time.Millisecond) })
	if st.Count() != 1 {
		t.Fatalf("count = %d, want 1", st.Count())
	}
	if st.MeanNanos() < float64(time.Millisecond)/2 {
		t.Fatalf("mean = %v ns, want >= 0.5ms", st.MeanNanos())
	}
}

func TestServiceTimerEmptyRate(t *testing.T) {
	var st ServiceTimer
	if st.RatePerSecond() != 0 {
		t.Fatal("rate of empty timer must be 0")
	}
}

func TestLogQuantile(t *testing.T) {
	// 10 samples in bucket 1 ([2,4)), 90 in bucket 5 ([32,64)).
	buckets := make([]uint64, 33)
	buckets[1] = 10
	buckets[5] = 90
	if got := LogQuantile(buckets, 0.05); got != 3 {
		t.Fatalf("p5 = %d, want 3", got)
	}
	if got := LogQuantile(buckets, 0.99); got != 63 {
		t.Fatalf("p99 = %d, want 63", got)
	}
	if got := LogQuantile(make([]uint64, 33), 0.5); got != 0 {
		t.Fatalf("empty = %d, want 0", got)
	}
	only := make([]uint64, 33)
	only[0] = 5
	if got := LogQuantile(only, 0.5); got != 1 {
		t.Fatalf("bucket0 = %d, want 1", got)
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(uint64(i))
	}
	s := h.Snapshot()
	if s.Quantile(0.5) != h.Quantile(0.5) {
		t.Fatalf("snapshot quantile %d != live %d", s.Quantile(0.5), h.Quantile(0.5))
	}
}
