package stats

// BurstEWMA is an exponentially weighted moving average with high-side
// burst rejection, the smoothing discipline of the instantaneous-rate
// model in Beard & Chamberlain, "Run Time Approximation of Non-blocking
// Service Rates for Streaming Systems" (arXiv:1504.00591): runtime
// observations of service intervals and arrival windows are contaminated
// by episodes that are not part of the quantity being estimated — a
// sampled kernel invocation that sat blocked on an empty input looks like
// a 1000× service time, a producer that was descheduled and caught up
// looks like a rate spike. Folding those into a plain EWMA poisons the
// estimate for many windows.
//
// Observe therefore rejects a sample larger than BurstFactor × the
// current estimate — unless MaxStreak consecutive samples have been
// rejected, in which case the sample is accepted at full weight: a
// genuine regime change (the workload really did get slower/faster)
// looks like an unbounded burst streak, and the streak escape bounds how
// long the estimator can deny reality. Low-side samples are always
// accepted — they are what a *non-blocking* observation looks like.
//
// The zero value is unusable; construct with NewBurstEWMA. Not safe for
// concurrent use — callers (the estimator) serialize access.
type BurstEWMA struct {
	alpha       float64
	burstFactor float64
	maxStreak   int

	value  float64
	warm   []float64 // priming window; median-primed to survive an early burst
	streak int
	n      uint64
	rej    uint64
}

// NewBurstEWMA returns an estimator with smoothing factor alpha in
// (0, 1], rejecting samples above burstFactor × estimate (burstFactor
// <= 1 selects 4), with a streak escape after maxStreak consecutive
// rejections (<= 0 selects 8).
func NewBurstEWMA(alpha, burstFactor float64, maxStreak int) *BurstEWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.25
	}
	if burstFactor <= 1 {
		burstFactor = 4
	}
	if maxStreak <= 0 {
		maxStreak = 8
	}
	return &BurstEWMA{alpha: alpha, burstFactor: burstFactor, maxStreak: maxStreak}
}

// primeWindow is how many samples the median-of-first-k priming holds
// before the EWMA starts moving; small enough to prime fast, large
// enough that one blocked first invocation cannot set the baseline.
const primeWindow = 5

// Observe folds one non-negative sample into the estimate and reports
// whether it was accepted (false = rejected as a burst).
func (e *BurstEWMA) Observe(v float64) bool {
	if v < 0 {
		v = 0
	}
	e.n++
	if !e.Primed() {
		e.warm = append(e.warm, v)
		e.value = median(e.warm)
		return true
	}
	if e.value > 0 && v > e.burstFactor*e.value {
		e.streak++
		if e.streak <= e.maxStreak {
			e.rej++
			return false
		}
		// Streak escape: this is a regime change, not a burst.
	}
	e.streak = 0
	e.value = e.alpha*v + (1-e.alpha)*e.value
	return true
}

// Value returns the current estimate (0 until the first Observe).
func (e *BurstEWMA) Value() float64 { return e.value }

// Primed reports whether enough samples have arrived for Value to be
// meaningful (the priming window is full).
func (e *BurstEWMA) Primed() bool { return len(e.warm) >= primeWindow }

// Count returns the number of samples observed (accepted or not).
func (e *BurstEWMA) Count() uint64 { return e.n }

// Rejected returns the number of samples discarded as bursts.
func (e *BurstEWMA) Rejected() uint64 { return e.rej }

// median returns the median of xs without mutating it (k is tiny).
func median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 1; i < n; i++ { // insertion sort: n <= primeWindow
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
