package stats

import "testing"

func TestBurstEWMAPrimesOnMedian(t *testing.T) {
	e := NewBurstEWMA(0.3, 4, 8)
	// First invocation blocked on an empty input: a 1000× outlier inside
	// the priming window must not set the baseline.
	for _, v := range []float64{100000, 100, 110, 90, 105} {
		if !e.Observe(v) {
			t.Fatalf("priming sample %v rejected", v)
		}
	}
	if !e.Primed() {
		t.Fatal("not primed after 5 samples")
	}
	if v := e.Value(); v != 105 {
		t.Fatalf("primed value = %v, want median 105", v)
	}
}

func TestBurstEWMANotPrimedEarly(t *testing.T) {
	e := NewBurstEWMA(0.3, 4, 8)
	for i := 0; i < 4; i++ {
		e.Observe(10)
	}
	if e.Primed() {
		t.Fatal("primed after 4 samples, want 5")
	}
}

func TestBurstEWMARejectsHighSide(t *testing.T) {
	e := NewBurstEWMA(0.3, 4, 8)
	for i := 0; i < 5; i++ {
		e.Observe(100)
	}
	if e.Observe(1000) {
		t.Fatal("10x burst accepted")
	}
	if e.Value() != 100 {
		t.Fatalf("value moved to %v on a rejected burst", e.Value())
	}
	if e.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", e.Rejected())
	}
}

func TestBurstEWMAAcceptsLowSide(t *testing.T) {
	e := NewBurstEWMA(0.5, 4, 8)
	for i := 0; i < 5; i++ {
		e.Observe(100)
	}
	// A far smaller sample is what a non-blocking observation looks like;
	// it must always fold in.
	if !e.Observe(1) {
		t.Fatal("low-side sample rejected")
	}
	if v := e.Value(); v != 0.5*1+0.5*100 {
		t.Fatalf("value = %v, want 50.5", v)
	}
}

func TestBurstEWMAStreakEscapeFollowsRegimeChange(t *testing.T) {
	e := NewBurstEWMA(0.3, 4, 3)
	for i := 0; i < 5; i++ {
		e.Observe(100)
	}
	// The workload genuinely got 10x slower: after maxStreak consecutive
	// rejections the next sample folds in at full weight.
	accepted := 0
	for i := 0; i < 10; i++ {
		if e.Observe(1000) {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("streak escape never fired")
	}
	if e.Value() < 500 {
		t.Fatalf("value = %v; estimator denied a regime change", e.Value())
	}
}

func TestBurstEWMAConvergence(t *testing.T) {
	e := NewBurstEWMA(0.3, 4, 8)
	for i := 0; i < 50; i++ {
		e.Observe(42)
	}
	if v := e.Value(); v < 41.9 || v > 42.1 {
		t.Fatalf("value = %v, want ~42", v)
	}
	if e.Count() != 50 {
		t.Fatalf("count = %d", e.Count())
	}
}

func TestBurstEWMANegativeClamped(t *testing.T) {
	e := NewBurstEWMA(0.3, 4, 8)
	e.Observe(-5)
	if e.Value() != 0 {
		t.Fatalf("value = %v, want clamped 0", e.Value())
	}
}
