package corpus

import (
	"bytes"
	"testing"
)

func TestGenerateExactSize(t *testing.T) {
	for _, n := range []int{1, 100, 1 << 16, 1<<20 + 3} {
		got := Generate(Spec{Bytes: n, Seed: 3})
		if len(got) != n {
			t.Fatalf("size %d: got %d bytes", n, len(got))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Spec{Bytes: 1 << 18, Seed: 9})
	b := Generate(Spec{Bytes: 1 << 18, Seed: 9})
	if !bytes.Equal(a, b) {
		t.Fatal("same spec produced different corpora")
	}
	c := Generate(Spec{Bytes: 1 << 18, Seed: 10})
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateInjectsPattern(t *testing.T) {
	text := Generate(Spec{Bytes: 1 << 20, Seed: 5, HitsPerMiB: 40})
	hits := bytes.Count(text, []byte(DefaultPattern))
	// Injection plus accidental vocabulary formations: at least the target.
	if hits < 40 {
		t.Fatalf("found %d hits in 1 MiB, want >= 40", hits)
	}
	if hits > 400 {
		t.Fatalf("found %d hits in 1 MiB; density far above target", hits)
	}
}

func TestGenerateCustomPattern(t *testing.T) {
	text := Generate(Spec{Bytes: 1 << 20, Seed: 5, Pattern: "xyzzy", HitsPerMiB: 10})
	if hits := bytes.Count(text, []byte("xyzzy")); hits < 10 {
		t.Fatalf("custom pattern hits = %d, want >= 10", hits)
	}
}

func TestGenerateDensityScales(t *testing.T) {
	lo := bytes.Count(Generate(Spec{Bytes: 1 << 20, Seed: 2, HitsPerMiB: 10}), []byte(DefaultPattern))
	hi := bytes.Count(Generate(Spec{Bytes: 1 << 20, Seed: 2, HitsPerMiB: 100}), []byte(DefaultPattern))
	if hi <= lo {
		t.Fatalf("density didn't scale: lo=%d hi=%d", lo, hi)
	}
}

func TestGenerateLooksLikeText(t *testing.T) {
	text := Generate(Spec{Bytes: 1 << 16, Seed: 1})
	if bytes.IndexByte(text, '\n') < 0 {
		t.Fatal("no line breaks in generated text")
	}
	for _, b := range text {
		if (b < 'a' || b > 'z') && b != ' ' && b != '\n' {
			t.Fatalf("unexpected byte %q in corpus", b)
		}
	}
}
