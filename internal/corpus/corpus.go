// Package corpus deterministically generates English-like text used in
// place of the paper's 30 GB Stack Exchange post-history dump (§5), which
// is not redistributable here. The generator produces word-shaped tokens
// from a fixed vocabulary via a seeded xorshift PRNG and injects the search
// pattern at a controlled density, so benchmark corpora of any size are
// reproducible byte-for-byte and the expected hit count is known
// (DESIGN.md, substitutions).
package corpus

import "bytes"

// DefaultPattern is the needle benchmarks search for.
const DefaultPattern = "parallel"

// vocabulary approximates English word statistics well enough to exercise
// the matchers' shift tables the way prose does; it deliberately contains
// words sharing prefixes/suffixes with DefaultPattern.
var vocabulary = []string{
	"the", "of", "and", "to", "in", "is", "that", "it", "for", "was",
	"on", "are", "as", "with", "his", "they", "at", "be", "this", "have",
	"from", "or", "one", "had", "by", "word", "but", "not", "what", "all",
	"were", "we", "when", "your", "can", "said", "there", "use", "an",
	"each", "which", "she", "do", "how", "their", "if", "will", "up",
	"other", "about", "out", "many", "then", "them", "these", "so",
	"some", "her", "would", "make", "like", "him", "into", "time", "has",
	"look", "two", "more", "write", "go", "see", "number", "no", "way",
	"could", "people", "my", "than", "first", "water", "been", "call",
	"who", "oil", "its", "now", "find", "long", "down", "day", "did",
	"get", "come", "made", "may", "part", "stream", "kernel", "queue",
	"buffer", "thread", "process", "compute", "data", "code", "paradox",
	"parable", "paragraph", "parse", "partial", "particle", "allel",
	"parallax", "pipeline", "template", "library", "performance",
}

// rng is a 64-bit xorshift generator: tiny, fast, deterministic.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Spec describes a corpus to generate.
type Spec struct {
	// Bytes is the target size; the result is exactly this long.
	Bytes int
	// Seed selects the deterministic stream (0 is replaced by 1).
	Seed uint64
	// Pattern is the needle to inject (DefaultPattern if empty).
	Pattern string
	// HitsPerMiB is the injection density (default 40). The actual count
	// can exceed it when the vocabulary happens to form extra matches.
	HitsPerMiB int
}

func (s *Spec) fill() {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Pattern == "" {
		s.Pattern = DefaultPattern
	}
	if s.HitsPerMiB <= 0 {
		s.HitsPerMiB = 40
	}
}

// Generate produces the corpus described by spec.
func Generate(spec Spec) []byte {
	spec.fill()
	r := rng{s: spec.Seed}
	var b bytes.Buffer
	b.Grow(spec.Bytes + 64)

	// Average gap between injected patterns, in words (≈6 bytes/word).
	wordsPerMiB := (1 << 20) / 6
	gap := wordsPerMiB / spec.HitsPerMiB
	if gap < 2 {
		gap = 2
	}

	wordCount := 0
	lineLen := 0
	for b.Len() < spec.Bytes {
		var w string
		if wordCount%gap == gap-1 {
			w = spec.Pattern
		} else {
			w = vocabulary[r.intn(len(vocabulary))]
		}
		wordCount++
		b.WriteString(w)
		lineLen += len(w) + 1
		if lineLen > 60+r.intn(20) {
			b.WriteByte('\n')
			lineLen = 0
		} else {
			b.WriteByte(' ')
		}
	}
	out := b.Bytes()[:spec.Bytes]
	return out
}
