package ringbuffer

import "sync/atomic"

// Epoch-based capacity swap for the lock-free SPSC ring.
//
// The paper's §4.1 resizer stops both endpoints, copies the buffered
// region into a larger array (one memmove when the data sits in the
// non-wrapped position, two when it wraps) and resumes. That protocol
// needs a lock; the SPSC ring has none to take. Instead the swap is
// split across the three parties so that no side ever waits on another:
//
//	monitor   Resize(n) allocates the new backing ring and publishes it
//	          in q.pending (one atomic store; returns immediately).
//	producer  at its next push it installs the pending ring: the old
//	          segment's next pointer is set, then the old epoch's tail
//	          is tagged in sealedAt — every sequence >= sealedAt lives
//	          in the successor. Subsequent pushes land in the new ring.
//	consumer  drains the old segment to exhaustion (head < sealedAt),
//	          then follows next into the new epoch and keeps popping.
//
// Sequence numbers are global and monotonic, so FIFO order is
// preserved across the boundary by construction, and the signal array
// travels with its value array — a SigEOF sealed into the old epoch is
// read exactly where it was written. The old segment is never copied:
// the consumer reads it in place (the degenerate case of the paper's
// non-wrapped fast path — zero elements moved) and the garbage
// collector reclaims it once the consumer moves on. Bulk operations
// split their batches at the boundary: PushN fills the remainder of
// the old epoch and continues in the new one on its next iteration;
// DrainTo copies each epoch's contribution with the usual one-or-two
// memmove wrap split and publishes a single head advance for the
// whole batch.
//
// Ordering argument (Go memory model, all atomics are seq-cst):
// install writes np.base (plain) before old.next.Store(np), and
// next.Store before old.sealedAt.Store(t). A consumer that observes
// head >= sealedAt therefore observes next != nil and a fully
// initialized successor. Slots written into the new segment before
// tail.Store(t+k) are visible to any consumer that acquires that tail
// value, exactly as within one epoch.

// sealNone is the sealedAt sentinel of a segment still accepting
// writes: no sequence number ever reaches it.
const sealNone = ^uint64(0)

// spscSeg is one epoch of an SPSC ring: a power-of-two value/signal
// array addressed by global sequence numbers relative to base.
type spscSeg[T any] struct {
	mask uint64
	vals []T
	sigs []Signal
	// base is the global sequence of the first element written into
	// this segment; the slot for sequence s is (s-base)&mask. Written
	// by the producer before the segment is published via next (and at
	// construction for the initial segment).
	base uint64
	// next is the successor epoch, set by the producer strictly before
	// sealedAt so a consumer that sees the seal always finds it.
	next atomic.Pointer[spscSeg[T]]
	// sealedAt is the first sequence that lives in the successor;
	// sealNone while this segment is the producer's write target.
	sealedAt atomic.Uint64
}

// newSeg allocates a segment with capacity rounded up to a power of
// two (minimum 2), starting at the given global sequence.
func newSeg[T any](capacity int, base uint64) *spscSeg[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	s := &spscSeg[T]{
		mask: uint64(n - 1),
		vals: make([]T, n),
		sigs: make([]Signal, n),
		base: base,
	}
	s.sealedAt.Store(sealNone)
	return s
}

// freeAt returns the free slots of the segment for a producer at tail t
// with the consumer at head h. Sequences below base live in older
// epochs and do not occupy this segment, so a producer keeps running in
// the new ring while the consumer is still draining the old one.
func (s *spscSeg[T]) freeAt(t, h uint64) int {
	start := s.base
	if h > start {
		start = h
	}
	return len(s.vals) - int(t-start)
}

// Resize requests an epoch swap to newCap (rounded up to a power of
// two, minimum 2). It is asynchronous: the request returns immediately
// and the producer installs the new ring at its next push — a producer
// spinning on a full queue picks it up on its next spin iteration, so
// the monitor's write-block grow rule unblocks it without any lock.
// Shrinking below the current length returns ErrTooSmall (the Queue
// contract; the backlog itself would be safe either way since it stays
// in the old epoch). Only one goroutine (the runtime monitor) may call
// Resize; use ResizePending to avoid stacking requests.
func (q *SPSC[T]) Resize(newCap int) error {
	if newCap < q.Len() {
		return ErrTooSmall
	}
	n := 2
	for n < newCap {
		n <<= 1
	}
	if n == q.Cap() {
		return nil
	}
	// base is provisional: install overwrites it with the producer's
	// tail before publishing the segment to the consumer.
	q.pending.Store(newSeg[T](n, 0))
	return nil
}

// ResizePending reports whether a published swap has not yet been
// installed by the producer. The monitor skips a link with a swap in
// flight so one blocked window cannot stack multiple grow requests.
func (q *SPSC[T]) ResizePending() bool { return q.pending.Load() != nil }

// install moves the producer into the pending epoch at tail sequence t.
// Producer-only. The store order (next, active, sealedAt) is what lets
// the consumer chase the chain without locks; see the package comment
// above.
func (q *SPSC[T]) install(t uint64) {
	np := q.pending.Swap(nil)
	if np == nil {
		return
	}
	old := q.prod
	if len(np.vals) == len(old.vals) {
		return // raced with an identical capacity; nothing to do
	}
	np.base = t
	old.next.Store(np)
	q.active.Store(np)
	old.sealedAt.Store(t)
	q.prod = np
	q.tel.Resizes.Inc()
	if len(np.vals) > len(old.vals) {
		q.tel.Grows.Inc()
	} else {
		q.tel.Shrinks.Inc()
	}
}

// segFor returns the segment holding sequence h, following sealed
// epochs forward and caching the position. Consumer-only. On the hot
// path (no swap in flight) this is a single atomic load: h < sealNone
// always holds for the active segment.
func (q *SPSC[T]) segFor(h uint64) *spscSeg[T] {
	s := q.cons
	for h >= s.sealedAt.Load() {
		nxt := s.next.Load()
		if nxt == nil {
			break // unreachable: next is published before the seal
		}
		s = nxt
		q.cons = s
	}
	return s
}
