package ringbuffer

import (
	"sync"
	"testing"
	"time"
)

// TestRingPushNWrapAround forces a batch across the physical end of the
// ring and checks FIFO order and signal alignment on the way out.
func TestRingPushNWrapAround(t *testing.T) {
	r := NewRing[int](8)
	// Advance head so the next batch must split: fill 6, drain 5.
	for i := 0; i < 6; i++ {
		if err := r.Push(i, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, _, err := r.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	// One buffered element (5) at index 5; pushing 6 wraps.
	vs := []int{10, 11, 12, 13, 14, 15}
	sigs := []Signal{SigNone, SigUser, SigNone, SigNone, SigUser, SigEOF}
	if err := r.PushN(vs, sigs); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 7 {
		t.Fatalf("Len = %d, want 7", r.Len())
	}
	if v, s, err := r.Pop(); err != nil || v != 5 || s != SigNone {
		t.Fatalf("Pop = (%d,%v,%v), want (5,SigNone,nil)", v, s, err)
	}
	dst := make([]int, 6)
	out := make([]Signal, 6)
	n, err := r.PopN(dst, out)
	if err != nil || n != 6 {
		t.Fatalf("PopN = (%d,%v), want (6,nil)", n, err)
	}
	for i := range vs {
		if dst[i] != vs[i] || out[i] != sigs[i] {
			t.Fatalf("element %d = (%d,%v), want (%d,%v)", i, dst[i], out[i], vs[i], sigs[i])
		}
	}
}

// TestRingPushNChunksOversizedBatch verifies a batch larger than the free
// space (even larger than capacity) is delivered completely, in order, by
// chunking against a concurrent consumer.
func TestRingPushNChunksOversizedBatch(t *testing.T) {
	r := NewRing[int](4)
	vs := make([]int, 100)
	for i := range vs {
		vs[i] = i
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := r.PushN(vs, nil); err != nil {
			t.Errorf("PushN: %v", err)
		}
		r.Close()
	}()
	var got []int
	dst := make([]int, 7)
	for {
		n, err := r.PopN(dst, nil)
		got = append(got, dst[:n]...)
		if err != nil {
			break
		}
	}
	<-done
	if len(got) != len(vs) {
		t.Fatalf("received %d, want %d", len(got), len(vs))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: got %d", i, v)
		}
	}
}

// TestRingDrainToSemantics: empty+open → (0,nil); closed+drained →
// (0,ErrClosed).
func TestRingDrainToSemantics(t *testing.T) {
	r := NewRing[int](4)
	dst := make([]int, 4)
	if n, err := r.DrainTo(dst, nil); n != 0 || err != nil {
		t.Fatalf("empty DrainTo = (%d,%v), want (0,nil)", n, err)
	}
	r.Push(1, SigNone)
	r.Push(2, SigNone)
	r.Close()
	if n, err := r.DrainTo(dst, nil); n != 2 || err != nil {
		t.Fatalf("DrainTo = (%d,%v), want (2,nil)", n, err)
	}
	if n, err := r.DrainTo(dst, nil); n != 0 || err != ErrClosed {
		t.Fatalf("drained DrainTo = (%d,%v), want (0,ErrClosed)", n, err)
	}
}

// TestRingPushNStaleSignalCleared ensures a nil-sigs bulk push clears
// signal slots left over from earlier signalled elements.
func TestRingPushNStaleSignalCleared(t *testing.T) {
	r := NewRing[int](4)
	r.Push(1, SigUser)
	r.Pop() // slot 0 retains SigUser in the signal array
	for i := 0; i < 3; i++ {
		r.Push(0, SigNone)
	}
	r.Pop()
	r.Pop()
	r.Pop()
	// Next write lands on the stale slot; bulk push with nil sigs.
	if err := r.PushN([]int{7, 8}, nil); err != nil {
		t.Fatal(err)
	}
	if _, s, err := r.Pop(); err != nil || s != SigNone {
		t.Fatalf("stale signal leaked: sig=%v err=%v", s, err)
	}
}

// TestSPSCBulkWrapAround pushes batches across the mask boundary of the
// lock-free queue and checks order and signals.
func TestSPSCBulkWrapAround(t *testing.T) {
	q := NewSPSC[int](8)
	// Advance indices to near the wrap point.
	for i := 0; i < 6; i++ {
		q.Push(i, SigNone)
	}
	for i := 0; i < 6; i++ {
		q.Pop()
	}
	vs := []int{1, 2, 3, 4, 5}
	sigs := []Signal{SigUser, SigNone, SigNone, SigEOF, SigUser}
	if err := q.PushN(vs, sigs); err != nil {
		t.Fatal(err)
	}
	dst := make([]int, 8)
	out := make([]Signal, 8)
	n, err := q.DrainTo(dst, out)
	if err != nil || n != 5 {
		t.Fatalf("DrainTo = (%d,%v), want (5,nil)", n, err)
	}
	for i := range vs {
		if dst[i] != vs[i] || out[i] != sigs[i] {
			t.Fatalf("element %d = (%d,%v), want (%d,%v)", i, dst[i], out[i], vs[i], sigs[i])
		}
	}
}

// TestSPSCBulkProducerConsumer streams a large sequence through bulk ops
// concurrently (the SPSC contract: exactly one of each).
func TestSPSCBulkProducerConsumer(t *testing.T) {
	const total = 50000
	q := NewSPSC[int](64)
	go func() {
		vs := make([]int, 37)
		next := 0
		for next < total {
			k := len(vs)
			if k > total-next {
				k = total - next
			}
			for i := 0; i < k; i++ {
				vs[i] = next + i
			}
			if err := q.PushN(vs[:k], nil); err != nil {
				t.Errorf("PushN: %v", err)
				return
			}
			next += k
		}
		q.Close()
	}()
	dst := make([]int, 53)
	want := 0
	for {
		n, err := q.PopN(dst, nil)
		for i := 0; i < n; i++ {
			if dst[i] != want {
				t.Fatalf("order broken: got %d want %d", dst[i], want)
			}
			want++
		}
		if err != nil {
			break
		}
	}
	if want != total {
		t.Fatalf("received %d, want %d", want, total)
	}
}

// TestSPSCLenNeverNegative hammers Len from a third goroutine while a
// producer/consumer pair races — the load-order fix must keep the result
// non-negative and within capacity.
func TestSPSCLenNeverNegative(t *testing.T) {
	q := NewSPSC[int](16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q.TryPush(i, SigNone)
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			q.TryPop()
		}
	}()
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		if l := q.Len(); l < 0 || l > q.Cap() {
			close(stop)
			t.Fatalf("Len = %d outside [0,%d]", l, q.Cap())
		}
	}
	close(stop)
	wg.Wait()
}

// TestSetBackoff verifies the configurable escalation: invalid fields are
// replaced with defaults, and the previous configuration round-trips.
func TestSetBackoff(t *testing.T) {
	prev := SetBackoff(BackoffConfig{SpinLimit: 8, YieldLimit: 16, Sleep: time.Microsecond})
	defer SetBackoff(prev)
	cur := SetBackoff(BackoffConfig{})
	if cur.SpinLimit != 8 || cur.YieldLimit != 16 || cur.Sleep != time.Microsecond {
		t.Fatalf("previous config not returned: %+v", cur)
	}
	// The zero config we just stored must have been sanitized to defaults.
	got := SetBackoff(prev)
	if got.SpinLimit != DefaultBackoff.SpinLimit || got.YieldLimit != DefaultBackoff.YieldLimit || got.Sleep != DefaultBackoff.Sleep {
		t.Fatalf("zero config not sanitized: %+v", got)
	}
}

// TestBackoffTransitionCounters checks that a full-queue SPSC push records
// spin→yield→sleep escalation in the telemetry.
func TestBackoffTransitionCounters(t *testing.T) {
	prev := SetBackoff(BackoffConfig{SpinLimit: 2, YieldLimit: 4, Sleep: time.Microsecond})
	defer SetBackoff(prev)
	q := NewSPSC[int](2)
	q.Push(1, SigNone)
	q.Push(2, SigNone)
	done := make(chan struct{})
	go func() {
		defer close(done)
		q.Push(3, SigNone) // blocks; spins through both tiers
	}()
	time.Sleep(5 * time.Millisecond)
	q.Pop()
	<-done
	tel := q.Telemetry().Snapshot()
	if tel.SpinYields == 0 {
		t.Fatalf("SpinYields = 0, want > 0")
	}
	if tel.SpinSleeps == 0 {
		t.Fatalf("SpinSleeps = 0, want > 0")
	}
}
