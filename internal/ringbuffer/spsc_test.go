package ringbuffer

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSPSCCapacityRounding(t *testing.T) {
	cases := []struct{ in, want int }{{0, 2}, {1, 2}, {2, 2}, {3, 4}, {64, 64}, {65, 128}}
	for _, c := range cases {
		q := NewSPSC[int](c.in)
		if q.Cap() != c.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", c.in, q.Cap(), c.want)
		}
	}
}

func TestSPSCPushPopOrder(t *testing.T) {
	q := NewSPSC[int](8)
	for i := 0; i < 8; i++ {
		if err := q.Push(i, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 8 {
		t.Fatalf("len = %d, want 8", q.Len())
	}
	for i := 0; i < 8; i++ {
		v, _, err := q.Pop()
		if err != nil || v != i {
			t.Fatalf("pop = (%d, %v), want %d", v, err, i)
		}
	}
}

func TestSPSCTryOps(t *testing.T) {
	q := NewSPSC[int](2)
	ok, err := q.TryPush(1, SigEOF)
	if !ok || err != nil {
		t.Fatalf("TryPush = (%v, %v)", ok, err)
	}
	if ok, _ = q.TryPush(2, SigNone); !ok {
		t.Fatal("second TryPush should fit")
	}
	if ok, _ = q.TryPush(3, SigNone); ok {
		t.Fatal("TryPush on full queue should fail")
	}
	v, s, ok, err := q.TryPop()
	if !ok || err != nil || v != 1 || s != SigEOF {
		t.Fatalf("TryPop = (%d, %v, %v, %v)", v, s, ok, err)
	}
	_, _, _, _ = q.TryPop()
	if _, _, ok, _ = q.TryPop(); ok {
		t.Fatal("TryPop on empty queue should miss")
	}
}

func TestSPSCCloseSemantics(t *testing.T) {
	q := NewSPSC[int](4)
	if err := q.Push(1, SigNone); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if !q.Closed() {
		t.Fatal("should report closed")
	}
	if _, err := q.TryPush(2, SigNone); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryPush closed = %v, want ErrClosed", err)
	}
	if err := q.Push(2, SigNone); !errors.Is(err, ErrClosed) {
		t.Fatalf("Push closed = %v, want ErrClosed", err)
	}
	// Drain buffered then ErrClosed.
	if v, _, err := q.Pop(); err != nil || v != 1 {
		t.Fatalf("pop = (%d, %v)", v, err)
	}
	if _, _, err := q.Pop(); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained pop = %v, want ErrClosed", err)
	}
}

func TestSPSCBlockedProducerUnblocks(t *testing.T) {
	q := NewSPSC[int](2)
	if err := q.Push(0, SigNone); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(1, SigNone); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- q.Push(2, SigNone) }()
	deadline := time.Now().Add(2 * time.Second)
	for q.WriterBlockedFor() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("producer never blocked")
		}
		time.Sleep(50 * time.Microsecond)
	}
	if _, _, err := q.Pop(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestSPSCReaderStarvationVisible(t *testing.T) {
	q := NewSPSC[int](2)
	got := make(chan int, 1)
	go func() {
		v, _, err := q.Pop()
		if err != nil {
			got <- -1
			return
		}
		got <- v
	}()
	deadline := time.Now().Add(2 * time.Second)
	for q.ReaderStarvedFor() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("consumer never starved")
		}
		time.Sleep(50 * time.Microsecond)
	}
	if err := q.Push(9, SigNone); err != nil {
		t.Fatal(err)
	}
	if v := <-got; v != 9 {
		t.Fatalf("pop = %d, want 9", v)
	}
}

func TestSPSCResizeContract(t *testing.T) {
	q := NewSPSC[int](4)
	if err := q.Push(1, SigNone); err != nil {
		t.Fatal(err)
	}
	if err := q.Resize(0); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("shrink below len = %v, want ErrTooSmall", err)
	}
	if err := q.Resize(1024); err != nil {
		t.Fatalf("grow request = %v, want nil", err)
	}
	if !q.ResizePending() {
		t.Fatal("grow request should be pending until the producer's next push")
	}
	if q.Cap() != 4 {
		t.Fatalf("cap = %d before install; the swap must wait for the producer", q.Cap())
	}
	// The next push installs the epoch; capacity changes then.
	if err := q.Push(2, SigNone); err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 1024 {
		t.Fatalf("cap = %d after install, want 1024", q.Cap())
	}
	if q.ResizePending() {
		t.Fatal("request should be consumed by the install")
	}
	tel := q.Telemetry().Snapshot()
	if tel.Resizes != 1 || tel.Grows != 1 {
		t.Fatalf("telemetry resizes=%d grows=%d, want 1/1", tel.Resizes, tel.Grows)
	}
	// FIFO across the boundary: element 1 lives in the old epoch,
	// element 2 in the new one.
	for want := 1; want <= 2; want++ {
		v, _, err := q.Pop()
		if err != nil || v != want {
			t.Fatalf("pop = (%d, %v), want %d", v, err, want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("len = %d after drain", q.Len())
	}
	// Resize to the current capacity is a nil no-op.
	if err := q.Resize(1024); err != nil || q.ResizePending() {
		t.Fatalf("same-cap resize = %v pending=%v, want nil no-op", err, q.ResizePending())
	}
	if q.PendingDemand() != 0 {
		t.Fatal("SPSC PendingDemand must be 0")
	}
	if q.Kind() != "spsc" {
		t.Fatalf("kind = %q", q.Kind())
	}
}

func TestSPSCConcurrentThroughput(t *testing.T) {
	const total = 200_000
	q := NewSPSC[int](256)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := q.Push(i, SigNone); err != nil {
				t.Errorf("push: %v", err)
				return
			}
		}
		q.Close()
	}()
	next := 0
	for {
		v, _, err := q.Pop()
		if errors.Is(err, ErrClosed) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if v != next {
			t.Fatalf("out of order: got %d, want %d", v, next)
		}
		next++
	}
	wg.Wait()
	if next != total {
		t.Fatalf("received %d, want %d", next, total)
	}
	tel := q.Telemetry().Snapshot()
	if tel.Pushes != total || tel.Pops != total {
		t.Fatalf("telemetry = %+v", tel)
	}
}

func TestSPSCPropertyFIFO(t *testing.T) {
	f := func(vals []int16, capSeed uint8) bool {
		q := NewSPSC[int16](int(capSeed%32) + 1)
		go func() {
			for _, v := range vals {
				if err := q.Push(v, SigNone); err != nil {
					return
				}
			}
			q.Close()
		}()
		for i := 0; ; i++ {
			v, _, err := q.Pop()
			if errors.Is(err, ErrClosed) {
				return i == len(vals)
			}
			if err != nil || i >= len(vals) || v != vals[i] {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRingPushPop(b *testing.B) {
	r := NewRing[int](1024)
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			_ = r.Push(i, SigNone)
		}
		r.Close()
	}()
	for {
		_, _, err := r.Pop()
		if err != nil {
			break
		}
	}
}

func BenchmarkSPSCPushPop(b *testing.B) {
	q := NewSPSC[int](1024)
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			_ = q.Push(i, SigNone)
		}
		q.Close()
	}()
	for {
		_, _, err := q.Pop()
		if err != nil {
			break
		}
	}
}

func BenchmarkGoChannelPushPop(b *testing.B) {
	ch := make(chan int, 1024)
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			ch <- i
		}
		close(ch)
	}()
	for range ch {
	}
}
