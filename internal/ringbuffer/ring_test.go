package ringbuffer

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRingPushPopOrder(t *testing.T) {
	r := NewRing[int](4)
	for i := 0; i < 4; i++ {
		if err := r.Push(i, SigNone); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	for i := 0; i < 4; i++ {
		v, s, err := r.Pop()
		if err != nil {
			t.Fatalf("pop %d: %v", i, err)
		}
		if v != i || s != SigNone {
			t.Fatalf("pop %d = (%d, %v)", i, v, s)
		}
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	r := NewRing[int](0)
	if r.Cap() != DefaultCapacity {
		t.Fatalf("cap = %d, want %d", r.Cap(), DefaultCapacity)
	}
}

func TestRingSignalsTravelWithData(t *testing.T) {
	r := NewRing[string](2)
	if err := r.Push("a", SigNone); err != nil {
		t.Fatal(err)
	}
	if err := r.Push("last", SigEOF); err != nil {
		t.Fatal(err)
	}
	if _, s, _ := r.Pop(); s != SigNone {
		t.Fatalf("first signal = %v, want none", s)
	}
	v, s, err := r.Pop()
	if err != nil || v != "last" || s != SigEOF {
		t.Fatalf("second pop = (%q, %v, %v), want (last, eof, nil)", v, s, err)
	}
}

func TestRingBlockingPushUnblockedByPop(t *testing.T) {
	r := NewRing[int](1)
	if err := r.Push(1, SigNone); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Push(2, SigNone) }()
	// Give the producer time to block, then verify the monitor-visible
	// blocked-writer clock is running.
	deadline := time.Now().Add(2 * time.Second)
	for r.WriterBlockedFor() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("producer never registered as blocked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if v, _, err := r.Pop(); err != nil || v != 1 {
		t.Fatalf("pop = (%d, %v)", v, err)
	}
	if err := <-done; err != nil {
		t.Fatalf("blocked push returned %v", err)
	}
	if r.WriterBlockedFor() != 0 {
		t.Fatal("writer still reported blocked after push completed")
	}
	if r.Telemetry().WriteBlockNs.Load() == 0 {
		t.Fatal("expected accumulated write-block time")
	}
}

func TestRingBlockingPopUnblockedByPush(t *testing.T) {
	r := NewRing[int](2)
	got := make(chan int, 1)
	go func() {
		v, _, err := r.Pop()
		if err != nil {
			got <- -1
			return
		}
		got <- v
	}()
	deadline := time.Now().Add(2 * time.Second)
	for r.ReaderStarvedFor() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("consumer never registered as starved")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := r.Push(7, SigNone); err != nil {
		t.Fatal(err)
	}
	if v := <-got; v != 7 {
		t.Fatalf("pop = %d, want 7", v)
	}
	if r.Telemetry().ReadBlockNs.Load() == 0 {
		t.Fatal("expected accumulated read-block time")
	}
}

func TestRingCloseSemantics(t *testing.T) {
	r := NewRing[int](4)
	if err := r.Push(1, SigNone); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if !r.Closed() {
		t.Fatal("ring should report closed")
	}
	// Buffered data remains readable after Close.
	if v, _, err := r.Pop(); err != nil || v != 1 {
		t.Fatalf("pop after close = (%d, %v)", v, err)
	}
	// Then drained reads report ErrClosed.
	if _, _, err := r.Pop(); !errors.Is(err, ErrClosed) {
		t.Fatalf("pop on drained closed ring = %v, want ErrClosed", err)
	}
	if err := r.Push(2, SigNone); !errors.Is(err, ErrClosed) {
		t.Fatalf("push on closed ring = %v, want ErrClosed", err)
	}
}

func TestRingCloseWakesBlockedProducer(t *testing.T) {
	r := NewRing[int](1)
	if err := r.Push(1, SigNone); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Push(2, SigNone) }()
	for r.WriterBlockedFor() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	r.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked push after close = %v, want ErrClosed", err)
	}
}

func TestRingCloseWakesBlockedConsumer(t *testing.T) {
	r := NewRing[int](2)
	done := make(chan error, 1)
	go func() {
		_, _, err := r.Pop()
		done <- err
	}()
	for r.ReaderStarvedFor() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	r.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked pop after close = %v, want ErrClosed", err)
	}
}

func TestRingTryPushTryPop(t *testing.T) {
	r := NewRing[int](1)
	ok, err := r.TryPush(1, SigNone)
	if !ok || err != nil {
		t.Fatalf("TryPush = (%v, %v)", ok, err)
	}
	ok, err = r.TryPush(2, SigNone)
	if ok || err != nil {
		t.Fatalf("TryPush full = (%v, %v), want (false, nil)", ok, err)
	}
	v, _, ok, err := r.TryPop()
	if !ok || err != nil || v != 1 {
		t.Fatalf("TryPop = (%d, %v, %v)", v, ok, err)
	}
	_, _, ok, err = r.TryPop()
	if ok || err != nil {
		t.Fatalf("TryPop empty = (%v, %v), want (false, nil)", ok, err)
	}
	r.Close()
	if _, _, _, err = r.TryPop(); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryPop closed = %v, want ErrClosed", err)
	}
	if _, err = r.TryPush(3, SigNone); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryPush closed = %v, want ErrClosed", err)
	}
}

func TestRingPeek(t *testing.T) {
	r := NewRing[int](4)
	for i := 0; i < 3; i++ {
		if err := r.Push(i*10, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		v, _, err := r.Peek(i)
		if err != nil || v != i*10 {
			t.Fatalf("Peek(%d) = (%d, %v)", i, v, err)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("peek consumed data: len = %d", r.Len())
	}
}

func TestRingPeekRangeAndRecycle(t *testing.T) {
	r := NewRing[int](8)
	for i := 0; i < 6; i++ {
		if err := r.Push(i, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	vs, _, err := r.PeekRange(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		if v != i {
			t.Fatalf("window[%d] = %d", i, v)
		}
	}
	r.Recycle(2) // slide by 2
	vs, _, err = r.PeekRange(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		if v != i+2 {
			t.Fatalf("slid window[%d] = %d, want %d", i, v, i+2)
		}
	}
}

func TestRingPeekRangeWrapped(t *testing.T) {
	r := NewRing[int](4)
	// Advance head so that a later window wraps.
	for i := 0; i < 3; i++ {
		if err := r.Push(i, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := r.Pop(); err != nil { // head = 1
		t.Fatal(err)
	}
	if _, _, err := r.Pop(); err != nil { // head = 2
		t.Fatal(err)
	}
	for i := 3; i < 6; i++ { // fills and wraps
		if err := r.Push(i, SigEOF); err != nil {
			t.Fatal(err)
		}
	}
	vs, ss, err := r.PeekRange(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 4, 5}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("wrapped window = %v, want %v", vs, want)
		}
	}
	if ss[0] != SigNone || ss[3] != SigEOF {
		t.Fatalf("wrapped signals = %v", ss)
	}
}

func TestRingPeekRangeGrowsOnOverdemand(t *testing.T) {
	r := NewRing[int](2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			if err := r.Push(i, SigNone); err != nil {
				t.Errorf("push: %v", err)
				return
			}
		}
	}()
	// Demand exceeds capacity: the read-side resize rule must grow the ring
	// so the request is fulfilled rather than deadlocking.
	vs, _, err := r.PeekRange(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 8 {
		t.Fatalf("window len = %d, want 8", len(vs))
	}
	if r.Cap() < 8 {
		t.Fatalf("cap after overdemand = %d, want >= 8", r.Cap())
	}
	if r.Telemetry().Grows.Load() == 0 {
		t.Fatal("expected a recorded grow")
	}
	<-done
}

func TestRingPeekRangeOverdemandBeyondMaxCap(t *testing.T) {
	r := NewRing[int](2)
	r.SetMaxCap(4)
	go func() {
		for i := 0; i < 10; i++ {
			if err := r.Push(i, SigNone); err != nil {
				return
			}
		}
	}()
	vs, _, err := r.PeekRange(10) // demand above maxCap must still be met
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 10 {
		t.Fatalf("window len = %d, want 10", len(vs))
	}
}

func TestRingPeekRangeShortOnClose(t *testing.T) {
	r := NewRing[int](8)
	if err := r.Push(1, SigNone); err != nil {
		t.Fatal(err)
	}
	if err := r.Push(2, SigNone); err != nil {
		t.Fatal(err)
	}
	r.Close()
	vs, _, err := r.PeekRange(5)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if len(vs) != 2 || vs[0] != 1 || vs[1] != 2 {
		t.Fatalf("short window = %v, want [1 2]", vs)
	}
	r.Recycle(2)
	vs, _, err = r.PeekRange(1)
	if !errors.Is(err, ErrClosed) || len(vs) != 0 {
		t.Fatalf("drained window = (%v, %v)", vs, err)
	}
}

func TestRingPeekRangeZero(t *testing.T) {
	r := NewRing[int](2)
	vs, ss, err := r.PeekRange(0)
	if vs != nil || ss != nil || err != nil {
		t.Fatalf("PeekRange(0) = (%v, %v, %v)", vs, ss, err)
	}
}

func TestRingRecycleValidation(t *testing.T) {
	r := NewRing[int](4)
	r.Recycle(0)  // no-op
	r.Recycle(-1) // no-op
	defer func() {
		if recover() == nil {
			t.Fatal("Recycle past end should panic")
		}
	}()
	r.Recycle(1)
}

func TestRingResizeGrowPreservesOrder(t *testing.T) {
	r := NewRing[int](4)
	// Create a wrapped state: head != 0.
	for i := 0; i < 4; i++ {
		if err := r.Push(i, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, _, err := r.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 4; i < 6; i++ {
		if err := r.Push(i, Signal(SigUser)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Resize(16); err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 16 {
		t.Fatalf("cap = %d, want 16", r.Cap())
	}
	want := []int{2, 3, 4, 5}
	for _, w := range want {
		v, _, err := r.Pop()
		if err != nil || v != w {
			t.Fatalf("pop after resize = (%d, %v), want %d", v, err, w)
		}
	}
}

func TestRingResizeShrink(t *testing.T) {
	r := NewRing[int](16)
	for i := 0; i < 4; i++ {
		if err := r.Push(i, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Resize(2); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("shrink below len = %v, want ErrTooSmall", err)
	}
	if err := r.Resize(4); err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", r.Cap())
	}
	tel := r.Telemetry().Snapshot()
	if tel.Shrinks != 1 {
		t.Fatalf("shrinks = %d, want 1", tel.Shrinks)
	}
}

func TestRingResizeUnblocksProducer(t *testing.T) {
	r := NewRing[int](1)
	if err := r.Push(0, SigNone); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Push(1, SigNone) }()
	for r.WriterBlockedFor() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	// The monitor's write-side rule fires a grow; producer must proceed.
	if err := r.Resize(4); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("push after grow = %v", err)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.Len())
	}
}

func TestRingResizeMaxCapClamp(t *testing.T) {
	r := NewRing[int](2)
	r.SetMaxCap(8)
	if err := r.Resize(64); err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 8 {
		t.Fatalf("cap = %d, want clamped 8", r.Cap())
	}
	if err := r.Resize(0); err != nil { // clamped up to 1
		t.Fatal(err)
	}
	if r.Cap() != 1 {
		t.Fatalf("cap = %d, want 1", r.Cap())
	}
}

func TestRingResizeNoop(t *testing.T) {
	r := NewRing[int](8)
	if err := r.Resize(8); err != nil {
		t.Fatal(err)
	}
	if r.Telemetry().Resizes.Load() != 0 {
		t.Fatal("same-size resize should be a no-op")
	}
}

func TestRingPushBatch(t *testing.T) {
	r := NewRing[int](4)
	done := make(chan error, 1)
	go func() { done <- r.PushBatch([]int{0, 1, 2, 3, 4, 5, 6, 7}, SigEOF) }()
	for i := 0; i < 8; i++ {
		v, s, err := r.Pop()
		if err != nil || v != i {
			t.Fatalf("pop %d = (%d, %v)", i, v, err)
		}
		wantSig := SigNone
		if i == 7 {
			wantSig = SigEOF
		}
		if s != wantSig {
			t.Fatalf("signal at %d = %v, want %v", i, s, wantSig)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := r.Telemetry().Pushes.Load(); got != 8 {
		t.Fatalf("pushes = %d, want 8", got)
	}
}

func TestRingPushBatchClosed(t *testing.T) {
	r := NewRing[int](2)
	r.Close()
	if err := r.PushBatch([]int{1}, SigNone); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch on closed = %v, want ErrClosed", err)
	}
}

func TestRingFromSlice(t *testing.T) {
	data := []int{10, 20, 30}
	r := NewRingFromSlice(data)
	if !r.Closed() {
		t.Fatal("slice ring must be born closed")
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	// Zero copy: the window must alias the caller's array.
	vs, _, err := r.PeekRange(3)
	if err != nil && !errors.Is(err, ErrClosed) {
		t.Fatal(err)
	}
	if &vs[0] != &data[0] {
		t.Fatal("PeekRange on slice ring must alias the source array")
	}
	if err := r.Push(40, SigNone); !errors.Is(err, ErrClosed) {
		t.Fatalf("push on read-only ring = %v, want ErrClosed", err)
	}
	if err := r.Resize(10); !errors.Is(err, ErrClosed) {
		t.Fatalf("resize on read-only ring = %v, want ErrClosed", err)
	}
	for _, w := range data {
		v, _, err := r.Pop()
		if err != nil || v != w {
			t.Fatalf("pop = (%d, %v), want %d", v, err, w)
		}
	}
	if _, _, err := r.Pop(); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained slice ring pop = %v, want ErrClosed", err)
	}
}

func TestRingConcurrentProducerConsumer(t *testing.T) {
	const total = 100_000
	r := NewRing[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := r.Push(i, SigNone); err != nil {
				t.Errorf("push: %v", err)
				return
			}
		}
		r.Close()
	}()
	var got int
	for {
		v, _, err := r.Pop()
		if errors.Is(err, ErrClosed) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if v != got {
			t.Fatalf("out of order: got %d, want %d", v, got)
		}
		got++
	}
	wg.Wait()
	if got != total {
		t.Fatalf("received %d, want %d", got, total)
	}
	tel := r.Telemetry().Snapshot()
	if tel.Pushes != total || tel.Pops != total {
		t.Fatalf("telemetry = %+v", tel)
	}
}

func TestRingConcurrentWithMonitorResizes(t *testing.T) {
	const total = 50_000
	r := NewRing[int](8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // a monitor growing and shrinking while traffic flows
		defer wg.Done()
		caps := []int{16, 8, 64, 32, 128, 8}
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Resize(caps[i%len(caps)]) // ErrTooSmall is fine
			i++
			time.Sleep(50 * time.Microsecond)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := r.Push(i, SigNone); err != nil {
				t.Errorf("push: %v", err)
				return
			}
		}
		r.Close()
	}()
	var next int
	for {
		v, _, err := r.Pop()
		if errors.Is(err, ErrClosed) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if v != next {
			t.Fatalf("out of order under resize: got %d, want %d", v, next)
		}
		next++
	}
	close(stop)
	wg.Wait()
	if next != total {
		t.Fatalf("received %d, want %d", next, total)
	}
}

// Property: any interleaving of pushes and pops through a small ring
// preserves FIFO order and loses nothing.
func TestRingPropertyFIFO(t *testing.T) {
	f := func(vals []int16, capSeed uint8) bool {
		capacity := int(capSeed%16) + 1
		r := NewRing[int16](capacity)
		go func() {
			for _, v := range vals {
				if err := r.Push(v, SigNone); err != nil {
					return
				}
			}
			r.Close()
		}()
		for i := 0; ; i++ {
			v, _, err := r.Pop()
			if errors.Is(err, ErrClosed) {
				return i == len(vals)
			}
			if err != nil || i >= len(vals) || v != vals[i] {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: resizing at arbitrary points never reorders or drops elements.
func TestRingPropertyResizePreservesContents(t *testing.T) {
	f := func(vals []int8, newCaps []uint8) bool {
		r := NewRing[int8](4)
		pushed := 0
		popped := 0
		expect := func(v int8) bool {
			ok := v == vals[popped]
			popped++
			return ok
		}
		for pushed < len(vals) || popped < pushed {
			if pushed < len(vals) {
				if ok, _ := r.TryPush(vals[pushed], SigNone); ok {
					pushed++
				}
			}
			if len(newCaps) > 0 {
				c := int(newCaps[0]%64) + 1
				newCaps = newCaps[1:]
				_ = r.Resize(c)
			}
			if v, _, ok, _ := r.TryPop(); ok {
				if !expect(v) {
					return false
				}
			}
		}
		return popped == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGrowTarget(t *testing.T) {
	cases := []struct{ demand, maxCap, want int }{
		{3, 0, 4},
		{4, 0, 4},
		{5, 0, 8},
		{5, 6, 6},
		{10, 6, 10}, // demand above maxCap: fulfilled anyway
		{1, 0, 1},
	}
	for _, c := range cases {
		if got := growTarget(c.demand, c.maxCap); got != c.want {
			t.Errorf("growTarget(%d, %d) = %d, want %d", c.demand, c.maxCap, got, c.want)
		}
	}
}

func TestOccupancyHistogramRing(t *testing.T) {
	r := NewRing[int](16)
	// Occupancies after each push: 1, 2, 3, 4 -> buckets 0,1,1,2.
	for i := 0; i < 4; i++ {
		if err := r.Push(i, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	snap := r.Telemetry().Snapshot()
	if snap.Occupancy[0] != 1 || snap.Occupancy[1] != 2 || snap.Occupancy[2] != 1 {
		t.Fatalf("occupancy buckets = %v", snap.Occupancy[:4])
	}
	// Bulk push records once per batch at the resulting occupancy (4+8=12
	// -> bucket 3).
	if err := r.PushN(make([]int, 8), nil); err != nil {
		t.Fatal(err)
	}
	snap = r.Telemetry().Snapshot()
	if snap.Occupancy[3] != 1 {
		t.Fatalf("bulk occupancy buckets = %v", snap.Occupancy[:5])
	}
}

func TestOccupancyHistogramSPSC(t *testing.T) {
	q := NewSPSC[int](8)
	for i := 0; i < 3; i++ {
		if ok, err := q.TryPush(i, SigNone); !ok || err != nil {
			t.Fatalf("push %d: ok=%v err=%v", i, ok, err)
		}
	}
	snap := q.Telemetry().Snapshot()
	// Occupancies 1, 2, 3 -> buckets 0, 1, 1.
	if snap.Occupancy[0] != 1 || snap.Occupancy[1] != 2 {
		t.Fatalf("occupancy buckets = %v", snap.Occupancy[:3])
	}
	if err := q.PushN(make([]int, 5), nil); err != nil {
		t.Fatal(err)
	}
	snap = q.Telemetry().Snapshot()
	if snap.Occupancy[3] != 1 { // 3+5 = 8 -> bucket 3
		t.Fatalf("bulk occupancy buckets = %v", snap.Occupancy[:5])
	}
}
