package ringbuffer

// Wake identifies one queue-state transition of interest to a parked
// scheduler: the transitions are exactly the edges of the cooperative
// readiness predicate (inputs non-empty or closed, outputs non-full or
// closed), so a kernel parked on a Stall needs to be re-queued on no other
// occasion.
type Wake uint8

const (
	// WakeNotEmpty fires when a push transitions the queue from empty to
	// non-empty: the consumer, if parked, can make progress again.
	WakeNotEmpty Wake = iota
	// WakeNotFull fires when a pop (or a capacity grow) transitions the
	// queue from full to non-full: the producer, if parked, can push again.
	WakeNotFull
	// WakeClosed fires on Close: both endpoints must re-run so they can
	// observe ErrClosed and stop (deadlock aborts close every queue, so a
	// parked actor is never stranded by teardown).
	WakeClosed
)

// String returns the transition's stable name.
func (w Wake) String() string {
	switch w {
	case WakeNotEmpty:
		return "not-empty"
	case WakeNotFull:
		return "not-full"
	case WakeClosed:
		return "closed"
	}
	return "wake(?)"
}

// WakeHooker is implemented by queue kinds that can notify a scheduler of
// readiness transitions. The hook contract is strict, because it runs on
// the queues' hot paths (under the mutex ring's lock; on the SPSC ring's
// lock-free push/pop sequence):
//
//   - it must not block,
//   - it must not call back into any queue, and
//   - it must tolerate spurious invocations (the SPSC transition detection
//     is conservative under concurrent endpoint races — a rare missed edge
//     is rescued by the scheduler's watchdog, a rare extra edge must be
//     harmless).
//
// Passing nil detaches the hook. Installation is not synchronized with
// in-flight operations beyond the queue's own ordering: install before the
// endpoints start (or accept that a transition during the install race may
// be missed — the watchdog covers that too).
type WakeHooker interface {
	SetWakeHook(func(Wake))
}
