package ringbuffer

import "time"

// Batch views: borrow/release access to the ring's backing array.
//
// PopN moves every element twice on its way to a serializer — once out of
// the ring into the caller's scratch slice, and once from the scratch into
// whatever owns the bytes (a wire frame, a replay buffer). A batch view
// removes the first copy entirely: AcquireView hands the consumer the
// buffered region of the ring's own storage (two contiguous segments when
// the region wraps, with the synchronized signals aligned), the consumer
// reads — or serializes, or transforms — in place, and ReleaseView(n)
// commits consumption of the first n elements without any element ever
// being moved. AcquireWriteView is the producer-side mirror: it reserves
// free slots of the backing array so decoded batches can be materialized
// directly into ring storage and published with ReleaseWriteView(n).
//
// Both ring kinds implement the same surface:
//
//   - Ring[T] (mutex): the view pins the borrowed region. Best-effort
//     eviction never touches a pinned head (incoming signal-free elements
//     are shed instead, exactly like a signal-pinned head), and a Resize
//     requested while a view is out is deferred and applied at release, so
//     the backing array is never repacked under a borrower.
//   - SPSC[T] (lock-free): a read view spans one epoch — at most up to the
//     segment's sealed tail — and is valid across the epoch-swap resize by
//     construction: sealed segments are immutable (the producer only writes
//     sequences past the seal, which live in the successor), and the
//     consumer's segment pointer keeps the borrowed epoch alive. A pending
//     swap therefore completes at the producer's next operation while the
//     consumer still holds the old epoch's storage, and the consumer
//     follows across the seal after release — the same discipline DrainTo
//     uses, stretched over a borrow window.
//
// Contract (single consumer / single producer, as for Pop/Push):
//   - At most one read view and one write view may be outstanding per ring;
//     a second Acquire while one is out panics (consumer logic error).
//   - A view with Len() == 0 took no pin and must NOT be released; a
//     non-empty view MUST be released exactly once.
//   - ReleaseView(n) consumes the first n elements (0 <= n <= Len());
//     the remainder stays buffered. ReleaseWriteView(n) publishes the
//     first n reserved slots; the rest return to the free region.
//   - The view's slices are invalid after release.

// View is a borrowed read window over a ring's backing array: up to two
// contiguous value segments (the second non-empty only when the buffered
// region wraps) with their aligned signal segments. Sig slices may be nil,
// meaning every element in that segment carries SigNone.
type View[T any] struct {
	Vals  []T
	Sigs  []Signal
	Vals2 []T
	Sigs2 []Signal
}

// Len returns the number of borrowed elements.
func (v View[T]) Len() int { return len(v.Vals) + len(v.Vals2) }

// SigAt returns the signal aligned with borrowed element i.
func (v View[T]) SigAt(i int) Signal {
	if i < len(v.Vals) {
		if v.Sigs == nil {
			return SigNone
		}
		return v.Sigs[i]
	}
	if v.Sigs2 == nil {
		return SigNone
	}
	return v.Sigs2[i-len(v.Vals)]
}

// At returns borrowed element i.
func (v View[T]) At(i int) T {
	if i < len(v.Vals) {
		return v.Vals[i]
	}
	return v.Vals2[i-len(v.Vals)]
}

// WriteView is a borrowed write window over a ring's free region: up to two
// contiguous value segments with their signal segments, pre-cleared to
// SigNone. Populate some prefix and publish it with ReleaseWriteView(n).
type WriteView[T any] struct {
	Vals  []T
	Sigs  []Signal
	Vals2 []T
	Sigs2 []Signal
}

// Len returns the number of reserved slots.
func (v WriteView[T]) Len() int { return len(v.Vals) + len(v.Vals2) }

// SetAt stores (val, sig) into reserved slot i.
func (v WriteView[T]) SetAt(i int, val T, sig Signal) {
	if i < len(v.Vals) {
		v.Vals[i] = val
		v.Sigs[i] = sig
		return
	}
	v.Vals2[i-len(v.Vals)] = val
	v.Sigs2[i-len(v.Vals)] = sig
}

// CopyIn bulk-copies vals (and sigs, which may be nil = all SigNone) into
// the reserved slots starting at offset off, returning the number copied.
func (v WriteView[T]) CopyIn(off int, vals []T, sigs []Signal) int {
	n := 0
	if off < len(v.Vals) {
		n = copy(v.Vals[off:], vals)
		if sigs != nil {
			copy(v.Sigs[off:], sigs[:n])
		}
	}
	off2 := off + n - len(v.Vals)
	if n < len(vals) && off2 >= 0 && off2 < len(v.Vals2) {
		m := copy(v.Vals2[off2:], vals[n:])
		if sigs != nil {
			copy(v.Sigs2[off2:], sigs[n:n+m])
		}
		n += m
	}
	return n
}

// ViewHolder is implemented by queues supporting batch views; the monitor
// uses it to skip resize decisions for links whose storage is pinned by an
// outstanding borrow.
type ViewHolder interface {
	// ViewHeldFor returns how long the longest currently outstanding view
	// (read or write) has been held, or zero when none is out.
	ViewHeldFor() time.Duration
}

// ---------------------------------------------------------------------------
// Mutex ring
// ---------------------------------------------------------------------------

// sliceViewLocked builds the read view of the first n buffered elements,
// aliasing storage in at most two segments.
func (r *Ring[T]) sliceViewLocked(n int) View[T] {
	first := min(n, len(r.vals)-r.head)
	v := View[T]{Vals: r.vals[r.head : r.head+first], Vals2: r.vals[:n-first]}
	if r.sigs != nil {
		v.Sigs = r.sigs[r.head : r.head+first]
		v.Sigs2 = r.sigs[:n-first]
	}
	return v
}

// AcquireView borrows up to max buffered elements, blocking until at least
// one is available. Once the ring is closed and drained it returns
// ErrClosed with an empty view (which must not be released).
func (r *Ring[T]) AcquireView(max int) (View[T], error) {
	if max <= 0 {
		return View[T]{}, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.viewOut {
		panic("ringbuffer: AcquireView with a read view already outstanding")
	}
	if err := r.waitForItemsLocked(1); err != nil {
		return View[T]{}, err
	}
	return r.acquireViewLocked(max), nil
}

// TryAcquireView is the non-blocking AcquireView: it borrows whatever is
// buffered, up to max elements, returning an empty view with a nil error
// when the ring is empty but open and (empty, ErrClosed) once it is closed
// and drained.
func (r *Ring[T]) TryAcquireView(max int) (View[T], error) {
	if max <= 0 {
		return View[T]{}, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.viewOut {
		panic("ringbuffer: TryAcquireView with a read view already outstanding")
	}
	if r.n == 0 {
		if r.closed {
			return View[T]{}, ErrClosed
		}
		return View[T]{}, nil
	}
	return r.acquireViewLocked(max), nil
}

func (r *Ring[T]) acquireViewLocked(max int) View[T] {
	n := min(r.n, max)
	r.viewOut, r.viewN = true, n
	r.viewSince = nowNanos()
	return r.sliceViewLocked(n)
}

// ReleaseView ends the outstanding read view, consuming its first n
// elements (they count as Pops, like DrainTo); the rest stay buffered. A
// Resize deferred by the borrow is applied now.
func (r *Ring[T]) ReleaseView(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.viewOut {
		panic("ringbuffer: ReleaseView without an outstanding view")
	}
	if n < 0 || n > r.viewN {
		panic("ringbuffer: ReleaseView past the borrowed window")
	}
	r.viewOut = false
	r.tel.Views.Inc()
	r.tel.ViewHoldNs.Add(uint64(nowNanos() - r.viewSince))
	r.viewSince = 0
	if n > 0 {
		r.dropLocked(n)
	}
	r.applyDeferredLocked()
}

// AcquireWriteView reserves up to max free slots for in-place production,
// blocking until at least one is free (a full best-effort ring evicts
// stale elements first, unless a read view pins them). It returns ErrClosed
// with an empty view on a closed or read-only ring.
func (r *Ring[T]) AcquireWriteView(max int) (WriteView[T], error) {
	if max <= 0 {
		return WriteView[T]{}, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wviewOut {
		panic("ringbuffer: AcquireWriteView with a write view already outstanding")
	}
	if r.bestEffort && !r.closed && !r.readOnly && r.n == len(r.vals) {
		r.evictLocked(max)
	}
	if err := r.waitForSpaceLocked(1); err != nil {
		return WriteView[T]{}, err
	}
	return r.acquireWriteViewLocked(max), nil
}

// TryAcquireWriteView is the non-blocking AcquireWriteView: an empty view
// with a nil error means no slot is free right now (callers fall back to
// PushN, which also carries the best-effort shed policy).
func (r *Ring[T]) TryAcquireWriteView(max int) (WriteView[T], error) {
	if max <= 0 {
		return WriteView[T]{}, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wviewOut {
		panic("ringbuffer: TryAcquireWriteView with a write view already outstanding")
	}
	if r.closed || r.readOnly {
		return WriteView[T]{}, ErrClosed
	}
	if r.bestEffort && r.n == len(r.vals) {
		r.evictLocked(max)
	}
	if r.n == len(r.vals) {
		return WriteView[T]{}, nil
	}
	return r.acquireWriteViewLocked(max), nil
}

func (r *Ring[T]) acquireWriteViewLocked(max int) WriteView[T] {
	k := min(len(r.vals)-r.n, max)
	if r.sigs == nil {
		// Writers may set signals directly in the view; materialize the
		// lazily-allocated signal array up front.
		r.sigs = make([]Signal, len(r.vals))
	}
	idx := r.index(r.n)
	first := min(k, len(r.vals)-idx)
	wv := WriteView[T]{
		Vals: r.vals[idx : idx+first], Sigs: r.sigs[idx : idx+first],
		Vals2: r.vals[:k-first], Sigs2: r.sigs[:k-first],
	}
	clearSignals(wv.Sigs)
	clearSignals(wv.Sigs2)
	r.wviewOut, r.wviewN = true, k
	r.wviewSince = nowNanos()
	return wv
}

// ReleaseWriteView ends the outstanding write view, publishing its first n
// slots as buffered elements; the rest return to the free region. A Resize
// deferred by the borrow is applied now.
func (r *Ring[T]) ReleaseWriteView(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wviewOut {
		panic("ringbuffer: ReleaseWriteView without an outstanding view")
	}
	if n < 0 || n > r.wviewN {
		panic("ringbuffer: ReleaseWriteView past the reserved window")
	}
	// Slots written but not published return to the free region; drop any
	// payload references the borrower left there.
	var zero T
	for j := n; j < r.wviewN; j++ {
		r.vals[r.index(r.n+j)] = zero
	}
	r.wviewOut = false
	r.tel.Views.Inc()
	r.tel.ViewHoldNs.Add(uint64(nowNanos() - r.wviewSince))
	r.wviewSince = 0
	if n > 0 {
		wasEmpty := r.n == 0
		r.n += n
		r.tel.Pushes.Add(uint64(n))
		r.tel.recordOcc(r.n)
		r.notEmpty.Broadcast()
		r.wokeNotEmpty(wasEmpty)
	}
	r.applyDeferredLocked()
}

// applyDeferredLocked performs a resize that was requested while a view
// was out, once the last view is released. The target is clamped to the
// current length: the deferred request was accepted, so it must not start
// failing retroactively because the buffer filled meanwhile.
func (r *Ring[T]) applyDeferredLocked() {
	if r.deferredCap == 0 || r.viewOut || r.wviewOut {
		return
	}
	target := r.deferredCap
	r.deferredCap = 0
	if target < r.n {
		target = r.n
	}
	_ = r.resizeLocked(target)
}

// ViewHeldFor implements ViewHolder.
func (r *Ring[T]) ViewHeldFor() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := nowNanos()
	var d int64
	if r.viewOut && now-r.viewSince > d {
		d = now - r.viewSince
	}
	if r.wviewOut && now-r.wviewSince > d {
		d = now - r.wviewSince
	}
	return time.Duration(d)
}

// ---------------------------------------------------------------------------
// Lock-free SPSC ring
// ---------------------------------------------------------------------------

// AcquireView borrows up to max buffered elements, spinning (with the
// usual escalating back-off) until at least one is available. The view
// spans a single epoch: at most up to the borrowed segment's sealed tail,
// so a swap installed mid-borrow never invalidates it. Once the queue is
// closed and drained it returns ErrClosed with an empty view.
func (q *SPSC[T]) AcquireView(max int) (View[T], error) {
	var spins int
	var blockedAt int64
	for {
		v, err := q.TryAcquireView(max)
		if v.Len() > 0 || err != nil {
			q.clearReaderBlock(blockedAt)
			return v, err
		}
		if blockedAt == 0 {
			blockedAt = nowNanos()
			q.readerBlockSince.Store(blockedAt)
		}
		backoff(&spins, &q.tel)
	}
}

// TryAcquireView is the non-blocking AcquireView: an empty view with a nil
// error when the queue is empty but open, (empty, ErrClosed) once it is
// closed and drained. Consumer-only, like TryPop.
func (q *SPSC[T]) TryAcquireView(max int) (View[T], error) {
	if max <= 0 {
		return View[T]{}, nil
	}
	if q.viewOut {
		panic("ringbuffer: TryAcquireView with a read view already outstanding")
	}
	h := q.head.Load()
	t := q.tail.Load()
	if t == h {
		if !q.closed.Load() {
			return View[T]{}, nil
		}
		// Re-check emptiness after observing closed: the producer may have
		// pushed between our tail load and its Close.
		t = q.tail.Load()
		if t == h {
			return View[T]{}, ErrClosed
		}
	}
	s := q.segFor(h)
	limit := t
	if sealed := s.sealedAt.Load(); sealed < limit {
		limit = sealed // this epoch ends before the tail
	}
	n := min(int(limit-h), max)
	i := int((h - s.base) & s.mask)
	first := min(n, len(s.vals)-i)
	v := View[T]{
		Vals: s.vals[i : i+first], Sigs: s.sigs[i : i+first],
		Vals2: s.vals[:n-first], Sigs2: s.sigs[:n-first],
	}
	q.viewOut, q.viewN, q.viewH = true, n, h
	q.viewSince.Store(nowNanos())
	return v, nil
}

// ReleaseView ends the outstanding read view, consuming its first n
// elements with a single head publish (they count as Pops, like DrainTo);
// the rest stay buffered.
func (q *SPSC[T]) ReleaseView(n int) {
	if !q.viewOut {
		panic("ringbuffer: ReleaseView without an outstanding view")
	}
	if n < 0 || n > q.viewN {
		panic("ringbuffer: ReleaseView past the borrowed window")
	}
	q.viewOut = false
	q.tel.Views.Inc()
	q.tel.ViewHoldNs.Add(uint64(nowNanos() - q.viewSince.Load()))
	q.viewSince.Store(0)
	if n == 0 {
		return
	}
	// The view was built from q.cons (segFor caches it), whose slots for
	// [viewH, viewH+n) are exactly the borrowed segments; zero them so the
	// GC can reclaim consumed payloads, then publish the head advance.
	s := q.cons
	h := q.viewH
	i := int((h - s.base) & s.mask)
	first := min(n, len(s.vals)-i)
	var zero T
	for j := 0; j < first; j++ {
		s.vals[i+j] = zero
	}
	for j := 0; j < n-first; j++ {
		s.vals[j] = zero
	}
	q.head.Store(h + uint64(n))
	q.tel.Pops.Add(uint64(n))
	q.notifyPopped(h)
}

// AcquireWriteView reserves up to max free slots of the producer's epoch,
// spinning until at least one is free. A pending epoch swap is installed
// first, so a full old ring never wedges the producer once the monitor has
// granted space. On a best-effort queue a full ring returns an empty view
// immediately instead of spinning (this side is drop-newest: the caller
// sheds via PushN, which counts the loss). Returns ErrClosed with an empty
// view on a closed queue.
func (q *SPSC[T]) AcquireWriteView(max int) (WriteView[T], error) {
	var spins int
	var blockedAt int64
	for {
		v, err := q.TryAcquireWriteView(max)
		if v.Len() > 0 || err != nil {
			q.clearWriterBlock(blockedAt)
			return v, err
		}
		if q.bestEffort.Load() {
			q.clearWriterBlock(blockedAt)
			return WriteView[T]{}, nil
		}
		if blockedAt == 0 {
			blockedAt = nowNanos()
			q.writerBlockSince.Store(blockedAt)
		}
		backoff(&spins, &q.tel)
	}
}

// TryAcquireWriteView is the non-blocking AcquireWriteView: an empty view
// with a nil error means the queue is full right now. Producer-only, like
// TryPush.
func (q *SPSC[T]) TryAcquireWriteView(max int) (WriteView[T], error) {
	if max <= 0 {
		return WriteView[T]{}, nil
	}
	if q.wviewOut {
		panic("ringbuffer: TryAcquireWriteView with a write view already outstanding")
	}
	if q.closed.Load() {
		return WriteView[T]{}, ErrClosed
	}
	t := q.tail.Load()
	if q.pending.Load() != nil {
		q.install(t)
	}
	s := q.prod
	h := q.head.Load()
	free := s.freeAt(t, h)
	if free == 0 {
		return WriteView[T]{}, nil
	}
	k := min(free, max)
	i := int((t - s.base) & s.mask)
	first := min(k, len(s.vals)-i)
	wv := WriteView[T]{
		Vals: s.vals[i : i+first], Sigs: s.sigs[i : i+first],
		Vals2: s.vals[:k-first], Sigs2: s.sigs[:k-first],
	}
	clearSignals(wv.Sigs)
	clearSignals(wv.Sigs2)
	q.wviewOut, q.wviewN, q.wviewT = true, k, t
	q.wviewSince.Store(nowNanos())
	return wv, nil
}

// ReleaseWriteView ends the outstanding write view, publishing its first n
// slots with a single tail store; the rest return to the free region.
func (q *SPSC[T]) ReleaseWriteView(n int) {
	if !q.wviewOut {
		panic("ringbuffer: ReleaseWriteView without an outstanding view")
	}
	if n < 0 || n > q.wviewN {
		panic("ringbuffer: ReleaseWriteView past the reserved window")
	}
	// The view was carved from q.prod at tail q.wviewT; an epoch swap
	// cannot have moved the producer meanwhile (installs happen only in
	// producer-side operations, and the producer was holding this view).
	s := q.prod
	t := q.wviewT
	var zero T
	for j := n; j < q.wviewN; j++ {
		s.vals[(t+uint64(j)-s.base)&s.mask] = zero
	}
	q.wviewOut = false
	q.tel.Views.Inc()
	q.tel.ViewHoldNs.Add(uint64(nowNanos() - q.wviewSince.Load()))
	q.wviewSince.Store(0)
	if n == 0 {
		return
	}
	q.tail.Store(t + uint64(n)) // release: publishes the batch
	q.tel.Pushes.Add(uint64(n))
	q.tel.recordOcc(int(t + uint64(n) - q.head.Load()))
	q.notifyPushed(t)
}

// ViewHeldFor implements ViewHolder.
func (q *SPSC[T]) ViewHeldFor() time.Duration {
	now := nowNanos()
	var d int64
	if since := q.viewSince.Load(); since != 0 && now-since > d {
		d = now - since
	}
	if since := q.wviewSince.Load(); since != 0 && now-since > d {
		d = now - since
	}
	return time.Duration(d)
}

// guard: both ring kinds implement the view surface and the monitor hook.
var (
	_ ViewHolder = (*Ring[int])(nil)
	_ ViewHolder = (*SPSC[int])(nil)
)
