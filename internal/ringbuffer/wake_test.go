package ringbuffer

import (
	"sync"
	"testing"
)

// wakeLog collects hook invocations (the mutex ring calls the hook under
// its lock, so the log needs its own).
type wakeLog struct {
	mu sync.Mutex
	ws []Wake
}

func (l *wakeLog) hook(w Wake) {
	l.mu.Lock()
	l.ws = append(l.ws, w)
	l.mu.Unlock()
}

func (l *wakeLog) count(w Wake) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, x := range l.ws {
		if x == w {
			n++
		}
	}
	return n
}

func TestRingWakeHook(t *testing.T) {
	r := NewRing[int](2)
	var log wakeLog
	r.SetWakeHook(log.hook)

	// Empty -> non-empty fires exactly once; the second push stays quiet.
	mustPush(t, r, 1)
	mustPush(t, r, 2)
	if got := log.count(WakeNotEmpty); got != 1 {
		t.Fatalf("not-empty fires = %d, want 1", got)
	}

	// Full -> non-full fires on the first pop only.
	if _, _, err := r.Pop(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Pop(); err != nil {
		t.Fatal(err)
	}
	if got := log.count(WakeNotFull); got != 1 {
		t.Fatalf("not-full fires = %d, want 1", got)
	}

	// Refill after drain: a fresh empty -> non-empty edge.
	mustPush(t, r, 3)
	if got := log.count(WakeNotEmpty); got != 2 {
		t.Fatalf("not-empty fires after refill = %d, want 2", got)
	}

	r.Close()
	if got := log.count(WakeClosed); got != 1 {
		t.Fatalf("closed fires = %d, want 1", got)
	}

	// Detached hook must not fire.
	r2 := NewRing[int](2)
	r2.SetWakeHook(log.hook)
	r2.SetWakeHook(nil)
	mustPush(t, r2, 1)
	if got := log.count(WakeNotEmpty); got != 2 {
		t.Fatalf("detached hook fired (not-empty = %d)", got)
	}
}

func TestRingWakeHookBatchPaths(t *testing.T) {
	r := NewRing[int](4)
	var log wakeLog
	r.SetWakeHook(log.hook)

	if err := r.PushN([]int{1, 2, 3, 4}, nil); err != nil {
		t.Fatal(err)
	}
	if got := log.count(WakeNotEmpty); got != 1 {
		t.Fatalf("PushN not-empty fires = %d, want 1", got)
	}
	dst := make([]int, 4)
	if _, err := r.DrainTo(dst, nil); err != nil {
		t.Fatal(err)
	}
	if got := log.count(WakeNotFull); got != 1 {
		t.Fatalf("DrainTo not-full fires = %d, want 1", got)
	}
}

func TestRingWakeHookGrowFiresNotFull(t *testing.T) {
	r := NewRing[int](2)
	var log wakeLog
	r.SetWakeHook(log.hook)
	mustPush(t, r, 1)
	mustPush(t, r, 2)
	if err := r.Resize(8); err != nil {
		t.Fatal(err)
	}
	if got := log.count(WakeNotFull); got != 1 {
		t.Fatalf("grow not-full fires = %d, want 1", got)
	}
}

func TestSPSCWakeHook(t *testing.T) {
	q := NewSPSC[int](2)
	var log wakeLog
	q.SetWakeHook(log.hook)

	ok, err := q.TryPush(1, SigNone)
	if !ok || err != nil {
		t.Fatal(ok, err)
	}
	ok, err = q.TryPush(2, SigNone)
	if !ok || err != nil {
		t.Fatal(ok, err)
	}
	if got := log.count(WakeNotEmpty); got != 1 {
		t.Fatalf("not-empty fires = %d, want 1", got)
	}

	// Queue is at capacity: the first pop is a full -> non-full edge.
	if _, _, ok, err := q.TryPop(); !ok || err != nil {
		t.Fatal(ok, err)
	}
	if got := log.count(WakeNotFull); got != 1 {
		t.Fatalf("not-full fires = %d, want 1", got)
	}
	if _, _, ok, err := q.TryPop(); !ok || err != nil {
		t.Fatal(ok, err)
	}
	if got := log.count(WakeNotFull); got != 1 {
		t.Fatalf("non-full pop fired spuriously (= %d)", got)
	}

	// Batch paths: PushN into empty fires once, DrainTo from full fires once.
	if err := q.PushN([]int{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	if got := log.count(WakeNotEmpty); got != 2 {
		t.Fatalf("PushN not-empty fires = %d, want 2", got)
	}
	dst := make([]int, 2)
	if _, err := q.DrainTo(dst, nil); err != nil {
		t.Fatal(err)
	}
	if got := log.count(WakeNotFull); got != 2 {
		t.Fatalf("DrainTo not-full fires = %d, want 2", got)
	}

	q.Close()
	if got := log.count(WakeClosed); got != 1 {
		t.Fatalf("closed fires = %d, want 1", got)
	}
}

func TestSPSCWakeHookViews(t *testing.T) {
	q := NewSPSC[int](2)
	var log wakeLog
	q.SetWakeHook(log.hook)

	wv, err := q.TryAcquireWriteView(2)
	if err != nil || wv.Len() != 2 {
		t.Fatal(err, wv.Len())
	}
	wv.Vals[0], wv.Vals[1] = 10, 11
	q.ReleaseWriteView(2)
	if got := log.count(WakeNotEmpty); got != 1 {
		t.Fatalf("write-view not-empty fires = %d, want 1", got)
	}

	v, err := q.AcquireView(2)
	if err != nil || v.Len() != 2 {
		t.Fatal(err, v.Len())
	}
	q.ReleaseView(2)
	if got := log.count(WakeNotFull); got != 1 {
		t.Fatalf("read-view not-full fires = %d, want 1", got)
	}
}

func mustPush(t *testing.T, r *Ring[int], v int) {
	t.Helper()
	if err := r.Push(v, SigNone); err != nil {
		t.Fatal(err)
	}
}
