// Package ringbuffer implements the FIFO stream queues that connect RaftLib
// compute kernels.
//
// Each stream in the paper's model is a FIFO queue whose allocation is
// chosen by the runtime (§1, §4.2). Three implementations are provided:
//
//   - Ring[T]: the default dynamically resizable queue. Every slot carries a
//     value plus a synchronized signal (§4.2: "downstream kernels will
//     receive the signal at the same time the corresponding data element is
//     received"). A monitor thread may grow or shrink it at runtime using
//     the paper's §4.1 rules.
//   - SPSC[T]: a lock-free single-producer single-consumer ring whose
//     capacity changes through an epoch swap (spsc_resize.go), so the
//     monitor's resize rules apply to it without a lock on the hot path.
//   - NewRingFromSlice: a pre-filled read-only ring that aliases caller
//     memory, realizing the paper's zero-copy for_each source (§4.2,
//     Fig. 6).
//
// All queues expose the untyped Queue interface consumed by the runtime
// monitor; element-typed access goes through the generic methods.
package ringbuffer

import (
	"errors"
	"math/bits"
	"time"
)

// Signal is an in-band message that travels the stream synchronized with a
// data element (paper §4.2). SigEOF marks the last element from a producer.
type Signal uint8

// Predefined signals. User signals occupy SigUser and above.
const (
	SigNone Signal = iota
	// SigEOF arrives synchronized with (immediately after) the final data
	// element of a stream, analogous to an end-of-file marker.
	SigEOF
	// SigTerm requests immediate termination regardless of pending data.
	SigTerm
	// SigUser is the first value available for application-defined signals.
	SigUser Signal = 16
)

// String returns a human-readable signal name.
func (s Signal) String() string {
	switch s {
	case SigNone:
		return "none"
	case SigEOF:
		return "eof"
	case SigTerm:
		return "term"
	default:
		if s >= SigUser {
			return "user"
		}
		return "reserved"
	}
}

// ErrClosed is returned by read operations once a queue has been closed by
// its producer and fully drained, and by write operations on a closed queue.
var ErrClosed = errors.New("ringbuffer: queue closed")

// ErrTooSmall is returned by Resize when the requested capacity cannot hold
// the elements currently buffered.
var ErrTooSmall = errors.New("ringbuffer: new capacity smaller than current length")

// Queue is the element-type-agnostic view of a stream queue used by the
// runtime scheduler and monitor.
type Queue interface {
	// Len returns the number of buffered elements.
	Len() int
	// Cap returns the current capacity.
	Cap() int
	// Resize changes capacity, preserving buffered elements. Growing is
	// always legal; shrinking below Len returns ErrTooSmall.
	Resize(newCap int) error
	// Close marks the producer side finished. Buffered elements remain
	// readable; subsequent reads return ErrClosed once drained.
	Close()
	// Closed reports whether the producer has closed the queue.
	Closed() bool
	// WriterBlockedFor returns how long the producer has currently been
	// blocked waiting for space (zero if it is not blocked). This feeds the
	// paper's 3×δ write-side resize trigger.
	WriterBlockedFor() time.Duration
	// ReaderStarvedFor returns how long the consumer has currently been
	// blocked waiting for data (zero if it is not blocked). The monitor's
	// deadlock detector reads it.
	ReaderStarvedFor() time.Duration
	// PendingDemand returns the largest outstanding consumer request that
	// exceeds availability (e.g. a PeekRange(n) with n > Cap). This feeds
	// the paper's read-side resize trigger.
	PendingDemand() int
	// Kind identifies the queue implementation ("mutex" or "spsc") for
	// reports and telemetry.
	Kind() string
	// Telemetry returns the queue's performance counters.
	Telemetry() *Telemetry
}

// Telemetry aggregates per-queue performance counters. The hot-path cost is
// a handful of atomic adds; see package stats for the primitives.
type Telemetry struct {
	Pushes       counter64
	Pops         counter64
	WriteBlockNs counter64 // cumulative producer block time
	ReadBlockNs  counter64 // cumulative consumer block time
	Resizes      counter64
	Grows        counter64
	Shrinks      counter64
	// SpinYields and SpinSleeps count back-off escalations on the lock-free
	// queue: each transition from busy-spinning to Gosched (yield) and from
	// yielding to timed sleeps. They expose contention directly — a queue
	// whose peers escalate often is synchronizing too frequently, which is
	// the adaptive batcher's grow signal.
	SpinYields counter64
	SpinSleeps counter64
	// Dropped counts elements discarded by the best-effort overflow policy
	// (SetBestEffort): stale elements evicted from the head of a full mutex
	// ring (latest-wins) or incoming elements shed by a full lock-free ring.
	// Dropped elements are counted in neither Pushes nor Pops, so flow-based
	// rate estimates stay uncontaminated by the shed traffic.
	Dropped counter64
	// Views counts completed borrow/release cycles (read and write batch
	// views, see view.go); ViewHoldNs is the cumulative wall time views were
	// held. A link whose mean hold time approaches the monitor's δ is
	// pinning its ring storage long enough to distort occupancy-based
	// decisions — the monitor skips resize decisions while a view is out,
	// and these counters make that pressure observable.
	Views      counter64
	ViewHoldNs counter64
	// occ is the paper's §4.1 "queue occupancy histogram" recorded on the
	// write side itself rather than by monitor sampling: bucket i counts
	// push operations that left the queue at a log2-bucketed occupancy
	// (bucket 0 = {0,1} elements, bucket i = [2^i, 2^(i+1))). One atomic
	// increment per push op — batched pushes record once per batch, so the
	// histogram weights synchronization points, which is exactly what the
	// allocator and batcher reason about.
	occ [OccBuckets]counter64
}

// OccBuckets is the number of log2 occupancy buckets; bucket OccBuckets-1
// absorbs any occupancy ≥ 2^(OccBuckets-1) (capacities beyond 4G elements
// do not occur).
const OccBuckets = 33

// recordOcc tallies the occupancy a push operation left behind.
func (t *Telemetry) recordOcc(n int) {
	i := 0
	if n > 1 {
		i = bits.Len64(uint64(n)) - 1
		if i >= OccBuckets {
			i = OccBuckets - 1
		}
	}
	t.occ[i].Inc()
}

// Flow returns the cumulative push and pop counts — the per-tick read
// hook of the online rate estimator (two atomic loads, no snapshot copy:
// the estimator polls every link on every estimation window, so the full
// Snapshot would be mostly wasted work).
func (t *Telemetry) Flow() (pushes, pops uint64) {
	return t.Pushes.Load(), t.Pops.Load()
}

// BlockNs returns the cumulative producer and consumer block times — the
// estimator's evidence that a window's observations were contaminated by
// blocking and should not update the non-blocking service rate.
func (t *Telemetry) BlockNs() (writeNs, readNs uint64) {
	return t.WriteBlockNs.Load(), t.ReadBlockNs.Load()
}

// OccStats reduces the occupancy histogram to its count and occupancy-
// weighted sum (bucket midpoints): mean-occupancy-at-push over any window
// is a delta of the two. This is the occupancy read hook the estimator's
// utilization/derivative signal consumes — it avoids copying all
// OccBuckets counters per link per window.
func (t *Telemetry) OccStats() (count uint64, weighted float64) {
	for i := range t.occ {
		n := t.occ[i].Load()
		if n == 0 {
			continue
		}
		mid := 1.0
		if i > 0 {
			mid = 1.5 * float64(uint64(1)<<uint(i)) // midpoint of [2^i, 2^(i+1))
		}
		count += n
		weighted += float64(n) * mid
	}
	return count, weighted
}

// Drops returns the cumulative best-effort drop count — the one-atomic-load
// read hook the monitor's per-tick drop watcher and the ingestion gateway's
// per-source counters poll (the full Snapshot copies the whole occupancy
// histogram, wasted work at those call rates).
func (t *Telemetry) Drops() uint64 { return t.Dropped.Load() }

// Snapshot returns a plain-value copy of the counters.
func (t *Telemetry) Snapshot() TelemetrySnapshot {
	s := TelemetrySnapshot{
		Pushes:       t.Pushes.Load(),
		Pops:         t.Pops.Load(),
		WriteBlockNs: t.WriteBlockNs.Load(),
		ReadBlockNs:  t.ReadBlockNs.Load(),
		Resizes:      t.Resizes.Load(),
		Grows:        t.Grows.Load(),
		Shrinks:      t.Shrinks.Load(),
		SpinYields:   t.SpinYields.Load(),
		SpinSleeps:   t.SpinSleeps.Load(),
		Dropped:      t.Dropped.Load(),
		Views:        t.Views.Load(),
		ViewHoldNs:   t.ViewHoldNs.Load(),
	}
	for i := range s.Occupancy {
		s.Occupancy[i] = t.occ[i].Load()
	}
	return s
}

// TelemetrySnapshot is an immutable copy of Telemetry.
type TelemetrySnapshot struct {
	Pushes       uint64
	Pops         uint64
	WriteBlockNs uint64
	ReadBlockNs  uint64
	Resizes      uint64
	Grows        uint64
	Shrinks      uint64
	SpinYields   uint64
	SpinSleeps   uint64
	// Dropped counts elements discarded by the best-effort overflow policy.
	Dropped uint64
	// Views counts completed borrow/release view cycles; ViewHoldNs is the
	// cumulative time views were held (see view.go).
	Views      uint64
	ViewHoldNs uint64
	// Occupancy is the per-push log2 occupancy histogram (see Telemetry.occ
	// for bucket semantics). Quantiles come from stats.LogQuantile.
	Occupancy [OccBuckets]uint64
}

// Blocked reports whether either side of the queue spent time blocked or
// escalated its spin back-off between prev and t — the contention signal
// consumed by the monitor's adaptive batcher.
func (t TelemetrySnapshot) Blocked(prev TelemetrySnapshot) bool {
	return t.WriteBlockNs > prev.WriteBlockNs ||
		t.ReadBlockNs > prev.ReadBlockNs ||
		t.SpinYields > prev.SpinYields ||
		t.SpinSleeps > prev.SpinSleeps
}
