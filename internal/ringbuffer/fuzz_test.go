package ringbuffer

import (
	"testing"
)

// FuzzRingAgainstModel drives a Ring with a fuzzer-chosen op sequence and
// checks every observation against a plain-slice FIFO model. Ops are
// encoded one byte each: 0-99 push, 100-199 pop, 200-229 resize (capacity
// from the low bits), 230-255 peek.
func FuzzRingAgainstModel(f *testing.F) {
	f.Add([]byte{1, 2, 3, 150, 150, 201, 4, 150})
	f.Add([]byte{10, 210, 120, 230})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			t.Skip()
		}
		r := NewRing[int](4)
		var model []int
		next := 0
		for _, op := range ops {
			switch {
			case op < 100: // try-push
				ok, err := r.TryPush(next, SigNone)
				if err != nil {
					t.Fatalf("push err: %v", err)
				}
				if ok != (len(model) < r.Cap()) {
					// TryPush succeeded iff there was space; Cap may have
					// just changed, so re-derive from the result.
					_ = ok
				}
				if ok {
					model = append(model, next)
				}
				next++
			case op < 200: // try-pop
				v, _, ok, err := r.TryPop()
				if err != nil {
					t.Fatalf("pop err: %v", err)
				}
				if ok != (len(model) > 0) {
					t.Fatalf("pop ok=%v with model len %d", ok, len(model))
				}
				if ok {
					if v != model[0] {
						t.Fatalf("pop = %d, model head %d", v, model[0])
					}
					model = model[1:]
				}
			case op < 230: // resize
				newCap := int(op-199) * 2
				err := r.Resize(newCap)
				if newCap < len(model) {
					if err != ErrTooSmall {
						t.Fatalf("undersized resize err = %v", err)
					}
				} else if err != nil {
					t.Fatalf("resize err: %v", err)
				}
			default: // peek head
				if len(model) == 0 {
					continue
				}
				v, _, err := r.Peek(0)
				if err != nil {
					t.Fatalf("peek err: %v", err)
				}
				if v != model[0] {
					t.Fatalf("peek = %d, model head %d", v, model[0])
				}
			}
			if r.Len() != len(model) {
				t.Fatalf("len = %d, model %d", r.Len(), len(model))
			}
		}
		// Drain and compare the tail.
		r.Close()
		for _, want := range model {
			v, _, err := r.Pop()
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
			if v != want {
				t.Fatalf("drain = %d, want %d", v, want)
			}
		}
		if _, _, err := r.Pop(); err != ErrClosed {
			t.Fatalf("final pop err = %v, want ErrClosed", err)
		}
	})
}
