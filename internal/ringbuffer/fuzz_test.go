package ringbuffer

import (
	"sync"
	"testing"
)

// FuzzRingAgainstModel drives a Ring with a fuzzer-chosen op sequence and
// checks every observation against a plain-slice FIFO model. Ops are
// encoded one byte each: 0-99 push, 100-199 pop, 200-229 resize (capacity
// from the low bits), 230-255 peek.
func FuzzRingAgainstModel(f *testing.F) {
	f.Add([]byte{1, 2, 3, 150, 150, 201, 4, 150})
	f.Add([]byte{10, 210, 120, 230})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			t.Skip()
		}
		r := NewRing[int](4)
		var model []int
		next := 0
		for _, op := range ops {
			switch {
			case op < 100: // try-push
				ok, err := r.TryPush(next, SigNone)
				if err != nil {
					t.Fatalf("push err: %v", err)
				}
				if ok != (len(model) < r.Cap()) {
					// TryPush succeeded iff there was space; Cap may have
					// just changed, so re-derive from the result.
					_ = ok
				}
				if ok {
					model = append(model, next)
				}
				next++
			case op < 200: // try-pop
				v, _, ok, err := r.TryPop()
				if err != nil {
					t.Fatalf("pop err: %v", err)
				}
				if ok != (len(model) > 0) {
					t.Fatalf("pop ok=%v with model len %d", ok, len(model))
				}
				if ok {
					if v != model[0] {
						t.Fatalf("pop = %d, model head %d", v, model[0])
					}
					model = model[1:]
				}
			case op < 230: // resize
				newCap := int(op-199) * 2
				err := r.Resize(newCap)
				if newCap < len(model) {
					if err != ErrTooSmall {
						t.Fatalf("undersized resize err = %v", err)
					}
				} else if err != nil {
					t.Fatalf("resize err: %v", err)
				}
			default: // peek head
				if len(model) == 0 {
					continue
				}
				v, _, err := r.Peek(0)
				if err != nil {
					t.Fatalf("peek err: %v", err)
				}
				if v != model[0] {
					t.Fatalf("peek = %d, model head %d", v, model[0])
				}
			}
			if r.Len() != len(model) {
				t.Fatalf("len = %d, model %d", r.Len(), len(model))
			}
		}
		// Drain and compare the tail.
		r.Close()
		for _, want := range model {
			v, _, err := r.Pop()
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
			if v != want {
				t.Fatalf("drain = %d, want %d", v, want)
			}
		}
		if _, _, err := r.Pop(); err != ErrClosed {
			t.Fatalf("final pop err = %v, want ErrClosed", err)
		}
	})
}

// FuzzRingBulkAgainstModel drives the bulk operations (PushN / DrainTo)
// against the slice model, with resizes interleaved so batches land across
// wrap-around splits and relocated storage. Signals are derived from values
// (every 3rd element carries SigUser) so alignment is checked end to end.
// Ops: 0-99 PushN (batch = op%7+1), 100-199 DrainTo (batch = op%5+1),
// 200-255 resize.
func FuzzRingBulkAgainstModel(f *testing.F) {
	f.Add([]byte{5, 3, 150, 201, 9, 120, 250, 1, 1, 130})
	f.Add([]byte{99, 99, 199, 199, 230, 99, 150})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 2048 {
			t.Skip()
		}
		sigFor := func(v int) Signal {
			if v%3 == 0 {
				return SigUser
			}
			return SigNone
		}
		r := NewRing[int](4)
		var model []int
		next := 0
		for _, op := range ops {
			switch {
			case op < 100: // bulk push (blocks only when batch > free; keep batch <= cap slack via resize first)
				batch := int(op)%7 + 1
				free := r.Cap() - r.Len()
				if free == 0 {
					continue // a blocking PushN would deadlock single-threaded
				}
				if batch > free {
					batch = free
				}
				vs := make([]int, batch)
				sigs := make([]Signal, batch)
				for i := range vs {
					vs[i] = next + i
					sigs[i] = sigFor(next + i)
				}
				if err := r.PushN(vs, sigs); err != nil {
					t.Fatalf("PushN err: %v", err)
				}
				model = append(model, vs...)
				next += batch
			case op < 200: // bulk drain
				batch := int(op)%5 + 1
				dst := make([]int, batch)
				sigs := make([]Signal, batch)
				n, err := r.DrainTo(dst, sigs)
				if err != nil {
					t.Fatalf("DrainTo err: %v", err)
				}
				if n == 0 && len(model) > 0 {
					t.Fatalf("DrainTo drained nothing with model len %d", len(model))
				}
				if n > len(model) {
					t.Fatalf("DrainTo = %d, model has %d", n, len(model))
				}
				for i := 0; i < n; i++ {
					if dst[i] != model[i] {
						t.Fatalf("DrainTo[%d] = %d, model %d", i, dst[i], model[i])
					}
					if sigs[i] != sigFor(model[i]) {
						t.Fatalf("DrainTo sig[%d] = %v, want %v (v=%d)", i, sigs[i], sigFor(model[i]), model[i])
					}
				}
				model = model[n:]
			default: // resize
				newCap := int(op-199) * 2
				if err := r.Resize(newCap); err != nil && err != ErrTooSmall {
					t.Fatalf("resize err: %v", err)
				}
			}
			if r.Len() != len(model) {
				t.Fatalf("len = %d, model %d", r.Len(), len(model))
			}
		}
		// Drain the tail and re-verify order + signals after close.
		r.Close()
		for len(model) > 0 {
			dst := make([]int, 3)
			sigs := make([]Signal, 3)
			n, err := r.PopN(dst, sigs)
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
			for i := 0; i < n; i++ {
				if dst[i] != model[i] || sigs[i] != sigFor(model[i]) {
					t.Fatalf("drain[%d] = (%d,%v), want (%d,%v)", i, dst[i], sigs[i], model[i], sigFor(model[i]))
				}
			}
			model = model[n:]
		}
		if _, err := r.PopN(make([]int, 1), nil); err != ErrClosed {
			t.Fatalf("final PopN err = %v, want ErrClosed", err)
		}
	})
}

// FuzzRingBulkConcurrentResize runs a bulk producer, a bulk consumer and a
// resizer concurrently on one Ring, then asserts the consumer observed the
// exact FIFO sequence with every signal still aligned to its element —
// batches must survive wrap-around splits and storage relocation intact.
// The fuzzer chooses the batch-size schedule and the resize schedule.
func FuzzRingBulkConcurrentResize(f *testing.F) {
	f.Add([]byte{4, 9, 1, 16, 3, 7}, []byte{8, 200, 16, 4, 64})
	f.Add([]byte{1, 1, 1}, []byte{255, 2, 255, 2})
	f.Fuzz(func(t *testing.T, batches, resizes []byte) {
		if len(batches) == 0 || len(batches) > 64 || len(resizes) > 64 {
			t.Skip()
		}
		const total = 2000
		sigFor := func(v int) Signal {
			if v%5 == 0 {
				return SigUser
			}
			return SigNone
		}
		r := NewRing[int](8)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // producer: PushN with fuzzer-chosen batch sizes
			defer wg.Done()
			defer r.Close()
			next, bi := 0, 0
			for next < total {
				batch := int(batches[bi%len(batches)])%17 + 1
				bi++
				if batch > total-next {
					batch = total - next
				}
				vs := make([]int, batch)
				sigs := make([]Signal, batch)
				for i := range vs {
					vs[i] = next + i
					sigs[i] = sigFor(next + i)
				}
				if err := r.PushN(vs, sigs); err != nil {
					t.Errorf("PushN: %v", err)
					return
				}
				next += batch
			}
		}()
		go func() { // resizer: grow/shrink under the traffic
			defer wg.Done()
			for _, b := range resizes {
				_ = r.Resize(int(b)%120 + 2) // ErrTooSmall is fine
			}
		}()
		got := make([]int, 0, total)
		dst := make([]int, 13)
		sigs := make([]Signal, 13)
		for {
			n, err := r.PopN(dst, sigs)
			for i := 0; i < n; i++ {
				if want := sigFor(dst[i]); sigs[i] != want {
					t.Fatalf("signal misaligned: v=%d sig=%v want %v", dst[i], sigs[i], want)
				}
			}
			got = append(got, dst[:n]...)
			if err != nil {
				break
			}
		}
		wg.Wait()
		if len(got) != total {
			t.Fatalf("received %d elements, want %d", len(got), total)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("FIFO order broken at %d: got %d", i, v)
			}
		}
	})
}
