package ringbuffer

import "sync/atomic"

// counter64 is a pad-free atomic counter local to this package so the queue
// types carry no external dependencies on their hot paths.
type counter64 struct {
	v atomic.Uint64
}

func (c *counter64) Add(n uint64) { c.v.Add(n) }
func (c *counter64) Inc()         { c.v.Add(1) }
func (c *counter64) Load() uint64 { return c.v.Load() }
