package ringbuffer

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCapacity is the initial capacity used when a caller passes a
// non-positive capacity to NewRing.
const DefaultCapacity = 64

// Ring is the dynamically resizable FIFO connecting two compute kernels.
// One producer goroutine and one consumer goroutine may use it
// concurrently; a third party (the runtime monitor) may call Resize, Len,
// Cap and the telemetry accessors at any time.
//
// Values and their synchronized signals are stored in parallel arrays so
// that PeekRange can hand the consumer a contiguous, copy-free view of the
// element array whenever the buffered region does not wrap (the same
// "non-wrapped position" the paper exploits for fast resizing, §4.1).
type Ring[T any] struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond

	vals []T
	sigs []Signal
	head int // index of the oldest element
	n    int // number of buffered elements

	closed     bool
	readOnly   bool // slice-backed rings reject writes and resizes
	bestEffort bool // full ring evicts oldest (latest-wins) instead of blocking
	maxCap     int  // growth bound; 0 means unbounded

	// writerBlockSince/readerBlockSince hold the UnixNano at which the
	// producer/consumer began waiting, or 0 when not blocked. They are
	// written by the blocking side and read lock-free by the monitor.
	writerBlockSince atomic.Int64
	readerBlockSince atomic.Int64

	// pendingDemand records the largest consumer request observed to exceed
	// capacity since the last Resize, for monitor visibility.
	pendingDemand atomic.Int64

	// Batch-view state (see view.go). While a read view is out the head
	// region is pinned: eviction stops and the storage may not be repacked.
	// While a write view is out the physical write index (head+n mod cap)
	// must stay fixed, so the empty-ring head reset is suppressed. Resizes
	// requested while either view is out are recorded in deferredCap and
	// applied at release.
	viewOut     bool
	viewN       int
	viewSince   int64
	wviewOut    bool
	wviewN      int
	wviewSince  int64
	deferredCap int

	// wake, when set, is called on readiness transitions (empty→non-empty,
	// full→non-full, close) while r.mu is held — see WakeHooker for the
	// contract the hook must obey.
	wake func(Wake)

	tel Telemetry
}

// NewRing returns a Ring with the given initial capacity (DefaultCapacity
// if capacity <= 0).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &Ring[T]{
		vals: make([]T, capacity),
		sigs: make([]Signal, capacity),
	}
	r.notFull.L = &r.mu
	r.notEmpty.L = &r.mu
	return r
}

// NewRingFromSlice returns a read-only Ring whose element storage aliases
// data: no copy of the payload is ever made. It realizes the paper's
// zero-copy for_each source (§4.2, Fig. 6): the caller's array is used
// directly as the queue. The ring is created closed, so consumers drain
// data and then observe EOF.
func NewRingFromSlice[T any](data []T) *Ring[T] {
	r := &Ring[T]{
		vals:     data,
		sigs:     nil, // all SigNone; saves len(data) bytes and a fill pass
		head:     0,
		n:        len(data),
		closed:   true,
		readOnly: true,
	}
	r.notFull.L = &r.mu
	r.notEmpty.L = &r.mu
	return r
}

// SetMaxCap bounds the capacity the ring may grow to (the paper's "buffer
// cap" engineering solution for effectively unbounded queues, §4.1).
// A value <= 0 removes the bound.
func (r *Ring[T]) SetMaxCap(n int) {
	r.mu.Lock()
	r.maxCap = n
	r.mu.Unlock()
}

// SetBestEffort switches the ring's overflow policy: with best effort on, a
// push into a full ring evicts the oldest buffered elements instead of
// blocking the producer — latest-wins semantics for soft-real-time streams
// that degrade by freshness rather than latency. Evicted elements are
// counted in Telemetry.Dropped (and in neither Pushes nor Pops). Elements
// carrying a synchronized signal (EOF, termination) are never evicted: a
// signal-pinned head sheds the incoming signal-free elements instead, and a
// signal-carrying incoming element falls back to the blocking path so
// control flow is never lost.
func (r *Ring[T]) SetBestEffort(on bool) {
	r.mu.Lock()
	r.bestEffort = on
	r.mu.Unlock()
}

// BestEffort reports whether the ring runs the latest-wins overflow policy.
func (r *Ring[T]) BestEffort() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bestEffort
}

// evictLocked discards up to want of the oldest signal-free elements to
// make room for a best-effort push, stopping early at a signal-carrying
// head. Evictions count as Dropped, not Pops: the elements were never
// consumed, and the flow counters feeding λ̂/µ̂ must not see them.
func (r *Ring[T]) evictLocked(want int) {
	if r.viewOut {
		// The head region is borrowed by an outstanding read view: nothing
		// may be evicted from under it. Best-effort pushes shed the incoming
		// signal-free elements instead (the same fallback as a signal-pinned
		// head), so the producer still never blocks on payload.
		return
	}
	var zero T
	dropped := 0
	for dropped < want && r.n > 0 && r.sigAt(r.head) == SigNone {
		r.vals[r.head] = zero
		r.head = r.index0(r.head + 1)
		r.n--
		dropped++
	}
	if dropped > 0 {
		r.tel.Dropped.Add(uint64(dropped))
	}
	if r.n == 0 && !r.wviewOut {
		r.head = 0 // keep the buffer in the fast non-wrapped position
	}
}

// Len returns the number of buffered elements.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap returns the current capacity.
func (r *Ring[T]) Cap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.vals)
}

// Closed reports whether the producer closed the queue.
func (r *Ring[T]) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Close marks the producer side finished and wakes any waiters. Buffered
// elements remain readable. Close is idempotent.
func (r *Ring[T]) Close() {
	r.mu.Lock()
	r.closed = true
	wake := r.wake
	r.mu.Unlock()
	r.notEmpty.Broadcast()
	r.notFull.Broadcast()
	if wake != nil {
		wake(WakeClosed)
	}
}

// SetWakeHook installs (or, with nil, detaches) the scheduler wake hook.
// See WakeHooker for the contract.
func (r *Ring[T]) SetWakeHook(fn func(Wake)) {
	r.mu.Lock()
	r.wake = fn
	r.mu.Unlock()
}

// wokeNotEmpty fires the hook after an insert that filled an empty ring.
// Called with r.mu held.
func (r *Ring[T]) wokeNotEmpty(wasEmpty bool) {
	if wasEmpty && r.n > 0 && r.wake != nil {
		r.wake(WakeNotEmpty)
	}
}

// sigAt returns the signal stored at ring index i.
func (r *Ring[T]) sigAt(i int) Signal {
	if r.sigs == nil {
		return SigNone
	}
	return r.sigs[i]
}

// setSigAt stores signal s at ring index i, materializing the signal array
// for slice-backed rings only when a non-default signal appears.
func (r *Ring[T]) setSigAt(i int, s Signal) {
	if r.sigs == nil {
		if s == SigNone {
			return
		}
		r.sigs = make([]Signal, len(r.vals))
	}
	r.sigs[i] = s
}

// Push appends v with signal sig, blocking while the ring is full. It
// returns ErrClosed if the ring is or becomes closed.
func (r *Ring[T]) Push(v T, sig Signal) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.bestEffort && !r.closed && !r.readOnly && r.n == len(r.vals) {
		r.evictLocked(1)
		if r.n == len(r.vals) && sig == SigNone {
			// Head pinned by a signal-carrying element: shed the incoming
			// element instead (it is signal-free, so nothing is lost but
			// payload the policy already permits losing).
			r.tel.Dropped.Inc()
			return nil
		}
	}
	if err := r.waitForSpaceLocked(1); err != nil {
		return err
	}
	wasEmpty := r.n == 0
	i := r.index(r.n)
	r.vals[i] = v
	r.setSigAt(i, sig)
	r.n++
	r.tel.Pushes.Inc()
	r.tel.recordOcc(r.n)
	r.notEmpty.Signal()
	r.wokeNotEmpty(wasEmpty)
	return nil
}

// TryPush appends v with signal sig without blocking. It reports whether
// the element was accepted; err is ErrClosed when the ring is closed.
func (r *Ring[T]) TryPush(v T, sig Signal) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.readOnly {
		return false, ErrClosed
	}
	if r.bestEffort && r.n == len(r.vals) {
		r.evictLocked(1)
	}
	if r.n == len(r.vals) {
		return false, nil
	}
	wasEmpty := r.n == 0
	i := r.index(r.n)
	r.vals[i] = v
	r.setSigAt(i, sig)
	r.n++
	r.tel.Pushes.Inc()
	r.tel.recordOcc(r.n)
	r.notEmpty.Signal()
	r.wokeNotEmpty(wasEmpty)
	return true, nil
}

// PushBatch appends all of vs; the final element carries sig, earlier ones
// SigNone. It blocks as needed and returns ErrClosed on a closed ring.
func (r *Ring[T]) PushBatch(vs []T, sig Signal) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(vs) > 0 {
		if r.bestEffort && !r.closed && r.n == len(r.vals) {
			r.evictLocked(len(vs))
		}
		if err := r.waitForSpaceLocked(1); err != nil {
			return err
		}
		wasEmpty := r.n == 0
		free := len(r.vals) - r.n
		k := min(free, len(vs))
		for j := 0; j < k; j++ {
			i := r.index(r.n)
			r.vals[i] = vs[j]
			s := SigNone
			if j == k-1 && k == len(vs) {
				s = sig
			}
			r.setSigAt(i, s)
			r.n++
		}
		r.tel.Pushes.Add(uint64(k))
		r.tel.recordOcc(r.n)
		vs = vs[k:]
		r.notEmpty.Broadcast()
		r.wokeNotEmpty(wasEmpty)
	}
	return nil
}

// PushN appends all of vs with their parallel signals in bulk: one lock
// acquisition per batch (plus condition waits while full) instead of one per
// element, with the wrap-around handled as a two-copy split. sigs may be nil
// (every element carries SigNone) or must have len(vs) entries. PushN blocks
// as needed and returns ErrClosed on a closed ring.
func (r *Ring[T]) PushN(vs []T, sigs []Signal) error {
	if len(vs) == 0 {
		return nil
	}
	if sigs != nil && len(sigs) != len(vs) {
		panic("ringbuffer: PushN signal slice length mismatch")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(vs) > 0 {
		if r.bestEffort && !r.closed && !r.readOnly && r.n == len(r.vals) {
			r.evictLocked(len(vs))
			if r.n == len(r.vals) {
				// Head pinned by a signal-carrying element: shed the
				// incoming signal-free prefix instead of blocking, and let
				// any signal-carrying element fall through to the blocking
				// path below.
				shed := 0
				for shed < len(vs) && (sigs == nil || sigs[shed] == SigNone) {
					shed++
				}
				if shed > 0 {
					r.tel.Dropped.Add(uint64(shed))
					vs = vs[shed:]
					if sigs != nil {
						sigs = sigs[shed:]
					}
					continue
				}
			}
		}
		if err := r.waitForSpaceLocked(1); err != nil {
			return err
		}
		wasEmpty := r.n == 0
		k := min(len(r.vals)-r.n, len(vs))
		r.enqueueLocked(vs[:k], sigs)
		vs = vs[k:]
		if sigs != nil {
			sigs = sigs[k:]
		}
		r.tel.Pushes.Add(uint64(k))
		r.tel.recordOcc(r.n)
		r.notEmpty.Broadcast()
		r.wokeNotEmpty(wasEmpty)
	}
	return nil
}

// enqueueLocked bulk-copies vs (and the matching prefix of sigs, which may
// be nil) into the free region starting at the write index, splitting into
// two copies when the region wraps. Caller guarantees len(vs) free slots.
func (r *Ring[T]) enqueueLocked(vs []T, sigs []Signal) {
	idx := r.index(r.n)
	first := min(len(vs), len(r.vals)-idx)
	copy(r.vals[idx:], vs[:first])
	copy(r.vals, vs[first:])
	if r.sigs == nil && anySignal(sigs, len(vs)) {
		r.sigs = make([]Signal, len(r.vals))
	}
	if r.sigs != nil {
		if sigs == nil {
			clearSignals(r.sigs[idx : idx+first])
			clearSignals(r.sigs[:len(vs)-first])
		} else {
			copy(r.sigs[idx:], sigs[:first])
			copy(r.sigs, sigs[first:len(vs)])
		}
	}
	r.n += len(vs)
}

// PopN removes up to len(dst) elements in bulk, blocking until at least one
// is available: one lock acquisition per batch with the wrap-around handled
// as a two-copy split. When sigs is non-nil its first n entries receive the
// elements' synchronized signals (it must hold at least len(dst) entries).
// Once the ring is closed and drained PopN returns (0, ErrClosed).
func (r *Ring[T]) PopN(dst []T, sigs []Signal) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.waitForItemsLocked(1); err != nil {
		return 0, err
	}
	return r.dequeueLocked(dst, sigs), nil
}

// DrainTo is the non-blocking PopN: it removes whatever is buffered, up to
// len(dst) elements, returning 0 with a nil error when the ring is empty but
// open and (0, ErrClosed) once it is closed and drained.
func (r *Ring[T]) DrainTo(dst []T, sigs []Signal) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		if r.closed {
			return 0, ErrClosed
		}
		return 0, nil
	}
	return r.dequeueLocked(dst, sigs), nil
}

// dequeueLocked bulk-copies min(r.n, len(dst)) elements (and signals, when
// requested) out of the head region, then drops them. Caller guarantees at
// least one buffered element.
func (r *Ring[T]) dequeueLocked(dst []T, sigs []Signal) int {
	n := min(r.n, len(dst))
	first := min(n, len(r.vals)-r.head)
	copy(dst, r.vals[r.head:r.head+first])
	copy(dst[first:n], r.vals)
	if sigs != nil {
		if r.sigs == nil {
			clearSignals(sigs[:n])
		} else {
			copy(sigs, r.sigs[r.head:r.head+first])
			copy(sigs[first:n], r.sigs)
		}
	}
	r.dropLocked(n)
	return n
}

// anySignal reports whether the first n entries of sigs carry a non-default
// signal (sigs may be nil).
func anySignal(sigs []Signal, n int) bool {
	for _, s := range sigs[:min(n, len(sigs))] {
		if s != SigNone {
			return true
		}
	}
	return false
}

// clearSignals zeroes a signal region (the compiler lowers this to memclr).
func clearSignals(s []Signal) {
	for i := range s {
		s[i] = SigNone
	}
}

// Pop removes and returns the oldest element and its signal, blocking while
// the ring is empty. Once the ring is closed and drained it returns
// ErrClosed.
func (r *Ring[T]) Pop() (T, Signal, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.waitForItemsLocked(1); err != nil {
		var zero T
		return zero, SigNone, err
	}
	v := r.vals[r.head]
	s := r.sigAt(r.head)
	r.dropLocked(1)
	return v, s, nil
}

// TryPop removes the oldest element without blocking. ok reports whether an
// element was returned; err is ErrClosed once the ring is closed and empty.
func (r *Ring[T]) TryPop() (v T, s Signal, ok bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		if r.closed {
			return v, SigNone, false, ErrClosed
		}
		return v, SigNone, false, nil
	}
	v = r.vals[r.head]
	s = r.sigAt(r.head)
	r.dropLocked(1)
	return v, s, true, nil
}

// Peek returns the element at offset i from the head without removing it,
// blocking until at least i+1 elements are buffered. It returns ErrClosed
// if the ring closes before enough elements arrive.
func (r *Ring[T]) Peek(i int) (T, Signal, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.waitForItemsLocked(i + 1); err != nil {
		var zero T
		return zero, SigNone, err
	}
	idx := r.index(i)
	return r.vals[idx], r.sigAt(idx), nil
}

// PeekRange blocks until n elements are available and returns a view of
// them ordered oldest-first. Whenever the buffered region does not wrap,
// the returned slice aliases the ring's storage and no copy occurs; the
// view is valid until the next Recycle/Pop/Resize. This is the paper's
// sliding-window peek_range accessor (§3).
//
// If the ring closes with fewer than n elements buffered, PeekRange returns
// what remains along with ErrClosed. If n exceeds the current capacity the
// ring grows to accommodate the request — the read-side resize rule of
// §4.1 ("if the reading compute kernel requests more items than the queue
// has available then the queue is tagged for resizing"), performed
// synchronously by the reader so the request is always fulfilled.
func (r *Ring[T]) PeekRange(n int) ([]T, []Signal, error) {
	if n <= 0 {
		return nil, nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > len(r.vals) && !r.readOnly && !r.closed {
		r.pendingDemand.Store(int64(n))
		if r.maxCap > 0 && n > r.maxCap {
			// Correctness trumps the growth bound: a window request the
			// queue can never hold would deadlock the consumer (§4.1: "if a
			// kernel asks to receive five items and the buffer size is only
			// allocated for two, the program cannot continue").
			r.maxCap = n
		}
		if err := r.resizeLocked(growTarget(n, r.maxCap)); err != nil {
			return nil, nil, err
		}
		r.pendingDemand.Store(0)
	}
	if err := r.waitForItemsLocked(n); err != nil {
		// Closed with fewer than n elements: surface the remainder.
		n = r.n
		if n == 0 {
			return nil, nil, err
		}
		vs, ss := r.viewLocked(n)
		return vs, ss, err
	}
	vs, ss := r.viewLocked(n)
	return vs, ss, nil
}

// viewLocked returns the first n buffered elements, aliasing storage when
// the region is contiguous and copying only when it wraps.
func (r *Ring[T]) viewLocked(n int) ([]T, []Signal) {
	if r.head+n <= len(r.vals) {
		var ss []Signal
		if r.sigs != nil {
			ss = r.sigs[r.head : r.head+n]
		}
		return r.vals[r.head : r.head+n], ss
	}
	vs := make([]T, n)
	first := len(r.vals) - r.head
	copy(vs, r.vals[r.head:])
	copy(vs[first:], r.vals[:n-first])
	var ss []Signal
	if r.sigs != nil {
		ss = make([]Signal, n)
		copy(ss, r.sigs[r.head:])
		copy(ss[first:], r.sigs[:n-first])
	}
	return vs, ss
}

// Recycle discards the n oldest elements (after a PeekRange). It panics if
// n exceeds the buffered count, which indicates a consumer logic error.
func (r *Ring[T]) Recycle(n int) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.n {
		panic("ringbuffer: Recycle past end of buffered data")
	}
	r.dropLocked(n)
}

// dropLocked removes k elements from the head and wakes the producer.
func (r *Ring[T]) dropLocked(k int) {
	wasFull := r.n == len(r.vals)
	// Release references so the GC can reclaim popped payloads.
	var zero T
	for j := 0; j < k; j++ {
		r.vals[r.index0(r.head+j)] = zero
	}
	r.head = r.index0(r.head + k)
	r.n -= k
	if r.n == 0 && !r.wviewOut {
		// Keep the buffer in the fast non-wrapped position — unless a write
		// view is out, whose reserved slots sit at the physical index
		// (head+n) mod cap and must not move.
		r.head = 0
	}
	r.tel.Pops.Add(uint64(k))
	r.notFull.Broadcast()
	if wasFull && k > 0 && r.wake != nil {
		r.wake(WakeNotFull)
	}
}

// Resize changes the capacity to newCap, preserving buffered elements and
// leaving the buffer in the non-wrapped position (head == 0), which is the
// efficient layout the paper's resizer targets. Shrinking below the current
// length returns ErrTooSmall; resizing a slice-backed read-only ring or a
// ring whose buffered region is borrowed by an outstanding zero-copy view
// is the monitor's responsibility to avoid (the runtime only resizes
// between consumer windows).
func (r *Ring[T]) Resize(newCap int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resizeLocked(newCap)
}

func (r *Ring[T]) resizeLocked(newCap int) error {
	if r.readOnly {
		return ErrClosed
	}
	if newCap < 1 {
		newCap = 1
	}
	if r.maxCap > 0 && newCap > r.maxCap {
		newCap = r.maxCap
	}
	if newCap < r.n {
		return ErrTooSmall
	}
	if newCap == len(r.vals) {
		return nil
	}
	if r.viewOut || r.wviewOut {
		// An outstanding view aliases the backing array; repacking now would
		// pull the storage out from under the borrower. Record the target and
		// apply it when the last view is released (view.go).
		r.deferredCap = newCap
		return nil
	}
	grew := newCap > len(r.vals)
	nv := make([]T, newCap)
	ns := make([]Signal, newCap)
	for j := 0; j < r.n; j++ {
		idx := r.index0(r.head + j)
		nv[j] = r.vals[idx]
		if r.sigs != nil {
			ns[j] = r.sigs[idx]
		}
	}
	r.vals = nv
	r.sigs = ns
	r.head = 0
	r.tel.Resizes.Inc()
	if grew {
		r.tel.Grows.Inc()
	} else {
		r.tel.Shrinks.Inc()
	}
	// Capacity changed in the producer's favor (or consumer demand can now
	// be met); wake both sides to re-evaluate.
	r.notFull.Broadcast()
	r.notEmpty.Broadcast()
	if grew && r.wake != nil {
		r.wake(WakeNotFull)
	}
	return nil
}

// WriterBlockedFor returns how long the producer has currently been blocked
// waiting for free space, or zero if it is not blocked. Lock-free; intended
// for the monitor's 3×δ resize rule.
func (r *Ring[T]) WriterBlockedFor() time.Duration {
	since := r.writerBlockSince.Load()
	if since == 0 {
		return 0
	}
	return time.Duration(nowNanos() - since)
}

// ReaderStarvedFor returns how long the consumer has currently been blocked
// waiting for data, or zero if it is not blocked.
func (r *Ring[T]) ReaderStarvedFor() time.Duration {
	since := r.readerBlockSince.Load()
	if since == 0 {
		return 0
	}
	return time.Duration(nowNanos() - since)
}

// PendingDemand returns the largest outstanding consumer request observed
// to exceed capacity, or zero.
func (r *Ring[T]) PendingDemand() int { return int(r.pendingDemand.Load()) }

// Kind identifies the queue implementation for reports and telemetry.
func (r *Ring[T]) Kind() string { return "mutex" }

// Telemetry returns the ring's performance counters.
func (r *Ring[T]) Telemetry() *Telemetry { return &r.tel }

// waitForSpaceLocked blocks until at least k free slots exist. It must be
// called with r.mu held; it returns ErrClosed for closed/read-only rings.
func (r *Ring[T]) waitForSpaceLocked(k int) error {
	if r.readOnly {
		return ErrClosed
	}
	if r.closed {
		return ErrClosed
	}
	if len(r.vals)-r.n >= k {
		return nil
	}
	start := nowNanos()
	r.writerBlockSince.Store(start)
	for len(r.vals)-r.n < k && !r.closed {
		r.notFull.Wait()
	}
	r.writerBlockSince.Store(0)
	r.tel.WriteBlockNs.Add(uint64(nowNanos() - start))
	if r.closed {
		return ErrClosed
	}
	return nil
}

// waitForItemsLocked blocks until at least k elements are buffered. It must
// be called with r.mu held; it returns ErrClosed if the ring closes first.
func (r *Ring[T]) waitForItemsLocked(k int) error {
	if r.n >= k {
		return nil
	}
	if r.closed {
		return ErrClosed
	}
	start := nowNanos()
	r.readerBlockSince.Store(start)
	for r.n < k && !r.closed {
		r.notEmpty.Wait()
	}
	r.readerBlockSince.Store(0)
	r.tel.ReadBlockNs.Add(uint64(nowNanos() - start))
	if r.n < k {
		return ErrClosed
	}
	return nil
}

// index maps a logical offset from the head to a physical index.
func (r *Ring[T]) index(off int) int { return r.index0(r.head + off) }

// index0 wraps a physical index into the buffer.
func (r *Ring[T]) index0(i int) int {
	if i >= len(r.vals) {
		i -= len(r.vals)
	}
	return i
}

// growTarget doubles up from the demand to leave headroom, honoring maxCap.
func growTarget(demand, maxCap int) int {
	target := 1
	for target < demand {
		target <<= 1
	}
	if maxCap > 0 && target > maxCap {
		target = maxCap
	}
	if target < demand {
		target = demand // maxCap smaller than demand: fulfill the request
	}
	return target
}

func nowNanos() int64 { return time.Now().UnixNano() }

var _ Queue = (*Ring[int])(nil)
