package ringbuffer

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestRingViewBasic borrows, verifies contents and signals in place, and
// releases partially: the remainder must stay buffered.
func TestRingViewBasic(t *testing.T) {
	r := NewRing[int](8)
	for i := 0; i < 5; i++ {
		sig := SigNone
		if i == 2 {
			sig = SigUser
		}
		if err := r.Push(i, sig); err != nil {
			t.Fatal(err)
		}
	}
	v, err := r.AcquireView(4)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 4 {
		t.Fatalf("view len = %d, want 4", v.Len())
	}
	for i := 0; i < 4; i++ {
		if v.At(i) != i {
			t.Fatalf("At(%d) = %d", i, v.At(i))
		}
		want := SigNone
		if i == 2 {
			want = SigUser
		}
		if v.SigAt(i) != want {
			t.Fatalf("SigAt(%d) = %v, want %v", i, v.SigAt(i), want)
		}
	}
	r.ReleaseView(2) // consume 0,1; 2,3,4 stay
	if r.Len() != 3 {
		t.Fatalf("len after partial release = %d, want 3", r.Len())
	}
	v2, err := r.AcquireView(8)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Len() != 3 || v2.At(0) != 2 || v2.SigAt(0) != SigUser {
		t.Fatalf("second view = len %d head (%d,%v)", v2.Len(), v2.At(0), v2.SigAt(0))
	}
	r.ReleaseView(3)
	if r.Len() != 0 {
		t.Fatalf("len = %d, want 0", r.Len())
	}
	tel := r.Telemetry().Snapshot()
	if tel.Views != 2 {
		t.Fatalf("views = %d, want 2", tel.Views)
	}
	if tel.Pops != 5 {
		t.Fatalf("pops = %d, want 5", tel.Pops)
	}
}

// TestRingViewWrapSplit forces the buffered region to wrap and checks the
// view surfaces it as two aligned segments.
func TestRingViewWrapSplit(t *testing.T) {
	r := NewRing[int](4)
	for i := 0; i < 4; i++ {
		if err := r.Push(i, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	// Consume 2, push 2 more: region is [2,3,4,5] wrapping at index 0.
	for i := 0; i < 2; i++ {
		if _, _, err := r.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Push(4, SigNone); err != nil {
		t.Fatal(err)
	}
	if err := r.Push(5, SigEOF); err != nil {
		t.Fatal(err)
	}
	v, err := r.AcquireView(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Vals) != 2 || len(v.Vals2) != 2 {
		t.Fatalf("segments = %d+%d, want 2+2", len(v.Vals), len(v.Vals2))
	}
	for i := 0; i < 4; i++ {
		if v.At(i) != i+2 {
			t.Fatalf("At(%d) = %d, want %d", i, v.At(i), i+2)
		}
	}
	if v.SigAt(3) != SigEOF {
		t.Fatalf("SigAt(3) = %v, want EOF", v.SigAt(3))
	}
	r.ReleaseView(4)
	if r.Len() != 0 {
		t.Fatalf("len = %d", r.Len())
	}
}

// TestRingWriteViewRoundTrip reserves slots, fills a prefix in place,
// publishes it, and pops the elements back with signals aligned.
func TestRingWriteViewRoundTrip(t *testing.T) {
	r := NewRing[int](8)
	wv, err := r.AcquireWriteView(6)
	if err != nil {
		t.Fatal(err)
	}
	if wv.Len() != 6 {
		t.Fatalf("write view len = %d, want 6", wv.Len())
	}
	for i := 0; i < 4; i++ {
		sig := SigNone
		if i == 3 {
			sig = SigEOF
		}
		wv.SetAt(i, 10+i, sig)
	}
	r.ReleaseWriteView(4)
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	for i := 0; i < 4; i++ {
		v, s, err := r.Pop()
		if err != nil || v != 10+i {
			t.Fatalf("pop = (%d, %v), want %d", v, err, 10+i)
		}
		want := SigNone
		if i == 3 {
			want = SigEOF
		}
		if s != want {
			t.Fatalf("sig[%d] = %v, want %v", i, s, want)
		}
	}
}

// TestRingWriteViewSurvivesDrainToEmpty publishes through a write view
// while the consumer drains the ring empty mid-borrow: the reserved
// window's physical position must not move (the empty-ring head reset is
// suppressed), so the published prefix comes out intact.
func TestRingWriteViewSurvivesDrainToEmpty(t *testing.T) {
	r := NewRing[int](8)
	for i := 0; i < 3; i++ {
		if err := r.Push(i, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	wv, err := r.AcquireWriteView(4)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the ring empty while the write view is out.
	for i := 0; i < 3; i++ {
		v, _, err := r.Pop()
		if err != nil || v != i {
			t.Fatalf("pop = (%d, %v), want %d", v, err, i)
		}
	}
	wv.SetAt(0, 100, SigNone)
	wv.SetAt(1, 101, SigUser)
	r.ReleaseWriteView(2)
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.Len())
	}
	v, s, err := r.Pop()
	if err != nil || v != 100 || s != SigNone {
		t.Fatalf("pop = (%d,%v,%v)", v, s, err)
	}
	v, s, err = r.Pop()
	if err != nil || v != 101 || s != SigUser {
		t.Fatalf("pop = (%d,%v,%v)", v, s, err)
	}
}

// TestRingViewDefersResize: a resize requested while a view is out must
// not repack the borrowed storage; it applies when the view is released.
func TestRingViewDefersResize(t *testing.T) {
	r := NewRing[int](4)
	for i := 0; i < 3; i++ {
		if err := r.Push(i, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	v, err := r.AcquireView(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Resize(16); err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 4 {
		t.Fatalf("cap changed under the view: %d", r.Cap())
	}
	// Shrink below the published length must still be refused mid-view.
	if err := r.Resize(2); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("undersized resize = %v, want ErrTooSmall", err)
	}
	if v.At(0) != 0 || v.At(1) != 1 {
		t.Fatal("view contents changed under deferred resize")
	}
	r.ReleaseView(2)
	if r.Cap() != 16 {
		t.Fatalf("deferred resize not applied: cap = %d, want 16", r.Cap())
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d, want 1", r.Len())
	}
	if v, _, err := r.Pop(); err != nil || v != 2 {
		t.Fatalf("pop = (%d, %v), want 2", v, err)
	}
}

// TestRingViewPinsBestEffortEviction: while a read view is out, a full
// best-effort ring must shed incoming elements instead of evicting the
// borrowed head; after release, latest-wins eviction resumes.
func TestRingViewPinsBestEffortEviction(t *testing.T) {
	r := NewRing[int](4)
	r.SetBestEffort(true)
	for i := 0; i < 4; i++ {
		if err := r.Push(i, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	v, err := r.AcquireView(4)
	if err != nil {
		t.Fatal(err)
	}
	// Full ring + pinned head: the incoming element is shed, not the head.
	if err := r.Push(99, SigNone); err != nil {
		t.Fatal(err)
	}
	if got := r.Telemetry().Drops(); got != 1 {
		t.Fatalf("drops = %d, want 1 (incoming shed)", got)
	}
	for i := 0; i < 4; i++ {
		if v.At(i) != i {
			t.Fatalf("borrowed element %d changed: %d", i, v.At(i))
		}
	}
	r.ReleaseView(0) // consume nothing; head unpinned
	// Eviction resumes: pushing into the full ring now evicts the oldest.
	if err := r.Push(100, SigNone); err != nil {
		t.Fatal(err)
	}
	if got := r.Telemetry().Drops(); got != 2 {
		t.Fatalf("drops = %d, want 2 (head evicted)", got)
	}
	if v0, _, err := r.Pop(); err != nil || v0 != 1 {
		t.Fatalf("head = (%d, %v), want 1 after eviction", v0, err)
	}
}

// TestSPSCViewAcrossEpochSwap acquires a view in the old epoch, lets the
// producer install a pending swap mid-borrow, and checks the borrowed
// storage stays intact while the resize completes underneath.
func TestSPSCViewAcrossEpochSwap(t *testing.T) {
	q := NewSPSC[int](4)
	for i := 0; i < 4; i++ {
		if err := q.Push(i, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	v, err := q.AcquireView(4)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 4 {
		t.Fatalf("view len = %d, want 4", v.Len())
	}
	if err := q.Resize(16); err != nil {
		t.Fatal(err)
	}
	// The producer's next push installs the swap while the view is out.
	if err := q.Push(4, SigEOF); err != nil {
		t.Fatal(err)
	}
	if q.ResizePending() {
		t.Fatal("swap not installed by the push")
	}
	if q.Cap() != 16 {
		t.Fatalf("cap = %d, want 16: resize must complete mid-view", q.Cap())
	}
	for i := 0; i < 4; i++ {
		if v.At(i) != i {
			t.Fatalf("sealed-epoch element %d changed: %d", i, v.At(i))
		}
	}
	q.ReleaseView(4)
	// The consumer follows across the seal for the element in the new epoch.
	got, s, err := q.Pop()
	if err != nil || got != 4 || s != SigEOF {
		t.Fatalf("pop across seal = (%d, %v, %v)", got, s, err)
	}
}

// TestSPSCViewStopsAtSeal: a view never straddles an epoch boundary — it
// is limited to the sealed tail, and the next acquire continues in the
// successor epoch.
func TestSPSCViewStopsAtSeal(t *testing.T) {
	q := NewSPSC[int](4)
	for i := 0; i < 4; i++ {
		if err := q.Push(i, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Resize(16); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(4, SigNone); err != nil { // installs; lands in new epoch
		t.Fatal(err)
	}
	v, err := q.AcquireView(16)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 4 {
		t.Fatalf("view crossed the seal: len = %d, want 4", v.Len())
	}
	q.ReleaseView(4)
	v2, err := q.AcquireView(16)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Len() != 1 || v2.At(0) != 4 {
		t.Fatalf("successor view = len %d head %d", v2.Len(), v2.At(0))
	}
	q.ReleaseView(1)
}

// TestSPSCWriteViewRoundTrip reserves producer slots, publishes a prefix,
// and drains it back; a full best-effort queue must return an empty write
// view instead of spinning.
func TestSPSCWriteViewRoundTrip(t *testing.T) {
	q := NewSPSC[int](8)
	wv, err := q.AcquireWriteView(5)
	if err != nil {
		t.Fatal(err)
	}
	if wv.Len() != 5 {
		t.Fatalf("write view len = %d, want 5", wv.Len())
	}
	n := wv.CopyIn(0, []int{7, 8, 9}, []Signal{SigNone, SigUser, SigNone})
	if n != 3 {
		t.Fatalf("CopyIn = %d, want 3", n)
	}
	q.ReleaseWriteView(3)
	if q.Len() != 3 {
		t.Fatalf("len = %d, want 3", q.Len())
	}
	dst := make([]int, 4)
	sigs := make([]Signal, 4)
	got, err := q.DrainTo(dst, sigs)
	if err != nil || got != 3 {
		t.Fatalf("DrainTo = (%d, %v)", got, err)
	}
	if dst[0] != 7 || dst[1] != 8 || dst[2] != 9 || sigs[1] != SigUser {
		t.Fatalf("drained %v / %v", dst[:3], sigs[:3])
	}

	// Fill the queue, flip best effort: write-view acquisition must come
	// back empty rather than spin (the caller sheds via PushN).
	for i := 0; ; i++ {
		ok, err := q.TryPush(i, SigNone)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	q.SetBestEffort(true)
	wv2, err := q.AcquireWriteView(4)
	if err != nil {
		t.Fatal(err)
	}
	if wv2.Len() != 0 {
		t.Fatalf("full best-effort queue handed out %d slots", wv2.Len())
	}
}

// TestResizeCompletesUnderShortViews is the starvation acceptance bar: a
// resize requested while a consumer churns short-lived views must still
// complete, on both ring kinds.
func TestResizeCompletesUnderShortViews(t *testing.T) {
	t.Run("spsc", func(t *testing.T) {
		q := NewSPSC[int](4)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // producer keeps the queue non-empty (and installs swaps)
			defer wg.Done()
			// TryPush, not Push: once the main goroutine closes stop the
			// consumer quits immediately, and a producer parked in a
			// blocking Push on the then-full ring would never wake.
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := q.TryPush(i, SigNone); err != nil {
					return
				}
			}
		}()
		go func() { // consumer churns short-lived views
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := q.TryAcquireView(4)
				if err != nil {
					return
				}
				if v.Len() > 0 {
					q.ReleaseView(v.Len())
				}
			}
		}()
		if err := q.Resize(64); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for q.Cap() != 64 {
			if time.Now().After(deadline) {
				t.Fatal("SPSC resize starved by view churn")
			}
			time.Sleep(time.Millisecond)
		}
		close(stop)
		wg.Wait()
	})
	t.Run("mutex", func(t *testing.T) {
		r := NewRing[int](4)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			// TryPush for the same shutdown reason as the SPSC subtest.
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := r.TryPush(i, SigNone); err != nil {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := r.TryAcquireView(4)
				if err != nil {
					return
				}
				if v.Len() > 0 {
					r.ReleaseView(v.Len())
				}
			}
		}()
		if err := r.Resize(64); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for r.Cap() != 64 {
			if time.Now().After(deadline) {
				t.Fatal("mutex resize starved by view churn")
			}
			time.Sleep(time.Millisecond)
		}
		close(stop)
		wg.Wait()
	})
}

// TestViewHeldFor checks the monitor probe on both kinds: zero with no
// view out, monotone while one is held, zero again after release — and
// the hold time lands in ViewHoldNs.
func TestViewHeldFor(t *testing.T) {
	r := NewRing[int](4)
	q := NewSPSC[int](4)
	if r.ViewHeldFor() != 0 || q.ViewHeldFor() != 0 {
		t.Fatal("held-for nonzero with no view out")
	}
	_ = r.Push(1, SigNone)
	_ = q.Push(1, SigNone)
	rv, _ := r.AcquireView(1)
	qv, _ := q.AcquireView(1)
	time.Sleep(2 * time.Millisecond)
	if r.ViewHeldFor() <= 0 || q.ViewHeldFor() <= 0 {
		t.Fatal("held-for zero while a view is out")
	}
	r.ReleaseView(rv.Len())
	q.ReleaseView(qv.Len())
	if r.ViewHeldFor() != 0 || q.ViewHeldFor() != 0 {
		t.Fatal("held-for nonzero after release")
	}
	if r.Telemetry().Snapshot().ViewHoldNs == 0 || q.Telemetry().Snapshot().ViewHoldNs == 0 {
		t.Fatal("ViewHoldNs not recorded")
	}
}

// viewFIFO is the common surface the concurrent view fuzz drives on both
// ring kinds.
type viewFIFO interface {
	PushN([]int, []Signal) error
	AcquireView(int) (View[int], error)
	ReleaseView(int)
	Resize(int) error
	Close()
	Telemetry() *Telemetry
}

// FuzzViewResize runs a bulk producer, a resizer and a view-borrowing
// consumer concurrently, on either ring kind with either overflow policy
// (the fuzzer picks). The consumer acquires views, verifies every visible
// element in place, and releases fuzzer-chosen prefixes — so borrows span
// epoch swaps, mid-view shrinks and best-effort eviction. Released
// elements must form the exact FIFO sequence (or, best-effort, an ordered
// subsequence with every loss counted in Dropped).
func FuzzViewResize(f *testing.F) {
	f.Add([]byte{4, 9, 1, 16, 3}, []byte{8, 200, 16, 4, 64}, uint8(3), uint8(0))
	f.Add([]byte{1, 1, 1}, []byte{255, 2, 255, 2}, uint8(1), uint8(1))
	f.Add([]byte{17, 5}, []byte{3, 120, 7}, uint8(12), uint8(2))
	f.Add([]byte{8, 8, 8, 8}, []byte{2, 90, 2, 90}, uint8(7), uint8(3))
	f.Fuzz(func(t *testing.T, batches, resizes []byte, grains, mode uint8) {
		if len(batches) == 0 || len(batches) > 64 || len(resizes) > 64 {
			t.Skip()
		}
		const total = 2000
		sigFor := func(v int) Signal {
			if v%5 == 0 {
				return SigUser
			}
			return SigNone
		}
		bestEffort := mode&2 != 0
		var q viewFIFO
		var tel *Telemetry
		if mode&1 == 0 {
			r := NewRing[int](8)
			// Latest-wins eviction only sheds signal-free elements; with
			// best effort on, make everything sheddable so the producer
			// never wedges against a pinned head.
			r.SetBestEffort(bestEffort)
			q, tel = r, r.Telemetry()
		} else {
			s := NewSPSC[int](8)
			s.SetBestEffort(bestEffort)
			q, tel = s, s.Telemetry()
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // producer: PushN with fuzzer-chosen batch sizes
			defer wg.Done()
			defer q.Close()
			next, bi := 0, 0
			for next < total {
				batch := int(batches[bi%len(batches)])%17 + 1
				bi++
				if batch > total-next {
					batch = total - next
				}
				vs := make([]int, batch)
				var sigs []Signal
				if !bestEffort {
					sigs = make([]Signal, batch)
				}
				for i := range vs {
					vs[i] = next + i
					if sigs != nil {
						sigs[i] = sigFor(next + i)
					}
				}
				if err := q.PushN(vs, sigs); err != nil {
					t.Errorf("PushN: %v", err)
					return
				}
				next += batch
			}
		}()
		go func() { // resizer: grows and mid-view shrinks
			defer wg.Done()
			for _, b := range resizes {
				_ = q.Resize(int(b)%300 + 2) // ErrTooSmall is fine
			}
		}()
		// Consumer: borrow, verify in place, release a fuzzer-chosen prefix.
		released := 0
		last := -1
		gi := 0
		for {
			v, err := q.AcquireView(int(grains)%13 + 1)
			if v.Len() > 0 {
				prev := last
				for i := 0; i < v.Len(); i++ {
					e := v.At(i)
					if e <= prev {
						t.Fatalf("order broken in view: %d after %d", e, prev)
					}
					if !bestEffort && v.SigAt(i) != sigFor(e) {
						t.Fatalf("signal misaligned: v=%d sig=%v", e, v.SigAt(i))
					}
					prev = e
				}
				k := int(batches[gi%len(batches)])%v.Len() + 1
				gi++
				last = v.At(k - 1)
				released += k
				q.ReleaseView(k)
			}
			if err != nil {
				break
			}
		}
		wg.Wait()
		dropped := int(tel.Drops())
		if released+dropped != total {
			t.Fatalf("released %d + dropped %d != pushed %d", released, dropped, total)
		}
		if !bestEffort && released != total {
			t.Fatalf("lost elements without best effort: %d/%d", released, total)
		}
		// Flow invariant after drain: mutex latest-wins evicts elements that
		// were already counted as pushed (Pushes = Pops + Dropped), while the
		// SPSC sheds incoming elements before they are pushed (Pushes = Pops).
		snap := tel.Snapshot()
		wantPops := snap.Pushes
		if mode&1 == 0 {
			wantPops = snap.Pushes - snap.Dropped
		}
		if snap.Pops != wantPops {
			t.Fatalf("flow imbalance after drain: pushes=%d pops=%d dropped=%d", snap.Pushes, snap.Pops, snap.Dropped)
		}
	})
}

// FuzzViewModelResize mirrors FuzzSPSCModelResize for the view surface: a
// single goroutine (legal as both SPSC endpoints) interleaves scalar ops,
// view borrows that stay open across other ops, resize requests and write
// views, checking every observation against a plain-slice model. The first
// op byte selects the ring kind. Ops: 0-59 TryPush, 60-109 TryPop,
// 110-149 Resize, 150-179 acquire read view, 180-209 release read view,
// 210-239 acquire+fill write view, 240-255 release write view.
func FuzzViewModelResize(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 150, 120, 180, 4, 100, 240})
	f.Add([]byte{1, 10, 10, 10, 155, 111, 111, 185, 100, 100})
	f.Add([]byte{0, 215, 245, 215, 241, 60, 60, 150, 181})
	f.Add([]byte{1, 5, 5, 150, 130, 5, 190, 217, 250, 65})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) < 2 || len(ops) > 4096 {
			t.Skip()
		}
		sigFor := func(v int) Signal {
			if v%3 == 0 {
				return SigUser
			}
			return SigNone
		}
		type modelRing interface {
			viewFIFO
			TryPush(int, Signal) (bool, error)
			TryPop() (int, Signal, bool, error)
			TryAcquireView(int) (View[int], error)
			TryAcquireWriteView(int) (WriteView[int], error)
			ReleaseWriteView(int)
			Len() int
			Pop() (int, Signal, error)
		}
		var q modelRing
		if ops[0]%2 == 0 {
			q = NewRing[int](4)
		} else {
			q = NewSPSC[int](4)
		}
		var model []int
		next := 0
		viewLen := -1  // outstanding read view length, -1 when none
		wviewLen := -1 // outstanding write view length, -1 when none
		for _, op := range ops[1:] {
			switch {
			case op < 60: // TryPush — illegal while a write view reserves the tail
				if wviewLen >= 0 {
					continue
				}
				ok, err := q.TryPush(next, sigFor(next))
				if err != nil {
					t.Fatalf("push err: %v", err)
				}
				if ok {
					model = append(model, next)
					next++
				}
			case op < 110: // TryPop — illegal while a read view pins the head
				if viewLen >= 0 {
					continue
				}
				v, s, ok, err := q.TryPop()
				if err != nil {
					t.Fatalf("pop err: %v", err)
				}
				if ok != (len(model) > 0) {
					t.Fatalf("pop ok=%v with model len %d", ok, len(model))
				}
				if ok {
					if v != model[0] || s != sigFor(model[0]) {
						t.Fatalf("pop = (%d,%v), model head (%d,%v)", v, s, model[0], sigFor(model[0]))
					}
					model = model[1:]
				}
			case op < 150: // Resize: deferred mid-view on the mutex ring, pending on SPSC
				newCap := int(op-109) * 2
				err := q.Resize(newCap)
				if newCap < len(model) {
					if !errors.Is(err, ErrTooSmall) {
						t.Fatalf("undersized resize err = %v", err)
					}
				} else if err != nil {
					t.Fatalf("resize err: %v", err)
				}
			case op < 180: // acquire read view; stays open across later ops
				if viewLen >= 0 {
					continue
				}
				v, err := q.TryAcquireView(int(op)%7 + 1)
				if err != nil {
					t.Fatalf("acquire err: %v", err)
				}
				if v.Len() == 0 {
					if len(model) > 0 {
						t.Fatalf("empty view with model len %d", len(model))
					}
					continue
				}
				if v.Len() > len(model) {
					t.Fatalf("view len %d > model %d", v.Len(), len(model))
				}
				for i := 0; i < v.Len(); i++ {
					if v.At(i) != model[i] || v.SigAt(i) != sigFor(model[i]) {
						t.Fatalf("view[%d] = (%d,%v), model (%d,%v)", i, v.At(i), v.SigAt(i), model[i], sigFor(model[i]))
					}
				}
				viewLen = v.Len()
			case op < 210: // release read view (fuzzer-chosen prefix)
				if viewLen < 0 {
					continue
				}
				k := int(op) % (viewLen + 1)
				q.ReleaseView(k)
				model = model[k:]
				viewLen = -1
			case op < 240: // acquire + fill write view
				if wviewLen >= 0 {
					continue
				}
				wv, err := q.TryAcquireWriteView(int(op)%5 + 1)
				if err != nil {
					t.Fatalf("acquire write err: %v", err)
				}
				if wv.Len() == 0 {
					continue
				}
				for i := 0; i < wv.Len(); i++ {
					wv.SetAt(i, next+i, sigFor(next+i))
				}
				wviewLen = wv.Len()
			default: // release write view (fuzzer-chosen prefix published)
				if wviewLen < 0 {
					continue
				}
				k := int(op) % (wviewLen + 1)
				q.ReleaseWriteView(k)
				for i := 0; i < k; i++ {
					model = append(model, next+i)
				}
				next += k // unpublished values are discarded; reuse the numbers
				wviewLen = -1
			}
			if q.Len() != len(model) {
				t.Fatalf("len = %d, model %d", q.Len(), len(model))
			}
		}
		// Close any outstanding borrows without consuming, then drain the
		// remainder and re-verify order + signals after close.
		if viewLen >= 0 {
			q.ReleaseView(0)
		}
		if wviewLen >= 0 {
			q.ReleaseWriteView(0)
		}
		q.Close()
		for _, want := range model {
			v, s, err := q.Pop()
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
			if v != want || s != sigFor(want) {
				t.Fatalf("drain = (%d,%v), want (%d,%v)", v, s, want, sigFor(want))
			}
		}
		if _, _, err := q.Pop(); !errors.Is(err, ErrClosed) {
			t.Fatalf("final pop err = %v, want ErrClosed", err)
		}
	})
}
