package ringbuffer

import (
	"testing"
	"time"
)

// TestRingBestEffortLatestWins checks the mutex ring's overflow policy:
// pushes into a full ring evict the oldest elements, so the consumer sees
// the freshest suffix and the producer never blocks.
func TestRingBestEffortLatestWins(t *testing.T) {
	r := NewRing[int](4)
	r.SetBestEffort(true)
	for i := 0; i < 10; i++ {
		if err := r.Push(i, SigNone); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if got := r.Telemetry().Drops(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	// The four freshest elements survive, in order.
	for want := 6; want < 10; want++ {
		v, _, err := r.Pop()
		if err != nil || v != want {
			t.Fatalf("pop = %d, %v; want %d", v, err, want)
		}
	}
	// Evictions must not count as Pops (they would contaminate µ̂).
	snap := r.Telemetry().Snapshot()
	if snap.Pops != 4 {
		t.Fatalf("Pops = %d, want 4 (drops must not count)", snap.Pops)
	}
	if snap.Pushes != 10 {
		t.Fatalf("Pushes = %d, want 10", snap.Pushes)
	}
}

// TestRingBestEffortPushN checks bulk pushes: a batch larger than the free
// region evicts the oldest elements instead of blocking.
func TestRingBestEffortPushN(t *testing.T) {
	r := NewRing[int](4)
	r.SetBestEffort(true)
	if err := r.PushN([]int{0, 1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.PushN([]int{4, 5, 6}, nil); err != nil {
		t.Fatal(err)
	}
	if got := r.Telemetry().Drops(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	got := make([]int, 4)
	n, err := r.DrainTo(got, nil)
	if err != nil || n != 4 {
		t.Fatalf("drain = %d, %v", n, err)
	}
	for i, want := range []int{3, 4, 5, 6} {
		if got[i] != want {
			t.Fatalf("element %d = %d, want %d", i, got[i], want)
		}
	}
}

// TestRingBestEffortSignalPinned checks that a signal-carrying element is
// never evicted: the incoming signal-free element is shed instead, and a
// signal-carrying push falls back to blocking (here: succeeds after a pop).
func TestRingBestEffortSignalPinned(t *testing.T) {
	r := NewRing[int](2)
	r.SetBestEffort(true)
	if err := r.Push(1, SigEOF); err != nil {
		t.Fatal(err)
	}
	if err := r.Push(2, SigEOF); err != nil {
		t.Fatal(err)
	}
	// Full, head carries a signal: the incoming signal-free element sheds.
	if err := r.Push(3, SigNone); err != nil {
		t.Fatal(err)
	}
	if got := r.Telemetry().Drops(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	v, sig, err := r.Pop()
	if err != nil || v != 1 || sig != SigEOF {
		t.Fatalf("pop = %d/%v/%v, want 1/eof", v, sig, err)
	}
}

// TestRingBestEffortNeverBlocks checks the latency contract: a producer
// flooding a full best-effort ring with no consumer returns promptly.
func TestRingBestEffortNeverBlocks(t *testing.T) {
	r := NewRing[int](2)
	r.SetBestEffort(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			_ = r.Push(i, SigNone)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("best-effort producer blocked")
	}
	if r.Telemetry().Drops() == 0 {
		t.Fatal("expected drops")
	}
}

// TestSPSCBestEffortDropNewest checks the lock-free ring's policy: a full
// queue sheds the incoming elements (drop-newest; the consumer-owned head
// cannot be stolen), counted in Dropped, and the producer never spins.
func TestSPSCBestEffortDropNewest(t *testing.T) {
	q := NewSPSC[int](4)
	q.SetBestEffort(true)
	for i := 0; i < 10; i++ {
		if err := q.Push(i, SigNone); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if got := q.Telemetry().Drops(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	// The oldest elements survive (drop-newest, unlike the mutex ring).
	for want := 0; want < 4; want++ {
		v, _, err := q.Pop()
		if err != nil || v != want {
			t.Fatalf("pop = %d, %v; want %d", v, err, want)
		}
	}
}

// TestSPSCBestEffortPushN checks the bulk path sheds the overflow suffix
// without spinning and keeps counts consistent.
func TestSPSCBestEffortPushN(t *testing.T) {
	q := NewSPSC[int](4)
	q.SetBestEffort(true)
	if err := q.PushN([]int{0, 1, 2, 3, 4, 5, 6}, nil); err != nil {
		t.Fatal(err)
	}
	if got := q.Telemetry().Drops(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	snap := q.Telemetry().Snapshot()
	if snap.Pushes != 4 {
		t.Fatalf("Pushes = %d, want 4", snap.Pushes)
	}
}

// TestSPSCBestEffortEOFSurvives checks that an EOF-carrying push on a full
// best-effort queue is not shed: it waits for space, so stream teardown is
// reliable under the drop policy.
func TestSPSCBestEffortEOFSurvives(t *testing.T) {
	q := NewSPSC[int](2)
	q.SetBestEffort(true)
	if err := q.PushN([]int{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- q.Push(99, SigEOF) }()
	select {
	case err := <-done:
		t.Fatalf("EOF push completed on a full queue (err=%v); it must wait", err)
	case <-time.After(20 * time.Millisecond):
	}
	if _, _, err := q.Pop(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("EOF push after space freed: %v", err)
	}
	// Drain to the EOF element.
	if v, _, err := q.Pop(); err != nil || v != 2 {
		t.Fatalf("pop = %d, %v", v, err)
	}
	v, sig, err := q.Pop()
	if err != nil || v != 99 || sig != SigEOF {
		t.Fatalf("pop = %d/%v/%v, want 99/eof", v, sig, err)
	}
}
