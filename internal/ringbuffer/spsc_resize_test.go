package ringbuffer

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitBlocked spins until the queue reports its producer blocked, so a
// test can inject a resize exactly while the writer is wedged on a full
// ring — the monitor's grow scenario.
func waitBlocked(t *testing.T, q *SPSC[int]) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for q.WriterBlockedFor() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("producer never blocked")
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// TestSPSCResizeUnblocksFullProducer is the §4.1 write-block rule on the
// lock-free ring: a producer spinning on a full queue must complete its
// push after Resize grants space — without the consumer taking anything.
func TestSPSCResizeUnblocksFullProducer(t *testing.T) {
	q := NewSPSC[int](2)
	for i := 0; i < 2; i++ {
		if err := q.Push(i, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- q.Push(2, SigNone) }()
	waitBlocked(t, q)
	if err := q.Resize(8); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("resize did not unblock the producer")
	}
	if q.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", q.Cap())
	}
	// All three elements, in order, across the epoch boundary.
	for want := 0; want < 3; want++ {
		v, _, err := q.Pop()
		if err != nil || v != want {
			t.Fatalf("pop = (%d, %v), want %d", v, err, want)
		}
	}
}

// TestSPSCBulkStraddlesSwap wedges a bulk push on a full ring, grows it,
// and then drains everything in one DrainTo call: the push batch must
// split across the epoch boundary on the way in, and the drain must
// cross the seal (old epoch, then new) on the way out with a single
// head publish.
func TestSPSCBulkStraddlesSwap(t *testing.T) {
	q := NewSPSC[int](4)
	batch := make([]int, 12)
	sigs := make([]Signal, 12)
	for i := range batch {
		batch[i] = i
		if i%3 == 0 {
			sigs[i] = SigUser
		}
	}
	done := make(chan error, 1)
	go func() { done <- q.PushN(batch, sigs) }()
	waitBlocked(t, q)
	if err := q.Resize(32); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if q.Len() != 12 {
		t.Fatalf("len = %d, want 12", q.Len())
	}
	// 4 elements live in the sealed epoch, 8 in the new one.
	dst := make([]int, 16)
	ds := make([]Signal, 16)
	n, err := q.DrainTo(dst, ds)
	if err != nil || n != 12 {
		t.Fatalf("DrainTo = (%d, %v), want 12", n, err)
	}
	for i := 0; i < 12; i++ {
		if dst[i] != i {
			t.Fatalf("dst[%d] = %d", i, dst[i])
		}
		want := SigNone
		if i%3 == 0 {
			want = SigUser
		}
		if ds[i] != want {
			t.Fatalf("sig[%d] = %v, want %v", i, ds[i], want)
		}
	}
}

// TestSPSCSignalSurvivesSwap seals a SigEOF into the old epoch and
// verifies it arrives synchronized with its element after the swap.
func TestSPSCSignalSurvivesSwap(t *testing.T) {
	q := NewSPSC[int](2)
	if err := q.Push(1, SigNone); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(2, SigEOF); err != nil {
		t.Fatal(err)
	}
	if err := q.Resize(16); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- q.Push(3, SigUser) }() // installs the epoch
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	wantSig := []Signal{SigNone, SigEOF, SigUser}
	for i := 1; i <= 3; i++ {
		v, s, err := q.Pop()
		if err != nil || v != i || s != wantSig[i-1] {
			t.Fatalf("pop = (%d, %v, %v), want (%d, %v)", v, s, err, i, wantSig[i-1])
		}
	}
}

// TestSPSCShrinkMidStream drains most of a large ring, shrinks it, and
// keeps streaming: the shrink installs at the next push and the FIFO
// stays exact. A shrink below the live backlog must be refused.
func TestSPSCShrinkMidStream(t *testing.T) {
	q := NewSPSC[int](64)
	next := 0
	for ; next < 40; next++ {
		if err := q.Push(next, SigNone); err != nil {
			t.Fatal(err)
		}
	}
	want := 0
	for ; want < 30; want++ {
		v, _, err := q.Pop()
		if err != nil || v != want {
			t.Fatalf("pop = (%d, %v), want %d", v, err, want)
		}
	}
	if err := q.Resize(8); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("shrink below backlog = %v, want ErrTooSmall", err)
	}
	if err := q.Resize(16); err != nil {
		t.Fatal(err)
	}
	for ; next < 100; next++ {
		if err := q.Push(next, SigNone); err != nil {
			t.Fatal(err)
		}
		v, _, err := q.Pop()
		if err != nil || v != want {
			t.Fatalf("pop = (%d, %v), want %d", v, err, want)
		}
		want++
	}
	if q.Cap() != 16 {
		t.Fatalf("cap = %d, want 16", q.Cap())
	}
	tel := q.Telemetry().Snapshot()
	if tel.Shrinks != 1 {
		t.Fatalf("shrinks = %d, want 1", tel.Shrinks)
	}
	if tel.Pushes != uint64(next) || tel.Pops != uint64(want) {
		t.Fatalf("flow = %d/%d across epochs, want %d/%d", tel.Pushes, tel.Pops, next, want)
	}
}

// TestSPSCResizeChurnUnderLoad streams a few hundred thousand elements
// through a ring that is grown and shrunk continuously from a third
// goroutine — the monitor's worst case. Order, the element count and
// the cross-epoch telemetry must all survive.
func TestSPSCResizeChurnUnderLoad(t *testing.T) {
	const total = 300_000
	q := NewSPSC[int](4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := q.Push(i, SigNone); err != nil {
				t.Errorf("push: %v", err)
				return
			}
		}
		q.Close()
	}()
	go func() { // resizer: grow/shrink cycle while traffic flows
		defer wg.Done()
		caps := []int{8, 256, 16, 1024, 4, 64}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = q.Resize(caps[i%len(caps)]) // ErrTooSmall is fine
			runtime.Gosched()
		}
	}()
	next := 0
	for {
		v, _, err := q.Pop()
		if errors.Is(err, ErrClosed) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if v != next {
			t.Fatalf("out of order: got %d, want %d", v, next)
		}
		next++
	}
	close(stop)
	wg.Wait()
	if next != total {
		t.Fatalf("received %d, want %d", next, total)
	}
	tel := q.Telemetry().Snapshot()
	if tel.Pushes != total || tel.Pops != total {
		t.Fatalf("flow counters across epochs: pushes=%d pops=%d", tel.Pushes, tel.Pops)
	}
	if tel.Resizes == 0 {
		t.Fatal("churn never installed a resize")
	}
	if tel.Resizes != tel.Grows+tel.Shrinks {
		t.Fatalf("resizes=%d != grows+shrinks=%d", tel.Resizes, tel.Grows+tel.Shrinks)
	}
}

// FuzzSPSCResize runs a bulk/scalar producer, a resizer and a bulk/scalar
// consumer concurrently, with the fuzzer choosing the batch schedule, the
// resize schedule and the pop granularity. The consumer must observe the
// exact FIFO sequence with every signal aligned to its element, across
// every epoch boundary the schedule produces.
func FuzzSPSCResize(f *testing.F) {
	f.Add([]byte{4, 9, 1, 16, 3}, []byte{8, 200, 16, 4, 64}, uint8(3))
	f.Add([]byte{1, 1, 1}, []byte{255, 2, 255, 2}, uint8(1))
	f.Add([]byte{17, 5}, []byte{3, 120, 7}, uint8(12))
	f.Fuzz(func(t *testing.T, batches, resizes []byte, popGrain uint8) {
		if len(batches) == 0 || len(batches) > 64 || len(resizes) > 64 {
			t.Skip()
		}
		const total = 2000
		sigFor := func(v int) Signal {
			if v%5 == 0 {
				return SigUser
			}
			return SigNone
		}
		q := NewSPSC[int](2)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // producer: batch sizes from the fuzzer; 1 = scalar Push
			defer wg.Done()
			defer q.Close()
			next, bi := 0, 0
			for next < total {
				batch := int(batches[bi%len(batches)])%17 + 1
				bi++
				if batch > total-next {
					batch = total - next
				}
				if batch == 1 {
					if err := q.Push(next, sigFor(next)); err != nil {
						t.Errorf("Push: %v", err)
						return
					}
				} else {
					vs := make([]int, batch)
					sigs := make([]Signal, batch)
					for i := range vs {
						vs[i] = next + i
						sigs[i] = sigFor(next + i)
					}
					if err := q.PushN(vs, sigs); err != nil {
						t.Errorf("PushN: %v", err)
						return
					}
				}
				next += batch
			}
		}()
		go func() { // resizer: the monitor stand-in
			defer wg.Done()
			for _, b := range resizes {
				_ = q.Resize(int(b)%300 + 2) // ErrTooSmall is fine
				runtime.Gosched()
			}
		}()
		got := make([]int, 0, total)
		grain := int(popGrain)%13 + 1
		dst := make([]int, grain)
		sigs := make([]Signal, grain)
		for {
			if grain == 1 {
				v, s, err := q.Pop()
				if err != nil {
					break
				}
				if want := sigFor(v); s != want {
					t.Fatalf("signal misaligned: v=%d sig=%v want %v", v, s, want)
				}
				got = append(got, v)
				continue
			}
			n, err := q.PopN(dst, sigs)
			for i := 0; i < n; i++ {
				if want := sigFor(dst[i]); sigs[i] != want {
					t.Fatalf("signal misaligned: v=%d sig=%v want %v", dst[i], sigs[i], want)
				}
			}
			got = append(got, dst[:n]...)
			if err != nil {
				break
			}
		}
		wg.Wait()
		if len(got) != total {
			t.Fatalf("received %d elements, want %d", len(got), total)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("FIFO order broken at %d: got %d", i, v)
			}
		}
		tel := q.Telemetry().Snapshot()
		if tel.Pushes != total || tel.Pops != total {
			t.Fatalf("flow counters: pushes=%d pops=%d", tel.Pushes, tel.Pops)
		}
	})
}

// FuzzSPSCModelResize drives one SPSC from a single goroutine with a
// fuzzer-chosen interleaving of scalar ops, bulk ops and resize
// requests, checking every observation against a plain-slice FIFO
// model. Single-threaded use is legal SPSC use (the same goroutine is
// both endpoints), and it makes every install/seal/follow transition
// deterministic for the fuzzer to reach.
// Ops: 0-89 TryPush, 90-179 TryPop, 180-229 Resize, 230-255 DrainTo.
func FuzzSPSCModelResize(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 4, 100, 100, 100, 100, 240})
	f.Add([]byte{10, 181, 10, 10, 10, 10, 10, 10, 10, 10, 229, 150, 235})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			t.Skip()
		}
		sigFor := func(v int) Signal {
			if v%3 == 0 {
				return SigUser
			}
			return SigNone
		}
		q := NewSPSC[int](2)
		var model []int
		next := 0
		for _, op := range ops {
			switch {
			case op < 90:
				ok, err := q.TryPush(next, sigFor(next))
				if err != nil {
					t.Fatalf("push err: %v", err)
				}
				if ok {
					model = append(model, next)
					next++
				} else if q.ResizePending() {
					t.Fatal("TryPush failed with an installable grow pending")
				}
			case op < 180:
				v, s, ok, err := q.TryPop()
				if err != nil {
					t.Fatalf("pop err: %v", err)
				}
				if ok != (len(model) > 0) {
					t.Fatalf("pop ok=%v with model len %d", ok, len(model))
				}
				if ok {
					if v != model[0] || s != sigFor(model[0]) {
						t.Fatalf("pop = (%d,%v), model head (%d,%v)", v, s, model[0], sigFor(model[0]))
					}
					model = model[1:]
				}
			case op < 230:
				newCap := int(op-179) * 2
				err := q.Resize(newCap)
				if newCap < len(model) {
					if !errors.Is(err, ErrTooSmall) {
						t.Fatalf("undersized resize err = %v", err)
					}
				} else if err != nil {
					t.Fatalf("resize err: %v", err)
				}
			default:
				k := int(op)%5 + 1
				dst := make([]int, k)
				sigs := make([]Signal, k)
				n, err := q.DrainTo(dst, sigs)
				if err != nil {
					t.Fatalf("DrainTo err: %v", err)
				}
				if n == 0 && len(model) > 0 {
					t.Fatalf("DrainTo drained nothing with model len %d", len(model))
				}
				for i := 0; i < n; i++ {
					if dst[i] != model[i] || sigs[i] != sigFor(model[i]) {
						t.Fatalf("DrainTo[%d] = (%d,%v), model (%d,%v)", i, dst[i], sigs[i], model[i], sigFor(model[i]))
					}
				}
				model = model[n:]
			}
			if q.Len() != len(model) {
				t.Fatalf("len = %d, model %d", q.Len(), len(model))
			}
		}
		// Drain the remainder and re-verify order + signals after close.
		q.Close()
		for _, want := range model {
			v, s, err := q.Pop()
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
			if v != want || s != sigFor(want) {
				t.Fatalf("drain = (%d,%v), want (%d,%v)", v, s, want, sigFor(want))
			}
		}
		if _, _, err := q.Pop(); !errors.Is(err, ErrClosed) {
			t.Fatalf("final pop err = %v, want ErrClosed", err)
		}
	})
}
