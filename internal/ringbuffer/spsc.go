package ringbuffer

import (
	"runtime"
	"sync/atomic"
	"time"
)

// SPSC is a fixed-capacity lock-free single-producer single-consumer ring.
// It trades the dynamic resizing of Ring for a pure atomic fast path: one
// goroutine may push, one may pop, with no mutex on either side. It exists
// so the cost of the resizable queue can be measured (DESIGN.md ablation
// A2) and serves as the allocation choice when the runtime's dynamic
// optimization is turned off.
//
// The implementation uses monotonically increasing head/tail sequence
// counters (never wrapped), masked into a power-of-two buffer — the
// classic Lamport queue with cache-line padding between the producer and
// consumer fields to avoid false sharing.
type SPSC[T any] struct {
	mask uint64
	vals []T
	sigs []Signal

	_pad0 [64]byte
	tail  atomic.Uint64 // next write sequence (producer-owned)
	_pad1 [64]byte
	head  atomic.Uint64 // next read sequence (consumer-owned)
	_pad2 [64]byte

	closed atomic.Bool
	tel    Telemetry

	writerBlockSince atomic.Int64
	readerBlockSince atomic.Int64
}

// NewSPSC returns a lock-free ring whose capacity is capacity rounded up to
// a power of two (minimum 2).
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{
		mask: uint64(n - 1),
		vals: make([]T, n),
		sigs: make([]Signal, n),
	}
}

// Len returns the number of buffered elements.
func (q *SPSC[T]) Len() int { return int(q.tail.Load() - q.head.Load()) }

// Cap returns the fixed capacity.
func (q *SPSC[T]) Cap() int { return len(q.vals) }

// Resize is unsupported on the lock-free ring; it returns ErrTooSmall when
// asked to shrink below Len and nil (no-op) otherwise so that a monitor
// treating all queues uniformly degrades gracefully.
func (q *SPSC[T]) Resize(newCap int) error {
	if newCap < q.Len() {
		return ErrTooSmall
	}
	return nil
}

// Close marks the producer finished. Idempotent.
func (q *SPSC[T]) Close() { q.closed.Store(true) }

// Closed reports whether the producer closed the queue.
func (q *SPSC[T]) Closed() bool { return q.closed.Load() }

// TryPush appends v without blocking; it reports whether the element was
// accepted and returns ErrClosed on a closed queue.
func (q *SPSC[T]) TryPush(v T, sig Signal) (bool, error) {
	if q.closed.Load() {
		return false, ErrClosed
	}
	t := q.tail.Load()
	if t-q.head.Load() > q.mask {
		return false, nil // full
	}
	i := t & q.mask
	q.vals[i] = v
	q.sigs[i] = sig
	q.tail.Store(t + 1) // release: publishes the slot
	q.tel.Pushes.Inc()
	return true, nil
}

// Push appends v, spinning (with escalating back-off) while the queue is
// full. It returns ErrClosed if the queue is closed.
func (q *SPSC[T]) Push(v T, sig Signal) error {
	var spins int
	var blockedAt int64
	for {
		ok, err := q.TryPush(v, sig)
		if err != nil {
			q.clearWriterBlock(blockedAt)
			return err
		}
		if ok {
			q.clearWriterBlock(blockedAt)
			return nil
		}
		if blockedAt == 0 {
			blockedAt = nowNanos()
			q.writerBlockSince.Store(blockedAt)
		}
		backoff(&spins)
	}
}

func (q *SPSC[T]) clearWriterBlock(blockedAt int64) {
	if blockedAt != 0 {
		q.writerBlockSince.Store(0)
		q.tel.WriteBlockNs.Add(uint64(nowNanos() - blockedAt))
	}
}

// TryPop removes the oldest element without blocking. ok reports whether an
// element was returned; err is ErrClosed once the queue is closed and empty.
func (q *SPSC[T]) TryPop() (v T, s Signal, ok bool, err error) {
	h := q.head.Load()
	if h == q.tail.Load() {
		if q.closed.Load() {
			// Re-check emptiness after observing closed: the producer may
			// have pushed between our tail load and its Close.
			if h == q.tail.Load() {
				return v, SigNone, false, ErrClosed
			}
		} else {
			return v, SigNone, false, nil
		}
	}
	i := h & q.mask
	v = q.vals[i]
	s = q.sigs[i]
	var zero T
	q.vals[i] = zero
	q.head.Store(h + 1)
	q.tel.Pops.Inc()
	return v, s, true, nil
}

// Pop removes the oldest element, spinning while the queue is empty. Once
// the queue is closed and drained it returns ErrClosed.
func (q *SPSC[T]) Pop() (T, Signal, error) {
	var spins int
	var blockedAt int64
	for {
		v, s, ok, err := q.TryPop()
		if err != nil {
			q.clearReaderBlock(blockedAt)
			var zero T
			return zero, SigNone, err
		}
		if ok {
			q.clearReaderBlock(blockedAt)
			return v, s, nil
		}
		if blockedAt == 0 {
			blockedAt = nowNanos()
			q.readerBlockSince.Store(blockedAt)
		}
		backoff(&spins)
	}
}

func (q *SPSC[T]) clearReaderBlock(blockedAt int64) {
	if blockedAt != 0 {
		q.readerBlockSince.Store(0)
		q.tel.ReadBlockNs.Add(uint64(nowNanos() - blockedAt))
	}
}

// WriterBlockedFor returns how long the producer has been spinning on a
// full queue, or zero.
func (q *SPSC[T]) WriterBlockedFor() time.Duration {
	since := q.writerBlockSince.Load()
	if since == 0 {
		return 0
	}
	return time.Duration(nowNanos() - since)
}

// ReaderStarvedFor returns how long the consumer has been spinning on an
// empty queue, or zero.
func (q *SPSC[T]) ReaderStarvedFor() time.Duration {
	since := q.readerBlockSince.Load()
	if since == 0 {
		return 0
	}
	return time.Duration(nowNanos() - since)
}

// PendingDemand always returns 0: SPSC consumers cannot request windows.
func (q *SPSC[T]) PendingDemand() int { return 0 }

// Telemetry returns the queue's performance counters.
func (q *SPSC[T]) Telemetry() *Telemetry { return &q.tel }

// backoff escalates from busy spinning to Gosched to short sleeps so a
// blocked side does not monopolize a core indefinitely.
func backoff(spins *int) {
	*spins++
	switch {
	case *spins < 64:
		// busy spin
	case *spins < 256:
		runtime.Gosched()
	default:
		time.Sleep(10 * time.Microsecond)
	}
}

var _ Queue = (*SPSC[int])(nil)
