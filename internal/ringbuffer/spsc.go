package ringbuffer

import (
	"runtime"
	"sync/atomic"
	"time"
)

// SPSC is a lock-free single-producer single-consumer ring. It trades
// the mutex of Ring for a pure atomic fast path: one goroutine may
// push, one may pop, with no lock on either side. Capacity changes go
// through the epoch-swap protocol in spsc_resize.go — the monitor
// publishes a new backing ring, the producer installs it at its next
// push, and the consumer drains the old epoch before following — so
// the monitor's §4.1 resize rules apply to lock-free links too, with
// zero added synchronization on the hot path (one extra uncontended
// atomic load per operation).
//
// The implementation uses monotonically increasing head/tail sequence
// counters (never wrapped), masked into a power-of-two buffer per
// epoch — the classic Lamport queue with cache-line padding between
// the producer and consumer fields to avoid false sharing. Because the
// sequences are global across epochs, Len and all Telemetry counters
// (Flow, OccStats, block times) stay coherent across a swap.
type SPSC[T any] struct {
	_pad0 [64]byte
	tail  atomic.Uint64 // next write sequence (producer-owned)
	prod  *spscSeg[T]   // epoch being written (producer-owned)
	// Write-view state (producer-owned, plain: see view.go). wviewT is the
	// tail sequence the outstanding write view was acquired at.
	wviewOut bool
	wviewN   int
	wviewT   uint64

	_pad1 [64]byte
	head  atomic.Uint64 // next read sequence (consumer-owned)
	cons  *spscSeg[T]   // epoch being read (consumer-owned)

	// Read-view state (consumer-owned, plain). viewH is the head sequence
	// the outstanding read view was acquired at.
	viewOut bool
	viewN   int
	viewH   uint64

	_pad2 [64]byte

	// active is the newest epoch, for third-party observers (Cap);
	// pending is a monitor-published swap request awaiting the
	// producer (see spsc_resize.go).
	active  atomic.Pointer[spscSeg[T]]
	pending atomic.Pointer[spscSeg[T]]

	closed atomic.Bool
	// bestEffort selects the overflow policy: a full queue sheds incoming
	// signal-free elements (counted in Telemetry.Dropped) instead of
	// spinning the producer. Unlike the mutex ring, the SPSC queue cannot
	// evict the oldest element — the head sequence is consumer-owned (plain
	// release store, no CAS) and stealing it from the producer side would
	// race a consumer mid-copy — so best effort here is drop-newest rather
	// than latest-wins. Both sides of the asymmetry satisfy the policy's
	// contract: the producer never blocks and every loss is counted.
	bestEffort atomic.Bool
	// wake, when non-nil, is the scheduler hook for readiness transitions.
	// The transition detection here is conservative (endpoints race the
	// opposing side's sequence counter): the post-publish re-load pattern in
	// notifyPushed/notifyPopped catches every transition that a concurrently
	// parking endpoint could have decided on, and the scheduler's watchdog
	// rescues the pathological remainder. See WakeHooker.
	wake atomic.Pointer[func(Wake)]
	tel  Telemetry

	writerBlockSince atomic.Int64
	readerBlockSince atomic.Int64

	// viewSince / wviewSince hold the UnixNano a read/write view was
	// acquired at (0 when none is out), read lock-free by the monitor's
	// ViewHeldFor probe.
	viewSince  atomic.Int64
	wviewSince atomic.Int64
}

// NewSPSC returns a lock-free ring whose capacity is capacity rounded up to
// a power of two (minimum 2).
func NewSPSC[T any](capacity int) *SPSC[T] {
	q := &SPSC[T]{}
	seg := newSeg[T](capacity, 0)
	q.prod = seg
	q.cons = seg
	q.active.Store(seg)
	return q
}

// Len returns the number of buffered elements. A third party (the monitor)
// calls it concurrently with both endpoints, so the load order matters: head
// must be read before tail. Reading tail first can sandwich a consumer
// head-advance between the two loads and observe head > tail, which as a
// uint64 difference is a huge bogus length. With head read first the
// relation head_before <= head_now <= tail_now keeps the difference
// non-negative; the clamp guards the theoretical torn-interleaving remnant.
// A drain-and-refill sandwiched between the two loads is the mirror hazard:
// tail_now - head_before can exceed the ring size. Re-reading head after
// tail detects it seqlock-style — an unchanged head proves the difference
// was a real instantaneous occupancy (every push that set tail saw a head
// no newer than the one observed, so the producer's own full-check bounds
// it). A few retries always suffice in practice; the bounded fallback
// returns the non-negative estimate rather than spinning against a
// pathological consumer. (During an epoch-swap shrink the true occupancy
// legitimately exceeds Cap — the old epoch's backlog does not fit the new
// ring — which is why the detector re-reads instead of clamping.)
func (q *SPSC[T]) Len() int {
	var h, t uint64
	for i := 0; i < 16; i++ {
		h = q.head.Load()
		t = q.tail.Load()
		if q.head.Load() == h {
			break
		}
	}
	if t < h {
		return 0
	}
	return int(t - h)
}

// Cap returns the capacity of the newest epoch.
func (q *SPSC[T]) Cap() int { return len(q.active.Load().vals) }

// Kind identifies the queue implementation for reports and telemetry.
func (q *SPSC[T]) Kind() string { return "spsc" }

// SetBestEffort switches the queue's overflow policy to drop-newest: a
// full queue sheds incoming signal-free elements, counted in
// Telemetry.Dropped, instead of spinning the producer. Signal-carrying
// elements (EOF, termination) always take the blocking path. See the
// bestEffort field for why this side is drop-newest while the mutex ring
// is latest-wins.
func (q *SPSC[T]) SetBestEffort(on bool) { q.bestEffort.Store(on) }

// BestEffort reports whether the queue runs the drop-newest overflow
// policy.
func (q *SPSC[T]) BestEffort() bool { return q.bestEffort.Load() }

// Close marks the producer finished. Idempotent.
func (q *SPSC[T]) Close() {
	q.closed.Store(true)
	if p := q.wake.Load(); p != nil {
		(*p)(WakeClosed)
	}
}

// SetWakeHook installs (or, with nil, detaches) the scheduler wake hook.
// See WakeHooker for the contract.
func (q *SPSC[T]) SetWakeHook(fn func(Wake)) {
	if fn == nil {
		q.wake.Store(nil)
		return
	}
	q.wake.Store(&fn)
}

// notifyPushed fires WakeNotEmpty after a tail publish at sequence oldTail.
// The head is re-loaded AFTER the tail store: if the consumer had drained
// everything visible before this push (head == oldTail) it may be parked —
// or deciding to park — and the hook's state machine covers both. If
// head < oldTail there were unconsumed elements when the batch published,
// so the consumer cannot have parked on an empty queue whose emptiness
// postdates them.
func (q *SPSC[T]) notifyPushed(oldTail uint64) {
	if p := q.wake.Load(); p != nil && q.head.Load() == oldTail {
		(*p)(WakeNotEmpty)
	}
}

// notifyPopped fires WakeNotFull after a head publish that started from
// sequence oldHead. The tail is re-loaded AFTER the head store: if the
// producer filled the ring to capacity relative to the pre-pop head it may
// be parked on the full queue; the conservative >= catches the epoch-swap
// backlog case too (occupancy beyond the active capacity).
func (q *SPSC[T]) notifyPopped(oldHead uint64) {
	p := q.wake.Load()
	if p == nil {
		return
	}
	if q.tail.Load()-oldHead >= uint64(len(q.active.Load().vals)) {
		(*p)(WakeNotFull)
	}
}

// Closed reports whether the producer closed the queue.
func (q *SPSC[T]) Closed() bool { return q.closed.Load() }

// TryPush appends v without blocking; it reports whether the element was
// accepted and returns ErrClosed on a closed queue. A pending epoch swap
// is installed first, so a full old ring never wedges the producer once
// the monitor has granted more space.
func (q *SPSC[T]) TryPush(v T, sig Signal) (bool, error) {
	if q.closed.Load() {
		return false, ErrClosed
	}
	t := q.tail.Load()
	if q.pending.Load() != nil {
		q.install(t)
	}
	s := q.prod
	h := q.head.Load()
	if s.freeAt(t, h) == 0 {
		return false, nil // full
	}
	i := (t - s.base) & s.mask
	s.vals[i] = v
	s.sigs[i] = sig
	q.tail.Store(t + 1) // release: publishes the slot
	q.tel.Pushes.Inc()
	q.tel.recordOcc(int(t + 1 - h))
	q.notifyPushed(t)
	return true, nil
}

// Push appends v, spinning (with escalating back-off) while the queue is
// full. It returns ErrClosed if the queue is closed.
func (q *SPSC[T]) Push(v T, sig Signal) error {
	var spins int
	var blockedAt int64
	for {
		ok, err := q.TryPush(v, sig)
		if err != nil {
			q.clearWriterBlock(blockedAt)
			return err
		}
		if ok {
			q.clearWriterBlock(blockedAt)
			return nil
		}
		if q.bestEffort.Load() && sig == SigNone {
			q.clearWriterBlock(blockedAt)
			q.tel.Dropped.Inc()
			return nil
		}
		if blockedAt == 0 {
			blockedAt = nowNanos()
			q.writerBlockSince.Store(blockedAt)
		}
		backoff(&spins, &q.tel)
	}
}

// PushN appends all of vs with their parallel signals in bulk: the batch is
// copied into the free region with at most two copies (wrap-around split)
// and published with a single atomic tail store, instead of one store per
// element. sigs may be nil (every element carries SigNone) or must have
// len(vs) entries. PushN spins (escalating back-off) while the queue is full
// and returns ErrClosed on a closed queue. A batch that meets an epoch swap
// is split at the boundary: the remainder of the old ring is filled, the
// swap installs, and the rest of the batch lands in the new ring.
func (q *SPSC[T]) PushN(vs []T, sigs []Signal) error {
	if sigs != nil && len(sigs) != len(vs) {
		panic("ringbuffer: PushN signal slice length mismatch")
	}
	var spins int
	var blockedAt int64
	for len(vs) > 0 {
		if q.closed.Load() {
			q.clearWriterBlock(blockedAt)
			return ErrClosed
		}
		t := q.tail.Load()
		if q.pending.Load() != nil {
			q.install(t)
		}
		s := q.prod
		h := q.head.Load()
		free := s.freeAt(t, h)
		if free == 0 {
			if q.bestEffort.Load() {
				// Shed the incoming signal-free prefix; a signal-carrying
				// element falls through to the blocking spin so control
				// flow (EOF) is never lost.
				shed := 0
				for shed < len(vs) && (sigs == nil || sigs[shed] == SigNone) {
					shed++
				}
				if shed > 0 {
					q.tel.Dropped.Add(uint64(shed))
					vs = vs[shed:]
					if sigs != nil {
						sigs = sigs[shed:]
					}
					continue
				}
			}
			if blockedAt == 0 {
				blockedAt = nowNanos()
				q.writerBlockSince.Store(blockedAt)
			}
			backoff(&spins, &q.tel)
			continue
		}
		k := min(free, len(vs))
		i := int((t - s.base) & s.mask)
		first := min(k, len(s.vals)-i)
		copy(s.vals[i:], vs[:first])
		copy(s.vals, vs[first:k])
		if sigs == nil {
			clearSignals(s.sigs[i : i+first])
			clearSignals(s.sigs[:k-first])
		} else {
			copy(s.sigs[i:], sigs[:first])
			copy(s.sigs, sigs[first:k])
		}
		q.tail.Store(t + uint64(k)) // release: publishes the whole batch
		q.tel.Pushes.Add(uint64(k))
		q.tel.recordOcc(int(t + uint64(k) - h))
		q.notifyPushed(t)
		vs = vs[k:]
		if sigs != nil {
			sigs = sigs[k:]
		}
		spins = 0
	}
	q.clearWriterBlock(blockedAt)
	return nil
}

// PopN removes up to len(dst) elements in bulk, spinning until at least one
// is available: the batch is copied out with at most two copies and consumed
// with a single atomic head store. When sigs is non-nil its first n entries
// receive the elements' synchronized signals. Once the queue is closed and
// drained PopN returns (0, ErrClosed).
func (q *SPSC[T]) PopN(dst []T, sigs []Signal) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	var spins int
	var blockedAt int64
	for {
		n, err := q.DrainTo(dst, sigs)
		if n > 0 || err != nil {
			q.clearReaderBlock(blockedAt)
			return n, err
		}
		if blockedAt == 0 {
			blockedAt = nowNanos()
			q.readerBlockSince.Store(blockedAt)
		}
		backoff(&spins, &q.tel)
	}
}

// DrainTo is the non-blocking PopN: it removes whatever is buffered, up to
// len(dst) elements, returning 0 with a nil error when the queue is empty
// but open and (0, ErrClosed) once it is closed and drained. A drain that
// crosses an epoch boundary copies each epoch's contribution separately
// (the batch splits at the seal) and still publishes one head advance for
// the whole batch.
func (q *SPSC[T]) DrainTo(dst []T, sigs []Signal) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	h := q.head.Load()
	h0 := h
	t := q.tail.Load()
	if t == h {
		if !q.closed.Load() {
			return 0, nil
		}
		// Re-check emptiness after observing closed: the producer may
		// have pushed between our tail load and its Close.
		t = q.tail.Load()
		if t == h {
			return 0, ErrClosed
		}
	}
	total := 0
	for total < len(dst) && h < t {
		s := q.segFor(h)
		limit := t
		if sealed := s.sealedAt.Load(); sealed < limit {
			limit = sealed // this epoch ends before the tail
		}
		n := min(int(limit-h), len(dst)-total)
		i := int((h - s.base) & s.mask)
		first := min(n, len(s.vals)-i)
		copy(dst[total:], s.vals[i:i+first])
		copy(dst[total+first:total+n], s.vals)
		if sigs != nil {
			copy(sigs[total:], s.sigs[i:i+first])
			copy(sigs[total+first:total+n], s.sigs)
		}
		// Release payload references so the GC can reclaim popped elements.
		var zero T
		for j := 0; j < first; j++ {
			s.vals[i+j] = zero
		}
		for j := 0; j < n-first; j++ {
			s.vals[j] = zero
		}
		h += uint64(n)
		total += n
	}
	q.head.Store(h) // release: consumes the whole batch
	q.tel.Pops.Add(uint64(total))
	if total > 0 {
		q.notifyPopped(h0)
	}
	return total, nil
}

func (q *SPSC[T]) clearWriterBlock(blockedAt int64) {
	if blockedAt != 0 {
		q.writerBlockSince.Store(0)
		q.tel.WriteBlockNs.Add(uint64(nowNanos() - blockedAt))
	}
}

// TryPop removes the oldest element without blocking. ok reports whether an
// element was returned; err is ErrClosed once the queue is closed and empty.
func (q *SPSC[T]) TryPop() (v T, s Signal, ok bool, err error) {
	h := q.head.Load()
	if h == q.tail.Load() {
		if q.closed.Load() {
			// Re-check emptiness after observing closed: the producer may
			// have pushed between our tail load and its Close.
			if h == q.tail.Load() {
				return v, SigNone, false, ErrClosed
			}
		} else {
			return v, SigNone, false, nil
		}
	}
	seg := q.segFor(h)
	i := (h - seg.base) & seg.mask
	v = seg.vals[i]
	s = seg.sigs[i]
	var zero T
	seg.vals[i] = zero
	q.head.Store(h + 1)
	q.tel.Pops.Inc()
	q.notifyPopped(h)
	return v, s, true, nil
}

// Pop removes the oldest element, spinning while the queue is empty. Once
// the queue is closed and drained it returns ErrClosed.
func (q *SPSC[T]) Pop() (T, Signal, error) {
	var spins int
	var blockedAt int64
	for {
		v, s, ok, err := q.TryPop()
		if err != nil {
			q.clearReaderBlock(blockedAt)
			var zero T
			return zero, SigNone, err
		}
		if ok {
			q.clearReaderBlock(blockedAt)
			return v, s, nil
		}
		if blockedAt == 0 {
			blockedAt = nowNanos()
			q.readerBlockSince.Store(blockedAt)
		}
		backoff(&spins, &q.tel)
	}
}

func (q *SPSC[T]) clearReaderBlock(blockedAt int64) {
	if blockedAt != 0 {
		q.readerBlockSince.Store(0)
		q.tel.ReadBlockNs.Add(uint64(nowNanos() - blockedAt))
	}
}

// WriterBlockedFor returns how long the producer has been spinning on a
// full queue, or zero.
func (q *SPSC[T]) WriterBlockedFor() time.Duration {
	since := q.writerBlockSince.Load()
	if since == 0 {
		return 0
	}
	return time.Duration(nowNanos() - since)
}

// ReaderStarvedFor returns how long the consumer has been spinning on an
// empty queue, or zero.
func (q *SPSC[T]) ReaderStarvedFor() time.Duration {
	since := q.readerBlockSince.Load()
	if since == 0 {
		return 0
	}
	return time.Duration(nowNanos() - since)
}

// PendingDemand always returns 0: SPSC consumers cannot request windows.
func (q *SPSC[T]) PendingDemand() int { return 0 }

// Telemetry returns the queue's performance counters.
func (q *SPSC[T]) Telemetry() *Telemetry { return &q.tel }

// BackoffConfig tunes the spin-escalation policy a blocked SPSC endpoint
// follows: SpinLimit pure busy-spins, then Gosched yields until YieldLimit
// total iterations, then timed sleeps of Sleep each. The escalation
// transitions (spin→yield and yield→sleep) are counted in the queue's
// Telemetry so the contention a link suffers is directly observable.
type BackoffConfig struct {
	SpinLimit  int
	YieldLimit int
	Sleep      time.Duration
}

// DefaultBackoff is the escalation used unless SetBackoff overrides it.
var DefaultBackoff = BackoffConfig{SpinLimit: 64, YieldLimit: 256, Sleep: 10 * time.Microsecond}

// backoffCfg holds the active policy; read lock-free on the spin path.
var backoffCfg atomic.Pointer[BackoffConfig]

// SetBackoff installs a new escalation policy for every SPSC queue in the
// process (non-positive fields fall back to DefaultBackoff's values) and
// returns the previous policy. Intended for experiments and tuning, not the
// hot path.
func SetBackoff(cfg BackoffConfig) BackoffConfig {
	prev := loadBackoff()
	if cfg.SpinLimit <= 0 {
		cfg.SpinLimit = DefaultBackoff.SpinLimit
	}
	if cfg.YieldLimit <= cfg.SpinLimit {
		cfg.YieldLimit = cfg.SpinLimit + (DefaultBackoff.YieldLimit - DefaultBackoff.SpinLimit)
	}
	if cfg.Sleep <= 0 {
		cfg.Sleep = DefaultBackoff.Sleep
	}
	backoffCfg.Store(&cfg)
	return prev
}

// loadBackoff returns the active escalation policy.
func loadBackoff() BackoffConfig {
	if p := backoffCfg.Load(); p != nil {
		return *p
	}
	return DefaultBackoff
}

// backoff escalates from busy spinning to Gosched to short sleeps so a
// blocked side does not monopolize a core indefinitely, recording each tier
// transition in the queue's telemetry.
func backoff(spins *int, tel *Telemetry) {
	cfg := loadBackoff()
	*spins++
	switch {
	case *spins < cfg.SpinLimit:
		// busy spin
	case *spins < cfg.YieldLimit:
		if *spins == cfg.SpinLimit {
			tel.SpinYields.Inc()
		}
		runtime.Gosched()
	default:
		if *spins == cfg.YieldLimit {
			tel.SpinSleeps.Inc()
		}
		time.Sleep(cfg.Sleep)
	}
}

var _ Queue = (*SPSC[int])(nil)
