package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// TenantHeader names the request header carrying the tenant identity.
// Absent or empty means the "default" tenant.
const TenantHeader = "X-Raft-Tenant"

// Handler returns the gateway's HTTP API:
//
//	POST /v1/ingest/{source}        body = one payload; 202 on admit
//	POST /v1/sources/{source}/close end the source's stream (EOF)
//	GET  /v1/stats                  JSON admission counters
//	GET  /metrics                   Prometheus text format
//
// Exposed so tests drive the mux through httptest without real sockets.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest/{source}", s.handleIngest)
	mux.HandleFunc("POST /v1/sources/{source}/close", s.handleClose)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	payload, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	res := s.ingest(r.Header.Get(TenantHeader), r.PathValue("source"), payload)
	switch res.code {
	case accepted:
		writeJSON(w, http.StatusAccepted, map[string]any{"admitted": res.n})
	case shedQuota, shedModel:
		// ceil to whole seconds: a zero Retry-After reads as "retry now",
		// which defeats the point of shedding.
		secs := int64((res.retry + 999999999) / 1000000000)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":       res.msg,
			"retry_after": secs,
		})
	case notFound:
		httpError(w, http.StatusNotFound, res.msg)
	case unwired, closed:
		httpError(w, http.StatusServiceUnavailable, res.msg)
	case badPayload:
		httpError(w, http.StatusBadRequest, res.msg)
	}
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	b := s.binding(r.PathValue("source"))
	if b == nil {
		httpError(w, http.StatusNotFound, "unknown source")
		return
	}
	if b.CloseIntake == nil {
		httpError(w, http.StatusServiceUnavailable, "source does not support close")
		return
	}
	b.CloseIntake()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg})
}
