package gateway

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestBucketTake(t *testing.T) {
	var b bucket
	b.init(100, 50)
	now := time.Unix(0, 0)
	if ok, _ := b.take(50, now); !ok {
		t.Fatal("full bucket refused its burst")
	}
	ok, wait := b.take(10, now)
	if ok {
		t.Fatal("empty bucket granted tokens")
	}
	if want := 100 * time.Millisecond; wait != want {
		t.Fatalf("wait = %v, want %v", wait, want)
	}
	// 100 elem/s refills 10 tokens in 100ms.
	if ok, _ := b.take(10, now.Add(100*time.Millisecond)); !ok {
		t.Fatal("refill did not grant")
	}
}

func TestBucketOversizedRequest(t *testing.T) {
	var b bucket
	b.init(10, 5)
	ok, wait := b.take(50, time.Unix(0, 0))
	if ok {
		t.Fatal("request beyond burst granted")
	}
	// Refusal reports time-to-full, not the unreachable full deficit.
	if want := 500 * time.Millisecond; wait != want {
		t.Fatalf("wait = %v, want %v", wait, want)
	}
}

func TestBucketUnlimited(t *testing.T) {
	var b bucket
	b.init(0, 0)
	if ok, _ := b.take(1e12, time.Unix(0, 0)); !ok {
		t.Fatal("unlimited bucket refused")
	}
}

func TestBucketRefund(t *testing.T) {
	var b bucket
	b.init(100, 10)
	now := time.Unix(0, 0)
	if ok, _ := b.take(10, now); !ok {
		t.Fatal("take")
	}
	b.refund(10)
	if ok, _ := b.take(10, now); !ok {
		t.Fatal("refund did not restore tokens")
	}
}

// newTestServer builds an unstarted Server with one wired source feeding
// the returned sink slice.
func newTestServer(t *testing.T, cfg Config, w Wiring) (*Server, *[][]byte) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	var sink [][]byte
	err = srv.Register(Binding{
		Name: "words",
		Decode: func(p []byte) (any, int, error) {
			if len(p) == 0 {
				return nil, 0, fmt.Errorf("empty payload")
			}
			lines := bytes.Split(p, []byte("\n"))
			return lines, len(lines), nil
		},
		Push: func(batch any) error {
			sink = append(sink, batch.([][]byte)...)
			return nil
		},
		CloseIntake: func() {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Wire("words", w); err != nil {
		t.Fatal(err)
	}
	return srv, &sink
}

func idleWiring() Wiring {
	return Wiring{
		Queue:   func() (int, int) { return 0, 64 },
		Rates:   func() (float64, float64, float64, bool) { return 0, 0, 0, false },
		Servers: func() int { return 1 },
	}
}

func post(t *testing.T, h http.Handler, path, tenant, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	return rw
}

func TestHTTPIngestAccepted(t *testing.T) {
	srv, sink := newTestServer(t, Config{}, idleWiring())
	rw := post(t, srv.Handler(), "/v1/ingest/words", "alice", "a\nb\nc")
	if rw.Code != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", rw.Code, rw.Body)
	}
	var resp map[string]int
	json.Unmarshal(rw.Body.Bytes(), &resp)
	if resp["admitted"] != 3 {
		t.Fatalf("admitted = %d, want 3", resp["admitted"])
	}
	if len(*sink) != 3 {
		t.Fatalf("sink got %d elements, want 3", len(*sink))
	}
	st := srv.Stats()
	if len(st.Tenants) != 1 || st.Tenants[0].Name != "alice" || st.Tenants[0].AdmittedElems != 3 {
		t.Fatalf("stats = %+v", st.Tenants)
	}
}

func TestHTTPUnknownSource(t *testing.T) {
	srv, _ := newTestServer(t, Config{}, idleWiring())
	if rw := post(t, srv.Handler(), "/v1/ingest/nope", "", "x"); rw.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rw.Code)
	}
}

func TestHTTPUnwiredSource(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	srv.Register(Binding{
		Name:   "cold",
		Decode: func(p []byte) (any, int, error) { return p, 1, nil },
		Push:   func(any) error { return nil },
	})
	if rw := post(t, srv.Handler(), "/v1/ingest/cold", "", "x"); rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 before Exe wires the source", rw.Code)
	}
}

func TestHTTPBadPayload(t *testing.T) {
	srv, _ := newTestServer(t, Config{}, idleWiring())
	if rw := post(t, srv.Handler(), "/v1/ingest/words", "", ""); rw.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rw.Code)
	}
}

func TestHTTPBodyTooLarge(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxBody: 8}, idleWiring())
	rw := post(t, srv.Handler(), "/v1/ingest/words", "", strings.Repeat("x", 64))
	if rw.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d", rw.Code)
	}
}

func TestHTTPQuotaShed(t *testing.T) {
	srv, _ := newTestServer(t, Config{
		Tenants: map[string]Quota{"alice": {Rate: 10, Burst: 3}},
	}, idleWiring())
	h := srv.Handler()
	if rw := post(t, h, "/v1/ingest/words", "alice", "a\nb\nc"); rw.Code != http.StatusAccepted {
		t.Fatalf("first batch: %d", rw.Code)
	}
	rw := post(t, h, "/v1/ingest/words", "alice", "d\ne\nf")
	if rw.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rw.Code)
	}
	if ra := rw.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want positive seconds", ra)
	}
	// The unlimited co-tenant is untouched.
	if rw := post(t, h, "/v1/ingest/words", "bob", "x"); rw.Code != http.StatusAccepted {
		t.Fatalf("co-tenant: %d", rw.Code)
	}
	st := srv.Stats()
	for _, ts := range st.Tenants {
		if ts.Name == "alice" && ts.ShedQuota != 1 {
			t.Fatalf("alice ShedQuota = %d", ts.ShedQuota)
		}
	}
}

func TestHTTPModelShedOccupancy(t *testing.T) {
	w := idleWiring()
	w.Queue = func() (int, int) { return 60, 64 } // 94% full
	srv, sink := newTestServer(t, Config{}, w)
	rw := post(t, srv.Handler(), "/v1/ingest/words", "alice", "a")
	if rw.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rw.Code)
	}
	if ra := rw.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q", ra)
	}
	if len(*sink) != 0 {
		t.Fatal("shed batch reached the source")
	}
	st := srv.Stats()
	if st.Tenants[0].ShedModel != 1 {
		t.Fatalf("ShedModel = %d", st.Tenants[0].ShedModel)
	}
}

func TestHTTPModelShedUtilization(t *testing.T) {
	w := idleWiring()
	w.Rates = func() (float64, float64, float64, bool) { return 95, 100, 0.95, true }
	srv, _ := newTestServer(t, Config{}, w)
	if rw := post(t, srv.Handler(), "/v1/ingest/words", "", "a"); rw.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 at rho=0.95", rw.Code)
	}
}

func TestHTTPModelShedPredictedWait(t *testing.T) {
	w := idleWiring()
	// rho = 0.85 < RhoShed, but the predicted M/M/1 wait 0.85/(10*0.15) =
	// 567ms blows a 100ms MaxWait.
	w.Rates = func() (float64, float64, float64, bool) { return 8.5, 10, 0.85, true }
	srv, _ := newTestServer(t, Config{MaxWait: 100 * time.Millisecond}, w)
	if rw := post(t, srv.Handler(), "/v1/ingest/words", "", "a"); rw.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 on predicted wait", rw.Code)
	}
}

func TestHTTPBestEffortAdmitsUnderLoad(t *testing.T) {
	w := idleWiring()
	w.Queue = func() (int, int) { return 64, 64 } // saturated...
	w.BestEffort = true                           // ...but the ring sheds
	w.Dropped = func() uint64 { return 17 }
	srv, _ := newTestServer(t, Config{}, w)
	if rw := post(t, srv.Handler(), "/v1/ingest/words", "", "a"); rw.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202 on best-effort link", rw.Code)
	}
	st := srv.Stats()
	if st.Sources[0].Dropped != 17 {
		t.Fatalf("source Dropped = %d, want 17", st.Sources[0].Dropped)
	}
}

func TestHTTPCloseIntake(t *testing.T) {
	closedCh := false
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	srv.Register(Binding{
		Name:        "words",
		Decode:      func(p []byte) (any, int, error) { return p, 1, nil },
		Push:        func(any) error { return nil },
		CloseIntake: func() { closedCh = true },
	})
	req := httptest.NewRequest("POST", "/v1/sources/words/close", nil)
	rw := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusNoContent || !closedCh {
		t.Fatalf("close: status %d, closed %v", rw.Code, closedCh)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, Config{}, idleWiring())
	h := srv.Handler()
	post(t, h, "/v1/ingest/words", "alice", "a\nb")
	req := httptest.NewRequest("GET", "/metrics", nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	body := rw.Body.String()
	for _, want := range []string{
		`raft_gateway_admitted_elements_total{tenant="alice"} 2`,
		`raft_gateway_shed_total{tenant="alice",reason="model"} 0`,
		`raft_gateway_source_admitted_elements_total{source="words"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestModelShedRefundsQuota(t *testing.T) {
	w := idleWiring()
	full := true
	w.Queue = func() (int, int) {
		if full {
			return 64, 64
		}
		return 0, 64
	}
	srv, _ := newTestServer(t, Config{
		Tenants: map[string]Quota{"alice": {Rate: 1, Burst: 1}},
	}, w)
	h := srv.Handler()
	// Model shed must refund the token...
	if rw := post(t, h, "/v1/ingest/words", "alice", "a"); rw.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d", rw.Code)
	}
	// ...so the same batch is admitted the moment the pipeline drains.
	full = false
	if rw := post(t, h, "/v1/ingest/words", "alice", "a"); rw.Code != http.StatusAccepted {
		t.Fatalf("after drain: %d (model shed consumed the quota token)", rw.Code)
	}
}

func TestFramedRoundtrip(t *testing.T) {
	srv, err := New(Config{FramedAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	var got int
	srv.Register(Binding{
		Name: "words",
		Decode: func(p []byte) (any, int, error) {
			return p, len(bytes.Split(p, []byte("\n"))), nil
		},
		Push: func(batch any) error {
			got += len(bytes.Split(batch.([]byte), []byte("\n")))
			return nil
		},
	})
	srv.Wire("words", idleWiring())
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", srv.FramedAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	status, value, _ := framedSend(t, conn, "words", "alice", "a\nb\nc")
	if status != FrameAccepted || value != 3 {
		t.Fatalf("frame response = %d/%d, want accepted/3", status, value)
	}
	if got != 3 {
		t.Fatalf("source got %d elements", got)
	}
	// Unknown source answers FrameError.
	status, _, msg := framedSend(t, conn, "ghost", "", "x")
	if status != FrameError || !strings.Contains(msg, "ghost") {
		t.Fatalf("unknown source: status %d msg %q", status, msg)
	}
}

func TestFramedShedCarriesRetry(t *testing.T) {
	w := idleWiring()
	w.Queue = func() (int, int) { return 64, 64 }
	srv, _ := newTestServer(t, Config{FramedAddr: "127.0.0.1:0"}, w)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.FramedAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	status, retry, _ := framedSend(t, conn, "words", "alice", "a")
	if status != FrameShed || retry < 1 {
		t.Fatalf("shed frame = %d/%d, want shed with positive retry", status, retry)
	}
}

// framedSend writes one request frame and reads one response frame.
func framedSend(t *testing.T, conn net.Conn, source, tenant, payload string) (status uint8, value uint32, msg string) {
	t.Helper()
	body := make([]byte, 0, 2+len(source)+len(tenant)+len(payload))
	body = append(body, byte(len(source)))
	body = append(body, source...)
	body = append(body, byte(len(tenant)))
	body = append(body, tenant...)
	body = append(body, payload...)
	frame := make([]byte, 4, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	frame = append(frame, body...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
	if _, err := io.ReadFull(conn, resp); err != nil {
		t.Fatal(err)
	}
	return resp[0], binary.BigEndian.Uint32(resp[1:5]), string(resp[5:])
}
