package gateway

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// handleMetrics serves the gateway's own Prometheus text-format counters.
// Same hand-rolled exposition style as the engine's /metrics endpoint —
// no client library, scrape cost independent of the ingest hot path
// (counters are atomics).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := s.Stats()

	var b strings.Builder
	counter := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}

	counter("raft_gateway_admitted_batches_total", "Batches admitted per tenant.")
	for _, t := range st.Tenants {
		fmt.Fprintf(&b, "raft_gateway_admitted_batches_total{tenant=%q} %d\n", t.Name, t.AdmittedBatches)
	}
	counter("raft_gateway_admitted_elements_total", "Elements admitted per tenant.")
	for _, t := range st.Tenants {
		fmt.Fprintf(&b, "raft_gateway_admitted_elements_total{tenant=%q} %d\n", t.Name, t.AdmittedElems)
	}
	counter("raft_gateway_shed_total", "Batches shed per tenant, by admission stage.")
	for _, t := range st.Tenants {
		fmt.Fprintf(&b, "raft_gateway_shed_total{tenant=%q,reason=\"quota\"} %d\n", t.Name, t.ShedQuota)
		fmt.Fprintf(&b, "raft_gateway_shed_total{tenant=%q,reason=\"model\"} %d\n", t.Name, t.ShedModel)
	}
	counter("raft_gateway_source_admitted_elements_total", "Elements admitted per source.")
	for _, src := range st.Sources {
		fmt.Fprintf(&b, "raft_gateway_source_admitted_elements_total{source=%q} %d\n", src.Name, src.AdmittedElems)
	}
	counter("raft_gateway_source_dropped_total", "Elements dropped by best-effort source links.")
	for _, src := range st.Sources {
		fmt.Fprintf(&b, "raft_gateway_source_dropped_total{source=%q} %d\n", src.Name, src.Dropped)
	}
	counter("raft_gateway_source_copies_saved_total", "Admitted batches delivered without a per-request intermediate copy.")
	for _, src := range st.Sources {
		fmt.Fprintf(&b, "raft_gateway_source_copies_saved_total{source=%q} %d\n", src.Name, src.CopiesSaved)
	}

	_, _ = io.WriteString(w, b.String())
}
