package gateway

import (
	"sync"
	"time"
)

// bucket is a token bucket over fractional element counts. rate <= 0
// disables limiting entirely. The clock arrives as an argument so tests
// drive it deterministically.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (elements) per second; <=0 = unlimited
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
}

func (b *bucket) init(rate, burst float64) {
	if burst <= 0 {
		burst = rate
	}
	if burst < 1 {
		burst = 1
	}
	b.rate = rate
	b.burst = burst
	b.tokens = burst
}

// take withdraws n tokens if available, reporting on refusal how long
// until the deficit refills. A request larger than the whole bucket can
// never succeed; it is refused with the time to fill from empty, so the
// caller surfaces a finite Retry-After instead of blocking forever.
func (b *bucket) take(n float64, now time.Time) (ok bool, wait time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	short := n - b.tokens
	if n > b.burst {
		short = b.burst
	}
	return false, time.Duration(short / b.rate * float64(time.Second))
}

// refund returns tokens withdrawn for a batch that was not admitted
// (model shed, stream closed), so downstream rejections don't consume
// the tenant's provisioned budget.
func (b *bucket) refund(n float64) {
	if b.rate <= 0 {
		return
	}
	b.mu.Lock()
	b.tokens += n
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

func (b *bucket) refill(now time.Time) {
	if b.last.IsZero() {
		b.last = now
		return
	}
	dt := now.Sub(b.last).Seconds()
	if dt <= 0 {
		return
	}
	b.last = now
	b.tokens += dt * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}
