// Package gateway implements a multi-tenant ingestion front door for a
// running streaming graph: an HTTP (and optional length-framed TCP)
// endpoint that turns POSTed element batches into bulk pushes on a named
// source port, multiplexing many tenants onto shared pipelines.
//
// Admission is two-staged. A per-tenant token bucket enforces the
// provisioned elements/second quota. Batches within quota then pass
// model-driven admission control: the gateway consults the target link's
// live occupancy and the online λ̂/µ̂ estimates (internal/qmodel) and sheds
// load early — HTTP 429 with a Retry-After computed from the predicted
// M/M/c waiting time — instead of letting the admitted queue saturate and
// the whole shared pipeline's latency collapse. A batch that is accepted
// is in the stream's FIFO when the response is written, so admitted means
// exactly-once delivered to the graph.
//
// The package is engine-agnostic: payloads are opaque, and everything the
// admission model needs (queue depth, rates, replica width) arrives as
// closures wired by the raft layer at Exe time. Sources registered but
// not yet wired answer 503, so a gateway can be constructed, bound and
// advertised before the graph runs.
package gateway

import (
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"raftlib/internal/qmodel"
	"raftlib/internal/trace"
)

// Quota is one tenant's provisioned ingestion budget.
type Quota struct {
	// Rate is the sustained budget in elements per second (<=0: unlimited).
	Rate float64
	// Burst is the bucket depth in elements (<=0 selects max(Rate, 1)).
	Burst float64
}

// Config tunes the gateway. The zero value serves HTTP on a loopback
// ephemeral port with no quotas and the default shed thresholds.
type Config struct {
	// Addr is the HTTP listen address (default "127.0.0.1:0"). Listener,
	// when non-nil, takes precedence: the caller owns it and therefore
	// knows its address.
	Addr     string
	Listener net.Listener

	// FramedAddr / FramedListener optionally serve the length-framed TCP
	// protocol (see framed.go) alongside HTTP. Disabled when both are zero.
	FramedAddr     string
	FramedListener net.Listener

	// OccShed sheds a batch when the target queue is at or above this
	// occupancy fraction (default 0.75). The margin below full is what
	// keeps the shared pipeline's in-queue wait bounded for everyone.
	OccShed float64
	// RhoShed sheds when the link's estimated utilization ρ̂ = λ̂/µ̂ reaches
	// this level (default 0.9), catching saturation before the queue does.
	RhoShed float64
	// MaxWait sheds when the predicted M/M/c waiting time for the link
	// exceeds it (default 100ms). Unprimed estimates skip this rule rather
	// than shed on garbage.
	MaxWait time.Duration
	// RetryCeil caps the Retry-After hint, and stands in for it when the
	// predicted wait is unbounded (default 2s).
	RetryCeil time.Duration
	// MaxBody bounds one HTTP request body in bytes (default 8 MiB).
	MaxBody int64

	// DefaultQuota applies to tenants absent from Tenants (zero value:
	// unlimited).
	DefaultQuota Quota
	// Tenants maps tenant name to its provisioned quota.
	Tenants map[string]Quota
}

func (c *Config) fill() {
	if c.OccShed <= 0 {
		c.OccShed = 0.75
	}
	if c.RhoShed <= 0 {
		c.RhoShed = 0.9
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 100 * time.Millisecond
	}
	if c.RetryCeil <= 0 {
		c.RetryCeil = 2 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 8 << 20
	}
}

// Binding registers one graph source with the gateway: how to decode a
// payload into an element batch, and how to hand that batch to the source
// kernel. The raft layer registers these before Exe and completes them
// with a Wiring once the engine links exist.
type Binding struct {
	// Name is the source's kernel name — the {source} segment of the
	// ingest URL.
	Name string
	// Decode parses one payload into an engine-typed batch and reports the
	// element count the quota charges for.
	Decode func(payload []byte) (batch any, n int, err error)
	// Push delivers a decoded batch to the source port, blocking until the
	// batch is in the stream's FIFO (or the intake is closed).
	Push func(batch any) error
	// PushTenant, when set, is preferred over Push and additionally
	// receives the admitting tenant's name, so the source can attribute
	// latency provenance (sampled markers) to the tenant. Optional.
	PushTenant func(tenant string, batch any) error
	// CloseIntake ends the source's stream: buffered batches still drain,
	// then EOF propagates downstream.
	CloseIntake func()
	// Recycle, when set, takes back a decoded batch that was NOT delivered
	// (shed by quota or model, or refused by a closing source), so pooled
	// decode buffers survive shedding. Optional.
	Recycle func(batch any)
	// CopiesSaved, when set, reports how many admitted batches avoided a
	// per-request intermediate copy (pooled decode buffer committed
	// straight into ring storage). Surfaced in /v1/stats. Optional.
	CopiesSaved func() uint64
}

// Wiring is the engine-side view of a bound source, attached at Exe time.
// All fields are optional; missing ones disable the corresponding
// admission rule.
type Wiring struct {
	// Queue reports the source link's live depth and capacity.
	Queue func() (qlen, qcap int)
	// Rates reports the link's online estimates (ok=false until primed).
	Rates func() (lambda, mu, rho float64, ok bool)
	// Servers reports the active consumer replica count (the M/M/c c).
	Servers func() int
	// Dropped reports the link's cumulative best-effort drop count.
	Dropped func() uint64
	// BestEffort marks a link running the drop overflow policy: the
	// gateway admits freely (quota aside) and the ring sheds — tenants on
	// such links trade delivery for latency, so model shedding would be
	// redundant backpressure.
	BestEffort bool
}

// ErrStopped is returned by Start after Stop.
var ErrStopped = errors.New("gateway: server stopped")

// tenantState is one tenant's bucket and counters.
type tenantState struct {
	name   string
	bucket bucket

	admittedBatches atomic.Uint64
	admittedElems   atomic.Uint64
	shedQuota       atomic.Uint64
	shedModel       atomic.Uint64
}

type binding struct {
	Binding
	wiring Wiring
	wired  bool

	admittedElems atomic.Uint64
}

// recycle hands an undelivered batch back to the binding's pool hook.
func (b *binding) recycle(batch any) {
	if b.Recycle != nil {
		b.Recycle(batch)
	}
}

// Server is the ingestion gateway. Construct with New, register sources
// (directly or through raft.BindSource), and hand it to raft.WithGateway;
// Exe wires, starts and stops it around the run.
type Server struct {
	cfg      Config
	httpLn   net.Listener
	framedLn net.Listener
	httpSrv  *http.Server

	mu       sync.Mutex
	bindings map[string]*binding
	tenants  map[string]*tenantState
	started  bool
	stopped  bool

	rec        *trace.Recorder
	traceActor int32
	// resolver, when set, gets one shot at materializing a binding for an
	// unknown or unwired source before ingest answers 404/503 — the hook
	// behind per-tenant subgraph templates. It returns the name of the
	// binding (possibly per-tenant, e.g. "name@tenant") that now serves the
	// source, or ok=false to decline.
	resolver func(source, tenant string) (actual string, ok bool)
	// latency, when set, reports a tenant's observed end-to-end p99
	// latency from retired provenance markers (wired by the raft layer).
	latency func(tenant string) (time.Duration, bool)

	wg sync.WaitGroup
}

// New builds a Server and binds its listeners eagerly, so Addr is valid
// (and can be advertised) before the graph runs.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	s := &Server{
		cfg:        cfg,
		bindings:   map[string]*binding{},
		tenants:    map[string]*tenantState{},
		traceActor: -1,
	}
	s.httpLn = cfg.Listener
	if s.httpLn == nil {
		addr := cfg.Addr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("gateway: listen %s: %w", addr, err)
		}
		s.httpLn = ln
	}
	s.framedLn = cfg.FramedListener
	if s.framedLn == nil && cfg.FramedAddr != "" {
		ln, err := net.Listen("tcp", cfg.FramedAddr)
		if err != nil {
			s.httpLn.Close()
			return nil, fmt.Errorf("gateway: listen framed %s: %w", cfg.FramedAddr, err)
		}
		s.framedLn = ln
	}
	return s, nil
}

// Addr returns the HTTP listen address.
func (s *Server) Addr() string { return s.httpLn.Addr().String() }

// FramedAddr returns the framed-protocol listen address, or "" when the
// framed listener is disabled.
func (s *Server) FramedAddr() string {
	if s.framedLn == nil {
		return ""
	}
	return s.framedLn.Addr().String()
}

// Register adds a source binding. Duplicate names are an error.
func (s *Server) Register(b Binding) error {
	if b.Name == "" || b.Decode == nil || b.Push == nil {
		return errors.New("gateway: binding needs Name, Decode and Push")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.bindings[b.Name]; dup {
		return fmt.Errorf("gateway: source %q already registered", b.Name)
	}
	s.bindings[b.Name] = &binding{Binding: b}
	return nil
}

// Sources returns the registered source names (sorted).
func (s *Server) Sources() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.bindings))
	for n := range s.bindings {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Wire attaches the engine-side closures to a registered source. Called
// by raft at Exe time; tests wire fakes directly.
func (s *Server) Wire(name string, w Wiring) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bindings[name]
	if !ok {
		return fmt.Errorf("gateway: wiring unknown source %q", name)
	}
	b.wiring = w
	b.wired = true
	return nil
}

// SetResolver installs the unknown-source hook: ingest consults it before
// answering 404 (unknown source) or 503 (registered but unwired), giving
// the runtime a chance to instantiate a subgraph template and register a
// (possibly per-tenant) binding. The resolver returns the binding name
// that now serves the request; lookup is retried against it.
func (s *Server) SetResolver(f func(source, tenant string) (string, bool)) {
	s.mu.Lock()
	s.resolver = f
	s.mu.Unlock()
}

// Unregister removes a source binding (scale-to-zero reaping of template
// instances). Unknown names are a no-op.
func (s *Server) Unregister(name string) {
	s.mu.Lock()
	delete(s.bindings, name)
	s.mu.Unlock()
}

// SetLatency installs the per-tenant end-to-end latency hook surfaced in
// /v1/stats (p99 over the tenant's flows, from retired latency markers).
func (s *Server) SetLatency(f func(tenant string) (time.Duration, bool)) {
	s.mu.Lock()
	s.latency = f
	s.mu.Unlock()
}

// SetTrace routes admit/shed decisions onto the run's telemetry bus.
func (s *Server) SetTrace(rec *trace.Recorder, actor int32) {
	s.mu.Lock()
	s.rec = rec
	s.traceActor = actor
	s.mu.Unlock()
}

// Start serves HTTP (and the framed protocol, when configured) on the
// listeners bound at New.
func (s *Server) Start() error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return ErrStopped
	}
	if s.started {
		s.mu.Unlock()
		return nil
	}
	s.started = true
	s.mu.Unlock()

	s.httpSrv = &http.Server{Handler: s.Handler()}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.httpSrv.Serve(s.httpLn)
	}()
	if s.framedLn != nil {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveFramed(s.framedLn)
		}()
	}
	return nil
}

// Stop closes the listeners and in-flight connections and waits for the
// serving goroutines. Idempotent.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	started := s.started
	s.mu.Unlock()

	if s.httpSrv != nil {
		s.httpSrv.Close()
	} else {
		s.httpLn.Close()
	}
	if s.framedLn != nil {
		s.framedLn.Close()
	}
	if started {
		s.wg.Wait()
	} else {
		s.httpLn.Close()
	}
}

// tenant returns (creating on first sight) the named tenant's state.
func (s *Server) tenant(name string) *tenantState {
	if name == "" {
		name = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		q, provisioned := s.cfg.Tenants[name]
		if !provisioned {
			q = s.cfg.DefaultQuota
		}
		t = &tenantState{name: name}
		t.bucket.init(q.Rate, q.Burst)
		s.tenants[name] = t
	}
	return t
}

func (s *Server) binding(name string) *binding {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bindings[name]
}

// code classifies one ingest outcome, shared by the HTTP and framed
// front ends.
type code uint8

const (
	accepted code = iota
	shedModel
	shedQuota
	notFound
	unwired
	badPayload
	closed
)

type ingestResult struct {
	code  code
	n     int // elements admitted (accepted) or requested (shed)
	retry time.Duration
	msg   string
}

// ingest runs the full admission pipeline for one payload: decode, quota,
// model check, push. On accepted the batch is in the source's FIFO.
func (s *Server) ingest(tenantName, sourceName string, payload []byte) ingestResult {
	b := s.binding(sourceName)
	if b == nil || !b.wired {
		// Template hook: let the runtime materialize an instance (and its
		// binding) for this source/tenant before giving up.
		s.mu.Lock()
		resolve := s.resolver
		s.mu.Unlock()
		if resolve != nil {
			if actual, ok := resolve(sourceName, tenantName); ok {
				if nb := s.binding(actual); nb != nil {
					b = nb
				}
			}
		}
	}
	if b == nil {
		return ingestResult{code: notFound, msg: fmt.Sprintf("unknown source %q", sourceName)}
	}
	if !b.wired {
		return ingestResult{code: unwired, msg: "source not running"}
	}
	batch, n, err := b.Decode(payload)
	if err != nil {
		return ingestResult{code: badPayload, msg: err.Error()}
	}
	t := s.tenant(tenantName)
	if ok, wait := t.bucket.take(float64(n), time.Now()); !ok {
		t.shedQuota.Add(1)
		b.recycle(batch)
		retry := s.clampRetry(wait)
		s.emitShed(t.name, sourceName, retry)
		return ingestResult{code: shedQuota, n: n, retry: retry, msg: "tenant quota exceeded"}
	}
	if shed, wait, why := s.modelShed(b); shed {
		// The tokens were provisioned capacity the tenant did not get to
		// use; give them back so a model shed never double-charges.
		t.bucket.refund(float64(n))
		t.shedModel.Add(1)
		b.recycle(batch)
		retry := s.clampRetry(wait)
		s.emitShed(t.name, sourceName, retry)
		return ingestResult{code: shedModel, n: n, retry: retry, msg: "pipeline saturated: " + why}
	}
	push := b.Push
	if b.PushTenant != nil {
		tn := t.name
		push = func(batch any) error { return b.PushTenant(tn, batch) }
	}
	if err := push(batch); err != nil {
		t.bucket.refund(float64(n))
		b.recycle(batch)
		return ingestResult{code: closed, msg: err.Error()}
	}
	t.admittedBatches.Add(1)
	t.admittedElems.Add(uint64(n))
	b.admittedElems.Add(uint64(n))
	s.emitAdmit(t.name, sourceName, n)
	return ingestResult{code: accepted, n: n}
}

// modelShed applies the model-driven admission rules to a wired binding:
// shed on near-full occupancy, on estimated utilization at or beyond
// RhoShed, or on a predicted M/M/c wait beyond MaxWait. The returned wait
// is the model's drain/wait estimate feeding Retry-After.
func (s *Server) modelShed(b *binding) (shed bool, wait time.Duration, why string) {
	w := b.wiring
	if w.BestEffort {
		// The ring sheds for us (counted in Dropped); gateway-side
		// backpressure would just reintroduce the latency the link opted
		// out of.
		return false, 0, ""
	}
	var lambda, mu, rho float64
	var primed bool
	if w.Rates != nil {
		lambda, mu, rho, primed = w.Rates()
	}
	if w.Queue != nil {
		qlen, qcap := w.Queue()
		if qcap > 0 && float64(qlen) >= s.cfg.OccShed*float64(qcap) {
			// Retry once the backlog above the shed line has drained.
			drain := s.cfg.RetryCeil
			if primed && mu > 0 {
				drain = time.Duration(float64(qlen) / mu * float64(time.Second))
			}
			return true, drain, fmt.Sprintf("queue %d/%d past occupancy threshold", qlen, qcap)
		}
	}
	if primed {
		c := 1
		if w.Servers != nil {
			if n := w.Servers(); n > 0 {
				c = n
			}
		}
		// The link's µ̂ is the aggregate drain rate across the c active
		// consumers; PredictWait wants the per-server rate.
		pw := qmodel.PredictWait(lambda, mu/float64(c), c)
		if rho >= s.cfg.RhoShed {
			return true, waitDuration(pw), fmt.Sprintf("utilization %.2f past threshold", rho)
		}
		if pw > s.cfg.MaxWait.Seconds() {
			return true, waitDuration(pw), fmt.Sprintf("predicted wait %.0fms past limit", pw*1e3)
		}
	}
	return false, 0, ""
}

// waitDuration converts a qmodel wait (seconds, possibly +Inf) to a
// Duration, saturating instead of overflowing.
func waitDuration(sec float64) time.Duration {
	if math.IsInf(sec, 1) || sec > 1e6 {
		return time.Duration(math.MaxInt64)
	}
	if sec < 0 {
		return 0
	}
	return time.Duration(sec * float64(time.Second))
}

// clampRetry bounds a model wait into a useful Retry-After hint:
// at least one second (the header's resolution), at most RetryCeil.
func (s *Server) clampRetry(wait time.Duration) time.Duration {
	if wait > s.cfg.RetryCeil || wait < 0 {
		wait = s.cfg.RetryCeil
	}
	if wait < time.Second {
		wait = time.Second
	}
	return wait
}

func (s *Server) emitAdmit(tenant, source string, n int) {
	s.emit(trace.Admit, tenant, source, int64(n))
}

func (s *Server) emitShed(tenant, source string, retry time.Duration) {
	s.emit(trace.Shed, tenant, source, retry.Milliseconds())
}

func (s *Server) emit(kind trace.Kind, tenant, source string, arg int64) {
	s.mu.Lock()
	rec, actor := s.rec, s.traceActor
	s.mu.Unlock()
	if rec == nil {
		return
	}
	rec.Emit(trace.Event{
		Actor: actor, Kind: kind, At: time.Now().UnixNano(),
		Arg: arg, Label: tenant + "/" + source,
	})
}

// TenantStats is one tenant's admission counters.
type TenantStats struct {
	Name            string
	AdmittedBatches uint64
	AdmittedElems   uint64
	ShedQuota       uint64
	ShedModel       uint64
	// E2EP99Ns is the tenant's observed end-to-end p99 latency in
	// nanoseconds, from retired provenance markers (0 until the first
	// marker of the tenant retires, or when markers are disabled).
	E2EP99Ns int64
}

// SourceStats is one source's ingestion counters.
type SourceStats struct {
	Name          string
	AdmittedElems uint64
	// Dropped is the source link's cumulative best-effort drop count (zero
	// on backpressure links).
	Dropped uint64
	// CopiesSaved counts admitted batches that avoided a per-request
	// intermediate copy (pooled decode buffer committed straight into ring
	// storage through a write view).
	CopiesSaved uint64
}

// Stats is a point-in-time snapshot of the gateway's counters.
type Stats struct {
	Tenants []TenantStats
	Sources []SourceStats
}

// Stats snapshots per-tenant and per-source counters (sorted by name).
func (s *Server) Stats() Stats {
	s.mu.Lock()
	tenants := make([]*tenantState, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	bindings := make([]*binding, 0, len(s.bindings))
	for _, b := range s.bindings {
		bindings = append(bindings, b)
	}
	latency := s.latency
	s.mu.Unlock()

	var out Stats
	for _, t := range tenants {
		ts := TenantStats{
			Name:            t.name,
			AdmittedBatches: t.admittedBatches.Load(),
			AdmittedElems:   t.admittedElems.Load(),
			ShedQuota:       t.shedQuota.Load(),
			ShedModel:       t.shedModel.Load(),
		}
		if latency != nil {
			if p99, ok := latency(t.name); ok {
				ts.E2EP99Ns = int64(p99)
			}
		}
		out.Tenants = append(out.Tenants, ts)
	}
	for _, b := range bindings {
		ss := SourceStats{Name: b.Name, AdmittedElems: b.admittedElems.Load()}
		if b.wired && b.wiring.Dropped != nil {
			ss.Dropped = b.wiring.Dropped()
		}
		if b.CopiesSaved != nil {
			ss.CopiesSaved = b.CopiesSaved()
		}
		out.Sources = append(out.Sources, ss)
	}
	sort.Slice(out.Tenants, func(i, j int) bool { return out.Tenants[i].Name < out.Tenants[j].Name })
	sort.Slice(out.Sources, func(i, j int) bool { return out.Sources[i].Name < out.Sources[j].Name })
	return out
}
