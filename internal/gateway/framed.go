package gateway

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// The framed protocol is the gRPC-style binary alternative to the HTTP
// API for high-rate producers: one TCP connection, length-prefixed
// request/response frames, no per-batch header parsing.
//
// Request frame:
//
//	uint32 BE  frame length (bytes after this field)
//	uint8      source name length, then the source name
//	uint8      tenant name length, then the tenant name ("" = default)
//	...        payload (frame remainder), passed to the source's Decode
//
// Response frame:
//
//	uint32 BE  frame length (bytes after this field)
//	uint8      status (FrameAccepted..FrameError)
//	uint32 BE  value: admitted element count, or retry-after seconds
//	...        message (frame remainder, human-readable; empty on accept)
//
// Responses are written in request order (one in flight per connection is
// the simple client; pipelining works because the gateway answers in
// order). A malformed frame closes the connection — framing is broken,
// so nothing later on the stream can be trusted.

// Framed response status codes.
const (
	FrameAccepted = 0 // batch admitted; value = element count
	FrameShed     = 1 // admission control shed; value = retry-after seconds
	FrameQuota    = 2 // tenant quota exceeded; value = retry-after seconds
	FrameError    = 3 // bad frame, unknown source, or stream closed
)

// maxFrame bounds one framed request, mirroring MaxBody for HTTP.
func (s *Server) maxFrame() uint32 { return uint32(s.cfg.MaxBody) }

func (s *Server) serveFramed(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Stop
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveFramedConn(conn)
		}()
	}
}

func (s *Server) serveFramedConn(conn net.Conn) {
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		frameLen := binary.BigEndian.Uint32(lenBuf[:])
		if frameLen < 2 || frameLen > s.maxFrame() {
			writeFrame(conn, FrameError, 0, fmt.Sprintf("frame length %d out of range", frameLen))
			return
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		source, tenant, payload, err := splitFrame(frame)
		if err != nil {
			writeFrame(conn, FrameError, 0, err.Error())
			return
		}
		res := s.ingest(tenant, source, payload)
		var werr error
		switch res.code {
		case accepted:
			werr = writeFrame(conn, FrameAccepted, uint32(res.n), "")
		case shedModel:
			werr = writeFrame(conn, FrameShed, retrySecs(res), res.msg)
		case shedQuota:
			werr = writeFrame(conn, FrameQuota, retrySecs(res), res.msg)
		default:
			werr = writeFrame(conn, FrameError, 0, res.msg)
		}
		if werr != nil {
			return
		}
	}
}

func splitFrame(frame []byte) (source, tenant string, payload []byte, err error) {
	sl := int(frame[0])
	if 1+sl+1 > len(frame) {
		return "", "", nil, errors.New("source name exceeds frame")
	}
	source = string(frame[1 : 1+sl])
	rest := frame[1+sl:]
	tl := int(rest[0])
	if 1+tl > len(rest) {
		return "", "", nil, errors.New("tenant name exceeds frame")
	}
	tenant = string(rest[1 : 1+tl])
	return source, tenant, rest[1+tl:], nil
}

func retrySecs(res ingestResult) uint32 {
	secs := int64((res.retry + 999999999) / 1000000000)
	if secs < 1 {
		secs = 1
	}
	return uint32(secs)
}

func writeFrame(conn net.Conn, status uint8, value uint32, msg string) error {
	out := make([]byte, 4+1+4+len(msg))
	binary.BigEndian.PutUint32(out, uint32(1+4+len(msg)))
	out[4] = status
	binary.BigEndian.PutUint32(out[5:], value)
	copy(out[9:], msg)
	_, err := conn.Write(out)
	return err
}
