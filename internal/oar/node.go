// Package oar implements RaftLib's distributed runtime substrate, the
// system the paper calls "oar" (§4.1): "a mesh of network clients that
// continually feed system information to each other. This information is
// provided to RaftLib in order to continuously optimize and monitor Raft
// kernels executing on multiple systems. The 'oar' system also provides a
// means to remotely compile and execute kernels."
//
// Three capabilities are provided over real TCP sockets:
//
//   - a gossip mesh: nodes join each other, periodically exchange NodeInfo
//     (core counts, load, queue stats) and expose the merged view;
//   - stream bridges: a sender/receiver kernel pair that tunnels a raft
//     stream over a TCP connection with gob framing, so a topology can be
//     split across processes without changing any kernel code;
//   - remote execution: nodes register named services (kernel pipelines)
//     that peers invoke with a request/response exchange — the stand-in
//     for the paper's remote compile-and-execute (shipping Go source and
//     compiling remotely is out of scope; see DESIGN.md substitutions).
//
// Benchmarks and examples run nodes on loopback addresses: identical code
// paths (dial, accept, frame, serialize), one machine.
package oar

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"
)

// NodeInfo is the gossiped description of one mesh node.
type NodeInfo struct {
	ID    string
	Addr  string
	Cores int
	// Load is a 0..1 utilization estimate the node publishes about itself.
	Load float64
	// Stamp is the publisher's wall-clock at publication; newer wins.
	Stamp time.Time
}

// connection header kinds (first line of every inbound connection).
const (
	hdrGossip  = "gossip"
	hdrStream  = "stream"
	hdrService = "service"
)

// Node is one member of the oar mesh.
type Node struct {
	id string
	ln net.Listener

	mu       sync.Mutex
	peers    map[string]NodeInfo
	self     NodeInfo
	streams  map[string]chan net.Conn
	services map[string]ServiceFunc
	stages   map[string]func(net.Conn, *bufio.Reader)
	closed   bool

	wg       sync.WaitGroup
	stopOnce sync.Once
	stopCh   chan struct{}
}

// ServiceFunc handles one remote invocation: it receives the request
// payload and returns the response payload (both arbitrary gob-encodable
// maps keep the wire format simple).
type ServiceFunc func(req map[string]string) (map[string]string, error)

// NewNode starts a node listening on addr ("127.0.0.1:0" picks a free
// port).
func NewNode(id, addr string) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("oar: listen: %w", err)
	}
	n := &Node{
		id:       id,
		ln:       ln,
		peers:    map[string]NodeInfo{},
		streams:  map[string]chan net.Conn{},
		services: map[string]ServiceFunc{},
		stages:   map[string]func(net.Conn, *bufio.Reader){},
		stopCh:   make(chan struct{}),
	}
	n.self = NodeInfo{ID: id, Addr: ln.Addr().String(), Cores: runtime.GOMAXPROCS(0), Stamp: time.Now()}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// ID returns the node's identifier.
func (n *Node) ID() string { return n.id }

// Addr returns the listening address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Self returns the node's own published info.
func (n *Node) Self() NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.self
}

// SetLoad updates the self-reported utilization published on the next
// gossip exchange.
func (n *Node) SetLoad(load float64) {
	n.mu.Lock()
	n.self.Load = load
	n.self.Stamp = time.Now()
	n.mu.Unlock()
}

// Peers returns the current merged view of the mesh (excluding self).
func (n *Node) Peers() []NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeInfo, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, p)
	}
	return out
}

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() {
	n.stopOnce.Do(func() {
		close(n.stopCh)
		n.mu.Lock()
		n.closed = true
		n.mu.Unlock()
		n.ln.Close()
	})
	n.wg.Wait()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handle(conn)
		}()
	}
}

// handle demultiplexes one inbound connection by its header line.
func (n *Node) handle(conn net.Conn) {
	br := bufio.NewReader(conn)
	header, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return
	}
	var kind, arg string
	fmt.Sscanf(header, "%s %s", &kind, &arg)
	switch kind {
	case hdrGossip:
		n.serveGossip(conn, br)
	case hdrStream:
		n.serveStream(conn, br, arg)
	case hdrService:
		n.serveService(conn, br, arg)
	case stageHdr:
		n.mu.Lock()
		serve, ok := n.stages[arg]
		n.mu.Unlock()
		if !ok {
			conn.Close()
			return
		}
		serve(conn, br)
	default:
		conn.Close()
	}
}

// --- gossip ---

// gossipMsg is one direction of a gossip exchange.
type gossipMsg struct {
	From  NodeInfo
	Known []NodeInfo
}

// serveGossip answers one gossip exchange: read the peer's view, merge,
// send back ours.
func (n *Node) serveGossip(conn net.Conn, br *bufio.Reader) {
	defer conn.Close()
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)
	var in gossipMsg
	if err := dec.Decode(&in); err != nil {
		return
	}
	n.merge(in.From)
	for _, p := range in.Known {
		n.merge(p)
	}
	n.mu.Lock()
	out := gossipMsg{From: n.self, Known: make([]NodeInfo, 0, len(n.peers))}
	for _, p := range n.peers {
		out.Known = append(out.Known, p)
	}
	n.mu.Unlock()
	_ = enc.Encode(out)
}

// merge folds a peer record into the view, newest stamp winning.
func (n *Node) merge(p NodeInfo) {
	if p.ID == "" || p.ID == n.id {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	cur, ok := n.peers[p.ID]
	if !ok || p.Stamp.After(cur.Stamp) {
		n.peers[p.ID] = p
	}
}

// Join performs one gossip exchange with the peer at addr, merging its
// view into ours (and ours into its).
func (n *Node) Join(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("oar: join %s: %w", addr, err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "%s -\n", hdrGossip); err != nil {
		return err
	}
	n.mu.Lock()
	n.self.Stamp = time.Now()
	msg := gossipMsg{From: n.self, Known: make([]NodeInfo, 0, len(n.peers))}
	for _, p := range n.peers {
		msg.Known = append(msg.Known, p)
	}
	n.mu.Unlock()
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(msg); err != nil {
		return err
	}
	var reply gossipMsg
	if err := gob.NewDecoder(conn).Decode(&reply); err != nil {
		return err
	}
	n.merge(reply.From)
	for _, p := range reply.Known {
		n.merge(p)
	}
	return nil
}

// StartGossip launches a background loop that re-gossips with every known
// peer each interval, keeping the mesh's system information fresh.
func (n *Node) StartGossip(interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-n.stopCh:
				return
			case <-t.C:
				for _, p := range n.Peers() {
					_ = n.Join(p.Addr) // best effort; dead peers age out of use
				}
			}
		}
	}()
}

// --- services (remote execution) ---

// RegisterService exposes a named handler peers can invoke remotely.
func (n *Node) RegisterService(name string, fn ServiceFunc) {
	n.mu.Lock()
	n.services[name] = fn
	n.mu.Unlock()
}

type serviceReply struct {
	OK   bool
	Err  string
	Resp map[string]string
}

func (n *Node) serveService(conn net.Conn, br *bufio.Reader, name string) {
	defer conn.Close()
	n.mu.Lock()
	fn, ok := n.services[name]
	n.mu.Unlock()
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)
	var req map[string]string
	if err := dec.Decode(&req); err != nil {
		return
	}
	if !ok {
		_ = enc.Encode(serviceReply{Err: fmt.Sprintf("oar: no service %q", name)})
		return
	}
	resp, err := fn(req)
	if err != nil {
		_ = enc.Encode(serviceReply{Err: err.Error()})
		return
	}
	_ = enc.Encode(serviceReply{OK: true, Resp: resp})
}

// Call invokes a named service on the peer at addr and returns its
// response — the paper's "compile and forget" remote-execution experience,
// minus the remote compiler (see package comment).
func Call(addr, service string, req map[string]string) (map[string]string, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("oar: call %s: %w", addr, err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "%s %s\n", hdrService, service); err != nil {
		return nil, err
	}
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return nil, err
	}
	var reply serviceReply
	if err := gob.NewDecoder(conn).Decode(&reply); err != nil {
		return nil, err
	}
	if !reply.OK {
		return nil, errors.New(reply.Err)
	}
	return reply.Resp, nil
}

// --- stream registration (used by bridge.go) ---

// registerStream announces a named inbound stream endpoint and returns the
// channel on which its connection will be delivered.
func (n *Node) registerStream(name string) (<-chan net.Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("oar: node closed")
	}
	if _, dup := n.streams[name]; dup {
		return nil, fmt.Errorf("oar: stream %q already registered", name)
	}
	ch := make(chan net.Conn, 1)
	n.streams[name] = ch
	return ch, nil
}

func (n *Node) serveStream(conn net.Conn, br *bufio.Reader, name string) {
	n.mu.Lock()
	ch, ok := n.streams[name]
	n.mu.Unlock()
	if !ok {
		conn.Close()
		return
	}
	select {
	case ch <- &bufferedConn{Conn: conn, r: br}:
	default:
		// Newest wins: a second connection to the same stream is a sender
		// reconnecting after a failure the receiver has not noticed yet.
		// Drop the stale undelivered connection and hand over the new one.
		select {
		case old := <-ch:
			old.Close()
		default:
		}
		select {
		case ch <- &bufferedConn{Conn: conn, r: br}:
		default:
			conn.Close()
		}
	}
}

// bufferedConn keeps bytes already buffered by the header reader readable.
type bufferedConn struct {
	net.Conn
	r *bufio.Reader
}

func (b *bufferedConn) Read(p []byte) (int, error) { return b.r.Read(p) }
