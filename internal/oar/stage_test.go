package oar

import (
	"fmt"
	"strconv"
	"testing"

	"raftlib/kernels"
	"raftlib/raft"
)

// TestRemoteStageEndToEnd splices a multiply-by-k kernel running "on" a
// worker node into a local pipeline.
func TestRemoteStageEndToEnd(t *testing.T) {
	worker := newTestNode(t, "worker")
	RegisterStage[int64, int64](worker, "scale", func(args map[string]string) (raft.Kernel, error) {
		k, err := strconv.ParseInt(args["factor"], 10, 64)
		if err != nil {
			return nil, err
		}
		return raft.NewLambdaIO[int64, int64](1, 1, func(lk *raft.LambdaKernel) raft.Status {
			v, err := raft.Pop[int64](lk.In("0"))
			if err != nil {
				return raft.Stop
			}
			if err := raft.Push(lk.Out("0"), k*v); err != nil {
				return raft.Stop
			}
			return raft.Proceed
		}), nil
	})

	send, recv, err := RemoteStage[int64, int64](worker.Addr(), "scale", map[string]string{"factor": "3"})
	if err != nil {
		t.Fatal(err)
	}

	const n = 5000
	m := raft.NewMap()
	var got []int64
	m.MustLink(kernels.NewGenerate(n, func(i int64) int64 { return i }), send)
	m.MustLink(recv, kernels.NewWriteEach(&got))
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("received %d results, want %d", len(got), n)
	}
	for i, v := range got {
		if v != int64(3*i) {
			t.Fatalf("got[%d] = %d, want %d", i, v, 3*i)
		}
	}
}

// TestRemoteStageTypeChange runs a stage whose output type differs from
// its input type (int64 -> float64).
func TestRemoteStageTypeChange(t *testing.T) {
	worker := newTestNode(t, "worker")
	RegisterStage[int64, float64](worker, "halve", func(args map[string]string) (raft.Kernel, error) {
		return raft.NewLambdaIO[int64, float64](1, 1, func(lk *raft.LambdaKernel) raft.Status {
			v, err := raft.Pop[int64](lk.In("0"))
			if err != nil {
				return raft.Stop
			}
			if err := raft.Push(lk.Out("0"), float64(v)/2); err != nil {
				return raft.Stop
			}
			return raft.Proceed
		}), nil
	})
	send, recv, err := RemoteStage[int64, float64](worker.Addr(), "halve", nil)
	if err != nil {
		t.Fatal(err)
	}
	m := raft.NewMap()
	var got []float64
	m.MustLink(kernels.NewGenerate(10, func(i int64) int64 { return i }), send)
	m.MustLink(recv, kernels.NewWriteEach(&got))
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[9] != 4.5 {
		t.Fatalf("got %v", got)
	}
}

func TestRemoteStageUnregistered(t *testing.T) {
	worker := newTestNode(t, "worker")
	if _, _, err := RemoteStage[int64, int64](worker.Addr(), "nope", nil); err == nil {
		t.Fatal("unregistered stage must error")
	}
}

func TestRemoteStageFactoryError(t *testing.T) {
	worker := newTestNode(t, "worker")
	RegisterStage[int64, int64](worker, "bad", func(args map[string]string) (raft.Kernel, error) {
		return nil, fmt.Errorf("cannot build")
	})
	if _, _, err := RemoteStage[int64, int64](worker.Addr(), "bad", nil); err == nil {
		t.Fatal("factory error must propagate as spawn failure")
	}
}

func TestRemoteStageUnreachableNode(t *testing.T) {
	if _, _, err := RemoteStage[int64, int64]("127.0.0.1:1", "x", nil); err == nil {
		t.Fatal("dial failure must error")
	}
}

// TestRemoteStageConcurrentInstances runs two independent instances of the
// same registered stage at once.
func TestRemoteStageConcurrentInstances(t *testing.T) {
	worker := newTestNode(t, "worker")
	RegisterStage[int64, int64](worker, "inc", func(args map[string]string) (raft.Kernel, error) {
		return raft.NewLambdaIO[int64, int64](1, 1, func(lk *raft.LambdaKernel) raft.Status {
			v, err := raft.Pop[int64](lk.In("0"))
			if err != nil {
				return raft.Stop
			}
			if err := raft.Push(lk.Out("0"), v+1); err != nil {
				return raft.Stop
			}
			return raft.Proceed
		}), nil
	})

	results := make(chan int, 2)
	for inst := 0; inst < 2; inst++ {
		go func() {
			send, recv, err := RemoteStage[int64, int64](worker.Addr(), "inc", nil)
			if err != nil {
				results <- -1
				return
			}
			m := raft.NewMap()
			var got []int64
			m.MustLink(kernels.NewGenerate(1000, func(i int64) int64 { return i }), send)
			m.MustLink(recv, kernels.NewWriteEach(&got))
			if _, err := m.Exe(); err != nil {
				results <- -1
				return
			}
			results <- len(got)
		}()
	}
	for i := 0; i < 2; i++ {
		if n := <-results; n != 1000 {
			t.Fatalf("instance returned %d results", n)
		}
	}
}

// TestBridgeCompressedRoundTrip tunnels highly compressible text through a
// deflate-compressed bridge and verifies exact delivery.
func TestBridgeCompressedRoundTrip(t *testing.T) {
	node := newTestNode2(t, "zworker")
	send, recv, err := BridgeCompressed[string](node, "ztext")
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	producer := raft.NewMap()
	producer.MustLink(kernels.NewGenerate(n, func(i int64) string {
		return fmt.Sprintf("the same compressible line of text, sequence %d", i)
	}), send)
	var got []string
	consumer := raft.NewMap()
	consumer.MustLink(recv, kernels.NewWriteEach(&got))

	done := make(chan error, 2)
	go func() { _, err := producer.Exe(); done <- err }()
	go func() { _, err := consumer.Exe(); done <- err }()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != n {
		t.Fatalf("received %d, want %d", len(got), n)
	}
	for i, s := range got {
		if s != fmt.Sprintf("the same compressible line of text, sequence %d", i) {
			t.Fatalf("got[%d] = %q", i, s)
		}
	}
}

// newTestNode2 mirrors newTestNode for files appended later.
func newTestNode2(t *testing.T, id string) *Node {
	t.Helper()
	n, err := NewNode(id, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}
