package oar

import (
	"fmt"
	"sort"
	"time"
)

// Placement helpers: the consumers of the gossip data. The mesh exists so
// the runtime can "continuously optimize and monitor Raft kernels
// executing on multiple systems" (§4.1) — concretely, to decide which node
// should receive the next remote kernel based on freshness, capacity and
// load.

// FreshPeers returns the peers whose gossip record is younger than maxAge,
// sorted by ID. Stale records (crashed or partitioned nodes) are excluded
// but not deleted — a node that resumes gossiping becomes fresh again.
func (n *Node) FreshPeers(maxAge time.Duration) []NodeInfo {
	if maxAge <= 0 {
		maxAge = 5 * time.Second
	}
	cutoff := time.Now().Add(-maxAge)
	var out []NodeInfo
	for _, p := range n.Peers() {
		if p.Stamp.After(cutoff) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ForgetStale removes peers whose records are older than maxAge from the
// view entirely and returns how many were dropped.
func (n *Node) ForgetStale(maxAge time.Duration) int {
	if maxAge <= 0 {
		maxAge = time.Minute
	}
	cutoff := time.Now().Add(-maxAge)
	n.mu.Lock()
	defer n.mu.Unlock()
	dropped := 0
	for id, p := range n.peers {
		if !p.Stamp.After(cutoff) {
			delete(n.peers, id)
			dropped++
		}
	}
	return dropped
}

// PickLeastLoaded returns the fresh peer with the most headroom, defined
// as cores × (1 - load): the target the runtime should hand the next
// remote kernel to. It returns an error when no fresh peer exists.
func (n *Node) PickLeastLoaded(maxAge time.Duration) (NodeInfo, error) {
	peers := n.FreshPeers(maxAge)
	if len(peers) == 0 {
		return NodeInfo{}, fmt.Errorf("oar: node %s has no fresh peers", n.id)
	}
	best := peers[0]
	bestHeadroom := headroom(best)
	for _, p := range peers[1:] {
		if h := headroom(p); h > bestHeadroom {
			best, bestHeadroom = p, h
		}
	}
	return best, nil
}

func headroom(p NodeInfo) float64 {
	cores := p.Cores
	if cores < 1 {
		cores = 1
	}
	load := p.Load
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	return float64(cores) * (1 - load)
}
