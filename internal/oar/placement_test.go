package oar

import (
	"testing"
	"time"
)

// seedPeer injects a peer record directly (placement logic is pure view
// manipulation; no sockets needed).
func seedPeer(n *Node, id string, cores int, load float64, age time.Duration) {
	n.merge(NodeInfo{
		ID:    id,
		Addr:  "127.0.0.1:0",
		Cores: cores,
		Load:  load,
		Stamp: time.Now().Add(-age),
	})
}

func TestFreshPeersFiltersByAge(t *testing.T) {
	n := newTestNode(t, "self")
	seedPeer(n, "young", 4, 0.1, 10*time.Millisecond)
	seedPeer(n, "old", 8, 0.1, 10*time.Second)
	fresh := n.FreshPeers(time.Second)
	if len(fresh) != 1 || fresh[0].ID != "young" {
		t.Fatalf("fresh = %+v", fresh)
	}
	// Default maxAge keeps the young one too.
	if got := n.FreshPeers(0); len(got) != 1 {
		t.Fatalf("default-age fresh = %+v", got)
	}
}

func TestForgetStale(t *testing.T) {
	n := newTestNode(t, "self")
	seedPeer(n, "young", 4, 0.1, 10*time.Millisecond)
	seedPeer(n, "old", 8, 0.1, 10*time.Minute)
	if dropped := n.ForgetStale(time.Minute); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if peers := n.Peers(); len(peers) != 1 || peers[0].ID != "young" {
		t.Fatalf("peers = %+v", peers)
	}
}

func TestPickLeastLoaded(t *testing.T) {
	n := newTestNode(t, "self")
	seedPeer(n, "busy", 16, 0.9, 0)  // headroom 1.6
	seedPeer(n, "idle", 4, 0.0, 0)   // headroom 4.0
	seedPeer(n, "medium", 8, 0.5, 0) // headroom 4.0 -> tie, first by scan
	best, err := n.PickLeastLoaded(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if h := headroom(best); h != 4.0 {
		t.Fatalf("picked %s with headroom %v", best.ID, h)
	}
}

func TestPickLeastLoadedNoPeers(t *testing.T) {
	n := newTestNode(t, "lonely")
	if _, err := n.PickLeastLoaded(time.Second); err == nil {
		t.Fatal("no peers must error")
	}
}

func TestHeadroomClamps(t *testing.T) {
	if h := headroom(NodeInfo{Cores: 0, Load: -1}); h != 1 {
		t.Fatalf("headroom = %v, want clamped 1", h)
	}
	if h := headroom(NodeInfo{Cores: 2, Load: 5}); h != 0 {
		t.Fatalf("overloaded headroom = %v, want 0", h)
	}
}
