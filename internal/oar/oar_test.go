package oar

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"raftlib/kernels"
	"raftlib/raft"
)

func newTestNode(t *testing.T, id string) *Node {
	t.Helper()
	n, err := NewNode(id, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func TestNodeIdentity(t *testing.T) {
	n := newTestNode(t, "alpha")
	if n.ID() != "alpha" {
		t.Fatalf("id = %q", n.ID())
	}
	if n.Addr() == "" {
		t.Fatal("no address")
	}
	self := n.Self()
	if self.Cores < 1 || self.Addr != n.Addr() {
		t.Fatalf("self = %+v", self)
	}
}

func TestJoinExchangesInfo(t *testing.T) {
	a := newTestNode(t, "a")
	b := newTestNode(t, "b")
	if err := a.Join(b.Addr()); err != nil {
		t.Fatal(err)
	}
	// a learned b.
	peers := a.Peers()
	if len(peers) != 1 || peers[0].ID != "b" {
		t.Fatalf("a's peers = %+v", peers)
	}
	// b learned a (the exchange is bidirectional).
	peers = b.Peers()
	if len(peers) != 1 || peers[0].ID != "a" {
		t.Fatalf("b's peers = %+v", peers)
	}
}

func TestGossipTransitivity(t *testing.T) {
	a := newTestNode(t, "a")
	b := newTestNode(t, "b")
	c := newTestNode(t, "c")
	// a<->b, then c->b: c must learn about a through b.
	if err := a.Join(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(b.Addr()); err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, p := range c.Peers() {
		ids[p.ID] = true
	}
	if !ids["a"] || !ids["b"] {
		t.Fatalf("c's view = %v, want a and b", ids)
	}
}

func TestGossipLoadPropagates(t *testing.T) {
	a := newTestNode(t, "a")
	b := newTestNode(t, "b")
	b.SetLoad(0.75)
	if err := a.Join(b.Addr()); err != nil {
		t.Fatal(err)
	}
	var got float64
	for _, p := range a.Peers() {
		if p.ID == "b" {
			got = p.Load
		}
	}
	if got != 0.75 {
		t.Fatalf("propagated load = %v, want 0.75", got)
	}
}

func TestStartGossipRefreshes(t *testing.T) {
	a := newTestNode(t, "a")
	b := newTestNode(t, "b")
	if err := a.Join(b.Addr()); err != nil {
		t.Fatal(err)
	}
	a.StartGossip(20 * time.Millisecond)
	b.SetLoad(0.5)
	deadline := time.Now().Add(3 * time.Second)
	for {
		var load float64
		for _, p := range a.Peers() {
			if p.ID == "b" {
				load = p.Load
			}
		}
		if load == 0.5 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("gossip loop never refreshed b's load")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServiceCall(t *testing.T) {
	n := newTestNode(t, "svc")
	n.RegisterService("add", func(req map[string]string) (map[string]string, error) {
		x, _ := strconv.Atoi(req["x"])
		y, _ := strconv.Atoi(req["y"])
		return map[string]string{"sum": strconv.Itoa(x + y)}, nil
	})
	resp, err := Call(n.Addr(), "add", map[string]string{"x": "2", "y": "40"})
	if err != nil {
		t.Fatal(err)
	}
	if resp["sum"] != "42" {
		t.Fatalf("sum = %q", resp["sum"])
	}
}

func TestServiceErrors(t *testing.T) {
	n := newTestNode(t, "svc")
	n.RegisterService("boom", func(req map[string]string) (map[string]string, error) {
		return nil, fmt.Errorf("deliberate failure")
	})
	if _, err := Call(n.Addr(), "boom", nil); err == nil {
		t.Fatal("service error must propagate")
	}
	if _, err := Call(n.Addr(), "missing", nil); err == nil {
		t.Fatal("unknown service must error")
	}
}

func TestCallUnreachable(t *testing.T) {
	if _, err := Call("127.0.0.1:1", "x", nil); err == nil {
		t.Fatal("dial failure must error")
	}
}

func TestStreamDuplicateRegistration(t *testing.T) {
	n := newTestNode(t, "dup")
	if _, err := NewReceiver[int](n, "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReceiver[int](n, "s"); err == nil {
		t.Fatal("duplicate stream registration must error")
	}
}

// TestBridgeDistributedSum runs the paper's distributed claim end to end:
// the same sum application, with the producer half and consumer half in
// separate maps connected by a real TCP stream.
func TestBridgeDistributedSum(t *testing.T) {
	node := newTestNode(t, "worker")
	const n = 10_000

	send, recv, err := Bridge[int64](node, "numbers")
	if err != nil {
		t.Fatal(err)
	}

	// Producer process: generate -> tcp-send.
	producer := raft.NewMap()
	if _, err := producer.Link(kernels.NewGenerate(n, func(i int64) int64 { return i }), send); err != nil {
		t.Fatal(err)
	}

	// Consumer process: tcp-recv -> reduce.
	var total int64
	consumer := raft.NewMap()
	red := kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total)
	if _, err := consumer.Link(recv, red); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = producer.Exe() }()
	go func() { defer wg.Done(); _, errs[1] = consumer.Exe() }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("map %d: %v", i, err)
		}
	}
	want := int64(n) * (n - 1) / 2
	if total != want {
		t.Fatalf("distributed sum = %d, want %d", total, want)
	}
}

func TestBridgeCarriesSignals(t *testing.T) {
	node := newTestNode(t, "sig")
	send, recv, err := Bridge[int32](node, "sigs")
	if err != nil {
		t.Fatal(err)
	}
	producer := raft.NewMap()
	src := raft.NewLambda[int32](0, 1, func(k *raft.LambdaKernel) raft.Status {
		if err := raft.PushSig(k.Out("0"), int32(5), raft.SigUser); err != nil {
			return raft.Stop
		}
		return raft.Stop
	})
	if _, err := producer.Link(src, send); err != nil {
		t.Fatal(err)
	}

	var gotSig raft.Signal
	consumer := raft.NewMap()
	sink := raft.NewLambda[int32](1, 0, func(k *raft.LambdaKernel) raft.Status {
		_, s, err := raft.PopSig[int32](k.In("0"))
		if err != nil {
			return raft.Stop
		}
		gotSig = s
		return raft.Proceed
	})
	if _, err := consumer.Link(recv, sink); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _, _ = producer.Exe() }()
	go func() { defer wg.Done(); _, _ = consumer.Exe() }()
	wg.Wait()
	if gotSig != raft.SigUser {
		t.Fatalf("signal over TCP = %v, want user", gotSig)
	}
}

func TestReceiverTimesOutWithoutSender(t *testing.T) {
	node := newTestNode(t, "lonely")
	recv, err := NewReceiver[int](node, "never", WithFirstConnect(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := recv.Init(); err == nil {
		t.Fatal("receiver must time out when no sender connects")
	}
}

func TestMergeNewestStampWins(t *testing.T) {
	n := newTestNode(t, "self")
	now := time.Now()
	n.merge(NodeInfo{ID: "p", Load: 0.9, Stamp: now})
	n.merge(NodeInfo{ID: "p", Load: 0.1, Stamp: now.Add(-time.Second)}) // stale
	peers := n.Peers()
	if len(peers) != 1 || peers[0].Load != 0.9 {
		t.Fatalf("stale record overwrote newer: %+v", peers)
	}
	n.merge(NodeInfo{ID: "p", Load: 0.2, Stamp: now.Add(time.Second)}) // fresher
	if got := n.Peers()[0].Load; got != 0.2 {
		t.Fatalf("fresher record ignored: %v", got)
	}
	// Self and empty IDs are never merged.
	n.merge(NodeInfo{ID: "self", Stamp: now.Add(time.Hour)})
	n.merge(NodeInfo{ID: "", Stamp: now.Add(time.Hour)})
	if len(n.Peers()) != 1 {
		t.Fatalf("self/empty merged: %+v", n.Peers())
	}
}
