package oar

import (
	"compress/flate"
	"encoding/gob"
	"fmt"

	"raftlib/raft"
)

// Compressed bridges implement the paper's §4.2 roadmap item "Future
// versions will incorporate link data compression as well, further
// improving the cache-able data": frames are deflate-compressed on the
// wire, flushed per frame so latency stays bounded. Both ends are created
// by one BridgeCompressed call, so no codec negotiation is needed.

// compressedSender is a Sender whose frames pass through a flate writer.
type compressedSender[T any] struct {
	*Sender[T]
	fw *flate.Writer
}

// Init dials and layers the compressor over the connection.
func (s *compressedSender[T]) Init() error {
	if err := s.Sender.Init(); err != nil {
		return err
	}
	fw, err := flate.NewWriter(s.conn, flate.BestSpeed)
	if err != nil {
		s.conn.Close()
		return fmt.Errorf("oar: compressed sender: %w", err)
	}
	s.fw = fw
	s.enc = gob.NewEncoder(fw)
	s.flush = fw.Flush // deliver each frame promptly
	return nil
}

// Finalize flushes the compressor tail before closing.
func (s *compressedSender[T]) Finalize() {
	if s.fw != nil {
		_ = s.fw.Close()
	}
	s.Sender.Finalize()
}

// compressedReceiver is a Receiver reading through a flate reader.
type compressedReceiver[T any] struct {
	*Receiver[T]
}

// Init waits for the sender and layers the decompressor.
func (r *compressedReceiver[T]) Init() error {
	if err := r.Receiver.Init(); err != nil {
		return err
	}
	r.dec = gob.NewDecoder(flate.NewReader(r.conn))
	return nil
}

// BridgeCompressed wires a sender/receiver pair like Bridge, with the
// stream deflate-compressed on the wire. Worth it for compressible
// element types (text, sparse numeric data) on bandwidth-limited links;
// pure overhead for incompressible payloads.
func BridgeCompressed[T any](recvNode *Node, stream string) (raft.Kernel, raft.Kernel, error) {
	recv, err := NewReceiver[T](recvNode, stream)
	if err != nil {
		return nil, nil, err
	}
	send := NewSender[T](recvNode.Addr(), stream)
	cs := &compressedSender[T]{Sender: send}
	cr := &compressedReceiver[T]{Receiver: recv}
	return cs, cr, nil
}

// guard: the wrappers must still satisfy the kernel-lifecycle interfaces.
var (
	_ raft.Initializer = (*compressedSender[int])(nil)
	_ raft.Finalizer   = (*compressedSender[int])(nil)
	_ raft.Initializer = (*compressedReceiver[int])(nil)
)
