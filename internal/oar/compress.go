package oar

import (
	"compress/flate"
	"encoding/gob"
	"net"

	"raftlib/raft"
)

// Compressed bridges implement the paper's §4.2 roadmap item "Future
// versions will incorporate link data compression as well, further
// improving the cache-able data": frames are deflate-compressed on the
// wire, flushed per frame so latency stays bounded. Both ends are created
// by one BridgeCompressed call, so no codec negotiation is needed.
//
// Compression is installed as encoder/decoder factories so the healing
// protocol recreates the flate layers on every reconnect; acknowledgments
// ride the connection uncompressed in the reverse direction.

// flateEnc layers a deflate writer between the gob encoder and the
// connection.
func flateEnc(conn net.Conn) (*gob.Encoder, func() error, func(), error) {
	fw, err := flate.NewWriter(conn, flate.BestSpeed)
	if err != nil {
		return nil, nil, nil, err
	}
	return gob.NewEncoder(fw), fw.Flush, func() { _ = fw.Close() }, nil
}

// flateDec layers a deflate reader under the gob decoder.
func flateDec(conn net.Conn) *gob.Decoder {
	return gob.NewDecoder(flate.NewReader(conn))
}

// BridgeCompressed wires a sender/receiver pair like Bridge, with the
// stream deflate-compressed on the wire. Worth it for compressible
// element types (text, sparse numeric data) on bandwidth-limited links;
// pure overhead for incompressible payloads.
func BridgeCompressed[T any](recvNode *Node, stream string, opts ...BridgeOption) (raft.Kernel, raft.Kernel, error) {
	recv, err := NewReceiver[T](recvNode, stream, opts...)
	if err != nil {
		return nil, nil, err
	}
	send := NewSender[T](recvNode.Addr(), stream, opts...)
	send.mkEnc = flateEnc
	recv.mkDec = flateDec
	return send, recv, nil
}
