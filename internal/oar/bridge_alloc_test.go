package oar

import (
	"encoding/gob"
	"io"
	"testing"
	"time"

	"raftlib/internal/fault"
	"raftlib/raft"
)

// newBenchSender wires a sender's wire path to a sink writer without a real
// connection, so the framing/encode path can be measured in isolation.
func newBenchSender(w io.Writer) *Sender[int64] {
	s := NewSender[int64]("unused", "allocs")
	s.enc = gob.NewEncoder(w)
	return s
}

// TestSenderSteadyStateAllocs pins the zero-allocation property of the
// sender's frame path: after warm-up (type descriptors sent, pool and
// scratch grown), sequencing + blob lease + outer transmit of a frame
// allocates nothing of its own. The replay blob comes from the pool, the
// payload encoder and its buffer persist, and the outer frame is encoded
// through a persistent struct. The one tolerated allocation per frame is
// gob-internal: the encoder's element-slice fast path boxes the slice
// header through reflect (reflect.packEface in encInt64Slice), a cost of
// the codec itself, not of the framing path — regression past it means
// per-frame garbage crept back into our code.
func TestSenderSteadyStateAllocs(t *testing.T) {
	s := newBenchSender(io.Discard)
	vals := make([]int64, senderBatch)
	sigs := make([]raft.Signal, senderBatch) // all SigNone: payload omits them
	for i := range vals {
		vals[i] = int64(i)
	}
	send := func() {
		if st := s.sendBatch(vals, sigs); st != raft.Proceed {
			t.Fatal("sendBatch did not proceed")
		}
		// Ack immediately so the next call's prune recycles the blob.
		s.acked.Store(s.nextSeq)
	}
	for i := 0; i < 16; i++ {
		send()
	}
	if avg := testing.AllocsPerRun(200, send); avg > 1 {
		t.Fatalf("bridge sender allocates %.2f allocs/frame in steady state, want <=1 (gob-internal only)", avg)
	}
}

// TestSenderAllocsWithSignals covers the signal-carrying arm (payload.Sigs
// encoded): still allocation-free in steady state.
func TestSenderAllocsWithSignals(t *testing.T) {
	s := newBenchSender(io.Discard)
	vals := make([]int64, 64)
	sigs := make([]raft.Signal, 64)
	sigs[63] = raft.SigEOF
	send := func() {
		if st := s.sendBatch(vals, sigs); st != raft.Proceed {
			t.Fatal("sendBatch did not proceed")
		}
		s.acked.Store(s.nextSeq)
	}
	for i := 0; i < 16; i++ {
		send()
	}
	if avg := testing.AllocsPerRun(200, send); avg > 1 {
		t.Fatalf("bridge sender allocates %.2f allocs/frame with signals, want <=1 (gob-internal only)", avg)
	}
}

// TestBridgeRoundTripPayloads verifies the two-layer wire format end to
// end over a real connection, on both the view and copy-encode arms, with
// replay-inducing faults on the view arm (exactly-once across the
// persistent inner decoder).
func TestBridgeRoundTripPayloads(t *testing.T) {
	node := newTestNode(t, "roundtrip")
	const n = 5000
	inj := fault.New()
	inj.SeverBridge("rt-view", 7)
	inj.CorruptBridge("rt-view", 13)
	got, errS, errR := runBridge(t, node, "rt-view", n, WithBridgeFault(inj),
		WithReconnectBackoff(time.Millisecond, 50*time.Millisecond))
	if errS != nil || errR != nil {
		t.Fatalf("view arm: exe errors: %v / %v", errS, errR)
	}
	requireExactSequence(t, got, n)

	got, errS, errR = runBridge(t, node, "rt-copy", n, WithCopyEncode())
	if errS != nil || errR != nil {
		t.Fatalf("copy arm: exe errors: %v / %v", errS, errR)
	}
	requireExactSequence(t, got, n)
}

// BenchmarkSenderFrame reports the steady-state cost of one frame on the
// sender wire path (256 int64 elements, no live connection).
func BenchmarkSenderFrame(b *testing.B) {
	s := newBenchSender(io.Discard)
	vals := make([]int64, senderBatch)
	sigs := make([]raft.Signal, senderBatch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := s.sendBatch(vals, sigs); st != raft.Proceed {
			b.Fatal("sendBatch did not proceed")
		}
		s.acked.Store(s.nextSeq)
	}
}
