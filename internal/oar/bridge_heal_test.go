package oar

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"raftlib/internal/fault"
	"raftlib/kernels"
	"raftlib/raft"
)

// collectSink gathers int64 elements in arrival order with a live counter,
// so tests can both synchronize on progress and verify exactly-once
// delivery afterwards.
type collectSink struct {
	mu    sync.Mutex
	got   []int64
	count atomic.Int64
}

func (c *collectSink) kernel() raft.Kernel {
	return raft.NewLambda[int64](1, 0, func(k *raft.LambdaKernel) raft.Status {
		v, err := raft.Pop[int64](k.In("0"))
		if err != nil {
			return raft.Stop
		}
		c.mu.Lock()
		c.got = append(c.got, v)
		c.mu.Unlock()
		c.count.Add(1)
		return raft.Proceed
	})
}

func (c *collectSink) values() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, len(c.got))
	copy(out, c.got)
	return out
}

func (c *collectSink) waitFor(t *testing.T, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.count.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("sink stuck at %d/%d elements", c.count.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// runBridge drives n generated elements through a bridge under the given
// options and returns the collected output plus both Exe errors.
func runBridge(t *testing.T, node *Node, stream string, n int64, opts ...BridgeOption) ([]int64, error, error) {
	t.Helper()
	send, recv, err := Bridge[int64](node, stream, opts...)
	if err != nil {
		t.Fatal(err)
	}
	producer := raft.NewMap()
	if _, err := producer.Link(kernels.NewGenerate(n, func(i int64) int64 { return i }), send); err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	consumer := raft.NewMap()
	if _, err := consumer.Link(recv, sink.kernel()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = producer.Exe() }()
	go func() { defer wg.Done(); _, errs[1] = consumer.Exe() }()
	wg.Wait()
	return sink.values(), errs[0], errs[1]
}

// requireExactSequence asserts lossless, duplicate-free, in-order arrival.
func requireExactSequence(t *testing.T, got []int64, n int64) {
	t.Helper()
	if int64(len(got)) != n {
		t.Fatalf("received %d elements, want %d (healing must be exactly-once)", len(got), n)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestBridgeHealsSeveredConnection(t *testing.T) {
	node := newTestNode(t, "sever")
	const n = 5000
	inj := fault.New()
	inj.SeverBridge("cut", 2)
	inj.SeverBridge("cut", 6)
	got, perr, cerr := runBridge(t, node, "cut", n, WithBridgeFault(inj),
		WithReconnectBackoff(time.Millisecond, 50*time.Millisecond))
	if perr != nil || cerr != nil {
		t.Fatalf("Exe errors: producer=%v consumer=%v", perr, cerr)
	}
	requireExactSequence(t, got, n)
	if inj.Fired("sever") != 2 {
		t.Fatalf("severs fired = %d, want 2", inj.Fired("sever"))
	}
}

func TestBridgeHealsCorruptedFrame(t *testing.T) {
	node := newTestNode(t, "corrupt")
	const n = 5000
	inj := fault.New()
	inj.CorruptBridge("garble", 3)
	got, perr, cerr := runBridge(t, node, "garble", n, WithBridgeFault(inj),
		WithReconnectBackoff(time.Millisecond, 50*time.Millisecond))
	if perr != nil || cerr != nil {
		t.Fatalf("Exe errors: producer=%v consumer=%v", perr, cerr)
	}
	requireExactSequence(t, got, n)
	if inj.Fired("corrupt") != 1 {
		t.Fatalf("corruptions fired = %d, want 1", inj.Fired("corrupt"))
	}
}

func TestBridgeSurvivesInjectedDelay(t *testing.T) {
	node := newTestNode(t, "slow")
	const n = 2000
	inj := fault.New()
	inj.DelayBridge("lag", 3, time.Millisecond)
	got, perr, cerr := runBridge(t, node, "lag", n, WithBridgeFault(inj))
	if perr != nil || cerr != nil {
		t.Fatalf("Exe errors: producer=%v consumer=%v", perr, cerr)
	}
	requireExactSequence(t, got, n)
	if inj.Fired("delay") == 0 {
		t.Fatal("no delays fired")
	}
}

func TestBridgeReportsRecoveryStats(t *testing.T) {
	node := newTestNode(t, "stats")
	send, recv, err := Bridge[int64](node, "counted",
		WithBridgeFault(func() *fault.Injector {
			inj := fault.New()
			inj.SeverBridge("counted", 2)
			return inj
		}()),
		WithReconnectBackoff(time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	producer := raft.NewMap()
	if _, err := producer.Link(kernels.NewGenerate(1000, func(i int64) int64 { return i }), send); err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	consumer := raft.NewMap()
	if _, err := consumer.Link(recv, sink.kernel()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _, _ = producer.Exe() }()
	go func() { defer wg.Done(); _, _ = consumer.Exe() }()
	wg.Wait()

	sr, ok := send.BridgeStats()
	if !ok {
		t.Fatal("sender stats not available after Exe")
	}
	if sr.Stream != "counted" || sr.Reconnects < 1 {
		t.Fatalf("sender stats = %+v, want >=1 reconnect", sr)
	}
	if sr.Downtime <= 0 {
		t.Fatalf("sender downtime = %v, want > 0", sr.Downtime)
	}
	rr, ok := recv.BridgeStats()
	if !ok {
		t.Fatal("receiver stats not available after Exe")
	}
	if rr.Reconnects < 1 {
		t.Fatalf("receiver stats = %+v, want >=1 reconnect", rr)
	}
}

func TestCompressedBridgeHeals(t *testing.T) {
	node := newTestNode(t, "zip")
	const n = 3000
	inj := fault.New()
	inj.SeverBridge("packed", 2)
	send, recv, err := BridgeCompressed[int64](node, "packed", WithBridgeFault(inj),
		WithReconnectBackoff(time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	producer := raft.NewMap()
	if _, err := producer.Link(kernels.NewGenerate(n, func(i int64) int64 { return i }), send); err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	consumer := raft.NewMap()
	if _, err := consumer.Link(recv, sink.kernel()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = producer.Exe() }()
	go func() { defer wg.Done(); _, errs[1] = consumer.Exe() }()
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("Exe errors: producer=%v consumer=%v", errs[0], errs[1])
	}
	requireExactSequence(t, sink.values(), n)
	if inj.Fired("sever") != 1 {
		t.Fatalf("severs fired = %d, want 1", inj.Fired("sever"))
	}
}

func TestBridgeHeartbeatKeepsIdleLinkAlive(t *testing.T) {
	node := newTestNode(t, "idle")
	send, recv, err := Bridge[int64](node, "quiet",
		WithHeartbeat(25*time.Millisecond), WithPeerTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	feed := make(chan int64, 2)
	producer := raft.NewMap()
	src := raft.NewLambda[int64](0, 1, func(k *raft.LambdaKernel) raft.Status {
		v, ok := <-feed
		if !ok {
			return raft.Stop
		}
		if err := raft.Push(k.Out("0"), v); err != nil {
			return raft.Stop
		}
		return raft.Proceed
	})
	if _, err := producer.Link(src, send); err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	consumer := raft.NewMap()
	if _, err := consumer.Link(recv, sink.kernel()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = producer.Exe() }()
	go func() { defer wg.Done(); _, errs[1] = consumer.Exe() }()

	feed <- 0
	sink.waitFor(t, 1)
	// Idle far longer than the receiver's liveness deadline: heartbeats
	// must keep the connection demonstrably alive, with no reconnect churn.
	time.Sleep(400 * time.Millisecond)
	feed <- 1
	close(feed)
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("Exe errors: producer=%v consumer=%v", errs[0], errs[1])
	}
	requireExactSequence(t, sink.values(), 2)
	if rr, _ := recv.BridgeStats(); rr.Reconnects != 0 {
		t.Fatalf("receiver reconnects = %d, want 0 (heartbeats should prevent churn)", rr.Reconnects)
	}
}

// runDegradation drives a bridge into a permanent outage: three elements
// flow one frame each, then the node is shut down and a sever is injected,
// so reconnection is impossible and the policy must fire.
func runDegradation(t *testing.T, policy Policy) (sendErr, recvErr error, send *Sender[int64], delivered []int64) {
	t.Helper()
	node, err := NewNode("doomed-"+fmt.Sprint(policy), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	inj := fault.New()
	inj.SeverBridge("fragile", 4)
	var recv *Receiver[int64]
	send, recv, err = Bridge[int64](node, "fragile",
		WithBridgeFault(inj),
		WithPolicy(policy),
		WithMaxDowntime(150*time.Millisecond),
		WithReconnectBackoff(time.Millisecond, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	feed := make(chan int64, 16)
	producer := raft.NewMap()
	src := raft.NewLambda[int64](0, 1, func(k *raft.LambdaKernel) raft.Status {
		v, ok := <-feed
		if !ok {
			return raft.Stop
		}
		if err := raft.Push(k.Out("0"), v); err != nil {
			return raft.Stop
		}
		return raft.Proceed
	})
	if _, err := producer.Link(src, send); err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	consumer := raft.NewMap()
	if _, err := consumer.Link(recv, sink.kernel()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = producer.Exe() }()
	go func() { defer wg.Done(); _, errs[1] = consumer.Exe() }()

	// One frame per element: wait for each arrival before feeding the next.
	for i := int64(0); i < 3; i++ {
		feed <- i
		sink.waitFor(t, i+1)
	}
	// Take the listener down, then feed the frame the sever rule hits:
	// the sender cannot reconnect and the outage becomes permanent.
	node.Close()
	for i := int64(3); i < 10; i++ {
		feed <- i
	}
	close(feed)
	wg.Wait()
	return errs[0], errs[1], send, sink.values()
}

func TestBridgeFailPolicyRaisesBridgeDown(t *testing.T) {
	sendErr, recvErr, _, delivered := runDegradation(t, Fail)
	if !errors.Is(sendErr, raft.ErrBridgeDown) {
		t.Errorf("producer err %v does not wrap ErrBridgeDown", sendErr)
	}
	if !errors.Is(recvErr, raft.ErrBridgeDown) {
		t.Errorf("consumer err %v does not wrap ErrBridgeDown", recvErr)
	}
	requireExactSequence(t, delivered, 3) // pre-outage traffic was delivered
}

func TestBridgeDropPolicyDegradesGracefully(t *testing.T) {
	sendErr, recvErr, send, delivered := runDegradation(t, Drop)
	if sendErr != nil {
		t.Errorf("producer err = %v, want nil under Drop policy", sendErr)
	}
	if recvErr != nil {
		t.Errorf("consumer err = %v, want nil under Drop policy", recvErr)
	}
	requireExactSequence(t, delivered, 3)
	sr, _ := send.BridgeStats()
	if sr.Dropped == 0 {
		t.Fatalf("sender stats = %+v, want dropped > 0", sr)
	}
}

func TestTransientClassification(t *testing.T) {
	if !IsTransient(fmt.Errorf("wrap: %w", ErrPeerGone)) {
		t.Error("wrapped ErrPeerGone not classified transient")
	}
	if IsTransient(fmt.Errorf("wrap: %w", raft.ErrBridgeDown)) {
		t.Error("ErrBridgeDown must be permanent, not transient")
	}
}
