package oar

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"raftlib/raft"
)

// Remote stages realize the paper's remote kernel execution (§4.1: the oar
// system "provides a means to remotely compile and execute kernels so that
// a user can have a simple compile and forget experience"). A node
// registers named stage factories; a peer splices a registered stage into
// its local topology with RemoteStage, which returns a (sender, receiver)
// kernel pair:
//
//	local upstream -> sender ==tcp==> [recv -> kernel -> send] ==tcp==> receiver -> local downstream
//
// The remote half runs as a full raft application on the serving node, one
// instance per RemoteStage call, full-duplex on a single TCP connection.
// Go cannot compile shipped source at runtime, so factories are registered
// ahead of time — the substitution recorded in DESIGN.md.

// stageHdr is the connection header kind for stage spawns.
const stageHdr = "spawn"

// frame is one stage wire batch. Stage connections are not self-healing
// (the bridge's sequenced wireFrame protocol is), so a plain batch struct
// suffices.
type frame[T any] struct {
	Vals []T
	Sigs []raft.Signal
	EOF  bool
}

// RegisterStage exposes a kernel factory under name on node n. T and U are
// the stage's input and output element types; the factory must return a
// kernel with exactly one input port of T and one output port of U.
func RegisterStage[T, U any](n *Node, name string, factory func(args map[string]string) (raft.Kernel, error)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stages[name] = func(conn net.Conn, br *bufio.Reader) {
		serveStageConn[T, U](conn, br, factory)
	}
}

// serveStageConn runs one remote stage instance over an accepted
// connection.
func serveStageConn[T, U any](conn net.Conn, br *bufio.Reader, factory func(args map[string]string) (raft.Kernel, error)) {
	defer conn.Close()
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)
	var args map[string]string
	if err := dec.Decode(&args); err != nil {
		return
	}
	kernel, err := factory(args)
	if err != nil {
		// Closing without an ack tells the peer the spawn failed.
		return
	}
	// Ack the spawn so the caller can distinguish setup errors.
	if err := enc.Encode(true); err != nil {
		return
	}

	src := &stageConnSource[T]{dec: dec}
	src.SetName("stage-recv")
	raft.AddOutput[T](src, "out")
	sink := &stageConnSink[U]{enc: enc}
	sink.SetName("stage-send")
	raft.AddInput[U](sink, "in")

	m := raft.NewMap()
	if _, err := m.Link(src, kernel); err != nil {
		return
	}
	if _, err := m.Link(kernel, sink); err != nil {
		return
	}
	_, _ = m.Exe() // errors surface to the peer as a closed connection
}

// stageConnSource feeds decoded frames into the remote pipeline.
type stageConnSource[T any] struct {
	raft.KernelBase
	dec *gob.Decoder
}

func (s *stageConnSource[T]) Run() raft.Status {
	var f frame[T]
	if err := s.dec.Decode(&f); err != nil {
		return raft.Stop
	}
	if f.EOF {
		return raft.Stop
	}
	out := s.Out("out")
	for i, v := range f.Vals {
		sig := raft.SigNone
		if i < len(f.Sigs) {
			sig = f.Sigs[i]
		}
		if err := raft.PushSig(out, v, sig); err != nil {
			return raft.Stop
		}
	}
	return raft.Proceed
}

// stageConnSink returns the remote pipeline's results to the peer.
type stageConnSink[U any] struct {
	raft.KernelBase
	enc *gob.Encoder
}

func (s *stageConnSink[U]) Run() raft.Status {
	in := s.In("in")
	v, sig, err := raft.PopSig[U](in)
	if err != nil {
		_ = s.enc.Encode(frame[U]{EOF: true})
		return raft.Stop
	}
	f := frame[U]{Vals: []U{v}, Sigs: []raft.Signal{sig}}
	for len(f.Vals) < senderBatch {
		v, ok, err := raft.TryPop[U](in)
		if err != nil || !ok {
			break
		}
		f.Vals = append(f.Vals, v)
		f.Sigs = append(f.Sigs, raft.SigNone)
	}
	if err := s.enc.Encode(f); err != nil {
		return raft.Stop
	}
	return raft.Proceed
}

// RemoteStage splices the named registered stage of the node at addr into
// a local topology. The returned sender kernel (input port "in", type T)
// forwards local elements to the remote stage; the returned receiver
// kernel (output port "out", type U) delivers the stage's results.
func RemoteStage[T, U any](addr, stage string, args map[string]string) (raft.Kernel, raft.Kernel, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, nil, fmt.Errorf("oar: stage dial %s: %w", addr, err)
	}
	if _, err := fmt.Fprintf(conn, "%s %s\n", stageHdr, stage); err != nil {
		conn.Close()
		return nil, nil, err
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if args == nil {
		args = map[string]string{}
	}
	if err := enc.Encode(args); err != nil {
		conn.Close()
		return nil, nil, err
	}
	var ok bool
	if err := dec.Decode(&ok); err != nil || !ok {
		conn.Close()
		return nil, nil, fmt.Errorf("oar: node %s rejected stage %q (unregistered or factory error)", addr, stage)
	}

	send := &stageLocalSender[T]{conn: conn, enc: enc}
	send.SetName("remote-stage-send[" + stage + "]")
	raft.AddInput[T](send, "in")
	recv := &stageLocalReceiver[U]{dec: dec}
	recv.SetName("remote-stage-recv[" + stage + "]")
	raft.AddOutput[U](recv, "out")
	return send, recv, nil
}

// stageLocalSender forwards the local upstream to the remote stage.
type stageLocalSender[T any] struct {
	raft.KernelBase
	conn net.Conn
	enc  *gob.Encoder
}

func (s *stageLocalSender[T]) Run() raft.Status {
	in := s.In("in")
	v, sig, err := raft.PopSig[T](in)
	if err != nil {
		_ = s.enc.Encode(frame[T]{EOF: true})
		return raft.Stop
	}
	f := frame[T]{Vals: []T{v}, Sigs: []raft.Signal{sig}}
	for len(f.Vals) < senderBatch {
		v, ok, err := raft.TryPop[T](in)
		if err != nil || !ok {
			break
		}
		f.Vals = append(f.Vals, v)
		f.Sigs = append(f.Sigs, raft.SigNone)
	}
	if err := s.enc.Encode(f); err != nil {
		return raft.Stop
	}
	return raft.Proceed
}

// stageLocalReceiver delivers the remote stage's results locally.
type stageLocalReceiver[U any] struct {
	raft.KernelBase
	dec *gob.Decoder
}

func (r *stageLocalReceiver[U]) Run() raft.Status {
	var f frame[U]
	if err := r.dec.Decode(&f); err != nil {
		return raft.Stop
	}
	if f.EOF {
		return raft.Stop
	}
	out := r.Out("out")
	for i, v := range f.Vals {
		sig := raft.SigNone
		if i < len(f.Sigs) {
			sig = f.Sigs[i]
		}
		if err := raft.PushSig(out, v, sig); err != nil {
			return raft.Stop
		}
	}
	return raft.Proceed
}
