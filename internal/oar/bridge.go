package oar

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"raftlib/raft"
)

// A bridge tunnels one raft stream over a TCP connection: the Sender is a
// sink kernel in the producing process's map, the Receiver a source kernel
// in the consuming process's map. Apart from replacing one Link call with
// the bridge pair, no kernel code changes — the paper's "no difference
// between a distributed and a non-distributed program from the perspective
// of the developer" (§4.1).
//
// Wire format: a header line ("stream <name>\n") then a sequence of
// gob-encoded frames, each carrying a batch of elements with their
// synchronized signals; an EOF frame closes the stream.

// frame is one wire batch.
type frame[T any] struct {
	Vals []T
	Sigs []raft.Signal
	EOF  bool
}

// senderBatch bounds elements per frame (amortizes encoder overhead
// without adding much latency).
const senderBatch = 256

// Sender is the producing end of a bridge: a sink kernel with input port
// "in" whose elements are encoded onto the TCP connection.
type Sender[T any] struct {
	raft.KernelBase
	addr   string
	stream string
	conn   net.Conn
	enc    *gob.Encoder
	// flush, when non-nil, runs after every encoded frame (compressed
	// bridges flush their flate layer per frame).
	flush func() error
}

// NewSender returns a bridge sender that will dial the receiver node at
// addr and feed the named stream.
func NewSender[T any](addr, stream string) *Sender[T] {
	k := &Sender[T]{addr: addr, stream: stream}
	k.SetName("tcp-send[" + stream + "]")
	raft.AddInput[T](k, "in")
	return k
}

// Init implements raft.Initializer by dialing the receiver.
func (s *Sender[T]) Init() error {
	conn, err := net.DialTimeout("tcp", s.addr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("oar: sender dial %s: %w", s.addr, err)
	}
	if _, err := fmt.Fprintf(conn, "%s %s\n", hdrStream, s.stream); err != nil {
		conn.Close()
		return err
	}
	s.conn = conn
	s.enc = gob.NewEncoder(conn)
	return nil
}

// Run implements raft.Kernel: gather a batch, encode a frame.
func (s *Sender[T]) Run() raft.Status {
	in := s.In("in")
	var f frame[T]
	v, sig, err := raft.PopSig[T](in)
	if err != nil {
		return s.finish()
	}
	f.Vals = append(f.Vals, v)
	f.Sigs = append(f.Sigs, sig)
	for len(f.Vals) < senderBatch {
		v, ok, err := raft.TryPop[T](in)
		if err != nil || !ok {
			break
		}
		f.Vals = append(f.Vals, v)
		f.Sigs = append(f.Sigs, raft.SigNone)
	}
	if err := s.enc.Encode(f); err != nil {
		return s.finish()
	}
	if s.flush != nil {
		if err := s.flush(); err != nil {
			return s.finish()
		}
	}
	return raft.Proceed
}

// finish sends the EOF frame and stops.
func (s *Sender[T]) finish() raft.Status {
	if s.enc != nil {
		_ = s.enc.Encode(frame[T]{EOF: true})
		if s.flush != nil {
			_ = s.flush()
		}
	}
	return raft.Stop
}

// Finalize implements raft.Finalizer by closing the connection.
func (s *Sender[T]) Finalize() {
	if s.conn != nil {
		s.conn.Close()
	}
}

// Receiver is the consuming end of a bridge: a source kernel with output
// port "out" fed by the TCP stream registered on its node.
type Receiver[T any] struct {
	raft.KernelBase
	node    *Node
	stream  string
	accept  <-chan net.Conn
	conn    net.Conn
	dec     *gob.Decoder
	timeout time.Duration
}

// NewReceiver registers the named stream endpoint on node and returns the
// source kernel delivering its elements.
func NewReceiver[T any](node *Node, stream string) (*Receiver[T], error) {
	ch, err := node.registerStream(stream)
	if err != nil {
		return nil, err
	}
	k := &Receiver[T]{node: node, stream: stream, accept: ch, timeout: 30 * time.Second}
	k.SetName("tcp-recv[" + stream + "]")
	raft.AddOutput[T](k, "out")
	return k, nil
}

// Init implements raft.Initializer by waiting for the sender to connect.
func (r *Receiver[T]) Init() error {
	select {
	case conn := <-r.accept:
		r.conn = conn
		r.dec = gob.NewDecoder(conn)
		return nil
	case <-time.After(r.timeout):
		return fmt.Errorf("oar: receiver %q: no sender connected within %v", r.stream, r.timeout)
	}
}

// Run implements raft.Kernel: decode one frame, push its elements.
func (r *Receiver[T]) Run() raft.Status {
	var f frame[T]
	if err := r.dec.Decode(&f); err != nil {
		return raft.Stop // connection lost: propagate EOF downstream
	}
	if f.EOF {
		return raft.Stop
	}
	out := r.Out("out")
	for i, v := range f.Vals {
		sig := raft.SigNone
		if i < len(f.Sigs) {
			sig = f.Sigs[i]
		}
		if err := raft.PushSig(out, v, sig); err != nil {
			return raft.Stop
		}
	}
	return raft.Proceed
}

// Finalize implements raft.Finalizer by closing the connection.
func (r *Receiver[T]) Finalize() {
	if r.conn != nil {
		r.conn.Close()
	}
}

// Bridge wires a sender/receiver pair for the named stream terminating at
// recvNode. Link the sender as a sink in the producing map and the
// receiver as a source in the consuming map.
func Bridge[T any](recvNode *Node, stream string) (*Sender[T], *Receiver[T], error) {
	recv, err := NewReceiver[T](recvNode, stream)
	if err != nil {
		return nil, nil, err
	}
	send := NewSender[T](recvNode.Addr(), stream)
	return send, recv, nil
}
