package oar

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"raftlib/internal/fault"
	"raftlib/internal/trace"
	"raftlib/raft"
)

// bridgeTrace is the telemetry-bus hookup shared by both bridge endpoints.
// Exe attaches the run's recorder through raft.TraceAttacher before
// scheduling, so disconnect/reconnect/replay transitions land on the same
// timeline as kernel invocations and monitor decisions.
type bridgeTrace struct {
	rec   *trace.Recorder
	actor int32
}

// AttachTrace implements raft.TraceAttacher.
func (b *bridgeTrace) AttachTrace(rec *trace.Recorder, actor int32) {
	b.rec = rec
	b.actor = actor
}

// emit publishes one bridge transition (no-op when unattached).
func (b *bridgeTrace) emit(kind trace.Kind, stream string, arg int64) {
	if b.rec == nil {
		return
	}
	b.rec.Emit(trace.Event{
		Actor: b.actor, Kind: kind, At: time.Now().UnixNano(),
		Arg: arg, Label: stream,
	})
}

// A bridge tunnels one raft stream over a TCP connection: the Sender is a
// sink kernel in the producing process's map, the Receiver a source kernel
// in the consuming process's map. Apart from replacing one Link call with
// the bridge pair, no kernel code changes — the paper's "no difference
// between a distributed and a non-distributed program from the perspective
// of the developer" (§4.1).
//
// Bridges are self-healing. The wire protocol gives every data frame a
// sequence number; the receiver acknowledges delivered frames and
// deduplicates by sequence, while the sender buffers unacknowledged frames
// and replays them after reconnecting. Failures are detected by heartbeat
// frames (sender side) and a read deadline (receiver side); reconnection
// uses capped exponential backoff. The result is exactly-once element
// delivery across connection loss, frame corruption, and receiver-side
// timeouts — verified byte-for-byte by the chaos integration tests. An
// outage outlasting MaxDowntime degrades per the configured Policy: Fail
// raises a global exception wrapping raft.ErrBridgeDown; Drop keeps the
// local map running and discards traffic.
//
// Wire format: a header line ("stream <name>\n"), then gob-encoded
// wireFrame records sender->receiver (heartbeat frames carry Seq 0 and no
// data) and gob-encoded ackMsg records receiver->sender on the same
// connection. A data frame's Data field holds one element batch encoded by
// a persistent inner gob stream: type descriptors cross the wire once per
// stream (not once per frame, and not again after a reconnect), the sender
// encodes batches directly out of borrowed queue storage (see Run), and
// the receiver deduplicates replayed frames by sequence number BEFORE the
// inner decode, so the persistent inner decoder consumes every unique
// frame's bytes exactly once, in order. An EOF frame closes the stream.
//
// When T is pointer-free the sender skips the inner gob stream entirely and
// marks each data frame Raw: the borrowed ring segment is blitted
// byte-for-byte into the frame blob behind a small self-describing header
// (element size, native-order sentinel, count), and the receiver blits it
// back into a reused batch slice. Each raw frame decodes statelessly, so
// replay and deduplication need no decoder-state coordination; the header's
// size and sentinel checks turn an endianness or layout disagreement
// between endpoints into an immediate, permanent bridge failure instead of
// silent corruption.

// wireFrame is one outer wire message. Replay safety lives here: the outer
// encoder/decoder pair is recreated per connection, while Data blobs are
// immutable once encoded and replayed verbatim.
type wireFrame struct {
	// Seq numbers data and EOF frames from 1; heartbeats carry 0.
	Seq  uint64
	Data []byte
	EOF  bool
	// HB marks a heartbeat: no payload, refreshes the receiver's liveness
	// deadline, never acknowledged or replayed.
	HB bool
	// Raw marks Data as a raw-blitted batch (see the package comment on the
	// wire format) rather than an inner-gob payload. Senders set it for
	// every data frame or none, but the receiver dispatches per frame.
	Raw bool
	// Marks is the optional latency-marker sidecar (trace.EncodeMarkers):
	// provenance for a sample of the elements in Data, carried out-of-band
	// so the payload bytes are identical with markers on or off. It rides
	// the replay buffer with its frame — a replayed frame resends the same
	// sidecar bytes and the receiver's seq dedup filters both together. Gob
	// omits a nil slice, so marker-free senders emit pre-sidecar frames.
	Marks []byte
}

// rawSentinel is written in native byte order after the element size in
// every raw frame header; a receiver that reads it back differently is
// running on a machine with a different byte order than the sender, where
// blitted element bytes would be garbage.
const rawSentinel uint64 = 0x0102030405060708

// payload is the inner message: one element batch with its synchronized
// signals (omitted entirely when every element carries SigNone, the common
// case).
type payload[T any] struct {
	Vals []T
	Sigs []raft.Signal
}

// blob is a pooled encode buffer; replay entries own one until the frame
// is acknowledged, then it returns to the sender's pool.
type blob struct{ b []byte }

// sentFrame is one replay-buffer entry: the frame's encoded payload and
// its element count (for drop accounting under the Drop policy).
type sentFrame[T any] struct {
	seq  uint64
	data *blob
	n    int
	eof  bool
	// vals/sigs are populated only under WithCopyEncode: the pre-view
	// sender retained a value copy of every batch for replay, and the
	// A15 copy arm must pay that allocation to be a faithful baseline.
	vals []T
	sigs []raft.Signal
	// marks is the frame's latency-marker sidecar, retained alongside the
	// payload so replay resends byte-identical provenance.
	marks []byte
}

// ackMsg acknowledges delivery of every frame up to and including Seq.
type ackMsg struct {
	Seq uint64
}

// senderBatch bounds elements per frame (amortizes encoder overhead
// without adding much latency).
const senderBatch = 256

// ErrPeerGone classifies a transient bridge failure: the connection was
// lost but the healing protocol is (or was) entitled to re-establish it.
// Permanent failures — downtime past the policy's tolerance — wrap
// raft.ErrBridgeDown instead.
var ErrPeerGone = errors.New("oar: peer connection lost")

// IsTransient reports whether a bridge error is a recoverable connection
// loss (as opposed to a permanent raft.ErrBridgeDown failure).
func IsTransient(err error) bool { return errors.Is(err, ErrPeerGone) }

// Policy selects how a bridge endpoint degrades when its connection stays
// down past MaxDowntime.
type Policy int

// Degradation policies.
const (
	// Fail raises a map-global exception wrapping raft.ErrBridgeDown, so
	// the local Exe returns a typed error (the default).
	Fail Policy = iota
	// Drop keeps the local map running: the sender discards subsequent
	// elements (counting them), the receiver delivers EOF downstream.
	Drop
)

// bridgeOpts holds the healing parameters of one bridge endpoint.
type bridgeOpts struct {
	heartbeat    time.Duration
	peerTimeout  time.Duration
	reconnectMin time.Duration
	reconnectMax time.Duration
	maxDowntime  time.Duration
	policy       Policy
	firstConnect time.Duration
	inj          *fault.Injector
	copyEncode   bool
}

func defaultBridgeOpts() bridgeOpts {
	return bridgeOpts{
		heartbeat:    250 * time.Millisecond,
		peerTimeout:  time.Second,
		reconnectMin: 50 * time.Millisecond,
		reconnectMax: 2 * time.Second,
		maxDowntime:  15 * time.Second,
		policy:       Fail,
		firstConnect: 30 * time.Second,
	}
}

// BridgeOption customizes a bridge endpoint's healing behavior.
type BridgeOption func(*bridgeOpts)

// WithHeartbeat sets the sender's heartbeat period (default 250ms); the
// receiver's liveness deadline defaults to 4x this period.
func WithHeartbeat(d time.Duration) BridgeOption {
	return func(o *bridgeOpts) {
		if d > 0 {
			o.heartbeat = d
			o.peerTimeout = 4 * d
		}
	}
}

// WithPeerTimeout sets the receiver's liveness deadline explicitly.
func WithPeerTimeout(d time.Duration) BridgeOption {
	return func(o *bridgeOpts) {
		if d > 0 {
			o.peerTimeout = d
		}
	}
}

// WithReconnectBackoff sets the reconnect backoff range (default 50ms
// doubling to 2s).
func WithReconnectBackoff(min, max time.Duration) BridgeOption {
	return func(o *bridgeOpts) {
		if min > 0 {
			o.reconnectMin = min
		}
		if max >= o.reconnectMin {
			o.reconnectMax = max
		}
	}
}

// WithMaxDowntime bounds one outage before the degradation policy fires
// (default 15s; 0 parks the endpoint and retries forever).
func WithMaxDowntime(d time.Duration) BridgeOption {
	return func(o *bridgeOpts) { o.maxDowntime = d }
}

// WithPolicy selects the degradation policy (default Fail).
func WithPolicy(p Policy) BridgeOption {
	return func(o *bridgeOpts) { o.policy = p }
}

// WithFirstConnect sets how long endpoints wait for the initial connection
// (default 30s receiver-side).
func WithFirstConnect(d time.Duration) BridgeOption {
	return func(o *bridgeOpts) {
		if d > 0 {
			o.firstConnect = d
		}
	}
}

// WithBridgeFault installs a deterministic fault plan on the endpoint: the
// sender consults it before transmitting each frame (sever / corrupt /
// delay at exact sequence numbers). Pair it with the same injector passed
// to raft.WithFaultInjection for whole-system chaos runs.
func WithBridgeFault(inj *fault.Injector) BridgeOption {
	return func(o *bridgeOpts) { o.inj = inj }
}

// WithCopyEncode disables the sender's zero-copy view path: every batch is
// staged through kernel-owned scratch before encoding, and the replay
// buffer retains a freshly allocated value copy per frame — the pre-view
// sender design, kept as the copy arm of the A15 ablation. Views are the
// default whenever the input queue supports them.
func WithCopyEncode() BridgeOption {
	return func(o *bridgeOpts) { o.copyEncode = true }
}

// Sender is the producing end of a bridge: a sink kernel with input port
// "in" whose elements are framed, sequenced and encoded onto the TCP
// connection, with unacknowledged frames buffered for replay.
type Sender[T any] struct {
	raft.KernelBase
	addr   string
	stream string
	opt    bridgeOpts

	// mkEnc layers the frame encoder over a fresh connection (compressed
	// bridges swap in a flate layer); nil selects plain gob.
	mkEnc func(conn net.Conn) (enc *gob.Encoder, flush func() error, closeEnc func(), err error)

	mu       sync.Mutex // guards conn, enc, flush, closeEnc, wf
	conn     net.Conn
	enc      *gob.Encoder
	flush    func() error
	closeEnc func()
	wf       wireFrame // persistent outer frame: Encode(&wf) avoids boxing

	// The persistent inner payload stream: one encoder for the life of the
	// sender, writing into the reusable encBuf, with the finished bytes
	// copied once into a pooled blob owned by the replay entry. Views make
	// that single copy the only one on the send path — elements go ring
	// storage -> encoder with no staging slice in between.
	payloadEnc *gob.Encoder
	encBuf     bytes.Buffer
	pl         payload[T]
	blobPool   sync.Pool

	// raw selects the blit encoding for data frames: T embeds no pointers
	// (its bytes ARE its value) and the copy-encode ablation arm is off.
	// Decided once at construction; every data frame of a sender uses the
	// same encoding.
	raw bool

	nextSeq uint64
	buffer  []sentFrame[T] // unacknowledged frames, ascending seq
	acked   atomic.Uint64

	// popVals/popSigs stage batches only on the fallback path: a custom
	// ProvideQueue queue without view support, or the WithCopyEncode
	// ablation arm. Allocated lazily.
	popVals []T
	popSigs []raft.Signal

	// stageMarks holds the encoded marker sidecar for the borrow currently
	// being staged; the first frame staged after a pop consumes it.
	stageMarks []byte

	stop     chan struct{}
	stopOnce sync.Once
	started  bool
	gaveUp   bool

	reconnects atomic.Uint64
	replayed   atomic.Uint64
	dropped    atomic.Uint64
	downtimeNs atomic.Int64

	trc bridgeTrace
}

// NewSender returns a bridge sender that will dial the receiver node at
// addr and feed the named stream.
func NewSender[T any](addr, stream string, opts ...BridgeOption) *Sender[T] {
	k := &Sender[T]{addr: addr, stream: stream, opt: defaultBridgeOpts(), stop: make(chan struct{})}
	for _, o := range opts {
		o(&k.opt)
	}
	k.raw = !k.opt.copyEncode && pointerFree(reflect.TypeFor[T]())
	k.SetName("tcp-send[" + stream + "]")
	k.SetMarkerForwarder()
	raft.AddInput[T](k, "in")
	return k
}

// Init implements raft.Initializer by dialing the receiver and starting
// the heartbeat loop.
func (s *Sender[T]) Init() error {
	if err := s.connect(10 * time.Second); err != nil {
		return fmt.Errorf("oar: sender dial %s: %w", s.addr, err)
	}
	s.started = true
	go s.heartbeatLoop()
	return nil
}

// connect establishes one connection: dial, header, encoder, ack reader.
func (s *Sender[T]) connect(dialTimeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", s.addr, dialTimeout)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(conn, "%s %s\n", hdrStream, s.stream); err != nil {
		conn.Close()
		return err
	}
	var enc *gob.Encoder
	var flush func() error
	var closeEnc func()
	if s.mkEnc != nil {
		enc, flush, closeEnc, err = s.mkEnc(conn)
		if err != nil {
			conn.Close()
			return err
		}
	} else {
		enc = gob.NewEncoder(conn)
	}
	s.mu.Lock()
	s.conn, s.enc, s.flush, s.closeEnc = conn, enc, flush, closeEnc
	s.mu.Unlock()
	// Acks ride the same connection receiver->sender, always uncompressed.
	go s.ackLoop(conn)
	return nil
}

// ackLoop drains acknowledgments from one connection until it dies.
func (s *Sender[T]) ackLoop(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var a ackMsg
		if err := dec.Decode(&a); err != nil {
			return
		}
		for {
			cur := s.acked.Load()
			if a.Seq <= cur || s.acked.CompareAndSwap(cur, a.Seq) {
				break
			}
		}
	}
}

// heartbeatLoop keeps the connection demonstrably alive while the producer
// is idle; a failed heartbeat closes the connection so the next transmit
// reconnects.
func (s *Sender[T]) heartbeatLoop() {
	t := time.NewTicker(s.opt.heartbeat)
	defer t.Stop()
	hb := wireFrame{HB: true}
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			if s.enc != nil {
				err := s.enc.Encode(&hb)
				if err == nil && s.flush != nil {
					err = s.flush()
				}
				if err != nil && s.conn != nil {
					s.conn.Close()
				}
			}
			s.mu.Unlock()
		}
	}
}

// dropConn abandons the current connection (the ack loop exits on its own).
func (s *Sender[T]) dropConn() {
	s.mu.Lock()
	if s.closeEnc != nil {
		s.closeEnc()
	}
	if s.conn != nil {
		s.conn.Close()
	}
	s.conn, s.enc, s.flush, s.closeEnc = nil, nil, nil, nil
	s.mu.Unlock()
}

// Run implements raft.Kernel: borrow a batch from the input queue, encode
// it straight out of ring storage (one frame per contiguous segment, at
// most two per borrow), and transmit with replay protection. The queue's
// elements are never staged through a kernel-owned slice: the view pins
// them in place for the inner encoder, and the replay buffer keeps only
// the encoded bytes. The borrow is released before the connection write —
// once a frame is staged, its blob owns the bytes, so the producer can
// refill the queue while the transmit blocks on the socket.
func (s *Sender[T]) Run() raft.Status {
	in := s.In("in")
	limit := in.BatchHint(senderBatch)
	if limit > senderBatch {
		limit = senderBatch
	} else if limit < 1 {
		limit = 1
	}
	if !s.opt.copyEncode && raft.HasViews[T](in) {
		v, err := raft.PopView[T](in, limit)
		if v.Len() == 0 {
			_ = err // blocking PopView yields elements or ErrClosed
			return s.finish()
		}
		if s.gaveUp {
			s.dropped.Add(uint64(v.Len()))
			raft.ReleaseView[T](in, v.Len())
			return raft.Proceed
		}
		s.stageMarks = s.takeMarkSidecar()
		first, st := s.stage(v.Vals, v.Sigs)
		var second uint64
		if st == raft.Proceed && len(v.Vals2) > 0 {
			second, st = s.stage(v.Vals2, v.Sigs2)
		}
		raft.ReleaseView[T](in, v.Len())
		if st != raft.Proceed {
			return st
		}
		if err := s.transmit(first); err != nil {
			return s.giveUp(err)
		}
		if second != 0 {
			if err := s.transmit(second); err != nil {
				return s.giveUp(err)
			}
		}
		return raft.Proceed
	}
	if s.popVals == nil {
		s.popVals = make([]T, senderBatch)
		s.popSigs = make([]raft.Signal, senderBatch)
	}
	n, err := raft.PopNSig[T](in, s.popVals[:limit], s.popSigs[:limit])
	if n == 0 || err != nil {
		return s.finish()
	}
	if s.gaveUp {
		s.dropped.Add(uint64(n))
		return raft.Proceed
	}
	s.stageMarks = s.takeMarkSidecar()
	return s.sendBatch(s.popVals[:n], s.popSigs[:n])
}

// takeMarkSidecar drains the latency markers picked up by the pop that
// produced the current borrow and encodes them for the wire, closing each
// marker's open queue hop at the moment of departure. Returns nil when
// markers are disabled or none rode the batch.
func (s *Sender[T]) takeMarkSidecar() []byte {
	ms := s.TakeMarkers()
	if len(ms) == 0 {
		return nil
	}
	now := time.Now().UnixNano()
	for _, m := range ms {
		m.BeginTransit(now)
	}
	return trace.EncodeMarkers(ms)
}

// allSigNone reports whether the signal slice (possibly nil) carries no
// synchronized signals, letting the payload omit it.
func allSigNone(sigs []raft.Signal) bool {
	for _, s := range sigs {
		if s != raft.SigNone {
			return false
		}
	}
	return true
}

// stage sequences one element batch and encodes it into a replay-buffer
// entry, without touching the network: a raw blit when the element type
// permits, the persistent inner gob stream otherwise. vals/sigs may alias
// queue storage; they are not retained past the call. A non-Proceed status
// means the degradation policy already fired.
func (s *Sender[T]) stage(vals []T, sigs []raft.Signal) (uint64, raft.Status) {
	if s.raw {
		return s.stageRaw(vals, sigs), raft.Proceed
	}
	if allSigNone(sigs) {
		sigs = nil
	}
	if s.payloadEnc == nil {
		s.payloadEnc = gob.NewEncoder(&s.encBuf)
	}
	s.encBuf.Reset()
	s.pl.Vals, s.pl.Sigs = vals, sigs
	err := s.payloadEnc.Encode(&s.pl)
	s.pl.Vals, s.pl.Sigs = nil, nil // do not retain borrowed storage
	if err != nil {
		// The inner stream is poisoned (unencodable element type) — a
		// programming error, permanent by classification.
		return 0, s.giveUp(fmt.Errorf("oar: stream %q: payload encode: %w (%v)",
			s.stream, raft.ErrBridgeDown, err))
	}
	bl := s.getBlob(s.encBuf.Len())
	copy(bl.b, s.encBuf.Bytes())
	s.nextSeq++
	sf := sentFrame[T]{seq: s.nextSeq, data: bl, n: len(vals)}
	sf.marks, s.stageMarks = s.stageMarks, nil
	if s.opt.copyEncode {
		// Faithful pre-view baseline: the legacy sender kept a value copy
		// of every unacknowledged batch, so the A15 copy arm pays the
		// same per-frame allocation and retention it did.
		sf.vals = append([]T(nil), vals...)
		sf.sigs = append([]raft.Signal(nil), sigs...)
	}
	s.buffer = append(s.buffer, sf)
	s.prune()
	return s.nextSeq, raft.Proceed
}

// stageRaw sequences one batch as a raw frame: the element bytes are
// blitted straight from the (possibly borrowed) slice into a pooled blob,
// with no per-element encoding. Layout: uvarint element size, 8-byte
// native-order sentinel, uvarint count, count*size element bytes, one
// signals-present flag byte, then count signal bytes when any signal is
// set. It cannot fail: the blit has no encodable-type error mode.
func (s *Sender[T]) stageRaw(vals []T, sigs []raft.Signal) uint64 {
	if allSigNone(sigs) {
		sigs = nil
	}
	var zero T
	size := int(unsafe.Sizeof(zero))
	var hdr [2*binary.MaxVarintLen64 + 8]byte
	h := binary.PutUvarint(hdr[:], uint64(size))
	binary.NativeEndian.PutUint64(hdr[h:], rawSentinel)
	h += 8
	h += binary.PutUvarint(hdr[h:], uint64(len(vals)))
	bl := s.getBlob(h + len(vals)*size + 1 + len(sigs))
	off := copy(bl.b, hdr[:h])
	if size > 0 && len(vals) > 0 {
		off += copy(bl.b[off:], unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), len(vals)*size))
	}
	if sigs == nil {
		bl.b[off] = 0
	} else {
		bl.b[off] = 1
		copy(bl.b[off+1:], unsafe.Slice((*byte)(unsafe.Pointer(&sigs[0])), len(sigs)))
	}
	s.nextSeq++
	sf := sentFrame[T]{seq: s.nextSeq, data: bl, n: len(vals)}
	sf.marks, s.stageMarks = s.stageMarks, nil
	s.buffer = append(s.buffer, sf)
	s.prune()
	return s.nextSeq
}

// sendBatch stages one batch and transmits it (the staged-copy path; the
// view path interleaves stage and transmit around the borrow's release).
func (s *Sender[T]) sendBatch(vals []T, sigs []raft.Signal) raft.Status {
	seq, st := s.stage(vals, sigs)
	if st != raft.Proceed {
		return st
	}
	if err := s.transmit(seq); err != nil {
		return s.giveUp(err)
	}
	return raft.Proceed
}

// getBlob leases a pooled encode buffer of length n.
func (s *Sender[T]) getBlob(n int) *blob {
	bl, _ := s.blobPool.Get().(*blob)
	if bl == nil {
		bl = &blob{}
	}
	if cap(bl.b) < n {
		bl.b = make([]byte, n)
	}
	bl.b = bl.b[:n]
	return bl
}

// prune discards buffered frames the receiver has acknowledged, returning
// their blobs to the pool.
func (s *Sender[T]) prune() {
	acked := s.acked.Load()
	i := 0
	for i < len(s.buffer) && s.buffer[i].seq <= acked {
		if s.buffer[i].data != nil {
			s.blobPool.Put(s.buffer[i].data)
			s.buffer[i].data = nil
		}
		i++
	}
	if i > 0 {
		s.buffer = append(s.buffer[:0], s.buffer[i:]...)
	}
}

// transmit delivers the buffered frame with the given seq to a live
// connection, reconnecting and replaying as needed. A nil return means the
// frame reached a connection (acknowledgment is tracked asynchronously); a
// non-nil return wraps raft.ErrBridgeDown.
func (s *Sender[T]) transmit(seq uint64) error {
	act := fault.ActNone
	if s.opt.inj != nil {
		var delay time.Duration
		act, delay = s.opt.inj.FrameAction(s.stream, seq)
		if delay > 0 {
			time.Sleep(delay)
		}
	}
	switch act {
	case fault.ActSever:
		s.dropConn()
	case fault.ActCorrupt:
		s.mu.Lock()
		if s.conn != nil {
			_, _ = s.conn.Write([]byte("\xde\xad\xbe\xef garbage"))
		}
		s.mu.Unlock()
		s.dropConn()
	default:
		if err := s.encodeSeq(seq); err == nil {
			return nil
		}
		s.dropConn()
	}
	// The frame is safe in the replay buffer; re-establish and replay it
	// (with everything else unacknowledged) on the fresh connection.
	return s.reconnect()
}

// encodeSeq writes the buffered frame with the given seq (no-op if it has
// been acknowledged and pruned meanwhile).
func (s *Sender[T]) encodeSeq(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.enc == nil {
		return fmt.Errorf("oar: stream %q: %w", s.stream, ErrPeerGone)
	}
	for i := range s.buffer {
		if s.buffer[i].seq == seq {
			if err := s.encodeFrameLocked(&s.buffer[i]); err != nil {
				return err
			}
			if s.flush != nil {
				return s.flush()
			}
			return nil
		}
	}
	return nil
}

// encodeFrameLocked writes one replay-buffer entry as an outer wire frame
// (caller holds s.mu and flushes).
func (s *Sender[T]) encodeFrameLocked(sf *sentFrame[T]) error {
	s.wf.Seq, s.wf.EOF, s.wf.HB, s.wf.Data = sf.seq, sf.eof, false, nil
	s.wf.Raw = s.raw && !sf.eof
	s.wf.Marks = sf.marks
	if sf.data != nil {
		s.wf.Data = sf.data.b
	}
	err := s.enc.Encode(&s.wf)
	s.wf.Data, s.wf.Marks = nil, nil
	return err
}

// AttachTrace implements raft.TraceAttacher.
func (s *Sender[T]) AttachTrace(rec *trace.Recorder, actor int32) { s.trc.AttachTrace(rec, actor) }

// reconnect re-establishes the connection with capped exponential backoff
// and replays every unacknowledged frame. It fails (wrapping
// raft.ErrBridgeDown) once the outage outlasts MaxDowntime.
func (s *Sender[T]) reconnect() error {
	start := time.Now()
	defer func() { s.downtimeNs.Add(int64(time.Since(start))) }()
	s.trc.emit(trace.BridgeDisconnect, s.stream, 0)
	backoff := s.opt.reconnectMin
	for {
		if s.opt.maxDowntime > 0 && time.Since(start) > s.opt.maxDowntime {
			return fmt.Errorf("oar: stream %q: sender down %v: %w",
				s.stream, time.Since(start).Round(time.Millisecond), raft.ErrBridgeDown)
		}
		if err := s.connect(backoff + s.opt.reconnectMin); err == nil {
			replayedBefore := s.replayed.Load()
			if err := s.replay(); err == nil {
				s.reconnects.Add(1)
				s.trc.emit(trace.BridgeReconnect, s.stream, int64(s.reconnects.Load()))
				if n := s.replayed.Load() - replayedBefore; n > 0 {
					s.trc.emit(trace.BridgeReplay, s.stream, int64(n))
				}
				return nil
			}
			s.dropConn()
		}
		select {
		case <-s.stop:
			return fmt.Errorf("oar: stream %q: sender stopped while down: %w", s.stream, raft.ErrBridgeDown)
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > s.opt.reconnectMax {
			backoff = s.opt.reconnectMax
		}
	}
}

// replay retransmits every buffered frame past the acknowledged watermark
// on the fresh connection; the receiver deduplicates by sequence. Replayed
// frames are the original encoded bytes, so the receiver's persistent
// inner decoder never sees a re-encoding.
func (s *Sender[T]) replay() error {
	s.prune()
	acked := s.acked.Load()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.enc == nil {
		return fmt.Errorf("oar: stream %q: %w", s.stream, ErrPeerGone)
	}
	for i := range s.buffer {
		if s.buffer[i].seq <= acked {
			continue
		}
		if err := s.encodeFrameLocked(&s.buffer[i]); err != nil {
			return err
		}
		s.replayed.Add(1)
	}
	if s.flush != nil {
		return s.flush()
	}
	return nil
}

// giveUp applies the degradation policy to a permanent failure.
func (s *Sender[T]) giveUp(err error) raft.Status {
	if s.opt.policy == Drop {
		s.gaveUp = true
		for i := range s.buffer {
			s.dropped.Add(uint64(s.buffer[i].n))
			if s.buffer[i].data != nil {
				s.blobPool.Put(s.buffer[i].data)
			}
		}
		s.buffer = nil
		return raft.Proceed
	}
	s.Raise(err)
	return raft.Stop
}

// finish sequences and transmits the EOF frame, then waits briefly for the
// final acknowledgment so frames replayed during a late outage are not
// abandoned in a dying connection.
func (s *Sender[T]) finish() raft.Status {
	if s.gaveUp || !s.started {
		return raft.Stop
	}
	s.nextSeq++
	s.buffer = append(s.buffer, sentFrame[T]{seq: s.nextSeq, eof: true})
	if err := s.transmit(s.nextSeq); err != nil {
		return s.giveUp(err)
	}
	deadline := time.Now().Add(s.opt.peerTimeout)
	for s.acked.Load() < s.nextSeq && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	return raft.Stop
}

// Finalize implements raft.Finalizer by stopping the heartbeat and closing
// the connection.
func (s *Sender[T]) Finalize() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.dropConn()
}

// BridgeStats implements raft.BridgeReporter.
func (s *Sender[T]) BridgeStats() (raft.BridgeReport, bool) {
	return raft.BridgeReport{
		Stream:     s.stream,
		Reconnects: s.reconnects.Load(),
		Replayed:   s.replayed.Load(),
		Dropped:    s.dropped.Load(),
		Downtime:   time.Duration(s.downtimeNs.Load()),
	}, s.started
}

// pointerFree reports whether values of type t embed no pointers, so a
// decoded batch slice may be reused in place across frames. Strings are
// classed as pointer-bearing out of caution; the cost of a false negative
// is only the per-frame slice allocation.
func pointerFree(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32,
		reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return pointerFree(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !pointerFree(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// blobReader feeds the persistent inner decoder one outer frame's Data at
// a time. It implements io.ByteReader so gob reads it directly (no bufio
// wrapper that could read ahead across blob boundaries).
type blobReader struct {
	data []byte
	off  int
}

func (b *blobReader) load(data []byte) { b.data, b.off = data, 0 }

func (b *blobReader) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *blobReader) ReadByte() (byte, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	c := b.data[b.off]
	b.off++
	return c, nil
}

// Receiver is the consuming end of a bridge: a source kernel with output
// port "out" fed by the TCP stream registered on its node, deduplicating
// replayed frames and acknowledging delivery.
type Receiver[T any] struct {
	raft.KernelBase
	node   *Node
	stream string
	accept <-chan net.Conn
	opt    bridgeOpts

	// mkDec layers the frame decoder over a fresh connection (compressed
	// bridges swap in a flate layer); nil selects plain gob.
	mkDec func(conn net.Conn) *gob.Decoder

	conn   net.Conn
	dec    *gob.Decoder
	ackEnc *gob.Encoder

	// The persistent inner payload stream, mirroring the sender's: one
	// decoder for the life of the receiver, fed each frame's Data blob in
	// sequence order (duplicates are filtered by seq before the decode so
	// the descriptor state never desynchronizes). pl's slices are reused
	// across frames only when T is pointer-free (see reuseVals): the bulk
	// push below copies element values, not what they point at, and gob
	// decodes into whatever backing storage the destination still holds —
	// reusing a pointer-bearing batch would rewrite bytes that delivered
	// elements in the ring still reference.
	payloadDec *gob.Decoder
	blobSrc    blobReader
	pl         payload[T]
	reuseVals  bool

	delivered uint64
	started   bool

	reconnects atomic.Uint64
	downtimeNs atomic.Int64

	trc bridgeTrace
}

// NewReceiver registers the named stream endpoint on node and returns the
// source kernel delivering its elements.
func NewReceiver[T any](node *Node, stream string, opts ...BridgeOption) (*Receiver[T], error) {
	ch, err := node.registerStream(stream)
	if err != nil {
		return nil, err
	}
	k := &Receiver[T]{
		node: node, stream: stream, accept: ch, opt: defaultBridgeOpts(),
		reuseVals: pointerFree(reflect.TypeFor[T]()),
	}
	for _, o := range opts {
		o(&k.opt)
	}
	k.SetName("tcp-recv[" + stream + "]")
	k.SetMarkerForwarder()
	raft.AddOutput[T](k, "out")
	return k, nil
}

// Init implements raft.Initializer by waiting for the sender to connect.
func (r *Receiver[T]) Init() error {
	select {
	case conn := <-r.accept:
		r.setup(conn)
		r.started = true
		return nil
	case <-time.After(r.opt.firstConnect):
		return fmt.Errorf("oar: receiver %q: no sender connected within %v: %w",
			r.stream, r.opt.firstConnect, raft.ErrBridgeDown)
	}
}

// setup adopts one connection.
func (r *Receiver[T]) setup(conn net.Conn) {
	r.conn = conn
	if r.mkDec != nil {
		r.dec = r.mkDec(conn)
	} else {
		r.dec = gob.NewDecoder(conn)
	}
	r.ackEnc = gob.NewEncoder(conn)
}

// dropConn abandons the current connection.
func (r *Receiver[T]) dropConn() {
	if r.conn != nil {
		r.conn.Close()
	}
	r.conn, r.dec, r.ackEnc = nil, nil, nil
}

// Run implements raft.Kernel: decode one outer frame, deduplicate by
// sequence, decode the payload on the persistent inner stream, deliver,
// ack. Connection failures (timeout, EOF mid-stream, corrupt frames) are
// healed by waiting for the sender's reconnect; an outage outlasting
// MaxDowntime degrades per the policy.
func (r *Receiver[T]) Run() raft.Status {
	for {
		if r.conn == nil {
			if st, done := r.await(); done {
				return st
			}
		}
		_ = r.conn.SetReadDeadline(time.Now().Add(r.opt.peerTimeout))
		var wf wireFrame
		if err := r.dec.Decode(&wf); err != nil {
			// Transient by classification: the healing protocol owns it.
			r.dropConn()
			continue
		}
		if wf.HB {
			continue
		}
		if wf.Seq != 0 && wf.Seq <= r.delivered {
			// Replayed duplicate: its bytes already went through the inner
			// decoder once, so it must be filtered here, before the decode.
			// Re-acknowledge so the sender prunes it.
			r.ack(wf.Seq)
			continue
		}
		if wf.EOF {
			r.ack(wf.Seq)
			return raft.Stop
		}
		if wf.Raw {
			// A malformed raw frame is permanent by classification: the
			// outer decode already validated transport integrity, so the
			// endpoints disagree on element layout or byte order.
			if err := r.decodeRaw(wf.Data); err != nil {
				if r.opt.policy == Fail {
					r.Raise(fmt.Errorf("oar: stream %q: raw frame: %w (%v)",
						r.stream, raft.ErrBridgeDown, err))
				}
				return raft.Stop
			}
		} else {
			r.blobSrc.load(wf.Data)
			if r.payloadDec == nil {
				r.payloadDec = gob.NewDecoder(&r.blobSrc)
			}
			if r.reuseVals {
				r.pl.Vals = r.pl.Vals[:0]
			} else {
				r.pl.Vals = nil // force fresh element storage (see field doc)
			}
			r.pl.Sigs = r.pl.Sigs[:0]
			if err := r.payloadDec.Decode(&r.pl); err != nil {
				// The inner stream is poisoned: a fresh decoder could not
				// pick up mid-stream (descriptors were sent once), so this
				// outage is permanent by construction.
				if r.opt.policy == Fail {
					r.Raise(fmt.Errorf("oar: stream %q: payload decode: %w (%v)",
						r.stream, raft.ErrBridgeDown, err))
				}
				return raft.Stop
			}
		}
		if len(wf.Marks) > 0 {
			// Re-inject the sidecar's markers before the push so they ride
			// onto the out lane with this frame's elements. The seq dedup
			// above already filtered replayed duplicates, so each marker
			// crosses exactly once; a malformed sidecar is dropped rather
			// than poisoning an otherwise healthy data frame.
			if ms, err := trace.DecodeMarkers(wf.Marks); err == nil {
				now := time.Now().UnixNano()
				for _, m := range ms {
					m.EndTransit("bridge:"+r.stream, now)
				}
				r.DepositMarkers(ms)
			}
		}
		out := r.Out("out")
		if len(r.pl.Sigs) == len(r.pl.Vals) {
			// Whole frame in one bulk push: a single lock acquisition
			// delivers the batch with its signals aligned.
			if err := raft.PushNSig(out, r.pl.Vals, r.pl.Sigs); err != nil {
				return raft.Stop
			}
		} else if err := raft.PushN(out, r.pl.Vals); err != nil {
			return raft.Stop
		}
		if wf.Seq != 0 {
			r.delivered = wf.Seq
			r.ack(wf.Seq)
		}
		return raft.Proceed
	}
}

// decodeRaw unpacks one raw frame (see stageRaw for the layout) into
// r.pl, blitting element bytes into the reused batch slice. Raw frames
// exist only for pointer-free T, so in-place reuse is always safe here;
// the element-size and sentinel checks make a layout or byte-order
// disagreement between endpoints fail loudly instead of delivering
// garbage elements.
func (r *Receiver[T]) decodeRaw(data []byte) error {
	var zero T
	size, h := binary.Uvarint(data)
	if h <= 0 || len(data) < h+8 {
		return fmt.Errorf("truncated raw header")
	}
	if !r.reuseVals {
		return fmt.Errorf("raw frame for pointer-bearing element type %T", zero)
	}
	if size != uint64(unsafe.Sizeof(zero)) {
		return fmt.Errorf("element size mismatch: sender %d bytes, receiver %d (%T)",
			size, unsafe.Sizeof(zero), zero)
	}
	if got := binary.NativeEndian.Uint64(data[h:]); got != rawSentinel {
		return fmt.Errorf("byte-order sentinel mismatch (%#x): endpoints disagree on endianness", got)
	}
	data = data[h+8:]
	cnt64, h := binary.Uvarint(data)
	if h <= 0 {
		return fmt.Errorf("truncated raw count")
	}
	cnt := int(cnt64)
	data = data[h:]
	need := cnt * int(size)
	if cnt < 0 || len(data) < need+1 {
		return fmt.Errorf("raw frame holds %d bytes, want %d elements of %d", len(data), cnt, size)
	}
	if cap(r.pl.Vals) < cnt {
		r.pl.Vals = make([]T, cnt)
	}
	r.pl.Vals = r.pl.Vals[:cnt]
	if need > 0 {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&r.pl.Vals[0])), need), data)
	}
	data = data[need:]
	r.pl.Sigs = r.pl.Sigs[:0]
	if data[0] != 0 {
		if len(data) < 1+cnt {
			return fmt.Errorf("raw frame truncated in signals")
		}
		if cap(r.pl.Sigs) < cnt {
			r.pl.Sigs = make([]raft.Signal, cnt)
		}
		r.pl.Sigs = r.pl.Sigs[:cnt]
		if cnt > 0 {
			copy(unsafe.Slice((*byte)(unsafe.Pointer(&r.pl.Sigs[0])), cnt), data[1:])
		}
	}
	return nil
}

// ack reports delivery through Seq; failures are ignored (a dying
// connection means the sender will reconnect and replay, and the
// deduplication window absorbs the repeats).
func (r *Receiver[T]) ack(seq uint64) {
	if r.ackEnc != nil {
		_ = r.ackEnc.Encode(ackMsg{Seq: seq})
	}
}

// AttachTrace implements raft.TraceAttacher.
func (r *Receiver[T]) AttachTrace(rec *trace.Recorder, actor int32) { r.trc.AttachTrace(rec, actor) }

// await blocks until the sender reconnects, or the outage outlasts
// MaxDowntime and the degradation policy fires. done=true carries a final
// kernel status.
func (r *Receiver[T]) await() (raft.Status, bool) {
	start := time.Now()
	defer func() { r.downtimeNs.Add(int64(time.Since(start))) }()
	r.trc.emit(trace.BridgeDisconnect, r.stream, 0)
	var expire <-chan time.Time
	if r.opt.maxDowntime > 0 {
		t := time.NewTimer(r.opt.maxDowntime)
		defer t.Stop()
		expire = t.C
	}
	select {
	case conn := <-r.accept:
		r.setup(conn)
		r.reconnects.Add(1)
		r.trc.emit(trace.BridgeReconnect, r.stream, int64(r.reconnects.Load()))
		return raft.Proceed, false
	case <-expire:
		if r.opt.policy == Fail {
			r.Raise(fmt.Errorf("oar: stream %q: receiver down %v: %w",
				r.stream, time.Since(start).Round(time.Millisecond), raft.ErrBridgeDown))
		}
		return raft.Stop, true
	}
}

// Finalize implements raft.Finalizer by closing the connection.
func (r *Receiver[T]) Finalize() {
	r.dropConn()
}

// BridgeStats implements raft.BridgeReporter.
func (r *Receiver[T]) BridgeStats() (raft.BridgeReport, bool) {
	return raft.BridgeReport{
		Stream:     r.stream,
		Reconnects: r.reconnects.Load(),
		Downtime:   time.Duration(r.downtimeNs.Load()),
	}, r.started
}

// Bridge wires a sender/receiver pair for the named stream terminating at
// recvNode. Link the sender as a sink in the producing map and the
// receiver as a source in the consuming map. Options apply to both ends.
func Bridge[T any](recvNode *Node, stream string, opts ...BridgeOption) (*Sender[T], *Receiver[T], error) {
	recv, err := NewReceiver[T](recvNode, stream, opts...)
	if err != nil {
		return nil, nil, err
	}
	send := NewSender[T](recvNode.Addr(), stream, opts...)
	return send, recv, nil
}

// guard: both endpoints publish recovery counters.
var (
	_ raft.BridgeReporter = (*Sender[int])(nil)
	_ raft.BridgeReporter = (*Receiver[int])(nil)
)
