package oar

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"raftlib/internal/fault"
	"raftlib/internal/trace"
	"raftlib/raft"
)

// bridgeTrace is the telemetry-bus hookup shared by both bridge endpoints.
// Exe attaches the run's recorder through raft.TraceAttacher before
// scheduling, so disconnect/reconnect/replay transitions land on the same
// timeline as kernel invocations and monitor decisions.
type bridgeTrace struct {
	rec   *trace.Recorder
	actor int32
}

// AttachTrace implements raft.TraceAttacher.
func (b *bridgeTrace) AttachTrace(rec *trace.Recorder, actor int32) {
	b.rec = rec
	b.actor = actor
}

// emit publishes one bridge transition (no-op when unattached).
func (b *bridgeTrace) emit(kind trace.Kind, stream string, arg int64) {
	if b.rec == nil {
		return
	}
	b.rec.Emit(trace.Event{
		Actor: b.actor, Kind: kind, At: time.Now().UnixNano(),
		Arg: arg, Label: stream,
	})
}

// A bridge tunnels one raft stream over a TCP connection: the Sender is a
// sink kernel in the producing process's map, the Receiver a source kernel
// in the consuming process's map. Apart from replacing one Link call with
// the bridge pair, no kernel code changes — the paper's "no difference
// between a distributed and a non-distributed program from the perspective
// of the developer" (§4.1).
//
// Bridges are self-healing. The wire protocol gives every data frame a
// sequence number; the receiver acknowledges delivered frames and
// deduplicates by sequence, while the sender buffers unacknowledged frames
// and replays them after reconnecting. Failures are detected by heartbeat
// frames (sender side) and a read deadline (receiver side); reconnection
// uses capped exponential backoff. The result is exactly-once element
// delivery across connection loss, frame corruption, and receiver-side
// timeouts — verified byte-for-byte by the chaos integration tests. An
// outage outlasting MaxDowntime degrades per the configured Policy: Fail
// raises a global exception wrapping raft.ErrBridgeDown; Drop keeps the
// local map running and discards traffic.
//
// Wire format: a header line ("stream <name>\n"), then gob-encoded frames
// sender->receiver (heartbeat frames carry Seq 0 and no data) and
// gob-encoded ackMsg records receiver->sender on the same connection. An
// EOF frame closes the stream.

// frame is one wire batch.
type frame[T any] struct {
	// Seq numbers data and EOF frames from 1; heartbeats carry 0.
	Seq  uint64
	Vals []T
	Sigs []raft.Signal
	EOF  bool
	// HB marks a heartbeat: no payload, refreshes the receiver's liveness
	// deadline, never acknowledged or replayed.
	HB bool
}

// ackMsg acknowledges delivery of every frame up to and including Seq.
type ackMsg struct {
	Seq uint64
}

// senderBatch bounds elements per frame (amortizes encoder overhead
// without adding much latency).
const senderBatch = 256

// ErrPeerGone classifies a transient bridge failure: the connection was
// lost but the healing protocol is (or was) entitled to re-establish it.
// Permanent failures — downtime past the policy's tolerance — wrap
// raft.ErrBridgeDown instead.
var ErrPeerGone = errors.New("oar: peer connection lost")

// IsTransient reports whether a bridge error is a recoverable connection
// loss (as opposed to a permanent raft.ErrBridgeDown failure).
func IsTransient(err error) bool { return errors.Is(err, ErrPeerGone) }

// Policy selects how a bridge endpoint degrades when its connection stays
// down past MaxDowntime.
type Policy int

// Degradation policies.
const (
	// Fail raises a map-global exception wrapping raft.ErrBridgeDown, so
	// the local Exe returns a typed error (the default).
	Fail Policy = iota
	// Drop keeps the local map running: the sender discards subsequent
	// elements (counting them), the receiver delivers EOF downstream.
	Drop
)

// bridgeOpts holds the healing parameters of one bridge endpoint.
type bridgeOpts struct {
	heartbeat    time.Duration
	peerTimeout  time.Duration
	reconnectMin time.Duration
	reconnectMax time.Duration
	maxDowntime  time.Duration
	policy       Policy
	firstConnect time.Duration
	inj          *fault.Injector
}

func defaultBridgeOpts() bridgeOpts {
	return bridgeOpts{
		heartbeat:    250 * time.Millisecond,
		peerTimeout:  time.Second,
		reconnectMin: 50 * time.Millisecond,
		reconnectMax: 2 * time.Second,
		maxDowntime:  15 * time.Second,
		policy:       Fail,
		firstConnect: 30 * time.Second,
	}
}

// BridgeOption customizes a bridge endpoint's healing behavior.
type BridgeOption func(*bridgeOpts)

// WithHeartbeat sets the sender's heartbeat period (default 250ms); the
// receiver's liveness deadline defaults to 4x this period.
func WithHeartbeat(d time.Duration) BridgeOption {
	return func(o *bridgeOpts) {
		if d > 0 {
			o.heartbeat = d
			o.peerTimeout = 4 * d
		}
	}
}

// WithPeerTimeout sets the receiver's liveness deadline explicitly.
func WithPeerTimeout(d time.Duration) BridgeOption {
	return func(o *bridgeOpts) {
		if d > 0 {
			o.peerTimeout = d
		}
	}
}

// WithReconnectBackoff sets the reconnect backoff range (default 50ms
// doubling to 2s).
func WithReconnectBackoff(min, max time.Duration) BridgeOption {
	return func(o *bridgeOpts) {
		if min > 0 {
			o.reconnectMin = min
		}
		if max >= o.reconnectMin {
			o.reconnectMax = max
		}
	}
}

// WithMaxDowntime bounds one outage before the degradation policy fires
// (default 15s; 0 parks the endpoint and retries forever).
func WithMaxDowntime(d time.Duration) BridgeOption {
	return func(o *bridgeOpts) { o.maxDowntime = d }
}

// WithPolicy selects the degradation policy (default Fail).
func WithPolicy(p Policy) BridgeOption {
	return func(o *bridgeOpts) { o.policy = p }
}

// WithFirstConnect sets how long endpoints wait for the initial connection
// (default 30s receiver-side).
func WithFirstConnect(d time.Duration) BridgeOption {
	return func(o *bridgeOpts) {
		if d > 0 {
			o.firstConnect = d
		}
	}
}

// WithBridgeFault installs a deterministic fault plan on the endpoint: the
// sender consults it before transmitting each frame (sever / corrupt /
// delay at exact sequence numbers). Pair it with the same injector passed
// to raft.WithFaultInjection for whole-system chaos runs.
func WithBridgeFault(inj *fault.Injector) BridgeOption {
	return func(o *bridgeOpts) { o.inj = inj }
}

// Sender is the producing end of a bridge: a sink kernel with input port
// "in" whose elements are framed, sequenced and encoded onto the TCP
// connection, with unacknowledged frames buffered for replay.
type Sender[T any] struct {
	raft.KernelBase
	addr   string
	stream string
	opt    bridgeOpts

	// mkEnc layers the frame encoder over a fresh connection (compressed
	// bridges swap in a flate layer); nil selects plain gob.
	mkEnc func(conn net.Conn) (enc *gob.Encoder, flush func() error, closeEnc func(), err error)

	mu       sync.Mutex // guards conn, enc, flush, closeEnc
	conn     net.Conn
	enc      *gob.Encoder
	flush    func() error
	closeEnc func()

	nextSeq uint64
	buffer  []frame[T] // unacknowledged frames, ascending Seq
	acked   atomic.Uint64

	// popVals/popSigs are the bulk-pop scratch buffers: one PopN gathers a
	// whole frame from the input stream instead of senderBatch TryPops.
	// Frames copy out of them (the replay buffer must own its memory).
	popVals []T
	popSigs []raft.Signal

	stop     chan struct{}
	stopOnce sync.Once
	started  bool
	gaveUp   bool

	reconnects atomic.Uint64
	replayed   atomic.Uint64
	dropped    atomic.Uint64
	downtimeNs atomic.Int64

	trc bridgeTrace
}

// NewSender returns a bridge sender that will dial the receiver node at
// addr and feed the named stream.
func NewSender[T any](addr, stream string, opts ...BridgeOption) *Sender[T] {
	k := &Sender[T]{addr: addr, stream: stream, opt: defaultBridgeOpts(), stop: make(chan struct{})}
	for _, o := range opts {
		o(&k.opt)
	}
	k.SetName("tcp-send[" + stream + "]")
	raft.AddInput[T](k, "in")
	return k
}

// Init implements raft.Initializer by dialing the receiver and starting
// the heartbeat loop.
func (s *Sender[T]) Init() error {
	if err := s.connect(10 * time.Second); err != nil {
		return fmt.Errorf("oar: sender dial %s: %w", s.addr, err)
	}
	s.started = true
	go s.heartbeatLoop()
	return nil
}

// connect establishes one connection: dial, header, encoder, ack reader.
func (s *Sender[T]) connect(dialTimeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", s.addr, dialTimeout)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(conn, "%s %s\n", hdrStream, s.stream); err != nil {
		conn.Close()
		return err
	}
	var enc *gob.Encoder
	var flush func() error
	var closeEnc func()
	if s.mkEnc != nil {
		enc, flush, closeEnc, err = s.mkEnc(conn)
		if err != nil {
			conn.Close()
			return err
		}
	} else {
		enc = gob.NewEncoder(conn)
	}
	s.mu.Lock()
	s.conn, s.enc, s.flush, s.closeEnc = conn, enc, flush, closeEnc
	s.mu.Unlock()
	// Acks ride the same connection receiver->sender, always uncompressed.
	go s.ackLoop(conn)
	return nil
}

// ackLoop drains acknowledgments from one connection until it dies.
func (s *Sender[T]) ackLoop(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var a ackMsg
		if err := dec.Decode(&a); err != nil {
			return
		}
		for {
			cur := s.acked.Load()
			if a.Seq <= cur || s.acked.CompareAndSwap(cur, a.Seq) {
				break
			}
		}
	}
}

// heartbeatLoop keeps the connection demonstrably alive while the producer
// is idle; a failed heartbeat closes the connection so the next transmit
// reconnects.
func (s *Sender[T]) heartbeatLoop() {
	t := time.NewTicker(s.opt.heartbeat)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			if s.enc != nil {
				err := s.enc.Encode(frame[T]{HB: true})
				if err == nil && s.flush != nil {
					err = s.flush()
				}
				if err != nil && s.conn != nil {
					s.conn.Close()
				}
			}
			s.mu.Unlock()
		}
	}
}

// dropConn abandons the current connection (the ack loop exits on its own).
func (s *Sender[T]) dropConn() {
	s.mu.Lock()
	if s.closeEnc != nil {
		s.closeEnc()
	}
	if s.conn != nil {
		s.conn.Close()
	}
	s.conn, s.enc, s.flush, s.closeEnc = nil, nil, nil, nil
	s.mu.Unlock()
}

// Run implements raft.Kernel: gather a batch, sequence it, transmit with
// replay protection.
func (s *Sender[T]) Run() raft.Status {
	in := s.In("in")
	if s.popVals == nil {
		s.popVals = make([]T, senderBatch)
		s.popSigs = make([]raft.Signal, senderBatch)
	}
	limit := in.BatchHint(senderBatch)
	if limit > senderBatch {
		limit = senderBatch
	} else if limit < 1 {
		limit = 1
	}
	n, err := raft.PopNSig[T](in, s.popVals[:limit], s.popSigs[:limit])
	if n == 0 || err != nil {
		return s.finish()
	}
	f := frame[T]{
		Vals: append([]T(nil), s.popVals[:n]...),
		Sigs: append([]raft.Signal(nil), s.popSigs[:n]...),
	}
	if s.gaveUp {
		s.dropped.Add(uint64(len(f.Vals)))
		return raft.Proceed
	}
	s.nextSeq++
	f.Seq = s.nextSeq
	s.buffer = append(s.buffer, f)
	s.prune()
	if err := s.transmit(f.Seq); err != nil {
		return s.giveUp(err)
	}
	return raft.Proceed
}

// prune discards buffered frames the receiver has acknowledged.
func (s *Sender[T]) prune() {
	acked := s.acked.Load()
	i := 0
	for i < len(s.buffer) && s.buffer[i].Seq <= acked {
		i++
	}
	if i > 0 {
		s.buffer = append(s.buffer[:0], s.buffer[i:]...)
	}
}

// transmit delivers the buffered frame with the given seq to a live
// connection, reconnecting and replaying as needed. A nil return means the
// frame reached a connection (acknowledgment is tracked asynchronously); a
// non-nil return wraps raft.ErrBridgeDown.
func (s *Sender[T]) transmit(seq uint64) error {
	act := fault.ActNone
	if s.opt.inj != nil {
		var delay time.Duration
		act, delay = s.opt.inj.FrameAction(s.stream, seq)
		if delay > 0 {
			time.Sleep(delay)
		}
	}
	switch act {
	case fault.ActSever:
		s.dropConn()
	case fault.ActCorrupt:
		s.mu.Lock()
		if s.conn != nil {
			_, _ = s.conn.Write([]byte("\xde\xad\xbe\xef garbage"))
		}
		s.mu.Unlock()
		s.dropConn()
	default:
		if err := s.encodeSeq(seq); err == nil {
			return nil
		}
		s.dropConn()
	}
	// The frame is safe in the replay buffer; re-establish and replay it
	// (with everything else unacknowledged) on the fresh connection.
	return s.reconnect()
}

// encodeSeq writes the buffered frame with the given seq (no-op if it has
// been acknowledged and pruned meanwhile).
func (s *Sender[T]) encodeSeq(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.enc == nil {
		return fmt.Errorf("oar: stream %q: %w", s.stream, ErrPeerGone)
	}
	for i := range s.buffer {
		if s.buffer[i].Seq == seq {
			if err := s.enc.Encode(s.buffer[i]); err != nil {
				return err
			}
			if s.flush != nil {
				return s.flush()
			}
			return nil
		}
	}
	return nil
}

// AttachTrace implements raft.TraceAttacher.
func (s *Sender[T]) AttachTrace(rec *trace.Recorder, actor int32) { s.trc.AttachTrace(rec, actor) }

// reconnect re-establishes the connection with capped exponential backoff
// and replays every unacknowledged frame. It fails (wrapping
// raft.ErrBridgeDown) once the outage outlasts MaxDowntime.
func (s *Sender[T]) reconnect() error {
	start := time.Now()
	defer func() { s.downtimeNs.Add(int64(time.Since(start))) }()
	s.trc.emit(trace.BridgeDisconnect, s.stream, 0)
	backoff := s.opt.reconnectMin
	for {
		if s.opt.maxDowntime > 0 && time.Since(start) > s.opt.maxDowntime {
			return fmt.Errorf("oar: stream %q: sender down %v: %w",
				s.stream, time.Since(start).Round(time.Millisecond), raft.ErrBridgeDown)
		}
		if err := s.connect(backoff + s.opt.reconnectMin); err == nil {
			replayedBefore := s.replayed.Load()
			if err := s.replay(); err == nil {
				s.reconnects.Add(1)
				s.trc.emit(trace.BridgeReconnect, s.stream, int64(s.reconnects.Load()))
				if n := s.replayed.Load() - replayedBefore; n > 0 {
					s.trc.emit(trace.BridgeReplay, s.stream, int64(n))
				}
				return nil
			}
			s.dropConn()
		}
		select {
		case <-s.stop:
			return fmt.Errorf("oar: stream %q: sender stopped while down: %w", s.stream, raft.ErrBridgeDown)
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > s.opt.reconnectMax {
			backoff = s.opt.reconnectMax
		}
	}
}

// replay retransmits every buffered frame past the acknowledged watermark
// on the fresh connection; the receiver deduplicates by sequence.
func (s *Sender[T]) replay() error {
	s.prune()
	acked := s.acked.Load()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.enc == nil {
		return fmt.Errorf("oar: stream %q: %w", s.stream, ErrPeerGone)
	}
	for i := range s.buffer {
		if s.buffer[i].Seq <= acked {
			continue
		}
		if err := s.enc.Encode(s.buffer[i]); err != nil {
			return err
		}
		s.replayed.Add(1)
	}
	if s.flush != nil {
		return s.flush()
	}
	return nil
}

// giveUp applies the degradation policy to a permanent failure.
func (s *Sender[T]) giveUp(err error) raft.Status {
	if s.opt.policy == Drop {
		s.gaveUp = true
		for _, f := range s.buffer {
			s.dropped.Add(uint64(len(f.Vals)))
		}
		s.buffer = nil
		return raft.Proceed
	}
	s.Raise(err)
	return raft.Stop
}

// finish sequences and transmits the EOF frame, then waits briefly for the
// final acknowledgment so frames replayed during a late outage are not
// abandoned in a dying connection.
func (s *Sender[T]) finish() raft.Status {
	if s.gaveUp || !s.started {
		return raft.Stop
	}
	s.nextSeq++
	s.buffer = append(s.buffer, frame[T]{Seq: s.nextSeq, EOF: true})
	if err := s.transmit(s.nextSeq); err != nil {
		return s.giveUp(err)
	}
	deadline := time.Now().Add(s.opt.peerTimeout)
	for s.acked.Load() < s.nextSeq && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	return raft.Stop
}

// Finalize implements raft.Finalizer by stopping the heartbeat and closing
// the connection.
func (s *Sender[T]) Finalize() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.dropConn()
}

// BridgeStats implements raft.BridgeReporter.
func (s *Sender[T]) BridgeStats() (raft.BridgeReport, bool) {
	return raft.BridgeReport{
		Stream:     s.stream,
		Reconnects: s.reconnects.Load(),
		Replayed:   s.replayed.Load(),
		Dropped:    s.dropped.Load(),
		Downtime:   time.Duration(s.downtimeNs.Load()),
	}, s.started
}

// Receiver is the consuming end of a bridge: a source kernel with output
// port "out" fed by the TCP stream registered on its node, deduplicating
// replayed frames and acknowledging delivery.
type Receiver[T any] struct {
	raft.KernelBase
	node   *Node
	stream string
	accept <-chan net.Conn
	opt    bridgeOpts

	// mkDec layers the frame decoder over a fresh connection (compressed
	// bridges swap in a flate layer); nil selects plain gob.
	mkDec func(conn net.Conn) *gob.Decoder

	conn   net.Conn
	dec    *gob.Decoder
	ackEnc *gob.Encoder

	delivered uint64
	started   bool

	reconnects atomic.Uint64
	downtimeNs atomic.Int64

	trc bridgeTrace
}

// NewReceiver registers the named stream endpoint on node and returns the
// source kernel delivering its elements.
func NewReceiver[T any](node *Node, stream string, opts ...BridgeOption) (*Receiver[T], error) {
	ch, err := node.registerStream(stream)
	if err != nil {
		return nil, err
	}
	k := &Receiver[T]{node: node, stream: stream, accept: ch, opt: defaultBridgeOpts()}
	for _, o := range opts {
		o(&k.opt)
	}
	k.SetName("tcp-recv[" + stream + "]")
	raft.AddOutput[T](k, "out")
	return k, nil
}

// Init implements raft.Initializer by waiting for the sender to connect.
func (r *Receiver[T]) Init() error {
	select {
	case conn := <-r.accept:
		r.setup(conn)
		r.started = true
		return nil
	case <-time.After(r.opt.firstConnect):
		return fmt.Errorf("oar: receiver %q: no sender connected within %v: %w",
			r.stream, r.opt.firstConnect, raft.ErrBridgeDown)
	}
}

// setup adopts one connection.
func (r *Receiver[T]) setup(conn net.Conn) {
	r.conn = conn
	if r.mkDec != nil {
		r.dec = r.mkDec(conn)
	} else {
		r.dec = gob.NewDecoder(conn)
	}
	r.ackEnc = gob.NewEncoder(conn)
}

// dropConn abandons the current connection.
func (r *Receiver[T]) dropConn() {
	if r.conn != nil {
		r.conn.Close()
	}
	r.conn, r.dec, r.ackEnc = nil, nil, nil
}

// Run implements raft.Kernel: decode one frame, deduplicate, deliver, ack.
// Connection failures (timeout, EOF mid-stream, corrupt frames) are
// healed by waiting for the sender's reconnect; an outage outlasting
// MaxDowntime degrades per the policy.
func (r *Receiver[T]) Run() raft.Status {
	for {
		if r.conn == nil {
			if st, done := r.await(); done {
				return st
			}
		}
		_ = r.conn.SetReadDeadline(time.Now().Add(r.opt.peerTimeout))
		var f frame[T]
		if err := r.dec.Decode(&f); err != nil {
			// Transient by classification: the healing protocol owns it.
			r.dropConn()
			continue
		}
		if f.HB {
			continue
		}
		if f.Seq != 0 && f.Seq <= r.delivered {
			// Replayed duplicate: re-acknowledge so the sender prunes it.
			r.ack(f.Seq)
			continue
		}
		if f.EOF {
			r.ack(f.Seq)
			return raft.Stop
		}
		out := r.Out("out")
		if len(f.Sigs) == len(f.Vals) {
			// Whole frame in one bulk push: a single lock acquisition
			// delivers the batch with its signals aligned.
			if err := raft.PushNSig(out, f.Vals, f.Sigs); err != nil {
				return raft.Stop
			}
		} else {
			for i, v := range f.Vals {
				sig := raft.SigNone
				if i < len(f.Sigs) {
					sig = f.Sigs[i]
				}
				if err := raft.PushSig(out, v, sig); err != nil {
					return raft.Stop
				}
			}
		}
		if f.Seq != 0 {
			r.delivered = f.Seq
			r.ack(f.Seq)
		}
		return raft.Proceed
	}
}

// ack reports delivery through Seq; failures are ignored (a dying
// connection means the sender will reconnect and replay, and the
// deduplication window absorbs the repeats).
func (r *Receiver[T]) ack(seq uint64) {
	if r.ackEnc != nil {
		_ = r.ackEnc.Encode(ackMsg{Seq: seq})
	}
}

// AttachTrace implements raft.TraceAttacher.
func (r *Receiver[T]) AttachTrace(rec *trace.Recorder, actor int32) { r.trc.AttachTrace(rec, actor) }

// await blocks until the sender reconnects, or the outage outlasts
// MaxDowntime and the degradation policy fires. done=true carries a final
// kernel status.
func (r *Receiver[T]) await() (raft.Status, bool) {
	start := time.Now()
	defer func() { r.downtimeNs.Add(int64(time.Since(start))) }()
	r.trc.emit(trace.BridgeDisconnect, r.stream, 0)
	var expire <-chan time.Time
	if r.opt.maxDowntime > 0 {
		t := time.NewTimer(r.opt.maxDowntime)
		defer t.Stop()
		expire = t.C
	}
	select {
	case conn := <-r.accept:
		r.setup(conn)
		r.reconnects.Add(1)
		r.trc.emit(trace.BridgeReconnect, r.stream, int64(r.reconnects.Load()))
		return raft.Proceed, false
	case <-expire:
		if r.opt.policy == Fail {
			r.Raise(fmt.Errorf("oar: stream %q: receiver down %v: %w",
				r.stream, time.Since(start).Round(time.Millisecond), raft.ErrBridgeDown))
		}
		return raft.Stop, true
	}
}

// Finalize implements raft.Finalizer by closing the connection.
func (r *Receiver[T]) Finalize() {
	r.dropConn()
}

// BridgeStats implements raft.BridgeReporter.
func (r *Receiver[T]) BridgeStats() (raft.BridgeReport, bool) {
	return raft.BridgeReport{
		Stream:     r.stream,
		Reconnects: r.reconnects.Load(),
		Downtime:   time.Duration(r.downtimeNs.Load()),
	}, r.started
}

// Bridge wires a sender/receiver pair for the named stream terminating at
// recvNode. Link the sender as a sink in the producing map and the
// receiver as a source in the consuming map. Options apply to both ends.
func Bridge[T any](recvNode *Node, stream string, opts ...BridgeOption) (*Sender[T], *Receiver[T], error) {
	recv, err := NewReceiver[T](recvNode, stream, opts...)
	if err != nil {
		return nil, nil, err
	}
	send := NewSender[T](recvNode.Addr(), stream, opts...)
	return send, recv, nil
}

// guard: both endpoints publish recovery counters.
var (
	_ raft.BridgeReporter = (*Sender[int])(nil)
	_ raft.BridgeReporter = (*Receiver[int])(nil)
)
