package oar

import (
	"strings"
	"sync"
	"testing"

	"raftlib/kernels"
	"raftlib/raft"
)

// TestBridgeMarkerSidecar runs the distributed sum with latency markers
// enabled on both halves: the sender must fold in-flight markers into the
// wire sidecar, the receiver must decode them and re-inject them ahead of
// the frame's elements, and the consumer's sink must retire them with a
// "bridge:<stream>" transit hop in the stage attribution. The payload sum
// must stay exact — the sidecar rides beside the data, never inside it.
func TestBridgeMarkerSidecar(t *testing.T) {
	node := newTestNode(t, "marked")
	const n = 20_000

	send, recv, err := Bridge[int64](node, "marked-sum")
	if err != nil {
		t.Fatal(err)
	}

	producer := raft.NewMap()
	if _, err := producer.Link(kernels.NewGenerate(n, func(i int64) int64 { return i }), send); err != nil {
		t.Fatal(err)
	}

	var total int64
	consumer := raft.NewMap()
	red := kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total)
	if _, err := consumer.Link(recv, red); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	reps := make([]*raft.Report, 2)
	wg.Add(2)
	go func() { defer wg.Done(); reps[0], errs[0] = producer.Exe(raft.WithLatencyMarkers(64)) }()
	go func() { defer wg.Done(); reps[1], errs[1] = consumer.Exe(raft.WithLatencyMarkers(64)) }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("map %d: %v", i, err)
		}
	}

	if want := int64(n) * (n - 1) / 2; total != want {
		t.Fatalf("distributed sum with markers = %d, want %d", total, want)
	}
	lat := reps[1].Latency
	if lat == nil {
		t.Fatal("consumer report has no latency section")
	}
	if lat.Retired == 0 {
		t.Fatal("no markers retired on the consumer side")
	}
	var sawBridge bool
	for _, st := range lat.Stages {
		if strings.HasPrefix(st.Stage, "bridge:") {
			sawBridge = true
			if st.Count == 0 {
				t.Fatalf("bridge stage %q has zero marker crossings", st.Stage)
			}
		}
	}
	if !sawBridge {
		t.Fatalf("no bridge transit stage in attribution: %+v", lat.Stages)
	}
}
