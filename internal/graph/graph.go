// Package graph provides the streaming-topology representation and the
// structural checks the runtime performs before execution.
//
// The paper (§4.2): "When the user runs the exe() function of map object,
// the graph is first checked to ensure it is fully connected, then type
// checking is performed across each link." This package implements those
// checks (connectivity, endpoint/type validation hooks, source/sink
// existence, cycle detection) over a lightweight node/edge model that is
// independent of kernel types.
package graph

import (
	"fmt"
	"sort"
)

// Node is one compute kernel in the topology.
type Node struct {
	ID   int
	Name string
	// Weight is a relative cost estimate used by the mapper.
	Weight float64
}

// Edge is one stream between two kernels.
type Edge struct {
	ID       int
	Src, Dst int // node IDs
	SrcPort  string
	DstPort  string
	// TypeName is the element type carried by the stream, used for
	// link type checking.
	TypeName string
	// Weight is an estimated data rate used by the mapper (default 1).
	Weight float64
}

// Graph is a directed multigraph of kernels and streams.
type Graph struct {
	Nodes []Node
	Edges []Edge
}

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(name string, weight float64) int {
	id := len(g.Nodes)
	if weight <= 0 {
		weight = 1
	}
	g.Nodes = append(g.Nodes, Node{ID: id, Name: name, Weight: weight})
	return id
}

// AddEdge appends an edge and returns its ID.
func (g *Graph) AddEdge(src, dst int, srcPort, dstPort, typeName string, weight float64) int {
	id := len(g.Edges)
	if weight <= 0 {
		weight = 1
	}
	g.Edges = append(g.Edges, Edge{
		ID: id, Src: src, Dst: dst,
		SrcPort: srcPort, DstPort: dstPort,
		TypeName: typeName, Weight: weight,
	})
	return id
}

// Out returns the IDs of edges leaving node n.
func (g *Graph) Out(n int) []int {
	var out []int
	for _, e := range g.Edges {
		if e.Src == n {
			out = append(out, e.ID)
		}
	}
	return out
}

// In returns the IDs of edges entering node n.
func (g *Graph) In(n int) []int {
	var in []int
	for _, e := range g.Edges {
		if e.Dst == n {
			in = append(in, e.ID)
		}
	}
	return in
}

// Sources returns nodes with no inbound edges, sorted by ID.
func (g *Graph) Sources() []int {
	return g.degreeZero(func(e Edge) int { return e.Dst })
}

// Sinks returns nodes with no outbound edges, sorted by ID.
func (g *Graph) Sinks() []int {
	return g.degreeZero(func(e Edge) int { return e.Src })
}

func (g *Graph) degreeZero(endpoint func(Edge) int) []int {
	has := make([]bool, len(g.Nodes))
	for _, e := range g.Edges {
		has[endpoint(e)] = true
	}
	var out []int
	for id := range g.Nodes {
		if !has[id] {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// WeaklyConnected reports whether the graph forms a single weakly connected
// component. An empty graph is trivially connected; a graph with nodes but
// no edges is connected only if it has one node.
func (g *Graph) WeaklyConnected() bool {
	n := len(g.Nodes)
	if n <= 1 {
		return true
	}
	adj := make([][]int, n)
	for _, e := range g.Edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// TopoSort returns a topological ordering of node IDs, or an error naming a
// node on a cycle. Streaming graphs executed by the runtime must be acyclic
// (a cycle of blocking FIFOs can deadlock), so exe() rejects cycles.
func (g *Graph) TopoSort() ([]int, error) {
	indeg := make([]int, len(g.Nodes))
	adj := make([][]int, len(g.Nodes))
	for _, e := range g.Edges {
		indeg[e.Dst]++
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	var queue []int
	for id := range g.Nodes {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	sort.Ints(queue)
	var order []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		for id, d := range indeg {
			if d > 0 {
				return nil, fmt.Errorf("graph: cycle involving kernel %q", g.Nodes[id].Name)
			}
		}
	}
	return order, nil
}

// Verify runs the paper's pre-execution structural checks: the graph must
// be non-empty and acyclic, and every kernel must lie on a path fed by a
// source and draining to a sink (isolated kernels are rejected; a map may
// legitimately hold several independent pipelines, so multiple weakly
// connected components are allowed as long as each is well formed —
// port-level completeness is checked separately by the runtime).
func (g *Graph) Verify() error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("graph: no kernels linked")
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	if len(g.Sources()) == 0 {
		return fmt.Errorf("graph: no source kernel (every kernel has inputs)")
	}
	if len(g.Sinks()) == 0 {
		return fmt.Errorf("graph: no sink kernel (every kernel has outputs)")
	}
	// A node that is both a source and a sink is isolated: it was added to
	// the topology but never linked.
	hasIn := make([]bool, len(g.Nodes))
	hasOut := make([]bool, len(g.Nodes))
	for _, e := range g.Edges {
		hasIn[e.Dst] = true
		hasOut[e.Src] = true
	}
	for id := range g.Nodes {
		if !hasIn[id] && !hasOut[id] {
			return fmt.Errorf("graph: kernel %q is isolated (no streams attached)", g.Nodes[id].Name)
		}
	}
	return nil
}
