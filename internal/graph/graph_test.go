package graph

import (
	"reflect"
	"testing"
)

// pipeline builds a linear chain a -> b -> c ... of n nodes.
func pipeline(n int) *Graph {
	g := &Graph{}
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('a'+i)), 1)
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, "out", "in", "int", 1)
	}
	return g
}

func TestAddNodeDefaults(t *testing.T) {
	g := &Graph{}
	id := g.AddNode("k", 0)
	if id != 0 || g.Nodes[0].Weight != 1 {
		t.Fatalf("node = %+v", g.Nodes[0])
	}
}

func TestSourcesAndSinks(t *testing.T) {
	g := pipeline(4)
	if got := g.Sources(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("sources = %v", got)
	}
	if got := g.Sinks(); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("sinks = %v", got)
	}
}

func TestInOutEdges(t *testing.T) {
	g := pipeline(3)
	if got := g.Out(0); len(got) != 1 || g.Edges[got[0]].Dst != 1 {
		t.Fatalf("out(0) = %v", got)
	}
	if got := g.In(2); len(got) != 1 || g.Edges[got[0]].Src != 1 {
		t.Fatalf("in(2) = %v", got)
	}
	if got := g.In(0); got != nil {
		t.Fatalf("in(0) = %v", got)
	}
}

func TestWeaklyConnected(t *testing.T) {
	if !pipeline(5).WeaklyConnected() {
		t.Fatal("pipeline must be connected")
	}
	g := pipeline(2)
	g.AddNode("island", 1)
	if g.WeaklyConnected() {
		t.Fatal("island node must break connectivity")
	}
	empty := &Graph{}
	if !empty.WeaklyConnected() {
		t.Fatal("empty graph is trivially connected")
	}
	single := &Graph{}
	single.AddNode("only", 1)
	if !single.WeaklyConnected() {
		t.Fatal("single node is connected")
	}
}

func TestTopoSortOrder(t *testing.T) {
	// Diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
	g := &Graph{}
	for i := 0; i < 4; i++ {
		g.AddNode("n", 1)
	}
	g.AddEdge(0, 1, "", "", "t", 1)
	g.AddEdge(0, 2, "", "", "t", 1)
	g.AddEdge(1, 3, "", "", "t", 1)
	g.AddEdge(2, 3, "", "", "t", 1)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges {
		if pos[e.Src] >= pos[e.Dst] {
			t.Fatalf("edge %d->%d violates topo order %v", e.Src, e.Dst, order)
		}
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := pipeline(3)
	g.AddEdge(2, 0, "back", "in", "int", 1)
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle must be detected")
	}
	if err := g.Verify(); err == nil {
		t.Fatal("Verify must reject cycles")
	}
}

func TestVerifyAcceptsPipeline(t *testing.T) {
	if err := pipeline(4).Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsEmpty(t *testing.T) {
	if err := (&Graph{}).Verify(); err == nil {
		t.Fatal("empty graph must be rejected")
	}
}

func TestVerifyRejectsIsolatedKernel(t *testing.T) {
	g := pipeline(2)
	g.AddNode("island", 1)
	if err := g.Verify(); err == nil {
		t.Fatal("isolated kernel must be rejected")
	}
}

func TestVerifyAllowsIndependentPipelines(t *testing.T) {
	// Two disjoint pipelines in one map are a legitimate program.
	g := pipeline(2)
	a := g.AddNode("src2", 1)
	b := g.AddNode("sink2", 1)
	g.AddEdge(a, b, "out", "in", "int", 1)
	if err := g.Verify(); err != nil {
		t.Fatalf("independent pipelines rejected: %v", err)
	}
}

func TestVerifyRequiresSourceAndSink(t *testing.T) {
	// Two nodes in a 2-cycle: no source, no sink, and cyclic.
	g := &Graph{}
	g.AddNode("a", 1)
	g.AddNode("b", 1)
	g.AddEdge(0, 1, "", "", "t", 1)
	g.AddEdge(1, 0, "", "", "t", 1)
	if err := g.Verify(); err == nil {
		t.Fatal("cyclic source-less graph must be rejected")
	}
}
