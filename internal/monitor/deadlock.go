package monitor

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"raftlib/internal/core"
)

// Deadlock detection. The runtime treats compute kernels as black boxes
// behind blocking FIFOs, so a mis-designed application — e.g. a kernel
// consuming its two inputs at different rates behind a broadcast — can
// freeze with every kernel parked on a port operation that no other kernel
// will ever complete. Rather than hang, the monitor detects the global
// freeze and aborts the application with a diagnostic naming the parked
// streams.
//
// Detection predicate, evaluated per tick against the link set:
//
//  1. every unfinished actor is parked on at least one of its streams
//     (the producer side reports WriterBlockedFor > 0 or the consumer
//     side ReaderStarvedFor > 0) — a computing kernel is never parked, so
//     long computations cannot be misdiagnosed;
//  2. total push+pop counts — plus supervised restart counts, so a kernel
//     crash-looping through recovery registers as activity rather than a
//     freeze — are unchanged since the previous tick (no in-flight
//     progress racing the scan); and
//  3. 1 and 2 have held continuously for the configured grace period.
//
// The predicate is conservative: adapters that sleep between polls (the
// merge kernel's idle back-off) do not register as parked, so topologies
// containing them simply never satisfy condition 1 — a missed detection,
// never a false abort.

// DeadlockWatch extends a Monitor with freeze detection.
type DeadlockWatch struct {
	// mu guards actors and links: Check runs on the monitor goroutine
	// while graph rewrites splice both sets from the rewriter's.
	mu     sync.Mutex
	actors []*core.Actor
	links  []*core.LinkInfo
	grace  time.Duration
	abort  func(diagnostic string)

	frozenSince time.Time
	lastOps     uint64
	fired       bool
}

// AddActor includes a dynamically-spawned actor in the freeze scan.
func (d *DeadlockWatch) AddActor(a *core.Actor) {
	d.mu.Lock()
	d.actors = append(d.actors, a)
	d.mu.Unlock()
}

// AddLink includes a dynamically-spliced link in the freeze scan.
func (d *DeadlockWatch) AddLink(l *core.LinkInfo) {
	d.mu.Lock()
	d.links = append(d.links, l)
	d.mu.Unlock()
}

// RemoveLink drops a sealed link from the freeze scan (removed actors
// need no counterpart: they finish, and finished actors are skipped).
func (d *DeadlockWatch) RemoveLink(l *core.LinkInfo) {
	d.mu.Lock()
	for i, x := range d.links {
		if x == l {
			d.links = append(d.links[:i], d.links[i+1:]...)
			break
		}
	}
	d.mu.Unlock()
}

// NewDeadlockWatch builds a watcher that calls abort with a diagnostic
// once the application has been globally frozen for the grace period.
func NewDeadlockWatch(actors []*core.Actor, links []*core.LinkInfo, grace time.Duration, abort func(string)) *DeadlockWatch {
	if grace <= 0 {
		grace = time.Second
	}
	return &DeadlockWatch{actors: actors, links: links, grace: grace, abort: abort}
}

// Check evaluates the predicate once; the Monitor calls it per tick.
func (d *DeadlockWatch) Check(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fired {
		return
	}
	frozen, ops := d.frozen()
	if !frozen || ops != d.lastOps {
		d.frozenSince = time.Time{}
		d.lastOps = ops
		return
	}
	if d.frozenSince.IsZero() {
		d.frozenSince = now
		return
	}
	if now.Sub(d.frozenSince) >= d.grace {
		d.fired = true
		d.abort(d.diagnose())
	}
}

// Fired reports whether a deadlock was declared.
func (d *DeadlockWatch) Fired() bool { return d.fired }

// frozen reports whether every unfinished actor is parked, plus the total
// operation count used for the progress check.
func (d *DeadlockWatch) frozen() (bool, uint64) {
	parked := map[int]bool{}
	var ops uint64
	for _, l := range d.links {
		tel := l.Queue.Telemetry()
		ops += tel.Pushes.Load() + tel.Pops.Load()
		if l.Queue.WriterBlockedFor() > 0 {
			parked[l.SrcActor] = true
		}
		if l.Queue.ReaderStarvedFor() > 0 {
			parked[l.DstActor] = true
		}
	}
	unfinished := 0
	for _, a := range d.actors {
		// Supervised restarts are progress: a kernel parked on its input
		// while the supervisor restarts it must not trip the freeze check.
		ops += a.Restarts.Load()
		if a.Finished.Load() {
			continue
		}
		unfinished++
		if !parked[a.ID] {
			return false, ops
		}
	}
	return unfinished > 0, ops
}

// diagnose renders the parked streams for the abort error.
func (d *DeadlockWatch) diagnose() string {
	var b strings.Builder
	b.WriteString("application deadlocked; parked streams:")
	for _, l := range d.links {
		w := l.Queue.WriterBlockedFor()
		r := l.Queue.ReaderStarvedFor()
		if w == 0 && r == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n  %s: len=%d/%d", l.Name, l.Queue.Len(), l.Queue.Cap())
		if w > 0 {
			fmt.Fprintf(&b, " producer blocked %v", w.Round(time.Millisecond))
		}
		if r > 0 {
			fmt.Fprintf(&b, " consumer starved %v", r.Round(time.Millisecond))
		}
	}
	return b.String()
}
