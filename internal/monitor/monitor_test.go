package monitor

import (
	"testing"
	"time"

	"raftlib/internal/core"
	"raftlib/internal/qmodel"
	"raftlib/internal/ringbuffer"
)

func mkLink(capacity int, maxCap int) (*core.LinkInfo, *ringbuffer.Ring[int]) {
	r := ringbuffer.NewRing[int](capacity)
	if maxCap > 0 {
		r.SetMaxCap(maxCap)
	}
	return &core.LinkInfo{Name: "l", Queue: r, ResizeEnabled: true, MaxCap: maxCap}, r
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.Delta != DefaultDelta || c.BlockFactor != 3 || c.GrowFactor != 2 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestTickSamplesOccupancy(t *testing.T) {
	li, r := mkLink(4, 0)
	for i := 0; i < 3; i++ {
		if err := r.Push(i, ringbuffer.SigNone); err != nil {
			t.Fatal(err)
		}
	}
	m := New(Config{}, []*core.LinkInfo{li}, nil)
	m.Tick()
	m.Tick()
	if li.Occupancy.Samples() != 2 {
		t.Fatalf("samples = %d", li.Occupancy.Samples())
	}
	if li.Occupancy.Mean() != 3 {
		t.Fatalf("mean occupancy = %v, want 3", li.Occupancy.Mean())
	}
}

func TestWriteBlockTriggersGrow(t *testing.T) {
	li, r := mkLink(1, 0)
	if err := r.Push(0, ringbuffer.SigNone); err != nil {
		t.Fatal(err)
	}
	// Block a producer.
	done := make(chan error, 1)
	go func() { done <- r.Push(1, ringbuffer.SigNone) }()
	for r.WriterBlockedFor() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	// Wait until the block age exceeds 3δ, then tick manually.
	cfg := Config{Delta: time.Microsecond, Resize: true}
	m := New(cfg, []*core.LinkInfo{li}, nil)
	time.Sleep(time.Millisecond)
	m.Tick()
	if r.Cap() != 2 {
		t.Fatalf("cap after grow = %d, want 2", r.Cap())
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	evs := m.Events()
	if len(evs) != 1 || evs[0].Kind != "grow" || evs[0].From != 1 || evs[0].To != 2 {
		t.Fatalf("events = %+v", evs)
	}
	if m.Resizes() != 1 {
		t.Fatalf("resizes = %d", m.Resizes())
	}
}

func TestGrowRespectsMaxCap(t *testing.T) {
	li, r := mkLink(2, 2) // already at the cap
	_ = r.Push(0, ringbuffer.SigNone)
	_ = r.Push(1, ringbuffer.SigNone)
	go func() { _ = r.Push(2, ringbuffer.SigNone) }()
	for r.WriterBlockedFor() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	m := New(Config{Delta: time.Microsecond, Resize: true}, []*core.LinkInfo{li}, nil)
	time.Sleep(time.Millisecond)
	m.Tick()
	if r.Cap() != 2 {
		t.Fatalf("cap = %d, must not exceed MaxCap", r.Cap())
	}
	r.Close()
}

func TestViewHoldSkipsResize(t *testing.T) {
	li, r := mkLink(1, 0)
	_ = r.Push(0, ringbuffer.SigNone)
	go func() { _ = r.Push(1, ringbuffer.SigNone) }()
	for r.WriterBlockedFor() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	// Borrow a view over the single stored element: the monitor must not
	// resize while the borrow pins the storage epoch, even though the
	// write-side grow rule has fired.
	v, err := r.TryAcquireView(1)
	if err != nil || v.Len() != 1 {
		t.Fatalf("view = %v (len %d)", err, v.Len())
	}
	m := New(Config{Delta: time.Microsecond, Resize: true}, []*core.LinkInfo{li}, nil)
	time.Sleep(time.Millisecond)
	m.Tick()
	if r.Cap() != 1 {
		t.Fatalf("cap = %d, monitor resized under an outstanding view", r.Cap())
	}
	// Release and re-tick: the same evidence must now take effect.
	r.ReleaseView(1)
	m.Tick()
	if r.Cap() != 2 {
		t.Fatalf("cap after release = %d, want 2", r.Cap())
	}
	r.Close()
}

func TestResizeDisabled(t *testing.T) {
	li, r := mkLink(1, 0)
	li.ResizeEnabled = false
	_ = r.Push(0, ringbuffer.SigNone)
	go func() { _ = r.Push(1, ringbuffer.SigNone) }()
	for r.WriterBlockedFor() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	m := New(Config{Delta: time.Microsecond, Resize: true}, []*core.LinkInfo{li}, nil)
	time.Sleep(time.Millisecond)
	m.Tick()
	if r.Cap() != 1 {
		t.Fatalf("cap = %d; per-link disable ignored", r.Cap())
	}
	r.Close()
}

func TestShrinkAfterHysteresis(t *testing.T) {
	li, r := mkLink(64, 0)
	m := New(Config{Delta: time.Microsecond, Resize: true, Shrink: true, ShrinkAfter: 10},
		[]*core.LinkInfo{li}, nil)
	for i := 0; i < 10; i++ {
		m.Tick()
	}
	if r.Cap() != 32 {
		t.Fatalf("cap after shrink = %d, want 32", r.Cap())
	}
	// A busy queue must not shrink.
	for i := 0; i < 30; i++ {
		_ = r.Push(i, ringbuffer.SigNone)
	}
	for i := 0; i < 20; i++ {
		m.Tick()
	}
	if r.Cap() != 32 {
		t.Fatalf("cap = %d; busy queue shrank", r.Cap())
	}
}

type fakeScaler struct {
	name    string
	active  int
	max     int
	in      *core.LinkInfo
	workers []int32
}

func (f *fakeScaler) Name() string               { return f.name }
func (f *fakeScaler) Active() int                { return f.active }
func (f *fakeScaler) Max() int                   { return f.max }
func (f *fakeScaler) SetActive(n int)            { f.active = n }
func (f *fakeScaler) InputLink() *core.LinkInfo  { return f.in }
func (f *fakeScaler) OutputLink() *core.LinkInfo { return nil }
func (f *fakeScaler) WorkerActors() []int32      { return f.workers }

func TestAutoScaleUpOnPressure(t *testing.T) {
	li, r := mkLink(4, 4)
	li.ResizeEnabled = false
	for i := 0; i < 4; i++ { // keep the input queue full
		_ = r.Push(i, ringbuffer.SigNone)
	}
	sc := &fakeScaler{name: "grp", active: 1, max: 4, in: li}
	m := New(Config{Delta: time.Microsecond, AutoScale: true, ScaleWindow: 8},
		[]*core.LinkInfo{li}, []core.Scaler{sc})
	for i := 0; i < 8; i++ {
		m.Tick()
	}
	if sc.active != 2 {
		t.Fatalf("active = %d, want scaled to 2", sc.active)
	}
	evs := m.Events()
	if len(evs) == 0 || evs[len(evs)-1].Kind != "scale-up" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestAutoScaleDownWhenIdle(t *testing.T) {
	li, _ := mkLink(4, 4)
	li.ResizeEnabled = false
	sc := &fakeScaler{name: "grp", active: 3, max: 4, in: li}
	m := New(Config{Delta: time.Microsecond, AutoScale: true, ScaleWindow: 8},
		[]*core.LinkInfo{li}, []core.Scaler{sc})
	for i := 0; i < 8; i++ { // queue stays empty
		m.Tick()
	}
	if sc.active != 2 {
		t.Fatalf("active = %d, want scaled down to 2", sc.active)
	}
}

func TestAutoScaleNilInputLink(t *testing.T) {
	sc := &fakeScaler{name: "grp", active: 1, max: 4, in: nil}
	m := New(Config{Delta: time.Microsecond, AutoScale: true, ScaleWindow: 2}, nil, []core.Scaler{sc})
	m.Tick()
	m.Tick() // must not panic
	if sc.active != 1 {
		t.Fatalf("active changed to %d with no input link", sc.active)
	}
}

func TestStartStopLifecycle(t *testing.T) {
	li, _ := mkLink(4, 0)
	m := New(Config{Delta: 100 * time.Microsecond}, []*core.LinkInfo{li}, nil)
	m.Start()
	deadline := time.Now().Add(2 * time.Second)
	for m.Ticks() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("monitor loop did not tick")
		}
		time.Sleep(time.Millisecond)
	}
	m.Stop()
	m.Stop() // idempotent
	n := m.Ticks()
	time.Sleep(5 * time.Millisecond)
	if m.Ticks() != n {
		t.Fatal("monitor ticked after Stop")
	}
}

// TestAdaptiveBatchGrowsUnderContention drives the batcher deterministically:
// a near-full queue with elements flowing must grow the link's batch ×4 each
// window, capped at min(BatchMax, cap/2).
func TestAdaptiveBatchGrowsUnderContention(t *testing.T) {
	li, r := mkLink(16, 0)
	li.ResizeEnabled = false
	li.Batch = &core.BatchControl{}
	for i := 0; i < 12; i++ { // >= cap/2 every tick
		_ = r.Push(i, ringbuffer.SigNone)
	}
	m := New(Config{Delta: time.Microsecond, AdaptiveBatch: true, BatchWindow: 4, BatchMax: 256},
		[]*core.LinkInfo{li}, nil)
	for w := 0; w < 4; w++ {
		// Keep elements flowing so Pushes advances between windows.
		_, _, _, _ = r.TryPop()
		_ = r.Push(100+w, ringbuffer.SigNone)
		for i := 0; i < 4; i++ {
			m.Tick()
		}
	}
	// 1 -> 4 -> 8, then capped at cap/2 = 8.
	if got := li.Batch.Get(); got != 8 {
		t.Fatalf("batch = %d, want 8 (cap/2)", got)
	}
	evs := m.Events()
	if len(evs) == 0 || evs[0].Kind != "batch-up" {
		t.Fatalf("events = %+v, want batch-up", evs)
	}
}

// TestAdaptiveBatchShrinksWhenIdle halves the batch once the link runs
// empty for a window.
func TestAdaptiveBatchShrinksWhenIdle(t *testing.T) {
	li, _ := mkLink(16, 0)
	li.ResizeEnabled = false
	li.Batch = &core.BatchControl{}
	li.Batch.Set(8)
	m := New(Config{Delta: time.Microsecond, AdaptiveBatch: true, BatchWindow: 4},
		[]*core.LinkInfo{li}, nil)
	for i := 0; i < 4; i++ { // queue stays empty
		m.Tick()
	}
	if got := li.Batch.Get(); got != 4 {
		t.Fatalf("batch = %d, want halved to 4", got)
	}
	evs := m.Events()
	if len(evs) != 1 || evs[0].Kind != "batch-down" || evs[0].From != 8 || evs[0].To != 4 {
		t.Fatalf("events = %+v", evs)
	}
}

// TestAdaptiveBatchSkipsPinned leaves latency-priority (pinned) links alone.
func TestAdaptiveBatchSkipsPinned(t *testing.T) {
	li, r := mkLink(16, 0)
	li.ResizeEnabled = false
	li.Batch = &core.BatchControl{}
	li.Batch.Pin(1)
	for i := 0; i < 12; i++ {
		_ = r.Push(i, ringbuffer.SigNone)
	}
	m := New(Config{Delta: time.Microsecond, AdaptiveBatch: true, BatchWindow: 2},
		[]*core.LinkInfo{li}, nil)
	for i := 0; i < 10; i++ {
		_, _, _, _ = r.TryPop()
		_ = r.Push(100+i, ringbuffer.SigNone)
		m.Tick()
	}
	if got := li.Batch.Get(); got != 1 {
		t.Fatalf("pinned batch changed to %d", got)
	}
	if evs := m.Events(); len(evs) != 0 {
		t.Fatalf("events on pinned link: %+v", evs)
	}
}

// TestAdaptiveBatchNilControl must not panic on links without a control
// (hand-built LinkInfo).
func TestAdaptiveBatchNilControl(t *testing.T) {
	li, _ := mkLink(16, 0)
	li.ResizeEnabled = false
	m := New(Config{Delta: time.Microsecond, AdaptiveBatch: true, BatchWindow: 2},
		[]*core.LinkInfo{li}, nil)
	m.Tick()
	m.Tick()
}

// primedEstimator builds a qmodel.Estimator for one link (index 0, dst
// kernel id 1) primed to a chosen utilization: each synthetic window moves
// n elements with the consumer blocked for blockedFrac of the window, so
// λ̂ = n/window and µ̂ = n/(window×(1−blockedFrac)), i.e. ρ̂ ≈ blockedFrac's
// complement. Windows are stamped an hour in the future so the monitor's
// own Tick(time.Now()) calls land before the estimator's last fold and
// cannot disturb the primed state.
func primedEstimator(t *testing.T, n uint64, blockedFrac float64, workerIDs ...int32) *qmodel.Estimator {
	t.Helper()
	if len(workerIDs) == 0 {
		workerIDs = []int32{1}
	}
	var runs, pushes, pops, blkR uint64
	kts := make([]qmodel.KernelTap, len(workerIDs))
	for i, id := range workerIDs {
		kts[i] = qmodel.KernelTap{Name: "k", ID: id, Runs: func() uint64 { return runs }}
	}
	lts := []qmodel.LinkTap{{
		Name: "l", Src: 0, Dst: workerIDs[0],
		Flow:  func() (uint64, uint64) { return pushes, pops },
		Block: func() (uint64, uint64) { return 0, blkR },
		Occ:   func() (uint64, float64) { return pushes, 0 },
		Len:   func() int { return 0 },
		Cap:   func() int { return 1024 },
	}}
	est := qmodel.NewEstimator(qmodel.EstimatorConfig{}, nil, kts, lts)
	window := 2 * time.Millisecond
	now := time.Now().Add(time.Hour)
	est.Tick(now)
	for i := 0; i < 10; i++ {
		pushes += n
		pops += n
		runs += n
		blkR += uint64(blockedFrac * float64(window.Nanoseconds()))
		now = now.Add(window)
		est.Tick(now)
	}
	return est
}

// TestRateControlBatchUpOnHotLink: under rate control a link at ρ̂≈0.9
// grows its batch on the utilization signal alone — queue near-empty, no
// blocking evidence anywhere.
func TestRateControlBatchUpOnHotLink(t *testing.T) {
	est := primedEstimator(t, 1000, 0.1) // ρ̂ ≈ 0.9 > RhoGrow 0.7
	li, r := mkLink(16, 0)
	li.ResizeEnabled = false
	li.Batch = &core.BatchControl{}
	m := New(Config{Delta: time.Microsecond, AdaptiveBatch: true, BatchWindow: 4,
		BatchMax: 256, Rates: est, RateControl: true},
		[]*core.LinkInfo{li}, nil)
	// Elements flow (moved > 0) but the queue never fills or blocks.
	_ = r.Push(1, ringbuffer.SigNone)
	_, _, _, _ = r.TryPop()
	for i := 0; i < 4; i++ {
		m.Tick()
	}
	if got := li.Batch.Get(); got != 4 {
		t.Fatalf("batch = %d, want grown to 4 on ρ̂ alone", got)
	}
	evs := m.Events()
	if len(evs) != 1 || evs[0].Kind != "batch-up" {
		t.Fatalf("events = %+v", evs)
	}
}

// TestRateControlSuppressesStarvationNoise: consumer-starvation blocking
// counts as contended-window evidence, so the heuristic batches a link
// whose consumer is merely idle; the rate controller reads ρ̂≈0.25 and
// leaves the batch alone.
func TestRateControlSuppressesStarvationNoise(t *testing.T) {
	li, r := mkLink(16, 0)
	li.ResizeEnabled = false
	li.Batch = &core.BatchControl{}
	// Manufacture genuine read-block evidence: a consumer waits on the
	// empty ring until a push releases it.
	popped := make(chan error, 1)
	go func() {
		_, _, err := r.Pop()
		popped <- err
	}()
	for r.ReaderStarvedFor() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	_ = r.Push(1, ringbuffer.SigNone)
	if err := <-popped; err != nil {
		t.Fatal(err)
	}

	est := primedEstimator(t, 1000, 0.75) // ρ̂ ≈ 0.25 < RhoGrow
	rc := New(Config{Delta: time.Microsecond, AdaptiveBatch: true, BatchWindow: 4,
		BatchMax: 256, Rates: est, RateControl: true},
		[]*core.LinkInfo{li}, nil)
	for i := 0; i < 4; i++ {
		rc.Tick()
	}
	if got := li.Batch.Get(); got > 1 {
		t.Fatalf("rate controller batched an underloaded link: batch = %d", got)
	}

	// The same telemetry drives the heuristic to batch-up — the behavior
	// the discriminating controller exists to avoid.
	h := New(Config{Delta: time.Microsecond, AdaptiveBatch: true, BatchWindow: 4,
		BatchMax: 256}, []*core.LinkInfo{li}, nil)
	for i := 0; i < 4; i++ {
		h.Tick()
	}
	if got := li.Batch.Get(); got <= 1 {
		t.Fatalf("heuristic did not batch on blocking evidence: batch = %d", got)
	}
}

// TestRateWidthScalesUpTowardMMcTarget: with λ̂ near the per-replica µ̂,
// MinServersWait picks width 2 and the monitor steps up — even though the
// input queue is empty, which would have made the heuristic scale DOWN.
// The step is ±1 per window, never a slam to the target.
func TestRateWidthScalesUpTowardMMcTarget(t *testing.T) {
	est := primedEstimator(t, 1000, 0.05) // λ̂=500k, µ̂≈526k: ρ≈0.95
	li, _ := mkLink(16, 16)
	li.ResizeEnabled = false
	sc := &fakeScaler{name: "grp", active: 1, max: 4, in: li, workers: []int32{1}}
	m := New(Config{Delta: time.Microsecond, AutoScale: true, ScaleWindow: 2,
		Rates: est, RateControl: true},
		[]*core.LinkInfo{li}, []core.Scaler{sc})
	m.Tick()
	m.Tick()
	if sc.active != 2 {
		t.Fatalf("active = %d, want stepped up to 2 on predicted wait", sc.active)
	}
	evs := m.Events()
	if len(evs) != 1 || evs[0].Kind != "scale-up" {
		t.Fatalf("events = %+v", evs)
	}
}

// TestRateWidthScalesDownWhenOverProvisioned: a lightly loaded group steps
// back toward the model's single-replica target one step per window.
func TestRateWidthScalesDownWhenOverProvisioned(t *testing.T) {
	est := primedEstimator(t, 100, 0.5) // λ̂=50k, µ̂=100k: c=1 suffices
	li, _ := mkLink(16, 16)
	li.ResizeEnabled = false
	sc := &fakeScaler{name: "grp", active: 3, max: 4, in: li, workers: []int32{1}}
	m := New(Config{Delta: time.Microsecond, AutoScale: true, ScaleWindow: 2,
		Rates: est, RateControl: true},
		[]*core.LinkInfo{li}, []core.Scaler{sc})
	m.Tick()
	m.Tick()
	if sc.active != 2 {
		t.Fatalf("active = %d after one window, want 2 (±1 stepping)", sc.active)
	}
	m.Tick()
	m.Tick()
	if sc.active != 1 {
		t.Fatalf("active = %d after two windows, want 1", sc.active)
	}
}

// TestRateWidthFallsBackUnprimed: an unprimed estimator must leave the
// decision to the contended-window heuristic (here: empty queue, scale
// down), not freeze the group.
func TestRateWidthFallsBackUnprimed(t *testing.T) {
	est := qmodel.NewEstimator(qmodel.EstimatorConfig{}, nil,
		[]qmodel.KernelTap{{Name: "k", ID: 1, Runs: func() uint64 { return 0 }}},
		[]qmodel.LinkTap{{Name: "l", Src: 0, Dst: 1,
			Flow: func() (uint64, uint64) { return 0, 0 },
			Occ:  func() (uint64, float64) { return 0, 0 },
			Len:  func() int { return 0 },
			Cap:  func() int { return 16 }}})
	li, _ := mkLink(4, 4)
	li.ResizeEnabled = false
	sc := &fakeScaler{name: "grp", active: 3, max: 4, in: li, workers: []int32{1}}
	m := New(Config{Delta: time.Microsecond, AutoScale: true, ScaleWindow: 8,
		Rates: est, RateControl: true},
		[]*core.LinkInfo{li}, []core.Scaler{sc})
	for i := 0; i < 8; i++ {
		m.Tick()
	}
	if sc.active != 2 {
		t.Fatalf("active = %d, want heuristic scale-down to 2", sc.active)
	}
}
