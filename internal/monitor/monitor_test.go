package monitor

import (
	"testing"
	"time"

	"raftlib/internal/core"
	"raftlib/internal/ringbuffer"
)

func mkLink(capacity int, maxCap int) (*core.LinkInfo, *ringbuffer.Ring[int]) {
	r := ringbuffer.NewRing[int](capacity)
	if maxCap > 0 {
		r.SetMaxCap(maxCap)
	}
	return &core.LinkInfo{Name: "l", Queue: r, ResizeEnabled: true, MaxCap: maxCap}, r
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.Delta != DefaultDelta || c.BlockFactor != 3 || c.GrowFactor != 2 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestTickSamplesOccupancy(t *testing.T) {
	li, r := mkLink(4, 0)
	for i := 0; i < 3; i++ {
		if err := r.Push(i, ringbuffer.SigNone); err != nil {
			t.Fatal(err)
		}
	}
	m := New(Config{}, []*core.LinkInfo{li}, nil)
	m.Tick()
	m.Tick()
	if li.Occupancy.Samples() != 2 {
		t.Fatalf("samples = %d", li.Occupancy.Samples())
	}
	if li.Occupancy.Mean() != 3 {
		t.Fatalf("mean occupancy = %v, want 3", li.Occupancy.Mean())
	}
}

func TestWriteBlockTriggersGrow(t *testing.T) {
	li, r := mkLink(1, 0)
	if err := r.Push(0, ringbuffer.SigNone); err != nil {
		t.Fatal(err)
	}
	// Block a producer.
	done := make(chan error, 1)
	go func() { done <- r.Push(1, ringbuffer.SigNone) }()
	for r.WriterBlockedFor() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	// Wait until the block age exceeds 3δ, then tick manually.
	cfg := Config{Delta: time.Microsecond, Resize: true}
	m := New(cfg, []*core.LinkInfo{li}, nil)
	time.Sleep(time.Millisecond)
	m.Tick()
	if r.Cap() != 2 {
		t.Fatalf("cap after grow = %d, want 2", r.Cap())
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	evs := m.Events()
	if len(evs) != 1 || evs[0].Kind != "grow" || evs[0].From != 1 || evs[0].To != 2 {
		t.Fatalf("events = %+v", evs)
	}
	if m.Resizes() != 1 {
		t.Fatalf("resizes = %d", m.Resizes())
	}
}

func TestGrowRespectsMaxCap(t *testing.T) {
	li, r := mkLink(2, 2) // already at the cap
	_ = r.Push(0, ringbuffer.SigNone)
	_ = r.Push(1, ringbuffer.SigNone)
	go func() { _ = r.Push(2, ringbuffer.SigNone) }()
	for r.WriterBlockedFor() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	m := New(Config{Delta: time.Microsecond, Resize: true}, []*core.LinkInfo{li}, nil)
	time.Sleep(time.Millisecond)
	m.Tick()
	if r.Cap() != 2 {
		t.Fatalf("cap = %d, must not exceed MaxCap", r.Cap())
	}
	r.Close()
}

func TestResizeDisabled(t *testing.T) {
	li, r := mkLink(1, 0)
	li.ResizeEnabled = false
	_ = r.Push(0, ringbuffer.SigNone)
	go func() { _ = r.Push(1, ringbuffer.SigNone) }()
	for r.WriterBlockedFor() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	m := New(Config{Delta: time.Microsecond, Resize: true}, []*core.LinkInfo{li}, nil)
	time.Sleep(time.Millisecond)
	m.Tick()
	if r.Cap() != 1 {
		t.Fatalf("cap = %d; per-link disable ignored", r.Cap())
	}
	r.Close()
}

func TestShrinkAfterHysteresis(t *testing.T) {
	li, r := mkLink(64, 0)
	m := New(Config{Delta: time.Microsecond, Resize: true, Shrink: true, ShrinkAfter: 10},
		[]*core.LinkInfo{li}, nil)
	for i := 0; i < 10; i++ {
		m.Tick()
	}
	if r.Cap() != 32 {
		t.Fatalf("cap after shrink = %d, want 32", r.Cap())
	}
	// A busy queue must not shrink.
	for i := 0; i < 30; i++ {
		_ = r.Push(i, ringbuffer.SigNone)
	}
	for i := 0; i < 20; i++ {
		m.Tick()
	}
	if r.Cap() != 32 {
		t.Fatalf("cap = %d; busy queue shrank", r.Cap())
	}
}

type fakeScaler struct {
	name   string
	active int
	max    int
	in     *core.LinkInfo
}

func (f *fakeScaler) Name() string               { return f.name }
func (f *fakeScaler) Active() int                { return f.active }
func (f *fakeScaler) Max() int                   { return f.max }
func (f *fakeScaler) SetActive(n int)            { f.active = n }
func (f *fakeScaler) InputLink() *core.LinkInfo  { return f.in }
func (f *fakeScaler) OutputLink() *core.LinkInfo { return nil }

func TestAutoScaleUpOnPressure(t *testing.T) {
	li, r := mkLink(4, 4)
	li.ResizeEnabled = false
	for i := 0; i < 4; i++ { // keep the input queue full
		_ = r.Push(i, ringbuffer.SigNone)
	}
	sc := &fakeScaler{name: "grp", active: 1, max: 4, in: li}
	m := New(Config{Delta: time.Microsecond, AutoScale: true, ScaleWindow: 8},
		[]*core.LinkInfo{li}, []core.Scaler{sc})
	for i := 0; i < 8; i++ {
		m.Tick()
	}
	if sc.active != 2 {
		t.Fatalf("active = %d, want scaled to 2", sc.active)
	}
	evs := m.Events()
	if len(evs) == 0 || evs[len(evs)-1].Kind != "scale-up" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestAutoScaleDownWhenIdle(t *testing.T) {
	li, _ := mkLink(4, 4)
	li.ResizeEnabled = false
	sc := &fakeScaler{name: "grp", active: 3, max: 4, in: li}
	m := New(Config{Delta: time.Microsecond, AutoScale: true, ScaleWindow: 8},
		[]*core.LinkInfo{li}, []core.Scaler{sc})
	for i := 0; i < 8; i++ { // queue stays empty
		m.Tick()
	}
	if sc.active != 2 {
		t.Fatalf("active = %d, want scaled down to 2", sc.active)
	}
}

func TestAutoScaleNilInputLink(t *testing.T) {
	sc := &fakeScaler{name: "grp", active: 1, max: 4, in: nil}
	m := New(Config{Delta: time.Microsecond, AutoScale: true, ScaleWindow: 2}, nil, []core.Scaler{sc})
	m.Tick()
	m.Tick() // must not panic
	if sc.active != 1 {
		t.Fatalf("active changed to %d with no input link", sc.active)
	}
}

func TestStartStopLifecycle(t *testing.T) {
	li, _ := mkLink(4, 0)
	m := New(Config{Delta: 100 * time.Microsecond}, []*core.LinkInfo{li}, nil)
	m.Start()
	deadline := time.Now().Add(2 * time.Second)
	for m.Ticks() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("monitor loop did not tick")
		}
		time.Sleep(time.Millisecond)
	}
	m.Stop()
	m.Stop() // idempotent
	n := m.Ticks()
	time.Sleep(5 * time.Millisecond)
	if m.Ticks() != n {
		t.Fatal("monitor ticked after Stop")
	}
}

// TestAdaptiveBatchGrowsUnderContention drives the batcher deterministically:
// a near-full queue with elements flowing must grow the link's batch ×4 each
// window, capped at min(BatchMax, cap/2).
func TestAdaptiveBatchGrowsUnderContention(t *testing.T) {
	li, r := mkLink(16, 0)
	li.ResizeEnabled = false
	li.Batch = &core.BatchControl{}
	for i := 0; i < 12; i++ { // >= cap/2 every tick
		_ = r.Push(i, ringbuffer.SigNone)
	}
	m := New(Config{Delta: time.Microsecond, AdaptiveBatch: true, BatchWindow: 4, BatchMax: 256},
		[]*core.LinkInfo{li}, nil)
	for w := 0; w < 4; w++ {
		// Keep elements flowing so Pushes advances between windows.
		_, _, _, _ = r.TryPop()
		_ = r.Push(100+w, ringbuffer.SigNone)
		for i := 0; i < 4; i++ {
			m.Tick()
		}
	}
	// 1 -> 4 -> 8, then capped at cap/2 = 8.
	if got := li.Batch.Get(); got != 8 {
		t.Fatalf("batch = %d, want 8 (cap/2)", got)
	}
	evs := m.Events()
	if len(evs) == 0 || evs[0].Kind != "batch-up" {
		t.Fatalf("events = %+v, want batch-up", evs)
	}
}

// TestAdaptiveBatchShrinksWhenIdle halves the batch once the link runs
// empty for a window.
func TestAdaptiveBatchShrinksWhenIdle(t *testing.T) {
	li, _ := mkLink(16, 0)
	li.ResizeEnabled = false
	li.Batch = &core.BatchControl{}
	li.Batch.Set(8)
	m := New(Config{Delta: time.Microsecond, AdaptiveBatch: true, BatchWindow: 4},
		[]*core.LinkInfo{li}, nil)
	for i := 0; i < 4; i++ { // queue stays empty
		m.Tick()
	}
	if got := li.Batch.Get(); got != 4 {
		t.Fatalf("batch = %d, want halved to 4", got)
	}
	evs := m.Events()
	if len(evs) != 1 || evs[0].Kind != "batch-down" || evs[0].From != 8 || evs[0].To != 4 {
		t.Fatalf("events = %+v", evs)
	}
}

// TestAdaptiveBatchSkipsPinned leaves latency-priority (pinned) links alone.
func TestAdaptiveBatchSkipsPinned(t *testing.T) {
	li, r := mkLink(16, 0)
	li.ResizeEnabled = false
	li.Batch = &core.BatchControl{}
	li.Batch.Pin(1)
	for i := 0; i < 12; i++ {
		_ = r.Push(i, ringbuffer.SigNone)
	}
	m := New(Config{Delta: time.Microsecond, AdaptiveBatch: true, BatchWindow: 2},
		[]*core.LinkInfo{li}, nil)
	for i := 0; i < 10; i++ {
		_, _, _, _ = r.TryPop()
		_ = r.Push(100+i, ringbuffer.SigNone)
		m.Tick()
	}
	if got := li.Batch.Get(); got != 1 {
		t.Fatalf("pinned batch changed to %d", got)
	}
	if evs := m.Events(); len(evs) != 0 {
		t.Fatalf("events on pinned link: %+v", evs)
	}
}

// TestAdaptiveBatchNilControl must not panic on links without a control
// (hand-built LinkInfo).
func TestAdaptiveBatchNilControl(t *testing.T) {
	li, _ := mkLink(16, 0)
	li.ResizeEnabled = false
	m := New(Config{Delta: time.Microsecond, AdaptiveBatch: true, BatchWindow: 2},
		[]*core.LinkInfo{li}, nil)
	m.Tick()
	m.Tick()
}
