// Package monitor implements RaftLib's run-time optimization loop.
//
// The paper (§4.1) describes a monitoring thread updated every δ ← 10 µs
// that (a) samples queue state for the performance instrumentation, (b)
// resizes FIFOs dynamically — growing a queue whose writer has been blocked
// for 3×δ, and handling consumers that request more items than the queue
// can hold — and (c) drives coarser re-optimization such as widening a
// replicated kernel group when it is the bottleneck.
//
// The defaults here follow the paper's constants where practical: Delta
// defaults to 10 µs (Go's sleep granularity makes the effective tick a few
// tens of microseconds on most systems, which the occupancy sampler simply
// reflects), and the write-side trigger is WriterBlockedFor() >= 3×Delta.
// Read-side over-demand is satisfied synchronously by the ring itself (see
// internal/ringbuffer); the monitor additionally observes PendingDemand for
// reporting.
package monitor

import (
	"sync"
	"time"

	"raftlib/internal/core"
	"raftlib/internal/qmodel"
	"raftlib/internal/ringbuffer"
	"raftlib/internal/trace"
)

// Config tunes the monitor loop.
type Config struct {
	// Delta is the monitor tick period (paper: 10 µs). <=0 selects the
	// default.
	Delta time.Duration
	// Resize enables the dynamic queue resizing rules.
	Resize bool
	// BlockFactor is the write-block multiple of Delta that triggers a grow
	// (paper: 3). <=0 selects 3.
	BlockFactor int
	// GrowFactor multiplies capacity on a grow (<=1 selects 2).
	GrowFactor int
	// Shrink enables conservative queue shrinking: a queue whose mean
	// occupancy stays below 1/8 of capacity for ShrinkAfter consecutive
	// ticks (and whose writer is not blocked) is halved.
	Shrink bool
	// ShrinkAfter is the hysteresis tick count for shrinking (<=0: 1000).
	ShrinkAfter int
	// AutoScale enables dynamic widening/narrowing of replicated kernel
	// groups via their Scalers.
	AutoScale bool
	// AdaptiveBatch enables the per-link batch-size controller: links whose
	// endpoints demonstrably contend (blocked time or spin escalations
	// accruing, or sustained near-full occupancy) have their transfer batch
	// grown ×4 per window toward BatchMax, amortizing synchronization;
	// links that go idle are halved back toward 1 so latency does not hide
	// in stale batches. Latency-priority links (pinned controls) are
	// bypassed. The ramp is deliberately steep: on loaded hosts the monitor
	// goroutine itself is contended, so windows are scarce.
	AdaptiveBatch bool
	// BatchMax caps the adaptive batch size (<=0 selects 256). A link's
	// batch is additionally capped at half its queue capacity so one
	// endpoint can never monopolize the whole buffer per hop.
	BatchMax int
	// BatchWindow is the number of ticks between batch decisions (<=0: 32).
	BatchWindow int
	// ScaleUpFullFrac: widen when the group input queue has been observed
	// near-full in at least this fraction of recent ticks (default 0.5).
	ScaleUpFullFrac float64
	// ScaleWindow is the number of ticks between scaling decisions
	// (default 64).
	ScaleWindow int
	// Trace, when non-nil, additionally publishes every decision on the
	// run's telemetry bus so resizes, batch moves and width changes land
	// on the same timeline as kernel invocations.
	Trace *trace.Recorder
	// Rates, when non-nil with RateControl set, is the online λ̂/µ̂
	// estimator. The monitor drives its Tick and consumes its estimates;
	// estimator link index i MUST correspond to links[i] passed to New
	// (raft keeps the two aligned when it builds the taps).
	Rates *qmodel.Estimator
	// RateControl switches the batcher and scaler from the contended-
	// window heuristics to estimator-driven decisions: batch growth
	// starts when ρ̂ crosses RhoGrow or the occupancy derivative predicts
	// a half-full queue within the next batch window (before any
	// blocking), and the replica scaler steps toward the
	// qmodel.MinServersWait width for the measured λ̂ and per-replica µ̂.
	// Links and groups whose estimates are not yet primed fall back to
	// the heuristics, so enabling this is never worse than leaving it off.
	RateControl bool
	// RhoGrow is the utilization ρ̂ = λ̂/µ̂ above which a link's batch is
	// grown pre-emptively (<=0: 0.7).
	RhoGrow float64
	// WaitFactor sets the scaler's waiting-time target as a multiple of
	// the per-replica mean service time: Wq ≤ WaitFactor/µ̂ (<=0: 2).
	WaitFactor float64
}

// DefaultDelta is the paper's monitor update period.
const DefaultDelta = 10 * time.Microsecond

func (c *Config) fill() {
	if c.Delta <= 0 {
		c.Delta = DefaultDelta
	}
	if c.BlockFactor <= 0 {
		c.BlockFactor = 3
	}
	if c.GrowFactor <= 1 {
		c.GrowFactor = 2
	}
	if c.ShrinkAfter <= 0 {
		c.ShrinkAfter = 1000
	}
	if c.ScaleUpFullFrac <= 0 {
		c.ScaleUpFullFrac = 0.5
	}
	if c.ScaleWindow <= 0 {
		c.ScaleWindow = 64
	}
	if c.BatchMax <= 0 {
		c.BatchMax = DefaultBatchMax
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 32
	}
	if c.RhoGrow <= 0 {
		c.RhoGrow = 0.7
	}
	if c.WaitFactor <= 0 {
		c.WaitFactor = 2
	}
}

// DefaultBatchMax is the adaptive batcher's default size ceiling.
const DefaultBatchMax = 256

// linkState carries one link's monitor bookkeeping. Links used to be
// tracked in parallel index-keyed slices; graph rewrites add and remove
// links mid-run, so the state now travels with the link record and only
// estIdx remembers the estimator slot (taps are built at Exe — links
// added dynamically have no estimator slot and run the heuristics).
type linkState struct {
	l *core.LinkInfo
	// estIdx is the link's index in the rate estimator's tap table, or -1
	// for dynamically-added links (estimator rules skipped).
	estIdx int
	// shrink hysteresis counter
	quiet int
	// adaptive batcher state
	batchTick  int
	batchFull  int
	batchEmpty int
	prevTel    ringbuffer.TelemetrySnapshot
	// drop watcher state (best-effort links only)
	dropTick int
	dropSeen uint64
}

// Monitor periodically samples and re-optimizes a running streaming graph.
type Monitor struct {
	cfg     Config
	scalers []core.Scaler
	linkIdx map[*core.LinkInfo]int // static link identity → estimator link index

	stop chan struct{}
	done chan struct{}
	once sync.Once

	// linksMu guards the copy-on-write links slice: Tick snapshots the
	// header; AddLink/RemoveLink publish a fresh slice, so a tick in
	// flight finishes over the structure it started with.
	linksMu sync.Mutex
	links   []*linkState

	// per-scaler tick state (the scaler set stays static; replication
	// width is its own dynamic axis)
	scaleTick  []int
	fullTicks  []int
	emptyTicks []int

	mu      sync.Mutex
	events  []Event
	ticks   uint64
	resizes uint64

	deadlock *DeadlockWatch
}

// SetDeadlockWatch attaches a freeze detector evaluated every tick. Call
// before Start.
func (m *Monitor) SetDeadlockWatch(w *DeadlockWatch) { m.deadlock = w }

// Event records one monitor decision, for reports and tests.
type Event struct {
	At     time.Time
	Kind   string // "grow", "shrink", "scale-up", "scale-down"
	Target string // link or group name
	From   int
	To     int
}

// New builds a Monitor over the engine's links and scalers.
func New(cfg Config, links []*core.LinkInfo, scalers []core.Scaler) *Monitor {
	cfg.fill()
	idx := make(map[*core.LinkInfo]int, len(links))
	states := make([]*linkState, len(links))
	for i, l := range links {
		idx[l] = i
		states[i] = &linkState{l: l, estIdx: i}
	}
	return &Monitor{
		cfg:        cfg,
		links:      states,
		scalers:    scalers,
		linkIdx:    idx,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		scaleTick:  make([]int, len(scalers)),
		fullTicks:  make([]int, len(scalers)),
		emptyTicks: make([]int, len(scalers)),
	}
}

// AddLink attaches a dynamically-spliced link to the sampling loop. The
// link gets occupancy sampling, resize rules, the adaptive batcher and
// the drop watcher; estimator-driven rules are skipped (taps are built at
// Exe), so it runs the contended-window heuristics.
func (m *Monitor) AddLink(l *core.LinkInfo) {
	m.linksMu.Lock()
	next := make([]*linkState, len(m.links), len(m.links)+1)
	copy(next, m.links)
	m.links = append(next, &linkState{l: l, estIdx: -1})
	m.linksMu.Unlock()
}

// RemoveLink detaches a link from the sampling loop (its queue is sealed;
// re-applying resize or batch rules to it would be dead work). A tick in
// flight may sample it once more, which is harmless.
func (m *Monitor) RemoveLink(l *core.LinkInfo) {
	m.linksMu.Lock()
	next := make([]*linkState, 0, len(m.links))
	for _, st := range m.links {
		if st.l != l {
			next = append(next, st)
		}
	}
	m.links = next
	m.linksMu.Unlock()
}

// Start launches the monitor goroutine.
func (m *Monitor) Start() {
	go m.loop()
}

// Stop terminates the monitor and waits for the loop to exit. Idempotent.
func (m *Monitor) Stop() {
	m.once.Do(func() { close(m.stop) })
	<-m.done
}

// Ticks returns the number of monitor iterations executed.
func (m *Monitor) Ticks() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ticks
}

// Events returns a copy of the recorded optimization events.
func (m *Monitor) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Resizes returns the number of resize operations performed.
func (m *Monitor) Resizes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resizes
}

// traceKind maps a monitor decision to its telemetry-bus event kind.
var traceKind = map[string]trace.Kind{
	"grow":       trace.QueueGrow,
	"shrink":     trace.QueueShrink,
	"batch-up":   trace.BatchUp,
	"batch-down": trace.BatchDown,
	"scale-up":   trace.ScaleUp,
	"scale-down": trace.ScaleDown,
	"deadlock":   trace.Deadlock,
	"drop":       trace.Drop,
}

func (m *Monitor) record(kind, target string, from, to int) {
	now := time.Now()
	if m.cfg.Trace != nil {
		if k, ok := traceKind[kind]; ok {
			m.cfg.Trace.Emit(trace.Event{
				Actor: -1, Kind: k, At: now.UnixNano(),
				Prev: int64(from), Arg: int64(to), Label: target,
			})
		}
	}
	m.mu.Lock()
	m.events = append(m.events, Event{At: now, Kind: kind, Target: target, From: from, To: to})
	if kind == "grow" || kind == "shrink" {
		m.resizes++
	}
	m.mu.Unlock()
}

func (m *Monitor) loop() {
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		m.Tick()
		time.Sleep(m.cfg.Delta)
	}
}

// resizePending is implemented by queues whose Resize is asynchronous
// (the lock-free SPSC ring's epoch swap): it reports a published swap
// the producer has not yet installed.
type resizePending interface {
	ResizePending() bool
}

// viewHolder is implemented by queues that lend zero-copy batch views
// over their storage (both ring kinds do): it reports how long the
// oldest outstanding borrow has been held, or 0 when none is out.
type viewHolder interface {
	ViewHeldFor() time.Duration
}

// workerLister is implemented by scalers that can report the trace actor
// ids of their replica workers (raft's group scaler does); the rate-driven
// width rule needs them to look up per-replica µ̂.
type workerLister interface {
	WorkerActors() []int32
}

// Tick performs one monitor iteration. Exported so tests (and the ablation
// harness) can drive the monitor deterministically without timing races.
func (m *Monitor) Tick() {
	if m.cfg.Rates != nil {
		// Fold an estimation window if one has elapsed (internally
		// rate-limited, so the per-tick cost is two clock reads).
		m.cfg.Rates.Tick(time.Now())
	}
	threshold := time.Duration(m.cfg.BlockFactor) * m.cfg.Delta
	m.linksMu.Lock()
	links := m.links
	m.linksMu.Unlock()
	for _, st := range links {
		l := st.l
		qlen, qcap := l.Queue.Len(), l.Queue.Cap()
		l.Occupancy.Sample(qlen, qcap)

		if m.cfg.AdaptiveBatch {
			m.batchStep(st, qlen, qcap)
		}

		if l.BestEffort {
			m.dropStep(st)
		}

		if !m.cfg.Resize || !l.ResizeEnabled {
			continue
		}
		// Lock-free queues resize asynchronously (epoch swap): the request
		// is installed at the producer's next push. While one is in flight
		// the capacity has not changed yet, so skip the link — re-applying
		// the rules now would stack a second request on the same evidence.
		if rp, ok := l.Queue.(resizePending); ok && rp.ResizePending() {
			st.quiet = 0
			continue
		}
		// A borrowed batch view pins the current storage epoch: resizing
		// under it would only defer (mutex ring) or churn a sealed segment
		// (SPSC), so the evidence gathered this tick cannot take effect.
		// Skip the link and re-decide once the view is released.
		if vh, ok := l.Queue.(viewHolder); ok && vh.ViewHeldFor() > 0 {
			st.quiet = 0
			continue
		}
		// Write-side rule (§4.1): writer blocked for >= BlockFactor×δ.
		if blocked := l.Queue.WriterBlockedFor(); blocked >= threshold {
			if l.MaxCap <= 0 || qcap < l.MaxCap {
				target := qcap * m.cfg.GrowFactor
				if l.MaxCap > 0 && target > l.MaxCap {
					target = l.MaxCap
				}
				if target > qcap && l.Queue.Resize(target) == nil {
					m.record("grow", l.Name, qcap, target)
					st.quiet = 0
					continue
				}
			}
		}
		// Conservative shrink with hysteresis.
		if m.cfg.Shrink {
			if qlen*8 < qcap && l.Queue.WriterBlockedFor() == 0 {
				st.quiet++
				if st.quiet >= m.cfg.ShrinkAfter && qcap > 1 {
					target := qcap / 2
					if target < qlen {
						target = qlen
					}
					if target >= 1 && target < qcap && l.Queue.Resize(target) == nil {
						m.record("shrink", l.Name, qcap, target)
					}
					st.quiet = 0
				}
			} else {
				st.quiet = 0
			}
		}
	}

	if m.cfg.AutoScale {
		for i, s := range m.scalers {
			m.scaleTick[i]++
			in := s.InputLink()
			if in == nil {
				continue
			}
			qlen, qcap := in.Queue.Len(), in.Queue.Cap()
			if qcap > 0 && qlen >= qcap-(qcap>>3) {
				m.fullTicks[i]++
			}
			if qlen == 0 {
				m.emptyTicks[i]++
			}
			if m.scaleTick[i] < m.cfg.ScaleWindow {
				continue
			}
			window := float64(m.scaleTick[i])
			fullFrac := float64(m.fullTicks[i]) / window
			emptyFrac := float64(m.emptyTicks[i]) / window
			m.scaleTick[i], m.fullTicks[i], m.emptyTicks[i] = 0, 0, 0

			if m.rateWidth(s, in) {
				continue
			}
			switch {
			case fullFrac >= m.cfg.ScaleUpFullFrac && s.Active() < s.Max():
				from := s.Active()
				s.SetActive(from + 1)
				m.record("scale-up", s.Name(), from, from+1)
			case emptyFrac >= 0.9 && s.Active() > 1:
				from := s.Active()
				s.SetActive(from - 1)
				m.record("scale-down", s.Name(), from, from-1)
			}
		}
	}

	if m.deadlock != nil {
		m.deadlock.Check(time.Now())
		if m.deadlock.Fired() {
			m.record("deadlock", "application", 0, 0)
			m.deadlock = nil // one-shot
		}
	}

	m.mu.Lock()
	m.ticks++
	m.mu.Unlock()
}

// rateWidth applies the estimator-driven width rule to scaler s whose
// group input is link in, and reports whether it owned the decision this
// window. Width comes from qmodel.MinServersWait — the smallest replica
// count whose predicted M/M/c waiting time meets WaitFactor/µ̂ — and the
// monitor steps the active count ±1 toward it per scale window, so a
// noisy estimate can never slam a group from 1 to Max in one move. Falls
// back (returns false) whenever the estimates are not primed, leaving the
// contended-window heuristic in charge.
func (m *Monitor) rateWidth(s core.Scaler, in *core.LinkInfo) bool {
	if !m.cfg.RateControl || m.cfg.Rates == nil {
		return false
	}
	wl, ok := s.(workerLister)
	if !ok {
		return false
	}
	li, ok := m.linkIdx[in]
	if !ok {
		return false
	}
	lr, ok := m.cfg.Rates.Link(li)
	if !ok || !lr.Primed || lr.Lambda <= 0 {
		return false
	}
	mu, ok := m.cfg.Rates.GroupMu(wl.WorkerActors())
	if !ok || mu <= 0 {
		return false
	}
	target := qmodel.MinServersWait(lr.Lambda, mu, m.cfg.WaitFactor/mu, s.Max())
	cur := s.Active()
	switch {
	case target > cur && cur < s.Max():
		s.SetActive(cur + 1)
		m.record("scale-up", s.Name(), cur, cur+1)
	case target < cur && cur > 1:
		s.SetActive(cur - 1)
		m.record("scale-down", s.Name(), cur, cur-1)
	}
	return true
}

// dropWindow is the tick interval between drop-watcher emissions. A
// saturated best-effort link drops on nearly every push; emitting one
// event per δ-tick would flood the telemetry bus with information the
// cumulative counter already carries, so the watcher coalesces a window's
// drops into a single event carrying the old and new cumulative counts.
const dropWindow = 1024

// dropStep polls the link's best-effort drop counter (one atomic load)
// and, at most once per dropWindow ticks, records the delta as a "drop"
// event.
func (m *Monitor) dropStep(st *linkState) {
	st.dropTick++
	if st.dropTick < dropWindow {
		return
	}
	st.dropTick = 0
	cur := st.l.Queue.Telemetry().Drops()
	if prev := st.dropSeen; cur > prev {
		st.dropSeen = cur
		m.record("drop", st.l.Name, int(prev), int(cur))
	}
}

// batchStep accumulates one tick of occupancy evidence for link i and, every
// BatchWindow ticks, moves its transfer batch size toward the
// latency/throughput balance: grow ×2 while the link demonstrably contends
// (blocked time or spin escalations accrued, or the queue sat near-full for
// half the window) and elements are actually flowing; shrink ÷2 once the
// link goes quiet so a later latency-sensitive phase is not stuck behind a
// large batch. The size is capped at min(BatchMax, cap/2) so neither side
// can monopolize the queue, and pinned (latency-priority) links are skipped.
func (m *Monitor) batchStep(st *linkState, qlen, qcap int) {
	l := st.l
	bc := l.Batch
	if bc == nil || bc.Pinned() || l.LatencyPriority {
		return
	}
	st.batchTick++
	if qcap > 0 && qlen*2 >= qcap {
		st.batchFull++
	}
	if qlen == 0 {
		st.batchEmpty++
	}
	if st.batchTick < m.cfg.BatchWindow {
		return
	}
	window := float64(st.batchTick)
	fullFrac := float64(st.batchFull) / window
	emptyFrac := float64(st.batchEmpty) / window
	st.batchTick, st.batchFull, st.batchEmpty = 0, 0, 0

	tel := l.Queue.Telemetry().Snapshot()
	prev := st.prevTel
	st.prevTel = tel
	moved := tel.Pushes - prev.Pushes

	// Pre-saturation signal from the rate estimator: a link running at
	// high utilization, or whose occupancy derivative predicts a half-full
	// queue within the next batch window, gets its batch grown *before*
	// either side ever blocks. Under rate control the estimator OWNS the
	// decision (with sustained near-full occupancy kept as a
	// direct-evidence backstop): the blocked-window heuristic counts
	// consumer starvation as contention, so under light load it batches —
	// and buys latency — for a link that has no throughput problem. ρ̂
	// distinguishes the two. λ̂ primes within ~5 estimator windows of
	// startup, so gating growth on it costs a few milliseconds once,
	// not adaptivity.
	contended := tel.Blocked(prev) || fullFrac >= 0.5
	if m.cfg.RateControl && m.cfg.Rates != nil && st.estIdx >= 0 {
		if lr, ok := m.cfg.Rates.Link(st.estIdx); ok {
			rateHot := false
			if lr.Primed {
				horizon := float64(m.cfg.BatchWindow) * m.cfg.Delta.Seconds()
				predicted := lr.OccMean + lr.OccSlope*horizon
				rateHot = (lr.Mu > 0 && lr.Rho >= m.cfg.RhoGrow) ||
					(lr.OccSlope > 0 && predicted >= float64(qcap)/2)
			}
			contended = rateHot || fullFrac >= 0.5
		}
	}

	cur := bc.Get()
	if cur < 1 {
		cur = 1
	}
	limit := m.cfg.BatchMax
	if qcap/2 < limit {
		limit = qcap / 2
	}
	if limit < 1 {
		limit = 1
	}
	switch {
	case contended && moved > 0 && cur < limit:
		next := cur * 4
		if next > limit {
			next = limit
		}
		bc.Set(next)
		m.record("batch-up", l.Name, cur, next)
	case cur > limit:
		// Capacity shrank under the chosen batch; follow it down.
		bc.Set(limit)
		m.record("batch-down", l.Name, cur, limit)
	case emptyFrac >= 0.9 && moved == 0 && cur > 1:
		// Shrink only on genuinely idle links: a link observed empty every
		// tick can still be moving heavily between ticks (a consumer that
		// drains instantly), and shrinking there costs throughput with no
		// latency gain — PopN never waits for a full batch anyway.
		next := cur / 2
		bc.Set(next)
		m.record("batch-down", l.Name, cur, next)
	}
}
