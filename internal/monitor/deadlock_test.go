package monitor

import (
	"strings"
	"testing"
	"time"

	"raftlib/internal/core"
	"raftlib/internal/ringbuffer"
)

// frozenFixture builds two actors around one full queue: the producer
// blocked pushing, the consumer of a second empty queue blocked popping —
// a fully parked two-kernel system.
func frozenFixture(t *testing.T) ([]*core.Actor, []*core.LinkInfo, func()) {
	t.Helper()
	full := ringbuffer.NewRing[int](1)
	if err := full.Push(0, ringbuffer.SigNone); err != nil {
		t.Fatal(err)
	}
	empty := ringbuffer.NewRing[int](1)

	// Producer actor 0 blocks pushing into the full queue.
	go func() { _ = full.Push(1, ringbuffer.SigNone) }()
	// Consumer actor 1 blocks popping from the empty queue.
	go func() { _, _, _ = empty.Pop() }()
	deadline := time.Now().Add(2 * time.Second)
	for full.WriterBlockedFor() == 0 || empty.ReaderStarvedFor() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fixture goroutines never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}

	actors := []*core.Actor{{ID: 0, Name: "producer"}, {ID: 1, Name: "consumer"}}
	links := []*core.LinkInfo{
		{ID: 0, Name: "producer.out->x.in", Queue: full, SrcActor: 0, DstActor: 1},
		{ID: 1, Name: "y.out->consumer.in", Queue: empty, SrcActor: 0, DstActor: 1},
	}
	cleanup := func() {
		full.Close()
		empty.Close()
	}
	return actors, links, cleanup
}

func TestDeadlockWatchFires(t *testing.T) {
	actors, links, cleanup := frozenFixture(t)
	defer cleanup()
	var diag string
	w := NewDeadlockWatch(actors, links, 10*time.Millisecond, func(d string) { diag = d })
	base := time.Now()
	w.Check(base)                           // establishes freeze start
	w.Check(base.Add(5 * time.Millisecond)) // within grace: no fire
	if w.Fired() {
		t.Fatal("fired before grace elapsed")
	}
	w.Check(base.Add(20 * time.Millisecond)) // past grace: fire
	if !w.Fired() {
		t.Fatal("did not fire after grace")
	}
	if !strings.Contains(diag, "parked streams") || !strings.Contains(diag, "producer.out->x.in") {
		t.Fatalf("diagnostic = %q", diag)
	}
	// One-shot: further checks do not re-fire.
	diag = ""
	w.Check(base.Add(time.Second))
	if diag != "" {
		t.Fatal("fired twice")
	}
}

func TestDeadlockWatchResetOnProgress(t *testing.T) {
	actors, links, cleanup := frozenFixture(t)
	defer cleanup()
	fired := false
	w := NewDeadlockWatch(actors, links, 10*time.Millisecond, func(string) { fired = true })
	base := time.Now()
	w.Check(base)
	// Simulate progress: bump a queue counter between checks.
	links[0].Queue.Telemetry().Pushes.Inc()
	w.Check(base.Add(15 * time.Millisecond))
	if fired {
		t.Fatal("fired despite progress between checks")
	}
}

func TestDeadlockWatchIgnoresFinishedActors(t *testing.T) {
	actors, links, cleanup := frozenFixture(t)
	defer cleanup()
	// Mark the consumer finished and unpark it; only the producer remains,
	// and it is parked, so the watch must still fire.
	actors[1].Finished.Store(true)
	fired := false
	w := NewDeadlockWatch(actors, links, 5*time.Millisecond, func(string) { fired = true })
	base := time.Now()
	w.Check(base)                            // syncs the op counter
	w.Check(base.Add(10 * time.Millisecond)) // starts the freeze clock
	w.Check(base.Add(20 * time.Millisecond)) // past grace
	if !fired {
		t.Fatal("watch ignored a parked unfinished actor")
	}
}

func TestDeadlockWatchNotFrozenWhenActorRunning(t *testing.T) {
	actors, links, cleanup := frozenFixture(t)
	defer cleanup()
	// A third actor with no parked streams is "running": never frozen.
	actors = append(actors, &core.Actor{ID: 2, Name: "busy"})
	fired := false
	w := NewDeadlockWatch(actors, links, 5*time.Millisecond, func(string) { fired = true })
	base := time.Now()
	w.Check(base)
	w.Check(base.Add(10 * time.Millisecond))
	w.Check(base.Add(20 * time.Millisecond))
	if fired {
		t.Fatal("fired with an unparked actor present")
	}
}

func TestDeadlockWatchDefaultGrace(t *testing.T) {
	w := NewDeadlockWatch(nil, nil, 0, func(string) {})
	if w.grace != time.Second {
		t.Fatalf("default grace = %v", w.grace)
	}
}

func TestDeadlockWatchRestartsCountAsProgress(t *testing.T) {
	actors, links, cleanup := frozenFixture(t)
	defer cleanup()
	fired := false
	w := NewDeadlockWatch(actors, links, 10*time.Millisecond, func(string) { fired = true })
	base := time.Now()
	w.Check(base)
	// A supervised restart between ticks is recovery activity, not a
	// freeze, even though every stream counter is unchanged.
	actors[0].Restarts.Inc()
	w.Check(base.Add(15 * time.Millisecond))
	if fired {
		t.Fatal("fired despite a supervised restart between checks")
	}
}
