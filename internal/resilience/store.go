package resilience

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store persists kernel snapshots keyed by kernel name. Implementations
// must be safe for concurrent use (replicated kernels checkpoint from
// several goroutines).
type Store interface {
	// Save durably records the snapshot for the kernel, replacing any
	// previous one.
	Save(kernel string, snapshot []byte) error
	// Load returns the latest snapshot for the kernel; ok is false when
	// none has been saved.
	Load(kernel string) (snapshot []byte, ok bool, err error)
}

// MemStore is an in-process Store: snapshots survive kernel restarts
// within one execution but not process exit. It is the default store.
type MemStore struct {
	mu   sync.Mutex
	data map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{data: make(map[string][]byte)}
}

// Save implements Store.
func (m *MemStore) Save(kernel string, snapshot []byte) error {
	cp := make([]byte, len(snapshot))
	copy(cp, snapshot)
	m.mu.Lock()
	m.data[kernel] = cp
	m.mu.Unlock()
	return nil
}

// Load implements Store.
func (m *MemStore) Load(kernel string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap, ok := m.data[kernel]
	if !ok {
		return nil, false, nil
	}
	cp := make([]byte, len(snap))
	copy(cp, snap)
	return cp, true, nil
}

// FileStore persists snapshots as one file per kernel under a directory,
// surviving process restarts (cross-execution resume). Writes go through a
// temp file + rename so a crash mid-checkpoint never corrupts the previous
// snapshot.
type FileStore struct {
	dir string
	mu  sync.Mutex
}

// NewFileStore creates (if needed) and opens the directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCheckpointFailed, err)
	}
	return &FileStore{dir: dir}, nil
}

// Save implements Store.
func (f *FileStore) Save(kernel string, snapshot []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	final := f.path(kernel)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, snapshot, 0o644); err != nil {
		return fmt.Errorf("%w: %w", ErrCheckpointFailed, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("%w: %w", ErrCheckpointFailed, err)
	}
	return nil
}

// Load implements Store.
func (f *FileStore) Load(kernel string) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	snap, err := os.ReadFile(f.path(kernel))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("%w: %w", ErrCheckpointFailed, err)
	}
	return snap, true, nil
}

// path maps a kernel name to its snapshot file. Kernel names may contain
// separators and bracket decorations ("search[horspool]#1[2]"); they are
// flattened into a safe flat filename.
func (f *FileStore) path(kernel string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, kernel)
	return filepath.Join(f.dir, safe+".ckpt")
}
