// Package resilience implements the supervision-and-recovery layer of the
// runtime: per-kernel supervisors that absorb panics under a restart
// policy (bounded retries, exponential backoff with deterministic jitter,
// escalation on exhaustion), and the checkpoint stores behind the public
// raft.Checkpointable API.
//
// The paper's runtime "owns everything the programmer traditionally gets
// wrong" (§4.1) — buffers, mapping, scheduling. This package extends that
// ownership to the failure story: a panicking kernel no longer aborts the
// topology; it restarts in place (its streams stay bound, so producers and
// consumers never notice), optionally restoring checkpointed state first.
// Only when the restart budget is exhausted does the supervisor escalate
// through the map-global exception pathway, turning the crash loop into
// one typed error.
//
// Layering: resilience depends only on core and stats, never on raft —
// the same discipline that keeps schedulers and the monitor substitutable.
package resilience

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"raftlib/internal/core"
	"raftlib/internal/trace"
)

// Sentinel errors, re-exported by raft/errors.go.
var (
	// ErrRetriesExhausted marks a kernel that kept panicking past its
	// restart budget; the supervisor escalates it as a permanent failure.
	ErrRetriesExhausted = errors.New("restart retries exhausted")
	// ErrCheckpointFailed wraps snapshot or restore failures.
	ErrCheckpointFailed = errors.New("checkpoint failed")
)

// Policy is the restart policy one supervisor applies.
type Policy struct {
	// MaxRestarts is the kernel's lifetime restart budget; the restart
	// exceeding it escalates instead. Negative means unlimited. The zero
	// value selects the default (3).
	MaxRestarts int
	// InitialBackoff is the sleep before the first restart (default 1ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 1s).
	MaxBackoff time.Duration
	// Multiplier scales the backoff between consecutive restarts of the
	// same kernel (default 2).
	Multiplier float64
	// Jitter is the random fraction (0..1) added to each backoff to
	// de-synchronize mass restarts (default 0.1). The jitter source is
	// seeded from the kernel name, so runs are reproducible.
	Jitter float64
}

// withDefaults fills zero fields with the default policy.
func (p Policy) withDefaults() Policy {
	if p.MaxRestarts == 0 {
		p.MaxRestarts = 3
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.MaxBackoff < p.InitialBackoff {
		p.MaxBackoff = p.InitialBackoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.1
	}
	return p
}

// Event records one supervision decision for reports and tests.
type Event struct {
	// At is when the panic was caught.
	At time.Time
	// Kernel is the supervised kernel's name.
	Kernel string
	// Attempt is the 1-based restart attempt.
	Attempt int
	// Cause is the recovered panic rendered as text.
	Cause string
	// Backoff is the sleep applied before the restart.
	Backoff time.Duration
	// Recovery is the measured downtime: panic catch to the kernel being
	// runnable again (backoff + state restore).
	Recovery time.Duration
	// Recovered is false for the terminal event of an exhausted kernel.
	Recovered bool
}

// Log collects events from every supervisor of one execution.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Add appends one event.
func (l *Log) Add(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Hooks are the optional integration points a supervisor drives.
type Hooks struct {
	// Restore re-establishes kernel state after a restart (typically from
	// the latest checkpoint). A restore error counts as another failure.
	Restore func() error
	// Checkpoint snapshots kernel state; called after every CheckpointEvery
	// successful invocations (and on Stop) when non-nil.
	Checkpoint func() error
	// CheckpointEvery is the snapshot period in successful invocations
	// (default 1: snapshot after every run, the only period that keeps a
	// restored accumulator exactly consistent with the stream position).
	CheckpointEvery uint64
	// OnExhausted escalates a permanent failure (raft wires it to the
	// map-global KernelBase.Raise, the paper's async exception pathway).
	OnExhausted func(error)
	// Log receives restart events when non-nil.
	Log *Log
}

// Supervisor wraps one actor's Step with panic recovery and the restart
// policy. Create with Supervise.
type Supervisor struct {
	name     string
	p        Policy
	h        Hooks
	actor    *core.Actor
	rng      *rand.Rand
	attempts int
	sinceCk  uint64
}

// Supervise wraps the actor's Step in place and returns the supervisor.
// The wrapped step never lets a panic escape: it either restarts the
// kernel (after backoff and optional state restore) or, once the budget is
// exhausted, reports the failure through OnExhausted and stops the kernel.
func Supervise(a *core.Actor, p Policy, h Hooks) *Supervisor {
	if h.CheckpointEvery == 0 {
		h.CheckpointEvery = 1
	}
	seed := fnv.New64a()
	seed.Write([]byte(a.Name))
	s := &Supervisor{
		name:  a.Name,
		p:     p.withDefaults(),
		h:     h,
		actor: a,
		rng:   rand.New(rand.NewSource(int64(seed.Sum64()))),
	}
	inner := a.Step
	a.Step = func() core.Status { return s.step(inner) }
	return s
}

// step runs one supervised invocation.
func (s *Supervisor) step(inner func() core.Status) core.Status {
	st, perr := s.safeStep(inner)
	if perr == nil {
		if s.h.Checkpoint != nil && st != core.Stall {
			s.sinceCk++
			if s.sinceCk >= s.h.CheckpointEvery || st == core.Stop {
				s.sinceCk = 0
				if err := s.h.Checkpoint(); err != nil {
					return s.fail(fmt.Errorf("%w: %w", ErrCheckpointFailed, err))
				}
				s.emit(trace.CheckpointSave, 0)
			}
		}
		return st
	}
	return s.fail(perr)
}

// emit publishes one supervision transition on the run's telemetry bus
// (when the supervised actor carries one).
func (s *Supervisor) emit(kind trace.Kind, arg int64) {
	if rec := s.actor.Trace; rec != nil {
		rec.Emit(trace.Event{
			Actor: s.actor.TraceID, Kind: kind,
			At: time.Now().UnixNano(), Arg: arg,
		})
	}
}

// fail applies the restart policy to one failure.
func (s *Supervisor) fail(cause error) core.Status {
	caught := time.Now()
	s.attempts++
	if s.p.MaxRestarts >= 0 && s.attempts > s.p.MaxRestarts {
		err := fmt.Errorf("kernel %q: %w after %d restarts: %w",
			s.name, ErrRetriesExhausted, s.attempts-1, cause)
		if s.h.Log != nil {
			s.h.Log.Add(Event{
				At: caught, Kernel: s.name, Attempt: s.attempts,
				Cause: cause.Error(), Recovered: false,
			})
		}
		if s.h.OnExhausted != nil {
			s.h.OnExhausted(err)
		}
		s.emit(trace.Escalate, int64(s.attempts))
		return core.Stop
	}

	backoff := s.backoff(s.attempts)
	time.Sleep(backoff)
	if s.h.Restore != nil {
		if rerr := s.h.Restore(); rerr != nil {
			// A failing restore is itself a failure: it consumes another
			// attempt rather than looping on a corrupt checkpoint.
			return s.fail(fmt.Errorf("%w: restore: %w", ErrCheckpointFailed, rerr))
		}
		s.emit(trace.CheckpointRestore, int64(s.attempts))
	}
	s.actor.Restarts.Inc()
	s.emit(trace.Restart, int64(s.attempts))
	if s.h.Log != nil {
		s.h.Log.Add(Event{
			At: caught, Kernel: s.name, Attempt: s.attempts,
			Cause: cause.Error(), Backoff: backoff,
			Recovery: time.Since(caught), Recovered: true,
		})
	}
	return core.Proceed
}

// backoff computes the sleep before restart attempt n (1-based):
// Initial × Multiplier^(n-1), capped at MaxBackoff, plus jitter.
func (s *Supervisor) backoff(attempt int) time.Duration {
	d := float64(s.p.InitialBackoff)
	for i := 1; i < attempt; i++ {
		d *= s.p.Multiplier
		if d >= float64(s.p.MaxBackoff) {
			d = float64(s.p.MaxBackoff)
			break
		}
	}
	if s.p.Jitter > 0 {
		d += d * s.p.Jitter * s.rng.Float64()
	}
	if d > float64(s.p.MaxBackoff) {
		d = float64(s.p.MaxBackoff)
	}
	return time.Duration(d)
}

// Attempts returns the number of failures absorbed or escalated so far.
func (s *Supervisor) Attempts() int { return s.attempts }

// safeStep invokes the kernel once, converting a panic into an error.
func (s *Supervisor) safeStep(inner func() core.Status) (st core.Status, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = core.PanicError(r)
		}
	}()
	return inner(), nil
}
