package resilience

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"raftlib/internal/core"
)

// mkActor builds an actor whose step panics on runs listed in panicAt and
// stops after total runs.
func mkActor(name string, total int, panicAt map[int]bool) (*core.Actor, *int) {
	runs := 0
	a := &core.Actor{Name: name}
	a.Step = func() core.Status {
		runs++
		if panicAt[runs] {
			panic(fmt.Sprintf("boom at run %d", runs))
		}
		if runs >= total {
			return core.Stop
		}
		return core.Proceed
	}
	return a, &runs
}

// drive runs the actor's (wrapped) step to completion, with a safety cap.
func drive(t *testing.T, a *core.Actor) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if a.Step() == core.Stop {
			return
		}
	}
	t.Fatal("actor never stopped")
}

func TestSupervisorRestartsOnPanic(t *testing.T) {
	a, runs := mkActor("k", 6, map[int]bool{2: true, 4: true})
	log := &Log{}
	s := Supervise(a, Policy{MaxRestarts: 5, InitialBackoff: time.Microsecond}, Hooks{Log: log})
	drive(t, a)

	if *runs != 6 {
		t.Fatalf("runs = %d, want 6 (panicking runs retried)", *runs)
	}
	if s.Attempts() != 2 {
		t.Fatalf("attempts = %d, want 2", s.Attempts())
	}
	if got := a.Restarts.Load(); got != 2 {
		t.Fatalf("actor.Restarts = %d, want 2", got)
	}
	evs := log.Events()
	if len(evs) != 2 {
		t.Fatalf("log has %d events, want 2: %+v", len(evs), evs)
	}
	for i, e := range evs {
		if !e.Recovered || e.Kernel != "k" || e.Attempt != i+1 {
			t.Errorf("event %d = %+v", i, e)
		}
		if e.Cause == "" || e.Recovery <= 0 {
			t.Errorf("event %d missing cause/recovery: %+v", i, e)
		}
	}
}

func TestSupervisorExhaustionEscalates(t *testing.T) {
	a := &core.Actor{Name: "dies", Step: func() core.Status { panic("always") }}
	var escalated error
	log := &Log{}
	Supervise(a, Policy{MaxRestarts: 2, InitialBackoff: time.Microsecond}, Hooks{
		OnExhausted: func(err error) { escalated = err },
		Log:         log,
	})

	// 3 invocations: two absorbed restarts, third exhausts the budget.
	for i := 0; i < 2; i++ {
		if st := a.Step(); st != core.Proceed {
			t.Fatalf("restart %d: status %v, want Proceed", i+1, st)
		}
	}
	if st := a.Step(); st != core.Stop {
		t.Fatalf("exhausted step: status %v, want Stop", st)
	}
	if escalated == nil {
		t.Fatal("OnExhausted not called")
	}
	if !errors.Is(escalated, ErrRetriesExhausted) {
		t.Fatalf("escalated error %v does not wrap ErrRetriesExhausted", escalated)
	}
	if !errors.Is(escalated, core.ErrKernelPanicked) {
		t.Fatalf("escalated error %v does not wrap ErrKernelPanicked", escalated)
	}
	evs := log.Events()
	if len(evs) != 3 || evs[2].Recovered {
		t.Fatalf("log = %+v, want 2 recovered + 1 terminal", evs)
	}
	if a.Restarts.Load() != 2 {
		t.Fatalf("Restarts = %d, want 2", a.Restarts.Load())
	}
}

func TestSupervisorUnlimitedRestarts(t *testing.T) {
	fails := 0
	a := &core.Actor{Name: "flaky"}
	a.Step = func() core.Status {
		if fails < 10 {
			fails++
			panic("flaky")
		}
		return core.Stop
	}
	Supervise(a, Policy{MaxRestarts: -1, InitialBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond}, Hooks{})
	drive(t, a)
	if fails != 10 {
		t.Fatalf("fails = %d, want 10", fails)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	a := &core.Actor{Name: "b", Step: func() core.Status { return core.Stop }}
	s := Supervise(a, Policy{
		MaxRestarts:    -1,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     8 * time.Millisecond,
		Multiplier:     2,
		Jitter:         -1, // sentinel: withDefaults resets to 0.1; use explicit 0 below
	}, Hooks{})
	s.p.Jitter = 0 // deterministic for the assertion

	wants := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond,
	}
	for i, want := range wants {
		if got := s.backoff(i + 1); got != want {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, want)
		}
	}

	// With jitter the backoff stays within [base, cap].
	s.p.Jitter = 0.5
	for i := 1; i <= 6; i++ {
		got := s.backoff(i)
		if got < time.Millisecond || got > 8*time.Millisecond {
			t.Errorf("jittered backoff(%d) = %v outside [1ms, 8ms]", i, got)
		}
	}
}

func TestCheckpointAndRestoreOnRestart(t *testing.T) {
	store := NewMemStore()
	const name = "acc"

	sum, committed := 0, 0
	runs := 0
	a := &core.Actor{Name: name}
	a.Step = func() core.Status {
		runs++
		if runs == 4 {
			panic("mid-stream crash")
		}
		sum += runs
		if sum >= 15 {
			return core.Stop
		}
		return core.Proceed
	}
	Supervise(a, Policy{InitialBackoff: time.Microsecond}, Hooks{
		Checkpoint: func() error {
			committed = sum
			return store.Save(name, []byte{byte(sum)})
		},
		Restore: func() error {
			snap, ok, err := store.Load(name)
			if err != nil || !ok {
				return fmt.Errorf("load: ok=%v err=%v", ok, err)
			}
			sum = int(snap[0])
			return nil
		},
	})
	drive(t, a)

	// Runs 1-3 accumulate 6, checkpointed each run. Run 4 panics before
	// mutating; restore rewinds sum to the last committed value (6), then
	// runs 5-6 continue: 6+5+6 = 17 >= 15 stops.
	if sum != 17 {
		t.Fatalf("sum = %d, want 17", sum)
	}
	if committed != 17 {
		t.Fatalf("final checkpoint = %d, want 17 (Stop must checkpoint)", committed)
	}
}

func TestCheckpointEveryN(t *testing.T) {
	ckpts := 0
	runs := 0
	a := &core.Actor{Name: "n"}
	a.Step = func() core.Status {
		runs++
		if runs >= 10 {
			return core.Stop
		}
		return core.Proceed
	}
	Supervise(a, Policy{}, Hooks{
		CheckpointEvery: 4,
		Checkpoint:      func() error { ckpts++; return nil },
	})
	drive(t, a)
	// Runs 4 and 8 hit the period; run 10 (Stop) forces a final snapshot.
	if ckpts != 3 {
		t.Fatalf("checkpoints = %d, want 3", ckpts)
	}
}

func TestRestoreFailureConsumesAttempts(t *testing.T) {
	a := &core.Actor{Name: "r", Step: func() core.Status { panic("die") }}
	var escalated error
	Supervise(a, Policy{MaxRestarts: 3, InitialBackoff: time.Microsecond}, Hooks{
		Restore:     func() error { return errors.New("corrupt snapshot") },
		OnExhausted: func(err error) { escalated = err },
	})
	if st := a.Step(); st != core.Stop {
		t.Fatalf("status %v, want Stop (restore failures burn the budget)", st)
	}
	if !errors.Is(escalated, ErrRetriesExhausted) || !errors.Is(escalated, ErrCheckpointFailed) {
		t.Fatalf("escalated = %v, want ErrRetriesExhausted wrapping ErrCheckpointFailed", escalated)
	}
}

func TestMemStoreRoundtrip(t *testing.T) {
	s := NewMemStore()
	if _, ok, err := s.Load("missing"); ok || err != nil {
		t.Fatalf("Load(missing) = ok=%v err=%v", ok, err)
	}
	if err := s.Save("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	snap, ok, err := s.Load("k")
	if err != nil || !ok || string(snap) != "v2" {
		t.Fatalf("Load(k) = %q ok=%v err=%v", snap, ok, err)
	}
	// Returned slice is a copy: mutating it must not corrupt the store.
	snap[0] = 'X'
	snap2, _, _ := s.Load("k")
	if string(snap2) != "v2" {
		t.Fatalf("store corrupted by caller mutation: %q", snap2)
	}
}

func TestFileStoreRoundtripAndResume(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load("missing"); ok || err != nil {
		t.Fatalf("Load(missing) = ok=%v err=%v", ok, err)
	}
	// Decorated replica names must map to distinct, valid files.
	if err := s.Save("search[horspool]#1[2]", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("search[horspool]#1[3]", []byte("beta")); err != nil {
		t.Fatal(err)
	}

	// A second store over the same directory (a new process) sees the data.
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap, ok, err := s2.Load("search[horspool]#1[2]")
	if err != nil || !ok || string(snap) != "alpha" {
		t.Fatalf("resume Load = %q ok=%v err=%v", snap, ok, err)
	}
	snap, ok, err = s2.Load("search[horspool]#1[3]")
	if err != nil || !ok || string(snap) != "beta" {
		t.Fatalf("resume Load = %q ok=%v err=%v", snap, ok, err)
	}
}
