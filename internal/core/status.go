// Package core implements the RaftLib runtime engine: the actor abstraction
// that drives compute kernels, the link bookkeeping consumed by the monitor
// and schedulers, and the execution orchestration behind raft.Map.Exe.
//
// The package is deliberately free of any dependency on the public raft
// package: the engine manipulates Actors and LinkInfos, never kernels, so
// schedulers, the monitor and the mapper can be developed and tested in
// isolation (the paper's modularity goal, §4: "RaftLib implements a simple
// but effective scheduler that is straightforward to substitute").
package core

// Status is returned by one invocation of a kernel's Run method and tells
// the scheduler how to proceed.
type Status int

const (
	// Proceed indicates the kernel did useful work and should be invoked
	// again (the paper's raft::proceed).
	Proceed Status = iota
	// Stop indicates the kernel has finished for good; its outputs will be
	// closed and it will not be invoked again (raft::stop).
	Stop
	// Stall indicates the kernel could not make progress right now (e.g. a
	// cooperative kernel found insufficient input); the scheduler should
	// yield and retry later.
	Stall
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Proceed:
		return "proceed"
	case Stop:
		return "stop"
	case Stall:
		return "stall"
	default:
		return "invalid"
	}
}
