package core

import (
	"testing"
	"time"

	"raftlib/internal/ringbuffer"
)

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		Proceed:    "proceed",
		Stop:       "stop",
		Stall:      "stall",
		Status(99): "invalid",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestActorStepTimed(t *testing.T) {
	a := &Actor{
		Name: "worker",
		Step: func() Status {
			time.Sleep(100 * time.Microsecond)
			return Proceed
		},
	}
	if st := a.StepTimed(); st != Proceed {
		t.Fatalf("status = %v", st)
	}
	if a.Service.Count() != 1 {
		t.Fatalf("service count = %d", a.Service.Count())
	}
	if a.Service.MeanNanos() < float64(50*time.Microsecond) {
		t.Fatalf("mean = %v ns, want >= 50µs", a.Service.MeanNanos())
	}
}

func TestLinkInfoString(t *testing.T) {
	r := ringbuffer.NewRing[int](8)
	_ = r.Push(1, ringbuffer.SigNone)
	li := &LinkInfo{ID: 3, Name: "a.out->b.in", Queue: r}
	s := li.String()
	if s == "" {
		t.Fatal("empty string")
	}
	// Must mention capacity and length.
	if want := "cap=8"; !contains(s, want) {
		t.Fatalf("%q missing %q", s, want)
	}
	if want := "len=1"; !contains(s, want) {
		t.Fatalf("%q missing %q", s, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
