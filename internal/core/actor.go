package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"raftlib/internal/ringbuffer"
	"raftlib/internal/stats"
	"raftlib/internal/trace"
)

// Actor is the engine's view of one schedulable compute kernel. The raft
// package wraps each user kernel into an Actor; the engine and schedulers
// never see kernel types directly.
type Actor struct {
	// ID is the actor's index within the engine (dense, 0-based).
	ID int
	// Name is a human-readable label used in reports and errors.
	Name string
	// Place is the mapper-assigned resource (index into the topology's
	// place list); -1 when unmapped.
	Place int
	// Weight is the relative compute cost estimate used by the mapper.
	Weight float64

	// Init, if non-nil, runs once before the first Step.
	Init func() error
	// Step performs one kernel invocation.
	Step func() Status
	// Finish, if non-nil, runs once after the final Step (regardless of
	// whether the actor stopped voluntarily or the engine shut it down);
	// it must close the actor's output queues.
	Finish func()

	// Service accumulates per-invocation service times; the monitor reads
	// it to estimate service rates for bottleneck detection and modeling.
	Service stats.ServiceTimer

	// Virtual marks actors that complete instantly (e.g. the paper's
	// for_each source, which "appears as a kernel only momentarily",
	// §4.2): the engine runs Finish immediately and never schedules Step.
	Virtual bool

	// Ready, when non-nil, reports whether one Step can make progress
	// without blocking (inputs have data or are closed; outputs have
	// space or are closed). Cooperative schedulers consult it before
	// dispatching so a blocked kernel cannot capture a pooled worker;
	// the goroutine-per-kernel scheduler ignores it.
	Ready func() bool

	// Restarts counts supervised recoveries of this actor: each time the
	// resilience supervisor absorbs a panic and restarts the kernel the
	// counter advances. It doubles as a progress signal for the deadlock
	// watch (a kernel sleeping through restart backoff is alive, not
	// frozen) and feeds the restart columns of reports and LiveStats.
	Restarts stats.Counter

	// Finished is set by the scheduler once the actor's lifecycle ends;
	// the monitor's deadlock detector ignores finished actors.
	Finished atomic.Bool

	// Gate, when non-nil, lets the runtime hold the actor at a step
	// boundary (graph-rewrite splices) or retire it mid-run. Schedulers
	// poll it between invocations; the open-gate cost is one atomic load.
	Gate *Gate

	// Trace, when non-nil, receives RunStart/RunEnd events for sampled
	// invocations (and restart/checkpoint events from the supervisor).
	// TraceID is the actor id used on the bus — it matches ID for plain
	// actors but replicas of one kernel share their group's id.
	Trace   *trace.Recorder
	TraceID int32
	// TraceStride samples Run spans statistically: one invocation in every
	// TraceStride emits its RunStart/RunEnd pair (0 and 1 both mean every
	// invocation). Structural events — restarts, checkpoints, resizes — are
	// never sampled; only the high-frequency Run spans are. stepSkip is the
	// countdown to the next sampled invocation, touched only by the actor's
	// own goroutine (a countdown avoids a division on the hot path).
	TraceStride uint32
	stepSkip    uint32
}

// StepTimed invokes Step and records the service time. The clock is read
// exactly once per edge: the same end capture feeds both the duty-cycle
// accounting (Service) and the trace bus, so instrumentation never doubles
// the timing overhead of an invocation. Run spans are emitted for one
// invocation in every TraceStride — the amortized bus cost on a
// fine-grained kernel is a counter increment, not two event publishes.
func (a *Actor) StepTimed() Status {
	if a.Trace != nil {
		if a.stepSkip == 0 {
			if a.TraceStride > 1 {
				a.stepSkip = a.TraceStride - 1
			}
			return a.stepTraced()
		}
		a.stepSkip--
	}
	start := time.Now()
	st := a.Step()
	a.Service.Record(time.Since(start))
	return st
}

// stepTraced is the sampled slow path: one invocation bracketed by
// RunStart/RunEnd events sharing the duty-cycle clock captures.
func (a *Actor) stepTraced() Status {
	start := time.Now()
	a.Trace.Record(a.TraceID, trace.RunStart, start.UnixNano())
	st := a.Step()
	end := time.Now()
	a.Service.Record(end.Sub(start))
	a.Trace.Record(a.TraceID, trace.RunEnd, end.UnixNano())
	return st
}

// LinkInfo is the engine's view of one stream (queue) between two actors.
type LinkInfo struct {
	// ID is the link's index within the engine (dense, 0-based).
	ID int
	// Name is a human-readable "src.port -> dst.port" label.
	Name string
	// Queue is the untyped view of the stream's FIFO.
	Queue ringbuffer.Queue
	// SrcActor and DstActor are actor IDs (or -1 for external endpoints,
	// e.g. a TCP peer).
	SrcActor, DstActor int
	// Occupancy accumulates monitor samples of queue length.
	Occupancy stats.Occupancy
	// ResizeEnabled gates the monitor's dynamic resize rules for this link.
	ResizeEnabled bool
	// MaxCap bounds monitor-driven growth (0 = unbounded).
	MaxCap int
	// LatencyClass is the mapper's estimate of the cost of crossing this
	// link (e.g. same-core, cross-socket, TCP); informational.
	LatencyClass string
	// Batch publishes the adaptive batcher's chosen transfer size for this
	// link; adapters and bridges consult it on their hot path. Nil when the
	// engine predates allocation (tests building LinkInfo by hand).
	Batch *BatchControl
	// LatencyPriority marks a link whose consumers need elements as soon as
	// they exist: the batcher bypasses it (batch pinned at 1).
	LatencyPriority bool
	// BestEffort marks a link running the drop/latest-wins overflow policy
	// (AsBestEffort): the monitor's drop watcher only polls links that have
	// it set.
	BestEffort bool
}

func (l *LinkInfo) String() string {
	return fmt.Sprintf("link %d [%s] cap=%d len=%d", l.ID, l.Name, l.Queue.Cap(), l.Queue.Len())
}

// BatchControl publishes the transfer batch size chosen for one link. The
// monitor's adaptive batcher writes it; split/merge adapters, bridges and
// batch-aware kernels read it lock-free on their hot paths. A value of 0
// means "no decision yet": readers fall back to their static default. Pinned
// controls (latency-priority links) are never changed by the monitor.
type BatchControl struct {
	n      atomic.Int32
	pinned atomic.Bool
}

// Get returns the current batch size (0 = no decision; nil-safe).
func (b *BatchControl) Get() int {
	if b == nil {
		return 0
	}
	return int(b.n.Load())
}

// Set publishes a new batch size (values < 1 are clamped to 1).
func (b *BatchControl) Set(n int) {
	if n < 1 {
		n = 1
	}
	b.n.Store(int32(n))
}

// Hint publishes n as the link's initial batch size only if no decision
// exists yet (Get() == 0) and the control is not pinned, reporting whether
// it applied. Nil-safe. Placement-time advisors (the work-stealing
// scheduler's cross-shard hints) use it so they seed a starting point
// without overriding the adaptive batcher or a user pin.
func (b *BatchControl) Hint(n int) bool {
	if b == nil || b.pinned.Load() {
		return false
	}
	if n < 1 {
		n = 1
	}
	return b.n.CompareAndSwap(0, int32(n))
}

// Pin fixes the batch size permanently; the monitor skips pinned controls.
func (b *BatchControl) Pin(n int) {
	b.Set(n)
	b.pinned.Store(true)
}

// Pinned reports whether the control is exempt from adaptive changes.
func (b *BatchControl) Pinned() bool { return b != nil && b.pinned.Load() }

// Scaler is a control handle for a replicated kernel group: the monitor
// widens or narrows the number of active replicas through it (the paper's
// automatic parallelization, §4.1).
type Scaler interface {
	// Name identifies the group in reports.
	Name() string
	// Active returns the number of currently active replicas.
	Active() int
	// Max returns the replica ceiling chosen at graph construction.
	Max() int
	// SetActive requests n active replicas (clamped to [1, Max]).
	SetActive(n int)
	// InputLink returns the engine link feeding the group's distributor,
	// whose pressure drives scale-up decisions; may be nil for sources.
	InputLink() *LinkInfo
	// OutputLink returns the engine link draining the group's collector;
	// may be nil for sinks.
	OutputLink() *LinkInfo
}
