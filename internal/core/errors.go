package core

import (
	"errors"
	"fmt"
)

// Engine-level sentinel errors. They live in core (not the public raft
// package) so the scheduler and the resilience supervisor — which must not
// import raft — can classify failures; the raft package re-exports them
// (see raft/errors.go) the same way it aliases ringbuffer.ErrClosed.
var (
	// ErrKernelPanicked wraps a panic recovered from kernel code, whether
	// the panic ended the kernel (unsupervised) or was absorbed by a
	// restart (supervised).
	ErrKernelPanicked = errors.New("panicked")
)

// PanicError converts a recovered panic value into an error that matches
// ErrKernelPanicked with errors.Is, preserving the original error as an
// unwrap target when the panic value is one (typed port-misuse panics,
// injected faults).
func PanicError(r any) error {
	if cause, ok := r.(error); ok {
		return &panicErr{msg: cause.Error(), cause: cause}
	}
	return &panicErr{msg: fmt.Sprint(r)}
}

// panicErr keeps the recovered message and matches ErrKernelPanicked.
type panicErr struct {
	msg   string
	cause error
}

func (p *panicErr) Error() string { return "panicked: " + p.msg }

func (p *panicErr) Unwrap() []error {
	if p.cause != nil {
		return []error{ErrKernelPanicked, p.cause}
	}
	return []error{ErrKernelPanicked}
}
