package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// GateAction is the verdict a gated actor receives at a step boundary.
type GateAction uint8

const (
	// GateProceed lets the actor run its next step.
	GateProceed GateAction = iota
	// GateStop retires the actor: the scheduler treats it like a kernel
	// that returned Stop (Finish runs, output streams close).
	GateStop
)

// gate modes (Gate.mode).
const (
	gateRun int32 = iota
	gateHold
	gateRetire
)

// Gate lets the runtime hold an actor at a step boundary — the splice
// point of the graph-rewrite protocol. The owning scheduler calls Poll
// between kernel invocations; a controller calls Pause, which returns once
// the actor is parked inside Poll (guaranteeing it is not mid-push on any
// of its output streams), mutates the actor's port bindings, and calls
// Resume. Retire turns the next boundary into a Stop, retiring source
// kernels that have no upstream EOF to cascade from.
//
// The fast path is one atomic load per step; a gate on an undisturbed
// actor costs nothing else.
type Gate struct {
	mode atomic.Int32

	// ack carries the actor's "parked" signal to the controller (cap 1;
	// stale signals are drained before each Pause arms).
	ack chan struct{}

	// mu guards release, the per-pause channel the parked actor blocks on
	// until Resume or Retire closes it.
	mu      sync.Mutex
	release chan struct{}
}

// NewGate returns an open gate.
func NewGate() *Gate {
	return &Gate{ack: make(chan struct{}, 1)}
}

// Poll is called by the owning scheduler at every step boundary. It
// returns GateProceed immediately while the gate is open, blocks while a
// controller holds the actor, and returns GateStop once the actor is
// retired.
func (g *Gate) Poll() GateAction {
	for {
		switch g.mode.Load() {
		case gateRun:
			return GateProceed
		case gateRetire:
			return GateStop
		default:
			g.mu.Lock()
			rel := g.release
			g.mu.Unlock()
			if rel == nil {
				// Pause raced a Resume; mode is (about to be) run again.
				continue
			}
			select {
			case g.ack <- struct{}{}:
			default:
			}
			<-rel
		}
	}
}

// Pause requests a hold and waits for the actor to park at its next step
// boundary. It returns true once the actor is parked (the caller may then
// mutate the actor's port bindings and must call Resume), or false if the
// actor did not reach a boundary within timeout or finished() reported
// true first — in which case the gate has been reopened and nothing may
// be mutated.
func (g *Gate) Pause(timeout time.Duration, finished func() bool) bool {
	g.mu.Lock()
	g.release = make(chan struct{})
	g.mu.Unlock()
	select {
	case <-g.ack: // drain a stale signal from a prior cycle
	default:
	}
	g.mode.Store(gateHold)

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	poll := time.NewTicker(200 * time.Microsecond)
	defer poll.Stop()
	for {
		select {
		case <-g.ack:
			return true
		case <-deadline.C:
			g.Resume()
			return false
		case <-poll.C:
			if finished != nil && finished() {
				g.Resume()
				return false
			}
		}
	}
}

// Resume reopens the gate and releases a parked actor.
func (g *Gate) Resume() {
	g.mode.Store(gateRun)
	g.mu.Lock()
	if g.release != nil {
		close(g.release)
		g.release = nil
	}
	g.mu.Unlock()
}

// Retire marks the actor for removal: its next boundary (including a
// currently-parked one) returns GateStop.
func (g *Gate) Retire() {
	g.mode.Store(gateRetire)
	g.mu.Lock()
	if g.release != nil {
		close(g.release)
		g.release = nil
	}
	g.mu.Unlock()
}
