package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordAndEventsOrder(t *testing.T) {
	r := NewRecorder(128)
	for i := int64(0); i < 10; i++ {
		r.Record(0, RunStart, i*10)
		r.Record(0, RunEnd, i*10+5)
	}
	evs := r.Events()
	if len(evs) != 20 {
		t.Fatalf("events = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events out of order")
		}
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d", r.Dropped())
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := NewRecorder(64)
	for i := int64(0); i < 100; i++ {
		r.Record(0, RunStart, i)
	}
	evs := r.Events()
	if len(evs) != 64 {
		t.Fatalf("retained = %d, want 64", len(evs))
	}
	if evs[0].At != 36 || evs[63].At != 99 {
		t.Fatalf("window = [%d, %d], want [36, 99]", evs[0].At, evs[63].At)
	}
	if r.Dropped() != 36 {
		t.Fatalf("dropped = %d, want 36", r.Dropped())
	}
}

func TestMinimumCapacity(t *testing.T) {
	r := NewRecorder(1)
	if len(r.events) != 64 {
		t.Fatalf("capacity = %d, want clamped 64", len(r.events))
	}
}

func TestSpansPairing(t *testing.T) {
	r := NewRecorder(128)
	r.Record(0, RunStart, 0)
	r.Record(1, RunStart, 5) // interleaved kernels
	r.Record(0, RunEnd, 10)
	r.Record(1, RunEnd, 15)
	r.Record(0, RunStart, 20) // unmatched (still running)
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Kernel != 0 || spans[0].Start != 0 || spans[0].End != 10 {
		t.Fatalf("span0 = %+v", spans[0])
	}
	if spans[1].Kernel != 1 || spans[1].Start != 5 || spans[1].End != 15 {
		t.Fatalf("span1 = %+v", spans[1])
	}
}

func TestTimelineRendering(t *testing.T) {
	r := NewRecorder(256)
	// Kernel 0 busy the whole window; kernel 1 busy the second half only.
	r.Record(0, RunStart, 0)
	r.Record(0, RunEnd, 1000)
	r.Record(1, RunStart, 500)
	r.Record(1, RunEnd, 1000)
	out := r.Timeline([]string{"always", "latehalf"}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline:\n%s", out)
	}
	if !strings.Contains(lines[1], "always") || !strings.Contains(lines[2], "latehalf") {
		t.Fatalf("names missing:\n%s", out)
	}
	row0 := lines[1][strings.IndexByte(lines[1], '|')+1:]
	row1 := lines[2][strings.IndexByte(lines[2], '|')+1:]
	// Kernel 0: every bucket fully shaded.
	if strings.Count(row0, "#") < 19 {
		t.Fatalf("always row underfilled: %q", row0)
	}
	// Kernel 1: first half blank, second half shaded.
	firstHalf := row1[:10]
	secondHalf := row1[10:20]
	if strings.Count(firstHalf, " ") < 9 {
		t.Fatalf("latehalf first half = %q", firstHalf)
	}
	if strings.Count(secondHalf, "#") < 9 {
		t.Fatalf("latehalf second half = %q", secondHalf)
	}
}

func TestTimelineEmpty(t *testing.T) {
	r := NewRecorder(64)
	if !strings.Contains(r.Timeline(nil, 40), "no complete spans") {
		t.Fatal("empty timeline message")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(1024)
	var wg sync.WaitGroup
	for k := int32(0); k < 4; k++ {
		wg.Add(1)
		go func(k int32) {
			defer wg.Done()
			for i := int64(0); i < 500; i++ {
				r.Record(k, RunStart, i)
				r.Record(k, RunEnd, i+1)
			}
		}(k)
	}
	wg.Wait()
	if len(r.Events()) != 1024 {
		t.Fatalf("retained %d", len(r.Events()))
	}
}
