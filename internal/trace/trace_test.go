package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestRecordAndEventsOrder(t *testing.T) {
	r := NewRecorder(128)
	for i := int64(0); i < 10; i++ {
		r.Record(0, RunStart, i*10)
		r.Record(0, RunEnd, i*10+5)
	}
	evs := r.Events()
	if len(evs) != 20 {
		t.Fatalf("events = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events out of order")
		}
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d", r.Dropped())
	}
}

func TestShardWrapKeepsNewest(t *testing.T) {
	// One actor writes 100 events into its 64-slot shard: the shard keeps
	// the newest 64 and the cursor-derived drop count covers the rest.
	r := NewSharded(64, 1)
	for i := int64(0); i < 100; i++ {
		r.Record(0, RunStart, i)
	}
	evs := r.Events()
	if len(evs) != 64 {
		t.Fatalf("retained = %d, want 64", len(evs))
	}
	if evs[0].At != 36 || evs[63].At != 99 {
		t.Fatalf("window = [%d, %d], want [36, 99]", evs[0].At, evs[63].At)
	}
	if r.Dropped() != 36 {
		t.Fatalf("dropped = %d, want 36", r.Dropped())
	}
}

func TestMinimumCapacity(t *testing.T) {
	r := NewSharded(1, 1)
	if r.Cap() != 64 {
		t.Fatalf("capacity = %d, want clamped 64", r.Cap())
	}
	if s := NewSharded(1, 3); len(s.shards) != 4 {
		t.Fatalf("shards = %d, want rounded to 4", len(s.shards))
	}
}

func TestSpansPairing(t *testing.T) {
	r := NewRecorder(128)
	r.Record(0, RunStart, 0)
	r.Record(1, RunStart, 5) // interleaved kernels
	r.Record(0, RunEnd, 10)
	r.Record(1, RunEnd, 15)
	r.Record(0, RunStart, 20) // unmatched (still running)
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Actor != 0 || spans[0].Start != 0 || spans[0].End != 10 {
		t.Fatalf("span0 = %+v", spans[0])
	}
	if spans[1].Actor != 1 || spans[1].Start != 5 || spans[1].End != 15 {
		t.Fatalf("span1 = %+v", spans[1])
	}
}

func TestTimelineRendering(t *testing.T) {
	r := NewRecorder(256)
	// Kernel 0 busy the whole window; kernel 1 busy the second half only.
	r.Record(0, RunStart, 0)
	r.Record(0, RunEnd, 1000)
	r.Record(1, RunStart, 500)
	r.Record(1, RunEnd, 1000)
	out := r.Timeline([]string{"always", "latehalf"}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline:\n%s", out)
	}
	if !strings.Contains(lines[1], "always") || !strings.Contains(lines[2], "latehalf") {
		t.Fatalf("names missing:\n%s", out)
	}
	row0 := lines[1][strings.IndexByte(lines[1], '|')+1:]
	row1 := lines[2][strings.IndexByte(lines[2], '|')+1:]
	// Kernel 0: every bucket fully shaded.
	if strings.Count(row0, "#") < 19 {
		t.Fatalf("always row underfilled: %q", row0)
	}
	// Kernel 1: first half blank, second half shaded.
	firstHalf := row1[:10]
	secondHalf := row1[10:20]
	if strings.Count(firstHalf, " ") < 9 {
		t.Fatalf("latehalf first half = %q", firstHalf)
	}
	if strings.Count(secondHalf, "#") < 9 {
		t.Fatalf("latehalf second half = %q", secondHalf)
	}
}

func TestTimelineOverlaysDecisions(t *testing.T) {
	r := NewRecorder(256)
	r.Record(0, RunStart, 0)
	r.Record(0, RunEnd, 1000)
	r.Emit(Event{Actor: -1, Kind: QueueGrow, At: 250, Prev: 64, Arg: 256, Label: "a->b"})
	r.Emit(Event{Actor: -1, Kind: BatchUp, At: 750, Prev: 1, Arg: 4, Label: "a->b"})
	r.Emit(Event{Actor: 0, Kind: Restart, At: 500, Arg: 1})
	out := r.Timeline([]string{"worker"}, 20)
	if !strings.Contains(out, "monitor decisions") {
		t.Fatalf("no decisions row:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var workerRow, decRow string
	for _, l := range lines {
		if strings.HasPrefix(l, "worker") {
			workerRow = l
		}
		if strings.HasPrefix(l, "monitor decisions") {
			decRow = l
		}
	}
	if !strings.Contains(workerRow, "R") {
		t.Fatalf("restart not marked on kernel row: %q", workerRow)
	}
	if !strings.Contains(decRow, "G") || !strings.Contains(decRow, "B") {
		t.Fatalf("grow/batch not on decisions row: %q", decRow)
	}
}

func TestTimelineEmpty(t *testing.T) {
	r := NewRecorder(64)
	if !strings.Contains(r.Timeline(nil, 40), "no complete spans") {
		t.Fatal("empty timeline message")
	}
}

// TestConcurrentWraparoundAccounting hammers the bus from many goroutines
// — some on distinct actors (distinct shards), some deliberately sharing
// one shard — far past capacity, then checks retained + dropped equals
// the number of events emitted. Run under -race this is also the
// writer/writer and writer/reader safety proof.
func TestConcurrentWraparoundAccounting(t *testing.T) {
	r := NewSharded(512, 4)
	const perG, writers = 2000, 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A concurrent reader merging mid-flight must never see torn events.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range r.Events() {
				if e.Kind != RunStart && e.Kind != RunEnd {
					t.Error("torn event")
					return
				}
			}
			r.Dropped()
		}
	}()
	var writersWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(g int) {
			defer writersWG.Done()
			// Even goroutines get distinct actors; odd ones all share
			// actor 1 so one shard sees true multi-writer contention.
			actor := int32(1)
			if g%2 == 0 {
				actor = int32(g * 4)
			}
			for i := int64(0); i < perG; i++ {
				kind := RunStart
				if i%2 == 1 {
					kind = RunEnd
				}
				r.Record(actor, kind, i)
			}
		}(g)
	}
	writersWG.Wait()
	close(stop)
	wg.Wait()
	total := uint64(perG * writers)
	got := uint64(r.Len()) + r.Dropped()
	if got != total {
		t.Fatalf("retained+dropped = %d, want %d", got, total)
	}
}

// TestShardedMergeOrder is the merge-order property test: events emitted
// across many actors with pseudo-random timestamps come back globally
// non-decreasing in At, and same-actor ties preserve emission order.
func TestShardedMergeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := NewSharded(4096, 8)
	type emitted struct {
		at  int64
		seq int64
	}
	perActor := map[int32][]emitted{}
	for i := 0; i < 2000; i++ {
		actor := int32(rng.Intn(16))
		at := int64(rng.Intn(50)) // dense ties on purpose
		r.Emit(Event{Actor: actor, Kind: RunStart, At: at, Arg: int64(i)})
		perActor[actor] = append(perActor[actor], emitted{at, int64(i)})
	}
	evs := r.Events()
	if len(evs) != 2000 {
		t.Fatalf("retained %d, want 2000", len(evs))
	}
	lastSeq := map[int32]map[int64]int64{}
	for i, e := range evs {
		if i > 0 && e.At < evs[i-1].At {
			t.Fatalf("merge out of order at %d: %d < %d", i, e.At, evs[i-1].At)
		}
		// Within one actor and one timestamp, emission order survives
		// the stable sort.
		if lastSeq[e.Actor] == nil {
			lastSeq[e.Actor] = map[int64]int64{}
		}
		if prev, ok := lastSeq[e.Actor][e.At]; ok && e.Arg < prev {
			t.Fatalf("actor %d ts %d: seq %d after %d", e.Actor, e.At, e.Arg, prev)
		}
		lastSeq[e.Actor][e.At] = e.Arg
	}
}

func TestKindStrings(t *testing.T) {
	for k := RunStart; k <= Deadlock; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if !QueueGrow.Instant() || RunStart.Instant() || RunEnd.Instant() {
		t.Fatal("Instant misclassifies")
	}
}

func TestChromeTraceGolden(t *testing.T) {
	r := NewSharded(256, 2)
	r.Record(0, RunStart, 1000)
	r.Record(0, RunEnd, 3500)
	r.Record(1, RunStart, 2000)
	r.Record(1, RunEnd, 6000)
	r.Emit(Event{Actor: -1, Kind: QueueGrow, At: 2500, Prev: 64, Arg: 256, Label: "gen:out -> work:in"})
	r.Emit(Event{Actor: 1, Kind: Restart, At: 4000, Arg: 1})
	r.Emit(Event{Actor: -1, Kind: BatchUp, At: 5000, Prev: 1, Arg: 4, Label: "work:out -> sink:in"})

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, []string{"gen", "work"}); err != nil {
		t.Fatal(err)
	}

	// Must be well-formed JSON with the expected track structure.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var spans, instants, metas int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
		case "i":
			instants++
		case "M":
			metas++
		}
	}
	if spans != 2 || instants != 3 || metas != 3 {
		t.Fatalf("spans=%d instants=%d metas=%d\n%s", spans, instants, metas, buf.String())
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden missing (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestTimelineGoldenWithMarkerLane pins the full ASCII timeline layout —
// kernel rows, the monitor-decisions row (including a gateway shed), and
// the latency-marker lane with all four lifecycle characters — against a
// golden file, so rendering drift is a reviewed diff, not an accident.
func TestTimelineGoldenWithMarkerLane(t *testing.T) {
	r := NewRecorder(256)
	r.Record(0, RunStart, 0)
	r.Record(0, RunEnd, 1000)
	r.Record(1, RunStart, 200)
	r.Record(1, RunEnd, 900)
	r.Emit(Event{Actor: -1, Kind: QueueGrow, At: 150, Prev: 64, Arg: 256, Label: "gen.out->work.in"})
	r.Emit(Event{Actor: -1, Kind: Shed, At: 450, Arg: 64, Label: "flood/logs"})
	r.Emit(Event{Actor: 0, Kind: MarkStamp, At: 100, Arg: 7, Label: "tenant/src"})
	r.Emit(Event{Actor: 1, Kind: MarkHop, At: 500, Prev: 3, Arg: 7, Label: "gen.out->work.in"})
	r.Emit(Event{Actor: 1, Kind: MarkRetire, At: 800, Prev: 7, Arg: 700, Label: "tenant/src"})
	r.Emit(Event{Actor: -1, Kind: SLOBreach, At: 850, Prev: 7, Arg: 700, Label: "tenant/src"})

	out := r.Timeline([]string{"gen", "work"}, 20)
	var markerRow string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "latency markers") {
			markerRow = l
		}
	}
	if markerRow == "" {
		t.Fatalf("no latency-marker lane:\n%s", out)
	}
	for _, ch := range []string{"S", "+", "M", "L"} {
		if !strings.Contains(markerRow, ch) {
			t.Fatalf("marker lane missing %q: %q", ch, markerRow)
		}
	}

	golden := filepath.Join("testdata", "timeline_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden missing (run with -update): %v", err)
	}
	if out != string(want) {
		t.Fatalf("timeline drifted from golden:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

// TestMarkerRetirementSurvivesBusWrap drives marker lifecycles through a
// deliberately tiny trace bus until its shards overwrite slots many times:
// the bus may lose marker *events* (it is a bounded ring by design), but
// retirement accounting lives in the MarkerDomain, so every stamped marker
// must still be counted, with exact flow and stage statistics.
func TestMarkerRetirementSurvivesBusWrap(t *testing.T) {
	r := NewSharded(64, 1) // one 64-slot shard: guaranteed wraparound
	d := NewMarkerDomain(1)
	const n = 500
	for i := 0; i < n; i++ {
		now := int64(i * 100)
		m := d.Stamp("tenant", "src", now)
		r.Emit(Event{Actor: 0, Kind: MarkStamp, At: now, Arg: int64(m.ID), Label: m.Flow()})
		m.EndTransit("gen.out->sink.in", now+30)
		r.Emit(Event{Actor: 1, Kind: MarkHop, At: now + 30, Arg: int64(m.ID), Label: "gen.out->sink.in"})
		e2e := d.Retire(m, now+70)
		r.Emit(Event{Actor: 1, Kind: MarkRetire, At: now + 70, Prev: int64(m.ID), Arg: int64(e2e), Label: m.Flow()})
	}
	if r.Dropped() == 0 {
		t.Fatal("bus never wrapped — the test exercised nothing")
	}
	if got := d.Retired(); got != n {
		t.Fatalf("retired = %d, want %d (bus overwrites leaked into marker accounting)", got, n)
	}
	flows := d.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows = %+v", flows)
	}
	f := flows[0]
	if f.Tenant != "tenant" || f.Source != "src" || f.Count != n {
		t.Fatalf("flow = %+v, want tenant/src count %d", f, n)
	}
	if f.SumNs != int64(n*70) || f.MaxNs != 70 {
		t.Fatalf("flow sum/max = %d/%d, want %d/70", f.SumNs, f.MaxNs, n*70)
	}
	var hops uint64
	for _, s := range d.Stages() {
		if s.Stage == "gen.out->sink.in" {
			hops = s.Count
		}
	}
	if hops != n {
		t.Fatalf("stage hops = %d, want %d", hops, n)
	}
}

func TestRecorderConcurrentRetention(t *testing.T) {
	r := NewSharded(1024, 8)
	var wg sync.WaitGroup
	for k := int32(0); k < 4; k++ {
		wg.Add(1)
		go func(k int32) {
			defer wg.Done()
			for i := int64(0); i < 500; i++ {
				r.Record(k, RunStart, i)
				r.Record(k, RunEnd, i+1)
			}
		}(k)
	}
	wg.Wait()
	// 4 actors × 1000 events, distinct shards of 128 slots each: each
	// shard wraps, retaining 128.
	if got := len(r.Events()); got != 4*128 {
		t.Fatalf("retained %d, want %d", got, 4*128)
	}
	if r.Dropped() != 4*(1000-128) {
		t.Fatalf("dropped = %d", r.Dropped())
	}
}
