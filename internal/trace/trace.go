// Package trace records per-kernel execution events and renders them as a
// utilization timeline — a step toward the paper's stated future work:
// "Future work in visualization could determine the best way to display
// this information to the user in order to improve their ability to act
// upon it" (§4.1).
//
// The recorder is a bounded, mutex-guarded ring: recording is two stores
// plus an index bump, cheap enough to wrap every kernel invocation, and
// the ring bounds memory for long runs (old events are overwritten; the
// timeline then covers the most recent window).
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Kind labels one event.
type Kind uint8

// Event kinds.
const (
	// RunStart marks the beginning of one kernel invocation.
	RunStart Kind = iota
	// RunEnd marks its completion.
	RunEnd
)

// Event is one recorded occurrence.
type Event struct {
	Kernel int32
	Kind   Kind
	At     int64 // nanoseconds, monotonic-ish (time.Now().UnixNano())
}

// Recorder is a bounded event ring.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	next    int
	wrapped bool
	dropped uint64
}

// NewRecorder returns a recorder holding up to capacity events (min 64).
func NewRecorder(capacity int) *Recorder {
	if capacity < 64 {
		capacity = 64
	}
	return &Recorder{events: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full.
func (r *Recorder) Record(kernel int32, kind Kind, at int64) {
	r.mu.Lock()
	if r.wrapped {
		r.dropped++
	}
	r.events[r.next] = Event{Kernel: kernel, Kind: kind, At: at}
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Dropped returns how many events were overwritten.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Span is one contiguous busy interval of a kernel.
type Span struct {
	Kernel     int32
	Start, End int64
}

// Spans pairs RunStart/RunEnd events per kernel into busy intervals;
// unmatched starts (still running, or their end was overwritten) are
// dropped.
func (r *Recorder) Spans() []Span {
	open := map[int32]int64{}
	var spans []Span
	for _, e := range r.Events() {
		switch e.Kind {
		case RunStart:
			open[e.Kernel] = e.At
		case RunEnd:
			if s, ok := open[e.Kernel]; ok {
				spans = append(spans, Span{Kernel: e.Kernel, Start: s, End: e.At})
				delete(open, e.Kernel)
			}
		}
	}
	return spans
}

// shades maps utilization quintiles to characters for the ASCII timeline.
var shades = []byte(" .:*#")

// Timeline renders per-kernel utilization over time as an ASCII grid:
// one row per kernel, width buckets spanning the recorded window, each
// cell shaded by the fraction of the bucket the kernel spent running.
func (r *Recorder) Timeline(names []string, width int) string {
	if width < 10 {
		width = 60
	}
	spans := r.Spans()
	if len(spans) == 0 {
		return "trace: no complete spans recorded\n"
	}
	lo, hi := spans[0].Start, spans[0].End
	maxKernel := int32(0)
	for _, s := range spans {
		if s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
		if s.Kernel > maxKernel {
			maxKernel = s.Kernel
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	bucket := float64(hi-lo) / float64(width)

	busy := make([][]float64, maxKernel+1)
	for i := range busy {
		busy[i] = make([]float64, width)
	}
	for _, s := range spans {
		b0 := int(float64(s.Start-lo) / bucket)
		b1 := int(float64(s.End-lo) / bucket)
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			cellLo := lo + int64(float64(b)*bucket)
			cellHi := lo + int64(float64(b+1)*bucket)
			overlap := minI64(s.End, cellHi) - maxI64(s.Start, cellLo)
			if overlap > 0 {
				busy[s.Kernel][b] += float64(overlap)
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline over %v (%d buckets, shade = busy fraction)\n",
		time.Duration(hi-lo).Round(time.Microsecond), width)
	for k := int32(0); k <= maxKernel; k++ {
		name := fmt.Sprintf("kernel-%d", k)
		if int(k) < len(names) && names[k] != "" {
			name = names[k]
		}
		fmt.Fprintf(&sb, "%-24.24s |", name)
		for b := 0; b < width; b++ {
			frac := busy[k][b] / bucket
			if frac > 1 {
				frac = 1
			}
			idx := int(frac * float64(len(shades)-1))
			sb.WriteByte(shades[idx])
		}
		sb.WriteString("|\n")
	}
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(&sb, "(%d older events overwritten)\n", d)
	}
	return sb.String()
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
