// Package trace is the runtime's unified telemetry bus: a typed,
// per-actor-sharded event recorder cheap enough to wrap every kernel
// invocation, carrying every decision the runtime makes — kernel
// run start/end, queue resizes, adaptive batch moves, replication width
// changes, supervised restarts, checkpoint saves/restores, and bridge
// disconnect/reconnect/replay — plus exporters that render the stream as
// an ASCII utilization timeline (with monitor decisions overlaid) and as
// Chrome trace-event JSON loadable in Perfetto. This is the paper's §4.1
// monitoring surface ("queue size, current kernel configuration … mean
// queue occupancy, service rate, throughput, queue occupancy histograms")
// made durable, and the §4.1 future-work visualization made concrete.
//
// Recording discipline: each shard is a bounded ring of atomic slot
// pointers reserved through an atomic cursor — one atomic add plus one
// atomic pointer store per event, no locks anywhere on the hot path, and
// wraparound overwrites the oldest events so memory stays bounded on long
// runs. Actors hash to shards, so the common single-writer-per-actor case
// never contends; readers merge the shards chronologically on demand and
// never stall a writer. Dropped counts are derived from the cursors, not
// tracked separately, so overwriting costs nothing extra.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Kind labels one event.
type Kind uint8

// Event kinds. RunStart/RunEnd are the high-frequency pair recorded around
// every kernel invocation; the rest are low-frequency runtime decisions.
const (
	// RunStart marks the beginning of one kernel invocation.
	RunStart Kind = iota
	// RunEnd marks its completion.
	RunEnd
	// QueueGrow and QueueShrink are monitor resizes (Prev/Arg = old/new cap).
	QueueGrow
	QueueShrink
	// BatchUp and BatchDown are adaptive-batcher moves (Prev/Arg = old/new
	// transfer batch size).
	BatchUp
	BatchDown
	// ScaleUp and ScaleDown are replication width changes (Prev/Arg =
	// old/new active replicas).
	ScaleUp
	ScaleDown
	// Restart is one supervised recovery (Arg = 1-based attempt).
	Restart
	// Escalate is a kernel whose restart budget is exhausted (Arg = attempts).
	Escalate
	// CheckpointSave and CheckpointRestore are snapshot writes and restores.
	CheckpointSave
	CheckpointRestore
	// BridgeDisconnect, BridgeReconnect and BridgeReplay are self-healing
	// bridge transitions (BridgeReconnect Arg = lifetime reconnects,
	// BridgeReplay Arg = frames retransmitted).
	BridgeDisconnect
	BridgeReconnect
	BridgeReplay
	// Deadlock is the monitor's frozen-application abort.
	Deadlock
	// Admit is one ingestion-gateway batch accepted into a source port
	// (Arg = elements admitted, Label = "tenant/source").
	Admit
	// Shed is one gateway batch rejected by admission control (Arg =
	// predicted wait in milliseconds, or -1 when unbounded; Label =
	// "tenant/source").
	Shed
	// Drop records best-effort overflow discards on a link (Prev/Arg =
	// old/new cumulative drop count, Label = link name).
	Drop
	// MarkStamp is one latency marker minted at an ingest point (Arg =
	// marker ID, Label = "tenant/source").
	MarkStamp
	// MarkHop is one marker picked up by a stage (Arg = marker ID, Prev =
	// queue residence in ns for the hop, Label = the stage crossed).
	MarkHop
	// MarkRetire is one marker retired at a sink (Prev = marker ID, Arg =
	// end-to-end latency in ns, Label = "tenant/source").
	MarkRetire
	// SLOBreach is one retired marker exceeding the configured end-to-end
	// objective (Prev = marker ID, Arg = e2e ns, Label = "tenant/source").
	SLOBreach
	// Steal is one successful steal by an idle work-stealing worker (Actor =
	// first stolen kernel, Prev = victim shard, Arg = tasks moved, Label =
	// thief shard "w<i>").
	Steal
	// Park is one kernel parking after a Stall, awaiting a link wake
	// (sampled on the scheduler's hot path; Prev = owning shard).
	Park
	// Wake is one parked kernel re-queued (sampled; Arg = 0 for a link
	// transition wake, 1 for a watchdog rescue).
	Wake
	// EpochSeal is one rewrite transaction sealing affected links at a
	// batch boundary (Arg = epoch number, Prev = links sealed, Label =
	// transaction summary).
	EpochSeal
	// GraphAdd is one kernel or link spliced into the running graph by a
	// rewrite transaction (Actor = kernel id or -1 for a link, Arg = epoch,
	// Label = kernel or link name).
	GraphAdd
	// GraphRemove is one kernel or link retired from the running graph
	// (Actor = kernel id or -1 for a link, Arg = epoch, Label = name).
	GraphRemove
)

var kindNames = [...]string{
	RunStart:          "run-start",
	RunEnd:            "run-end",
	QueueGrow:         "grow",
	QueueShrink:       "shrink",
	BatchUp:           "batch-up",
	BatchDown:         "batch-down",
	ScaleUp:           "scale-up",
	ScaleDown:         "scale-down",
	Restart:           "restart",
	Escalate:          "escalate",
	CheckpointSave:    "ckpt-save",
	CheckpointRestore: "ckpt-restore",
	BridgeDisconnect:  "bridge-down",
	BridgeReconnect:   "bridge-up",
	BridgeReplay:      "bridge-replay",
	Deadlock:          "deadlock",
	Admit:             "admit",
	Shed:              "shed",
	Drop:              "drop",
	MarkStamp:         "mark-stamp",
	MarkHop:           "mark-hop",
	MarkRetire:        "mark-retire",
	SLOBreach:         "slo-breach",
	Steal:             "steal",
	Park:              "park",
	Wake:              "wake",
	EpochSeal:         "epoch-seal",
	GraphAdd:          "graph-add",
	GraphRemove:       "graph-remove",
}

// String returns the event kind's stable wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Instant reports whether the kind is a point decision rather than half of
// a RunStart/RunEnd span pair.
func (k Kind) Instant() bool { return k != RunStart && k != RunEnd }

// Event is one recorded occurrence. The Actor/Kind/At triple is always
// set; Prev, Arg and Label carry kind-specific detail (old value, new
// value, and the link / group / bridge-stream name) and stay zero on the
// RunStart/RunEnd hot path so recording allocates nothing beyond the slot.
type Event struct {
	// Actor is the engine actor (kernel) id the event belongs to, or -1
	// for events scoped to a link, group or the whole application.
	Actor int32
	Kind  Kind
	// At is the event time in nanoseconds (time.Now().UnixNano()).
	At int64
	// Prev and Arg are the kind-specific old and new values.
	Prev, Arg int64
	// Label names the non-actor target: a link, group or bridge stream.
	Label string
}

// shard is one bounded ring of the bus. The cursor counts every event
// ever reserved in the shard; slot i lives at i & mask. Readers load the
// cursor and walk the most recent min(cursor, len) slots — an overwrite
// racing the walk simply surfaces the newer event, never a torn one,
// because slots hold atomic pointers.
type shard struct {
	cursor atomic.Uint64
	slots  []atomic.Pointer[Event]
	mask   uint64
	// pad keeps neighboring shards' cursors off one cache line.
	_ [40]byte
}

// Recorder is the sharded event bus.
type Recorder struct {
	shards []shard
	smask  uint32
	// watch, when non-nil, observes every instant event synchronously at
	// Emit time — the flight recorder's trigger tap. Installed once before
	// the run starts, so no synchronization guards the read.
	watch func(Event)
}

// Watch installs a synchronous observer for instant (non-Run) events.
// Call before any Emit races; the observer must be cheap and non-blocking
// on its fast path.
func (r *Recorder) Watch(f func(Event)) { r.watch = f }

// NewRecorder returns a bus holding up to capacity events (min 64),
// sharded for the current process's parallelism.
func NewRecorder(capacity int) *Recorder { return NewSharded(capacity, 0) }

// NewSharded returns a bus holding up to capacity events (min 64 per
// shard) split over the given number of shards, rounded up to a power of
// two (0 selects 8). Size shards to the number of actors so each actor's
// RunStart/RunEnd stream stays single-writer.
func NewSharded(capacity, shards int) *Recorder {
	n := 8
	if shards > 0 {
		n = 1
		for n < shards {
			n <<= 1
		}
	}
	if n > 256 {
		n = 256
	}
	per := capacity / n
	p := 64
	for p < per {
		p <<= 1
	}
	r := &Recorder{shards: make([]shard, n), smask: uint32(n - 1)}
	for i := range r.shards {
		r.shards[i].slots = make([]atomic.Pointer[Event], p)
		r.shards[i].mask = uint64(p - 1)
	}
	return r
}

// Cap returns the total number of events the bus retains.
func (r *Recorder) Cap() int {
	return len(r.shards) * len(r.shards[0].slots)
}

// Record appends one actor-scoped event — the RunStart/RunEnd hot path.
func (r *Recorder) Record(actor int32, kind Kind, at int64) {
	r.Emit(Event{Actor: actor, Kind: kind, At: at})
}

// Emit appends one event, overwriting the oldest in its shard when full.
// Safe for concurrent use from any number of goroutines.
func (r *Recorder) Emit(e Event) {
	sh := &r.shards[uint32(e.Actor+1)&r.smask]
	i := sh.cursor.Add(1) - 1
	sh.slots[i&sh.mask].Store(&e)
	if r.watch != nil && e.Kind.Instant() {
		r.watch(e)
	}
}

// LastEventNs returns the timestamp of the most recently emitted event
// still retained, or 0 when the bus is empty. O(shards): it reads only
// each shard's newest slot, so liveness probes can call it freely.
func (r *Recorder) LastEventNs() int64 {
	var last int64
	for i := range r.shards {
		sh := &r.shards[i]
		c := sh.cursor.Load()
		if c == 0 {
			continue
		}
		if p := sh.slots[(c-1)&sh.mask].Load(); p != nil && p.At > last {
			last = p.At
		}
	}
	return last
}

// Dropped returns how many events have been overwritten, summed over the
// shards (derived from the cursors; nothing is tracked on the hot path).
func (r *Recorder) Dropped() uint64 {
	var d uint64
	for i := range r.shards {
		sh := &r.shards[i]
		if c := sh.cursor.Load(); c > uint64(len(sh.slots)) {
			d += c - uint64(len(sh.slots))
		}
	}
	return d
}

// Len returns the number of currently retained events.
func (r *Recorder) Len() int {
	var n int
	for i := range r.shards {
		sh := &r.shards[i]
		c := sh.cursor.Load()
		if c > uint64(len(sh.slots)) {
			c = uint64(len(sh.slots))
		}
		n += int(c)
	}
	return n
}

// Events returns the retained events merged over the shards in
// chronological order. Each shard's events are gathered oldest-first, so
// same-timestamp events from one shard (one actor) keep their emission
// order through the stable sort.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.Len())
	for i := range r.shards {
		sh := &r.shards[i]
		c := sh.cursor.Load()
		n := c
		if n > uint64(len(sh.slots)) {
			n = uint64(len(sh.slots))
		}
		for j := uint64(0); j < n; j++ {
			if p := sh.slots[(c-n+j)&sh.mask].Load(); p != nil {
				out = append(out, *p)
			}
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out
}

// Span is one contiguous busy interval of an actor.
type Span struct {
	Actor      int32
	Start, End int64
}

// Spans pairs RunStart/RunEnd events per actor into busy intervals;
// unmatched starts (still running, or their end was overwritten) are
// dropped.
func (r *Recorder) Spans() []Span {
	return pairSpans(r.Events())
}

func pairSpans(events []Event) []Span {
	open := map[int32]int64{}
	var spans []Span
	for _, e := range events {
		switch e.Kind {
		case RunStart:
			open[e.Actor] = e.At
		case RunEnd:
			if s, ok := open[e.Actor]; ok {
				spans = append(spans, Span{Actor: e.Actor, Start: s, End: e.At})
				delete(open, e.Actor)
			}
		}
	}
	return spans
}

// shades maps utilization quintiles to characters for the ASCII timeline.
var shades = []byte(" .:*#")

// overlayChar maps a decision kind to its timeline marker. Higher-priority
// kinds win when several decisions land in one bucket.
func overlayChar(k Kind) (byte, int) {
	switch k {
	case Deadlock:
		return 'X', 9
	case Escalate:
		return 'E', 8
	case Restart:
		return 'R', 7
	case BridgeDisconnect:
		return 'D', 6
	case BridgeReconnect:
		return 'U', 5
	case BridgeReplay:
		return 'P', 4
	case ScaleUp, ScaleDown:
		return 'W', 3
	case QueueGrow, QueueShrink:
		return 'G', 2
	case BatchUp, BatchDown:
		return 'B', 1
	case Shed, Drop:
		return 's', 1
	case CheckpointSave, CheckpointRestore:
		return 'c', 0
	}
	return 0, -1
}

// markerChar maps a latency-marker lifecycle kind to its lane character.
// Marker events render on their own timeline lane, not the decisions row.
func markerChar(k Kind) (byte, int) {
	switch k {
	case SLOBreach:
		return 'L', 3
	case MarkRetire:
		return 'M', 2
	case MarkStamp:
		return 'S', 1
	case MarkHop:
		return '+', 0
	}
	return 0, -1
}

// graphChar maps a graph-rewrite lifecycle kind to its lane character.
// Rewrite events render on their own timeline lane so epoch seals and
// splices read against the same time axis as utilization.
func graphChar(k Kind) (byte, int) {
	switch k {
	case EpochSeal:
		return '=', 2
	case GraphRemove:
		return '-', 1
	case GraphAdd:
		return '+', 0
	}
	return 0, -1
}

// Timeline renders per-actor utilization over time as an ASCII grid: one
// row per actor, width buckets spanning the recorded window, each cell
// shaded by the fraction of the bucket the actor spent running. Restarts
// and checkpoints are marked on their actor's row; link-, group- and
// bridge-scoped monitor decisions are overlaid on a trailing "decisions"
// row (R restart, E escalate, G resize, B batch, W width, D/U/P bridge
// down/up/replay, s shed/drop, c checkpoint, X deadlock).
func (r *Recorder) Timeline(names []string, width int) string {
	if width < 10 {
		width = 60
	}
	events := r.Events()
	spans := pairSpans(events)
	if len(spans) == 0 {
		return "trace: no complete spans recorded\n"
	}
	lo, hi := spans[0].Start, spans[0].End
	maxActor := int32(0)
	for _, s := range spans {
		if s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
		if s.Actor > maxActor {
			maxActor = s.Actor
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	bucket := float64(hi-lo) / float64(width)

	busy := make([][]float64, maxActor+1)
	for i := range busy {
		busy[i] = make([]float64, width)
	}
	for _, s := range spans {
		b0 := int(float64(s.Start-lo) / bucket)
		b1 := int(float64(s.End-lo) / bucket)
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			cellLo := lo + int64(float64(b)*bucket)
			cellHi := lo + int64(float64(b+1)*bucket)
			overlap := minI64(s.End, cellHi) - maxI64(s.Start, cellLo)
			if overlap > 0 {
				busy[s.Actor][b] += float64(overlap)
			}
		}
	}

	// Decision overlays: per-actor marks and the shared decisions row.
	actorMark := make([]map[int]byte, maxActor+1)
	decisions := make([]byte, width)
	decisionPri := make([]int, width)
	for i := range decisionPri {
		decisions[i] = ' '
		decisionPri[i] = -1
	}
	decided := false
	// Latency-marker lane: marker lifecycle events share one overlay row so
	// end-to-end probes read against the same time axis as utilization.
	marks := make([]byte, width)
	markPri := make([]int, width)
	for i := range markPri {
		marks[i] = ' '
		markPri[i] = -1
	}
	marked := false
	// Graph-rewrite lane: epoch seals and kernel/link splices share one
	// overlay row, present only when a rewrite happened during the run.
	graphRow := make([]byte, width)
	graphPri := make([]int, width)
	for i := range graphPri {
		graphRow[i] = ' '
		graphPri[i] = -1
	}
	rewrote := false
	for _, e := range events {
		if e.At < lo || e.At > hi {
			continue
		}
		b := int(float64(e.At-lo) / bucket)
		if b >= width {
			b = width - 1
		}
		if ch, pri := graphChar(e.Kind); pri >= 0 {
			if pri > graphPri[b] {
				graphPri[b] = pri
				graphRow[b] = ch
				rewrote = true
			}
			continue
		}
		if ch, pri := markerChar(e.Kind); pri >= 0 {
			if pri > markPri[b] {
				markPri[b] = pri
				marks[b] = ch
				marked = true
			}
			continue
		}
		ch, pri := overlayChar(e.Kind)
		if pri < 0 {
			continue
		}
		if e.Actor >= 0 && e.Actor <= maxActor {
			if actorMark[e.Actor] == nil {
				actorMark[e.Actor] = map[int]byte{}
			}
			actorMark[e.Actor][b] = ch
		}
		if pri > decisionPri[b] {
			decisionPri[b] = pri
			decisions[b] = ch
			decided = true
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline over %v (%d buckets, shade = busy fraction)\n",
		time.Duration(hi-lo).Round(time.Microsecond), width)
	for k := int32(0); k <= maxActor; k++ {
		name := fmt.Sprintf("kernel-%d", k)
		if int(k) < len(names) && names[k] != "" {
			name = names[k]
		}
		fmt.Fprintf(&sb, "%-24.24s |", name)
		for b := 0; b < width; b++ {
			if ch, ok := actorMark[k][b]; ok {
				sb.WriteByte(ch)
				continue
			}
			frac := busy[k][b] / bucket
			if frac > 1 {
				frac = 1
			}
			idx := int(frac * float64(len(shades)-1))
			sb.WriteByte(shades[idx])
		}
		sb.WriteString("|\n")
	}
	if decided {
		fmt.Fprintf(&sb, "%-24.24s |%s|\n", "monitor decisions", decisions)
		sb.WriteString("(R restart, E escalate, G resize, B batch, W width, D/U/P bridge, c ckpt, X deadlock)\n")
	}
	if marked {
		fmt.Fprintf(&sb, "%-24.24s |%s|\n", "latency markers", marks)
		sb.WriteString("(S stamp, + hop, M retire, L SLO breach)\n")
	}
	if rewrote {
		fmt.Fprintf(&sb, "%-24.24s |%s|\n", "graph rewrites", graphRow)
		sb.WriteString("(= epoch seal, + kernel/link added, - removed)\n")
	}
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(&sb, "(%d older events overwritten)\n", d)
	}
	return sb.String()
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
