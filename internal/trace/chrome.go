package trace

import (
	"fmt"
	"io"
	"strings"
)

// WriteChromeTrace renders the retained events as Chrome trace-event JSON
// (the format consumed by Perfetto and chrome://tracing): one named track
// per kernel carrying its RunStart/RunEnd pairs as complete ("X") slices,
// with monitor, supervisor and bridge decisions as instant ("i") events —
// actor-scoped decisions on their kernel's track, link/group/application
// decisions on a trailing "runtime" track. names[i] labels actor i.
func (r *Recorder) WriteChromeTrace(w io.Writer, names []string) error {
	return WriteChrome(w, r.Events(), names)
}

// WriteChrome writes the given chronologically ordered events in Chrome
// trace-event JSON. The output is deterministic for a fixed input.
func WriteChrome(w io.Writer, events []Event, names []string) error {
	bw := &errWriter{w: w}
	bw.puts(`{"displayTimeUnit":"ns","traceEvents":[`)

	// Track metadata: one tid per actor seen, plus the runtime track.
	maxActor := int32(-1)
	runtime := false
	for _, e := range events {
		if e.Actor > maxActor {
			maxActor = e.Actor
		}
		if e.Actor < 0 {
			runtime = true
		}
	}
	first := true
	meta := func(tid int, name string) {
		bw.sep(&first)
		bw.putf(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			tid, quote(name))
	}
	for a := int32(0); a <= maxActor; a++ {
		name := fmt.Sprintf("kernel-%d", a)
		if int(a) < len(names) && names[a] != "" {
			name = names[a]
		}
		meta(int(a), name)
	}
	runtimeTid := int(maxActor) + 1
	if runtime {
		meta(runtimeTid, "runtime")
	}

	// Flow-event bookkeeping: marker lifecycle events (stamp, hop, retire)
	// become Chrome flow phases ("s" start / "t" step / "f" end) keyed by
	// marker ID, so Perfetto draws arrows linking one marker's hops across
	// kernel (and, in merged multi-node traces, cross-process) tracks.
	flowTotal := map[uint64]int{}
	for _, e := range events {
		if id, ok := flowID(e); ok {
			flowTotal[id]++
		}
	}
	flowSeen := map[uint64]int{}

	// Spans: pair RunStart/RunEnd per actor in stream order.
	open := map[int32]int64{}
	for _, e := range events {
		switch e.Kind {
		case RunStart:
			open[e.Actor] = e.At
		case RunEnd:
			s, ok := open[e.Actor]
			if !ok {
				continue
			}
			delete(open, e.Actor)
			bw.sep(&first)
			bw.putf(`{"ph":"X","pid":0,"tid":%d,"name":"run","ts":%s,"dur":%s}`,
				e.Actor, usec(s), usec(e.At-s))
		default:
			tid := runtimeTid
			if e.Actor >= 0 {
				tid = int(e.Actor)
			}
			if id, ok := flowID(e); ok {
				seen := flowSeen[id]
				flowSeen[id] = seen + 1
				ph, bp := "s", ""
				if seen > 0 {
					if seen == flowTotal[id]-1 {
						ph, bp = "f", `,"bp":"e"`
					} else {
						ph = "t"
					}
				}
				bw.sep(&first)
				bw.putf(`{"ph":%s,"pid":0,"tid":%d,"cat":"latency","name":"marker","id":%d%s,"ts":%s,"args":{"kind":%s,"from":%d,"to":%d,"target":%s}}`,
					quote(ph), tid, id, bp, usec(e.At),
					quote(e.Kind.String()), e.Prev, e.Arg, quote(e.Label))
				continue
			}
			bw.sep(&first)
			bw.putf(`{"ph":"i","s":"t","pid":0,"tid":%d,"name":%s,"ts":%s,"args":{"from":%d,"to":%d,"target":%s}}`,
				tid, quote(e.Kind.String()), usec(e.At), e.Prev, e.Arg, quote(e.Label))
		}
	}
	bw.puts("]}\n")
	return bw.err
}

// flowID extracts the marker ID from a marker lifecycle event (stamp and
// hop carry it in Arg, retire in Prev — Arg there is the e2e latency).
func flowID(e Event) (uint64, bool) {
	switch e.Kind {
	case MarkStamp, MarkHop:
		return uint64(e.Arg), true
	case MarkRetire:
		return uint64(e.Prev), true
	}
	return 0, false
}

// usec renders nanoseconds as fractional microseconds (Chrome's ts unit)
// without losing precision.
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// quote JSON-escapes a string the cheap way (labels are identifiers).
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(&b, `\u%04x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) puts(s string) {
	if e.err == nil {
		_, e.err = io.WriteString(e.w, s)
	}
}

func (e *errWriter) putf(format string, args ...any) {
	e.puts(fmt.Sprintf(format, args...))
}

func (e *errWriter) sep(first *bool) {
	if *first {
		*first = false
		return
	}
	e.puts(",\n")
}
