package trace

// Reader incrementally consumes a Recorder's event stream: each Poll
// delivers only the events emitted since the previous Poll, shard by
// shard, without ever blocking a writer. This is the span-consumer API
// the online service-rate estimator (internal/qmodel) reads sampled
// RunStart/RunEnd pairs through — repeatedly calling Recorder.Events()
// would rescan and re-sort the whole retained window on every monitor
// tick, which the estimator cannot afford.
//
// Within one shard events are delivered in emission order, and because
// actors hash to shards, one actor's events always share a shard: per-
// actor ordering (all a span pairer needs) is preserved. Ordering across
// shards is not guaranteed — cross-actor merges should use Event.At.
//
// A Reader is owned by a single goroutine (the monitor loop); concurrent
// Poll calls require external synchronization. Writers never wait on it.
type Reader struct {
	rec  *Recorder
	next []uint64        // per-shard cursor of the next unread event
	lost uint64          // events overwritten before they could be read
	open map[int32]int64 // per-actor pending RunStart, for PollSpans
}

// NewReader returns a reader positioned at the current end of the bus:
// the first Poll sees only events emitted after this call.
func (r *Recorder) NewReader() *Reader {
	rd := &Reader{rec: r, next: make([]uint64, len(r.shards)), open: map[int32]int64{}}
	for i := range r.shards {
		rd.next[i] = r.shards[i].cursor.Load()
	}
	return rd
}

// Poll invokes fn for every event emitted since the previous Poll. If a
// shard wrapped past unread events, the overwritten ones are skipped and
// counted in Lost. Returns the number of events delivered.
func (rd *Reader) Poll(fn func(Event)) int {
	delivered := 0
	for i := range rd.rec.shards {
		sh := &rd.rec.shards[i]
		c := sh.cursor.Load()
		from := rd.next[i]
		if c == from {
			continue
		}
		if c-from > uint64(len(sh.slots)) {
			rd.lost += c - from - uint64(len(sh.slots))
			from = c - uint64(len(sh.slots))
		}
		for j := from; j < c; j++ {
			if p := sh.slots[j&sh.mask].Load(); p != nil {
				fn(*p)
				delivered++
			}
		}
		rd.next[i] = c
	}
	return delivered
}

// PollSpans drains new events and invokes fn for every completed
// RunStart/RunEnd pair, carrying open starts across polls so a span
// whose halves land in different polls is still paired. Non-span events
// are ignored. Returns the number of spans delivered.
func (rd *Reader) PollSpans(fn func(Span)) int {
	spans := 0
	rd.Poll(func(e Event) {
		switch e.Kind {
		case RunStart:
			rd.open[e.Actor] = e.At
		case RunEnd:
			if s, ok := rd.open[e.Actor]; ok && e.At >= s {
				fn(Span{Actor: e.Actor, Start: s, End: e.At})
				spans++
				delete(rd.open, e.Actor)
			}
		}
	})
	return spans
}

// Lost returns how many events were overwritten before this reader could
// observe them.
func (rd *Reader) Lost() uint64 { return rd.lost }
