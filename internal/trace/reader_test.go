package trace

import "testing"

func TestReaderIncrementalPoll(t *testing.T) {
	r := NewRecorder(128)
	r.Record(0, RunStart, 1)
	r.Record(0, RunEnd, 2)

	rd := r.NewReader()
	// Reader starts at the current end: pre-existing events are invisible.
	if n := rd.Poll(func(Event) {}); n != 0 {
		t.Fatalf("first poll delivered %d pre-existing events", n)
	}

	r.Record(0, RunStart, 3)
	r.Record(0, RunEnd, 4)
	var got []Event
	if n := rd.Poll(func(e Event) { got = append(got, e) }); n != 2 {
		t.Fatalf("poll delivered %d, want 2", n)
	}
	if got[0].At != 3 || got[1].At != 4 {
		t.Fatalf("events = %+v", got)
	}
	// Nothing new: next poll is empty.
	if n := rd.Poll(func(Event) {}); n != 0 {
		t.Fatal("re-delivered events")
	}
}

func TestReaderWraparoundCountsLost(t *testing.T) {
	r := NewSharded(64, 1) // one shard, 64 slots
	rd := r.NewReader()
	const emitted = 200
	for i := int64(0); i < emitted; i++ {
		r.Record(0, RunStart, i)
	}
	n := rd.Poll(func(Event) {})
	if n != 64 {
		t.Fatalf("delivered %d, want the retained 64", n)
	}
	if rd.Lost() != emitted-64 {
		t.Fatalf("lost = %d, want %d", rd.Lost(), emitted-64)
	}
}

func TestReaderSpansAcrossPolls(t *testing.T) {
	r := NewRecorder(128)
	rd := r.NewReader()

	// RunStart lands in one poll, RunEnd in the next: the pairing must
	// carry the open span across the poll boundary.
	r.Record(7, RunStart, 100)
	if n := rd.PollSpans(func(Span) {}); n != 0 {
		t.Fatal("half a span delivered")
	}
	r.Record(7, RunEnd, 130)
	var spans []Span
	if n := rd.PollSpans(func(s Span) { spans = append(spans, s) }); n != 1 {
		t.Fatalf("spans delivered = %d, want 1", n)
	}
	if s := spans[0]; s.Actor != 7 || s.Start != 100 || s.End != 130 {
		t.Fatalf("span = %+v", s)
	}
}

func TestReaderSpansInterleavedActors(t *testing.T) {
	r := NewRecorder(128)
	rd := r.NewReader()
	r.Record(1, RunStart, 0)
	r.Record(2, RunStart, 5)
	r.Record(1, RunEnd, 10)
	r.Record(2, RunEnd, 20)
	byActor := map[int32]Span{}
	if n := rd.PollSpans(func(s Span) { byActor[s.Actor] = s }); n != 2 {
		t.Fatalf("spans = %d, want 2", n)
	}
	if s := byActor[1]; s.End-s.Start != 10 {
		t.Fatalf("actor 1 span = %+v", s)
	}
	if s := byActor[2]; s.End-s.Start != 15 {
		t.Fatalf("actor 2 span = %+v", s)
	}
}

func TestReaderIndependentCursors(t *testing.T) {
	r := NewRecorder(128)
	a, b := r.NewReader(), r.NewReader()
	r.Record(0, RunStart, 1)
	if n := a.Poll(func(Event) {}); n != 1 {
		t.Fatalf("reader a delivered %d", n)
	}
	// Reader b has its own cursor: a's poll must not consume its events.
	if n := b.Poll(func(Event) {}); n != 1 {
		t.Fatalf("reader b delivered %d", n)
	}
}
