package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder turns the always-on trace bus into a post-mortem
// artifact: when an anomaly fires — deadlock detection, a supervisor
// escalation, a shed storm at the gateway, or an e2e-latency SLO breach —
// it dumps the retained events as a self-contained Chrome trace plus a
// text post-mortem (recent events, per-flow latency, per-stage residence,
// recently retired markers) into <base>.flightdump/. The bus and the
// marker domain are the bounded always-on rings; the recorder only adds a
// trigger tap and the dump path, so steady-state cost is zero beyond the
// bus itself.
//
// Dumps are gated by a CAS'd cooldown so an anomaly storm produces one
// artifact, not a disk flood; a later trigger past the cooldown
// overwrites the dump with fresher state (the newest anomaly is the one
// the operator wants).
type FlightRecorder struct {
	dir        string
	rec        *Recorder
	dom        *MarkerDomain
	cooldownNs int64

	mu    sync.Mutex
	names []string

	lastNs  atomic.Int64
	dumping atomic.Bool
	dumps   atomic.Uint64

	// Shed-storm detection: a sliding one-second window of Shed events.
	shedWinStart atomic.Int64
	shedCount    atomic.Int64
}

// Shed-storm threshold: this many gateway sheds inside one window
// constitutes an anomaly worth an artifact.
const (
	shedStormN        = 64
	shedStormWindowNs = int64(time.Second)
)

// NewFlightRecorder returns a recorder dumping into <base>.flightdump/
// (base used verbatim when it already carries the suffix). dom may be nil
// (no marker sections in the post-mortem).
func NewFlightRecorder(base string, rec *Recorder, dom *MarkerDomain) *FlightRecorder {
	dir := base
	if !strings.HasSuffix(dir, ".flightdump") {
		dir += ".flightdump"
	}
	return &FlightRecorder{
		dir: dir, rec: rec, dom: dom,
		cooldownNs: int64(10 * time.Second),
	}
}

// SetNames installs the actor-name table used for trace tracks (called
// once actors are built; safe against a concurrent dump).
func (f *FlightRecorder) SetNames(names []string) {
	f.mu.Lock()
	f.names = names
	f.mu.Unlock()
}

// Dir returns the dump directory path.
func (f *FlightRecorder) Dir() string { return f.dir }

// Dumps returns how many artifacts have been written.
func (f *FlightRecorder) Dumps() uint64 { return f.dumps.Load() }

// Observe is the trigger tap, installed as the trace bus watcher: it
// classifies instant events and fires a dump on anomalies. Cheap for
// non-anomalous kinds (one switch).
func (f *FlightRecorder) Observe(e Event) {
	switch e.Kind {
	case Deadlock:
		f.Trigger("deadlock detected (target " + e.Label + ")")
	case Escalate:
		f.Trigger(fmt.Sprintf("supervisor escalation after %d restarts (actor %d %s)",
			e.Arg, e.Actor, e.Label))
	case SLOBreach:
		f.Trigger(fmt.Sprintf("e2e latency SLO breach: %v on flow %s (marker %d)",
			time.Duration(e.Arg).Round(time.Microsecond), e.Label, e.Prev))
	case Shed:
		now := e.At
		start := f.shedWinStart.Load()
		if now-start > shedStormWindowNs {
			if f.shedWinStart.CompareAndSwap(start, now) {
				f.shedCount.Store(0)
			}
		}
		if f.shedCount.Add(1) == shedStormN {
			f.Trigger(fmt.Sprintf("shed storm: %d admissions shed within %v (last flow %s)",
				shedStormN, time.Duration(shedStormWindowNs), e.Label))
		}
	}
}

// Trigger fires one dump for the given reason, unless inside the cooldown
// or a dump is already in progress. Returns the artifact directory and
// whether a dump was written. Synchronous: triggers come from anomaly
// paths, never the data hot path.
func (f *FlightRecorder) Trigger(reason string) (string, bool) {
	now := time.Now().UnixNano()
	last := f.lastNs.Load()
	if last != 0 && now-last < f.cooldownNs {
		return f.dir, false
	}
	if !f.lastNs.CompareAndSwap(last, now) {
		return f.dir, false
	}
	if !f.dumping.CompareAndSwap(false, true) {
		return f.dir, false
	}
	defer f.dumping.Store(false)
	if err := f.dump(reason, now); err != nil {
		// A failed dump must never take the run down with it; surface on
		// stderr and move on.
		fmt.Fprintf(os.Stderr, "raft: flight recorder: %v\n", err)
		return f.dir, false
	}
	f.dumps.Add(1)
	return f.dir, true
}

// dump writes trace.json + postmortem.txt into the artifact directory.
func (f *FlightRecorder) dump(reason string, now int64) error {
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return err
	}
	f.mu.Lock()
	names := f.names
	f.mu.Unlock()
	events := f.rec.Events()

	tf, err := os.Create(filepath.Join(f.dir, "trace.json"))
	if err != nil {
		return err
	}
	if err := WriteChrome(tf, events, names); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "flight recorder post-mortem\n")
	fmt.Fprintf(&sb, "trigger:  %s\n", reason)
	fmt.Fprintf(&sb, "captured: %s\n", time.Unix(0, now).Format(time.RFC3339Nano))
	fmt.Fprintf(&sb, "events:   %d retained (%d older overwritten)\n\n",
		len(events), f.rec.Dropped())
	if f.dom != nil {
		if s := f.dom.Summary(); s != "" {
			sb.WriteString(s)
			sb.WriteString("\n")
		}
		if recent := f.dom.Recent(); len(recent) > 0 {
			sb.WriteString("recently retired markers (oldest first):\n")
			for _, m := range recent {
				fmt.Fprintf(&sb, "  #%d %s e2e=%v\n", m.ID, m.Flow(),
					time.Duration(m.E2ENs()).Round(time.Microsecond))
				for _, h := range m.Hops {
					fmt.Fprintf(&sb, "      %-34.34s queue=%-10v kernel=%v\n", h.Stage,
						time.Duration(h.QueueNs).Round(time.Microsecond),
						time.Duration(h.KernelNs).Round(time.Microsecond))
				}
			}
			sb.WriteString("\n")
		}
	}
	sb.WriteString("last events (newest last):\n")
	tail := events
	if len(tail) > 200 {
		tail = tail[len(tail)-200:]
	}
	for _, e := range tail {
		name := fmt.Sprintf("actor-%d", e.Actor)
		if e.Actor < 0 {
			name = "runtime"
		} else if int(e.Actor) < len(names) && names[e.Actor] != "" {
			name = names[e.Actor]
		}
		fmt.Fprintf(&sb, "  %s %-14s %-12s prev=%-8d arg=%-8d %s\n",
			time.Unix(0, e.At).Format("15:04:05.000000"), name, e.Kind, e.Prev, e.Arg, e.Label)
	}
	return os.WriteFile(filepath.Join(f.dir, "postmortem.txt"), []byte(sb.String()), 0o644)
}
