package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Latency provenance: sampled markers that ride the stream from ingest to
// sink. A marker is stamped at an ingest point (a gateway admission or a
// source kernel's first push), deposited on the out-link's MarkerLane
// alongside the batch it sampled, picked up by the consuming kernel on its
// next pop, and re-deposited downstream after the kernel's push — growing
// one Hop per stage crossed. A sink retires the marker into its
// MarkerDomain, which folds the end-to-end latency into per-(tenant,source)
// histograms and the hop log into per-stage residence attribution
// (time-in-queue vs time-in-kernel), so a critical-path breakdown falls
// out of ordinary operation without per-element instrumentation.
//
// Markers flow *alongside* batches, not inside them: the association is
// statistical (the marker entered the lane with the batch and leaves with
// the next pop), which is exactly as strong as the sampling itself and
// keeps the disabled cost to one nil check per port operation and the
// enabled cost to one atomic load per pop.

// Hop is one stage crossing in a marker's provenance log: how long the
// marker (and statistically, its cohort of elements) sat in the stage's
// input queue and how long the stage held it before forwarding.
type Hop struct {
	// Stage names the queue the hop waited in ("src.port -> dst.port" for
	// links, "bridge:<stream>" for a wire crossing).
	Stage string
	// QueueNs is the residence time in the stage's input queue.
	QueueNs int64
	// KernelNs is the time between pickup and the forwarding push — the
	// kernel-side share of the hop.
	KernelNs int64
}

// Marker is one sampled latency probe. A marker has exactly one owner at
// any instant (the stamping goroutine, a lane, or the holding kernel), so
// no field needs synchronization.
type Marker struct {
	// ID is unique within a MarkerDomain; Chrome flow events key on it.
	ID uint64
	// Tenant and Source identify the ingest flow ("" tenant for
	// non-gateway sources; Source is the source kernel or binding name).
	Tenant, Source string
	// IngestNs is the stamp time (UnixNano).
	IngestNs int64
	// Hops is the per-stage provenance log, ingest to sink.
	Hops []Hop

	// enqNs is when the marker was last deposited on a lane; pickNs when
	// it was last picked up; stage names the lane it was picked from.
	// Owned by whoever holds the marker.
	enqNs, pickNs int64
	stage         string
}

// E2ENs returns the retired marker's end-to-end latency (the sum of its
// hops' queue and kernel residencies, which equals retire time - IngestNs).
func (m *Marker) E2ENs() int64 {
	var t int64
	for _, h := range m.Hops {
		t += h.QueueNs + h.KernelNs
	}
	return t
}

// Flow returns the marker's "tenant/source" label (the gateway's Admit
// label convention; bare source when tenant is empty).
func (m *Marker) Flow() string {
	if m.Tenant == "" {
		return m.Source
	}
	return m.Tenant + "/" + m.Source
}

// MarkerLane is the per-link mailbox markers travel in. The common case —
// nothing in flight — is one atomic load; deposits and pickups take a
// short mutex (markers are sampled, so contention is negligible by
// construction).
type MarkerLane struct {
	name string
	n    atomic.Int32
	mu   sync.Mutex
	ms   []*Marker
}

// NewMarkerLane returns a lane labeled with the link name it shadows.
func NewMarkerLane(name string) *MarkerLane { return &MarkerLane{name: name} }

// Name returns the link label hops through this lane are attributed to.
func (l *MarkerLane) Name() string { return l.name }

// Deposit parks a marker on the lane at time now, closing the marker's
// current hop if it was previously picked up from another lane.
func (l *MarkerLane) Deposit(m *Marker, now int64) {
	if m.pickNs != 0 {
		m.Hops = append(m.Hops, Hop{
			Stage:    m.stage,
			QueueNs:  m.pickNs - m.enqNs,
			KernelNs: now - m.pickNs,
		})
		m.pickNs = 0
	}
	m.enqNs = now
	l.mu.Lock()
	l.ms = append(l.ms, m)
	l.mu.Unlock()
	l.n.Add(1)
}

// Empty reports whether the lane holds no markers (the pop-side fast path).
func (l *MarkerLane) Empty() bool { return l == nil || l.n.Load() == 0 }

// Take drains the lane, recording pickup time and stage on every marker.
// Returns nil when empty.
func (l *MarkerLane) Take(now int64) []*Marker {
	if l.Empty() {
		return nil
	}
	l.mu.Lock()
	ms := l.ms
	l.ms = nil
	l.mu.Unlock()
	if len(ms) > 0 {
		l.n.Add(int32(-len(ms)))
	}
	for _, m := range ms {
		m.pickNs = now
		m.stage = l.name
	}
	return ms
}

// PendingQueueNs returns the open hop's queue residency (valid between a
// lane Take and the closing Deposit/Retire) — the hop-event detail.
func (m *Marker) PendingQueueNs() int64 { return m.pickNs - m.enqNs }

// BeginTransit closes the marker's open hop at time now and stamps now as
// the carrier entry time — the sender side of a bridge handing the marker
// to the wire instead of a lane.
func (m *Marker) BeginTransit(now int64) {
	if m.pickNs != 0 {
		m.Hops = append(m.Hops, Hop{
			Stage:    m.stage,
			QueueNs:  m.pickNs - m.enqNs,
			KernelNs: now - m.pickNs,
		})
		m.pickNs = 0
	}
	m.enqNs = now
}

// EndTransit appends the carrier crossing as one hop named stage — the
// receiver side of a bridge. The marker is then ready for a lane Deposit.
// Cross-node wall clocks are assumed loosely synchronized; a skewed hop
// shows as a negative queue residency rather than corrupting later hops.
func (m *Marker) EndTransit(stage string, now int64) {
	m.Hops = append(m.Hops, Hop{Stage: stage, QueueNs: now - m.enqNs})
	m.enqNs = now
}

// latBuckets is the histogram resolution: log2 buckets of nanoseconds,
// bucket i holding latencies in [2^i, 2^(i+1)). 48 buckets span sub-ns to
// ~3.2 days.
const latBuckets = 48

// FlowStats aggregates retired end-to-end latencies for one
// (tenant, source) flow.
type FlowStats struct {
	Tenant, Source string
	Count          uint64
	SumNs          int64
	MaxNs          int64
	Buckets        [latBuckets]uint64
}

// record folds one latency in.
func (f *FlowStats) record(ns int64) {
	f.Count++
	f.SumNs += ns
	if ns > f.MaxNs {
		f.MaxNs = ns
	}
	f.Buckets[bucketOf(ns)]++
}

func bucketOf(ns int64) int {
	b := 0
	for v := ns; v > 1 && b < latBuckets-1; v >>= 1 {
		b++
	}
	return b
}

// Quantile estimates the q-th latency quantile (0 < q <= 1) from the log2
// histogram by linear interpolation inside the holding bucket.
func (f *FlowStats) Quantile(q float64) time.Duration {
	if f.Count == 0 {
		return 0
	}
	rank := q * float64(f.Count)
	var seen float64
	for i, c := range f.Buckets {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			lo := int64(1) << uint(i)
			if i == 0 {
				lo = 0
			}
			hi := int64(1) << uint(i+1)
			frac := (rank - seen) / float64(c)
			return time.Duration(lo + int64(frac*float64(hi-lo)))
		}
		seen += float64(c)
	}
	return time.Duration(f.MaxNs)
}

// Mean returns the flow's mean end-to-end latency.
func (f *FlowStats) Mean() time.Duration {
	if f.Count == 0 {
		return 0
	}
	return time.Duration(f.SumNs / int64(f.Count))
}

// TenantQuantile estimates the q-th end-to-end latency quantile across
// every flow belonging to tenant, merging the per-flow histograms.
// ok is false when no marker of that tenant has retired yet.
func (d *MarkerDomain) TenantQuantile(tenant string, q float64) (time.Duration, bool) {
	var agg FlowStats
	d.mu.Lock()
	for _, f := range d.flows {
		if f.Tenant != tenant {
			continue
		}
		agg.Count += f.Count
		agg.SumNs += f.SumNs
		if f.MaxNs > agg.MaxNs {
			agg.MaxNs = f.MaxNs
		}
		for i, c := range f.Buckets {
			agg.Buckets[i] += c
		}
	}
	d.mu.Unlock()
	if agg.Count == 0 {
		return 0, false
	}
	return agg.Quantile(q), true
}

// StageStats aggregates residence attribution for one stage across all
// retired markers that crossed it.
type StageStats struct {
	Stage    string
	Count    uint64
	QueueNs  int64
	KernelNs int64
}

// recentRetired bounds the retired-marker ring kept for post-mortems.
const recentRetired = 256

// MarkerDomain owns one execution's marker lifecycle: ID allotment,
// sampling stride, retirement aggregation, and the SLO trigger.
type MarkerDomain struct {
	stride uint32
	seq    atomic.Uint64
	sloNs  int64
	// onBreach fires (outside the domain lock) when a retired marker's
	// end-to-end latency exceeds the SLO. Set before the run starts.
	onBreach func(m *Marker, e2e time.Duration)

	retiredN atomic.Uint64

	mu     sync.Mutex
	flows  map[string]*FlowStats
	stages map[string]*StageStats
	recent [recentRetired]*Marker
	rn     uint64
}

// NewMarkerDomain returns a domain sampling one marker every stride
// elements per source (stride < 1 selects 1).
func NewMarkerDomain(stride int) *MarkerDomain {
	if stride < 1 {
		stride = 1
	}
	return &MarkerDomain{
		stride: uint32(stride),
		flows:  map[string]*FlowStats{},
		stages: map[string]*StageStats{},
	}
}

// Stride returns the sampling stride (one marker per stride elements).
func (d *MarkerDomain) Stride() uint32 { return d.stride }

// SetSLO installs the end-to-end latency objective and its breach hook;
// zero disables the check. Call before the run starts.
func (d *MarkerDomain) SetSLO(slo time.Duration, onBreach func(m *Marker, e2e time.Duration)) {
	d.sloNs = int64(slo)
	d.onBreach = onBreach
}

// Stamp mints one marker for the given flow at time now.
func (d *MarkerDomain) Stamp(tenant, source string, now int64) *Marker {
	return &Marker{
		ID:       d.seq.Add(1),
		Tenant:   tenant,
		Source:   source,
		IngestNs: now,
	}
}

// Retire closes the marker's final hop at time now and folds it into the
// domain's aggregates. It returns the end-to-end latency. sinkStage labels
// the retiring kernel's side of the final hop (already closed by the
// caller if the marker was deposited rather than held).
func (d *MarkerDomain) Retire(m *Marker, now int64) time.Duration {
	if m.pickNs != 0 {
		m.Hops = append(m.Hops, Hop{
			Stage:   m.stage,
			QueueNs: m.pickNs - m.enqNs,
			// Retirement happens at pickup: the sink's service time is not
			// part of the element's wait, so KernelNs stays 0 here.
		})
		m.pickNs = 0
	}
	e2e := now - m.IngestNs
	if e2e < 0 {
		e2e = 0
	}
	d.retiredN.Add(1)
	d.mu.Lock()
	flow := m.Flow()
	f := d.flows[flow]
	if f == nil {
		f = &FlowStats{Tenant: m.Tenant, Source: m.Source}
		d.flows[flow] = f
	}
	f.record(e2e)
	for _, h := range m.Hops {
		s := d.stages[h.Stage]
		if s == nil {
			s = &StageStats{Stage: h.Stage}
			d.stages[h.Stage] = s
		}
		s.Count++
		s.QueueNs += h.QueueNs
		s.KernelNs += h.KernelNs
	}
	d.recent[d.rn%recentRetired] = m
	d.rn++
	d.mu.Unlock()
	if d.sloNs > 0 && e2e > d.sloNs && d.onBreach != nil {
		d.onBreach(m, time.Duration(e2e))
	}
	return time.Duration(e2e)
}

// Retired returns how many markers have been retired.
func (d *MarkerDomain) Retired() uint64 { return d.retiredN.Load() }

// Flows returns a stable snapshot of per-flow latency aggregates, sorted
// by flow label.
func (d *MarkerDomain) Flows() []FlowStats {
	d.mu.Lock()
	out := make([]FlowStats, 0, len(d.flows))
	for _, f := range d.flows {
		out = append(out, *f)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// Stages returns a stable snapshot of per-stage residence attribution,
// sorted by total residence (descending) — the critical path reads top
// down.
func (d *MarkerDomain) Stages() []StageStats {
	d.mu.Lock()
	out := make([]StageStats, 0, len(d.stages))
	for _, s := range d.stages {
		out = append(out, *s)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		ti := out[i].QueueNs + out[i].KernelNs
		tj := out[j].QueueNs + out[j].KernelNs
		if ti != tj {
			return ti > tj
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// Recent returns the most recently retired markers, oldest first (bounded
// by the post-mortem ring).
func (d *MarkerDomain) Recent() []*Marker {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.rn
	if n > recentRetired {
		n = recentRetired
	}
	out := make([]*Marker, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.recent[(d.rn-n+i)%recentRetired])
	}
	return out
}

// Summary renders the domain's aggregates as the text block shared by
// Report and the flight recorder's post-mortem.
func (d *MarkerDomain) Summary() string {
	flows := d.Flows()
	if len(flows) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("end-to-end latency (sampled markers):\n")
	sb.WriteString("  flow                            count      p50      p99      max\n")
	for _, f := range flows {
		label := f.Source
		if f.Tenant != "" {
			label = f.Tenant + "/" + f.Source
		}
		fmt.Fprintf(&sb, "  %-30.30s %6d %8v %8v %8v\n",
			label, f.Count,
			f.Quantile(0.50).Round(time.Microsecond),
			f.Quantile(0.99).Round(time.Microsecond),
			time.Duration(f.MaxNs).Round(time.Microsecond))
	}
	stages := d.Stages()
	if len(stages) > 0 {
		sb.WriteString("  per-stage residence (queue / kernel, mean per marker):\n")
		for _, s := range stages {
			if s.Count == 0 {
				continue
			}
			fmt.Fprintf(&sb, "    %-34.34s %8v / %-8v (%d markers)\n",
				s.Stage,
				(time.Duration(s.QueueNs) / time.Duration(s.Count)).Round(time.Microsecond),
				(time.Duration(s.KernelNs) / time.Duration(s.Count)).Round(time.Microsecond),
				s.Count)
		}
	}
	return sb.String()
}

// EncodeMarkers packs markers into the compact binary sidecar carried by
// bridge frames: a uvarint count, then per marker ID, IngestNs, enqNs,
// tenant, source, and the hop log. The encoding is independent of the
// frame's payload encoding (gob or raw), so both wire modes carry it
// unchanged, and the bytes are immutable once encoded — replayed frames
// resend the identical sidecar.
func EncodeMarkers(ms []*Marker) []byte {
	if len(ms) == 0 {
		return nil
	}
	var b []byte
	b = appendUvarint(b, uint64(len(ms)))
	for _, m := range ms {
		b = appendUvarint(b, m.ID)
		b = appendUvarint(b, uint64(m.IngestNs))
		b = appendUvarint(b, uint64(m.enqNs))
		b = appendString(b, m.Tenant)
		b = appendString(b, m.Source)
		b = appendUvarint(b, uint64(len(m.Hops)))
		for _, h := range m.Hops {
			b = appendString(b, h.Stage)
			b = appendUvarint(b, zigzag(h.QueueNs))
			b = appendUvarint(b, zigzag(h.KernelNs))
		}
	}
	return b
}

// DecodeMarkers unpacks a sidecar produced by EncodeMarkers. A malformed
// sidecar returns an error rather than partial markers.
func DecodeMarkers(b []byte) ([]*Marker, error) {
	if len(b) == 0 {
		return nil, nil
	}
	d := &markDec{b: b}
	n := d.uvarint()
	if n > uint64(len(b)) { // each marker costs >= 1 byte
		return nil, fmt.Errorf("marker sidecar: implausible count %d", n)
	}
	ms := make([]*Marker, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		m := &Marker{
			ID:       d.uvarint(),
			IngestNs: int64(d.uvarint()),
		}
		m.enqNs = int64(d.uvarint())
		m.Tenant = d.str()
		m.Source = d.str()
		hn := d.uvarint()
		if hn > uint64(len(b)) {
			return nil, fmt.Errorf("marker sidecar: implausible hop count %d", hn)
		}
		for j := uint64(0); j < hn && d.err == nil; j++ {
			m.Hops = append(m.Hops, Hop{
				Stage:    d.str(),
				QueueNs:  unzigzag(d.uvarint()),
				KernelNs: unzigzag(d.uvarint()),
			})
		}
		ms = append(ms, m)
	}
	if d.err != nil {
		return nil, d.err
	}
	return ms, nil
}

type markDec struct {
	b   []byte
	off int
	err error
}

func (d *markDec) uvarint() uint64 {
	var v uint64
	var shift uint
	for {
		if d.off >= len(d.b) {
			d.err = fmt.Errorf("marker sidecar: truncated varint")
			return 0
		}
		c := d.b[d.off]
		d.off++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v
		}
		shift += 7
		if shift > 63 {
			d.err = fmt.Errorf("marker sidecar: varint overflow")
			return 0
		}
	}
}

func (d *markDec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(d.off)+n > uint64(len(d.b)) {
		d.err = fmt.Errorf("marker sidecar: truncated string")
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
