// Package mapper solves RaftLib's mapping problem: assigning compute
// kernels to compute resources.
//
// From the paper (§4.1): "the initial mapping algorithm provided with
// RaftLib is a simple one (similar to a spanning tree) that attempts to
// place the fewest number of 'streams' over high latency connections (i.e.,
// across physical compute cores or TCP links). It begins with a priority
// queue with the highest latency link getting the highest priority, finds
// the partition with the minimal number of links crossing it then proceeds
// to partition based on the next highest latency link for these two
// partitions. If no difference in latency exists ... then computation is
// shared evenly amongst the cores."
//
// The implementation here is exactly that scheme expressed as hierarchical
// recursive bisection over a place hierarchy (machine → socket → core, with
// optional remote nodes): at each hierarchy level — highest crossing
// latency first — the kernel set is split into balanced parts minimizing
// the weight of streams crossing the boundary, then each part recurses into
// the next level. No claim of optimality is made (nor does the paper); the
// algorithm is fast and the A6 ablation compares it against random and
// even-spread placement.
package mapper

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"raftlib/internal/graph"
)

// Place is one leaf compute resource (a core, possibly remote).
type Place struct {
	ID     int
	Node   int // machine index (0 = local)
	Socket int // socket index within the machine
	Core   int // core index within the socket
	// Speed is a relative compute-speed multiplier (1.0 = baseline);
	// heterogeneous resources (the paper's FPGA/GPU places) use ≠1 values.
	Speed float64
}

// Topology is the set of places plus the latency model between them.
type Topology struct {
	Places []Place
	// Latencies for stream crossings at each boundary level.
	SameCoreLatency    time.Duration
	CrossCoreLatency   time.Duration
	CrossSocketLatency time.Duration
	CrossNodeLatency   time.Duration
}

// Default boundary latencies (order-of-magnitude costs of moving one cache
// line across the boundary; only ratios matter to the partitioner).
const (
	DefaultCrossCoreLatency   = 100 * time.Nanosecond
	DefaultCrossSocketLatency = 300 * time.Nanosecond
	DefaultCrossNodeLatency   = 50 * time.Microsecond
)

// NewLocal builds a single-machine topology with the given core count
// spread evenly over the given socket count.
func NewLocal(cores, sockets int) Topology {
	if cores < 1 {
		cores = 1
	}
	if sockets < 1 {
		sockets = 1
	}
	if sockets > cores {
		sockets = cores
	}
	t := Topology{
		CrossCoreLatency:   DefaultCrossCoreLatency,
		CrossSocketLatency: DefaultCrossSocketLatency,
		CrossNodeLatency:   DefaultCrossNodeLatency,
	}
	perSocket := (cores + sockets - 1) / sockets
	for c := 0; c < cores; c++ {
		t.Places = append(t.Places, Place{
			ID:     c,
			Node:   0,
			Socket: c / perSocket,
			Core:   c % perSocket,
			Speed:  1,
		})
	}
	return t
}

// AddRemoteNode appends cores belonging to an additional machine and
// returns the new node index. Remote places model the paper's distributed
// ("oar") resources reachable over TCP links.
func (t *Topology) AddRemoteNode(cores int) int {
	node := 0
	for _, p := range t.Places {
		if p.Node >= node {
			node = p.Node + 1
		}
	}
	base := len(t.Places)
	for c := 0; c < cores; c++ {
		t.Places = append(t.Places, Place{
			ID: base + c, Node: node, Socket: 0, Core: c, Speed: 1,
		})
	}
	return node
}

// Latency returns the modeled cost of a stream between two places.
func (t Topology) Latency(a, b int) time.Duration {
	pa, pb := t.Places[a], t.Places[b]
	switch {
	case pa.Node != pb.Node:
		return t.CrossNodeLatency
	case pa.Socket != pb.Socket:
		return t.CrossSocketLatency
	case pa.Core != pb.Core:
		return t.CrossCoreLatency
	default:
		return t.SameCoreLatency
	}
}

// Assignment maps node (kernel) IDs to place IDs.
type Assignment []int

// CutCost returns the total latency-weighted cost of streams that cross
// place boundaries under the assignment: Σ edgeWeight × latency.
func CutCost(g *graph.Graph, t Topology, a Assignment) time.Duration {
	var total time.Duration
	for _, e := range g.Edges {
		lat := t.Latency(a[e.Src], a[e.Dst])
		total += time.Duration(float64(lat) * e.Weight)
	}
	return total
}

// Assign runs the latency-priority recursive partitioner and returns a
// place for every kernel. It returns an error for an empty topology.
func Assign(g *graph.Graph, t Topology) (Assignment, error) {
	if len(t.Places) == 0 {
		return nil, fmt.Errorf("mapper: topology has no places")
	}
	kernels := make([]int, len(g.Nodes))
	for i := range kernels {
		kernels[i] = i
	}
	places := make([]int, len(t.Places))
	for i := range places {
		places[i] = i
	}
	asg := make(Assignment, len(g.Nodes))
	assignLevel(g, t, kernels, places, levelNode, asg)
	return asg, nil
}

type level int

const (
	levelNode level = iota
	levelSocket
	levelCore
	levelDone
)

// groupKey buckets places at the given hierarchy level.
func groupKey(p Place, lv level) int {
	switch lv {
	case levelNode:
		return p.Node
	case levelSocket:
		return p.Socket
	default:
		return p.Core
	}
}

// assignLevel recursively partitions kernels over the place groups at this
// hierarchy level, then descends into each group.
func assignLevel(g *graph.Graph, t Topology, kernels, places []int, lv level, out Assignment) {
	if len(kernels) == 0 {
		return
	}
	if lv == levelDone || len(places) == 1 {
		for _, k := range kernels {
			out[k] = places[0]
		}
		return
	}
	// Group the available places at this level.
	groupIdx := map[int][]int{}
	var keys []int
	for _, pid := range places {
		key := groupKey(t.Places[pid], lv)
		if _, ok := groupIdx[key]; !ok {
			keys = append(keys, key)
		}
		groupIdx[key] = append(groupIdx[key], pid)
	}
	sort.Ints(keys)
	if len(keys) == 1 {
		// No latency difference at this boundary: descend directly
		// ("computation is shared evenly amongst the cores").
		assignLevel(g, t, kernels, groupIdx[keys[0]], lv+1, out)
		return
	}
	parts := partition(g, kernels, len(keys))
	for i, key := range keys {
		assignLevel(g, t, parts[i], groupIdx[key], lv+1, out)
	}
}

// partitionExactMax bounds the kernel-set size the exact cut DP and greedy
// refinement run on; larger sets take the linearize-and-split fast path.
const partitionExactMax = 2048

// partition splits the kernel set into k contiguous parts of a
// depth-first linearization, choosing the k-1 cut positions that sever the
// fewest (weighted) streams subject to a loose balance bound — the
// minimal-crossings objective of the paper's mapper, with balance as the
// tie-breaker rather than the goal. A greedy boundary-move refinement
// follows.
func partition(g *graph.Graph, kernels []int, k int) [][]int {
	if k <= 1 || len(kernels) <= 1 {
		return pad([][]int{append([]int(nil), kernels...)}, k)
	}
	inSet := make(map[int]bool, len(kernels))
	for _, v := range kernels {
		inSet[v] = true
	}
	order := chainOrder(g, kernels, inSet)
	n := len(order)
	origK := k
	if k > n {
		k = n
	}

	if n > partitionExactMax {
		// Fast path for very large kernel sets (the 100k-kernel graphs the
		// work-stealing scheduler targets): the exact cut DP is
		// O(k·n·maxBlock) and the greedy refinement O(passes·n·E), both
		// quadratic-ish in n. The linearization already places most stream
		// edges between adjacent positions, so even contiguous blocks over
		// it — the same shape as the DP's infeasibility fallback — cut few
		// streams at a tiny fraction of the cost.
		parts := make([][]int, k)
		for i, v := range order {
			pi := i * k / n
			parts[pi] = append(parts[pi], v)
		}
		return pad(parts, origK)
	}

	// spanCost[p] = total weight of edges whose endpoints straddle a cut
	// between order positions p-1 and p.
	pos := make(map[int]int, n)
	for i, v := range order {
		pos[v] = i
	}
	spanCost := make([]float64, n+1)
	for _, e := range g.Edges {
		if !inSet[e.Src] || !inSet[e.Dst] {
			continue
		}
		lo, hi := pos[e.Src], pos[e.Dst]
		if lo > hi {
			lo, hi = hi, lo
		}
		for p := lo + 1; p <= hi; p++ {
			spanCost[p] += e.Weight
		}
	}

	// DP over cut positions: f[j][p] = min cost of splitting order[0:p]
	// into j blocks, each with size in [1, maxBlock].
	maxBlock := (3*n + 2*k - 1) / (2 * k) // ceil(1.5 n / k)
	if maxBlock < 1 {
		maxBlock = 1
	}
	const inf = 1e18
	f := make([][]float64, k+1)
	cutAt := make([][]int, k+1)
	for j := range f {
		f[j] = make([]float64, n+1)
		cutAt[j] = make([]int, n+1)
		for p := range f[j] {
			f[j][p] = inf
		}
	}
	f[0][0] = 0
	for j := 1; j <= k; j++ {
		for p := 1; p <= n; p++ {
			for q := p - 1; q >= 0 && p-q <= maxBlock; q-- {
				if f[j-1][q] >= inf {
					continue
				}
				cost := f[j-1][q]
				if q > 0 {
					cost += spanCost[q]
				}
				if cost < f[j][p] {
					f[j][p] = cost
					cutAt[j][p] = q
				}
			}
		}
	}

	parts := make([][]int, k)
	if f[k][n] >= inf {
		// Infeasible under the balance bound (shouldn't happen with
		// maxBlock >= ceil(n/k)); fall back to even blocks.
		for i, v := range order {
			pi := i * k / n
			parts[pi] = append(parts[pi], v)
		}
	} else {
		p := n
		for j := k; j >= 1; j-- {
			q := cutAt[j][p]
			block := append([]int(nil), order[q:p]...)
			parts[j-1] = block
			p = q
		}
	}
	refine(g, parts, inSet)
	return pad(parts, origK)
}

// pad extends a part list with empty parts up to k entries.
func pad(parts [][]int, k int) [][]int {
	for len(parts) < k {
		parts = append(parts, nil)
	}
	return parts
}

// chainOrder linearizes the kernel subset so that contiguous blocks cut as
// few streams as possible: a depth-first walk from the subset's sources
// (the paper's "similar to a spanning tree"), taking the branch with the
// fewest descendants first so short side chains stay adjacent to their
// fork instead of straddling a cut. Cyclic leftovers are appended as-is.
func chainOrder(g *graph.Graph, kernels []int, inSet map[int]bool) []int {
	indeg := map[int]int{}
	adj := map[int][]int{}
	for _, v := range kernels {
		indeg[v] = 0
	}
	for _, e := range g.Edges {
		if inSet[e.Src] && inSet[e.Dst] {
			indeg[e.Dst]++
			adj[e.Src] = append(adj[e.Src], e.Dst)
		}
	}

	// Memoized descendant count (over-counts on diamonds; a fine
	// tie-break heuristic).
	desc := map[int]int{}
	var countDesc func(v int, onPath map[int]bool) int
	countDesc = func(v int, onPath map[int]bool) int {
		if n, ok := desc[v]; ok {
			return n
		}
		if onPath[v] {
			return 0 // cycle guard
		}
		onPath[v] = true
		n := 0
		for _, w := range adj[v] {
			n += 1 + countDesc(w, onPath)
		}
		delete(onPath, v)
		desc[v] = n
		return n
	}

	var roots []int
	for _, v := range kernels {
		if indeg[v] == 0 {
			roots = append(roots, v)
		}
	}
	sort.Ints(roots)

	var order []int
	seen := map[int]bool{}
	var dfs func(v int)
	dfs = func(v int) {
		if seen[v] {
			return
		}
		seen[v] = true
		order = append(order, v)
		children := append([]int(nil), adj[v]...)
		sort.Slice(children, func(i, j int) bool {
			di := countDesc(children[i], map[int]bool{})
			dj := countDesc(children[j], map[int]bool{})
			if di != dj {
				return di < dj
			}
			return children[i] < children[j]
		})
		for _, w := range children {
			dfs(w)
		}
	}
	for _, r := range roots {
		dfs(r)
	}
	for _, v := range kernels { // cycle leftovers
		if !seen[v] {
			order = append(order, v)
		}
	}
	return order
}

// refine performs greedy single-kernel moves between adjacent parts when a
// move strictly reduces the number of crossing edges and keeps parts
// non-empty.
func refine(g *graph.Graph, parts [][]int, inSet map[int]bool) {
	partOf := map[int]int{}
	for pi, p := range parts {
		for _, v := range p {
			partOf[v] = pi
		}
	}
	cross := func(v, pi int) int {
		// Crossing edges incident to v if v were in part pi.
		n := 0
		for _, e := range g.Edges {
			if !inSet[e.Src] || !inSet[e.Dst] {
				continue
			}
			var other int
			switch v {
			case e.Src:
				other = e.Dst
			case e.Dst:
				other = e.Src
			default:
				continue
			}
			if partOf[other] != pi {
				n++
			}
		}
		return n
	}
	for pass := 0; pass < 4; pass++ {
		improved := false
		for pi := range parts {
			for _, dir := range []int{-1, 1} {
				pj := pi + dir
				if pj < 0 || pj >= len(parts) {
					continue
				}
				if len(parts[pi]) <= 1 {
					continue
				}
				// Try moving each boundary kernel of pi into pj.
				for idx := 0; idx < len(parts[pi]); idx++ {
					v := parts[pi][idx]
					if cross(v, pj) < cross(v, pi) {
						parts[pi] = append(parts[pi][:idx], parts[pi][idx+1:]...)
						parts[pj] = append(parts[pj], v)
						partOf[v] = pj
						improved = true
						idx--
						if len(parts[pi]) <= 1 {
							break
						}
					}
				}
			}
		}
		if !improved {
			break
		}
	}
}

// EvenSpread assigns kernels round-robin across places — the paper's
// no-latency-difference fallback, used standalone as an A6 baseline.
func EvenSpread(g *graph.Graph, t Topology) Assignment {
	a := make(Assignment, len(g.Nodes))
	for i := range a {
		a[i] = t.Places[i%len(t.Places)].ID
	}
	return a
}

// Random assigns kernels uniformly at random (seeded, reproducible) — the
// other A6 baseline.
func Random(g *graph.Graph, t Topology, seed int64) Assignment {
	rng := rand.New(rand.NewSource(seed))
	a := make(Assignment, len(g.Nodes))
	for i := range a {
		a[i] = t.Places[rng.Intn(len(t.Places))].ID
	}
	return a
}
