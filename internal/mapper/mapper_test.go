package mapper

import (
	"testing"

	"raftlib/internal/graph"
)

func pipeline(n int) *graph.Graph {
	g := &graph.Graph{}
	for i := 0; i < n; i++ {
		g.AddNode("k", 1)
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, "out", "in", "int", 1)
	}
	return g
}

func TestNewLocalShape(t *testing.T) {
	top := NewLocal(8, 2)
	if len(top.Places) != 8 {
		t.Fatalf("places = %d", len(top.Places))
	}
	sockets := map[int]int{}
	for _, p := range top.Places {
		sockets[p.Socket]++
	}
	if len(sockets) != 2 || sockets[0] != 4 || sockets[1] != 4 {
		t.Fatalf("socket split = %v", sockets)
	}
}

func TestNewLocalClamps(t *testing.T) {
	top := NewLocal(0, 0)
	if len(top.Places) != 1 {
		t.Fatalf("places = %d, want 1", len(top.Places))
	}
	top = NewLocal(2, 5) // sockets > cores
	if len(top.Places) != 2 {
		t.Fatalf("places = %d", len(top.Places))
	}
}

func TestLatencyHierarchy(t *testing.T) {
	top := NewLocal(4, 2)
	node := top.AddRemoteNode(2)
	if node != 1 {
		t.Fatalf("remote node index = %d", node)
	}
	sameCore := top.Latency(0, 0)
	crossCore := top.Latency(0, 1) // same socket
	crossSock := top.Latency(0, 2) // other socket
	crossNode := top.Latency(0, 4) // remote
	if !(sameCore < crossCore && crossCore < crossSock && crossSock < crossNode) {
		t.Fatalf("latency ordering violated: %v %v %v %v", sameCore, crossCore, crossSock, crossNode)
	}
}

func TestAssignEmptyTopology(t *testing.T) {
	if _, err := Assign(pipeline(3), Topology{}); err == nil {
		t.Fatal("empty topology must error")
	}
}

func TestAssignCoversAllKernels(t *testing.T) {
	g := pipeline(10)
	top := NewLocal(4, 1)
	a, err := Assign(g, top)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10 {
		t.Fatalf("assignment len = %d", len(a))
	}
	used := map[int]bool{}
	for _, p := range a {
		if p < 0 || p >= 4 {
			t.Fatalf("place %d out of range", p)
		}
		used[p] = true
	}
	if len(used) < 2 {
		t.Fatalf("only %d places used for 10 kernels on 4 cores", len(used))
	}
}

func TestAssignPipelineIsContiguous(t *testing.T) {
	// A pipeline split across 2 sockets should cut exactly one edge at the
	// socket boundary (the partitioner's whole point).
	g := pipeline(8)
	top := NewLocal(8, 2)
	a, err := Assign(g, top)
	if err != nil {
		t.Fatal(err)
	}
	crossings := 0
	for _, e := range g.Edges {
		if top.Places[a[e.Src]].Socket != top.Places[a[e.Dst]].Socket {
			crossings++
		}
	}
	if crossings > 1 {
		t.Fatalf("%d cross-socket edges on a pipeline, want <= 1 (assignment %v)", crossings, a)
	}
}

func TestAssignBeatsRandomOnCutCost(t *testing.T) {
	g := pipeline(16)
	top := NewLocal(8, 2)
	smart, err := Assign(g, top)
	if err != nil {
		t.Fatal(err)
	}
	smartCost := CutCost(g, top, smart)
	worse := 0
	for seed := int64(0); seed < 10; seed++ {
		if CutCost(g, top, Random(g, top, seed)) >= smartCost {
			worse++
		}
	}
	if worse < 8 {
		t.Fatalf("partitioner beat random only %d/10 times (cost %v)", worse, smartCost)
	}
}

func TestAssignSingleCore(t *testing.T) {
	g := pipeline(5)
	top := NewLocal(1, 1)
	a, err := Assign(g, top)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a {
		if p != 0 {
			t.Fatalf("assignment %v, want all 0", a)
		}
	}
}

func TestAssignWithRemoteNode(t *testing.T) {
	g := pipeline(6)
	top := NewLocal(2, 1)
	top.AddRemoteNode(2)
	a, err := Assign(g, top)
	if err != nil {
		t.Fatal(err)
	}
	// A 6-kernel pipeline over 2 nodes: at most one cross-node edge.
	crossings := 0
	for _, e := range g.Edges {
		if top.Places[a[e.Src]].Node != top.Places[a[e.Dst]].Node {
			crossings++
		}
	}
	if crossings > 1 {
		t.Fatalf("%d cross-node edges, want <= 1", crossings)
	}
}

func TestEvenSpread(t *testing.T) {
	g := pipeline(6)
	top := NewLocal(3, 1)
	a := EvenSpread(g, top)
	counts := map[int]int{}
	for _, p := range a {
		counts[p]++
	}
	for place, c := range counts {
		if c != 2 {
			t.Fatalf("place %d has %d kernels, want 2", place, c)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	g := pipeline(10)
	top := NewLocal(4, 1)
	a := Random(g, top, 42)
	b := Random(g, top, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestCutCostZeroOnSinglePlace(t *testing.T) {
	g := pipeline(4)
	top := NewLocal(1, 1)
	a, _ := Assign(g, top)
	if c := CutCost(g, top, a); c != 0 {
		t.Fatalf("cut cost on one core = %v, want 0", c)
	}
}

func TestPartitionBalance(t *testing.T) {
	g := pipeline(12)
	kernels := make([]int, 12)
	for i := range kernels {
		kernels[i] = i
	}
	inSet := map[int]bool{}
	for _, k := range kernels {
		inSet[k] = true
	}
	parts := partition(g, kernels, 4)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		if len(p) == 0 {
			t.Fatal("empty part for 12 kernels over 4 parts")
		}
		total += len(p)
	}
	if total != 12 {
		t.Fatalf("parts cover %d kernels, want 12", total)
	}
}

func TestPartitionMoreLikelyPartsThanKernels(t *testing.T) {
	g := pipeline(2)
	parts := partition(g, []int{0, 1}, 5)
	if len(parts) != 5 {
		t.Fatalf("parts = %d, want padded to 5", len(parts))
	}
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	if n != 2 {
		t.Fatalf("kernels placed = %d", n)
	}
}

func TestAssignLargeFastPath(t *testing.T) {
	// Above partitionExactMax the partitioner must take the
	// linearize-and-split fast path and stay fast; a valid assignment with
	// mostly-local chain edges is still required.
	n := partitionExactMax*2 + 10
	g := pipeline(n)
	top := NewLocal(8, 2)
	a, err := Assign(g, top)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != n {
		t.Fatalf("assignment covers %d kernels, want %d", len(a), n)
	}
	for i, p := range a {
		if p < 0 || p >= len(top.Places) {
			t.Fatalf("kernel %d assigned invalid place %d", i, p)
		}
	}
	// A chain split into contiguous blocks crosses sockets at most a
	// handful of times, never per-edge.
	crossings := 0
	for i := 0; i+1 < n; i++ {
		if top.Places[a[i]].Socket != top.Places[a[i+1]].Socket {
			crossings++
		}
	}
	if crossings > 4 {
		t.Fatalf("chain crosses sockets %d times, want few", crossings)
	}
}
