package fault

import (
	"errors"
	"testing"
	"time"
)

func TestKillFiresOnceAtExactRun(t *testing.T) {
	inj := New()
	inj.KillKernel("match", 3)

	runs := 0
	step := func(run uint64) (panicked error) {
		defer func() {
			if r := recover(); r != nil {
				panicked = r.(error)
			}
		}()
		inj.BeforeRun("match[horspool]#1", run)
		runs++
		return nil
	}

	for run := uint64(1); run <= 5; run++ {
		err := step(run)
		if run == 3 {
			if err == nil {
				t.Fatalf("run 3: expected injected kill")
			}
			var k *Kill
			if !errors.As(err, &k) || k.Run != 3 {
				t.Fatalf("run 3: panic value %v, want *Kill at run 3", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("run %d: unexpected kill %v", run, err)
		}
	}
	// Same run index again (e.g. a restarted kernel replaying its counter)
	// must NOT re-fire: the rule is one-shot.
	if err := step(3); err != nil {
		t.Fatalf("re-run 3: kill fired twice: %v", err)
	}
	if got := inj.Fired("kill"); got != 1 {
		t.Fatalf("Fired(kill) = %d, want 1", got)
	}
}

func TestKillMatchesPrefixOnly(t *testing.T) {
	inj := New()
	inj.KillKernel("search[", 1)
	defer func() {
		if recover() != nil {
			t.Fatal("kill fired for non-matching kernel")
		}
	}()
	inj.BeforeRun("reduce#2", 1)
	inj.BeforeRun("reader", 1)
}

func TestFrameActions(t *testing.T) {
	inj := New()
	inj.SeverBridge("s", 2)
	inj.CorruptBridge("s", 4)
	inj.DelayBridge("s", 3, time.Millisecond)

	type want struct {
		act   FrameAction
		delay bool
	}
	wants := map[uint64]want{
		1: {ActNone, false},
		2: {ActSever, false},
		3: {ActNone, true},
		4: {ActCorrupt, false},
		5: {ActNone, false},
		6: {ActNone, true},
	}
	for seq := uint64(1); seq <= 6; seq++ {
		act, d := inj.FrameAction("s", seq)
		w := wants[seq]
		if act != w.act {
			t.Errorf("frame %d: action %v, want %v", seq, act, w.act)
		}
		if (d > 0) != w.delay {
			t.Errorf("frame %d: delay %v, want delayed=%v", seq, d, w.delay)
		}
	}
	// One-shot rules do not re-fire.
	if act, _ := inj.FrameAction("s", 2); act != ActNone {
		t.Errorf("sever re-fired")
	}
	// Other streams are untouched.
	if act, _ := inj.FrameAction("other", 2); act != ActNone {
		t.Errorf("sever leaked to another stream")
	}
	if inj.Fired("sever") != 1 || inj.Fired("corrupt") != 1 {
		t.Fatalf("event log: %+v", inj.Events())
	}
}
