// Package fault is the deterministic fault-injection harness behind the
// resilience subsystem's chaos tests and the A10 ablation. Faults are
// declared up front against kernel names and bridge stream names, then
// fire at exact, repeatable points — the Nth invocation of a kernel, the
// Nth frame of a bridge — so a chaos run can be compared byte-for-byte
// against an undisturbed run.
//
// Two hook surfaces consume a plan:
//
//   - the raft runtime calls Injector.BeforeRun at the top of every kernel
//     invocation (before the kernel pops any input), so an injected kill
//     never loses an in-flight element;
//   - the oar bridge sender calls Injector.FrameAction before encoding
//     each frame, so severed/corrupted/delayed connections happen at exact
//     frame boundaries and the replay protocol can be verified to recover
//     them losslessly.
//
// The injector is safe for concurrent use (replicated kernels consult it
// from several goroutines) and each rule fires exactly once unless
// declared repeating.
package fault

import (
	"fmt"
	"sync"
	"time"
)

// Kill is the panic value thrown by an injected kernel kill. It implements
// error so the supervisor (and the scheduler's panic conversion) surface a
// typed cause instead of an opaque string.
type Kill struct {
	// Kernel is the name of the killed kernel.
	Kernel string
	// Run is the 1-based invocation index at which the kill fired.
	Run uint64
}

// Error implements error.
func (k *Kill) Error() string {
	return fmt.Sprintf("fault: injected kill of kernel %q at run %d", k.Kernel, k.Run)
}

// FrameAction tells a bridge sender what to do with the frame it is about
// to transmit.
type FrameAction int

// Frame actions.
const (
	// ActNone transmits the frame normally.
	ActNone FrameAction = iota
	// ActSever cuts the connection before the frame is sent (the frame is
	// retained in the replay buffer and must survive the reconnect).
	ActSever
	// ActCorrupt transmits garbage bytes in place of the frame, breaking
	// the peer's decoder mid-stream.
	ActCorrupt
)

// String returns the action name.
func (a FrameAction) String() string {
	switch a {
	case ActSever:
		return "sever"
	case ActCorrupt:
		return "corrupt"
	default:
		return "none"
	}
}

// Event records one fault that actually fired, for test assertions and the
// ablation report.
type Event struct {
	// At is when the fault fired.
	At time.Time
	// Kind is "kill", "sever", "corrupt" or "delay".
	Kind string
	// Target is the kernel name or bridge stream the fault hit.
	Target string
	// Point is the run index (kills) or frame sequence (bridge faults).
	Point uint64
}

// killRule arms one kernel kill.
type killRule struct {
	prefix string
	nth    uint64
	fired  bool
}

// frameRule arms one bridge sever/corrupt.
type frameRule struct {
	stream string
	seq    uint64
	action FrameAction
	fired  bool
}

// delayRule slows down a bridge: every everyN-th frame sleeps d.
type delayRule struct {
	stream string
	everyN uint64
	d      time.Duration
}

// Injector holds an armed fault plan and the log of faults that fired.
// The zero value is unusable; construct with New.
type Injector struct {
	mu     sync.Mutex
	kills  []*killRule
	frames []*frameRule
	delays []*delayRule
	events []Event
}

// New returns an empty injector (no faults armed).
func New() *Injector { return &Injector{} }

// KillKernel arms a one-shot kill: the first kernel whose name starts with
// prefix panics at the top of its nth invocation (1-based), before it has
// consumed any input. Prefix matching targets replicated kernels, whose
// replicas carry runtime-assigned suffixes ("search[horspool]#1[2]").
func (i *Injector) KillKernel(prefix string, nth uint64) {
	if nth == 0 {
		nth = 1
	}
	i.mu.Lock()
	i.kills = append(i.kills, &killRule{prefix: prefix, nth: nth})
	i.mu.Unlock()
}

// SeverBridge arms a one-shot connection cut on the named bridge stream,
// firing just before frame seq (1-based) is transmitted.
func (i *Injector) SeverBridge(stream string, seq uint64) {
	i.addFrameRule(stream, seq, ActSever)
}

// CorruptBridge arms a one-shot frame corruption on the named bridge
// stream: frame seq is replaced by garbage bytes on the wire.
func (i *Injector) CorruptBridge(stream string, seq uint64) {
	i.addFrameRule(stream, seq, ActCorrupt)
}

func (i *Injector) addFrameRule(stream string, seq uint64, act FrameAction) {
	if seq == 0 {
		seq = 1
	}
	i.mu.Lock()
	i.frames = append(i.frames, &frameRule{stream: stream, seq: seq, action: act})
	i.mu.Unlock()
}

// DelayBridge arms a repeating transmission delay: every everyN-th frame
// of the stream sleeps d before being sent (everyN=1 delays every frame).
func (i *Injector) DelayBridge(stream string, everyN uint64, d time.Duration) {
	if everyN == 0 {
		everyN = 1
	}
	i.mu.Lock()
	i.delays = append(i.delays, &delayRule{stream: stream, everyN: everyN, d: d})
	i.mu.Unlock()
}

// BeforeRun is the runtime hook invoked at the top of every supervised (or
// fault-wrapped) kernel invocation with the kernel's name and its 1-based
// run index. It panics with a *Kill when an armed rule matches.
func (i *Injector) BeforeRun(kernel string, run uint64) {
	i.mu.Lock()
	for _, r := range i.kills {
		if r.fired || run != r.nth || !hasPrefix(kernel, r.prefix) {
			continue
		}
		r.fired = true
		i.events = append(i.events, Event{At: time.Now(), Kind: "kill", Target: kernel, Point: run})
		i.mu.Unlock()
		panic(&Kill{Kernel: kernel, Run: run})
	}
	i.mu.Unlock()
}

// FrameAction is the bridge hook consulted before each frame transmission.
// It returns the action to apply and any injected delay (delay composes
// with sever/corrupt: the sleep happens first).
func (i *Injector) FrameAction(stream string, seq uint64) (FrameAction, time.Duration) {
	i.mu.Lock()
	defer i.mu.Unlock()
	var delay time.Duration
	for _, r := range i.delays {
		if r.stream == stream && seq%r.everyN == 0 {
			delay += r.d
			i.events = append(i.events, Event{At: time.Now(), Kind: "delay", Target: stream, Point: seq})
		}
	}
	for _, r := range i.frames {
		if r.fired || r.stream != stream || r.seq != seq {
			continue
		}
		r.fired = true
		i.events = append(i.events, Event{At: time.Now(), Kind: r.action.String(), Target: stream, Point: seq})
		return r.action, delay
	}
	return ActNone, delay
}

// Events returns a copy of the faults that have fired so far.
func (i *Injector) Events() []Event {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]Event, len(i.events))
	copy(out, i.events)
	return out
}

// Fired reports how many faults of the given kind have fired ("" counts
// all).
func (i *Injector) Fired(kind string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	n := 0
	for _, e := range i.events {
		if kind == "" || e.Kind == kind {
			n++
		}
	}
	return n
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
