package qmodel

import (
	"sync"
	"time"

	"raftlib/internal/stats"
	"raftlib/internal/trace"
)

// This file implements the online half of the package: where flow.go and
// mmc.go evaluate *given* rates, the Estimator produces those rates at
// run time from the instrumentation the runtime already pays for — the
// trace bus's sampled RunStart/RunEnd spans and the rings' push-side
// occupancy histograms and flow counters. It follows the instantaneous-
// rate model of Beard & Chamberlain, "Run Time Approximation of
// Non-blocking Service Rates for Streaming Systems" (arXiv:1504.00591):
// the non-blocking service rate µ of a kernel is approximated from
// short-interval observations of its service times, with observations
// contaminated by blocking (a span that sat on an empty input, an
// arrival window distorted by a descheduled producer) rejected as
// bursts rather than averaged in; arrival rates λ come from exact flow
// counter deltas over the same windows. The resulting λ̂/µ̂/ρ̂ stream is
// what turns the monitor's reactive contended-window heuristics into a
// model-driven controller: M/M/c waiting-time predictions pick replica
// widths, and utilization plus the occupancy derivative start batch
// growth before a queue ever saturates.

// KernelTap gives the estimator read access to one kernel's cumulative
// counters without importing the engine packages (raft builds the
// closures over core.Actor).
type KernelTap struct {
	// Name labels the kernel in diagnostics.
	Name string
	// ID is the kernel's trace actor id — spans on the bus carry it.
	ID int32
	// Runs returns the cumulative invocation count.
	Runs func() uint64
}

// LinkTap gives the estimator read access to one stream's counters
// (closures over ringbuffer.Telemetry's read hooks).
type LinkTap struct {
	// Name labels the link in diagnostics.
	Name string
	// Src is the trace actor id of the producing kernel (-1 external).
	Src int32
	// Dst is the trace actor id of the consuming kernel (-1 external).
	Dst int32
	// Flow returns cumulative pushes and pops (Telemetry.Flow).
	Flow func() (pushes, pops uint64)
	// Block returns cumulative producer and consumer blocked time in
	// nanoseconds (Telemetry.BlockNs); may be nil. Window deltas are what
	// let µ̂ be computed over busy time only — the de-contamination step
	// of arXiv:1504.00591 — instead of from blocking-inclusive wall time.
	Block func() (writeNs, readNs uint64)
	// Occ returns the occupancy histogram reduced to count and weighted
	// sum (Telemetry.OccStats); deltas yield mean occupancy-at-push.
	Occ func() (count uint64, weighted float64)
	// Len returns the instantaneous queue length (fallback occupancy
	// signal for windows with no pushes).
	Len func() int
	// Cap returns the current queue capacity.
	Cap func() int
}

// EstimatorConfig tunes the estimation windows.
type EstimatorConfig struct {
	// Window is the minimum interval between estimate folds; Tick calls
	// closer together than this are no-ops, so the monitor can call Tick
	// every δ without re-deriving rates at δ granularity (<=0: 2ms —
	// long enough that flow deltas carry real counts on fast pipelines,
	// short enough to track a ramp within tens of milliseconds).
	Window time.Duration
	// Alpha is the EWMA smoothing factor (<=0: 0.3).
	Alpha float64
	// BurstFactor rejects samples above this multiple of the running
	// estimate (<=1: 4).
	BurstFactor float64
	// BurstStreak is the consecutive-rejection escape hatch (<=0: 8).
	BurstStreak int
}

func (c *EstimatorConfig) fill() {
	if c.Window <= 0 {
		c.Window = 2 * time.Millisecond
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.BurstFactor <= 1 {
		c.BurstFactor = 4
	}
	if c.BurstStreak <= 0 {
		c.BurstStreak = 8
	}
}

// LinkRates is one link's current estimates. Rates are elements/second.
type LinkRates struct {
	// Lambda is the arrival-rate estimate λ̂ (pushes/s).
	Lambda float64
	// Mu is the consumer's non-blocking drain-rate estimate µ̂
	// (elements/s); 0 when the consumer is external or unprimed.
	Mu float64
	// Rho is the utilization estimate λ̂/µ̂ (0 when µ̂ unknown).
	Rho float64
	// OccMean is the smoothed mean occupancy (elements).
	OccMean float64
	// OccSlope is the smoothed occupancy derivative (elements/s); a
	// sustained positive slope is the pre-saturation ramp signal.
	OccSlope float64
	// Primed reports whether λ̂ has left its priming window.
	Primed bool
}

// KernelRate is one kernel's current estimates.
type KernelRate struct {
	// SvcNanos is the burst-rejected mean observed run duration from
	// sampled spans. Spans include any blocking the invocation suffered,
	// so this is a latency figure, not 1/µ̂.
	SvcNanos float64
	// MuRuns is the non-blocking invocation rate: runs per second of
	// non-blocked wall time when the kernel's links expose block
	// counters, else 1e9/SvcNanos (span fallback).
	MuRuns float64
	// MuElems is the non-blocking element service rate — MuRuns scaled
	// by the observed elements consumed per invocation (1 when the
	// kernel has no observed input flow).
	MuElems float64
	// Primed reports whether MuRuns is authoritative: the busy-time rate
	// EWMA has left its priming window (or, for kernels with no block
	// counters, the span EWMA has).
	Primed bool
}

// Estimator maintains per-kernel µ̂ and per-link λ̂/ρ̂ online. One
// goroutine (the monitor) drives Tick; readers (metrics scrapes, live
// stats, report building, the monitor's own decisions) take the mutex
// briefly per query.
type Estimator struct {
	cfg   EstimatorConfig
	spans *trace.Reader

	mu      sync.Mutex
	last    time.Time
	kernels []kernelEst
	kidx    map[int32]int
	links   []linkEst
}

type kernelEst struct {
	tap      KernelTap
	svcNs    *stats.BurstEWMA
	rate     *stats.BurstEWMA // non-blocking runs/s over busy time
	elems    *stats.BurstEWMA // elements consumed per invocation
	hasBlock bool             // any adjacent link exposes block counters
	prevRuns uint64
	dPops    uint64  // inbound pop delta accumulated this window
	blockNs  float64 // adjacent-link blocked time accumulated this window
}

type linkEst struct {
	tap      LinkTap
	lam      *stats.BurstEWMA // arrivals/s
	prevPush uint64
	prevPops uint64
	prevBlkW uint64
	prevBlkR uint64
	prevOccN uint64
	prevOccW float64
	occMean  float64
	occPrev  float64
	occSlope float64
	occInit  bool
}

// NewEstimator builds an estimator over the given taps. spans may be nil
// (no µ̂; λ̂ and occupancy signals still work — the degraded mode used
// when tracing is disabled).
func NewEstimator(cfg EstimatorConfig, spans *trace.Reader, kernels []KernelTap, links []LinkTap) *Estimator {
	cfg.fill()
	e := &Estimator{cfg: cfg, spans: spans, kidx: make(map[int32]int, len(kernels))}
	for _, kt := range kernels {
		e.kidx[kt.ID] = len(e.kernels)
		e.kernels = append(e.kernels, kernelEst{
			tap:   kt,
			svcNs: stats.NewBurstEWMA(cfg.Alpha, cfg.BurstFactor, cfg.BurstStreak),
			rate:  stats.NewBurstEWMA(cfg.Alpha, cfg.BurstFactor, cfg.BurstStreak),
			elems: stats.NewBurstEWMA(cfg.Alpha, cfg.BurstFactor, cfg.BurstStreak),
		})
	}
	for _, lt := range links {
		e.links = append(e.links, linkEst{
			tap: lt,
			lam: stats.NewBurstEWMA(cfg.Alpha, cfg.BurstFactor, cfg.BurstStreak),
		})
		if lt.Block != nil {
			if i, ok := e.kidx[lt.Src]; ok {
				e.kernels[i].hasBlock = true
			}
			if i, ok := e.kidx[lt.Dst]; ok {
				e.kernels[i].hasBlock = true
			}
		}
	}
	return e
}

// Tick folds one estimation window ending at now. Calls closer together
// than the configured Window are no-ops, so it is safe (and intended) to
// call from every monitor tick.
func (e *Estimator) Tick(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last.IsZero() {
		// First call establishes counter baselines; no rates yet.
		e.last = now
		for i := range e.links {
			l := &e.links[i]
			l.prevPush, l.prevPops = l.tap.Flow()
			l.prevOccN, l.prevOccW = l.tap.Occ()
			if l.tap.Block != nil {
				l.prevBlkW, l.prevBlkR = l.tap.Block()
			}
		}
		for i := range e.kernels {
			e.kernels[i].prevRuns = e.kernels[i].tap.Runs()
		}
		if e.spans != nil {
			e.spans.Poll(func(trace.Event) {}) // discard pre-baseline spans
		}
		return
	}
	dt := now.Sub(e.last)
	if dt < e.cfg.Window {
		return
	}
	e.last = now
	secs := dt.Seconds()

	// Observed run durations from sampled spans. Span durations include
	// any blocking the invocation suffered; the burst filter keeps
	// episodic blocked outliers out, but a *chronically* starved kernel's
	// spans all carry the wait, which is why spans alone cannot yield µ̂
	// (they converge to the arrival rate, ρ̂→1, under light load). The
	// busy-time rate below is the de-contaminated estimate.
	if e.spans != nil {
		e.spans.PollSpans(func(s trace.Span) {
			if i, ok := e.kidx[s.Actor]; ok {
				e.kernels[i].svcNs.Observe(float64(s.End - s.Start))
			}
		})
	}

	// λ̂ and occupancy per link; inbound pop deltas and adjacent blocked
	// time accumulate per kernel.
	for i := range e.kernels {
		e.kernels[i].dPops = 0
		e.kernels[i].blockNs = 0
	}
	for i := range e.links {
		l := &e.links[i]
		push, pops := l.tap.Flow()
		dPush := push - l.prevPush
		dPops := pops - l.prevPops
		l.prevPush, l.prevPops = push, pops
		l.lam.Observe(float64(dPush) / secs)
		if ki, ok := e.kidx[l.tap.Dst]; ok {
			e.kernels[ki].dPops += dPops
		}
		if l.tap.Block != nil {
			blkW, blkR := l.tap.Block()
			dW, dR := blkW-l.prevBlkW, blkR-l.prevBlkR
			l.prevBlkW, l.prevBlkR = blkW, blkR
			// A kernel's goroutine waits serially: write blocks on its
			// out-links and read blocks on its in-links both subtract
			// from the wall time it had available to do work.
			if ki, ok := e.kidx[l.tap.Src]; ok {
				e.kernels[ki].blockNs += float64(dW)
			}
			if ki, ok := e.kidx[l.tap.Dst]; ok {
				e.kernels[ki].blockNs += float64(dR)
			}
		}

		// Window mean occupancy: histogram delta when the window saw
		// pushes, instantaneous length otherwise (an idle link's
		// occupancy is whatever is sitting in it).
		occN, occW := l.tap.Occ()
		var winMean float64
		if dN := occN - l.prevOccN; dN > 0 {
			winMean = (occW - l.prevOccW) / float64(dN)
		} else {
			winMean = float64(l.tap.Len())
		}
		l.prevOccN, l.prevOccW = occN, occW
		if !l.occInit {
			l.occMean, l.occPrev, l.occInit = winMean, winMean, true
			continue
		}
		slope := (winMean - l.occPrev) / secs
		l.occPrev = winMean
		l.occMean = e.cfg.Alpha*winMean + (1-e.cfg.Alpha)*l.occMean
		l.occSlope = e.cfg.Alpha*slope + (1-e.cfg.Alpha)*l.occSlope
	}

	// Per-kernel folds from the accumulated link evidence: elements per
	// invocation from inbound flow, and the non-blocking invocation rate
	// µ̂ = runs per second of *busy* wall time. Windows the kernel spent
	// (almost) entirely blocked yield no observation — they carry no
	// information about how fast it could run (the paper's discarded
	// non-converged intervals); the burst filter absorbs the rest of the
	// timing skew between the clock and the counters.
	for i := range e.kernels {
		k := &e.kernels[i]
		runs := k.tap.Runs()
		dRuns := runs - k.prevRuns
		k.prevRuns = runs
		if dRuns > 0 && k.dPops > 0 {
			k.elems.Observe(float64(k.dPops) / float64(dRuns))
		}
		if k.hasBlock && dRuns > 0 {
			busy := secs - k.blockNs/1e9
			if busy > 0.01*secs {
				k.rate.Observe(float64(dRuns) / busy)
			}
		}
	}
}

// kernelRateLocked derives a KernelRate; callers hold e.mu.
func (e *Estimator) kernelRateLocked(i int) KernelRate {
	k := &e.kernels[i]
	kr := KernelRate{SvcNanos: k.svcNs.Value()}
	switch {
	case k.rate.Primed():
		kr.MuRuns = k.rate.Value()
		kr.Primed = true
	case !k.hasBlock && k.svcNs.Primed() && kr.SvcNanos > 0:
		// No block counters to correct with: fall back to the span-based
		// rate, which is only trustworthy when blocking cannot be the
		// dominant term (hence authoritative only without block taps).
		kr.MuRuns = 1e9 / kr.SvcNanos
		kr.Primed = true
	}
	if kr.MuRuns > 0 {
		per := 1.0
		if k.elems.Primed() && k.elems.Value() > 0 {
			per = k.elems.Value()
		}
		kr.MuElems = kr.MuRuns * per
	}
	return kr
}

// Kernel returns the current estimates for the kernel with the given
// trace actor id.
func (e *Estimator) Kernel(id int32) (KernelRate, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	i, ok := e.kidx[id]
	if !ok {
		return KernelRate{}, false
	}
	return e.kernelRateLocked(i), true
}

// Link returns the current estimates for link i (the index order of the
// taps passed to NewEstimator, which raft keeps aligned with its link
// list).
func (e *Estimator) Link(i int) (LinkRates, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i < 0 || i >= len(e.links) {
		return LinkRates{}, false
	}
	l := &e.links[i]
	lr := LinkRates{
		Lambda:   l.lam.Value(),
		OccMean:  l.occMean,
		OccSlope: l.occSlope,
		Primed:   l.lam.Primed(),
	}
	if ki, ok := e.kidx[l.tap.Dst]; ok {
		if kr := e.kernelRateLocked(ki); kr.Primed && kr.MuElems > 0 {
			lr.Mu = kr.MuElems
			lr.Rho = lr.Lambda / lr.Mu
		}
	}
	return lr, true
}

// GroupMu returns the mean non-blocking per-replica service rate
// (elements/s) across the given kernel ids, considering only primed
// members; ok is false until at least one member is primed.
func (e *Estimator) GroupMu(ids []int32) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var sum float64
	var n int
	for _, id := range ids {
		if i, ok := e.kidx[id]; ok {
			if kr := e.kernelRateLocked(i); kr.Primed && kr.MuElems > 0 {
				sum += kr.MuElems
				n++
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// SpansLost reports how many trace events wrapped past the estimator's
// reader (its µ̂ samples degrade gracefully — spans are a sample anyway).
func (e *Estimator) SpansLost() uint64 {
	if e.spans == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.spans.Lost()
}
