// Package qmodel implements the analytic machinery RaftLib uses to reason
// about streaming applications as queueing networks (§3: "Streaming systems
// can be modeled as queueing networks. Each stream within the system is a
// queue.").
//
// Three pieces are provided:
//
//   - Classic M/M/1 and M/M/1/K formulas for per-queue estimates.
//   - A flow model in the style of Beard & Chamberlain [8] that propagates
//     rates through the kernel graph, accounts for filtering/amplifying
//     kernels and replication, and predicts the application's bottleneck
//     and maximum throughput (used for the A8 model-vs-measured ablation).
//   - A deterministic simulated-annealing optimizer (§4.1: "combined with
//     well known optimization techniques such as simulated annealing ...
//     to continually optimize long-running ... streaming applications")
//     used to pick buffer sizes and replica counts against a model cost.
package qmodel

import (
	"fmt"
	"math"
)

// MM1 models a single M/M/1 queue with arrival rate Lambda and service
// rate Mu (events per second).
type MM1 struct {
	Lambda float64
	Mu     float64
}

// Rho returns the utilization λ/µ.
func (q MM1) Rho() float64 {
	if q.Mu <= 0 {
		return math.Inf(1)
	}
	return q.Lambda / q.Mu
}

// Stable reports whether the queue is stable (ρ < 1).
func (q MM1) Stable() bool { return q.Rho() < 1 }

// MeanQueueLength returns the expected number in queue (not in service),
// Lq = ρ²/(1-ρ). Infinite for unstable queues.
func (q MM1) MeanQueueLength() float64 {
	rho := q.Rho()
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho * rho / (1 - rho)
}

// MeanNumberInSystem returns L = ρ/(1-ρ).
func (q MM1) MeanNumberInSystem() float64 {
	rho := q.Rho()
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1 - rho)
}

// MeanWait returns the expected time in system W = 1/(µ-λ) (Little's law).
func (q MM1) MeanWait() float64 {
	if q.Mu <= q.Lambda {
		return math.Inf(1)
	}
	return 1 / (q.Mu - q.Lambda)
}

// BlockingProbability returns the probability an arrival finds an
// M/M/1/K system full (and would block the producer), for capacity k >= 1.
func (q MM1) BlockingProbability(k int) float64 {
	if k < 1 {
		return 1
	}
	rho := q.Rho()
	if rho == 1 {
		return 1 / float64(k+1)
	}
	return (1 - rho) * math.Pow(rho, float64(k)) / (1 - math.Pow(rho, float64(k+1)))
}

// SuggestCapacity returns a buffer capacity for which the blocking
// probability is below eps, clamped to [minCap, maxCap]. For unstable
// queues it returns maxCap (no finite buffer helps; the paper's answer is
// the monitor's dynamic resizing plus a buffer cap).
func (q MM1) SuggestCapacity(eps float64, minCap, maxCap int) int {
	if eps <= 0 {
		eps = 1e-3
	}
	if minCap < 1 {
		minCap = 1
	}
	if maxCap < minCap {
		maxCap = minCap
	}
	if !q.Stable() {
		return maxCap
	}
	for k := minCap; k <= maxCap; k++ {
		if q.BlockingProbability(k) < eps {
			return k
		}
	}
	return maxCap
}

// KernelModel describes one compute kernel for the flow model.
type KernelModel struct {
	Name string
	// ServiceRate is the kernel's isolated per-replica service rate in
	// items/second (measured by the runtime's ServiceTimer).
	ServiceRate float64
	// Replicas is the number of parallel copies (>= 1).
	Replicas int
	// Gain is the average number of output items produced per input item
	// (1 = pass-through, <1 = filtering such as text search, >1 =
	// amplification). Ignored for sources.
	Gain float64
}

// EdgeModel describes one stream for the flow model.
type EdgeModel struct {
	Src, Dst int
	// Fraction is the share of Src's output carried by this edge
	// (fan-out splits sum to 1 per source kernel).
	Fraction float64
}

// Network is the flow-model view of a streaming application. Kernel 0..n-1
// with edges between them; sources are kernels with no inbound edges.
type Network struct {
	Kernels []KernelModel
	Edges   []EdgeModel
}

// Prediction is the flow model's output.
type Prediction struct {
	// MaxSourceRate is the highest aggregate source emission rate
	// (items/s) the network sustains.
	MaxSourceRate float64
	// Throughput per kernel at that operating point (items/s entering).
	KernelLoad []float64
	// Utilization per kernel at that operating point.
	Utilization []float64
	// Bottleneck is the index of the kernel with utilization 1.
	Bottleneck int
	// EdgeFlow is the relative flow on each edge per unit of source rate.
	EdgeFlow []float64
}

// Solve propagates unit source flow through the network and returns the
// bottleneck analysis. It returns an error if the network is empty, has a
// cycle, or a non-source kernel has no service rate.
func (n *Network) Solve() (*Prediction, error) {
	k := len(n.Kernels)
	if k == 0 {
		return nil, fmt.Errorf("qmodel: empty network")
	}
	indeg := make([]int, k)
	adj := make([][]int, k) // edge indices by source
	for i, e := range n.Edges {
		if e.Src < 0 || e.Src >= k || e.Dst < 0 || e.Dst >= k {
			return nil, fmt.Errorf("qmodel: edge %d endpoints out of range", i)
		}
		indeg[e.Dst]++
		adj[e.Src] = append(adj[e.Src], i)
	}

	// Relative inbound flow per kernel for one unit of aggregate source
	// emission, distributed evenly across sources.
	inflow := make([]float64, k)
	var sources []int
	for i := range n.Kernels {
		if indeg[i] == 0 {
			sources = append(sources, i)
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("qmodel: no source kernel (cyclic network?)")
	}
	for _, s := range sources {
		inflow[s] = 1 / float64(len(sources))
	}

	// Kahn propagation.
	deg := append([]int(nil), indeg...)
	queue := append([]int(nil), sources...)
	edgeFlow := make([]float64, len(n.Edges))
	visited := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		visited++
		gain := n.Kernels[v].Gain
		if gain == 0 {
			gain = 1
		}
		outflow := inflow[v] * gain
		for _, ei := range adj[v] {
			e := n.Edges[ei]
			frac := e.Fraction
			if frac == 0 {
				frac = 1 / float64(len(adj[v]))
			}
			edgeFlow[ei] = outflow * frac
			inflow[e.Dst] += edgeFlow[ei]
			deg[e.Dst]--
			if deg[e.Dst] == 0 {
				queue = append(queue, e.Dst)
			}
		}
	}
	if visited != k {
		return nil, fmt.Errorf("qmodel: network contains a cycle")
	}

	// Bottleneck: smallest (capacity / relative load).
	maxRate := math.Inf(1)
	bottleneck := -1
	for i, km := range n.Kernels {
		if inflow[i] <= 0 {
			continue
		}
		reps := km.Replicas
		if reps < 1 {
			reps = 1
		}
		if km.ServiceRate <= 0 {
			return nil, fmt.Errorf("qmodel: kernel %q (%d) has no service rate", km.Name, i)
		}
		capRate := km.ServiceRate * float64(reps) / inflow[i]
		if capRate < maxRate {
			maxRate = capRate
			bottleneck = i
		}
	}
	if bottleneck < 0 {
		return nil, fmt.Errorf("qmodel: no loaded kernel")
	}

	pred := &Prediction{
		MaxSourceRate: maxRate,
		KernelLoad:    make([]float64, k),
		Utilization:   make([]float64, k),
		Bottleneck:    bottleneck,
		EdgeFlow:      edgeFlow,
	}
	for i, km := range n.Kernels {
		pred.KernelLoad[i] = inflow[i] * maxRate
		reps := km.Replicas
		if reps < 1 {
			reps = 1
		}
		if km.ServiceRate > 0 {
			pred.Utilization[i] = pred.KernelLoad[i] / (km.ServiceRate * float64(reps))
		}
	}
	return pred, nil
}

// ProductForm heuristically reports whether per-queue M/M/1 analysis is
// justified for the network under Jackson's theorem assumptions: it
// requires the caller's assessment that service times are roughly
// exponential (scv ≈ 1 per kernel). A squared coefficient of variation far
// from 1 breaks product form, in which case the flow model plus measurement
// (the paper's approach) is the right tool.
func ProductForm(serviceSCVs []float64, tol float64) bool {
	if tol <= 0 {
		tol = 0.5
	}
	for _, scv := range serviceSCVs {
		if math.Abs(scv-1) > tol {
			return false
		}
	}
	return true
}
