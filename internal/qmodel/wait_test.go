package qmodel

import (
	"math"
	"testing"
)

// TestPredictWaitMM1 checks the c=1 boundary against the closed-form M/M/1
// waiting time Wq = ρ/(µ(1-ρ)).
func TestPredictWaitMM1(t *testing.T) {
	lambda, mu := 80.0, 100.0
	rho := lambda / mu
	want := rho / (mu * (1 - rho))
	got := PredictWait(lambda, mu, 1)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("PredictWait(%g, %g, 1) = %g, want %g", lambda, mu, got, want)
	}
}

// TestPredictWaitSaturation checks that ρ→1 (and past it) predicts an
// unbounded wait instead of a finite optimistic one.
func TestPredictWaitSaturation(t *testing.T) {
	if w := PredictWait(100, 100, 1); !math.IsInf(w, 1) {
		t.Fatalf("rho=1: PredictWait = %g, want +Inf", w)
	}
	if w := PredictWait(250, 100, 2); !math.IsInf(w, 1) {
		t.Fatalf("rho>1: PredictWait = %g, want +Inf", w)
	}
	// Just-stable systems predict a large but finite wait that shrinks as
	// utilization falls.
	near := PredictWait(99, 100, 1)
	far := PredictWait(50, 100, 1)
	if math.IsInf(near, 1) || near <= far {
		t.Fatalf("wait should be finite and decreasing in headroom: near=%g far=%g", near, far)
	}
}

// TestPredictWaitUnknownMu checks the conservative fallback: an unprimed or
// stalled µ̂ must predict +Inf, never a number an admission controller could
// admit on.
func TestPredictWaitUnknownMu(t *testing.T) {
	if w := PredictWait(10, 0, 4); !math.IsInf(w, 1) {
		t.Fatalf("mu=0: PredictWait = %g, want +Inf", w)
	}
	if w := PredictWait(10, -1, 4); !math.IsInf(w, 1) {
		t.Fatalf("mu<0: PredictWait = %g, want +Inf", w)
	}
	if w := PredictWait(10, 100, 0); !math.IsInf(w, 1) {
		t.Fatalf("c=0: PredictWait = %g, want +Inf", w)
	}
}

// TestPredictWaitNoLoad checks that zero offered load waits zero even when
// the service rate is unknown (an idle system admits instantly).
func TestPredictWaitNoLoad(t *testing.T) {
	if w := PredictWait(0, 0, 1); w != 0 {
		t.Fatalf("lambda=0: PredictWait = %g, want 0", w)
	}
	if w := PredictWait(-5, 100, 2); w != 0 {
		t.Fatalf("lambda<0: PredictWait = %g, want 0", w)
	}
}

// TestPredictWaitMonotoneInServers checks that adding servers never makes
// the predicted wait worse — the property MinServersWait's search relies on.
func TestPredictWaitMonotoneInServers(t *testing.T) {
	lambda, mu := 300.0, 100.0 // needs c >= 4 for stability
	prev := math.Inf(1)
	for c := 1; c <= 8; c++ {
		w := PredictWait(lambda, mu, c)
		if w > prev {
			t.Fatalf("wait increased with servers: c=%d w=%g prev=%g", c, w, prev)
		}
		prev = w
	}
	if math.IsInf(prev, 1) {
		t.Fatalf("c=8 at rho=0.375 should be finite")
	}
}

// TestMinServersWaitUsesPredictWait pins the shared-implementation contract:
// the width MinServersWait picks is exactly the smallest c whose
// PredictWait meets the target.
func TestMinServersWaitUsesPredictWait(t *testing.T) {
	lambda, mu, maxWait := 450.0, 100.0, 0.01
	got := MinServersWait(lambda, mu, maxWait, 16)
	want := 16
	for c := 1; c <= 16; c++ {
		if PredictWait(lambda, mu, c) <= maxWait {
			want = c
			break
		}
	}
	if got != want {
		t.Fatalf("MinServersWait = %d, want %d (first c meeting PredictWait <= %g)", got, want, maxWait)
	}
}
