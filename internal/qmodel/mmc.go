package qmodel

import "math"

// MMc models an M/M/c queue: Poisson arrivals at rate Lambda served by C
// identical exponential servers of rate Mu each — the natural model of a
// replicated kernel group behind a split adapter (§4.1's automatic
// parallelization), refining the flow model's capacity-scaling view with
// waiting-time estimates.
type MMc struct {
	Lambda float64
	Mu     float64
	C      int
}

// Rho returns the per-server utilization λ/(cµ).
func (q MMc) Rho() float64 {
	if q.Mu <= 0 || q.C < 1 {
		return math.Inf(1)
	}
	return q.Lambda / (float64(q.C) * q.Mu)
}

// Stable reports whether the system is stable (ρ < 1).
func (q MMc) Stable() bool { return q.Rho() < 1 }

// ErlangC returns the probability an arrival must wait (all c servers
// busy) — the Erlang C formula. It returns 1 for unstable systems.
func (q MMc) ErlangC() float64 {
	if !q.Stable() {
		return 1
	}
	c := q.C
	a := q.Lambda / q.Mu // offered load in Erlangs
	rho := q.Rho()

	// Sum a^k/k! for k<c and the a^c/c! tail, computed incrementally to
	// avoid overflow for moderate c.
	term := 1.0 // a^0/0!
	sum := term
	for k := 1; k < c; k++ {
		term *= a / float64(k)
		sum += term
	}
	top := term * a / float64(c) // a^c/c!
	top = top / (1 - rho)
	return top / (sum + top)
}

// MeanQueueLength returns the expected number waiting (not in service):
// Lq = ErlangC × ρ/(1-ρ).
func (q MMc) MeanQueueLength() float64 {
	rho := q.Rho()
	if rho >= 1 {
		return math.Inf(1)
	}
	return q.ErlangC() * rho / (1 - rho)
}

// MeanWait returns the expected waiting time before service (Wq) via
// Little's law.
func (q MMc) MeanWait() float64 {
	if q.Lambda <= 0 {
		return 0
	}
	lq := q.MeanQueueLength()
	if math.IsInf(lq, 1) {
		return math.Inf(1)
	}
	return lq / q.Lambda
}

// MinServers returns the smallest server count for which the system is
// stable and the waiting probability is below eps, capped at maxServers.
// This is the analytic answer to "how many replicas does this kernel
// need?" for a measured arrival and service rate.
func MinServers(lambda, mu, eps float64, maxServers int) int {
	if maxServers < 1 {
		maxServers = 1
	}
	if eps <= 0 {
		eps = 0.2
	}
	for c := 1; c <= maxServers; c++ {
		q := MMc{Lambda: lambda, Mu: mu, C: c}
		if q.Stable() && q.ErlangC() < eps {
			return c
		}
	}
	return maxServers
}

// PredictWait returns the predicted mean waiting time before service Wq
// (seconds) for an M/M/c system with arrival rate lambda, per-server
// service rate mu (both in elements/s) and c servers — the Erlang-C wait
// formula shared by the replica scaler's sizing rule and the ingestion
// gateway's admission controller. Boundary behavior is deliberately
// conservative for control use:
//
//   - lambda <= 0 (no offered load): 0 — an arrival into an idle system
//     does not wait.
//   - mu <= 0 or c < 1 (µ̂ unknown: estimator unprimed or consumer
//     stalled): +Inf — a controller that cannot predict the wait must
//     assume the worst, never admit on a guess.
//   - ρ = λ/(cµ) >= 1 (saturated): +Inf — the queue grows without bound.
func PredictWait(lambda, mu float64, c int) float64 {
	if lambda <= 0 {
		return 0
	}
	if mu <= 0 || c < 1 {
		return math.Inf(1)
	}
	q := MMc{Lambda: lambda, Mu: mu, C: c}
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.MeanWait()
}

// MinServersWait returns the smallest server count for which the system
// is stable and the predicted mean waiting time Wq is at most maxWait,
// capped at maxServers. This is the replica scaler's sizing rule under
// online rate estimation: width is chosen from predicted waiting time
// rather than from an after-the-fact contention window. As ρ→1 (or past
// it) no finite width meets the target and the recommendation saturates
// at maxServers instead of diverging — degraded service, never a
// runaway controller. A non-positive µ (estimator unprimed or consumer
// stalled) also saturates, for the same reason.
func MinServersWait(lambda, mu, maxWait float64, maxServers int) int {
	if maxServers < 1 {
		maxServers = 1
	}
	if lambda <= 0 {
		return 1
	}
	if mu <= 0 || maxWait < 0 {
		return maxServers
	}
	for c := 1; c <= maxServers; c++ {
		if PredictWait(lambda, mu, c) <= maxWait {
			return c
		}
	}
	return maxServers
}
