package qmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMM1Basics(t *testing.T) {
	q := MM1{Lambda: 50, Mu: 100}
	if got := q.Rho(); got != 0.5 {
		t.Fatalf("rho = %v", got)
	}
	if !q.Stable() {
		t.Fatal("rho 0.5 must be stable")
	}
	if got := q.MeanQueueLength(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Lq = %v, want 0.5", got)
	}
	if got := q.MeanNumberInSystem(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("L = %v, want 1", got)
	}
	if got := q.MeanWait(); math.Abs(got-0.02) > 1e-9 {
		t.Fatalf("W = %v, want 0.02", got)
	}
}

func TestMM1Unstable(t *testing.T) {
	q := MM1{Lambda: 100, Mu: 50}
	if q.Stable() {
		t.Fatal("rho 2 must be unstable")
	}
	if !math.IsInf(q.MeanQueueLength(), 1) || !math.IsInf(q.MeanWait(), 1) {
		t.Fatal("unstable metrics must be infinite")
	}
	if !math.IsInf(MM1{Lambda: 1, Mu: 0}.Rho(), 1) {
		t.Fatal("zero service rate must have infinite rho")
	}
}

func TestBlockingProbability(t *testing.T) {
	q := MM1{Lambda: 50, Mu: 100}
	if p := q.BlockingProbability(0); p != 1 {
		t.Fatalf("k=0: %v", p)
	}
	p1 := q.BlockingProbability(1)
	p10 := q.BlockingProbability(10)
	if !(p10 < p1 && p1 < 1) {
		t.Fatalf("blocking must shrink with capacity: p1=%v p10=%v", p1, p10)
	}
	// rho == 1 special case: 1/(k+1).
	qc := MM1{Lambda: 10, Mu: 10}
	if p := qc.BlockingProbability(4); math.Abs(p-0.2) > 1e-9 {
		t.Fatalf("critical blocking = %v, want 0.2", p)
	}
}

func TestSuggestCapacity(t *testing.T) {
	q := MM1{Lambda: 50, Mu: 100}
	k := q.SuggestCapacity(1e-3, 1, 1024)
	if k < 2 || k > 64 {
		t.Fatalf("suggested capacity = %d, outside sane band", k)
	}
	if q.BlockingProbability(k) >= 1e-3 {
		t.Fatalf("capacity %d does not meet the target", k)
	}
	// Unstable queue: use the cap.
	if got := (MM1{Lambda: 2, Mu: 1}).SuggestCapacity(1e-3, 1, 128); got != 128 {
		t.Fatalf("unstable suggestion = %d, want maxCap", got)
	}
}

func TestSuggestCapacityPropertyMonotone(t *testing.T) {
	f := func(lam uint8) bool {
		lambda := float64(lam%90) + 1 // 1..90 against mu=100
		q := MM1{Lambda: lambda, Mu: 100}
		k1 := q.SuggestCapacity(1e-2, 1, 4096)
		k2 := q.SuggestCapacity(1e-4, 1, 4096)
		return k2 >= k1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// chainNetwork builds source -> work -> sink with the given rates.
func chainNetwork(src, work, sink float64) *Network {
	return &Network{
		Kernels: []KernelModel{
			{Name: "src", ServiceRate: src, Replicas: 1, Gain: 1},
			{Name: "work", ServiceRate: work, Replicas: 1, Gain: 1},
			{Name: "sink", ServiceRate: sink, Replicas: 1, Gain: 1},
		},
		Edges: []EdgeModel{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}},
	}
}

func TestFlowModelBottleneck(t *testing.T) {
	pred, err := chainNetwork(1000, 100, 500).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if pred.Bottleneck != 1 {
		t.Fatalf("bottleneck = %d, want 1 (work)", pred.Bottleneck)
	}
	if math.Abs(pred.MaxSourceRate-100) > 1e-6 {
		t.Fatalf("max rate = %v, want 100", pred.MaxSourceRate)
	}
	if math.Abs(pred.Utilization[1]-1) > 1e-9 {
		t.Fatalf("bottleneck utilization = %v, want 1", pred.Utilization[1])
	}
}

func TestFlowModelReplicasRaiseThroughput(t *testing.T) {
	net := chainNetwork(1000, 100, 500)
	net.Kernels[1].Replicas = 4
	pred, err := net.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred.MaxSourceRate-400) > 1e-6 {
		t.Fatalf("replicated max rate = %v, want 400", pred.MaxSourceRate)
	}
}

func TestFlowModelFilteringGain(t *testing.T) {
	// Search-like kernel: 1000 inputs -> 1 output; sink is slow but sees
	// almost nothing, so the filter dominates.
	net := &Network{
		Kernels: []KernelModel{
			{Name: "reader", ServiceRate: 10000, Replicas: 1, Gain: 1},
			{Name: "match", ServiceRate: 1000, Replicas: 1, Gain: 0.001},
			{Name: "collect", ServiceRate: 50, Replicas: 1, Gain: 1},
		},
		Edges: []EdgeModel{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}},
	}
	pred, err := net.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if pred.Bottleneck != 1 {
		t.Fatalf("bottleneck = %d (%v), want the match kernel", pred.Bottleneck, pred.Utilization)
	}
}

func TestFlowModelFanOutFractions(t *testing.T) {
	// Source splits 70/30 to two workers.
	net := &Network{
		Kernels: []KernelModel{
			{Name: "src", ServiceRate: 1e9, Replicas: 1, Gain: 1},
			{Name: "w1", ServiceRate: 70, Replicas: 1, Gain: 1},
			{Name: "w2", ServiceRate: 30, Replicas: 1, Gain: 1},
		},
		Edges: []EdgeModel{
			{Src: 0, Dst: 1, Fraction: 0.7},
			{Src: 0, Dst: 2, Fraction: 0.3},
		},
	}
	pred, err := net.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Both workers saturate at source rate 100.
	if math.Abs(pred.MaxSourceRate-100) > 1e-6 {
		t.Fatalf("max rate = %v, want 100", pred.MaxSourceRate)
	}
}

func TestFlowModelErrors(t *testing.T) {
	if _, err := (&Network{}).Solve(); err == nil {
		t.Fatal("empty network must error")
	}
	cyc := &Network{
		Kernels: []KernelModel{{ServiceRate: 1}, {ServiceRate: 1}},
		Edges:   []EdgeModel{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}},
	}
	if _, err := cyc.Solve(); err == nil {
		t.Fatal("cyclic network must error")
	}
	badRate := chainNetwork(100, 0, 100)
	if _, err := badRate.Solve(); err == nil {
		t.Fatal("zero service rate on loaded kernel must error")
	}
	badEdge := &Network{Kernels: []KernelModel{{ServiceRate: 1}}, Edges: []EdgeModel{{Src: 0, Dst: 5}}}
	if _, err := badEdge.Solve(); err == nil {
		t.Fatal("out-of-range edge must error")
	}
}

func TestProductForm(t *testing.T) {
	if !ProductForm([]float64{0.9, 1.1, 1.0}, 0.5) {
		t.Fatal("near-exponential SCVs should pass")
	}
	if ProductForm([]float64{4.0}, 0.5) {
		t.Fatal("SCV 4 should fail product form")
	}
	if !ProductForm(nil, 0) {
		t.Fatal("empty input passes trivially")
	}
}

func TestAnnealFindsMinimum(t *testing.T) {
	// Convex bowl with minimum at (10, 20).
	cost := func(x []int) float64 {
		dx, dy := float64(x[0]-10), float64(x[1]-20)
		return dx*dx + dy*dy
	}
	best, c := Anneal(Problem{
		Initial: []int{90, 90},
		Lo:      []int{0, 0},
		Hi:      []int{100, 100},
		Cost:    cost,
		Steps:   5000,
		Seed:    1,
	})
	if c > 4 {
		t.Fatalf("anneal cost = %v at %v, want near 0", c, best)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	cost := func(x []int) float64 { return math.Abs(float64(x[0] - 7)) }
	p := Problem{Initial: []int{100}, Lo: []int{0}, Hi: []int{128}, Cost: cost, Steps: 500, Seed: 9}
	a1, c1 := Anneal(p)
	a2, c2 := Anneal(p)
	if a1[0] != a2[0] || c1 != c2 {
		t.Fatal("same seed must reproduce the same result")
	}
}

func TestAnnealRespectsBounds(t *testing.T) {
	cost := func(x []int) float64 { return -float64(x[0]) } // wants +inf
	best, _ := Anneal(Problem{Initial: []int{5}, Lo: []int{0}, Hi: []int{10}, Cost: cost, Steps: 1000, Seed: 3})
	if best[0] != 10 {
		t.Fatalf("best = %v, want hi bound 10", best)
	}
}

func TestAnnealClampsInitial(t *testing.T) {
	cost := func(x []int) float64 { return float64(x[0]) }
	best, _ := Anneal(Problem{Initial: []int{999}, Lo: []int{0}, Hi: []int{10}, Cost: cost, Steps: 100, Seed: 2})
	if best[0] < 0 || best[0] > 10 {
		t.Fatalf("best %v escaped bounds", best)
	}
}

func TestAnnealBufferSizingUseCase(t *testing.T) {
	// The paper's §4.1 use: pick per-link buffer sizes minimizing a
	// blocking + memory cost under an M/M/1 view of three links.
	lambdas := []float64{80, 60, 90}
	mu := 100.0
	cost := func(caps []int) float64 {
		total := 0.0
		for i, c := range caps {
			q := MM1{Lambda: lambdas[i], Mu: mu}
			total += 1000*q.BlockingProbability(c) + 0.05*float64(c)
		}
		return total
	}
	best, _ := Anneal(Problem{
		Initial: []int{1, 1, 1},
		Lo:      []int{1, 1, 1},
		Hi:      []int{512, 512, 512},
		Cost:    cost,
		Steps:   4000,
		Seed:    7,
	})
	// The hottest link (λ=90) must get the largest buffer.
	if !(best[2] > best[1]) {
		t.Fatalf("buffer allocation %v does not favor the hottest link", best)
	}
}
