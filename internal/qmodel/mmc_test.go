package qmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMMcReducesToMM1(t *testing.T) {
	// With c=1, Erlang C equals the M/M/1 delay probability rho, and Lq
	// matches the M/M/1 formula.
	q1 := MM1{Lambda: 60, Mu: 100}
	qc := MMc{Lambda: 60, Mu: 100, C: 1}
	if math.Abs(qc.ErlangC()-q1.Rho()) > 1e-12 {
		t.Fatalf("ErlangC(c=1) = %v, want rho %v", qc.ErlangC(), q1.Rho())
	}
	if math.Abs(qc.MeanQueueLength()-q1.MeanQueueLength()) > 1e-12 {
		t.Fatalf("Lq = %v, want %v", qc.MeanQueueLength(), q1.MeanQueueLength())
	}
}

func TestMMcKnownValue(t *testing.T) {
	// Classic textbook instance: λ=2/min, µ=1.2/min, c=2 → a=5/3, ρ=5/6,
	// Erlang C ≈ 0.7576.
	q := MMc{Lambda: 2, Mu: 1.2, C: 2}
	if got := q.ErlangC(); math.Abs(got-0.7576) > 1e-3 {
		t.Fatalf("ErlangC = %v, want ~0.7576", got)
	}
	if !q.Stable() {
		t.Fatal("should be stable")
	}
	if w := q.MeanWait(); w <= 0 || math.IsInf(w, 1) {
		t.Fatalf("Wq = %v", w)
	}
}

func TestMMcUnstable(t *testing.T) {
	q := MMc{Lambda: 10, Mu: 1, C: 2}
	if q.Stable() {
		t.Fatal("should be unstable")
	}
	if q.ErlangC() != 1 {
		t.Fatalf("unstable ErlangC = %v, want 1", q.ErlangC())
	}
	if !math.IsInf(q.MeanQueueLength(), 1) || !math.IsInf(q.MeanWait(), 1) {
		t.Fatal("unstable metrics must be infinite")
	}
	if !math.IsInf(MMc{Lambda: 1, Mu: 0, C: 1}.Rho(), 1) {
		t.Fatal("zero mu rho must be infinite")
	}
}

func TestMMcZeroLambdaWait(t *testing.T) {
	q := MMc{Lambda: 0, Mu: 5, C: 2}
	if q.MeanWait() != 0 {
		t.Fatalf("Wq = %v, want 0", q.MeanWait())
	}
}

func TestMMcPropertyMoreServersHelp(t *testing.T) {
	f := func(lamSeed, muSeed uint8) bool {
		lambda := float64(lamSeed%50) + 1
		mu := float64(muSeed%20) + 1
		prev := math.Inf(1)
		for c := 1; c <= 8; c++ {
			q := MMc{Lambda: lambda, Mu: mu, C: c}
			if !q.Stable() {
				continue
			}
			cur := q.MeanWait()
			if cur > prev+1e-9 {
				return false // adding a server must never lengthen waits
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinServers(t *testing.T) {
	// λ=300/s, µ=100/s per server: needs >3 servers for stability.
	c := MinServers(300, 100, 0.2, 32)
	if c < 4 {
		t.Fatalf("MinServers = %d, want >= 4", c)
	}
	q := MMc{Lambda: 300, Mu: 100, C: c}
	if !q.Stable() || q.ErlangC() >= 0.2 {
		t.Fatalf("returned c=%d does not meet the target (P(wait)=%v)", c, q.ErlangC())
	}
	// Cap honored even when infeasible.
	if got := MinServers(1000, 1, 0.2, 8); got != 8 {
		t.Fatalf("capped MinServers = %d, want 8", got)
	}
	// Defaults.
	if got := MinServers(1, 100, 0, 0); got != 1 {
		t.Fatalf("default MinServers = %d, want 1", got)
	}
}

func TestMinServersWait(t *testing.T) {
	// λ=90/s, µ=100/s per server: one server waits λ/(µ(µ-λ)) = 90ms;
	// a 100ms budget is met at c=1, a 1ms budget needs more.
	if got := MinServersWait(90, 100, 0.1, 8); got != 1 {
		t.Fatalf("loose budget c = %d, want 1", got)
	}
	loose := MinServersWait(90, 100, 0.1, 8)
	tight := MinServersWait(90, 100, 0.001, 8)
	if tight < loose {
		t.Fatalf("tighter budget picked fewer servers: %d < %d", tight, loose)
	}
	q := MMc{Lambda: 90, Mu: 100, C: tight}
	if !q.Stable() || q.MeanWait() > 0.001 {
		t.Fatalf("c=%d misses the budget: wait %v", tight, q.MeanWait())
	}
}

// TestMinServersWaitSaturatesNearOne is the ρ→1 edge: as λ approaches c×µ
// the predicted wait diverges, and the width must pin at maxServers
// instead of diverging or erroring.
func TestMinServersWaitSaturatesNearOne(t *testing.T) {
	for _, lambda := range []float64{999, 999.9, 999.999, 1000, 1500} {
		if got := MinServersWait(lambda, 100, 1e-6, 10); got != 10 {
			t.Fatalf("λ=%v: c = %d, want saturated 10", lambda, got)
		}
	}
	// Outright unstable even at max width: still the cap, never a spin.
	if got := MinServersWait(1e9, 1, 0.01, 4); got != 4 {
		t.Fatalf("unstable c = %d, want 4", got)
	}
}

func TestMinServersWaitDegenerate(t *testing.T) {
	if got := MinServersWait(0, 100, 0.1, 8); got != 1 {
		t.Fatalf("no arrivals c = %d, want 1", got)
	}
	if got := MinServersWait(100, 0, 0.1, 8); got != 8 {
		t.Fatalf("unknown µ c = %d, want conservative max", got)
	}
	if got := MinServersWait(100, 100, -1, 8); got != 8 {
		t.Fatalf("negative budget c = %d, want max", got)
	}
	if got := MinServersWait(100, 1000, 0.1, 0); got != 1 {
		t.Fatalf("maxServers<1 c = %d, want clamped 1", got)
	}
}
