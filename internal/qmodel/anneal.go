package qmodel

import (
	"math"
	"math/rand"
)

// Problem defines a discrete optimization instance for simulated annealing:
// minimize Cost over integer vectors x with Lo[i] <= x[i] <= Hi[i].
type Problem struct {
	// Initial is the starting point (copied, not mutated).
	Initial []int
	// Lo and Hi bound each coordinate inclusively.
	Lo, Hi []int
	// Cost evaluates a candidate; lower is better. It must be pure.
	Cost func(x []int) float64
	// Steps is the number of annealing iterations (<=0 selects 2000).
	Steps int
	// Seed makes runs reproducible.
	Seed int64
	// StartTemp and EndTemp bound the geometric cooling schedule, in cost
	// units (<=0 selects StartTemp = initial cost, EndTemp = 1e-3).
	StartTemp, EndTemp float64
}

// Anneal runs simulated annealing and returns the best vector found and
// its cost. The search is deterministic for a fixed Problem (including
// Seed).
func Anneal(p Problem) ([]int, float64) {
	n := len(p.Initial)
	cur := append([]int(nil), p.Initial...)
	clamp(cur, p.Lo, p.Hi)
	curCost := p.Cost(cur)
	best := append([]int(nil), cur...)
	bestCost := curCost

	steps := p.Steps
	if steps <= 0 {
		steps = 2000
	}
	startT := p.StartTemp
	if startT <= 0 {
		startT = curCost
		if startT <= 0 {
			startT = 1
		}
	}
	endT := p.EndTemp
	if endT <= 0 {
		endT = 1e-3
	}
	cooling := math.Pow(endT/startT, 1/float64(steps))

	rng := rand.New(rand.NewSource(p.Seed))
	temp := startT
	cand := make([]int, n)
	for i := 0; i < steps; i++ {
		copy(cand, cur)
		mutate(cand, p.Lo, p.Hi, rng)
		c := p.Cost(cand)
		if accept(c-curCost, temp, rng) {
			copy(cur, cand)
			curCost = c
			if c < bestCost {
				copy(best, cand)
				bestCost = c
			}
		}
		temp *= cooling
	}
	return best, bestCost
}

// mutate nudges one random coordinate by a temperature-independent step
// proportional to its range.
func mutate(x, lo, hi []int, rng *rand.Rand) {
	if len(x) == 0 {
		return
	}
	i := rng.Intn(len(x))
	span := hi[i] - lo[i]
	if span <= 0 {
		return
	}
	step := span / 8
	if step < 1 {
		step = 1
	}
	delta := rng.Intn(2*step+1) - step
	if delta == 0 {
		delta = 1
	}
	x[i] += delta
	if x[i] < lo[i] {
		x[i] = lo[i]
	}
	if x[i] > hi[i] {
		x[i] = hi[i]
	}
}

func clamp(x, lo, hi []int) {
	for i := range x {
		if i < len(lo) && x[i] < lo[i] {
			x[i] = lo[i]
		}
		if i < len(hi) && x[i] > hi[i] {
			x[i] = hi[i]
		}
	}
}

// accept implements the Metropolis criterion.
func accept(delta, temp float64, rng *rand.Rand) bool {
	if delta <= 0 {
		return true
	}
	if temp <= 0 {
		return false
	}
	return rng.Float64() < math.Exp(-delta/temp)
}
