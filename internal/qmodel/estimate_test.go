package qmodel

import (
	"testing"
	"time"

	"raftlib/internal/trace"
)

// synthLink is a synthetic tap pair: cumulative counters the test advances
// by hand between Tick calls, emulating a link and its consumer kernel.
type synthLink struct {
	runs, pushes, pops uint64
	blkW, blkR         uint64
	occN               uint64
	occW               float64
	qlen, qcap         int
}

func (s *synthLink) taps(src, dst int32) ([]KernelTap, []LinkTap) {
	kts := []KernelTap{{Name: "k", ID: dst, Runs: func() uint64 { return s.runs }}}
	lts := []LinkTap{{
		Name:  "l",
		Src:   src,
		Dst:   dst,
		Flow:  func() (uint64, uint64) { return s.pushes, s.pops },
		Block: func() (uint64, uint64) { return s.blkW, s.blkR },
		Occ:   func() (uint64, float64) { return s.occN, s.occW },
		Len:   func() int { return s.qlen },
		Cap:   func() int { return s.qcap },
	}}
	return kts, lts
}

const win = 2 * time.Millisecond

// drive advances the counters by n elements with the consumer blocked for
// blockedFrac of each window, then ticks, for `ticks` windows.
func drive(e *Estimator, s *synthLink, now *time.Time, ticks int, n uint64, blockedFrac float64) {
	for i := 0; i < ticks; i++ {
		s.pushes += n
		s.pops += n
		s.runs += n
		s.occN += n
		s.blkR += uint64(blockedFrac * float64(win.Nanoseconds()))
		*now = now.Add(win)
		e.Tick(*now)
	}
}

func TestEstimatorSteadyConvergence(t *testing.T) {
	s := &synthLink{qcap: 64}
	kts, lts := s.taps(0, 1)
	e := NewEstimator(EstimatorConfig{}, nil, kts, lts)
	now := time.Now()
	e.Tick(now) // baseline

	// 1000 elements per 2ms window, consumer blocked half of each window:
	// λ = 500k/s arrivals against µ = 1M/s busy-time service rate.
	drive(e, s, &now, 10, 1000, 0.5)

	lr, ok := e.Link(0)
	if !ok || !lr.Primed {
		t.Fatalf("link not primed: %+v ok=%v", lr, ok)
	}
	if lr.Lambda < 490e3 || lr.Lambda > 510e3 {
		t.Fatalf("λ̂ = %v, want ~500k", lr.Lambda)
	}
	if lr.Mu < 0.98e6 || lr.Mu > 1.02e6 {
		t.Fatalf("µ̂ = %v, want ~1M", lr.Mu)
	}
	if lr.Rho < 0.48 || lr.Rho > 0.52 {
		t.Fatalf("ρ̂ = %v, want ~0.5", lr.Rho)
	}
	kr, ok := e.Kernel(1)
	if !ok || !kr.Primed {
		t.Fatalf("kernel not primed: %+v", kr)
	}
	if kr.MuElems < 0.98e6 || kr.MuElems > 1.02e6 {
		t.Fatalf("kernel µ̂ = %v, want ~1M", kr.MuElems)
	}
}

// TestEstimatorStarvedConsumerMu is the arXiv:1504.00591 case: a consumer
// idle 75% of the time because arrivals are slow. Its observed run rate is
// the arrival rate (ρ would read ~1); the busy-time estimate must recover
// the true 4×-faster non-blocking service rate so ρ̂ reads ~0.25.
func TestEstimatorStarvedConsumerMu(t *testing.T) {
	s := &synthLink{qcap: 64}
	kts, lts := s.taps(0, 1)
	e := NewEstimator(EstimatorConfig{}, nil, kts, lts)
	now := time.Now()
	e.Tick(now)

	drive(e, s, &now, 10, 100, 0.75)

	lr, _ := e.Link(0)
	if lr.Rho < 0.23 || lr.Rho > 0.27 {
		t.Fatalf("ρ̂ = %v, want ~0.25 (blocking-corrected)", lr.Rho)
	}
	if lr.Mu < 0.9*200e3 || lr.Mu > 1.1*200e3 {
		t.Fatalf("µ̂ = %v, want ~200k busy-time rate", lr.Mu)
	}
}

func TestEstimatorBurstRejected(t *testing.T) {
	s := &synthLink{qcap: 64}
	kts, lts := s.taps(0, 1)
	e := NewEstimator(EstimatorConfig{}, nil, kts, lts)
	now := time.Now()
	e.Tick(now)

	drive(e, s, &now, 10, 1000, 0.5)
	// One descheduled-producer catch-up window: 100× the arrivals at once.
	drive(e, s, &now, 1, 100_000, 0.5)

	lr, _ := e.Link(0)
	if lr.Lambda > 600e3 {
		t.Fatalf("λ̂ = %v after one burst window, want rejection near 500k", lr.Lambda)
	}
}

func TestEstimatorRampFollows(t *testing.T) {
	s := &synthLink{qcap: 64}
	kts, lts := s.taps(0, 1)
	e := NewEstimator(EstimatorConfig{}, nil, kts, lts)
	now := time.Now()
	e.Tick(now)

	drive(e, s, &now, 6, 500, 0.5)
	// Arrivals ramp 20% per window — sustained growth, not a burst; the
	// estimate must track it within the smoothing lag.
	n := 500.0
	for i := 0; i < 20; i++ {
		n *= 1.2
		drive(e, s, &now, 1, uint64(n), 0.5)
	}
	lr, _ := e.Link(0)
	final := n / win.Seconds()
	if lr.Lambda < 0.4*final {
		t.Fatalf("λ̂ = %v lagging ramp to %v", lr.Lambda, final)
	}
}

func TestEstimatorFullyBlockedWindowYieldsNoRate(t *testing.T) {
	s := &synthLink{qcap: 64}
	kts, lts := s.taps(0, 1)
	e := NewEstimator(EstimatorConfig{}, nil, kts, lts)
	now := time.Now()
	e.Tick(now)

	// The kernel technically ran but spent >99% of every window blocked:
	// such windows carry no information about its non-blocking rate and
	// must not prime the estimate.
	drive(e, s, &now, 10, 10, 0.999)

	if kr, _ := e.Kernel(1); kr.Primed {
		t.Fatalf("kernel primed from fully-blocked windows: %+v", kr)
	}
}

func TestEstimatorOccupancySlopeOnRamp(t *testing.T) {
	s := &synthLink{qcap: 1024}
	kts, lts := s.taps(0, 1)
	e := NewEstimator(EstimatorConfig{}, nil, kts, lts)
	now := time.Now()
	e.Tick(now)

	// Mean occupancy-at-push climbs 20 elements per window.
	mean := 0.0
	for i := 0; i < 10; i++ {
		mean += 20
		s.pushes += 100
		s.pops += 100
		s.runs += 100
		s.occN += 100
		s.occW += 100 * mean
		now = now.Add(win)
		e.Tick(now)
	}
	lr, _ := e.Link(0)
	if lr.OccSlope <= 0 {
		t.Fatalf("occupancy slope = %v, want positive on a filling queue", lr.OccSlope)
	}
	if lr.OccMean < 50 {
		t.Fatalf("occupancy mean = %v, want climbing toward 200", lr.OccMean)
	}
}

func TestEstimatorSpanFallbackWithoutBlockTaps(t *testing.T) {
	rec := trace.NewRecorder(1 << 10)
	var runs uint64
	kts := []KernelTap{{Name: "k", ID: 3, Runs: func() uint64 { return runs }}}
	e := NewEstimator(EstimatorConfig{}, rec.NewReader(), kts, nil)
	now := time.Now()
	e.Tick(now)

	// No links, no block counters: µ̂ falls back to sampled span durations.
	at := int64(0)
	for i := 0; i < 10; i++ {
		for j := 0; j < 3; j++ {
			rec.Record(3, trace.RunStart, at)
			at += 1000 // 1µs service time
			rec.Record(3, trace.RunEnd, at)
			at += 100
		}
		runs += 3
		now = now.Add(win)
		e.Tick(now)
	}
	kr, ok := e.Kernel(3)
	if !ok || !kr.Primed {
		t.Fatalf("kernel not primed from spans: %+v", kr)
	}
	if kr.SvcNanos < 990 || kr.SvcNanos > 1010 {
		t.Fatalf("svc = %vns, want ~1000", kr.SvcNanos)
	}
	if kr.MuRuns < 0.98e6 || kr.MuRuns > 1.02e6 {
		t.Fatalf("µ̂ runs = %v, want ~1M", kr.MuRuns)
	}
}

func TestEstimatorTickRateLimited(t *testing.T) {
	s := &synthLink{qcap: 64}
	kts, lts := s.taps(0, 1)
	e := NewEstimator(EstimatorConfig{}, nil, kts, lts)
	now := time.Now()
	e.Tick(now)
	drive(e, s, &now, 10, 1000, 0.5)
	before, _ := e.Link(0)

	// Sub-window ticks with wild counter movement must be no-ops.
	s.pushes += 1_000_000
	e.Tick(now.Add(100 * time.Microsecond))
	after, _ := e.Link(0)
	if after.Lambda != before.Lambda {
		t.Fatalf("λ̂ moved on a sub-window tick: %v -> %v", before.Lambda, after.Lambda)
	}
}

func TestEstimatorGroupMu(t *testing.T) {
	a := &synthLink{qcap: 64}
	b := &synthLink{qcap: 64}
	kta, lta := a.taps(0, 1)
	ktb, ltb := b.taps(0, 2)
	e := NewEstimator(EstimatorConfig{}, nil,
		append(kta, ktb...), append(lta, ltb...))
	now := time.Now()
	e.Tick(now)

	// Kernel 1 at µ=1M/s, kernel 2 at µ=500k/s (same flow, twice the
	// blocked share).
	for i := 0; i < 10; i++ {
		a.pushes += 1000
		a.pops += 1000
		a.runs += 1000
		a.occN += 1000
		a.blkR += uint64(0.5 * float64(win.Nanoseconds()))
		b.pushes += 500
		b.pops += 500
		b.runs += 500
		b.occN += 500
		b.blkR += uint64(0.5 * float64(win.Nanoseconds()))
		now = now.Add(win)
		e.Tick(now)
	}
	mu, ok := e.GroupMu([]int32{1, 2})
	if !ok {
		t.Fatal("group unprimed")
	}
	want := (1e6 + 500e3) / 2
	if mu < 0.95*want || mu > 1.05*want {
		t.Fatalf("group µ̂ = %v, want ~%v", mu, want)
	}
	if _, ok := e.GroupMu([]int32{99}); ok {
		t.Fatal("unknown ids reported primed")
	}
}
