package raftlib

// Cross-system integration tests: the four Figure 10 systems must agree
// exactly on the ground truth for the same corpus, and the distributed
// runtime must agree with the local one. These are the correctness
// counterparts of the throughput benchmarks in bench_test.go.

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"raftlib/internal/apps/textsearch"
	"raftlib/internal/baselines/pargrep"
	"raftlib/internal/baselines/sparklet"
	"raftlib/internal/corpus"
	"raftlib/internal/oar"
	"raftlib/kernels"
	"raftlib/raft"
)

func TestAllFourSystemsAgree(t *testing.T) {
	data := corpus.Generate(corpus.Spec{Bytes: 4 << 20, Seed: 1234})
	pattern := []byte(corpus.DefaultPattern)
	want := int64(bytes.Count(data, pattern))
	if want == 0 {
		t.Fatal("corpus has no hits")
	}

	if got := pargrep.GrepSerial(data, pattern); int64(got.Hits) != want {
		t.Errorf("grep-serial: %d hits, want %d", got.Hits, want)
	}
	if got := pargrep.Run(data, pattern, pargrep.Config{Jobs: 3, DisableSpawnCost: true}); int64(got.Hits) != want {
		t.Errorf("pargrep: %d hits, want %d", got.Hits, want)
	}
	if got, err := sparklet.TextSearchBM(sparklet.NewContext(3), data, pattern); err != nil || got.Hits != want {
		t.Errorf("sparklet: %d hits (err %v), want %d", got.Hits, err, want)
	}
	for _, algo := range []string{"ahocorasick", "horspool", "boyermoore", "kmp", "rabinkarp"} {
		got, err := textsearch.Run(data, textsearch.Config{Algo: algo, Cores: 3})
		if err != nil || got.Hits != want {
			t.Errorf("raft-%s: %d hits (err %v), want %d", algo, got.Hits, err, want)
		}
	}
}

// TestDistributedSearchAgrees ships corpus chunks to a remote search stage
// over TCP and checks the distributed count equals the local ground truth.
func TestDistributedSearchAgrees(t *testing.T) {
	data := corpus.Generate(corpus.Spec{Bytes: 1 << 20, Seed: 777})
	pattern := []byte(corpus.DefaultPattern)
	want := int64(bytes.Count(data, pattern))

	node, err := oar.NewNode("worker", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// The worker serves a per-chunk count stage ([]byte in, int64 out).
	oar.RegisterStage[[]byte, int64](node, "count", func(args map[string]string) (raft.Kernel, error) {
		cs, err := kernels.NewCountSearch(args["algo"], []byte(args["pattern"]))
		if err != nil {
			return nil, err
		}
		// Adapt Chunk-based kernel: wrap raw []byte into Chunks locally.
		return raft.NewLambdaIO[[]byte, int64](1, 1, func(k *raft.LambdaKernel) raft.Status {
			b, err := raft.Pop[[]byte](k.In("0"))
			if err != nil {
				return raft.Stop
			}
			_ = cs // the wrapped kernel's matcher does the counting below
			n := int64(cs.CountBytes(b))
			if err := raft.Push(k.Out("0"), n); err != nil {
				return raft.Stop
			}
			return raft.Proceed
		}), nil
	})

	send, recv, err := oar.RemoteStage[[]byte, int64](node.Addr(), "count",
		map[string]string{"algo": "horspool", "pattern": string(pattern)})
	if err != nil {
		t.Fatal(err)
	}

	// Local producer: cut the corpus into non-overlapping whole chunks,
	// scanning boundaries locally (overlap accounting stays local for
	// simplicity; chunks are cut at pattern-safe newline boundaries).
	chunks := cutAtLines(data, 64<<10)
	producer := raft.NewMap()
	src := kernels.NewReadEach(chunks)
	producer.MustLink(src, send)

	var total int64
	consumer := raft.NewMap()
	consumer.MustLink(recv, kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total))

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = producer.Exe() }()
	go func() { defer wg.Done(); _, errs[1] = consumer.Exe() }()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != want {
		t.Fatalf("distributed count = %d, want %d", total, want)
	}
}

// cutAtLines splits data into ~size chunks cut at newline boundaries, so a
// pattern (which never spans lines in the generated corpus) is never
// severed.
func cutAtLines(data []byte, size int) [][]byte {
	var out [][]byte
	for off := 0; off < len(data); {
		end := off + size
		if end >= len(data) {
			end = len(data)
		} else if nl := bytes.LastIndexByte(data[off:end], '\n'); nl > 0 {
			end = off + nl + 1
		}
		out = append(out, data[off:end])
		off = end
	}
	return out
}

// TestChaosTextsearchIdenticalToUndisturbed runs the Figure 9 textsearch
// topology split across a loopback bridge, kills one match kernel and
// severs the bridge mid-run, and checks the disturbed run produces exactly
// the same answer as the undisturbed one (and the ground truth): the
// resilience subsystem's end-to-end exactly-once claim.
func TestChaosTextsearchIdenticalToUndisturbed(t *testing.T) {
	data := corpus.Generate(corpus.Spec{Bytes: 2 << 20, Seed: 4242})
	pattern := []byte(corpus.DefaultPattern)
	want := int64(bytes.Count(data, pattern))
	if want == 0 {
		t.Fatal("corpus has no hits")
	}

	run := func(chaos bool) int64 {
		t.Helper()
		node, err := oar.NewNode("chaos-search", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()

		var inj *raft.FaultInjector
		var bridgeOpts []oar.BridgeOption
		if chaos {
			inj = raft.NewFaultInjector()
			inj.KillKernel("search[", 5) // one match kernel dies pre-pop
			inj.SeverBridge("hits", 1)   // first frame's connection is cut
			bridgeOpts = append(bridgeOpts,
				oar.WithBridgeFault(inj),
				oar.WithReconnectBackoff(time.Millisecond, 50*time.Millisecond))
		}
		send, recv, err := oar.Bridge[int64](node, "hits", bridgeOpts...)
		if err != nil {
			t.Fatal(err)
		}

		// Producer half: filereader -> match (replicated) -> tcp-send.
		producer := raft.NewMap()
		match, err := kernels.NewCountSearch("horspool", pattern)
		if err != nil {
			t.Fatal(err)
		}
		producer.MustLink(kernels.NewBytesReader(data, 8<<10, len(pattern)-1), match, raft.AsOutOfOrder())
		producer.MustLink(match, send)
		// Adaptive batching AND full telemetry on both runs: the disturbed
		// result must stay byte-identical with bulk transfer, batch
		// resizing, and exhaustive (stride-1) event recording engaged.
		prodOpts := []raft.Option{
			raft.WithAutoReplicate(3), raft.WithAdaptiveBatching(true),
			raft.WithTrace(1 << 14), raft.WithTraceStride(1),
		}
		if chaos {
			prodOpts = append(prodOpts,
				raft.WithSupervision(raft.SupervisionPolicy{InitialBackoff: time.Microsecond}),
				raft.WithFaultInjection(inj))
		}

		// Consumer half: tcp-recv -> reduce.
		var total int64
		consumer := raft.NewMap()
		consumer.MustLink(recv, kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total))

		var wg sync.WaitGroup
		errs := make([]error, 2)
		wg.Add(2)
		go func() { defer wg.Done(); _, errs[0] = producer.Exe(prodOpts...) }()
		go func() { defer wg.Done(); _, errs[1] = consumer.Exe() }()
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("map %d (chaos=%v): %v", i, chaos, err)
			}
		}
		if chaos {
			if inj.Fired("kill") != 1 {
				t.Fatalf("kills fired = %d, want 1", inj.Fired("kill"))
			}
			if inj.Fired("sever") != 1 {
				t.Fatalf("severs fired = %d, want 1", inj.Fired("sever"))
			}
		}
		return total
	}

	undisturbed := run(false)
	disturbed := run(true)
	if undisturbed != want {
		t.Fatalf("undisturbed hits = %d, want %d", undisturbed, want)
	}
	if disturbed != undisturbed {
		t.Fatalf("disturbed hits = %d, undisturbed = %d (chaos run must be identical)", disturbed, undisturbed)
	}
}

// TestChaosTextsearchLockFreeResizeIdentical is the epoch-swap chaos
// gauntlet: the same disturbed Figure 9 topology as above, but every
// producer-side stream runs on the lock-free SPSC ring, starting at
// capacity 2 with dynamic resize on — so the monitor is growing queues
// via epoch swaps while a kernel is killed and the bridge severed. The
// answer must be byte-identical to the mutex-ring run and the ground
// truth, and the report must show the swaps actually happened.
func TestChaosTextsearchLockFreeResizeIdentical(t *testing.T) {
	data := corpus.Generate(corpus.Spec{Bytes: 2 << 20, Seed: 4242})
	pattern := []byte(corpus.DefaultPattern)
	want := int64(bytes.Count(data, pattern))
	if want == 0 {
		t.Fatal("corpus has no hits")
	}

	run := func(lockFree bool) (int64, *raft.Report) {
		t.Helper()
		node, err := oar.NewNode("chaos-search-lf", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()

		inj := raft.NewFaultInjector()
		inj.KillKernel("search[", 5)
		inj.SeverBridge("hits-lf", 1)
		send, recv, err := oar.Bridge[int64](node, "hits-lf",
			oar.WithBridgeFault(inj),
			oar.WithReconnectBackoff(time.Millisecond, 50*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}

		producer := raft.NewMap()
		match, err := kernels.NewCountSearch("horspool", pattern)
		if err != nil {
			t.Fatal(err)
		}
		producer.MustLink(kernels.NewBytesReader(data, 8<<10, len(pattern)-1), match, raft.AsOutOfOrder())
		producer.MustLink(match, send)
		prodOpts := []raft.Option{
			raft.WithAutoReplicate(3), raft.WithAdaptiveBatching(true),
			raft.WithTrace(1 << 14),
			raft.WithSupervision(raft.SupervisionPolicy{InitialBackoff: time.Microsecond}),
			raft.WithFaultInjection(inj),
			// Tiny initial capacities force the monitor's write-block
			// grow rule to fire mid-chaos on every stream.
			raft.WithDefaultCapacity(2), raft.WithDynamicResize(true),
		}
		if lockFree {
			prodOpts = append(prodOpts, raft.WithLockFreeQueues())
		}

		var total int64
		consumer := raft.NewMap()
		consumer.MustLink(recv, kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total))

		var wg sync.WaitGroup
		errs := make([]error, 2)
		var rep *raft.Report
		wg.Add(2)
		go func() { defer wg.Done(); rep, errs[0] = producer.Exe(prodOpts...) }()
		go func() { defer wg.Done(); _, errs[1] = consumer.Exe() }()
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("map %d (lockFree=%v): %v", i, lockFree, err)
			}
		}
		if inj.Fired("kill") != 1 || inj.Fired("sever") != 1 {
			t.Fatalf("faults fired: kill=%d sever=%d, want 1 and 1",
				inj.Fired("kill"), inj.Fired("sever"))
		}
		return total, rep
	}

	mutexHits, _ := run(false)
	lfHits, lfRep := run(true)
	if mutexHits != want {
		t.Fatalf("mutex-ring chaos hits = %d, want %d", mutexHits, want)
	}
	if lfHits != mutexHits {
		t.Fatalf("lock-free chaos hits = %d, mutex-ring = %d (must be byte-identical)", lfHits, mutexHits)
	}
	spsc, resizes := 0, uint64(0)
	for _, l := range lfRep.Links {
		if l.Ring == "spsc" {
			spsc++
			resizes += l.Resizes
		}
	}
	if spsc == 0 {
		t.Fatal("no spsc link in the lock-free report")
	}
	if resizes == 0 {
		t.Fatal("no epoch swap installed on any lock-free link despite capacity-2 starts")
	}
}

// TestChaosDistributedSumExact kills the supervised, checkpointed reduce
// kernel and severs the bridge mid-run; the distributed sum must still be
// exact.
func TestChaosDistributedSumExact(t *testing.T) {
	node, err := oar.NewNode("chaos-sum", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	const n = 20_000

	inj := raft.NewFaultInjector()
	inj.KillKernel("reduce", 100)
	inj.SeverBridge("numbers", 1)
	inj.SeverBridge("numbers", 3)

	send, recv, err := oar.Bridge[int64](node, "numbers",
		oar.WithBridgeFault(inj),
		oar.WithReconnectBackoff(time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	producer := raft.NewMap()
	producer.MustLink(kernels.NewGenerate(n, func(i int64) int64 { return i }), send)

	var total int64
	consumer := raft.NewMap()
	consumer.MustLink(recv, kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total))

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = producer.Exe(raft.WithAdaptiveBatching(true)) }()
	go func() {
		defer wg.Done()
		_, errs[1] = consumer.Exe(
			raft.WithAdaptiveBatching(true),
			raft.WithTrace(1<<14), raft.WithTraceStride(1),
			raft.WithSupervision(raft.SupervisionPolicy{InitialBackoff: time.Microsecond}),
			raft.WithCheckpointStore(raft.NewMemCheckpointStore()),
			raft.WithFaultInjection(inj))
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("map %d: %v", i, err)
		}
	}
	if want := int64(n) * (n - 1) / 2; total != want {
		t.Fatalf("chaos distributed sum = %d, want %d", total, want)
	}
	if inj.Fired("kill") != 1 || inj.Fired("sever") != 2 {
		t.Fatalf("faults fired: kill=%d sever=%d, want 1 and 2", inj.Fired("kill"), inj.Fired("sever"))
	}
}

// TestChaosTextsearchExactAcrossMidRunSplice combines the resilience
// gauntlet with runtime graph rewriting: the distributed textsearch
// topology runs with a kernel kill and a bridge sever in flight, and
// mid-run a relay kernel is spliced into the producer pipeline (then the
// undisturbed variant establishes the baseline). The disturbed, spliced
// run must produce the byte-identical answer — the epoch protocol's
// drain-then-splice guarantee composed with supervision and bridge
// replay.
func TestChaosTextsearchExactAcrossMidRunSplice(t *testing.T) {
	data := corpus.Generate(corpus.Spec{Bytes: 2 << 20, Seed: 777})
	pattern := []byte(corpus.DefaultPattern)
	want := int64(bytes.Count(data, pattern))
	if want == 0 {
		t.Fatal("corpus has no hits")
	}

	// pacedRelay forwards chunks unchanged, sleeping briefly every few
	// chunks: it keeps the producer half alive long enough for the splice
	// to land mid-run, and counts throughput so the test knows when the
	// stream is hot.
	newRelay := func(name string, count *atomic.Int64, pause time.Duration) *raft.LambdaKernel {
		k := raft.NewLambdaIO[kernels.Chunk, kernels.Chunk](1, 1, func(k *raft.LambdaKernel) raft.Status {
			c, err := raft.Pop[kernels.Chunk](k.In("0"))
			if err != nil {
				return raft.Stop
			}
			if err := raft.Push(k.Out("0"), c); err != nil {
				return raft.Stop
			}
			if n := count.Add(1); pause > 0 && n%8 == 0 {
				time.Sleep(pause)
			}
			return raft.Status(raft.Proceed)
		})
		k.SetName(name)
		return k
	}

	run := func(chaos bool) int64 {
		t.Helper()
		node, err := oar.NewNode("splice-search", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()

		var inj *raft.FaultInjector
		var bridgeOpts []oar.BridgeOption
		if chaos {
			inj = raft.NewFaultInjector()
			inj.KillKernel("search[", 5)
			inj.SeverBridge("hits", 1)
			bridgeOpts = append(bridgeOpts,
				oar.WithBridgeFault(inj),
				oar.WithReconnectBackoff(time.Millisecond, 50*time.Millisecond))
		}
		send, recv, err := oar.Bridge[int64](node, "hits", bridgeOpts...)
		if err != nil {
			t.Fatal(err)
		}

		// Producer half: filereader -> relay -> match -> tcp-send. The
		// relay is the splice site; match stays unreplicated so the graph
		// has no rigid kernels.
		var relayed atomic.Int64
		relay := newRelay("relay", &relayed, time.Millisecond)
		producer := raft.NewMap()
		match, err := kernels.NewCountSearch("horspool", pattern)
		if err != nil {
			t.Fatal(err)
		}
		producer.MustLink(kernels.NewBytesReader(data, 2<<10, len(pattern)-1), relay)
		spliceAt := producer.MustLink(relay, match)
		producer.MustLink(match, send)
		prodOpts := []raft.Option{
			raft.WithAdaptiveBatching(true),
			raft.WithTrace(1 << 14), raft.WithTraceStride(1),
		}
		if chaos {
			prodOpts = append(prodOpts,
				raft.WithSupervision(raft.SupervisionPolicy{InitialBackoff: time.Microsecond}),
				raft.WithFaultInjection(inj))
		}

		var total int64
		consumer := raft.NewMap()
		consumer.MustLink(recv, kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total))

		var wg sync.WaitGroup
		var consErr error
		wg.Add(1)
		go func() { defer wg.Done(); _, consErr = consumer.Exe() }()

		ex, err := producer.ExeAsync(prodOpts...)
		if err != nil {
			t.Fatal(err)
		}

		// Splice a second relay between the first and the matcher once the
		// stream is demonstrably hot.
		deadline := time.Now().Add(10 * time.Second)
		for relayed.Load() < 64 {
			if time.Now().After(deadline) {
				t.Fatal("stream never became hot")
			}
			time.Sleep(time.Millisecond)
		}
		var relayed2 atomic.Int64
		relay2 := newRelay("relay2", &relayed2, 0)
		tx := ex.Rewriter().Begin()
		if err := tx.RemoveLink(spliceAt); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Link(relay, relay2); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Link(relay2, match); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("mid-run splice (chaos=%v): %v", chaos, err)
		}

		if _, err := ex.Wait(); err != nil {
			t.Fatalf("producer (chaos=%v): %v", chaos, err)
		}
		wg.Wait()
		if consErr != nil {
			t.Fatalf("consumer (chaos=%v): %v", chaos, consErr)
		}
		if chaos {
			if inj.Fired("kill") != 1 {
				t.Fatalf("kills fired = %d, want 1", inj.Fired("kill"))
			}
			if inj.Fired("sever") != 1 {
				t.Fatalf("severs fired = %d, want 1", inj.Fired("sever"))
			}
		}
		if relayed2.Load() == 0 {
			t.Fatalf("spliced relay saw no traffic (chaos=%v)", chaos)
		}
		return total
	}

	undisturbed := run(false)
	disturbed := run(true)
	if undisturbed != want {
		t.Fatalf("undisturbed spliced hits = %d, want %d", undisturbed, want)
	}
	if disturbed != undisturbed {
		t.Fatalf("disturbed spliced hits = %d, undisturbed = %d (must be identical)", disturbed, undisturbed)
	}
}
