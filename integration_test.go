package raftlib

// Cross-system integration tests: the four Figure 10 systems must agree
// exactly on the ground truth for the same corpus, and the distributed
// runtime must agree with the local one. These are the correctness
// counterparts of the throughput benchmarks in bench_test.go.

import (
	"bytes"
	"sync"
	"testing"

	"raftlib/internal/apps/textsearch"
	"raftlib/internal/baselines/pargrep"
	"raftlib/internal/baselines/sparklet"
	"raftlib/internal/corpus"
	"raftlib/internal/oar"
	"raftlib/kernels"
	"raftlib/raft"
)

func TestAllFourSystemsAgree(t *testing.T) {
	data := corpus.Generate(corpus.Spec{Bytes: 4 << 20, Seed: 1234})
	pattern := []byte(corpus.DefaultPattern)
	want := int64(bytes.Count(data, pattern))
	if want == 0 {
		t.Fatal("corpus has no hits")
	}

	if got := pargrep.GrepSerial(data, pattern); int64(got.Hits) != want {
		t.Errorf("grep-serial: %d hits, want %d", got.Hits, want)
	}
	if got := pargrep.Run(data, pattern, pargrep.Config{Jobs: 3, DisableSpawnCost: true}); int64(got.Hits) != want {
		t.Errorf("pargrep: %d hits, want %d", got.Hits, want)
	}
	if got, err := sparklet.TextSearchBM(sparklet.NewContext(3), data, pattern); err != nil || got.Hits != want {
		t.Errorf("sparklet: %d hits (err %v), want %d", got.Hits, err, want)
	}
	for _, algo := range []string{"ahocorasick", "horspool", "boyermoore", "kmp", "rabinkarp"} {
		got, err := textsearch.Run(data, textsearch.Config{Algo: algo, Cores: 3})
		if err != nil || got.Hits != want {
			t.Errorf("raft-%s: %d hits (err %v), want %d", algo, got.Hits, err, want)
		}
	}
}

// TestDistributedSearchAgrees ships corpus chunks to a remote search stage
// over TCP and checks the distributed count equals the local ground truth.
func TestDistributedSearchAgrees(t *testing.T) {
	data := corpus.Generate(corpus.Spec{Bytes: 1 << 20, Seed: 777})
	pattern := []byte(corpus.DefaultPattern)
	want := int64(bytes.Count(data, pattern))

	node, err := oar.NewNode("worker", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// The worker serves a per-chunk count stage ([]byte in, int64 out).
	oar.RegisterStage[[]byte, int64](node, "count", func(args map[string]string) (raft.Kernel, error) {
		cs, err := kernels.NewCountSearch(args["algo"], []byte(args["pattern"]))
		if err != nil {
			return nil, err
		}
		// Adapt Chunk-based kernel: wrap raw []byte into Chunks locally.
		return raft.NewLambdaIO[[]byte, int64](1, 1, func(k *raft.LambdaKernel) raft.Status {
			b, err := raft.Pop[[]byte](k.In("0"))
			if err != nil {
				return raft.Stop
			}
			_ = cs // the wrapped kernel's matcher does the counting below
			n := int64(cs.CountBytes(b))
			if err := raft.Push(k.Out("0"), n); err != nil {
				return raft.Stop
			}
			return raft.Proceed
		}), nil
	})

	send, recv, err := oar.RemoteStage[[]byte, int64](node.Addr(), "count",
		map[string]string{"algo": "horspool", "pattern": string(pattern)})
	if err != nil {
		t.Fatal(err)
	}

	// Local producer: cut the corpus into non-overlapping whole chunks,
	// scanning boundaries locally (overlap accounting stays local for
	// simplicity; chunks are cut at pattern-safe newline boundaries).
	chunks := cutAtLines(data, 64<<10)
	producer := raft.NewMap()
	src := kernels.NewReadEach(chunks)
	producer.MustLink(src, send)

	var total int64
	consumer := raft.NewMap()
	consumer.MustLink(recv, kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total))

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = producer.Exe() }()
	go func() { defer wg.Done(); _, errs[1] = consumer.Exe() }()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != want {
		t.Fatalf("distributed count = %d, want %d", total, want)
	}
}

// cutAtLines splits data into ~size chunks cut at newline boundaries, so a
// pattern (which never spans lines in the generated corpus) is never
// severed.
func cutAtLines(data []byte, size int) [][]byte {
	var out [][]byte
	for off := 0; off < len(data); {
		end := off + size
		if end >= len(data) {
			end = len(data)
		} else if nl := bytes.LastIndexByte(data[off:end], '\n'); nl > 0 {
			end = off + nl + 1
		}
		out = append(out, data[off:end])
		off = end
	}
	return out
}
