// Ingestion gateway: a multi-tenant HTTP front door for a running graph.
//
// A Source kernel ("events") feeds a word-count pipeline; the gateway
// turns POSTed newline-separated batches into bulk pushes on that source,
// enforcing per-tenant quotas and shedding early (HTTP 429 + Retry-After)
// when the admission model predicts the shared pipeline would saturate.
//
// Run with: go run ./examples/gateway [-addr HOST:PORT] [-dur SECONDS]
//
// then, from another terminal:
//
//	curl -i -X POST -H 'X-Raft-Tenant: alice' \
//	     --data $'first event\nsecond event' \
//	     http://localhost:8080/v1/ingest/events
//	curl -s http://localhost:8080/v1/stats
//	curl -s http://localhost:8080/metrics | grep raft_gateway
//	curl -X POST http://localhost:8080/v1/sources/events/close
//
// The run ends when the intake is closed (last curl) or after -dur.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"raftlib/raft"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "gateway HTTP listen address")
	dur := flag.Int("dur", 60, "auto-close the intake after this many seconds (0 = only the close endpoint ends the run)")
	flag.Parse()

	gw, err := raft.NewGateway(raft.GatewayConfig{
		Addr: *addr,
		// alice is provisioned for a sustained 1000 elements/s; everyone
		// else shares the default (here: 200/s). Batches beyond the budget
		// get 429 + Retry-After before they touch the pipeline.
		DefaultQuota: raft.GatewayQuota{Rate: 200},
		Tenants: map[string]raft.GatewayQuota{
			"alice": {Rate: 1000},
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	src := raft.NewSource[[]byte]("events")
	if err := raft.BindSource(gw, src, func(p []byte) ([][]byte, error) {
		if len(p) == 0 {
			return nil, fmt.Errorf("empty payload")
		}
		return bytes.Split(p, []byte("\n")), nil
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// events -> count words per event -> running total.
	count := raft.NewLambdaIO[[]byte, int](1, 1, func(k *raft.LambdaKernel) raft.Status {
		ev, err := raft.Pop[[]byte](k.In("0"))
		if err != nil {
			return raft.Stop
		}
		if err := raft.Push(k.Out("0"), len(bytes.Fields(ev))); err != nil {
			return raft.Stop
		}
		return raft.Proceed
	})
	count.SetName("count")
	var events, words int64
	total := raft.NewLambdaIO[int, int](1, 0, func(k *raft.LambdaKernel) raft.Status {
		n, err := raft.Pop[int](k.In("0"))
		if err != nil {
			return raft.Stop
		}
		events++
		words += int64(n)
		return raft.Proceed
	})
	total.SetName("total")

	m := raft.NewMap()
	m.MustLink(src, count)
	m.MustLink(count, total)

	if *dur > 0 {
		go func() {
			time.Sleep(time.Duration(*dur) * time.Second)
			src.CloseIntake()
		}()
	}

	fmt.Printf("gateway listening on http://%s — POST /v1/ingest/events (X-Raft-Tenant header names the tenant)\n", gw.Addr())
	rep, err := m.Exe(raft.WithGateway(gw))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\n%d events, %d words\n\n%s", events, words, rep)
}
