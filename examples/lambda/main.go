// Lambda kernels and container bridges: the paper's Figures 5 and 7.
//
// Part 1 (Fig. 7): a lambda source kernel — a full compute kernel declared
// as a function, no type boiler-plate — feeds a print kernel.
//
// Part 2 (Fig. 5): a std-container round trip: read_each streams a slice
// through the graph into write_each's destination slice, each side running
// on its own goroutine.
//
// Run with: go run ./examples/lambda
package main

import (
	"fmt"
	"os"

	"raftlib/kernels"
	"raftlib/raft"
)

func main() {
	lambdaExample()
	containerExample()
}

// lambdaExample is Fig. 7: zero input ports, one uint32 output port, the
// body called repeatedly by the runtime. Closure state replaces the
// paper's static locals.
func lambdaExample() {
	fmt.Println("== lambda kernel (Fig. 7) ==")
	m := raft.NewMap()
	state := uint32(2)
	src := raft.NewLambda[uint32](0, 1, func(k *raft.LambdaKernel) raft.Status {
		if state > 1<<16 {
			return raft.Stop
		}
		out := raft.Allocate[uint32](k.Out("0"))
		out.Val = state
		if err := out.Send(); err != nil {
			return raft.Stop
		}
		state *= 2
		return raft.Proceed
	})
	if _, err := m.Link(src, kernels.NewPrint[uint32](os.Stdout, '\n')); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := m.Exe(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// containerExample is Fig. 5: data flows from one Go slice to another
// through a stream, the read and write kernels running concurrently.
func containerExample() {
	fmt.Println("== container bridge (Fig. 5) ==")
	var v []uint32
	for i := uint32(0); i < 1000; i++ {
		v = append(v, i)
	}
	var o []uint32

	m := raft.NewMap()
	if _, err := m.Link(kernels.NewReadEach(v), kernels.NewWriteEach(&o)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := m.Exe(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("copied %d elements through the stream; o[0]=%d o[999]=%d\n",
		len(o), o[0], o[999])
}
