// Zero-copy pipeline: the paper's Figure 6.
//
// A for_each source exposes an existing array's memory directly as the
// stream (no copy), a replicated worker kernel processes elements out of
// order in parallel, and a reduce kernel folds the results to one value:
//
//	for_each(arr) ─> work (×N, auto-replicated) ─> reduce(val)
//
// This is the streaming analogue of an OpenMP parallel-for, as the paper
// notes. Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"os"
	"runtime"

	"raftlib/kernels"
	"raftlib/raft"
)

func main() {
	const n = 1 << 20
	arr := make([]int64, n)
	for i := range arr {
		arr[i] = int64(i)
	}

	// The worker is a cloneable lambda so the runtime may replicate it;
	// each clone gets fresh closure state (the paper's warning about
	// by-reference captures, solved by construction).
	worker := raft.NewLambdaCloneable(func() *raft.LambdaKernel {
		return raft.NewLambda[int64](1, 1, func(k *raft.LambdaKernel) raft.Status {
			v, err := raft.Pop[int64](k.In("0"))
			if err != nil {
				return raft.Stop
			}
			if err := raft.Push(k.Out("0"), v*v%1000003); err != nil {
				return raft.Stop
			}
			return raft.Proceed
		})
	})

	var val int64
	m := raft.NewMap()
	if _, err := m.Link(kernels.NewForEach(arr), worker, raft.AsOutOfOrder()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := m.Link(worker,
		kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &val)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rep, err := m.Exe(raft.WithAutoReplicate(runtime.GOMAXPROCS(0)))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("reduced %d elements to %d in %v\n", n, val, rep.Elapsed)
	for _, g := range rep.Groups {
		fmt.Printf("worker group %q ran %d replicas\n", g.Name, g.MaxReplicas)
	}
	// The for_each source never consumed scheduler time: it is the
	// momentary zero-copy kernel of §4.2.
	for _, k := range rep.Kernels {
		if k.Runs == 0 && k.Name[:3] == "for" {
			fmt.Printf("%s: zero scheduled runs (zero-copy source)\n", k.Name)
		}
	}
}
