// Word count: the "big data processing" workload the paper's introduction
// motivates, on the raft runtime.
//
//	filereader ─> tokenize+count (×N, replicated) ─> merge partials ─> top-K
//
// Each tokenizer consumes zero-copy corpus chunks and emits one partial
// frequency map per chunk; the reducer folds partials into the global
// counts. Chunks overlap by the maximum word length, and a chunk skips its
// leading partial word (it belongs to the previous chunk), so words
// straddling chunk boundaries are counted exactly once.
//
// Run with: go run ./examples/wordcount [-size MiB] [-top K]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"raftlib/internal/corpus"
	"raftlib/kernels"
	"raftlib/raft"
)

// maxWordLen bounds the chunk overlap; corpus words are far shorter.
const maxWordLen = 32

// counts is the per-chunk partial result streamed to the reducer.
type counts map[string]int64

// tokenize builds a cloneable kernel turning Chunks into partial counts.
func tokenize() raft.Kernel {
	return raft.NewLambdaCloneable(func() *raft.LambdaKernel {
		return raft.NewLambdaIO[kernels.Chunk, counts](1, 1, func(k *raft.LambdaKernel) raft.Status {
			c, err := raft.Pop[kernels.Chunk](k.In("0"))
			if err != nil {
				return raft.Stop
			}
			part := counts{}
			data := c.Data
			i := 0
			if c.Off > 0 && !delim(c.Prev) {
				// The chunk begins mid-word: that word started in (and is
				// counted by) the previous chunk. A word starting exactly
				// on the boundary (Prev is a delimiter) is ours.
				for i < len(data) && !delim(data[i]) {
					i++
				}
			}
			for i < len(data) {
				for i < len(data) && delim(data[i]) {
					i++
				}
				start := i
				for i < len(data) && !delim(data[i]) {
					i++
				}
				if start >= c.Valid {
					break // word starts in the overlap: next chunk owns it
				}
				if i > start {
					part[string(data[start:i])]++
				}
			}
			if err := raft.Push(k.Out("0"), part); err != nil {
				return raft.Stop
			}
			return raft.Proceed
		})
	})
}

func delim(b byte) bool { return b == ' ' || b == '\n' }

func main() {
	size := flag.Int("size", 16, "corpus size in MiB")
	top := flag.Int("top", 10, "how many top words to print")
	flag.Parse()

	data := corpus.Generate(corpus.Spec{Bytes: *size << 20, Seed: 7})

	total := counts{}
	m := raft.NewMap()
	tok := tokenize()
	if _, err := m.Link(kernels.NewBytesReader(data, 256<<10, maxWordLen), tok,
		raft.AsOutOfOrder()); err != nil {
		fail(err)
	}
	red := kernels.NewReduce(func(acc, part counts) counts {
		for w, n := range part {
			acc[w] += n
		}
		return acc
	}, total, &total)
	if _, err := m.Link(tok, red); err != nil {
		fail(err)
	}

	rep, err := m.Exe(raft.WithAutoReplicate(runtime.GOMAXPROCS(0)))
	if err != nil {
		fail(err)
	}

	type wc struct {
		w string
		n int64
	}
	var ranked []wc
	var words int64
	for w, n := range total {
		ranked = append(ranked, wc{w, n})
		words += n
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].w < ranked[j].w
	})
	fmt.Printf("counted %d words (%d distinct) in %v (%.3f GB/s)\n\n",
		words, len(ranked), rep.Elapsed, float64(len(data))/rep.Elapsed.Seconds()/1e9)
	if *top > len(ranked) {
		*top = len(ranked)
	}
	for _, e := range ranked[:*top] {
		fmt.Printf("%8d  %s\n", e.n, e.w)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
