// Real-time analytics: the "long running, data intense" workload class the
// paper targets (§4.2: "Streaming applications are often ideally suited
// for long running, data intense applications such as big data processing
// or real-time data analytics").
//
// A synthetic sensor stream fans out to two concurrent analyses:
//
//	sensor ─> tee ─┬─> sliding-window mean  ─> collect (trend)
//	               └─> anomaly filter       ─> count  (alerts)
//
// The window branch reads the stream through the zero-copy peek_range
// window; the filter branch demonstrates predicate kernels. Both run
// concurrently on independent streams of the same data.
//
// Run with: go run ./examples/analytics [-n samples]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"raftlib/kernels"
	"raftlib/raft"
)

func main() {
	n := flag.Int64("n", 100_000, "number of sensor samples")
	flag.Parse()

	// Deterministic noisy sine with occasional spikes.
	sensor := kernels.NewGenerate(*n, func(i int64) float64 {
		v := 10 * math.Sin(float64(i)/500)
		noise := float64((i*2654435761)%97)/97 - 0.5
		if i%997 == 0 {
			v += 40 // injected anomaly
		}
		return v + noise
	})

	tee := kernels.NewTee[float64](2)

	// Branch 1: sliding mean, window 256 sliding by 64.
	mean := kernels.NewSlidingWindow(256, 64, func(w []float64) float64 {
		var s float64
		for _, v := range w {
			s += v
		}
		return s / float64(len(w))
	})
	var trend []float64

	// Branch 2: anomaly detection + count (Reduce folds over the stream's
	// own element type, so the counter accumulates in float64).
	anomalies := kernels.NewFilter(func(v float64) bool { return math.Abs(v) > 25 })
	var alerts float64
	count := kernels.NewReduce(func(acc, _ float64) float64 { return acc + 1 }, 0, &alerts)

	m := raft.NewMap()
	must(m.Link(sensor, tee))
	must(m.Link(tee, mean, raft.From("0")))
	must(m.Link(mean, kernels.NewWriteEach(&trend)))
	must(m.Link(tee, anomalies, raft.From("1")))
	must(m.Link(anomalies, count))

	rep, err := m.Exe(raft.WithTrace(1 << 14))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("analyzed %d samples in %v\n", *n, rep.Elapsed)
	fmt.Printf("trend points: %d (first %.2f, last %.2f)\n",
		len(trend), trend[0], trend[len(trend)-1])
	fmt.Printf("anomalies detected: %d (expected ~%d injected)\n", int64(alerts), *n/997)
	fmt.Println("\nkernel utilization timeline:")
	fmt.Print(rep.Trace.Timeline(raft.TraceNames(rep), 64))
}

func must(_ *raft.Link, err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
