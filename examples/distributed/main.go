// Distributed execution: the paper's §4.1 "oar" claim, end to end.
//
// The quickstart sum application is split across two logical nodes: the
// generators run in the producer map, the sum+print half runs in the
// consumer map, and the stream between them travels over a real loopback
// TCP connection brokered by an oar node. No kernel code differs from the
// single-process version — only one Link call became a Bridge.
//
// The example also demonstrates the mesh (gossip) and remote execution
// (service call) facilities.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"os"
	"strconv"
	"sync"

	"raftlib/internal/oar"
	"raftlib/kernels"
	"raftlib/raft"
)

type sum struct {
	raft.KernelBase
}

func newSum() *sum {
	k := &sum{}
	raft.AddInput[int64](k, "input_a")
	raft.AddInput[int64](k, "input_b")
	raft.AddOutput[int64](k, "sum")
	return k
}

func (s *sum) Run() raft.Status {
	a, err := raft.Pop[int64](s.In("input_a"))
	if err != nil {
		return raft.Stop
	}
	b, err := raft.Pop[int64](s.In("input_b"))
	if err != nil {
		return raft.Stop
	}
	if err := raft.Push(s.Out("sum"), a+b); err != nil {
		return raft.Stop
	}
	return raft.Proceed
}

func main() {
	// Two mesh nodes on loopback; "worker" hosts the consumer half.
	head, err := oar.NewNode("head", "127.0.0.1:0")
	check(err)
	defer head.Close()
	worker, err := oar.NewNode("worker", "127.0.0.1:0")
	check(err)
	defer worker.Close()
	check(head.Join(worker.Addr()))
	fmt.Printf("mesh: head=%s sees %d peer(s)\n", head.Addr(), len(head.Peers()))

	// Remote execution: the worker registers a service the head invokes.
	worker.RegisterService("square", func(req map[string]string) (map[string]string, error) {
		x, err := strconv.Atoi(req["x"])
		if err != nil {
			return nil, err
		}
		return map[string]string{"y": strconv.Itoa(x * x)}, nil
	})
	resp, err := oar.Call(worker.Addr(), "square", map[string]string{"x": "12"})
	check(err)
	fmt.Printf("remote execution: square(12) = %s on node %s\n", resp["y"], worker.ID())

	// Stream bridges: one per generator stream.
	const count = 10
	sendA, recvA, err := oar.Bridge[int64](worker, "a")
	check(err)
	sendB, recvB, err := oar.Bridge[int64](worker, "b")
	check(err)

	// Producer map ("runs on head"): two generators feeding TCP senders.
	producer := raft.NewMap()
	producer.MustLink(kernels.NewGenerate(count, func(i int64) int64 { return i }), sendA)
	producer.MustLink(kernels.NewGenerate(count, func(i int64) int64 { return 100 * i }), sendB)

	// Consumer map ("runs on worker"): TCP receivers into the unchanged
	// sum kernel, then print.
	consumer := raft.NewMap()
	s := newSum()
	consumer.MustLink(recvA, s, raft.To("input_a"))
	consumer.MustLink(recvB, s, raft.To("input_b"))
	consumer.MustLink(s, kernels.NewPrint[int64](os.Stdout, '\n'))

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = producer.Exe() }()
	go func() { defer wg.Done(); _, errs[1] = consumer.Exe() }()
	wg.Wait()
	check(errs[0])
	check(errs[1])
	fmt.Println("distributed sum complete — same kernels, TCP streams between maps")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
