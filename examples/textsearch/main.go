// Text search: the paper's §5 benchmark application (Figures 8–9).
//
// A filereader kernel streams zero-copy chunks of a corpus to replicated
// match kernels; hit counts are reduced to a total. The match algorithm is
// selected by name, as Figure 9 selects the search template
// specialization, and both §5 algorithms are run for comparison.
//
// Run with: go run ./examples/textsearch [-size MiB] [-pattern STR]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"raftlib/internal/apps/textsearch"
	"raftlib/internal/corpus"
)

func main() {
	size := flag.Int("size", 32, "corpus size in MiB")
	pattern := flag.String("pattern", corpus.DefaultPattern, "string to search for")
	flag.Parse()

	fmt.Printf("generating %d MiB corpus...\n", *size)
	data := corpus.Generate(corpus.Spec{
		Bytes:   *size << 20,
		Seed:    42,
		Pattern: *pattern,
	})

	cores := runtime.GOMAXPROCS(0)
	for _, algo := range []string{"ahocorasick", "horspool"} {
		res, err := textsearch.Run(data, textsearch.Config{
			Algo:    algo,
			Pattern: []byte(*pattern),
			Cores:   cores,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-12s %6d hits  %8v  %.3f GB/s  (%d kernels incl. %d match replicas)\n",
			algo, res.Hits, res.Elapsed.Round(1e6), res.Throughput(len(data))/1e9,
			len(res.Report.Kernels), groupWidth(res))
	}
	fmt.Println("\nthe paper's §5 finding: Boyer-Moore-Horspool outruns Aho-Corasick")
	fmt.Println("for single patterns — swap algorithms, keep the topology.")
}

func groupWidth(res textsearch.Result) int {
	if len(res.Report.Groups) > 0 {
		return res.Report.Groups[0].MaxReplicas
	}
	return 1
}
