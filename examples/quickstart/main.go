// Quickstart: the paper's introductory application (Figures 1–3).
//
// Two generator kernels each stream numbers into a sum kernel, which adds
// pairs and streams the results to a print kernel:
//
//	source ─┐
//	        ├─> sum ─> print
//	source ─┘
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"raftlib/kernels"
	"raftlib/raft"
)

// sum is the paper's Figure 2 kernel, transliterated: two typed input
// ports, one typed output port, and a Run body that pops a pair and pushes
// the sum.
type sum struct {
	raft.KernelBase
}

func newSum() *sum {
	k := &sum{}
	raft.AddInput[int64](k, "input_a")
	raft.AddInput[int64](k, "input_b")
	raft.AddOutput[int64](k, "sum")
	return k
}

func (s *sum) Run() raft.Status {
	a, err := raft.Pop[int64](s.In("input_a"))
	if err != nil {
		return raft.Stop
	}
	b, err := raft.Pop[int64](s.In("input_b"))
	if err != nil {
		return raft.Stop
	}
	// allocate_s-style write: fill the slot, send it.
	out := raft.Allocate[int64](s.Out("sum"))
	out.Val = a + b
	if err := out.Send(); err != nil {
		return raft.Stop
	}
	return raft.Proceed
}

func main() {
	const count = 10 // the paper uses 100000; keep the demo readable

	// Figure 3: assemble the topology with link calls. The returned Link
	// carries Src/Dst references for chaining, exactly like the paper's
	// linked_kernels struct.
	m := raft.NewMap()
	linked, err := m.Link(
		kernels.NewGenerate(count, func(i int64) int64 { return i }),
		newSum(),
		raft.To("input_a"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := m.Link(
		kernels.NewGenerate(count, func(i int64) int64 { return 10 * i }),
		linked.Dst,
		raft.To("input_b")); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := m.Link(linked.Dst, kernels.NewPrint[int64](os.Stdout, '\n')); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// map.exe(): verify, allocate, map, schedule, monitor, run.
	rep, err := m.Exe()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nran %d kernels over %d streams in %v under the %s scheduler\n",
		len(rep.Kernels), len(rep.Links), rep.Elapsed, rep.Scheduler)
}
