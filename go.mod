module raftlib

go 1.22
