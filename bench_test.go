package raftlib

// One testing.B benchmark per table/figure of the paper's evaluation plus
// the DESIGN.md ablations. `go test -bench=. -benchmem` regenerates the
// whole set at reduced scale; cmd/raft-bench prints the full tables.
//
// Naming: BenchmarkTable1*, BenchmarkFig4*, BenchmarkFig10* map directly
// to the paper's artifacts; BenchmarkAblation* map to DESIGN.md A1–A8.

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"raftlib/internal/apps/matmul"
	"raftlib/internal/apps/textsearch"
	"raftlib/internal/baselines/pargrep"
	"raftlib/internal/baselines/sparklet"
	"raftlib/internal/corpus"
	"raftlib/internal/graph"
	"raftlib/internal/mapper"
	"raftlib/internal/oar"
	"raftlib/internal/qmodel"
	"raftlib/kernels"
	"raftlib/raft"
)

// benchCorpusMB scales the text-search corpus (override with
// RAFTLIB_BENCH_CORPUS_MB).
func benchCorpusMB() int {
	if s := os.Getenv("RAFTLIB_BENCH_CORPUS_MB"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 16
}

var (
	corpusOnce sync.Once
	corpusData []byte
)

func benchCorpus() []byte {
	corpusOnce.Do(func() {
		corpusData = corpus.Generate(corpus.Spec{Bytes: benchCorpusMB() << 20, Seed: 2015})
	})
	return corpusData
}

func coreCounts() []int {
	max := runtime.GOMAXPROCS(0)
	var out []int
	for c := 1; c < max; c *= 2 {
		out = append(out, c)
	}
	return append(out, max)
}

// BenchmarkTable1Hardware reports the host configuration as benchmark
// metrics (cores, GOMAXPROCS), standing in for the paper's Table 1 row.
func BenchmarkTable1Hardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = runtime.NumCPU()
	}
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkFig4QueueSize sweeps the stream allocation of the streaming
// matrix multiply (paper Figure 4): execution time vs queue size.
func BenchmarkFig4QueueSize(b *testing.B) {
	a, m2 := matmul.NewRandom(1), matmul.NewRandom(2)
	for _, size := range []int{2 << 10, 32 << 10, 512 << 10, 8 << 20} {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := matmul.Run(a, m2, matmul.Config{QueueCapBytes: size, Workers: 2})
				if err != nil {
					b.Fatal(err)
				}
				_ = res.C
			}
		})
	}
}

// BenchmarkFig10TextSearch measures GB/s for each of the paper's four
// systems across core counts (paper Figure 10). Throughput appears as the
// standard MB/s column via b.SetBytes.
func BenchmarkFig10TextSearch(b *testing.B) {
	data := benchCorpus()
	pattern := []byte(corpus.DefaultPattern)

	b.Run("grep-serial", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if r := pargrep.GrepSerial(data, pattern); r.Hits == 0 {
				b.Fatal("no hits")
			}
		}
	})
	for _, cores := range coreCounts() {
		b.Run(fmt.Sprintf("pargrep/cores=%d", cores), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if r := pargrep.Run(data, pattern, pargrep.Config{Jobs: cores}); r.Hits == 0 {
					b.Fatal("no hits")
				}
			}
		})
		b.Run(fmt.Sprintf("sparklet-bm/cores=%d", cores), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				r, err := sparklet.TextSearchBM(sparklet.NewContext(cores), data, pattern)
				if err != nil || r.Hits == 0 {
					b.Fatalf("hits=%d err=%v", r.Hits, err)
				}
			}
		})
		for _, algo := range []string{"ahocorasick", "horspool"} {
			b.Run(fmt.Sprintf("raft-%s/cores=%d", algo, cores), func(b *testing.B) {
				b.SetBytes(int64(len(data)))
				for i := 0; i < b.N; i++ {
					r, err := textsearch.Run(data, textsearch.Config{Algo: algo, Cores: cores})
					if err != nil || r.Hits == 0 {
						b.Fatalf("hits=%d err=%v", r.Hits, err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationSplitPolicy (A1) compares the two split strategies
// under a skewed per-item cost.
func BenchmarkAblationSplitPolicy(b *testing.B) {
	const items = 20_000
	for _, policy := range []raft.SplitPolicy{raft.RoundRobin, raft.LeastUtilized} {
		b.Run(policy.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := raft.NewMap()
				worker := raft.NewLambdaCloneable(func() *raft.LambdaKernel {
					return raft.NewLambda[int64](1, 1, func(k *raft.LambdaKernel) raft.Status {
						v, err := raft.Pop[int64](k.In("0"))
						if err != nil {
							return raft.Stop
						}
						spin := 100
						if v%16 == 0 {
							spin = 5000
						}
						s := int64(0)
						for j := 0; j < spin; j++ {
							s += int64(j)
						}
						if err := raft.Push(k.Out("0"), v+s*0); err != nil {
							return raft.Stop
						}
						return raft.Proceed
					})
				})
				var out []int64
				m.MustLink(kernels.NewGenerate(items, func(i int64) int64 { return i }), worker,
					raft.AsOutOfOrder(), raft.Cap(8), raft.MaxCap(8))
				m.MustLink(worker, kernels.NewWriteEach(&out))
				if _, err := m.Exe(raft.WithAutoReplicate(4), raft.WithSplitPolicy(policy)); err != nil {
					b.Fatal(err)
				}
				if len(out) != items {
					b.Fatalf("lost items: %d", len(out))
				}
			}
		})
	}
}

// BenchmarkAblationResize (A2) compares fixed-small, fixed-large and
// dynamic queues on a simple pipeline.
func BenchmarkAblationResize(b *testing.B) {
	const items = 100_000
	cases := []struct {
		name string
		link []raft.LinkOption
		opts []raft.Option
	}{
		{"fixed-4", []raft.LinkOption{raft.Cap(4), raft.MaxCap(4)}, []raft.Option{raft.WithDynamicResize(false)}},
		{"fixed-4096", []raft.LinkOption{raft.Cap(4096), raft.MaxCap(4096)}, []raft.Option{raft.WithDynamicResize(false)}},
		{"dynamic-from-4", []raft.LinkOption{raft.Cap(4)}, []raft.Option{raft.WithDynamicResize(true)}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := raft.NewMap()
				var total int64
				red := kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total)
				m.MustLink(kernels.NewGenerate(items, func(i int64) int64 { return i }), red, c.link...)
				if _, err := m.Exe(c.opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationClone (A3) measures the text search without
// replication, with static replication, and with monitor auto-scaling.
func BenchmarkAblationClone(b *testing.B) {
	data := benchCorpus()
	max := runtime.GOMAXPROCS(0)
	cases := []struct {
		name  string
		cores int
		extra []raft.Option
	}{
		{"off", 1, nil},
		{"static", max, nil},
		{"autoscale", max, []raft.Option{raft.WithAutoScale(true)}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				r, err := textsearch.Run(data, textsearch.Config{
					Algo: "ahocorasick", Cores: c.cores, ExtraExeOpts: c.extra,
				})
				if err != nil || r.Hits == 0 {
					b.Fatalf("hits=%d err=%v", r.Hits, err)
				}
			}
		})
	}
}

// BenchmarkAblationScheduler (A4) compares the two schedulers on the same
// workload.
func BenchmarkAblationScheduler(b *testing.B) {
	data := benchCorpus()
	cases := []struct {
		name string
		opts []raft.Option
	}{
		{"goroutine", nil},
		{"pool", []raft.Option{raft.WithPoolScheduler(2 * runtime.GOMAXPROCS(0))}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				r, err := textsearch.Run(data, textsearch.Config{
					Algo: "horspool", Cores: 2, ExtraExeOpts: c.opts,
				})
				if err != nil || r.Hits == 0 {
					b.Fatalf("hits=%d err=%v", r.Hits, err)
				}
			}
		})
	}
}

// BenchmarkAblationMonitorOverhead (A5) quantifies the monitoring cost:
// identical pipeline with the monitor off, at the paper's δ, and at a
// 10x-faster δ.
func BenchmarkAblationMonitorOverhead(b *testing.B) {
	data := benchCorpus()
	cases := []struct {
		name string
		opts []raft.Option
	}{
		{"off", []raft.Option{raft.WithoutMonitor()}},
		{"delta-10us", nil},
		{"delta-1us", []raft.Option{raft.WithMonitorDelta(time.Microsecond)}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				r, err := textsearch.Run(data, textsearch.Config{
					Algo: "horspool", Cores: 2, ExtraExeOpts: c.opts,
				})
				if err != nil || r.Hits == 0 {
					b.Fatalf("hits=%d err=%v", r.Hits, err)
				}
			}
		})
	}
}

// BenchmarkAblationTCPBridge (A7) compares an in-process stream with the
// same stream tunneled over a loopback TCP bridge.
func BenchmarkAblationTCPBridge(b *testing.B) {
	const items = 100_000
	b.Run("in-process", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := raft.NewMap()
			var total int64
			red := kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total)
			m.MustLink(kernels.NewGenerate(items, func(i int64) int64 { return i }), red)
			if _, err := m.Exe(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("loopback-tcp", func(b *testing.B) {
		node, err := oar.NewNode("bench", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer node.Close()
		for i := 0; i < b.N; i++ {
			send, recv, err := oar.Bridge[int64](node, fmt.Sprintf("s%d", i))
			if err != nil {
				b.Fatal(err)
			}
			producer := raft.NewMap()
			producer.MustLink(kernels.NewGenerate(items, func(i int64) int64 { return i }), send)
			consumer := raft.NewMap()
			var total int64
			red := kernels.NewReduce(func(a, v int64) int64 { return a + v }, 0, &total)
			consumer.MustLink(recv, red)
			var wg sync.WaitGroup
			wg.Add(2)
			var e1, e2 error
			go func() { defer wg.Done(); _, e1 = producer.Exe() }()
			go func() { defer wg.Done(); _, e2 = consumer.Exe() }()
			wg.Wait()
			if e1 != nil || e2 != nil {
				b.Fatal(e1, e2)
			}
		}
	})
}

// BenchmarkAblationModel (A8) times the flow-model solve itself — the
// point of the paper's analytic path is that predictions are cheap enough
// to use during execution.
func BenchmarkAblationModel(b *testing.B) {
	net := &qmodel.Network{
		Kernels: []qmodel.KernelModel{
			{Name: "reader", ServiceRate: 5000, Replicas: 1, Gain: 1},
			{Name: "match", ServiceRate: 900, Replicas: 4, Gain: 0.001},
			{Name: "reduce", ServiceRate: 100000, Replicas: 1, Gain: 1},
		},
		Edges: []qmodel.EdgeModel{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}},
	}
	for i := 0; i < b.N; i++ {
		if _, err := net.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMapperAssign (A6) times the latency-priority
// partitioner on a 64-kernel pipeline over a two-socket + remote-node
// topology; its quality versus random placement is asserted in the mapper
// package tests and printed by raft-bench -ablate map. The paper claims
// the algorithm is fast, not optimal — this measures the "fast".
func BenchmarkAblationMapperAssign(b *testing.B) {
	g := &graph.Graph{}
	for i := 0; i < 64; i++ {
		g.AddNode("k", 1)
	}
	for i := 0; i+1 < 64; i++ {
		g.AddEdge(i, i+1, "out", "in", "t", 1)
	}
	top := mapper.NewLocal(16, 2)
	top.AddRemoteNode(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapper.Assign(g, top); err != nil {
			b.Fatal(err)
		}
	}
}
