package raft

import (
	"strings"
	"testing"
	"time"
)

// slowWorkKernel is deliberately the pipeline bottleneck.
type slowWorkKernel struct {
	KernelBase
}

func newSlowWork() *slowWorkKernel {
	k := &slowWorkKernel{}
	AddInput[int64](k, "in")
	AddOutput[int64](k, "out")
	return k
}

func (w *slowWorkKernel) Run() Status {
	v, err := Pop[int64](w.In("in"))
	if err != nil {
		return Stop
	}
	time.Sleep(20 * time.Microsecond)
	if err := Push(w.Out("out"), v); err != nil {
		return Stop
	}
	return Proceed
}

func TestAnalyzeFindsBottleneck(t *testing.T) {
	m := NewMap()
	work := newSlowWork()
	sink := newCollect()
	if _, err := m.Link(newGen(2000), work); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(work, sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe()
	if err != nil {
		t.Fatal(err)
	}
	adv, err := Analyze(m, rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(adv.Bottleneck, "slowWorkKernel") {
		t.Fatalf("bottleneck = %q, want the slow worker (advice:\n%s)", adv.Bottleneck, adv)
	}
	if adv.MaxSourceRate <= 0 {
		t.Fatalf("max source rate = %v", adv.MaxSourceRate)
	}
	if u := adv.Utilization[adv.Bottleneck]; u < 0.99 || u > 1.01 {
		t.Fatalf("bottleneck utilization = %v, want 1", u)
	}
	// The bottleneck should get a replica suggestion > 1.
	if adv.ReplicaSuggestion[adv.Bottleneck] < 2 {
		t.Fatalf("replica suggestion = %d, want >= 2", adv.ReplicaSuggestion[adv.Bottleneck])
	}
	if len(adv.BufferSuggestion) == 0 {
		t.Fatal("no buffer suggestions")
	}
	if adv.String() == "" {
		t.Fatal("empty advice rendering")
	}
}

func TestAnalyzeRejectsForeignReport(t *testing.T) {
	m1 := NewMap()
	sink := newCollect()
	if _, err := m1.Link(newGen(10), sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m1.Exe()
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMap()
	s2 := newCollect()
	w2 := newWork()
	if _, err := m2.Link(newGen(10), w2); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Link(w2, s2); err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(m2, rep); err == nil {
		t.Fatal("mismatched report must be rejected")
	}
}

func TestAnalyzeGainForFilteringKernel(t *testing.T) {
	// A filter dropping 90% of elements must show gain ~0.1 downstream.
	m := NewMap()
	filter := NewLambdaIO[int64, int64](1, 1, func(k *LambdaKernel) Status {
		v, err := Pop[int64](k.In("0"))
		if err != nil {
			return Stop
		}
		if v%10 == 0 {
			if err := Push(k.Out("0"), v); err != nil {
				return Stop
			}
		}
		return Proceed
	})
	sink := newCollect()
	if _, err := m.Link(newGen(10_000), filter); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(filter, sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe()
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.values()) != 1000 {
		t.Fatalf("filter passed %d values", len(sink.values()))
	}
	adv, err := Analyze(m, rep)
	if err != nil {
		t.Fatal(err)
	}
	// Sink load should be ~10% of filter load in the model's view; verify
	// through utilization ordering: sink util << filter util is plausible
	// but depends on rates, so check the advice exists and is finite.
	for name, u := range adv.Utilization {
		if u < 0 {
			t.Fatalf("negative utilization for %s", name)
		}
	}
}
